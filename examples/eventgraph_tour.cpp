//===- eventgraph_tour.cpp - A tour of Fig. 2/3 --------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Walks through the paper's running example: the HashMap snippet of Fig. 2,
// its abstract histories, the event graph of Fig. 3, and the dashed edges
// that appear once the HashMap specification is applied.
//
// Build & run:  ./build/examples/eventgraph_tour
//
//===----------------------------------------------------------------------===//

#include "core/USpec.h"

#include <cstdio>

using namespace uspec;

namespace {

constexpr const char *Fig2 = R"(
  class Main {
    def main() {
      var map = new Map();
      map.put("key", someApi.getFile());
      var name = map.get("key").getName();
    }
  }
)";

std::string eventLabel(const AnalysisResult &R, const StringInterner &S,
                       EventId E) {
  const Event &Ev = R.Events.get(E);
  std::string Name = S.str(Ev.Method.Name);
  if (Ev.Kind == EventKind::NewAlloc)
    Name = "new" + Name;
  if (Ev.Kind == EventKind::LitAlloc)
    Name = "lc";
  if (Ev.Kind == EventKind::RootAlloc)
    Name = "root:" + Name;
  std::string Pos = Ev.Pos == PosRet ? "ret"
                                     : std::to_string(static_cast<int>(Ev.Pos));
  return "<" + Name + ", " + Pos + ">";
}

void printHistories(const char *Title, const AnalysisResult &R,
                    const StringInterner &S) {
  std::printf("\n-- %s --\n", Title);
  for (ObjectId Obj = 0; Obj < R.Histories.size(); ++Obj) {
    if (R.Histories[Obj].empty())
      continue;
    const AbstractObject &AO = R.Objects.get(Obj);
    const char *Kind = AO.Kind == ObjectKind::New          ? "new"
                       : AO.Kind == ObjectKind::ApiRet     ? "api-ret"
                       : AO.Kind == ObjectKind::LiteralStr ? "literal"
                       : AO.Kind == ObjectKind::External   ? "external"
                       : AO.Kind == ObjectKind::Ghost      ? "ghost"
                                                           : "other";
    std::printf("  object #%u (%s):\n", Obj, Kind);
    for (const History &H : R.Histories[Obj]) {
      std::printf("    (");
      for (size_t I = 0; I < H.size(); ++I)
        std::printf("%s%s", I ? ", " : "", eventLabel(R, S, H[I]).c_str());
      std::printf(")\n");
    }
  }
}

} // namespace

int main() {
  std::printf("The paper's running example (Fig. 2):\n%s\n", Fig2);

  StringInterner S;
  DiagnosticSink Diags;
  auto P = parseAndLower(Fig2, "fig2", S, Diags);
  if (!P) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    return 1;
  }

  // --- API-unaware pass (§3.2): API returns are fresh objects. ------------
  AnalysisResult Unaware = analyzeProgram(*P, S, AnalysisOptions());
  printHistories("abstract histories, API-unaware (Fig. 2 bottom)", Unaware,
                 S);

  EventGraph G = EventGraph::build(Unaware);
  std::printf("\n-- event graph edges (Fig. 3, solid arrows) --\n");
  for (EventId E = 0; E < G.numEvents(); ++E)
    for (EventId C : G.children(E))
      std::printf("  %s -> %s\n", eventLabel(Unaware, S, E).c_str(),
                  eventLabel(Unaware, S, C).c_str());

  // allocG example from §3.3.
  for (const CallSite &CS : G.callSites()) {
    if (S.str(CS.Method.Name) != "getName")
      continue;
    std::printf("\nallocG(<getName, 0>) = {");
    for (EventId A : G.allocOf(CS.Recv))
      std::printf(" %s", eventLabel(Unaware, S, A).c_str());
    std::printf(" }   (the receiver may alias the return of get)\n");
  }

  // --- API-aware pass (§6) with the Fig. 3 HashMap specification. ---------
  SpecSet Specs;
  MethodId Get = {S.intern("Map"), S.intern("get"), 1};
  MethodId Put = {S.intern("Map"), S.intern("put"), 2};
  Specs.insert(Spec::retArg(Get, Put, 2));
  Specs.insert(Spec::retSame(Get));
  AnalysisOptions AwareOptions;
  AwareOptions.ApiAware = true;
  AwareOptions.Specs = &Specs;
  AnalysisResult Aware = analyzeProgram(*P, S, AwareOptions);
  printHistories(
      "abstract histories with RetArg(get, put, 2) — the merged history",
      Aware, S);

  EventGraph GA = EventGraph::build(Aware);
  std::printf("\n-- the dashed edge ℓ of Fig. 3 --\n");
  for (const CallSite &From : GA.callSites()) {
    if (S.str(From.Method.Name) != "getFile")
      continue;
    for (const CallSite &To : GA.callSites()) {
      if (S.str(To.Method.Name) != "getName")
        continue;
      std::printf("  <getFile, ret> -> <getName, 0> exists: %s\n",
                  GA.hasEdge(From.Ret, To.Recv) ? "yes" : "no");
    }
  }
  return 0;
}
