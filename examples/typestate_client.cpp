//===- typestate_client.cpp - The Fig. 8a scenario ------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Fig. 8a: a type-state client verifying that Iterator.hasNext() is checked
// before Iterator.next(). With the API-unaware analysis, the two
// `iters.get(i)` calls return distinct abstract objects and the check is
// lost — a false positive. Learning RetSame(List.get) from a corpus fixes
// it.
//
// Build & run:  ./build/examples/typestate_client
//
//===----------------------------------------------------------------------===//

#include "clients/Typestate.h"
#include "core/USpec.h"
#include "corpus/Generator.h"
#include "corpus/Profiles.h"

#include <cstdio>

using namespace uspec;

int main() {
  // The real-world shape of Fig. 8a (epicode's MergeSortedArrays).
  constexpr const char *Snippet = R"(
    class Main {
      def merge() {
        var iters = new ArrayList();
        var i = 0;
        if (iters.get(i).hasNext()) {
          result.add(iters.get(i).next());
        }
      }
    }
  )";
  std::printf("Fig. 8a snippet:\n%s\n", Snippet);

  StringInterner S;
  DiagnosticSink Diags;
  auto P = parseAndLower(Snippet, "fig8a", S, Diags);
  if (!P) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    return 1;
  }
  TypestateProtocol Proto{"hasNext", "next"};

  // Baseline: API-unaware.
  AnalysisResult Unaware = analyzeProgram(*P, S, AnalysisOptions());
  auto Before = checkTypestate(Unaware, S, Proto);
  std::printf("API-unaware analysis: %zu warning(s) — a false positive, the "
              "snippet is safe\n",
              Before.size());

  // Learn specs from a Java corpus, then re-analyze.
  std::printf("\nlearning specifications from a generated Java corpus...\n");
  LanguageProfile Profile = javaProfile();
  GeneratorConfig GenCfg;
  GenCfg.NumPrograms = 600;
  GenCfg.Seed = 0x8A;
  GeneratedCorpus Corpus = generateCorpus(Profile, GenCfg, S);
  LearnerConfig Cfg;
  USpecLearner Learner(S, Cfg);
  LearnResult Result = Learner.learn(Corpus.Programs);

  Spec Wanted =
      Spec::retSame({S.intern("ArrayList"), S.intern("get"), 1});
  std::printf("RetSame(ArrayList.get/1) selected: %s\n",
              Result.Selected.contains(Wanted) ? "yes" : "no");

  AnalysisOptions Aware;
  Aware.ApiAware = true;
  Aware.Specs = &Result.Selected;
  Aware.CoverageExtension = true;
  AnalysisResult AwareResult = analyzeProgram(*P, S, Aware);
  auto After = checkTypestate(AwareResult, S, Proto);
  std::printf("API-aware analysis: %zu warning(s) — the protocol verifies\n",
              After.size());
  return After.size() < Before.size() ? 0 : 1;
}
