//===- quickstart.cpp - USpec in 60 lines --------------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Quickstart: hand the learner a small corpus of programs, get API aliasing
// specifications back, and use them to sharpen a may-alias query. This is
// the whole public API surface in one file:
//
//   parseAndLower -> USpecLearner::learn -> AnalysisOptions{ApiAware} ->
//   analyzeProgram -> AnalysisResult::retMayAlias
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/USpec.h"

#include <cstdio>

using namespace uspec;

int main() {
  StringInterner Strings;

  // 1. A corpus. Real use would mine thousands of files; fifteen copies of
  //    two idioms are enough to see the machinery work end to end.
  std::vector<IRProgram> Corpus;
  auto Add = [&](const char *Source) {
    DiagnosticSink Diags;
    auto P = parseAndLower(Source, "corpus", Strings, Diags);
    if (P)
      Corpus.push_back(std::move(*P));
    else
      std::fprintf(stderr, "parse error:\n%s", Diags.render().c_str());
  };
  for (int I = 0; I < 15; ++I) {
    // Direct usage: files obtained from the database get their name read.
    Add("class A { def f() { var x = db.getFile(\"cfg\"); x.getName(); } }");
    // Usage through a map: the flow USpec must *learn* to connect.
    Add("class B { def g() {"
        "  var m = new Map();"
        "  m.put(\"k\", db.getFile(\"cfg\"));"
        "  var f = m.get(\"k\");"
        "  f.getName();"
        "} }");
  }

  // 2. Learn specifications (Fig. 1 pipeline).
  LearnerConfig Config; // τ = 0.6, top-10-mean scoring — the paper defaults
  USpecLearner Learner(Strings, Config);
  LearnResult Result = Learner.learn(Corpus);

  std::printf("learned %zu specifications from %zu candidates:\n",
              Result.Selected.size(), Result.Candidates.size());
  for (const ScoredCandidate &C : Result.Candidates)
    std::printf("  %-50s score %.3f  (%zu matches)\n",
                C.S.str(Strings).c_str(), C.Score, C.Matches);

  // 3. Use the learned specs: an API-aware may-alias query.
  DiagnosticSink Diags;
  auto Client = parseAndLower(R"(
    class Client {
      def run() {
        var m = new Map();
        m.put("x", api.produce());
        var a = m.get("x");
        var b = api.produce();
      }
    }
  )",
                              "client", Strings, Diags);

  AnalysisOptions Aware;
  Aware.ApiAware = true;
  Aware.Specs = &Result.Selected;
  AnalysisResult R = analyzeProgram(*Client, Strings, Aware);

  // Find the ret events of produce (first call) and get.
  EventId ProduceRet = InvalidEvent, GetRet = InvalidEvent;
  for (EventId E = 0; E < R.Events.size(); ++E) {
    const Event &Ev = R.Events.get(E);
    if (Ev.Kind != EventKind::ApiCall || Ev.Pos != PosRet)
      continue;
    if (Strings.str(Ev.Method.Name) == "produce" && ProduceRet == InvalidEvent)
      ProduceRet = E;
    if (Strings.str(Ev.Method.Name) == "get")
      GetRet = E;
  }
  std::printf("\nclient query: may m.get(\"x\") alias api.produce()?  -> %s\n",
              R.retMayAlias(GetRet, ProduceRet) ? "yes (stored value flows)"
                                                : "no");
  return 0;
}
