//===- atlas_vs_uspec.cpp - §7.5 head to head -----------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Pits the Atlas-style dynamic baseline against USpec on one hard class:
// java.sql.ResultSet, which can only be obtained through a factory — Atlas
// cannot construct it, while USpec learns its specs from how people *use*
// it.
//
// Build & run:  ./build/examples/atlas_vs_uspec
//
//===----------------------------------------------------------------------===//

#include "atlas/Atlas.h"
#include "core/USpec.h"
#include "corpus/Generator.h"
#include "corpus/Profiles.h"

#include <cstdio>

using namespace uspec;

int main() {
  LanguageProfile Profile = javaProfile();

  // --- Atlas: dynamic test synthesis against the library. -----------------
  std::printf("Atlas-style baseline (dynamic test synthesis):\n");
  auto AtlasResults = runAtlasBaseline(Profile.Registry, AtlasConfig());
  for (const AtlasClassResult &R : AtlasResults) {
    if (R.Class != "ResultSet" && R.Class != "HashMap")
      continue;
    std::printf("  %-10s constructor: %-3s  specs: %s\n", R.Class.c_str(),
                R.ConstructorAvailable ? "yes" : "no",
                R.hasSpecs() ? "yes (argument-insensitive)" : "none");
  }

  // --- USpec: unsupervised learning from usage. ----------------------------
  std::printf("\nUSpec (unsupervised learning from a usage corpus):\n");
  StringInterner S;
  GeneratorConfig GenCfg;
  GenCfg.NumPrograms = 700;
  GenCfg.Seed = 0xA7;
  GeneratedCorpus Corpus = generateCorpus(Profile, GenCfg, S);
  LearnerConfig Cfg;
  USpecLearner Learner(S, Cfg);
  LearnResult Result = Learner.learn(Corpus.Programs);

  size_t Shown = 0;
  for (const ScoredCandidate &C : Result.Candidates) {
    std::string Repr = C.S.str(S);
    if (Repr.find("getString") == std::string::npos &&
        Repr.find("getInt") == std::string::npos &&
        Repr.find("getObject") == std::string::npos)
      continue;
    std::printf("  %-40s score %.3f  %s\n", Repr.c_str(), C.Score,
                C.Score >= Cfg.Tau ? "selected" : "below tau");
    if (++Shown >= 4)
      break;
  }
  if (Shown == 0)
    std::printf("  (no ResultSet specs arose from this corpus seed)\n");
  std::printf("\nUSpec needs neither a constructor nor the library's code — "
              "only programs that use the API (§7.5).\n");
  return 0;
}
