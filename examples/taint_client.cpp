//===- taint_client.cpp - The Fig. 8b scenario ---------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Fig. 8b: a taint client looking for XSS flows. The user-controlled value
// enters kwargs via setdefault and leaves via subscripting; only an
// API-aware analysis with RetArg(SubscriptLoad, setdefault, 2) connects the
// two — the unaware analysis misses the vulnerability.
//
// Build & run:  ./build/examples/taint_client
//
//===----------------------------------------------------------------------===//

#include "clients/Taint.h"
#include "core/USpec.h"
#include "corpus/Generator.h"
#include "corpus/Profiles.h"

#include <cstdio>

using namespace uspec;

int main() {
  // Flask-admin's vulnerable __call__ (simplified like the paper does).
  constexpr const char *Snippet = R"(
    class Widget {
      def call() {
        var kwargs = new Dict();
        kwargs.setdefault("data-value", request.input("value"));
        var shown = kwargs.SubscriptLoad("data-value");
        html.render(shown);
      }
    }
  )";
  std::printf("Fig. 8b snippet:\n%s\n", Snippet);

  StringInterner S;
  DiagnosticSink Diags;
  auto P = parseAndLower(Snippet, "fig8b", S, Diags);
  if (!P) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    return 1;
  }
  TaintConfig Config;
  Config.Sources = {"input"};
  Config.Sinks = {"render"};
  Config.Sanitizers = {"escape"};

  AnalysisResult Unaware = analyzeProgram(*P, S, AnalysisOptions());
  auto Before = checkTaint(Unaware, S, Config);
  std::printf("API-unaware analysis: %zu finding(s) — the XSS is missed\n",
              Before.size());

  std::printf("\nlearning specifications from a generated Python corpus...\n");
  LanguageProfile Profile = pythonProfile();
  GeneratorConfig GenCfg;
  GenCfg.NumPrograms = 600;
  GenCfg.Seed = 0x8B;
  GeneratedCorpus Corpus = generateCorpus(Profile, GenCfg, S);
  LearnerConfig Cfg;
  USpecLearner Learner(S, Cfg);
  LearnResult Result = Learner.learn(Corpus.Programs);

  Spec Wanted = Spec::retArg(
      {S.intern("Dict"), S.intern("SubscriptLoad"), 1},
      {S.intern("Dict"), S.intern("setdefault"), 2}, 2);
  std::printf("RetArg(Dict.SubscriptLoad, Dict.setdefault, 2) selected: %s\n",
              Result.Selected.contains(Wanted) ? "yes" : "no");

  AnalysisOptions Aware;
  Aware.ApiAware = true;
  Aware.Specs = &Result.Selected;
  Aware.CoverageExtension = true;
  AnalysisResult AwareResult = analyzeProgram(*P, S, Aware);
  auto After = checkTaint(AwareResult, S, Config);
  std::printf("API-aware analysis: %zu finding(s) — the vulnerability is "
              "reported\n",
              After.size());
  return After.size() > Before.size() ? 0 : 1;
}
