//===- perf_pipeline.cpp - §7.2 runtime/scaling (google-benchmark) ------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// §7.2 reports end-to-end learning times of ~5h (Java) / ~2h (Python) on a
// 28-core server over millions of files, and stresses that the runtime
// scales with the dataset size, not with the number of API classes. On our
// simulated corpus the absolute numbers are seconds; the comparable shape is
// the near-linear scaling of the full pipeline in the corpus size, plus the
// per-stage costs (parsing/lowering, points-to + histories, event graph,
// model training, candidate extraction).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/EventLog.h"
#include "support/Trace.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <unistd.h>

using namespace uspec;
using namespace uspec::bench;

namespace {

/// Cached corpora per size so generation isn't measured in pipeline runs.
GeneratedCorpus &corpusOf(size_t N, StringInterner &S) {
  static std::map<size_t, std::unique_ptr<GeneratedCorpus>> Cache;
  static std::unique_ptr<LanguageProfile> Profile;
  auto It = Cache.find(N);
  if (It != Cache.end())
    return *It->second;
  if (!Profile)
    Profile = std::make_unique<LanguageProfile>(javaProfile());
  GeneratorConfig Cfg;
  Cfg.NumPrograms = N;
  Cfg.Seed = 0xBE7C4;
  auto Corpus = std::make_unique<GeneratedCorpus>(
      generateCorpus(*Profile, Cfg, S));
  return *Cache.emplace(N, std::move(Corpus)).first->second;
}

StringInterner &sharedStrings() {
  static StringInterner S;
  return S;
}

void BM_ParseAndLower(benchmark::State &State) {
  LanguageProfile Profile = javaProfile();
  GeneratorConfig Cfg;
  Rng Rand(1);
  std::vector<std::string> Sources;
  for (int I = 0; I < 50; ++I)
    Sources.push_back(generateProgramSource(Profile, Cfg, Rand));
  StringInterner S;
  for (auto _ : State) {
    for (const std::string &Source : Sources) {
      DiagnosticSink Diags;
      auto P = parseAndLower(Source, "bench", S, Diags);
      benchmark::DoNotOptimize(P);
    }
  }
  State.SetItemsProcessed(State.iterations() * Sources.size());
}
BENCHMARK(BM_ParseAndLower);

void BM_UnawareAnalysis(benchmark::State &State) {
  StringInterner &S = sharedStrings();
  GeneratedCorpus &Corpus = corpusOf(50, S);
  AnalysisOptions Options;
  for (auto _ : State) {
    for (const IRProgram &P : Corpus.Programs)
      benchmark::DoNotOptimize(analyzeProgram(P, S, Options));
  }
  State.SetItemsProcessed(State.iterations() * Corpus.Programs.size());
}
BENCHMARK(BM_UnawareAnalysis);

void BM_AwareAnalysis(benchmark::State &State) {
  StringInterner &S = sharedStrings();
  GeneratedCorpus &Corpus = corpusOf(50, S);
  // Ground-truth-sized spec set for realistic ghost-field load.
  static SpecSet Specs = [&] {
    SpecSet Out;
    LanguageProfile P = javaProfile();
    for (const ApiClass &C : P.Registry.classes()) {
      Symbol ClassSym = S.intern(C.Name);
      for (const ApiMethod &M : C.Methods) {
        MethodId Mid = {ClassSym, S.intern(M.Name),
                        static_cast<uint8_t>(M.Arity)};
        if (M.Semantics == MethodSemantics::Load ||
            M.Semantics == MethodSemantics::StatelessGetter)
          Out.insert(Spec::retSame(Mid));
        if (M.Semantics == MethodSemantics::Store)
          for (const std::string &L : M.PairedLoads)
            if (const ApiMethod *Load = C.findMethod(L, M.Arity - 1))
              Out.insert(
                  Spec::retArg({ClassSym, S.intern(Load->Name),
                                static_cast<uint8_t>(Load->Arity)},
                               Mid, static_cast<uint8_t>(M.StorePos)));
      }
    }
    return Out;
  }();
  AnalysisOptions Options;
  Options.ApiAware = true;
  Options.Specs = &Specs;
  Options.CoverageExtension = true;
  for (auto _ : State) {
    for (const IRProgram &P : Corpus.Programs)
      benchmark::DoNotOptimize(analyzeProgram(P, S, Options));
  }
  State.SetItemsProcessed(State.iterations() * Corpus.Programs.size());
}
BENCHMARK(BM_AwareAnalysis);

void BM_EventGraphBuild(benchmark::State &State) {
  StringInterner &S = sharedStrings();
  GeneratedCorpus &Corpus = corpusOf(50, S);
  std::vector<AnalysisResult> Results;
  for (const IRProgram &P : Corpus.Programs)
    Results.push_back(analyzeProgram(P, S, AnalysisOptions()));
  for (auto _ : State) {
    for (const AnalysisResult &R : Results)
      benchmark::DoNotOptimize(EventGraph::build(R));
  }
  State.SetItemsProcessed(State.iterations() * Results.size());
}
BENCHMARK(BM_EventGraphBuild);

void BM_FullPipeline(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    StringInterner S;
    LanguageProfile Profile = javaProfile();
    GeneratorConfig Cfg;
    Cfg.NumPrograms = N;
    Cfg.Seed = 0xBE7C4;
    GeneratedCorpus Corpus = generateCorpus(Profile, Cfg, S);
    State.ResumeTiming();

    LearnerConfig LCfg;
    USpecLearner Learner(S, LCfg);
    benchmark::DoNotOptimize(Learner.learn(Corpus.Programs));
  }
  State.SetItemsProcessed(State.iterations() * N);
  State.SetLabel(std::to_string(N) + " programs");
}
BENCHMARK(BM_FullPipeline)->Arg(100)->Arg(200)->Arg(400)->Arg(800);

// §7.2 thread scaling: the same corpus learned at increasing thread counts.
// The corpus is generated once; only learn() is measured. Output is
// bit-identical across the Args (tested in parallel_test), so this isolates
// the wall-clock effect of the sharded phases.
void BM_FullPipelineThreads(benchmark::State &State) {
  unsigned Threads = static_cast<unsigned>(State.range(0));
  static StringInterner S; // shared: interning happens before learn()
  GeneratedCorpus &Corpus = corpusOf(200, S);
  LearnerConfig Cfg;
  Cfg.Threads = Threads;
  for (auto _ : State) {
    USpecLearner Learner(S, Cfg);
    benchmark::DoNotOptimize(Learner.learn(Corpus.Programs));
  }
  State.SetItemsProcessed(State.iterations() * Corpus.Programs.size());
  State.SetLabel(std::to_string(Threads) + " threads");
}
BENCHMARK(BM_FullPipelineThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Robustness overhead (DESIGN.md §10): the same corpus learned with the
// per-program step budget off (0) and with a generous budget that never
// exhausts — isolating the cost of the Budget::consume() polling and the
// staged all-or-nothing Phase-3 extraction. With no fault armed the
// USPEC_FAULT checks are one relaxed atomic load each, so the delta between
// the two Args is the entire price of running budgeted.
void BM_FullPipelineBudgeted(benchmark::State &State) {
  uint64_t StepBudget = static_cast<uint64_t>(State.range(0));
  static StringInterner S;
  GeneratedCorpus &Corpus = corpusOf(200, S);
  LearnerConfig Cfg;
  Cfg.ProgramStepBudget = StepBudget;
  for (auto _ : State) {
    USpecLearner Learner(S, Cfg);
    benchmark::DoNotOptimize(Learner.learn(Corpus.Programs));
  }
  State.SetItemsProcessed(State.iterations() * Corpus.Programs.size());
  State.SetLabel(StepBudget ? "budgeted (never exhausts)" : "budget off");
}
BENCHMARK(BM_FullPipelineBudgeted)->Arg(0)->Arg(1 << 30);

// Observability overhead (DESIGN.md §11): the same corpus learned with
// tracing disarmed (every TraceSpan is one relaxed atomic load, same
// discipline as the USPEC_FAULT probes — Arg(0) must sit within noise of
// BM_FullPipeline at the same size) and with an in-memory session armed
// (Arg(1): clock reads + per-thread buffer appends; the trace is discarded
// unserialized after each iteration).
void BM_FullPipelineTraced(benchmark::State &State) {
  bool Traced = State.range(0) != 0;
  static StringInterner S;
  GeneratedCorpus &Corpus = corpusOf(200, S);
  LearnerConfig Cfg;
  for (auto _ : State) {
    if (Traced)
      trace::start();
    USpecLearner Learner(S, Cfg);
    benchmark::DoNotOptimize(Learner.learn(Corpus.Programs));
    if (Traced) {
      State.PauseTiming();
      trace::stop();
      State.ResumeTiming();
    }
  }
  State.SetItemsProcessed(State.iterations() * Corpus.Programs.size());
  State.SetLabel(Traced ? "tracing armed" : "tracing off");
}
BENCHMARK(BM_FullPipelineTraced)->Arg(0)->Arg(1);

// Structured event log overhead (DESIGN.md §16): the same corpus learned
// with the event log disarmed (Arg 0 — every events::emit call site in the
// fleet code is one relaxed atomic load, and learn() itself emits nothing)
// and armed to a scratch file (Arg 1, with one lifecycle emit per
// iteration — fleet events are rare by design, so arming must not perturb
// the pipeline either). Both Args must sit within noise of BM_FullPipeline
// at the same size; a regression here means emission crept onto the hot
// path.
void BM_FullPipelineEvents(benchmark::State &State) {
  bool Armed = State.range(0) != 0;
  static StringInterner S;
  GeneratedCorpus &Corpus = corpusOf(200, S);
  LearnerConfig Cfg;
  std::string Path =
      "/tmp/uspec_bench_events_" + std::to_string(getpid()) + ".jsonl";
  if (Armed) {
    std::string Err;
    if (!events::startToFile(Path, 0, &Err)) {
      State.SkipWithError(Err.c_str());
      return;
    }
  }
  for (auto _ : State) {
    if (events::enabled())
      events::emit("reload", {{"generation", "1"}});
    USpecLearner Learner(S, Cfg);
    benchmark::DoNotOptimize(Learner.learn(Corpus.Programs));
  }
  if (Armed) {
    events::finish();
    ::unlink(Path.c_str());
  }
  State.SetItemsProcessed(State.iterations() * Corpus.Programs.size());
  State.SetLabel(Armed ? "event log armed" : "event log off");
}
BENCHMARK(BM_FullPipelineEvents)->Arg(0)->Arg(1);

/// --uspec_phase_json[=N]: instead of google-benchmark, run the full
/// pipeline over the default corpus profile (N programs, default 400) once
/// per thread count in {1, 2, 4, 8} and print one JSON document with the
/// per-phase PipelineStats of each run plus end-to-end speedups vs 1
/// thread. This is the repo's BENCH trajectory format: one machine-readable
/// line block per commit.
int runPhaseStatsJson(size_t NumPrograms) {
  StringInterner S;
  LanguageProfile Profile = javaProfile();
  GeneratorConfig GenCfg;
  GenCfg.NumPrograms = NumPrograms;
  GenCfg.Seed = 0xBE7C4;
  GeneratedCorpus Corpus = generateCorpus(Profile, GenCfg, S);

  const unsigned ThreadCounts[] = {1, 2, 4, 8};
  double BaselineSec = 0;
  std::printf("{\n  \"bench\": \"perf_pipeline.phase_stats\",\n"
              "  \"profile\": \"%s\",\n  \"programs\": %zu,\n"
              "  \"runs\": [\n",
              Profile.Name.c_str(), Corpus.Programs.size());
  for (size_t I = 0; I < std::size(ThreadCounts); ++I) {
    LearnerConfig Cfg;
    Cfg.Threads = ThreadCounts[I];
    USpecLearner Learner(S, Cfg);
    LearnResult Result = Learner.learn(Corpus.Programs);
    if (I == 0)
      BaselineSec = Result.Stats.TotalSeconds;
    double Speedup = Result.Stats.TotalSeconds > 0
                         ? BaselineSec / Result.Stats.TotalSeconds
                         : 0;
    std::printf("    {\"stats\": %s, \"speedup_vs_1\": %.3f}%s\n",
                Result.Stats.json().c_str(), Speedup,
                I + 1 < std::size(ThreadCounts) ? "," : "");
  }
  std::printf("  ],\n");

  // Event-log overhead rows (DESIGN.md §16), the committed counterpart of
  // BM_FullPipelineEvents: one single-thread learn with the log disarmed
  // and one armed to a scratch file (with a lifecycle emit, as a fleet
  // process would produce). bench_compare.sh gates both against the
  // baseline and the armed row against the candidate's own disarmed row —
  // arming the event log must never cost learn() wall-clock.
  double DisarmedSec = 0, ArmedSec = 0;
  for (int Armed = 0; Armed < 2; ++Armed) {
    std::string Path = "/tmp/uspec_bench_events_" +
                       std::to_string(static_cast<long>(getpid())) +
                       ".jsonl";
    if (Armed && !events::startToFile(Path))
      break;
    if (events::enabled())
      events::emit("reload", {{"generation", "1"}});
    LearnerConfig Cfg;
    Cfg.Threads = 1;
    USpecLearner Learner(S, Cfg);
    LearnResult Result = Learner.learn(Corpus.Programs);
    (Armed ? ArmedSec : DisarmedSec) = Result.Stats.TotalSeconds;
    if (Armed) {
      events::finish();
      ::unlink(Path.c_str());
    }
  }
  std::printf("  \"events_overhead\": {\"disarmed_seconds\": %.6f, "
              "\"armed_seconds\": %.6f}\n}\n",
              DisarmedSec, ArmedSec);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (!std::strncmp(argv[I], "--uspec_phase_json", 18)) {
      size_t N = 400;
      if (argv[I][18] == '=')
        N = static_cast<size_t>(std::strtoull(argv[I] + 19, nullptr, 10));
      return runPhaseStatsJson(N ? N : 400);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
