//===- perf_pipeline.cpp - §7.2 runtime/scaling (google-benchmark) ------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// §7.2 reports end-to-end learning times of ~5h (Java) / ~2h (Python) on a
// 28-core server over millions of files, and stresses that the runtime
// scales with the dataset size, not with the number of API classes. On our
// simulated corpus the absolute numbers are seconds; the comparable shape is
// the near-linear scaling of the full pipeline in the corpus size, plus the
// per-stage costs (parsing/lowering, points-to + histories, event graph,
// model training, candidate extraction).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace uspec;
using namespace uspec::bench;

namespace {

/// Cached corpora per size so generation isn't measured in pipeline runs.
GeneratedCorpus &corpusOf(size_t N, StringInterner &S) {
  static std::map<size_t, std::unique_ptr<GeneratedCorpus>> Cache;
  static std::unique_ptr<LanguageProfile> Profile;
  auto It = Cache.find(N);
  if (It != Cache.end())
    return *It->second;
  if (!Profile)
    Profile = std::make_unique<LanguageProfile>(javaProfile());
  GeneratorConfig Cfg;
  Cfg.NumPrograms = N;
  Cfg.Seed = 0xBE7C4;
  auto Corpus = std::make_unique<GeneratedCorpus>(
      generateCorpus(*Profile, Cfg, S));
  return *Cache.emplace(N, std::move(Corpus)).first->second;
}

StringInterner &sharedStrings() {
  static StringInterner S;
  return S;
}

void BM_ParseAndLower(benchmark::State &State) {
  LanguageProfile Profile = javaProfile();
  GeneratorConfig Cfg;
  Rng Rand(1);
  std::vector<std::string> Sources;
  for (int I = 0; I < 50; ++I)
    Sources.push_back(generateProgramSource(Profile, Cfg, Rand));
  StringInterner S;
  for (auto _ : State) {
    for (const std::string &Source : Sources) {
      DiagnosticSink Diags;
      auto P = parseAndLower(Source, "bench", S, Diags);
      benchmark::DoNotOptimize(P);
    }
  }
  State.SetItemsProcessed(State.iterations() * Sources.size());
}
BENCHMARK(BM_ParseAndLower);

void BM_UnawareAnalysis(benchmark::State &State) {
  StringInterner &S = sharedStrings();
  GeneratedCorpus &Corpus = corpusOf(50, S);
  AnalysisOptions Options;
  for (auto _ : State) {
    for (const IRProgram &P : Corpus.Programs)
      benchmark::DoNotOptimize(analyzeProgram(P, S, Options));
  }
  State.SetItemsProcessed(State.iterations() * Corpus.Programs.size());
}
BENCHMARK(BM_UnawareAnalysis);

void BM_AwareAnalysis(benchmark::State &State) {
  StringInterner &S = sharedStrings();
  GeneratedCorpus &Corpus = corpusOf(50, S);
  // Ground-truth-sized spec set for realistic ghost-field load.
  static SpecSet Specs = [&] {
    SpecSet Out;
    LanguageProfile P = javaProfile();
    for (const ApiClass &C : P.Registry.classes()) {
      Symbol ClassSym = S.intern(C.Name);
      for (const ApiMethod &M : C.Methods) {
        MethodId Mid = {ClassSym, S.intern(M.Name),
                        static_cast<uint8_t>(M.Arity)};
        if (M.Semantics == MethodSemantics::Load ||
            M.Semantics == MethodSemantics::StatelessGetter)
          Out.insert(Spec::retSame(Mid));
        if (M.Semantics == MethodSemantics::Store)
          for (const std::string &L : M.PairedLoads)
            if (const ApiMethod *Load = C.findMethod(L, M.Arity - 1))
              Out.insert(
                  Spec::retArg({ClassSym, S.intern(Load->Name),
                                static_cast<uint8_t>(Load->Arity)},
                               Mid, static_cast<uint8_t>(M.StorePos)));
      }
    }
    return Out;
  }();
  AnalysisOptions Options;
  Options.ApiAware = true;
  Options.Specs = &Specs;
  Options.CoverageExtension = true;
  for (auto _ : State) {
    for (const IRProgram &P : Corpus.Programs)
      benchmark::DoNotOptimize(analyzeProgram(P, S, Options));
  }
  State.SetItemsProcessed(State.iterations() * Corpus.Programs.size());
}
BENCHMARK(BM_AwareAnalysis);

void BM_EventGraphBuild(benchmark::State &State) {
  StringInterner &S = sharedStrings();
  GeneratedCorpus &Corpus = corpusOf(50, S);
  std::vector<AnalysisResult> Results;
  for (const IRProgram &P : Corpus.Programs)
    Results.push_back(analyzeProgram(P, S, AnalysisOptions()));
  for (auto _ : State) {
    for (const AnalysisResult &R : Results)
      benchmark::DoNotOptimize(EventGraph::build(R));
  }
  State.SetItemsProcessed(State.iterations() * Results.size());
}
BENCHMARK(BM_EventGraphBuild);

void BM_FullPipeline(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    StringInterner S;
    LanguageProfile Profile = javaProfile();
    GeneratorConfig Cfg;
    Cfg.NumPrograms = N;
    Cfg.Seed = 0xBE7C4;
    GeneratedCorpus Corpus = generateCorpus(Profile, Cfg, S);
    State.ResumeTiming();

    LearnerConfig LCfg;
    USpecLearner Learner(S, LCfg);
    benchmark::DoNotOptimize(Learner.learn(Corpus.Programs));
  }
  State.SetItemsProcessed(State.iterations() * N);
  State.SetLabel(std::to_string(N) + " programs");
}
BENCHMARK(BM_FullPipeline)->Arg(100)->Arg(200)->Arg(400)->Arg(800);

} // namespace

BENCHMARK_MAIN();
