//===- ablation_scoring.cpp - §7.2 scoring ablations ---------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Reproduces the §7.2 ablation discussion:
//  (a) alternative scoring functions — the paper's top-k-mean vs max, 95th
//      percentile, match count and program count. Expected shape: the
//      probabilistic scores dominate the frequency-based ones (match-count
//      scoring can only gain precision by giving up recall);
//  (b) accepting aliasing directly from edge confidences (no specification
//      layer): the paper observed ≈ 1 in 4 accepted edges to be wrong at
//      confidence 0.5 — we measure the false rate of candidate-induced edges
//      accepted by confidence alone vs those explained by selected specs;
//  (c) assuming RetSame for every API method roughly doubles the false
//      positive rate.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <map>

using namespace uspec;
using namespace uspec::bench;

namespace {

void scoringTable(const PipelineRun &Run) {
  banner("§7.2 — alternative scoring functions (" + Run.Profile.Name + ")");

  // Rebuild candidate stats per scoring function by re-running selection at
  // several thresholds. Scores other than TopKMean need the raw stats, so we
  // re-run the collector-level scoring through the learner's candidates:
  // Candidates carry Matches/Programs; confidence-based scores come from the
  // pipeline (TopKMean was already applied). For the ablation we re-learn
  // with each scoring kind.
  TextTable T;
  T.setHeader({"scoring", "tau", "precision", "recall"});
  for (ScoreKind Kind :
       {ScoreKind::TopKMean, ScoreKind::NameAware, ScoreKind::MaxConfidence,
        ScoreKind::P95, ScoreKind::MatchCount, ScoreKind::ProgramCount}) {
    const char *Name =
        Kind == ScoreKind::TopKMean        ? "top-10 mean (paper)"
        : Kind == ScoreKind::NameAware     ? "top-10 + naming prior (§5.3)"
        : Kind == ScoreKind::MaxConfidence ? "max confidence"
        : Kind == ScoreKind::P95           ? "95th percentile"
        : Kind == ScoreKind::MatchCount    ? "#matches"
                                           : "#programs";
    // Re-learn (cheap) with the alternative scoring.
    StringInterner S;
    GeneratorConfig GenCfg;
    GenCfg.NumPrograms = 600;
    GenCfg.Seed = 0xAB1A;
    LanguageProfile Profile = javaProfile();
    GeneratedCorpus Corpus = generateCorpus(Profile, GenCfg, S);
    LearnerConfig Cfg;
    Cfg.Scoring = Kind;
    USpecLearner Learner(S, Cfg);
    LearnResult Result = Learner.learn(Corpus.Programs);
    auto Labeled = labelCandidates(Profile.Registry, S, Result.Candidates);
    for (double Tau : {0.4, 0.6, 0.8}) {
      PrPoint P = prAtTau(Labeled, Tau);
      T.addRow({Name, TextTable::formatReal(Tau, 1),
                TextTable::formatReal(P.Precision),
                TextTable::formatReal(P.Recall)});
      Name = ""; // print the label once
    }
    T.addSeparator();
  }
  std::printf("%s", T.render().c_str());
  (void)Run;
}

void edgeConfidenceOnly(const PipelineRun &Run) {
  banner("§7.2 — accepting aliasing by edge confidence alone (" +
         Run.Profile.Name + ")");

  // For every candidate with confidences, decide by confidence alone
  // (>= 0.5): the accepted "edges" inherit the candidate's validity. The
  // spec layer instead aggregates per candidate and thresholds the top-k
  // mean. Compare false rates.
  size_t ConfAccepted = 0, ConfWrong = 0;
  size_t SpecAccepted = 0, SpecWrong = 0;
  for (const LabeledCandidate &L : Run.Labeled) {
    bool Valid = L.isValid();
    // confidence-only: every single-edge match with p >= 0.5 becomes an
    // accepted aliasing relation. NumConfidences counts the scored matches;
    // approximate the >=0.5 fraction with the candidate score (top-k mean
    // tracks the high end of the distribution).
    size_t Accepted =
        L.C.Score >= 0.5 ? L.C.NumConfidences : L.C.NumConfidences / 4;
    ConfAccepted += Accepted;
    if (!Valid)
      ConfWrong += Accepted;
    if (L.C.Score >= 0.6) {
      SpecAccepted += L.C.Matches;
      if (!Valid)
        SpecWrong += L.C.Matches;
    }
  }
  TextTable T;
  T.setHeader({"acceptance strategy", "aliasing additions", "wrong", "rate"});
  auto Row = [&](const char *Name, size_t Acc, size_t Wrong) {
    T.addRow({Name, std::to_string(Acc), std::to_string(Wrong),
              Acc ? TextTable::formatReal(100.0 * Wrong / Acc, 1) + "%"
                  : "-"});
  };
  Row("edge confidence >= 0.5 (no specs)", ConfAccepted, ConfWrong);
  Row("specifications at tau = 0.6 (paper)", SpecAccepted, SpecWrong);
  std::printf("%s", T.render().c_str());
  std::printf("\npaper: ~1 in 4 confidence-accepted edges wrong; the spec "
              "layer changes the distribution to one where most are right\n");
}

void retSameForAll(const PipelineRun &Run) {
  banner("§7.2 — assuming RetSame for all API functions (" +
         Run.Profile.Name + ")");
  const StringInterner &S = *Run.Strings;

  // All RetSame candidates (matched in the corpus), all accepted blindly.
  size_t All = 0, AllWrong = 0, Sel = 0, SelWrong = 0;
  for (const LabeledCandidate &L : Run.Labeled) {
    if (L.C.S.TheKind != Spec::Kind::RetSame)
      continue;
    ++All;
    AllWrong += !L.isValid();
    if (L.C.Score >= 0.6) {
      ++Sel;
      SelWrong += !L.isValid();
    }
  }
  (void)S;
  TextTable T;
  T.setHeader({"policy", "RetSame specs", "wrong", "rate"});
  T.addRow({"RetSame for every matched method", std::to_string(All),
            std::to_string(AllWrong),
            All ? TextTable::formatReal(100.0 * AllWrong / All, 1) + "%"
                : "-"});
  T.addRow({"scored selection (tau = 0.6)", std::to_string(Sel),
            std::to_string(SelWrong),
            Sel ? TextTable::formatReal(100.0 * SelWrong / Sel, 1) + "%"
                : "-"});
  std::printf("%s", T.render().c_str());
  std::printf("\npaper: blanket RetSame roughly doubles the false positive "
              "rate; scoring filters specs like RetSame(SecureRandom.nextInt)\n");

  // Show that the famous wrong spec is filtered.
  for (const LabeledCandidate &L : Run.Labeled) {
    std::string Repr = L.C.S.str(*Run.Strings);
    if (Repr.find("nextInt") != std::string::npos &&
        L.C.S.TheKind == Spec::Kind::RetSame) {
      std::printf("  e.g. %s: score %.3f -> %s\n", Repr.c_str(), L.C.Score,
                  L.C.Score >= 0.6 ? "selected (!)" : "filtered out");
    }
  }
}

void initialAnalysisPrecision() {
  // §7.1: "we experimented with a less precise intraprocedural analysis and
  // observed only a slight performance decline" — the learning pipeline is
  // largely orthogonal to the initial points-to analysis. We compare the
  // default (inlining depth 3) with a purely intraprocedural pass (depth 0).
  banner("§7.1 — precision of the initial points-to analysis (Java)");

  TextTable T;
  T.setHeader({"initial analysis", "candidates", "total matches",
               "precision@0.6", "recall@0.6"});
  for (unsigned Depth : {3u, 1u, 0u}) {
    StringInterner S;
    LanguageProfile Profile = javaProfile();
    GeneratorConfig GenCfg;
    GenCfg.NumPrograms = 700;
    GenCfg.Seed = 0x1217A;
    GeneratedCorpus Corpus = generateCorpus(Profile, GenCfg, S);
    LearnerConfig Cfg;
    Cfg.Analysis.InlineDepth = Depth;
    USpecLearner Learner(S, Cfg);
    LearnResult Result = Learner.learn(Corpus.Programs);
    auto Labeled = labelCandidates(Profile.Registry, S, Result.Candidates);
    PrPoint P = prAtTau(Labeled, 0.6);
    size_t TotalMatches = 0;
    for (const ScoredCandidate &C : Result.Candidates)
      TotalMatches += C.Matches;
    std::string Name = Depth == 0 ? "intraprocedural (depth 0)"
                                  : "interprocedural depth " +
                                        std::to_string(Depth);
    T.addRow({Name, std::to_string(Result.Candidates.size()),
              std::to_string(TotalMatches),
              TextTable::formatReal(P.Precision),
              TextTable::formatReal(P.Recall)});
  }
  std::printf("%s", T.render().c_str());
  std::printf("\npaper: only a slight decline with the intraprocedural "
              "initial analysis\n");
}

} // namespace

void extendedPatterns() {
  // §5.3: "We also experimented with different patterns, but the results
  // were modest". We enable the experimental RetRecv pattern (a call may
  // return its receiver — builder APIs) and measure its candidates.
  banner("§5.3 — extended hypothesis class: the RetRecv pattern (Java)");

  StringInterner S;
  LanguageProfile Profile = javaProfile();
  GeneratorConfig GenCfg;
  GenCfg.NumPrograms = 700;
  GenCfg.Seed = 0x3EC;
  GeneratedCorpus Corpus = generateCorpus(Profile, GenCfg, S);
  LearnerConfig Cfg;
  Cfg.ExperimentalPatterns = true;
  USpecLearner Learner(S, Cfg);
  LearnResult Result = Learner.learn(Corpus.Programs);
  auto Labeled = labelCandidates(Profile.Registry, S, Result.Candidates);

  size_t RecvCands = 0, RecvSelected = 0, RecvValidSel = 0;
  for (const LabeledCandidate &L : Labeled) {
    if (L.C.S.TheKind != Spec::Kind::RetRecv)
      continue;
    ++RecvCands;
    if (L.C.Score >= 0.6) {
      ++RecvSelected;
      RecvValidSel += L.isValid();
    }
  }
  std::printf("RetRecv candidates: %zu; selected at tau=0.6: %zu "
              "(%zu ground-truth valid)\n",
              RecvCands, RecvSelected, RecvValidSel);
  for (const LabeledCandidate &L : Labeled) {
    if (L.C.S.TheKind != Spec::Kind::RetRecv || L.C.Score < 0.6)
      continue;
    std::printf("  %-45s score %.3f  %s\n", L.C.S.str(S).c_str(), L.C.Score,
                L.isValid() ? "correct" : "incorrect");
  }
  std::printf("\nshape: the candidate space explodes (every call site "
              "matches) while only builder APIs are valid — the \"modest "
              "results\" the paper reports for extra patterns\n");
}

int main() {
  std::printf("USpec reproduction — §7.2 scoring ablations\n");
  PipelineRun Run = runPipeline(javaProfile(), 900, 0xF16A);
  scoringTable(Run);
  edgeConfidenceOnly(Run);
  retSameForAll(Run);
  initialAnalysisPrecision();
  extendedPatterns();
  return 0;
}
