//===- tab3_example_specs.cpp - Reproduces Tab. 3 -----------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Tab. 3: example inferred specifications with the number of matches in the
// training set and their score, including incorrect ones the pipeline learns
// (the paper shows RetArg(rulePostProcessing, addChild, 2) and
// RetSame(List.pop) as high-scoring incorrect specs).
//
// Also prints the §7.2 headline counts: candidates/selected specifications
// and the API classes they span (paper: Java 1154 → 621 over 536 → 313
// classes; Python 2394 → 1438 over 1488 → 968 classes; our corpus is
// smaller, the selection ratio and class spread are the comparable shape).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>

using namespace uspec;
using namespace uspec::bench;

namespace {

void runProfile(LanguageProfile Profile, size_t N, uint64_t Seed,
                const std::vector<std::string> &Showcase) {
  PipelineRun Run = runPipeline(std::move(Profile), N, Seed);
  const StringInterner &S = *Run.Strings;

  banner("Tab. 3 — example specifications (" + Run.Profile.Name + ")");

  TextTable T;
  T.setHeader({"specification", "library", "#matches", "score", "groundtruth"});
  // Showcase rows: print the named specs if learned; otherwise the top ones.
  auto Validity = [](SpecValidity V) {
    switch (V) {
    case SpecValidity::Valid:
      return "correct";
    case SpecValidity::Invalid:
      return "incorrect";
    case SpecValidity::Unknown:
      return "unknown";
    }
    return "?";
  };
  size_t Printed = 0;
  for (const std::string &Want : Showcase) {
    for (const LabeledCandidate &L : Run.Labeled) {
      std::string Repr = L.C.S.str(S);
      if (Repr.find(Want) == std::string::npos)
        continue;
      T.addRow({Repr, Run.Profile.Registry.libraryOf(L.C.S, S),
                std::to_string(L.C.Matches), TextTable::formatReal(L.C.Score),
                Validity(L.Validity)});
      ++Printed;
      break;
    }
  }
  T.addSeparator();
  // Top-scored additional rows.
  size_t Extra = 0;
  for (const LabeledCandidate &L : Run.Labeled) {
    if (Extra >= 5)
      break;
    bool InShowcase = false;
    std::string Repr = L.C.S.str(S);
    for (const std::string &Want : Showcase)
      InShowcase |= Repr.find(Want) != std::string::npos;
    if (InShowcase)
      continue;
    T.addRow({Repr, Run.Profile.Registry.libraryOf(L.C.S, S),
              std::to_string(L.C.Matches), TextTable::formatReal(L.C.Score),
              Validity(L.Validity)});
    ++Extra;
  }
  std::printf("%s", T.render().c_str());

  // §7.2 headline counts.
  size_t Selected = 0;
  for (const LabeledCandidate &L : Run.Labeled)
    Selected += L.C.Score >= 0.6;
  std::printf("\n%s: %zu candidate specs over %zu API classes; "
              "%zu selected at tau=0.6 (consistency extension added %zu); "
              "%zu classes covered by selection\n",
              Run.Profile.Name.c_str(), Run.Result.Candidates.size(),
              USpecLearner::countApiClasses(Run.Result.Candidates), Selected,
              Run.Result.AddedByExtension,
              USpecLearner::countApiClasses(Run.Result.Selected));

  // The "37% of selected specs have no get/put/set in a method name" flavor
  // statistic (§7.2).
  size_t NoGetPutSet = 0, Total = 0;
  for (const Spec &Sp : Run.Result.Selected.all()) {
    ++Total;
    std::string Names = S.str(Sp.Target.Name) + " " + S.str(Sp.Source.Name);
    std::transform(Names.begin(), Names.end(), Names.begin(), ::tolower);
    if (Names.find("get") == std::string::npos &&
        Names.find("put") == std::string::npos &&
        Names.find("set") == std::string::npos)
      ++NoGetPutSet;
  }
  if (Total)
    std::printf("specs without get/put/set in any method name: %zu/%zu "
                "(paper: 37%%)\n",
                NoGetPutSet, Total);
}

} // namespace

int main() {
  std::printf("USpec reproduction — Tab. 3 (example learned specifications)\n");
  // Factory-only classes (ResultSet, KeyStore, JsonNode) are learned under
  // the unknown receiver class "?", so those rows match by method name.
  runProfile(javaProfile(), 900, 0xF16A,
             {"RetArg(HashMap.get/1, HashMap.put/2, 2)",
              ".getKey/2)",
              ".getString/1)",
              "RetArg(SparseArray.get/1, SparseArray.put/2, 2)",
              ".path/1)",
              "RetSame(ViewGroup.findViewById/1)"});
  runProfile(pythonProfile(), 900, 0xF16B,
             {"RetArg(Dict.SubscriptLoad/1, Dict.SubscriptStore/2, 2)",
              "RetSame(List.pop/0)",
              "RetArg(SafeConfigParser.get/2, SafeConfigParser.set/3, 3)"});
  return 0;
}
