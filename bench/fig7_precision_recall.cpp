//===- fig7_precision_recall.cpp - Reproduces Fig. 7 --------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Fig. 7: precision and recall of the selected specifications for different
// thresholds τ, for the Java-flavored (7a) and Python-flavored (7b) corpora.
//
// The sweep is artifact-backed: ϕ is trained exactly once per corpus, the
// run is checkpointed as a USPB artifact, and every τ point re-selects from
// the *loaded* candidate table — the "train once, serve many" path the
// artifact store exists for (DESIGN.md §7).
//
// Expected shape (paper): precision is already high at τ = 0 (most
// candidates are correct) and rises toward 1 as τ grows, while recall falls;
// the Python curve sits above the Java curve in precision.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace uspec;
using namespace uspec::bench;

namespace {

void runFigure(const char *Label, LanguageProfile Profile, size_t N,
               uint64_t Seed) {
  PipelineRun Run = runPipeline(std::move(Profile), N, Seed);

  // Checkpoint the run and reload it into a fresh interner; the τ sweep
  // below reads only the loaded artifact, never the in-memory result.
  std::string Artifact =
      saveLearnArtifacts(Run.Result, Run.Config, *Run.Strings, Run.Manifest);
  StringInterner LoadedStrings;
  ArtifactError Err;
  auto Loaded = loadLearnArtifacts(Artifact, LoadedStrings, &Err);
  if (!Loaded) {
    std::fprintf(stderr, "fatal: artifact round trip failed: %s\n",
                 Err.str().c_str());
    std::exit(1);
  }
  std::vector<LabeledCandidate> Labeled = labelCandidates(
      Run.Profile.Registry, LoadedStrings, Loaded->Result.Candidates);

  banner(std::string("Fig. 7") + Label + " — precision vs recall (" +
         Run.Profile.Name + ", " + std::to_string(N) + " programs, " +
         std::to_string(Loaded->Result.Candidates.size()) +
         " candidates, artifact " + std::to_string(Artifact.size()) +
         " bytes" + (Run.FromCache ? ", cached model" : "") + ")");

  TextTable T;
  T.setHeader({"tau", "precision", "recall", "selected", "valid"});
  for (double Tau : {0.0, 0.2, 0.4, 0.6, 0.7, 0.8, 0.9}) {
    PrPoint P = prAtTau(Labeled, Tau);
    T.addRow({TextTable::formatReal(Tau, 1), TextTable::formatReal(P.Precision),
              TextTable::formatReal(P.Recall), std::to_string(P.Selected),
              std::to_string(P.Valid)});
  }
  std::printf("%s", T.render().c_str());
  std::printf("\nmodel: %zu training samples, %.3f in-sample accuracy "
              "(loaded from artifact, trained once)\n",
              Loaded->Result.NumTrainingSamples,
              Loaded->Result.TrainAccuracy);
}

} // namespace

int main() {
  std::printf("USpec reproduction — Fig. 7 (precision/recall vs τ)\n");
  std::printf("Paper reference points: Java τ=0.6 → precision 0.924, recall "
              "0.620; precision already high at τ=0.\n");
  runFigure("a", javaProfile(), 900, 0xF16A);
  runFigure("b", pythonProfile(), 900, 0xF16B);
  return 0;
}
