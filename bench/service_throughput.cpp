//===- service_throughput.cpp - Query-service throughput ----------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Measures the resident alias-query service (src/service/, DESIGN.md §9):
// cold-cache vs warm-cache throughput, scaling over worker counts, and the
// request-level cache hit rate. The interesting shape: a warm cache answers
// from the fingerprint-keyed LRU without parse/lower/points-to, so warm QPS
// should sit well above cold QPS at every worker count, and cold QPS should
// scale with workers (each request analyzes on private state, no shared
// locks on the hot path).
//
// Two modes, mirroring perf_pipeline.cpp:
//  - default: google-benchmark micro harnesses;
//  - --uspec_service_json[=N]: one JSON trajectory document over worker
//    counts {1, 2, 4, 8} with cold/warm QPS, hit rates, and p50 latency —
//    the repo's machine-readable BENCH format. The document also carries a
//    replica-scaling section ("router_runs"): the same request corpus
//    pushed through the consistent-hash router (src/distrib/Router.h) in
//    front of 1/2/4 serve replicas on Unix sockets, measuring the routed
//    end-to-end path (connect + forward + analyze + envelope). Because the
//    ring partitions programs across shared-nothing caches, warm routed QPS
//    should scale with replicas while the aggregate cache footprint stays
//    flat. A third section ("hedged_runs") measures the tail-latency story:
//    one of two replicas sits behind a fixed-delay proxy (a slow peer), and
//    the routed p99 is recorded with hedging off and on — the hedge leg to
//    the fast replica should cap the tail near the hedge delay instead of
//    the injected slowness.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "distrib/Router.h"
#include "distrib/Wire.h"
#include "service/Server.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <map>
#include <thread>
#include <unistd.h>

using namespace uspec;
using namespace uspec::bench;
using namespace uspec::service;

namespace {

/// Deterministic request corpus: MiniLang sources, their ready-made analyze
/// request lines, and a spec set learned from the same sources.
struct RequestCorpus {
  std::vector<std::string> Sources;
  std::vector<std::string> Requests;
  ServiceSpecs Specs;
};

RequestCorpus &requestCorpus(size_t N) {
  static std::map<size_t, std::unique_ptr<RequestCorpus>> Cache;
  auto It = Cache.find(N);
  if (It != Cache.end())
    return *It->second;

  auto RC = std::make_unique<RequestCorpus>();
  LanguageProfile Profile = javaProfile();
  GeneratorConfig Cfg;
  Rng Rand(0x5E21CE);
  StringInterner Strings;
  std::vector<IRProgram> Corpus;
  for (size_t I = 0; I < N; ++I) {
    std::string Source = generateProgramSource(Profile, Cfg, Rand);
    DiagnosticSink Diags;
    auto P =
        parseAndLower(Source, "p" + std::to_string(I), Strings, Diags);
    if (!P)
      continue; // generator output always parses; belt and braces
    Corpus.push_back(std::move(*P));
    std::string Request = "{\"id\":" + std::to_string(I) +
                          ",\"verb\":\"analyze\",\"program\":";
    appendJsonString(Request, Source);
    Request += "}";
    RC->Sources.push_back(std::move(Source));
    RC->Requests.push_back(std::move(Request));
  }
  USpecLearner Learner(Strings, LearnerConfig());
  LearnResult Result = Learner.learn(Corpus);
  RC->Specs = ServiceSpecs::fromSpecSet(Result.Selected, Strings);
  return *Cache.emplace(N, std::move(RC)).first->second;
}

/// Submits every request once and waits for all responses; the queue is
/// sized to hold the whole batch, so nothing is rejected and the measured
/// number is pure service time.
void submitAll(Server &S, const std::vector<std::string> &Requests) {
  std::vector<std::future<std::string>> Futures;
  Futures.reserve(Requests.size());
  for (const std::string &R : Requests)
    Futures.push_back(S.submit(R));
  for (auto &F : Futures)
    benchmark::DoNotOptimize(F.get());
}

ServerConfig configFor(unsigned Workers, size_t Batch) {
  ServerConfig Cfg;
  Cfg.Workers = Workers;
  Cfg.QueueCapacity = Batch + 16;
  Cfg.CacheCapacity = 2 * Batch + 16;
  return Cfg;
}

//===----------------------------------------------------------------------===//
// google-benchmark harnesses
//===----------------------------------------------------------------------===//

/// Cold path: a fresh server per iteration, every request misses the cache
/// and runs parse/lower/points-to.
void BM_ServiceCold(benchmark::State &State) {
  const unsigned Workers = static_cast<unsigned>(State.range(0));
  RequestCorpus &RC = requestCorpus(64);
  for (auto _ : State) {
    Server S(configFor(Workers, RC.Requests.size()), RC.Specs);
    submitAll(S, RC.Requests);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(RC.Requests.size()));
}
BENCHMARK(BM_ServiceCold)->Arg(1)->Arg(4)->UseRealTime();

/// Warm path: one long-lived server, first batch primes the cache, every
/// measured request is a hit.
void BM_ServiceWarm(benchmark::State &State) {
  const unsigned Workers = static_cast<unsigned>(State.range(0));
  RequestCorpus &RC = requestCorpus(64);
  Server S(configFor(Workers, RC.Requests.size()), RC.Specs);
  submitAll(S, RC.Requests); // prime
  for (auto _ : State)
    submitAll(S, RC.Requests);
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(RC.Requests.size()));
}
BENCHMARK(BM_ServiceWarm)->Arg(1)->Arg(4)->UseRealTime();

/// Protocol floor: stats requests only — no analysis, no cache; bounds the
/// fixed per-request cost (parse + dispatch + envelope).
void BM_ServiceStatsVerb(benchmark::State &State) {
  Server S(configFor(2, 64), ServiceSpecs());
  for (auto _ : State)
    benchmark::DoNotOptimize(S.handle("{\"verb\":\"stats\"}"));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ServiceStatsVerb);

//===----------------------------------------------------------------------===//
// --uspec_service_json: the BENCH trajectory document
//===----------------------------------------------------------------------===//

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

//===----------------------------------------------------------------------===//
// Replica scaling: the routed serving path
//===----------------------------------------------------------------------===//

/// One in-process serve replica behind a real Unix socket, exactly the
/// process shape of `uspec serve --socket` minus the fork.
struct BenchReplica {
  std::unique_ptr<Server> S;
  volatile int Stop = 0;
  std::thread T;
  std::string Path;

  bool start(std::string SockPath, const ServiceSpecs &Specs, size_t Batch) {
    Path = std::move(SockPath);
    ServerConfig Cfg = configFor(2, Batch);
    Cfg.AcceptPollMs = 20;
    S = std::make_unique<Server>(Cfg, Specs);
    T = std::thread([this] { S->serveUnixSocket(Path, &Stop, nullptr); });
    for (int I = 0; I < 500 && access(Path.c_str(), F_OK) != 0; ++I)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return access(Path.c_str(), F_OK) == 0;
  }

  ~BenchReplica() {
    Stop = 1;
    if (T.joinable())
      T.join();
  }
};

/// Pushes every request through the router once from \p Clients concurrent
/// client threads (Router::handleLine is thread-safe; each forward opens
/// its own connection, like independent CLI clients). Returns wall seconds.
double routedPass(distrib::Router &R,
                  const std::vector<std::string> &Requests,
                  unsigned Clients) {
  auto Start = std::chrono::steady_clock::now();
  std::atomic<size_t> Next{0};
  std::vector<std::thread> Threads;
  Threads.reserve(Clients);
  for (unsigned C = 0; C < Clients; ++C)
    Threads.emplace_back([&] {
      for (size_t I = Next.fetch_add(1); I < Requests.size();
           I = Next.fetch_add(1))
        benchmark::DoNotOptimize(R.handleLine(Requests[I]));
    });
  for (std::thread &T : Threads)
    T.join();
  return secondsSince(Start);
}

/// Emits the "router_runs" array: cold + warm routed passes at 1/2/4
/// replicas. Returns false if a replica socket failed to come up.
bool runRouterScaling(RequestCorpus &RC) {
  const unsigned ReplicaCounts[] = {1, 2, 4};
  const unsigned Clients = 8;
  std::printf("  \"router_runs\": [\n");
  for (size_t I = 0; I < std::size(ReplicaCounts); ++I) {
    unsigned N = ReplicaCounts[I];
    std::vector<std::unique_ptr<BenchReplica>> Fleet;
    distrib::RouterConfig RCfg;
    for (unsigned R = 0; R < N; ++R) {
      auto Rep = std::make_unique<BenchReplica>();
      std::string Path = "/tmp/uspec_bench_rt" + std::to_string(getpid()) +
                         "_" + std::to_string(N) + "_" + std::to_string(R) +
                         ".sock";
      if (!Rep->start(Path, RC.Specs, RC.Requests.size())) {
        std::fprintf(stderr, "error: replica socket %s never came up\n",
                     Path.c_str());
        return false;
      }
      RCfg.Replicas.push_back(Rep->Path);
      Fleet.push_back(std::move(Rep));
    }
    distrib::Router Router(RCfg);

    double ColdSec = routedPass(Router, RC.Requests, Clients);
    double WarmSec = routedPass(Router, RC.Requests, Clients);

    uint64_t Hits = 0, Misses = 0;
    for (const auto &Rep : Fleet) {
      Hits += Rep->S->metrics().cacheHitCount();
      Misses += Rep->S->metrics().cacheMissCount();
    }
    double HitRate =
        Hits + Misses ? static_cast<double>(Hits) / (Hits + Misses) : 0;
    double Num = static_cast<double>(RC.Requests.size());
    std::printf("    {\"replicas\": %u, \"cold_qps\": %.1f, "
                "\"warm_qps\": %.1f, \"warm_speedup\": %.2f, "
                "\"hit_rate\": %.4f}%s\n",
                N, ColdSec > 0 ? Num / ColdSec : 0,
                WarmSec > 0 ? Num / WarmSec : 0,
                WarmSec > 0 ? ColdSec / WarmSec : 0, HitRate,
                I + 1 < std::size(ReplicaCounts) ? "," : "");
  }
  std::printf("  ],\n");
  return true;
}

//===----------------------------------------------------------------------===//
// Hedged tail: one slow replica, p99 with and without request hedging
//===----------------------------------------------------------------------===//

/// A Unix-socket proxy that fronts one replica and delays every request by
/// a fixed amount — a deterministic "slow peer" for the tail measurement.
/// Each accepted connection is served on its own thread so hedged primary
/// legs that are still sleeping never queue behind fresh requests.
struct DelayProxy {
  std::string Path;
  std::string Backend;
  unsigned DelayMs = 0;
  int ListenFd = -1;
  volatile int Stop = 0;
  std::thread Acceptor;
  std::vector<std::thread> Conns;
  std::mutex ConnMu;

  bool start(std::string SockPath, std::string BackendPath, unsigned Ms) {
    Path = std::move(SockPath);
    Backend = std::move(BackendPath);
    DelayMs = Ms;
    distrib::Address Addr;
    Addr.Path = Path;
    ListenFd = distrib::wireListen(Addr);
    if (ListenFd < 0)
      return false;
    Acceptor = std::thread([this] { acceptLoop(); });
    return true;
  }

  void acceptLoop() {
    while (!Stop) {
      int Fd = distrib::wireAccept(ListenFd, 50);
      if (Fd < 0)
        continue;
      std::lock_guard<std::mutex> G(ConnMu);
      Conns.emplace_back([this, Fd] { serveOne(Fd); });
    }
  }

  void serveOne(int Fd) {
    std::string Line;
    char C;
    while (read(Fd, &C, 1) == 1 && C != '\n')
      Line.push_back(C);
    std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
    std::string Resp;
    if (!Line.empty() && distrib::clientRoundTrip(Backend, Line, Resp)) {
      Resp.push_back('\n');
      size_t Off = 0;
      while (Off < Resp.size()) {
        ssize_t W = write(Fd, Resp.data() + Off, Resp.size() - Off);
        if (W <= 0)
          break;
        Off += static_cast<size_t>(W);
      }
    }
    close(Fd);
  }

  ~DelayProxy() {
    Stop = 1;
    if (Acceptor.joinable())
      Acceptor.join();
    std::lock_guard<std::mutex> G(ConnMu);
    for (std::thread &T : Conns)
      T.join();
    if (ListenFd >= 0)
      close(ListenFd);
    unlink(Path.c_str());
  }
};

/// One sequential pass recording per-request wall latency. Single-client on
/// purpose: the tail being measured is per-request service latency, not
/// queueing under load.
std::vector<double> latencyPass(distrib::Router &R,
                                const std::vector<std::string> &Requests) {
  std::vector<double> Seconds;
  Seconds.reserve(Requests.size());
  for (const std::string &Req : Requests) {
    auto Start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(R.handleLine(Req));
    Seconds.push_back(secondsSince(Start));
  }
  return Seconds;
}

double percentileMs(std::vector<double> Seconds, double P) {
  if (Seconds.empty())
    return 0;
  std::sort(Seconds.begin(), Seconds.end());
  size_t Idx = static_cast<size_t>(P * static_cast<double>(Seconds.size()));
  if (Idx >= Seconds.size())
    Idx = Seconds.size() - 1;
  return Seconds[Idx] * 1e3;
}

/// Emits the "hedged_runs" array: two replicas, one behind a DelayProxy,
/// p50/p99 of the routed path with hedging off then on. Returns false if a
/// socket failed to come up.
bool runHedgedTail(RequestCorpus &RC) {
  const unsigned SlowMs = 25, HedgeMs = 5;
  std::string Base =
      "/tmp/uspec_bench_hg" + std::to_string(getpid());

  BenchReplica Fast, SlowBackend;
  if (!Fast.start(Base + "_fast.sock", RC.Specs, RC.Requests.size()) ||
      !SlowBackend.start(Base + "_slowb.sock", RC.Specs,
                         RC.Requests.size())) {
    std::fprintf(stderr, "error: hedged-tail replica never came up\n");
    return false;
  }
  DelayProxy Slow;
  if (!Slow.start(Base + "_slow.sock", SlowBackend.Path, SlowMs)) {
    std::fprintf(stderr, "error: hedged-tail proxy never came up\n");
    return false;
  }

  distrib::RouterConfig Cfg;
  Cfg.Replicas = {Fast.Path, Slow.Path};
  std::printf("  \"hedged_runs\": [\n");
  for (int Hedged = 0; Hedged <= 1; ++Hedged) {
    Cfg.HedgeMs = Hedged ? HedgeMs : 0;
    distrib::Router Router(Cfg);
    latencyPass(Router, RC.Requests); // prime both replica caches
    std::vector<double> Seconds = latencyPass(Router, RC.Requests);
    std::printf("    {\"mode\": \"%s\", \"slow_replica_delay_ms\": %u, "
                "\"hedge_ms\": %u, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                "\"hedged\": %llu, \"hedged_wins\": %llu}%s\n",
                Hedged ? "hedged" : "unhedged", SlowMs,
                Hedged ? HedgeMs : 0, percentileMs(Seconds, 0.50),
                percentileMs(Seconds, 0.99),
                static_cast<unsigned long long>(Router.hedgedCount()),
                static_cast<unsigned long long>(Router.hedgedWinsCount()),
                Hedged ? "" : ",");
  }
  std::printf("  ]\n");
  return true;
}

/// One JSON document: for each worker count, cold-pass QPS (fresh server,
/// all misses), warm-pass QPS (same server, all hits), hit rate and p50.
int runServiceJson(size_t NumPrograms) {
  RequestCorpus &RC = requestCorpus(NumPrograms);

  const unsigned WorkerCounts[] = {1, 2, 4, 8};
  std::printf("{\n  \"bench\": \"service_throughput\",\n"
              "  \"programs\": %zu,\n  \"specs\": %zu,\n  \"runs\": [\n",
              RC.Requests.size(), RC.Specs.Lines.size());
  for (size_t I = 0; I < std::size(WorkerCounts); ++I) {
    unsigned Workers = WorkerCounts[I];
    Server S(configFor(Workers, RC.Requests.size()), RC.Specs);

    auto ColdStart = std::chrono::steady_clock::now();
    submitAll(S, RC.Requests);
    double ColdSec = secondsSince(ColdStart);

    auto WarmStart = std::chrono::steady_clock::now();
    submitAll(S, RC.Requests);
    double WarmSec = secondsSince(WarmStart);

    uint64_t Hits = S.metrics().cacheHitCount();
    uint64_t Misses = S.metrics().cacheMissCount();
    double HitRate =
        Hits + Misses ? static_cast<double>(Hits) / (Hits + Misses) : 0;
    double N = static_cast<double>(RC.Requests.size());
    std::printf("    {\"workers\": %u, \"cold_qps\": %.1f, "
                "\"warm_qps\": %.1f, \"warm_speedup\": %.2f, "
                "\"hit_rate\": %.4f, \"p50_ms\": %.3f}%s\n",
                Workers, ColdSec > 0 ? N / ColdSec : 0,
                WarmSec > 0 ? N / WarmSec : 0,
                WarmSec > 0 ? ColdSec / WarmSec : 0, HitRate,
                S.metrics().p50LatencySeconds() * 1e3,
                I + 1 < std::size(WorkerCounts) ? "," : "");
  }
  std::printf("  ],\n");
  if (!runRouterScaling(RC))
    return 1;
  if (!runHedgedTail(RC))
    return 1;
  std::printf("}\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (!std::strncmp(argv[I], "--uspec_service_json", 20)) {
      size_t N = 128;
      if (argv[I][20] == '=')
        N = static_cast<size_t>(std::strtoull(argv[I] + 21, nullptr, 10));
      return runServiceJson(N ? N : 128);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
