//===- service_throughput.cpp - Query-service throughput ----------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Measures the resident alias-query service (src/service/, DESIGN.md §9):
// cold-cache vs warm-cache throughput, scaling over worker counts, and the
// request-level cache hit rate. The interesting shape: a warm cache answers
// from the fingerprint-keyed LRU without parse/lower/points-to, so warm QPS
// should sit well above cold QPS at every worker count, and cold QPS should
// scale with workers (each request analyzes on private state, no shared
// locks on the hot path).
//
// Two modes, mirroring perf_pipeline.cpp:
//  - default: google-benchmark micro harnesses;
//  - --uspec_service_json[=N]: one JSON trajectory document over worker
//    counts {1, 2, 4, 8} with cold/warm QPS, hit rates, and p50 latency —
//    the repo's machine-readable BENCH format. The document also carries a
//    replica-scaling section ("router_runs"): the same request corpus
//    pushed through the consistent-hash router (src/distrib/Router.h) in
//    front of 1/2/4 serve replicas on Unix sockets, measuring the routed
//    end-to-end path (connect + forward + analyze + envelope). Because the
//    ring partitions programs across shared-nothing caches, warm routed QPS
//    should scale with replicas while the aggregate cache footprint stays
//    flat.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "distrib/Router.h"
#include "service/Server.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <map>
#include <thread>
#include <unistd.h>

using namespace uspec;
using namespace uspec::bench;
using namespace uspec::service;

namespace {

/// Deterministic request corpus: MiniLang sources, their ready-made analyze
/// request lines, and a spec set learned from the same sources.
struct RequestCorpus {
  std::vector<std::string> Sources;
  std::vector<std::string> Requests;
  ServiceSpecs Specs;
};

RequestCorpus &requestCorpus(size_t N) {
  static std::map<size_t, std::unique_ptr<RequestCorpus>> Cache;
  auto It = Cache.find(N);
  if (It != Cache.end())
    return *It->second;

  auto RC = std::make_unique<RequestCorpus>();
  LanguageProfile Profile = javaProfile();
  GeneratorConfig Cfg;
  Rng Rand(0x5E21CE);
  StringInterner Strings;
  std::vector<IRProgram> Corpus;
  for (size_t I = 0; I < N; ++I) {
    std::string Source = generateProgramSource(Profile, Cfg, Rand);
    DiagnosticSink Diags;
    auto P =
        parseAndLower(Source, "p" + std::to_string(I), Strings, Diags);
    if (!P)
      continue; // generator output always parses; belt and braces
    Corpus.push_back(std::move(*P));
    std::string Request = "{\"id\":" + std::to_string(I) +
                          ",\"verb\":\"analyze\",\"program\":";
    appendJsonString(Request, Source);
    Request += "}";
    RC->Sources.push_back(std::move(Source));
    RC->Requests.push_back(std::move(Request));
  }
  USpecLearner Learner(Strings, LearnerConfig());
  LearnResult Result = Learner.learn(Corpus);
  RC->Specs = ServiceSpecs::fromSpecSet(Result.Selected, Strings);
  return *Cache.emplace(N, std::move(RC)).first->second;
}

/// Submits every request once and waits for all responses; the queue is
/// sized to hold the whole batch, so nothing is rejected and the measured
/// number is pure service time.
void submitAll(Server &S, const std::vector<std::string> &Requests) {
  std::vector<std::future<std::string>> Futures;
  Futures.reserve(Requests.size());
  for (const std::string &R : Requests)
    Futures.push_back(S.submit(R));
  for (auto &F : Futures)
    benchmark::DoNotOptimize(F.get());
}

ServerConfig configFor(unsigned Workers, size_t Batch) {
  ServerConfig Cfg;
  Cfg.Workers = Workers;
  Cfg.QueueCapacity = Batch + 16;
  Cfg.CacheCapacity = 2 * Batch + 16;
  return Cfg;
}

//===----------------------------------------------------------------------===//
// google-benchmark harnesses
//===----------------------------------------------------------------------===//

/// Cold path: a fresh server per iteration, every request misses the cache
/// and runs parse/lower/points-to.
void BM_ServiceCold(benchmark::State &State) {
  const unsigned Workers = static_cast<unsigned>(State.range(0));
  RequestCorpus &RC = requestCorpus(64);
  for (auto _ : State) {
    Server S(configFor(Workers, RC.Requests.size()), RC.Specs);
    submitAll(S, RC.Requests);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(RC.Requests.size()));
}
BENCHMARK(BM_ServiceCold)->Arg(1)->Arg(4)->UseRealTime();

/// Warm path: one long-lived server, first batch primes the cache, every
/// measured request is a hit.
void BM_ServiceWarm(benchmark::State &State) {
  const unsigned Workers = static_cast<unsigned>(State.range(0));
  RequestCorpus &RC = requestCorpus(64);
  Server S(configFor(Workers, RC.Requests.size()), RC.Specs);
  submitAll(S, RC.Requests); // prime
  for (auto _ : State)
    submitAll(S, RC.Requests);
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(RC.Requests.size()));
}
BENCHMARK(BM_ServiceWarm)->Arg(1)->Arg(4)->UseRealTime();

/// Protocol floor: stats requests only — no analysis, no cache; bounds the
/// fixed per-request cost (parse + dispatch + envelope).
void BM_ServiceStatsVerb(benchmark::State &State) {
  Server S(configFor(2, 64), ServiceSpecs());
  for (auto _ : State)
    benchmark::DoNotOptimize(S.handle("{\"verb\":\"stats\"}"));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ServiceStatsVerb);

//===----------------------------------------------------------------------===//
// --uspec_service_json: the BENCH trajectory document
//===----------------------------------------------------------------------===//

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

//===----------------------------------------------------------------------===//
// Replica scaling: the routed serving path
//===----------------------------------------------------------------------===//

/// One in-process serve replica behind a real Unix socket, exactly the
/// process shape of `uspec serve --socket` minus the fork.
struct BenchReplica {
  std::unique_ptr<Server> S;
  volatile int Stop = 0;
  std::thread T;
  std::string Path;

  bool start(std::string SockPath, const ServiceSpecs &Specs, size_t Batch) {
    Path = std::move(SockPath);
    ServerConfig Cfg = configFor(2, Batch);
    Cfg.AcceptPollMs = 20;
    S = std::make_unique<Server>(Cfg, Specs);
    T = std::thread([this] { S->serveUnixSocket(Path, &Stop, nullptr); });
    for (int I = 0; I < 500 && access(Path.c_str(), F_OK) != 0; ++I)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return access(Path.c_str(), F_OK) == 0;
  }

  ~BenchReplica() {
    Stop = 1;
    if (T.joinable())
      T.join();
  }
};

/// Pushes every request through the router once from \p Clients concurrent
/// client threads (Router::handleLine is thread-safe; each forward opens
/// its own connection, like independent CLI clients). Returns wall seconds.
double routedPass(distrib::Router &R,
                  const std::vector<std::string> &Requests,
                  unsigned Clients) {
  auto Start = std::chrono::steady_clock::now();
  std::atomic<size_t> Next{0};
  std::vector<std::thread> Threads;
  Threads.reserve(Clients);
  for (unsigned C = 0; C < Clients; ++C)
    Threads.emplace_back([&] {
      for (size_t I = Next.fetch_add(1); I < Requests.size();
           I = Next.fetch_add(1))
        benchmark::DoNotOptimize(R.handleLine(Requests[I]));
    });
  for (std::thread &T : Threads)
    T.join();
  return secondsSince(Start);
}

/// Emits the "router_runs" array: cold + warm routed passes at 1/2/4
/// replicas. Returns false if a replica socket failed to come up.
bool runRouterScaling(RequestCorpus &RC) {
  const unsigned ReplicaCounts[] = {1, 2, 4};
  const unsigned Clients = 8;
  std::printf("  \"router_runs\": [\n");
  for (size_t I = 0; I < std::size(ReplicaCounts); ++I) {
    unsigned N = ReplicaCounts[I];
    std::vector<std::unique_ptr<BenchReplica>> Fleet;
    distrib::RouterConfig RCfg;
    for (unsigned R = 0; R < N; ++R) {
      auto Rep = std::make_unique<BenchReplica>();
      std::string Path = "/tmp/uspec_bench_rt" + std::to_string(getpid()) +
                         "_" + std::to_string(N) + "_" + std::to_string(R) +
                         ".sock";
      if (!Rep->start(Path, RC.Specs, RC.Requests.size())) {
        std::fprintf(stderr, "error: replica socket %s never came up\n",
                     Path.c_str());
        return false;
      }
      RCfg.Replicas.push_back(Rep->Path);
      Fleet.push_back(std::move(Rep));
    }
    distrib::Router Router(RCfg);

    double ColdSec = routedPass(Router, RC.Requests, Clients);
    double WarmSec = routedPass(Router, RC.Requests, Clients);

    uint64_t Hits = 0, Misses = 0;
    for (const auto &Rep : Fleet) {
      Hits += Rep->S->metrics().cacheHitCount();
      Misses += Rep->S->metrics().cacheMissCount();
    }
    double HitRate =
        Hits + Misses ? static_cast<double>(Hits) / (Hits + Misses) : 0;
    double Num = static_cast<double>(RC.Requests.size());
    std::printf("    {\"replicas\": %u, \"cold_qps\": %.1f, "
                "\"warm_qps\": %.1f, \"warm_speedup\": %.2f, "
                "\"hit_rate\": %.4f}%s\n",
                N, ColdSec > 0 ? Num / ColdSec : 0,
                WarmSec > 0 ? Num / WarmSec : 0,
                WarmSec > 0 ? ColdSec / WarmSec : 0, HitRate,
                I + 1 < std::size(ReplicaCounts) ? "," : "");
  }
  std::printf("  ]\n");
  return true;
}

/// One JSON document: for each worker count, cold-pass QPS (fresh server,
/// all misses), warm-pass QPS (same server, all hits), hit rate and p50.
int runServiceJson(size_t NumPrograms) {
  RequestCorpus &RC = requestCorpus(NumPrograms);

  const unsigned WorkerCounts[] = {1, 2, 4, 8};
  std::printf("{\n  \"bench\": \"service_throughput\",\n"
              "  \"programs\": %zu,\n  \"specs\": %zu,\n  \"runs\": [\n",
              RC.Requests.size(), RC.Specs.Lines.size());
  for (size_t I = 0; I < std::size(WorkerCounts); ++I) {
    unsigned Workers = WorkerCounts[I];
    Server S(configFor(Workers, RC.Requests.size()), RC.Specs);

    auto ColdStart = std::chrono::steady_clock::now();
    submitAll(S, RC.Requests);
    double ColdSec = secondsSince(ColdStart);

    auto WarmStart = std::chrono::steady_clock::now();
    submitAll(S, RC.Requests);
    double WarmSec = secondsSince(WarmStart);

    uint64_t Hits = S.metrics().cacheHitCount();
    uint64_t Misses = S.metrics().cacheMissCount();
    double HitRate =
        Hits + Misses ? static_cast<double>(Hits) / (Hits + Misses) : 0;
    double N = static_cast<double>(RC.Requests.size());
    std::printf("    {\"workers\": %u, \"cold_qps\": %.1f, "
                "\"warm_qps\": %.1f, \"warm_speedup\": %.2f, "
                "\"hit_rate\": %.4f, \"p50_ms\": %.3f}%s\n",
                Workers, ColdSec > 0 ? N / ColdSec : 0,
                WarmSec > 0 ? N / WarmSec : 0,
                WarmSec > 0 ? ColdSec / WarmSec : 0, HitRate,
                S.metrics().p50LatencySeconds() * 1e3,
                I + 1 < std::size(WorkerCounts) ? "," : "");
  }
  std::printf("  ],\n");
  if (!runRouterScaling(RC))
    return 1;
  std::printf("}\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (!std::strncmp(argv[I], "--uspec_service_json", 20)) {
      size_t N = 128;
      if (argv[I][20] == '=')
        N = static_cast<size_t>(std::strtoull(argv[I] + 21, nullptr, 10));
      return runServiceJson(N ? N : 128);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
