//===- clients_effect.cpp - Reproduces the Fig. 8 client effects (§7.4) -------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// §7.4: qualitative effects of the learned specifications on client
// analyses. Runs the type-state client (Iterator hasNext/next, Fig. 8a) and
// the taint client (Fig. 8b) on the scenario programs, and additionally
// counts warnings across a generated evaluation corpus, with the unaware
// baseline vs the API-aware analysis using *learned* specifications.
//
// Expected shape: the type-state false positive disappears and the taint
// false negative becomes a finding once the learned specs are in place.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "clients/Taint.h"
#include "clients/Typestate.h"

using namespace uspec;
using namespace uspec::bench;

namespace {

constexpr const char *Fig8a = R"(
  class Main {
    def main() {
      var iters = new ArrayList();
      var i = 0;
      if (iters.get(i).hasNext()) {
        someMethod.call(iters.get(i).next());
      }
    }
  }
)";

constexpr const char *Fig8b = R"(
  class Main {
    def call() {
      var kwargs = new Dict();
      kwargs.setdefault("data-value", request.input("value"));
      var w = kwargs.SubscriptLoad("data-value");
      html.render(w);
    }
  }
)";

struct ScenarioResult {
  size_t Unaware = 0;
  size_t Aware = 0;
};

ScenarioResult runTypestateScenario(StringInterner &S,
                                    const SpecSet &Learned) {
  DiagnosticSink Diags;
  auto P = parseAndLower(Fig8a, "fig8a", S, Diags);
  ScenarioResult R;
  if (!P)
    return R;
  TypestateProtocol Proto{"hasNext", "next"};
  R.Unaware =
      checkTypestate(analyzeProgram(*P, S, AnalysisOptions()), S, Proto)
          .size();
  AnalysisOptions Aware;
  Aware.ApiAware = true;
  Aware.Specs = &Learned;
  Aware.CoverageExtension = true;
  R.Aware = checkTypestate(analyzeProgram(*P, S, Aware), S, Proto).size();
  return R;
}

ScenarioResult runTaintScenario(StringInterner &S, const SpecSet &Learned) {
  DiagnosticSink Diags;
  auto P = parseAndLower(Fig8b, "fig8b", S, Diags);
  ScenarioResult R;
  if (!P)
    return R;
  TaintConfig Config;
  Config.Sources = {"input"};
  Config.Sinks = {"render"};
  Config.Sanitizers = {"escape"};
  R.Unaware =
      checkTaint(analyzeProgram(*P, S, AnalysisOptions()), S, Config).size();
  AnalysisOptions Aware;
  Aware.ApiAware = true;
  Aware.Specs = &Learned;
  Aware.CoverageExtension = true;
  R.Aware = checkTaint(analyzeProgram(*P, S, Aware), S, Config).size();
  return R;
}

} // namespace

int main() {
  std::printf("USpec reproduction — Fig. 8 / §7.4 client analyses\n");

  // Learn Java and Python specs.
  PipelineRun Java = runPipeline(javaProfile(), 900, 0xF16A);
  PipelineRun Python = runPipeline(pythonProfile(), 900, 0xF16B);

  banner("Fig. 8a — type-state client (Iterator protocol)");
  ScenarioResult TS = runTypestateScenario(*Java.Strings, Java.Result.Selected);
  TextTable T1;
  T1.setHeader({"analysis", "hasNext/next warnings"});
  T1.addRow({"API-unaware baseline", std::to_string(TS.Unaware)});
  T1.addRow({"API-aware (learned specs)", std::to_string(TS.Aware)});
  std::printf("%s", T1.render().c_str());
  std::printf("-> %s\n",
              TS.Unaware > 0 && TS.Aware == 0
                  ? "false positive eliminated (paper Fig. 8a)"
                  : "unexpected: check RetSame(ArrayList.get) selection");

  banner("Fig. 8b — taint client (XSS flow through kwargs)");
  ScenarioResult TA = runTaintScenario(*Python.Strings, Python.Result.Selected);
  TextTable T2;
  T2.setHeader({"analysis", "source->sink findings"});
  T2.addRow({"API-unaware baseline", std::to_string(TA.Unaware)});
  T2.addRow({"API-aware (learned specs)", std::to_string(TA.Aware)});
  std::printf("%s", T2.render().c_str());
  std::printf("-> %s\n",
              TA.Unaware == 0 && TA.Aware > 0
                  ? "false negative fixed: the vulnerability is found "
                    "(paper Fig. 8b)"
                  : "unexpected: check RetArg(SubscriptLoad, setdefault, 2)");

  // Corpus-wide effect of aliasing on the type-state client.
  banner("Corpus-wide type-state warnings (fresh Java corpus)");
  GeneratorConfig EvalCfg;
  EvalCfg.NumPrograms = 150;
  EvalCfg.Seed = 0xC11E27;
  GeneratedCorpus Eval = generateCorpus(Java.Profile, EvalCfg, *Java.Strings);
  size_t WarnUnaware = 0, WarnAware = 0;
  TypestateProtocol Proto{"hasNext", "next"};
  AnalysisOptions Aware;
  Aware.ApiAware = true;
  Aware.Specs = &Java.Result.Selected;
  Aware.CoverageExtension = true;
  for (const IRProgram &P : Eval.Programs) {
    WarnUnaware +=
        checkTypestate(analyzeProgram(P, *Java.Strings, AnalysisOptions()),
                       *Java.Strings, Proto)
            .size();
    WarnAware += checkTypestate(analyzeProgram(P, *Java.Strings, Aware),
                                *Java.Strings, Proto)
                     .size();
  }
  std::printf("warnings: unaware %zu vs aware %zu over %zu programs "
              "(aware must not exceed unaware)\n",
              WarnUnaware, WarnAware, Eval.Programs.size());
  return 0;
}
