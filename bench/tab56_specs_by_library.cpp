//===- tab56_specs_by_library.cpp - Reproduces Tab. 5/6 -----------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Tab. 5/6 (App. B): number of selected specifications and spanned API
// classes, grouped by library, for Java and Python.
//
// Expected shape (paper): java.util dominates the Java table; Dict/List
// builtins and numpy dominate the Python table.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>
#include <map>
#include <set>

using namespace uspec;
using namespace uspec::bench;

namespace {

void runProfile(LanguageProfile Profile, size_t N, uint64_t Seed) {
  PipelineRun Run = runPipeline(std::move(Profile), N, Seed);
  const StringInterner &S = *Run.Strings;

  struct LibStats {
    size_t Specs = 0;
    std::set<std::string> Classes;
  };
  std::map<std::string, LibStats> ByLibrary;
  for (const Spec &Sp : Run.Result.Selected.all()) {
    std::string Library = Run.Profile.Registry.libraryOf(Sp, S);
    LibStats &Stats = ByLibrary[Library];
    ++Stats.Specs;
    const std::string &Class = S.str(Sp.Target.Class);
    Stats.Classes.insert(Class.empty() ? "?" : Class);
  }

  banner("Tab. " + std::string(Run.Profile.Name == "Java" ? "5" : "6") +
         " — selected specifications by library (" + Run.Profile.Name + ")");

  std::vector<std::pair<std::string, LibStats>> Rows(ByLibrary.begin(),
                                                     ByLibrary.end());
  std::sort(Rows.begin(), Rows.end(), [](const auto &A, const auto &B) {
    return A.second.Specs > B.second.Specs;
  });

  TextTable T;
  T.setHeader({"library", "specifications", "API classes"});
  for (const auto &[Library, Stats] : Rows)
    T.addRow({Library, std::to_string(Stats.Specs),
              std::to_string(Stats.Classes.size())});
  std::printf("%s", T.render().c_str());
  std::printf("\ntotal: %zu selected specifications across %zu libraries\n",
              Run.Result.Selected.size(), Rows.size());
}

} // namespace

int main() {
  std::printf(
      "USpec reproduction — Tab. 5/6 (selected specifications by library)\n");
  runProfile(javaProfile(), 900, 0xF16A);
  runProfile(pythonProfile(), 900, 0xF16B);
  return 0;
}
