//===- tab4_pointsto_effects.cpp - Reproduces Tab. 4 --------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Tab. 4: effect of the learned specifications on the points-to analysis.
// Specs are learned on a training corpus; a *fresh* evaluation corpus is
// analyzed with the API-unaware baseline and with the API-aware analysis
// (learned specs, §6.4 coverage extension on). Every ret-event pair that the
// aware analysis aliases but the baseline does not ("increased points-to
// coverage") is classified as:
//
//   (i)   precise increase   — confirmed by the concrete interpreter run or
//                              by the ground-truth-spec analysis,
//   (ii)  imprecise, wrong spec — an invalid learned spec for the involved
//                              methods drives the aliasing,
//   (iii) imprecise, §6.4    — disappears when the ⊤/⊥ coverage extension
//                              is disabled,
//   (iv)  imprecise, other   — remaining approximation (value-set or
//                              context imprecision).
//
// Expected shape (paper): > 80 % of differing sites are precise increases;
// wrong specs are rare (Java ≈ 1 per 6892 loc, Python 0 in the sample);
// the Python corpus shows a denser increase rate than Java.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "runtime/Interpreter.h"

#include <map>
#include <set>

using namespace uspec;
using namespace uspec::bench;

namespace {

/// Ground-truth specification set of a profile (every valid RetSame/RetArg).
SpecSet groundTruthSpecs(const LanguageProfile &P, StringInterner &S) {
  SpecSet Specs;
  for (const ApiClass &C : P.Registry.classes()) {
    Symbol ClassSym = S.intern(C.Name);
    for (const ApiMethod &M : C.Methods) {
      MethodId Mid = {ClassSym, S.intern(M.Name),
                      static_cast<uint8_t>(M.Arity)};
      if (M.Semantics == MethodSemantics::Load ||
          M.Semantics == MethodSemantics::StatelessGetter)
        Specs.insert(Spec::retSame(Mid));
      if (M.Semantics == MethodSemantics::Store)
        for (const std::string &L : M.PairedLoads)
          if (const ApiMethod *Load = C.findMethod(L, M.Arity - 1))
            Specs.insert(Spec::retArg({ClassSym, S.intern(Load->Name),
                                       static_cast<uint8_t>(Load->Arity)},
                                      Mid, static_cast<uint8_t>(M.StorePos)));
    }
  }
  return Specs;
}

/// Ret events per (site, ctx).
std::map<std::pair<uint32_t, uint32_t>, EventId>
retEventMap(const AnalysisResult &R) {
  std::map<std::pair<uint32_t, uint32_t>, EventId> Map;
  for (EventId E = 0; E < R.Events.size(); ++E) {
    const Event &Ev = R.Events.get(E);
    if (Ev.Kind == EventKind::ApiCall && Ev.Pos == PosRet)
      Map[{Ev.Site, Ev.Ctx}] = E;
  }
  return Map;
}

struct Tally {
  size_t Precise = 0, WrongSpec = 0, Coverage64 = 0, Other = 0;
  size_t total() const { return Precise + WrongSpec + Coverage64 + Other; }
};

void runProfile(LanguageProfile ProfileIn, size_t TrainN, size_t EvalN,
                uint64_t Seed) {
  PipelineRun Run = runPipeline(std::move(ProfileIn), TrainN, Seed);
  StringInterner &S = *Run.Strings;
  const LanguageProfile &Profile = Run.Profile;

  // Which learned selected specs are invalid, per method name involved?
  std::set<uint32_t> MethodsWithWrongSpec;
  for (const Spec &Sp : Run.Result.Selected.all()) {
    if (Profile.Registry.judgeSpec(Sp, S) != SpecValidity::Invalid)
      continue;
    MethodsWithWrongSpec.insert(Sp.Target.Name.id());
    if (Sp.TheKind == Spec::Kind::RetArg)
      MethodsWithWrongSpec.insert(Sp.Source.Name.id());
  }

  // Fresh evaluation corpus.
  GeneratorConfig EvalCfg;
  EvalCfg.NumPrograms = EvalN;
  EvalCfg.Seed = Seed ^ 0xEEEEULL;
  GeneratedCorpus Eval = generateCorpus(Profile, EvalCfg, S);
  SpecSet GtSpecs = groundTruthSpecs(Profile, S);

  AnalysisOptions Unaware;
  AnalysisOptions AwareCov;
  AwareCov.ApiAware = true;
  AwareCov.Specs = &Run.Result.Selected;
  AwareCov.CoverageExtension = true;
  AnalysisOptions AwareNoCov = AwareCov;
  AwareNoCov.CoverageExtension = false;
  AnalysisOptions GtAware;
  GtAware.ApiAware = true;
  GtAware.Specs = &GtSpecs;
  GtAware.CoverageExtension = false;

  Tally Counts;
  for (const IRProgram &Program : Eval.Programs) {
    AnalysisResult R0 = analyzeProgram(Program, S, Unaware);
    AnalysisResult R1 = analyzeProgram(Program, S, AwareCov);
    AnalysisResult R2 = analyzeProgram(Program, S, AwareNoCov);
    AnalysisResult R3 = analyzeProgram(Program, S, GtAware);
    Interpreter Interp(Program, S, Profile.Registry);
    Interp.runAll();

    auto M0 = retEventMap(R0), M1 = retEventMap(R1), M2 = retEventMap(R2),
         M3 = retEventMap(R3);

    auto ConcreteAlias = [&](uint32_t SiteA, uint32_t SiteB) {
      const auto &Returns = Interp.returnsPerSite();
      auto IA = Returns.find(SiteA), IB = Returns.find(SiteB);
      if (IA == Returns.end() || IB == Returns.end())
        return false;
      for (const RtValue &A : IA->second)
        for (const RtValue &B : IB->second)
          if (A.isObj() && A == B)
            return true;
      return false;
    };

    for (auto ItA = M1.begin(); ItA != M1.end(); ++ItA) {
      for (auto ItB = std::next(ItA); ItB != M1.end(); ++ItB) {
        if (!R1.retMayAlias(ItA->second, ItB->second))
          continue;
        auto A0 = M0.find(ItA->first), B0 = M0.find(ItB->first);
        if (A0 == M0.end() || B0 == M0.end() ||
            R0.retMayAlias(A0->second, B0->second))
          continue; // not a coverage increase

        // Classification.
        bool Confirmed = ConcreteAlias(ItA->first.first, ItB->first.first);
        if (!Confirmed) {
          auto A3 = M3.find(ItA->first), B3 = M3.find(ItB->first);
          Confirmed = A3 != M3.end() && B3 != M3.end() &&
                      R3.retMayAlias(A3->second, B3->second);
        }
        if (Confirmed) {
          ++Counts.Precise;
          continue;
        }
        auto A2 = M2.find(ItA->first), B2 = M2.find(ItB->first);
        bool WithoutCov = A2 != M2.end() && B2 != M2.end() &&
                          R2.retMayAlias(A2->second, B2->second);
        if (!WithoutCov) {
          ++Counts.Coverage64;
          continue;
        }
        uint32_t NameA = R1.Events.get(ItA->second).Method.Name.id();
        uint32_t NameB = R1.Events.get(ItB->second).Method.Name.id();
        if (MethodsWithWrongSpec.count(NameA) ||
            MethodsWithWrongSpec.count(NameB))
          ++Counts.WrongSpec;
        else
          ++Counts.Other;
      }
    }
  }

  banner("Tab. 4 — effect on points-to analysis (" + Profile.Name + ", " +
         std::to_string(EvalN) + " fresh programs, " +
         std::to_string(Eval.TotalLines) + " loc)");

  auto Rate = [&](size_t Count) -> std::string {
    if (Count == 0)
      return "-";
    return "1 per " + std::to_string(Eval.TotalLines / Count) + " loc";
  };
  TextTable T;
  T.setHeader({"category", "pairs", "share", "rate"});
  size_t Total = Counts.total();
  auto Share = [&](size_t C) {
    return Total ? TextTable::formatReal(100.0 * C / Total, 1) + "%"
                 : std::string("-");
  };
  T.addRow({"increased coverage, precise", std::to_string(Counts.Precise),
            Share(Counts.Precise), Rate(Counts.Precise)});
  T.addRow({"less precise: wrong specification",
            std::to_string(Counts.WrongSpec), Share(Counts.WrongSpec),
            Rate(Counts.WrongSpec)});
  T.addRow({"less precise: coverage approach of §6.4",
            std::to_string(Counts.Coverage64), Share(Counts.Coverage64),
            Rate(Counts.Coverage64)});
  T.addRow({"less precise: other", std::to_string(Counts.Other),
            Share(Counts.Other), Rate(Counts.Other)});
  std::printf("%s", T.render().c_str());
  std::printf("\ntotal aliasing additions: %zu (%zu selected specs applied)\n",
              Total, Run.Result.Selected.size());
}

} // namespace

int main() {
  std::printf("USpec reproduction — Tab. 4 (points-to coverage/precision)\n");
  runProfile(javaProfile(), 900, 120, 0x7AB4);
  runProfile(pythonProfile(), 900, 120, 0x7AB5);
  return 0;
}
