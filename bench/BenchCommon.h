//===- BenchCommon.h - Shared helpers for the benchmark harnesses -*- C++-*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the per-table/figure harnesses (DESIGN.md §4): corpus
/// generation, pipeline execution, labeling, and common printing.
///
/// Training runs are checkpointable: when USPEC_ARTIFACT_CACHE names a
/// directory, runPipeline() loads the trained model + scored candidates
/// from a USPB artifact there instead of retraining, after validating the
/// corpus manifest (per-program structural fingerprints) against the
/// freshly generated corpus — "train once, serve many" across harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_BENCH_BENCHCOMMON_H
#define USPEC_BENCH_BENCHCOMMON_H

#include "artifact/Checkpoint.h"
#include "core/USpec.h"
#include "corpus/Dedup.h"
#include "corpus/Generator.h"
#include "corpus/GroundTruth.h"
#include "corpus/Profiles.h"
#include "support/Table.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

namespace uspec::bench {

/// A full pipeline run over one language profile.
struct PipelineRun {
  std::unique_ptr<StringInterner> Strings = std::make_unique<StringInterner>();
  LanguageProfile Profile;
  GeneratedCorpus Corpus;
  LearnerConfig Config;
  CorpusManifest Manifest;
  LearnResult Result;
  std::vector<LabeledCandidate> Labeled;
  /// True when Result was loaded from a cached artifact (no retraining).
  bool FromCache = false;
};

/// Structural fingerprints of a generated corpus, for artifact validation.
inline CorpusManifest corpusManifest(const GeneratedCorpus &Corpus) {
  CorpusManifest Manifest;
  Manifest.Entries.reserve(Corpus.Programs.size());
  for (size_t I = 0; I < Corpus.Programs.size(); ++I)
    Manifest.Entries.push_back(
        {"prog" + std::to_string(I), programFingerprint(Corpus.Programs[I])});
  return Manifest;
}

/// Generates a corpus for \p Profile and runs the learning pipeline,
/// consulting the USPEC_ARTIFACT_CACHE artifact cache when configured.
inline PipelineRun runPipeline(LanguageProfile Profile, size_t NumPrograms,
                               uint64_t Seed, double Tau = 0.6) {
  PipelineRun Run;
  Run.Profile = std::move(Profile);

  GeneratorConfig GenCfg;
  GenCfg.NumPrograms = NumPrograms;
  GenCfg.Seed = Seed;
  Run.Corpus = generateCorpus(Run.Profile, GenCfg, *Run.Strings);
  Run.Manifest = corpusManifest(Run.Corpus);

  Run.Config.Tau = Tau;
  Run.Config.Seed = Seed ^ 0x5eedULL;
  USpecLearner Learner(*Run.Strings, Run.Config);

  const char *CacheDir = std::getenv("USPEC_ARTIFACT_CACHE");
  std::string CachePath;
  if (CacheDir && *CacheDir) {
    CachePath = std::string(CacheDir) + "/" + Run.Profile.Name + "-n" +
                std::to_string(NumPrograms) + "-s" + std::to_string(Seed) +
                ".uspb";
    std::ifstream In(CachePath, std::ios::binary);
    if (In) {
      std::ostringstream Buf;
      Buf << In.rdbuf();
      std::string Bytes = Buf.str();
      ArtifactError Err;
      auto Artifacts = loadLearnArtifacts(Bytes, *Run.Strings, &Err);
      if (!Artifacts) {
        std::fprintf(stderr, "artifact cache: ignoring %s: %s\n",
                     CachePath.c_str(), Err.str().c_str());
      } else if (Artifacts->Manifest.sameCorpus(Run.Manifest) &&
                 Artifacts->Config.Seed == Run.Config.Seed) {
        Run.Result = std::move(Artifacts->Result);
        if (Artifacts->Config.Tau != Tau)
          Run.Result.Selected =
              USpecLearner::select(Run.Result.Candidates, Tau,
                                   Run.Config.ExtendConsistency,
                                   &Run.Result.AddedByExtension);
        Run.FromCache = true;
      } else {
        std::fprintf(stderr,
                     "artifact cache: %s is for a different corpus/seed, "
                     "retraining\n",
                     CachePath.c_str());
      }
    }
  }

  if (!Run.FromCache) {
    Run.Result = Learner.learn(Run.Corpus.Programs);
    if (!CachePath.empty()) {
      std::filesystem::create_directories(CacheDir);
      std::ofstream Out(CachePath, std::ios::binary);
      if (Out)
        Out << Learner.saveArtifacts(Run.Result, &Run.Manifest);
      if (!Out)
        std::fprintf(stderr, "artifact cache: cannot write %s\n",
                     CachePath.c_str());
    }
  }

  Run.Labeled =
      labelCandidates(Run.Profile.Registry, *Run.Strings, Run.Result.Candidates);
  return Run;
}

/// Prints a section banner.
inline void banner(const std::string &Title) {
  std::printf("\n==== %s ====\n\n", Title.c_str());
}

} // namespace uspec::bench

#endif // USPEC_BENCH_BENCHCOMMON_H
