//===- BenchCommon.h - Shared helpers for the benchmark harnesses -*- C++-*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the per-table/figure harnesses (DESIGN.md §4): corpus
/// generation, pipeline execution, labeling, and common printing.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_BENCH_BENCHCOMMON_H
#define USPEC_BENCH_BENCHCOMMON_H

#include "core/USpec.h"
#include "corpus/Generator.h"
#include "corpus/GroundTruth.h"
#include "corpus/Profiles.h"
#include "support/Table.h"

#include <cstdio>
#include <memory>
#include <string>

namespace uspec::bench {

/// A full pipeline run over one language profile.
struct PipelineRun {
  std::unique_ptr<StringInterner> Strings = std::make_unique<StringInterner>();
  LanguageProfile Profile;
  GeneratedCorpus Corpus;
  LearnResult Result;
  std::vector<LabeledCandidate> Labeled;
};

/// Generates a corpus for \p Profile and runs the learning pipeline.
inline PipelineRun runPipeline(LanguageProfile Profile, size_t NumPrograms,
                               uint64_t Seed, double Tau = 0.6) {
  PipelineRun Run;
  Run.Profile = std::move(Profile);

  GeneratorConfig GenCfg;
  GenCfg.NumPrograms = NumPrograms;
  GenCfg.Seed = Seed;
  Run.Corpus = generateCorpus(Run.Profile, GenCfg, *Run.Strings);

  LearnerConfig Cfg;
  Cfg.Tau = Tau;
  Cfg.Seed = Seed ^ 0x5eedULL;
  USpecLearner Learner(*Run.Strings, Cfg);
  Run.Result = Learner.learn(Run.Corpus.Programs);
  Run.Labeled =
      labelCandidates(Run.Profile.Registry, *Run.Strings, Run.Result.Candidates);
  return Run;
}

/// Prints a section banner.
inline void banner(const std::string &Title) {
  std::printf("\n==== %s ====\n\n", Title.c_str());
}

} // namespace uspec::bench

#endif // USPEC_BENCH_BENCHCOMMON_H
