//===- tab7_atlas_comparison.cpp - Reproduces the §7.5 comparison --------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// §7.5: comparison with the Atlas-style dynamic baseline. Expected shape:
//  - Atlas infers sound (but argument-insensitive) flow specs for standard
//    collections (HashMap, Hashtable, ArrayList);
//  - Atlas yields nothing for factory-only classes (ResultSet, KeyStore,
//    NodeList) — it cannot construct them;
//  - Atlas unsoundly summarizes string-keyed classes (Properties,
//    JSONObject) as returning fresh objects;
//  - USpec learns correct, argument-SENSITIVE specs for all of these from
//    corpus usage alone.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "atlas/Atlas.h"

using namespace uspec;
using namespace uspec::bench;

namespace {

/// Number of USpec-selected specs whose target resolves to \p Class.
size_t uspecSpecsForClass(const PipelineRun &Run, const std::string &Class) {
  size_t Count = 0;
  for (const Spec &Sp : Run.Result.Selected.all()) {
    const ApiClass *Owner = nullptr;
    const std::string &Direct = Run.Strings->str(Sp.Target.Class);
    if (Direct == Class) {
      ++Count;
      continue;
    }
    if (Direct.empty()) {
      // Unknown receiver class: resolve by unique method name.
      if (Run.Profile.Registry.findUniqueMethod(
              Run.Strings->str(Sp.Target.Name), Sp.Target.Arity, &Owner) &&
          Owner && Owner->Name == Class)
        ++Count;
    }
  }
  return Count;
}

} // namespace

int main() {
  std::printf("USpec reproduction — §7.5 comparison with the Atlas-style "
              "dynamic baseline\n");

  PipelineRun Run = runPipeline(javaProfile(), 900, 0xF16A);
  auto AtlasResults = runAtlasBaseline(Run.Profile.Registry, AtlasConfig());

  banner("Per-class comparison (Java)");
  TextTable T;
  T.setHeader({"API class", "Atlas ctor", "Atlas specs", "Atlas verdict",
               "arg-sensitive", "USpec specs (tau=0.6)"});

  for (const char *Class :
       {"HashMap", "Hashtable", "ArrayList", "Properties", "JSONObject",
        "ResultSet", "KeyStore", "NodeList", "SparseArray"}) {
    const ApiClass *C = Run.Profile.Registry.findClass(Class);
    const AtlasClassResult *A = nullptr;
    for (const AtlasClassResult &R : AtlasResults)
      if (R.Class == Class)
        A = &R;
    if (!C || !A)
      continue;
    AtlasSoundness V = judgeAtlasClass(*C, *A);
    const char *Verdict;
    if (!A->ConstructorAvailable)
      Verdict = "no constructor -> nothing";
    else if (V.UnsoundFresh)
      Verdict = "unsound: 'returns fresh'";
    else if (V.AllLoadsCovered)
      Verdict = "sound flows";
    else if (A->hasSpecs())
      Verdict = "partial";
    else
      Verdict = "no container behaviour";
    T.addRow({Class, A->ConstructorAvailable ? "yes" : "no",
              A->hasSpecs() ? "yes" : "none", Verdict,
              /*Atlas arg-sensitivity*/ "never",
              std::to_string(uspecSpecsForClass(Run, Class))});
  }
  std::printf("%s", T.render().c_str());

  // Summary counts across the whole registry.
  size_t Constructible = 0, NoCtor = 0, Unsound = 0, Sound = 0;
  for (const AtlasClassResult &R : AtlasResults) {
    const ApiClass *C = Run.Profile.Registry.findClass(R.Class);
    if (!C)
      continue;
    if (!R.ConstructorAvailable) {
      ++NoCtor;
      continue;
    }
    ++Constructible;
    AtlasSoundness V = judgeAtlasClass(*C, R);
    if (V.UnsoundFresh)
      ++Unsound;
    else if (V.LoadsTotal > 0 && V.AllLoadsCovered)
      ++Sound;
  }
  std::printf("\nAtlas across the registry: %zu constructible classes "
              "(%zu with sound container flows, %zu unsound-fresh), "
              "%zu factory-only classes with no specs at all\n",
              Constructible, Sound, Unsound, NoCtor);
  std::printf("USpec: %zu selected specifications over %zu classes, all "
              "argument-sensitive (RetSame/RetArg)\n",
              Run.Result.Selected.size(),
              USpecLearner::countApiClasses(Run.Result.Selected));
  return 0;
}
