//===- paperclaims_test.cpp - Direct tests of specific paper claims -----------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Each test pins one concrete claim from the paper's prose to executable
// behaviour: Fig. 4's tolerance of low-confidence matches, §3.3's
// refactoring robustness of event graphs, and the §7.2 parallel setting.
//
//===----------------------------------------------------------------------===//

#include "core/USpec.h"
#include "corpus/Generator.h"
#include "corpus/Profiles.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace uspec;

namespace {

std::vector<IRProgram> lowerAll(StringInterner &S,
                                const std::vector<std::string> &Sources) {
  std::vector<IRProgram> Out;
  for (const std::string &Source : Sources) {
    DiagnosticSink Diags;
    auto P = parseAndLower(Source, "p" + std::to_string(Out.size()), S,
                           Diags);
    EXPECT_TRUE(P.has_value()) << Diags.render();
    if (P)
      Out.push_back(std::move(*P));
  }
  return Out;
}

const ScoredCandidate *find(const LearnResult &R, const Spec &S) {
  for (const ScoredCandidate &C : R.Candidates)
    if (C.S == S)
      return &C;
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// Fig. 4 / §5.2: "it suffices for S to be treated as precise if only some
// values in ΓS are high" — literal-returning matches produce low edge
// confidence, but do not drag down a spec supported by good matches.
//===----------------------------------------------------------------------===//

TEST(PaperClaims, Fig4LowConfidenceMatchesDoNotSinkTheSpec) {
  StringInterner S;
  std::vector<std::string> Sources;
  // Training signal: direct flows.
  for (int I = 0; I < 12; ++I)
    Sources.push_back("class A { def f() { var x = db.getFile(\"cfg\"); "
                      "x.getName(); } }");
  // A few good matches: stored files retrieved and used.
  for (int I = 0; I < 5; ++I)
    Sources.push_back(R"(
      class B { def g() {
        var m = new Map();
        m.put("k", db.getFile("cfg"));
        var f = m.get("k");
        f.getName();
      } }
    )");
  // Many Fig. 4 matches: literals stored and retrieved — the induced edge
  // (lc -> use) cannot be explained by the model.
  for (int I = 0; I < 15; ++I)
    Sources.push_back(R"(
      class C { def h() {
        var m = new Map();
        m.put("key", "value");
        var v = m.get("key");
        log.info(v);
      } }
    )");

  std::vector<IRProgram> Corpus = lowerAll(S, Sources);
  LearnerConfig Cfg;
  USpecLearner Learner(S, Cfg);
  LearnResult Result = Learner.learn(Corpus);

  Spec MapSpec = Spec::retArg({S.intern("Map"), S.intern("get"), 1},
                              {S.intern("Map"), S.intern("put"), 2}, 2);
  const ScoredCandidate *C = find(Result, MapSpec);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->Matches, 20u) << "both good and Fig.4-style matches counted";
  EXPECT_GE(C->Score, 0.6)
      << "top-k scoring must let the few high-confidence matches carry the "
         "spec despite many low-confidence ones";
}

//===----------------------------------------------------------------------===//
// §3.3: "the resulting event graph is typically robust to common code
// refactorings such as renamings, extractions and inlinings".
//===----------------------------------------------------------------------===//

namespace {

/// Candidate spec multiset extracted from one program (untrained model:
/// collection structure only).
std::vector<std::string> candidateSpecsOf(const std::string &Source) {
  StringInterner S;
  DiagnosticSink Diags;
  auto P = parseAndLower(Source, "refactor", S, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.render();
  AnalysisResult R = analyzeProgram(*P, S, AnalysisOptions());
  EventGraph G = EventGraph::build(R);
  EdgeModel Model;
  CandidateCollector Collector(Model, 10);
  Collector.addGraph(G, 0);
  std::vector<std::string> Specs;
  for (const Spec &Sp : Collector.candidates())
    Specs.push_back(Sp.str(S));
  std::sort(Specs.begin(), Specs.end());
  return Specs;
}

} // namespace

TEST(PaperClaims, EventGraphRobustToRenaming) {
  auto Original = candidateSpecsOf(R"(
    class Main { def main() {
      var map = new Map();
      map.put("k", db.getFile("cfg"));
      var f = map.get("k");
      f.getName();
    } }
  )");
  auto Renamed = candidateSpecsOf(R"(
    class Main { def main() {
      var cache = new Map();
      cache.put("k", db.getFile("cfg"));
      var handle = cache.get("k");
      handle.getName();
    } }
  )");
  EXPECT_FALSE(Original.empty());
  EXPECT_EQ(Original, Renamed);
}

TEST(PaperClaims, EventGraphRobustToExtraction) {
  auto Inline = candidateSpecsOf(R"(
    class Main { def main() {
      var map = new Map();
      map.put("k", db.getFile("cfg"));
      var f = map.get("k");
      f.getName();
    } }
  )");
  // The load is extracted into a helper method (and inlined back by the
  // context-sensitive analysis).
  auto Extracted = candidateSpecsOf(R"(
    class Main {
      def load(m) { return m.get("k"); }
      def main() {
        var map = new Map();
        map.put("k", db.getFile("cfg"));
        var f = load(map);
        f.getName();
      }
    }
  )");
  EXPECT_FALSE(Inline.empty());
  EXPECT_EQ(Inline, Extracted);
}

TEST(PaperClaims, EventGraphRobustToIntermediateVariables) {
  auto Direct = candidateSpecsOf(R"(
    class Main { def main() {
      var map = new Map();
      map.put("k", db.getFile("cfg"));
      map.get("k").getName();
    } }
  )");
  auto Stepwise = candidateSpecsOf(R"(
    class Main { def main() {
      var map = new Map();
      var file = db.getFile("cfg");
      map.put("k", file);
      var out = map.get("k");
      var name = out.getName();
    } }
  )");
  EXPECT_FALSE(Direct.empty());
  EXPECT_EQ(Direct, Stepwise);
}

//===----------------------------------------------------------------------===//
// §7.2: the full pipeline parallelizes (per-program analysis, sharded
// candidate extraction, per-candidate scoring); results must not depend on
// the thread count. The exhaustive contract — candidate order, score bits,
// selected text, artifact bytes — is pinned in tests/parallel_test.cpp;
// this test keeps the paper-claim-level check on candidates + selection.
//===----------------------------------------------------------------------===//

TEST(PaperClaims, LearningIsDeterministicAcrossThreadCounts) {
  LanguageProfile P = javaProfile();
  GeneratorConfig GenCfg;
  GenCfg.NumPrograms = 150;
  GenCfg.Seed = 0xDE7;

  struct RunOutput {
    std::vector<std::tuple<std::string, double, size_t, size_t>> Candidates;
    std::vector<std::string> Selected;
    bool operator==(const RunOutput &) const = default;
  };
  auto RunWith = [&](unsigned Threads) {
    StringInterner S;
    GeneratedCorpus Corpus = generateCorpus(P, GenCfg, S);
    LearnerConfig Cfg;
    Cfg.Threads = Threads;
    USpecLearner Learner(S, Cfg);
    LearnResult Result = Learner.learn(Corpus.Programs);
    RunOutput Out;
    for (const ScoredCandidate &C : Result.Candidates)
      Out.Candidates.emplace_back(C.S.str(S), C.Score, C.Matches,
                                  C.Programs);
    for (const Spec &Sp : Result.Selected.all())
      Out.Selected.push_back(Sp.str(S));
    return Out;
  };

  auto One = RunWith(1);
  auto Two = RunWith(2);
  auto Eight = RunWith(8);
  auto Auto = RunWith(0);
  EXPECT_EQ(One, Two);
  EXPECT_EQ(One, Eight);
  EXPECT_EQ(One, Auto);
  EXPECT_FALSE(One.Candidates.empty());
  EXPECT_FALSE(One.Selected.empty());
}
