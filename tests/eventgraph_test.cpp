//===- eventgraph_test.cpp - Tests for the event graph (§3.3) ----------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "eventgraph/EventGraph.h"
#include "ir/Lowering.h"

#include <gtest/gtest.h>

using namespace uspec;

namespace {

struct GraphFixture {
  StringInterner Strings;
  IRProgram Program;
  AnalysisResult Result;
  SpecSet Specs;

  EventGraph buildGraph(std::string_view Source,
                        bool Aware = false, bool Coverage = false) {
    DiagnosticSink Diags;
    auto P = parseAndLower(Source, "test", Strings, Diags);
    EXPECT_TRUE(P.has_value()) << Diags.render();
    Program = std::move(*P);
    AnalysisOptions Options;
    if (Aware) {
      MethodId Get = {Strings.intern("Map"), Strings.intern("get"), 1};
      MethodId Put = {Strings.intern("Map"), Strings.intern("put"), 2};
      Specs.insert(Spec::retArg(Get, Put, 2));
      Specs.insert(Spec::retSame(Get));
      Options.ApiAware = true;
      Options.Specs = &Specs;
      Options.CoverageExtension = Coverage;
    }
    Result = analyzeProgram(Program, Strings, Options);
    return EventGraph::build(Result);
  }

  /// Finds the Nth call site whose method name is \p Name.
  const CallSite *site(const EventGraph &G, const std::string &Name,
                       int Occurrence = 0) {
    int Found = 0;
    for (const CallSite &CS : G.callSites()) {
      if (Strings.str(CS.Method.Name) == Name) {
        if (Found == Occurrence)
          return &CS;
        ++Found;
      }
    }
    ADD_FAILURE() << "call site not found: " << Name;
    return nullptr;
  }
};

using EventGraphTest = ::testing::Test;

constexpr const char *Fig2 = R"(
  class Main {
    def main() {
      var map = new Map();
      map.put("key", someApi.getFile());
      var name = map.get("key").getName();
    }
  }
)";

} // namespace

TEST(EventGraphTest, Fig3EdgesUnaware) {
  GraphFixture F;
  EventGraph G = F.buildGraph(Fig2);

  const CallSite *Put = F.site(G, "put");
  const CallSite *Get = F.site(G, "get");
  const CallSite *GetFile = F.site(G, "getFile");
  const CallSite *GetName = F.site(G, "getName");
  ASSERT_TRUE(Put && Get && GetFile && GetName);

  // Receiver chain on map: put.0 -> get.0.
  EXPECT_TRUE(G.hasEdge(Put->Recv, Get->Recv));
  EXPECT_FALSE(G.hasEdge(Get->Recv, Put->Recv));
  // o1: getFile.ret -> put.2.
  ASSERT_EQ(Put->Args.size(), 2u);
  EXPECT_TRUE(G.hasEdge(GetFile->Ret, Put->Args[1]));
  // o2: get.ret -> getName.0.
  EXPECT_TRUE(G.hasEdge(Get->Ret, GetName->Recv));
  // The dashed edge ℓ (getFile.ret -> getName.0) must NOT exist unaware.
  EXPECT_FALSE(G.hasEdge(GetFile->Ret, GetName->Recv));
}

TEST(EventGraphTest, Fig3AllocAndAliasUnaware) {
  GraphFixture F;
  EventGraph G = F.buildGraph(Fig2);
  const CallSite *Get = F.site(G, "get");
  const CallSite *GetName = F.site(G, "getName");
  const CallSite *GetFile = F.site(G, "getFile");

  // allocG(e1) = {⟨get, ret⟩} for e1 = ⟨getName, 0⟩ (paper's example).
  const auto &Alloc = G.allocOf(GetName->Recv);
  ASSERT_EQ(Alloc.size(), 1u);
  EXPECT_EQ(Alloc[0], Get->Ret);
  EXPECT_TRUE(G.mayAlias(GetName->Recv, Get->Ret));
  EXPECT_FALSE(G.mayAlias(GetName->Recv, GetFile->Ret));
}

TEST(EventGraphTest, ValuesAndEqualG) {
  GraphFixture F;
  EventGraph G = F.buildGraph(Fig2);
  const CallSite *Put = F.site(G, "put");
  const CallSite *Get = F.site(G, "get");

  // valG(⟨put,1⟩) = {"key"} = valG(⟨get,1⟩): equal keys.
  ASSERT_EQ(Put->Args.size(), 2u);
  ASSERT_EQ(Get->Args.size(), 1u);
  EXPECT_EQ(G.valOf(Put->Args[0]).size(), 1u);
  EXPECT_TRUE(G.equalVals(Put->Args[0], Get->Args[0]));
  // valG(⟨put,2⟩) = ∅ (an API return has no value).
  EXPECT_TRUE(G.valOf(Put->Args[1]).empty());
  EXPECT_FALSE(G.equalVals(Put->Args[1], Get->Args[0]));
}

TEST(EventGraphTest, DashedEdgeAppearsInAwareMode) {
  GraphFixture F;
  EventGraph G = F.buildGraph(Fig2, /*Aware=*/true);
  const CallSite *GetFile = F.site(G, "getFile");
  const CallSite *GetName = F.site(G, "getName");
  // The edge ℓ of Fig. 3: getFile.ret -> getName.0 after the history merge.
  EXPECT_TRUE(G.hasEdge(GetFile->Ret, GetName->Recv));
  EXPECT_TRUE(G.mayAlias(GetFile->Ret, GetName->Recv));
}

TEST(EventGraphTest, EdgesAreTransitiveWithinHistories) {
  GraphFixture F;
  EventGraph G = F.buildGraph(R"(
    class Main {
      def main() {
        var x = api.make();
        x.a();
        x.b();
        x.c();
      }
    }
  )");
  const CallSite *A = F.site(G, "a");
  const CallSite *C = F.site(G, "c");
  // a.0 -> c.0 even though b is between them (transitive closure within the
  // history).
  EXPECT_TRUE(G.hasEdge(A->Recv, C->Recv));
}

TEST(EventGraphTest, ConflictingOrdersYieldNoEdge) {
  // The edge rule requires e1 before e2 in ALL histories containing both.
  // Source-level branches produce distinct call sites, so we construct the
  // conflict synthetically: two histories of one object with opposite orders.
  AnalysisResult R;
  Event A;
  A.Kind = EventKind::ApiCall;
  A.Site = 1;
  A.Pos = PosReceiver;
  Event B = A;
  B.Site = 2;
  Event C = A;
  C.Site = 3;
  EventId EA = R.Events.getOrCreate(A);
  EventId EB = R.Events.getOrCreate(B);
  EventId EC = R.Events.getOrCreate(C);
  R.Histories.resize(1);
  R.Histories[0] = {{EA, EB, EC}, {EB, EA}};
  EventGraph G = EventGraph::build(R);
  // a/b conflict: no edge either way.
  EXPECT_FALSE(G.hasEdge(EA, EB));
  EXPECT_FALSE(G.hasEdge(EB, EA));
  // b/c and a/c are consistent (only the first history has them).
  EXPECT_TRUE(G.hasEdge(EB, EC));
  EXPECT_TRUE(G.hasEdge(EA, EC));
}

TEST(EventGraphTest, BranchCallSitesAreDistinct) {
  // Same source-level method called in both branches yields two distinct
  // call sites (and thus no order conflict).
  GraphFixture F;
  EventGraph G = F.buildGraph(R"(
    class Main {
      def main(c) {
        var x = api.make();
        if (c == null) { x.a(); x.b(); } else { x.b(); x.a(); }
      }
    }
  )");
  int ACount = 0;
  for (const CallSite &CS : G.callSites())
    if (F.Strings.str(CS.Method.Name) == "a")
      ++ACount;
  EXPECT_EQ(ACount, 2);
}

TEST(EventGraphTest, ReceiverPairsRespectOrderAndDistance) {
  GraphFixture F;
  EventGraph G = F.buildGraph(R"(
    class Main {
      def main() {
        var map = new Map();
        map.put("k", 1);
        map.get("k");
      }
    }
  )");
  auto Pairs = G.receiverPairs(10);
  // Expect the ordered pair (get, put): later first.
  bool Found = false;
  for (auto [Later, Earlier] : Pairs) {
    const CallSite &L = G.callSites()[Later];
    const CallSite &E = G.callSites()[Earlier];
    if (F.Strings.str(L.Method.Name) == "get" &&
        F.Strings.str(E.Method.Name) == "put")
      Found = true;
    // Never the reverse.
    EXPECT_FALSE(F.Strings.str(L.Method.Name) == "put" &&
                 F.Strings.str(E.Method.Name) == "get");
  }
  EXPECT_TRUE(Found);
}

TEST(EventGraphTest, ReceiverPairsDistanceBound) {
  // 12 intervening calls on the receiver push put/get beyond distance 10.
  std::string Src = R"(
    class Main {
      def main() {
        var map = new Map();
        map.put("k", 1);
  )";
  for (int I = 0; I < 12; ++I)
    Src += "      map.touch" + std::to_string(I) + "();\n";
  Src += R"(
        map.get("k");
      }
    }
  )";
  GraphFixture F;
  EventGraph G = F.buildGraph(Src);
  auto Pairs = G.receiverPairs(10);
  for (auto [Later, Earlier] : Pairs) {
    EXPECT_FALSE(F.Strings.str(G.callSites()[Later].Method.Name) == "get" &&
                 F.Strings.str(G.callSites()[Earlier].Method.Name) == "put")
        << "pair beyond the distance bound must be excluded";
  }
  // But with a loose bound it appears.
  auto LoosePairs = G.receiverPairs(100);
  bool Found = false;
  for (auto [Later, Earlier] : LoosePairs)
    if (F.Strings.str(G.callSites()[Later].Method.Name) == "get" &&
        F.Strings.str(G.callSites()[Earlier].Method.Name) == "put")
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(EventGraphTest, CallSiteGroupingIsComplete) {
  GraphFixture F;
  EventGraph G = F.buildGraph(Fig2);
  const CallSite *Put = F.site(G, "put");
  ASSERT_NE(Put, nullptr);
  EXPECT_NE(Put->Recv, InvalidEvent);
  EXPECT_NE(Put->Ret, InvalidEvent);
  ASSERT_EQ(Put->Args.size(), 2u);
  EXPECT_NE(Put->Args[0], InvalidEvent);
  EXPECT_NE(Put->Args[1], InvalidEvent);
  EXPECT_EQ(G.callSiteOf(Put->Recv), G.callSiteOf(Put->Ret));
}

TEST(EventGraphTest, ParticipantsTrackObjects) {
  GraphFixture F;
  EventGraph G = F.buildGraph(Fig2);
  const CallSite *Put = F.site(G, "put");
  // put.0's participant is the Map object.
  const auto &Objs = G.participants(Put->Recv);
  ASSERT_EQ(Objs.size(), 1u);
  EXPECT_EQ(F.Result.Objects.get(Objs[0]).Kind, ObjectKind::New);
}
