//===- golden_test.cpp - Pinned artifact bit-identity ------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Trains the standard seed corpus (java profile, 60 programs, seed 42) and
// pins the resulting USPB artifact to a checksum recorded in this file. Any
// change that perturbs analysis results, candidate order, score bits, or
// the artifact encoding — however indirectly — fails here first, with the
// new checksum printed so a *deliberate* format change can update the pin
// in the same commit that explains it.
//
//===----------------------------------------------------------------------===//

#include "artifact/Checkpoint.h"
#include "core/USpec.h"
#include "corpus/Generator.h"
#include "corpus/Profiles.h"
#include "specs/SpecIO.h"
#include "support/Hashing.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace uspec;

namespace {

/// The pinned checksum of the seed-corpus artifact (hashString over the
/// serialized USPB bytes). Update ONLY for a deliberate, explained format
/// or semantics change — the failure message prints the new value.
constexpr uint64_t SeedArtifactChecksum = 0xa02fd7d2a9fba3b5ull;

std::string hex(uint64_t V) {
  char Buf[19];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

struct GoldenRun {
  std::string ArtifactBytes;
  /// Candidate specs rendered to text (the run's interner does not outlive
  /// trainSeedCorpus, so symbols are resolved eagerly).
  std::vector<std::string> CandidateText;
  std::string SelectedText;
  LearnResult Result;
};

GoldenRun trainSeedCorpus(unsigned Threads) {
  StringInterner S;
  GeneratorConfig GenCfg;
  GenCfg.NumPrograms = 60;
  GenCfg.Seed = 42;
  GeneratedCorpus Corpus = generateCorpus(javaProfile(), GenCfg, S);

  LearnerConfig Cfg;
  Cfg.Threads = Threads;
  USpecLearner Learner(S, Cfg);
  GoldenRun Run;
  Run.Result = Learner.learn(Corpus.Programs);
  Run.ArtifactBytes = Learner.saveArtifacts(Run.Result);
  for (const ScoredCandidate &C : Run.Result.Candidates)
    Run.CandidateText.push_back(C.S.str(S));
  Run.SelectedText = serializeSpecs(Run.Result.Selected, S);
  return Run;
}

} // namespace

TEST(GoldenArtifact, SeedCorpusChecksumIsPinned) {
  GoldenRun Run = trainSeedCorpus(1);
  ASSERT_FALSE(Run.ArtifactBytes.empty());
  uint64_t Checksum = hashString(Run.ArtifactBytes);
  EXPECT_EQ(Checksum, SeedArtifactChecksum)
      << "seed-corpus artifact bytes changed; computed checksum is "
      << hex(Checksum) << " (" << Run.ArtifactBytes.size()
      << " bytes). If the change is deliberate, update "
         "SeedArtifactChecksum and explain the format/semantics change in "
         "the same commit.";
}

TEST(GoldenArtifact, ThreadCountLeavesArtifactAndStatsUnchanged) {
  GoldenRun One = trainSeedCorpus(1);
  GoldenRun Eight = trainSeedCorpus(8);

  EXPECT_EQ(hashString(One.ArtifactBytes), hashString(Eight.ArtifactBytes));
  ASSERT_EQ(One.ArtifactBytes, Eight.ArtifactBytes)
      << "USPB bytes must not depend on the thread count";

  // LearnResult equality beyond the serialized artifact: scored candidates
  // (bit-exact scores) and the workload counters in PipelineStats.
  ASSERT_EQ(One.Result.Candidates.size(), Eight.Result.Candidates.size());
  EXPECT_EQ(One.CandidateText, Eight.CandidateText);
  for (size_t I = 0; I < One.Result.Candidates.size(); ++I) {
    const ScoredCandidate &A = One.Result.Candidates[I];
    const ScoredCandidate &B = Eight.Result.Candidates[I];
    EXPECT_EQ(A.Score, B.Score) << "score bits diverged at " << I;
    EXPECT_EQ(A.Matches, B.Matches);
    EXPECT_EQ(A.Programs, B.Programs);
    EXPECT_EQ(A.NumConfidences, B.NumConfidences);
  }
  EXPECT_EQ(One.SelectedText, Eight.SelectedText);
  EXPECT_EQ(One.Result.AddedByExtension, Eight.Result.AddedByExtension);
  EXPECT_EQ(One.Result.NumTrainingSamples, Eight.Result.NumTrainingSamples);
  EXPECT_EQ(One.Result.TrainAccuracy, Eight.Result.TrainAccuracy);

  const PipelineStats &SA = One.Result.Stats;
  const PipelineStats &SB = Eight.Result.Stats;
  EXPECT_EQ(SA.Programs, SB.Programs);
  EXPECT_EQ(SA.Graphs, SB.Graphs);
  EXPECT_EQ(SA.ReceiverPairs, SB.ReceiverPairs);
  EXPECT_EQ(SA.Matches, SB.Matches);
  EXPECT_EQ(SA.TrainingSamples, SB.TrainingSamples);
  EXPECT_EQ(SA.Candidates, SB.Candidates);
  // PeakCandidates is the max over per-shard ledgers mid-merge, so it may
  // legitimately differ with the shard count — only its floor is invariant.
  EXPECT_GE(SA.PeakCandidates, SA.Candidates);
  EXPECT_GE(SB.PeakCandidates, SB.Candidates);
}
