//===- naming_test.cpp - Tests for the naming-convention prior ----------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Naming.h"
#include "core/USpec.h"
#include "corpus/Generator.h"
#include "corpus/GroundTruth.h"
#include "corpus/Profiles.h"

#include <gtest/gtest.h>

using namespace uspec;

TEST(Naming, ClassifiesCommonNames) {
  EXPECT_EQ(classifyMethodName("get"), NameRole::Reader);
  EXPECT_EQ(classifyMethodName("getProperty"), NameRole::Reader);
  EXPECT_EQ(classifyMethodName("findViewById"), NameRole::Reader);
  EXPECT_EQ(classifyMethodName("SubscriptLoad"), NameRole::Reader);
  EXPECT_EQ(classifyMethodName("optString"), NameRole::Reader);

  EXPECT_EQ(classifyMethodName("put"), NameRole::Writer);
  EXPECT_EQ(classifyMethodName("setProperty"), NameRole::Writer);
  EXPECT_EQ(classifyMethodName("SubscriptStore"), NameRole::Writer);
  EXPECT_EQ(classifyMethodName("append"), NameRole::Writer);

  EXPECT_EQ(classifyMethodName("next"), NameRole::Consumer);
  EXPECT_EQ(classifyMethodName("pop"), NameRole::Consumer);
  EXPECT_EQ(classifyMethodName("poll"), NameRole::Consumer);

  EXPECT_EQ(classifyMethodName("invalidate"), NameRole::Neutral);
  EXPECT_EQ(classifyMethodName("process"), NameRole::Neutral);
}

TEST(Naming, SharedStems) {
  EXPECT_TRUE(namesShareStem("getProperty", "setProperty"));
  EXPECT_TRUE(namesShareStem("loadConfig", "storeConfig"));
  EXPECT_FALSE(namesShareStem("get", "put"));
  EXPECT_FALSE(namesShareStem("getName", "setTag"));
  EXPECT_FALSE(namesShareStem("process", "process"))
      << "no recognized prefix, no stem claim";
}

TEST(Naming, PriorOrdersSpecsSensibly) {
  StringInterner S;
  auto Mid = [&](const char *Name, uint8_t Arity) {
    return MethodId{S.intern("C"), S.intern(Name), Arity};
  };
  double GoodRetArg =
      namingPrior(Spec::retArg(Mid("get", 1), Mid("put", 2), 2), S);
  double StemRetArg = namingPrior(
      Spec::retArg(Mid("getProperty", 1), Mid("setProperty", 2), 2), S);
  double BadRetArg =
      namingPrior(Spec::retArg(Mid("close", 0), Mid("launch", 1), 1), S);
  EXPECT_GT(GoodRetArg, BadRetArg);
  EXPECT_GT(StemRetArg, GoodRetArg) << "shared stem earns a bonus";

  double GoodRetSame = namingPrior(Spec::retSame(Mid("getString", 1)), S);
  double BadRetSame = namingPrior(Spec::retSame(Mid("nextInt", 1)), S);
  EXPECT_GT(GoodRetSame, 0.7);
  EXPECT_LT(BadRetSame, 0.2);
}

TEST(Naming, BlendIsBoundedAndMonotone) {
  EXPECT_GE(blendWithNamingPrior(0, 0), 0.0);
  EXPECT_LE(blendWithNamingPrior(1, 1), 1.0);
  EXPECT_LT(blendWithNamingPrior(0.5, 0.1), blendWithNamingPrior(0.5, 0.9));
  EXPECT_LT(blendWithNamingPrior(0.1, 0.5), blendWithNamingPrior(0.9, 0.5));
}

TEST(Naming, NameAwareScoringDoesNotHurtPrecision) {
  // The future-work blend should keep (or improve) precision at τ=0.6 on
  // the standard Java corpus relative to the pure model score.
  StringInterner S;
  LanguageProfile Profile = javaProfile();
  GeneratorConfig GenCfg;
  GenCfg.NumPrograms = 400;
  GenCfg.Seed = 0xAA17;
  GeneratedCorpus Corpus = generateCorpus(Profile, GenCfg, S);

  auto RunWith = [&](ScoreKind Kind) {
    LearnerConfig Cfg;
    Cfg.Scoring = Kind;
    USpecLearner Learner(S, Cfg);
    LearnResult Result = Learner.learn(Corpus.Programs);
    auto Labeled = labelCandidates(Profile.Registry, S, Result.Candidates);
    return prAtTau(Labeled, 0.6);
  };

  PrPoint Plain = RunWith(ScoreKind::TopKMean);
  PrPoint Blended = RunWith(ScoreKind::NameAware);
  EXPECT_GE(Blended.Precision + 0.05, Plain.Precision)
      << "the prior must not wreck precision";
  EXPECT_GT(Blended.Recall, 0.2);
}

TEST(Naming, PriorDowngradesKnownWrongSpec) {
  // RetSame(SecureRandom.nextInt): both the model and the prior reject it;
  // blending keeps it rejected.
  StringInterner S;
  Spec Wrong = Spec::retSame(
      {S.intern("SecureRandom"), S.intern("nextInt"), 1});
  double Prior = namingPrior(Wrong, S);
  EXPECT_LT(blendWithNamingPrior(0.5, Prior), 0.6)
      << "even a lukewarm model score stays below τ with a consumer name";
}
