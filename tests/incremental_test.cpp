//===- incremental_test.cpp - Journal, delta training, hot-swap ----------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Covers the incremental-learning subsystem (src/incremental/ + the serve
// hot-swap, DESIGN.md §12): journal encode/decode and corruption detection,
// chain-checksum prefix integrity, the replay byte-identity contract, warm
// start determinism and demotion, and zero-downtime model swaps (no dropped
// requests, per-generation byte-identity, cache non-bleed). All suite names
// start with "Incremental" so the TSan CI job picks them up.
//
//===----------------------------------------------------------------------===//

#include "artifact/Checkpoint.h"
#include "core/USpec.h"
#include "corpus/Generator.h"
#include "corpus/Profiles.h"
#include "incremental/Journal.h"
#include "incremental/Trainer.h"
#include "service/Server.h"
#include "support/FaultInject.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace uspec;
using namespace uspec::incremental;

namespace {

/// Deterministic corpus of MiniLang sources.
std::vector<std::string> makeSources(size_t N, uint64_t Seed) {
  LanguageProfile Profile = javaProfile();
  GeneratorConfig Cfg;
  Rng Rand(Seed);
  std::vector<std::string> Out;
  for (size_t I = 0; I < N; ++I)
    Out.push_back(generateProgramSource(Profile, Cfg, Rand));
  return Out;
}

/// Journal over the first \p N of \p Sources, one generation per
/// \p PerGeneration entries.
CorpusJournal makeJournal(const std::vector<std::string> &Sources, size_t N,
                          size_t PerGeneration = 4) {
  CorpusJournal J;
  for (size_t I = 0; I < N; ++I)
    J.append(1 + I / PerGeneration, "p" + std::to_string(I), Sources[I]);
  return J;
}

/// Serialized artifact of a journal-driven run (what `uspec train
/// --journal` writes): the byte string every identity test compares.
std::string artifactBytes(const IncrementalOutcome &O,
                          const LearnerConfig &Cfg,
                          const StringInterner &Strings) {
  return saveLearnArtifacts(O.Result, Cfg, Strings, O.Manifest, &O.Lineage,
                            &O.Result.Ledger);
}

/// A scratch file path under the test temp dir, removed on destruction.
struct TempFile {
  std::string Path;
  explicit TempFile(const std::string &Name)
      : Path((std::filesystem::temp_directory_path() /
              ("uspec_inc_" + Name + "_" + std::to_string(::getpid())))
                 .string()) {
    std::remove(Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
};

/// A program whose analyze answer differs between an API-aware and an
/// API-unaware model (same receiver get/get aliases only with specs).
const char *TinyProgram =
    "class Main { def main() { var m = new Cache(); m.put(\"k\", 1); "
    "var a = m.getIfPresent(\"k\"); var b = m.getIfPresent(\"k\"); } }";

/// Learns a canonical spec set from \p Sources.
service::ServiceSpecs learnSpecs(const std::vector<std::string> &Sources) {
  StringInterner Strings;
  std::vector<IRProgram> Corpus;
  for (size_t I = 0; I < Sources.size(); ++I) {
    DiagnosticSink Diags;
    auto P =
        parseAndLower(Sources[I], "p" + std::to_string(I), Strings, Diags);
    EXPECT_TRUE(P.has_value()) << Diags.render();
    if (P)
      Corpus.push_back(std::move(*P));
  }
  USpecLearner Learner(Strings, LearnerConfig());
  return service::ServiceSpecs::fromSpecSet(Learner.learn(Corpus).Selected,
                                            Strings);
}

std::string analyzeRequest(const std::string &Program) {
  std::string R = "{\"verb\":\"analyze\",\"program\":";
  service::appendJsonString(R, Program);
  R += "}";
  return R;
}

class IncrementalFaultGuard : public ::testing::Test {
protected:
  void SetUp() override { disarmFaults(); }
  void TearDown() override { disarmFaults(); }
};

} // namespace

//===----------------------------------------------------------------------===//
// Journal: encode/decode, integrity, crash-safe save
//===----------------------------------------------------------------------===//

TEST(IncrementalJournal, EncodeDecodeRoundTrip) {
  std::vector<std::string> Sources = makeSources(5, /*Seed=*/3);
  CorpusJournal J = makeJournal(Sources, 5, /*PerGeneration=*/2);
  EXPECT_EQ(J.lastGeneration(), 3u);

  CorpusJournal Back;
  ArtifactError Err;
  ASSERT_TRUE(decodeJournal(encodeJournal(J), Back, &Err)) << Err.str();
  ASSERT_EQ(Back.Entries.size(), J.Entries.size());
  for (size_t I = 0; I < J.Entries.size(); ++I) {
    EXPECT_EQ(Back.Entries[I].Generation, J.Entries[I].Generation);
    EXPECT_EQ(Back.Entries[I].Name, J.Entries[I].Name);
    EXPECT_EQ(Back.Entries[I].Source, J.Entries[I].Source);
    EXPECT_EQ(Back.Entries[I].Checksum, J.Entries[I].Checksum);
  }
  EXPECT_EQ(Back.chainChecksum(), J.chainChecksum());
}

TEST(IncrementalJournal, DetectsCorruption) {
  std::vector<std::string> Sources = makeSources(3, /*Seed=*/5);
  std::string Bytes = encodeJournal(makeJournal(Sources, 3));
  // Flip one byte in the middle (inside an entry's source text): the
  // per-entry checksum must catch it.
  std::string Bad = Bytes;
  Bad[Bytes.size() / 2] ^= 0x40;
  CorpusJournal Out;
  ArtifactError Err;
  EXPECT_FALSE(decodeJournal(Bad, Out, &Err));
  EXPECT_FALSE(Err.str().empty());
  // Truncation is also rejected, never half-decoded.
  EXPECT_FALSE(decodeJournal(
      std::string_view(Bytes).substr(0, Bytes.size() - 3), Out));
}

TEST(IncrementalJournal, ChainChecksumIsPrefixStable) {
  std::vector<std::string> Sources = makeSources(6, /*Seed=*/9);
  CorpusJournal Short = makeJournal(Sources, 4);
  CorpusJournal Long = makeJournal(Sources, 6);
  // Appending never rewrites history: the long journal's prefix chain is
  // the short journal's full chain.
  EXPECT_EQ(Long.chainChecksum(4), Short.chainChecksum());
  EXPECT_NE(Long.chainChecksum(), Short.chainChecksum());
  // Rewriting any prefix entry changes every chain value from there on.
  CorpusJournal Tampered = Long;
  Tampered.Entries[1].Source += " ";
  Tampered.Entries[1].Checksum = JournalEntry::computeChecksum(
      Tampered.Entries[1].Generation, Tampered.Entries[1].Name,
      Tampered.Entries[1].Source);
  EXPECT_NE(Tampered.chainChecksum(4), Short.chainChecksum());
}

TEST_F(IncrementalFaultGuard, JournalSaveIsAllOrNothing) {
  TempFile F("journal");
  std::vector<std::string> Sources = makeSources(3, /*Seed=*/11);
  CorpusJournal J = makeJournal(Sources, 2);
  std::string Err;
  ASSERT_TRUE(saveJournal(F.Path, J, &Err)) << Err;

  // An injected fault at the append site fails the save and leaves the
  // previous journal bytes fully intact.
  CorpusJournal Grown = makeJournal(Sources, 3);
  armFault("journal.append", 1);
  EXPECT_FALSE(saveJournal(F.Path, Grown, &Err));
  disarmFaults();
  CorpusJournal Back;
  ASSERT_TRUE(loadJournal(F.Path, Back, /*MissingOk=*/false, &Err)) << Err;
  EXPECT_EQ(Back.Entries.size(), 2u);

  // With the fault gone the same save succeeds.
  ASSERT_TRUE(saveJournal(F.Path, Grown, &Err)) << Err;
  ASSERT_TRUE(loadJournal(F.Path, Back, /*MissingOk=*/false, &Err)) << Err;
  EXPECT_EQ(Back.Entries.size(), 3u);

  // Missing files: an error unless MissingOk (the first-ingest path).
  TempFile Missing("missing");
  EXPECT_FALSE(loadJournal(Missing.Path, Back, /*MissingOk=*/false));
  ASSERT_TRUE(loadJournal(Missing.Path, Back, /*MissingOk=*/true, &Err))
      << Err;
  EXPECT_TRUE(Back.Entries.empty());
}

//===----------------------------------------------------------------------===//
// Delta training: replay identity, warm determinism, demotion
//===----------------------------------------------------------------------===//

TEST(IncrementalTrain, ReplayIsByteIdenticalToFullAtAnyThreadCount) {
  std::vector<std::string> Sources = makeSources(8, /*Seed=*/21);
  CorpusJournal J = makeJournal(Sources, 8);
  LearnerConfig Cfg;
  Cfg.Seed = 77;

  // Full run from nothing.
  StringInterner S1;
  auto Full = trainFromJournal(J, Cfg, S1, "", /*ForceReplay=*/false);
  ASSERT_TRUE(Full.has_value());
  EXPECT_EQ(Full->Mode, TrainMode::Full);
  EXPECT_EQ(Full->ProgramsTrained, 8u);
  std::string FullBytes = artifactBytes(*Full, Cfg, S1);

  // Replay over the same journal with the prior artifact present: the
  // incremental ground truth — byte-identical output, at 1 and 8 threads.
  for (unsigned Threads : {1u, 8u}) {
    LearnerConfig TCfg = Cfg;
    TCfg.Threads = Threads;
    StringInterner S2;
    auto Replay =
        trainFromJournal(J, TCfg, S2, FullBytes, /*ForceReplay=*/true);
    ASSERT_TRUE(Replay.has_value());
    EXPECT_EQ(Replay->Mode, TrainMode::Replay);
    EXPECT_EQ(artifactBytes(*Replay, TCfg, S2), FullBytes)
        << "replay diverged at " << Threads << " threads";
  }
}

TEST(IncrementalTrain, WarmTrainsOnlyTheDeltaDeterministically) {
  std::vector<std::string> Sources = makeSources(9, /*Seed=*/33);
  CorpusJournal Prefix = makeJournal(Sources, 6, /*PerGeneration=*/3);
  CorpusJournal Whole = makeJournal(Sources, 9, /*PerGeneration=*/3);
  LearnerConfig Cfg;
  Cfg.Seed = 5;

  StringInterner S0;
  auto Base = trainFromJournal(Prefix, Cfg, S0, "", false);
  ASSERT_TRUE(Base.has_value());
  std::string BaseBytes = artifactBytes(*Base, Cfg, S0);

  std::string WarmBytes;
  for (unsigned Threads : {1u, 8u}) {
    LearnerConfig TCfg = Cfg;
    TCfg.Threads = Threads;
    StringInterner S1;
    auto Warm = trainFromJournal(Whole, TCfg, S1, BaseBytes, false);
    ASSERT_TRUE(Warm.has_value());
    EXPECT_EQ(Warm->Mode, TrainMode::Warm);
    EXPECT_EQ(Warm->ProgramsTrained, 3u); // delta only
    EXPECT_EQ(Warm->Lineage.Generation, Whole.lastGeneration());
    EXPECT_EQ(Warm->Lineage.TrainedEntries, Whole.Entries.size());
    EXPECT_EQ(Warm->Lineage.ChainChecksum, Whole.chainChecksum());
    // The quantified diff is always emitted for a warm run and is valid
    // JSON with the documented fields.
    service::JsonValue Diff;
    std::string Err;
    ASSERT_TRUE(service::parseJson(Warm->DiffJson, Diff, &Err)) << Err;
    for (const char *Key :
         {"added", "removed", "kept", "added_specs", "removed_specs",
          "score_drift"})
      EXPECT_NE(Diff.find(Key), nullptr) << Key;
    // The manifest keeps the base prefix and appends the delta.
    ASSERT_EQ(Warm->Manifest.Entries.size(), 9u);
    EXPECT_EQ(Warm->Manifest.Entries[0].Name, "p0");
    std::string Bytes = artifactBytes(*Warm, TCfg, S1);
    if (WarmBytes.empty())
      WarmBytes = Bytes;
    else
      EXPECT_EQ(Bytes, WarmBytes) << "warm start thread-count dependent";
  }

  // The warm artifact is itself a valid lineage anchor: same journal again
  // is up to date.
  StringInterner S2;
  auto Again = trainFromJournal(Whole, Cfg, S2, WarmBytes, false);
  ASSERT_TRUE(Again.has_value());
  EXPECT_EQ(Again->Mode, TrainMode::UpToDate);
  EXPECT_EQ(Again->ProgramsTrained, 0u);
}

TEST(IncrementalTrain, WarmDemotesToFullOnMismatch) {
  std::vector<std::string> Sources = makeSources(6, /*Seed=*/41);
  CorpusJournal Prefix = makeJournal(Sources, 4);
  CorpusJournal Whole = makeJournal(Sources, 6);
  LearnerConfig Cfg;
  Cfg.Seed = 5;
  StringInterner S0;
  auto Base = trainFromJournal(Prefix, Cfg, S0, "", false);
  ASSERT_TRUE(Base.has_value());
  std::string BaseBytes = artifactBytes(*Base, Cfg, S0);

  // Config drift: a different seed invalidates the prior model.
  {
    LearnerConfig Other = Cfg;
    Other.Seed = 6;
    StringInterner S;
    auto Out = trainFromJournal(Whole, Other, S, BaseBytes, false);
    ASSERT_TRUE(Out.has_value());
    EXPECT_EQ(Out->Mode, TrainMode::Full);
    EXPECT_FALSE(Out->Notes.empty());
  }
  // Rewritten history: tamper with a trained-prefix entry.
  {
    CorpusJournal Tampered = Whole;
    Tampered.Entries[0].Source += " ";
    Tampered.Entries[0].Checksum = JournalEntry::computeChecksum(
        Tampered.Entries[0].Generation, Tampered.Entries[0].Name,
        Tampered.Entries[0].Source);
    StringInterner S;
    auto Out = trainFromJournal(Tampered, Cfg, S, BaseBytes, false);
    ASSERT_TRUE(Out.has_value());
    EXPECT_EQ(Out->Mode, TrainMode::Full);
    EXPECT_FALSE(Out->Notes.empty());
  }
  // Garbage prior bytes: full, not an error.
  {
    StringInterner S;
    auto Out = trainFromJournal(Whole, Cfg, S, "not an artifact", false);
    ASSERT_TRUE(Out.has_value());
    EXPECT_EQ(Out->Mode, TrainMode::Full);
  }
  // Empty journal is the only hard failure.
  {
    StringInterner S;
    std::string Err;
    EXPECT_FALSE(
        trainFromJournal(CorpusJournal(), Cfg, S, "", false, &Err));
    EXPECT_FALSE(Err.empty());
  }
}

TEST(IncrementalTrain, LineageAndLedgerSurviveTheArtifact) {
  std::vector<std::string> Sources = makeSources(4, /*Seed=*/51);
  CorpusJournal J = makeJournal(Sources, 4, /*PerGeneration=*/2);
  LearnerConfig Cfg;
  StringInterner S0;
  auto Out = trainFromJournal(J, Cfg, S0, "", false);
  ASSERT_TRUE(Out.has_value());
  std::string Bytes = artifactBytes(*Out, Cfg, S0);

  StringInterner S1;
  ArtifactError Err;
  auto Loaded = loadLearnArtifacts(Bytes, S1, &Err);
  ASSERT_TRUE(Loaded.has_value()) << Err.str();
  ASSERT_TRUE(Loaded->Lineage.has_value());
  EXPECT_EQ(*Loaded->Lineage, Out->Lineage);
  ASSERT_TRUE(Loaded->Ledger.has_value());
  EXPECT_EQ(Loaded->Ledger->Entries.size(),
            Out->Result.Ledger.Entries.size());
  EXPECT_EQ(Loaded->Manifest.Generation, J.lastGeneration());

  // A plain (non-journal) artifact carries neither section.
  StringInterner S2;
  std::string Plain =
      saveLearnArtifacts(Out->Result, Cfg, S0, Out->Manifest);
  auto PlainLoaded = loadLearnArtifacts(Plain, S2, &Err);
  ASSERT_TRUE(PlainLoaded.has_value()) << Err.str();
  EXPECT_FALSE(PlainLoaded->Lineage.has_value());
  EXPECT_FALSE(PlainLoaded->Ledger.has_value());
}

//===----------------------------------------------------------------------===//
// Serve: zero-downtime hot-swap
//===----------------------------------------------------------------------===//

TEST(IncrementalServe, HotSwapDropsNothingAndKeepsGenerationsByteIdentical) {
  service::ServiceSpecs Aware = learnSpecs(makeSources(24, /*Seed=*/61));
  service::ServiceSpecs Unaware; // empty spec set: API-unaware answers

  // Reference servers pinned to one generation each: their answers define
  // per-generation byte-identity.
  std::string Req = analyzeRequest(TinyProgram);
  std::string ExpectedA, ExpectedB;
  {
    service::ServerConfig Cfg;
    Cfg.Workers = 1;
    service::Server RefA(Cfg, service::ModelState::make(Aware, 1, "a"));
    service::Server RefB(Cfg, service::ModelState::make(Unaware, 2, "b"));
    ExpectedA = RefA.handle(Req);
    ExpectedB = RefB.handle(Req);
    RefA.drain();
    RefB.drain();
  }
  ASSERT_NE(ExpectedA, ExpectedB)
      << "models must answer differently for the bleed check to mean "
         "anything";

  service::ServerConfig Cfg;
  Cfg.Workers = 4;
  Cfg.QueueCapacity = 4096;
  service::Server S(Cfg, service::ModelState::make(Aware, 1, "a"));

  constexpr int ThreadCount = 4, PerThread = 40;
  std::atomic<int> Dropped{0}, Mismatched{0};
  std::vector<std::thread> Clients;
  for (int T = 0; T < ThreadCount; ++T)
    Clients.emplace_back([&] {
      for (int I = 0; I < PerThread; ++I) {
        std::string R = S.handle(Req);
        if (R.find("\"ok\":true") == std::string::npos)
          Dropped.fetch_add(1);
        else if (R != ExpectedA && R != ExpectedB)
          Mismatched.fetch_add(1);
      }
    });

  // Four swaps while the clients hammer: every request lands on one
  // generation or the other, never an error, never a hybrid.
  for (int Swap = 0; Swap < 4; ++Swap) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    S.swapModel(Swap % 2 == 0
                    ? service::ModelState::make(Unaware, 2, "b")
                    : service::ModelState::make(Aware, 1, "a"));
  }
  for (std::thread &T : Clients)
    T.join();

  EXPECT_EQ(Dropped.load(), 0);
  EXPECT_EQ(Mismatched.load(), 0);
  EXPECT_EQ(S.metrics().modelReloadCount(), 4u);
  S.drain();
}

TEST(IncrementalServe, CacheEntriesDoNotBleedAcrossGenerations) {
  service::ServiceSpecs Aware = learnSpecs(makeSources(24, /*Seed=*/61));
  service::ServiceSpecs Unaware;
  std::string Req = analyzeRequest(TinyProgram);

  service::ServerConfig Cfg;
  Cfg.Workers = 1;
  Cfg.CacheCapacity = 64;
  service::Server S(Cfg, service::ModelState::make(Aware, 1, "a"));

  std::string A1 = S.handle(Req);
  std::string A2 = S.handle(Req); // cache hit under generation 1
  EXPECT_EQ(A1, A2);
  uint64_t HitsBefore = S.metrics().cacheHitCount();
  EXPECT_GE(HitsBefore, 1u);

  // Swap: the same program must be re-analyzed under the new model, not
  // answered from generation 1's cache entry.
  S.swapModel(service::ModelState::make(Unaware, 2, "b"));
  std::string B1 = S.handle(Req);
  EXPECT_NE(B1, A1);

  // Swap back: generation 1's answer returns byte-identically (whether
  // from cache or a fresh analysis).
  S.swapModel(service::ModelState::make(Aware, 1, "a"));
  EXPECT_EQ(S.handle(Req), A1);
  S.drain();
}

TEST_F(IncrementalFaultGuard, ReloadFailureKeepsServingTheOldModel) {
  TempFile Model("model");
  service::ServiceSpecs Aware = learnSpecs(makeSources(24, /*Seed=*/61));
  {
    std::ofstream Out(Model.Path, std::ios::binary);
    Out << Aware.Text;
  }

  service::ServerConfig Cfg;
  Cfg.Workers = 1;
  Cfg.ModelPath = Model.Path;
  service::Server S(Cfg, service::ModelState::make(Aware, 1, "a"));
  uint64_t Checksum = S.model()->Checksum;

  // Injected load failure: reload reports the error, the serving model and
  // the reload counter are untouched.
  armFault("service.reload.load", 1);
  std::string Err;
  EXPECT_FALSE(S.reloadModel("", &Err));
  EXPECT_FALSE(Err.empty());
  disarmFaults();
  EXPECT_EQ(S.model()->Checksum, Checksum);
  EXPECT_EQ(S.metrics().modelReloadCount(), 0u);

  // The protocol surface: a bad path answers reload_failed, a good one
  // swaps and reports the new identity.
  std::string Bad =
      S.handle("{\"verb\":\"reload\",\"path\":\"/nonexistent.uspb\"}");
  EXPECT_NE(Bad.find("\"kind\":\"reload_failed\""), std::string::npos)
      << Bad;
  std::string Ok = S.handle("{\"verb\":\"reload\"}"); // ServerConfig path
  EXPECT_NE(Ok.find("\"ok\":true"), std::string::npos) << Ok;
  EXPECT_EQ(S.metrics().modelReloadCount(), 1u);
  S.drain();
}
