//===- specs_test.cpp - Tests for specification types -------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "specs/Spec.h"

#include <gtest/gtest.h>

using namespace uspec;

namespace {

struct SpecFixture : ::testing::Test {
  StringInterner Strings;

  MethodId method(const char *Class, const char *Name, uint8_t Arity) {
    return {Strings.intern(Class), Strings.intern(Name), Arity};
  }
};

} // namespace

using SpecTest = SpecFixture;

TEST_F(SpecTest, MethodIdEqualityAndPrinting) {
  MethodId Get1 = method("Map", "get", 1);
  MethodId Get1B = method("Map", "get", 1);
  MethodId Get2 = method("Map", "get", 2);
  MethodId Put = method("Map", "put", 2);
  EXPECT_EQ(Get1, Get1B);
  EXPECT_NE(Get1, Get2); // arity participates in identity
  EXPECT_NE(Get1, Put);
  EXPECT_EQ(Get1.str(Strings), "Map.get/1");
}

TEST_F(SpecTest, UnknownClassPrintsQuestionMark) {
  MethodId M = {Symbol(), Strings.intern("getName"), 0};
  EXPECT_EQ(M.str(Strings), "?.getName/0");
}

TEST_F(SpecTest, SpecConstructionAndPrinting) {
  Spec RS = Spec::retSame(method("ResultSet", "getString", 1));
  EXPECT_EQ(RS.str(Strings), "RetSame(ResultSet.getString/1)");

  Spec RA = Spec::retArg(method("Map", "get", 1), method("Map", "put", 2), 2);
  EXPECT_EQ(RA.str(Strings), "RetArg(Map.get/1, Map.put/2, 2)");
}

TEST_F(SpecTest, SpecEqualityDistinguishesKindAndPosition) {
  MethodId Get = method("Map", "get", 1);
  MethodId Put = method("Map", "put", 2);
  EXPECT_EQ(Spec::retArg(Get, Put, 2), Spec::retArg(Get, Put, 2));
  EXPECT_FALSE(Spec::retArg(Get, Put, 2) == Spec::retArg(Get, Put, 1));
  EXPECT_FALSE(Spec::retSame(Get) == Spec::retArg(Get, Put, 2));
}

TEST_F(SpecTest, SetInsertIsDeduplicating) {
  SpecSet Set;
  Spec S = Spec::retSame(method("Map", "get", 1));
  EXPECT_TRUE(Set.insert(S));
  EXPECT_FALSE(Set.insert(S));
  EXPECT_EQ(Set.size(), 1u);
  EXPECT_TRUE(Set.contains(S));
}

TEST_F(SpecTest, RetSameIndex) {
  SpecSet Set;
  MethodId Get = method("Map", "get", 1);
  EXPECT_FALSE(Set.hasRetSame(Get));
  Set.insert(Spec::retSame(Get));
  EXPECT_TRUE(Set.hasRetSame(Get));
  EXPECT_FALSE(Set.hasRetSame(method("Map", "get", 2)));
}

TEST_F(SpecTest, RetArgSourceIndex) {
  SpecSet Set;
  MethodId Get = method("Map", "get", 1);
  MethodId Put = method("Map", "put", 2);
  MethodId SetProp = method("Props", "setProperty", 2);
  Set.insert(Spec::retArg(Get, Put, 2));
  Set.insert(Spec::retArg(method("Props", "getProperty", 1), SetProp, 2));

  const auto &ByPut = Set.retArgsBySource(Put);
  ASSERT_EQ(ByPut.size(), 1u);
  EXPECT_EQ(ByPut[0].Target, Get);
  EXPECT_TRUE(Set.retArgsBySource(Get).empty());
}

TEST_F(SpecTest, ConsistencyExtensionAddsRetSameOfTargets) {
  // §5.4 eq. (3): RetArg(t,s,x) ∈ S ⇒ RetSame(t) ∈ S.
  SpecSet Set;
  MethodId Get = method("Map", "get", 1);
  MethodId Put = method("Map", "put", 2);
  Set.insert(Spec::retArg(Get, Put, 2));
  EXPECT_FALSE(Set.hasRetSame(Get));
  size_t Added = Set.extendConsistency();
  EXPECT_EQ(Added, 1u);
  EXPECT_TRUE(Set.hasRetSame(Get));
  // Idempotent.
  EXPECT_EQ(Set.extendConsistency(), 0u);
}

TEST_F(SpecTest, ConsistencyExtensionKeepsExistingRetSame) {
  SpecSet Set;
  MethodId Get = method("Map", "get", 1);
  Set.insert(Spec::retSame(Get));
  Set.insert(Spec::retArg(Get, method("Map", "put", 2), 2));
  EXPECT_EQ(Set.extendConsistency(), 0u);
  EXPECT_EQ(Set.size(), 2u);
}

TEST_F(SpecTest, OrderedIterationIsInsertionOrder) {
  SpecSet Set;
  Spec A = Spec::retSame(method("A", "a", 0));
  Spec B = Spec::retSame(method("B", "b", 0));
  Set.insert(B);
  Set.insert(A);
  ASSERT_EQ(Set.all().size(), 2u);
  EXPECT_EQ(Set.all()[0], B);
  EXPECT_EQ(Set.all()[1], A);
}
