//===- model_test.cpp - Tests for the probabilistic model (§4) ----------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Lowering.h"
#include "model/EdgeModel.h"

#include <gtest/gtest.h>

using namespace uspec;

namespace {

/// Fixture that parses, analyzes (API-unaware) and builds the event graph.
struct ModelFixture {
  StringInterner Strings;
  IRProgram Program;
  AnalysisResult Result;

  EventGraph graph(std::string_view Source) {
    DiagnosticSink Diags;
    auto P = parseAndLower(Source, "test", Strings, Diags);
    EXPECT_TRUE(P.has_value()) << Diags.render();
    Program = std::move(*P);
    Result = analyzeProgram(Program, Strings, AnalysisOptions());
    return EventGraph::build(Result);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Position buckets
//===----------------------------------------------------------------------===//

TEST(Features, BucketPos) {
  EXPECT_EQ(bucketPos(PosRet), PosBucket::Ret);
  EXPECT_EQ(bucketPos(PosReceiver), PosBucket::Receiver);
  EXPECT_EQ(bucketPos(1), PosBucket::Arg1);
  EXPECT_EQ(bucketPos(2), PosBucket::Arg2);
  EXPECT_EQ(bucketPos(3), PosBucket::Arg3);
  EXPECT_EQ(bucketPos(4), PosBucket::ArgMany);
  EXPECT_EQ(bucketPos(9), PosBucket::ArgMany);
}

TEST(Features, PosKeyIsInjective) {
  std::set<uint16_t> Keys;
  for (unsigned A = 0; A < NumPosBuckets; ++A)
    for (unsigned B = 0; B < NumPosBuckets; ++B)
      Keys.insert(posKey(static_cast<PosBucket>(A), static_cast<PosBucket>(B)));
  EXPECT_EQ(Keys.size(), NumPosBuckets * NumPosBuckets);
}

//===----------------------------------------------------------------------===//
// Feature extraction
//===----------------------------------------------------------------------===//

TEST(Features, DeterministicExtraction) {
  ModelFixture F;
  EventGraph G = F.graph(R"(
    class Main { def main() { db.getFile("x").getName(); } }
  )");
  ASSERT_GE(G.numEvents(), 2u);
  EdgeFeatures A = extractFeatures(G, 0, 1, false);
  EdgeFeatures B = extractFeatures(G, 0, 1, false);
  EXPECT_EQ(A.PosKey, B.PosKey);
  EXPECT_EQ(A.Hashes, B.Hashes);
}

TEST(Features, PruningRemovesTheLink) {
  ModelFixture F;
  EventGraph G = F.graph(R"(
    class Main { def main() { db.getFile("x").getName(); } }
  )");
  // Locate the (getFile.ret, getName.0) edge.
  EventId From = InvalidEvent, To = InvalidEvent;
  for (EventId E = 0; E < G.numEvents(); ++E) {
    const Event &Ev = G.event(E);
    if (Ev.Kind != EventKind::ApiCall)
      continue;
    if (F.Strings.str(Ev.Method.Name) == "getFile" && Ev.Pos == PosRet)
      From = E;
    if (F.Strings.str(Ev.Method.Name) == "getName" && Ev.Pos == PosReceiver)
      To = E;
  }
  ASSERT_NE(From, InvalidEvent);
  ASSERT_NE(To, InvalidEvent);
  ASSERT_TRUE(G.hasEdge(From, To));

  EdgeFeatures Full = extractFeatures(G, From, To, /*PruneLink=*/false);
  EdgeFeatures Pruned = extractFeatures(G, From, To, /*PruneLink=*/true);
  EXPECT_LT(Pruned.Hashes.size(), Full.Hashes.size())
      << "pruning must drop the direct-link path features";
}

TEST(Features, DifferentMethodsYieldDifferentFeatures) {
  ModelFixture F;
  EventGraph G = F.graph(R"(
    class Main {
      def main() {
        db.getFile("x").getName();
        db.getConn("y").getName();
      }
    }
  )");
  std::vector<EventId> Rets;
  for (EventId E = 0; E < G.numEvents(); ++E) {
    const Event &Ev = G.event(E);
    if (Ev.Kind == EventKind::ApiCall && Ev.Pos == PosRet &&
        (F.Strings.str(Ev.Method.Name) == "getFile" ||
         F.Strings.str(Ev.Method.Name) == "getConn"))
      Rets.push_back(E);
  }
  ASSERT_EQ(Rets.size(), 2u);
  EdgeFeatures A = extractFeatures(G, Rets[0], Rets[0], false);
  EdgeFeatures B = extractFeatures(G, Rets[1], Rets[1], false);
  EXPECT_NE(A.Hashes, B.Hashes);
}

//===----------------------------------------------------------------------===//
// Logistic regression
//===----------------------------------------------------------------------===//

TEST(LogisticRegression, SigmoidBasics) {
  EXPECT_DOUBLE_EQ(LogisticRegression::sigmoid(0), 0.5);
  EXPECT_GT(LogisticRegression::sigmoid(4), 0.95);
  EXPECT_LT(LogisticRegression::sigmoid(-4), 0.05);
}

TEST(LogisticRegression, LearnsSeparableData) {
  LogisticRegression LR(10);
  // Feature 1 => positive, feature 2 => negative.
  std::vector<uint32_t> Pos = {1};
  std::vector<uint32_t> Neg = {2};
  for (int I = 0; I < 200; ++I) {
    LR.update(Pos, 1.0, 0.3, 0);
    LR.update(Neg, 0.0, 0.3, 0);
  }
  EXPECT_GT(LR.predict(Pos), 0.9);
  EXPECT_LT(LR.predict(Neg), 0.1);
}

TEST(LogisticRegression, SharedFeatureSplitsTheDifference) {
  LogisticRegression LR(10);
  std::vector<uint32_t> Shared = {7};
  for (int I = 0; I < 200; ++I) {
    LR.update(Shared, 1.0, 0.2, 0);
    LR.update(Shared, 0.0, 0.2, 0);
  }
  EXPECT_NEAR(LR.predict(Shared), 0.5, 0.1);
}

//===----------------------------------------------------------------------===//
// Training data collection
//===----------------------------------------------------------------------===//

TEST(TrainingData, BalancedLabels) {
  ModelFixture F;
  EventGraph G = F.graph(R"(
    class Main {
      def main() {
        var map = new Map();
        map.put("a", 1);
        map.put("b", 2);
        map.size();
        var x = db.getFile("f");
        x.getName();
        x.close();
      }
    }
  )");
  Rng Rand(42);
  std::vector<TrainingSample> Samples;
  collectTrainingSamples(G, Rand, Samples);
  size_t Pos = 0, Neg = 0;
  for (const TrainingSample &S : Samples)
    (S.Label > 0.5 ? Pos : Neg)++;
  EXPECT_GT(Pos, 0u);
  EXPECT_GT(Neg, 0u);
  // Negatives are subsampled to roughly match positives.
  EXPECT_LE(Neg, Pos);
  EXPECT_GE(Neg, Pos / 2);
}

TEST(TrainingData, PositivesMatchEdgeCount) {
  ModelFixture F;
  EventGraph G = F.graph(R"(
    class Main { def main() { db.getFile("x").getName(); } }
  )");
  size_t Edges = 0;
  for (EventId E = 0; E < G.numEvents(); ++E)
    Edges += G.children(E).size();
  Rng Rand(1);
  std::vector<TrainingSample> Samples;
  collectTrainingSamples(G, Rand, Samples);
  size_t Pos = 0;
  for (const TrainingSample &S : Samples)
    Pos += S.Label > 0.5;
  EXPECT_EQ(Pos, Edges);
}

//===----------------------------------------------------------------------===//
// End-to-end model behaviour: the §4.3 insight
//===----------------------------------------------------------------------===//

TEST(EdgeModel, AssignsHighProbabilityToFamiliarMissingEdges) {
  // Train on many direct db.getFile(..).getName() flows, then query the
  // *absent* edge getFile.ret -> getName.0 in a program where the flow runs
  // through an (unknown) Map. The model should consider it likely — that is
  // the key insight enabling specification learning.
  StringInterner Strings;
  std::vector<std::unique_ptr<AnalysisResult>> Keep;
  std::vector<EventGraph> Graphs;

  auto AddProgram = [&](const std::string &Source) -> EventGraph & {
    DiagnosticSink Diags;
    auto P = parseAndLower(Source, "p" + std::to_string(Graphs.size()),
                           Strings, Diags);
    EXPECT_TRUE(P.has_value()) << Diags.render();
    Keep.push_back(std::make_unique<AnalysisResult>(
        analyzeProgram(*P, Strings, AnalysisOptions())));
    Graphs.push_back(EventGraph::build(*Keep.back()));
    return Graphs.back();
  };

  // Training corpus: direct flows plus unrelated noise calls.
  for (int I = 0; I < 20; ++I) {
    AddProgram(R"(
      class Main {
        def main() {
          var f = db.getFile("cfg");
          var n = f.getName();
          rocket.launch();
          log.info(n);
        }
      }
    )");
  }

  Rng Rand(7);
  std::vector<TrainingSample> Samples;
  for (const EventGraph &G : Graphs)
    collectTrainingSamples(G, Rand, Samples);
  EdgeModel Model;
  Model.train(Samples);
  EXPECT_GT(Model.accuracy(Samples), 0.85);

  // Query program: the flow is hidden behind map.put/map.get.
  EventGraph &Query = AddProgram(R"(
    class Main {
      def main() {
        var map = new Map();
        map.put("k", db.getFile("cfg"));
        var f = map.get("k");
        var n = f.getName();
      }
    }
  )");

  EventId GetFileRet = InvalidEvent, GetNameRecv = InvalidEvent,
          LaunchRecv = InvalidEvent;
  for (EventId E = 0; E < Query.numEvents(); ++E) {
    const Event &Ev = Query.event(E);
    if (Ev.Kind != EventKind::ApiCall)
      continue;
    if (Strings.str(Ev.Method.Name) == "getFile" && Ev.Pos == PosRet)
      GetFileRet = E;
    if (Strings.str(Ev.Method.Name) == "getName" && Ev.Pos == PosReceiver)
      GetNameRecv = E;
  }
  ASSERT_NE(GetFileRet, InvalidEvent);
  ASSERT_NE(GetNameRecv, InvalidEvent);
  ASSERT_FALSE(Query.hasEdge(GetFileRet, GetNameRecv))
      << "the edge must be absent in the API-unaware graph";

  double PFamiliar = Model.edgeProbability(Query, GetFileRet, GetNameRecv);
  EXPECT_GT(PFamiliar, 0.6) << "familiar interaction should look like an edge";

  // Contrast: getFile.ret -> launch.0 was seen as a NON-edge in training.
  EventGraph &Contrast = AddProgram(R"(
    class Main {
      def main() {
        var map = new Map();
        map.put("k", db.getFile("cfg"));
        var f = map.get("k");
        f.launch();
      }
    }
  )");
  EventId CGetFileRet = InvalidEvent;
  for (EventId E = 0; E < Contrast.numEvents(); ++E) {
    const Event &Ev = Contrast.event(E);
    if (Ev.Kind != EventKind::ApiCall)
      continue;
    if (Strings.str(Ev.Method.Name) == "getFile" && Ev.Pos == PosRet)
      CGetFileRet = E;
    if (Strings.str(Ev.Method.Name) == "launch" && Ev.Pos == PosReceiver)
      LaunchRecv = E;
  }
  ASSERT_NE(CGetFileRet, InvalidEvent);
  ASSERT_NE(LaunchRecv, InvalidEvent);
  double PUnfamiliar = Model.edgeProbability(Contrast, CGetFileRet, LaunchRecv);
  EXPECT_LT(PUnfamiliar, PFamiliar)
      << "an interaction pattern never observed must score lower";
}

TEST(EdgeModel, UnseenPosKeyFallsBackToHalf) {
  EdgeModel Model;
  EdgeFeatures F;
  F.PosKey = 35;
  F.Hashes = {1, 2, 3};
  EXPECT_DOUBLE_EQ(Model.predict(F), 0.5);
}
