//===- property_test.cpp - Parameterized property sweeps ----------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Property-style invariants checked across random seeds with parameterized
// gtest suites: event-graph structural invariants, analysis determinism,
// selection monotonicity, generator robustness and model sanity.
//
//===----------------------------------------------------------------------===//

#include "corpus/Generator.h"
#include "corpus/GroundTruth.h"
#include "corpus/Profiles.h"
#include "eventgraph/EventGraph.h"
#include "ir/Lowering.h"
#include "model/EdgeModel.h"

#include <gtest/gtest.h>

using namespace uspec;

//===----------------------------------------------------------------------===//
// Event graph invariants over generated programs
//===----------------------------------------------------------------------===//

class EventGraphInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EventGraphInvariants, HoldOnGeneratedPrograms) {
  uint64_t Seed = GetParam();
  LanguageProfile P = javaProfile();
  GeneratorConfig Cfg;
  Rng Rand(Seed);
  StringInterner S;

  for (int I = 0; I < 15; ++I) {
    std::string Source = generateProgramSource(P, Cfg, Rand);
    DiagnosticSink Diags;
    auto Program = parseAndLower(Source, "prop", S, Diags);
    ASSERT_TRUE(Program.has_value()) << Source;
    AnalysisResult R = analyzeProgram(*Program, S, AnalysisOptions());
    EventGraph G = EventGraph::build(R);

    for (EventId E = 0; E < G.numEvents(); ++E) {
      // Parent/child duality.
      for (EventId C : G.children(E)) {
        const auto &Ps = G.parents(C);
        EXPECT_TRUE(std::binary_search(Ps.begin(), Ps.end(), E))
            << "child edge without matching parent edge";
        // Antisymmetry: no edge both ways.
        EXPECT_FALSE(G.hasEdge(C, E)) << "cyclic pair edge";
      }
      // Sorted adjacency.
      EXPECT_TRUE(std::is_sorted(G.children(E).begin(), G.children(E).end()));
      EXPECT_TRUE(std::is_sorted(G.parents(E).begin(), G.parents(E).end()));
      // Self-loops never exist.
      EXPECT_FALSE(G.hasEdge(E, E));

      // allocG elements are parentless ret events, and alloc sets are
      // subsets of parents(e) ∪ {e}.
      for (EventId A : G.allocOf(E)) {
        EXPECT_TRUE(G.event(A).isRet());
        EXPECT_TRUE(G.parents(A).empty());
        EXPECT_TRUE(A == E ||
                    std::binary_search(G.parents(E).begin(),
                                       G.parents(E).end(), A));
      }
      // mayAlias is reflexive for events with non-empty points-to sets.
      if (!G.allocOf(E).empty())
        EXPECT_TRUE(G.mayAlias(E, E));
    }

    // Call-site grouping: every ApiCall event belongs to exactly one site
    // and the site's events point back to it.
    for (size_t Idx = 0; Idx < G.callSites().size(); ++Idx) {
      const CallSite &CS = G.callSites()[Idx];
      if (CS.Recv != InvalidEvent)
        EXPECT_EQ(G.callSiteOf(CS.Recv), static_cast<int>(Idx));
      if (CS.Ret != InvalidEvent)
        EXPECT_EQ(G.callSiteOf(CS.Ret), static_cast<int>(Idx));
      EXPECT_EQ(CS.Args.size(), CS.Method.Arity);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventGraphInvariants,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

//===----------------------------------------------------------------------===//
// Analysis determinism and history bounds
//===----------------------------------------------------------------------===//

class AnalysisProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnalysisProperties, DeterministicAndBounded) {
  uint64_t Seed = GetParam();
  LanguageProfile P = javaProfile();
  GeneratorConfig Cfg;
  Rng R1(Seed), R2(Seed);
  StringInterner S1, S2;

  for (int I = 0; I < 10; ++I) {
    std::string SourceA = generateProgramSource(P, Cfg, R1);
    std::string SourceB = generateProgramSource(P, Cfg, R2);
    ASSERT_EQ(SourceA, SourceB) << "generator must be deterministic";

    DiagnosticSink DA, DB;
    auto PA = parseAndLower(SourceA, "a", S1, DA);
    auto PB = parseAndLower(SourceB, "b", S2, DB);
    ASSERT_TRUE(PA && PB);

    AnalysisOptions Options;
    Options.HistoryCap = 8;
    AnalysisResult RA = analyzeProgram(*PA, S1, Options);
    AnalysisResult RB = analyzeProgram(*PB, S2, Options);

    // Identical shape across runs.
    EXPECT_EQ(RA.Events.size(), RB.Events.size());
    EXPECT_EQ(RA.Objects.size(), RB.Objects.size());
    ASSERT_EQ(RA.Histories.size(), RB.Histories.size());
    for (size_t Obj = 0; Obj < RA.Histories.size(); ++Obj) {
      EXPECT_EQ(RA.Histories[Obj], RB.Histories[Obj]) << "object " << Obj;
      // The history cap must hold.
      EXPECT_LE(RA.Histories[Obj].size(), 8u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisProperties,
                         ::testing::Values(11, 22, 33, 44));

//===----------------------------------------------------------------------===//
// Selection properties
//===----------------------------------------------------------------------===//

class SelectionProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SelectionProperties, TauMonotoneAndClosureIdempotent) {
  uint64_t Seed = GetParam();
  StringInterner S;
  LanguageProfile Profile = javaProfile();
  GeneratorConfig GenCfg;
  GenCfg.NumPrograms = 120;
  GenCfg.Seed = Seed;
  GeneratedCorpus Corpus = generateCorpus(Profile, GenCfg, S);
  LearnerConfig Cfg;
  Cfg.Seed = Seed;
  USpecLearner Learner(S, Cfg);
  LearnResult Result = Learner.learn(Corpus.Programs);

  // Selection without extension is monotone in τ.
  size_t Prev = static_cast<size_t>(-1);
  for (double Tau : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    SpecSet Sel = USpecLearner::select(Result.Candidates, Tau, false);
    EXPECT_LE(Sel.size(), Prev);
    Prev = Sel.size();
    // Everything selected at a higher τ is selected at a lower one.
    SpecSet Lower = USpecLearner::select(Result.Candidates, Tau * 0.5, false);
    for (const Spec &Sp : Sel.all())
      EXPECT_TRUE(Lower.contains(Sp));
  }

  // The consistency closure is idempotent and establishes eq. (3).
  SpecSet Sel = USpecLearner::select(Result.Candidates, 0.6, true);
  EXPECT_EQ(Sel.extendConsistency(), 0u);
  for (const Spec &Sp : Sel.all())
    if (Sp.TheKind == Spec::Kind::RetArg)
      EXPECT_TRUE(Sel.hasRetSame(Sp.Target));

  // Candidate list is sorted by descending score.
  for (size_t I = 1; I < Result.Candidates.size(); ++I)
    EXPECT_GE(Result.Candidates[I - 1].Score, Result.Candidates[I].Score);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionProperties,
                         ::testing::Values(7, 77, 777));

//===----------------------------------------------------------------------===//
// Model properties
//===----------------------------------------------------------------------===//

class ModelProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModelProperties, PredictionsAreProbabilitiesAndBeatChance) {
  uint64_t Seed = GetParam();
  StringInterner S;
  LanguageProfile Profile = javaProfile();
  GeneratorConfig GenCfg;
  GenCfg.NumPrograms = 80;
  GenCfg.Seed = Seed;
  GeneratedCorpus Corpus = generateCorpus(Profile, GenCfg, S);

  std::vector<std::unique_ptr<AnalysisResult>> Keep;
  std::vector<EventGraph> Graphs;
  for (const IRProgram &P : Corpus.Programs) {
    Keep.push_back(std::make_unique<AnalysisResult>(
        analyzeProgram(P, S, AnalysisOptions())));
    Graphs.push_back(EventGraph::build(*Keep.back()));
  }
  Rng Rand(Seed);
  std::vector<TrainingSample> Samples;
  for (const EventGraph &G : Graphs)
    collectTrainingSamples(G, Rand, Samples);
  ASSERT_GT(Samples.size(), 100u);

  // Hold out every 5th sample.
  std::vector<TrainingSample> Train, Test;
  for (size_t I = 0; I < Samples.size(); ++I)
    (I % 5 == 0 ? Test : Train).push_back(Samples[I]);

  EdgeModelConfig MCfg;
  MCfg.Seed = Seed;
  EdgeModel Model(MCfg);
  Model.train(Train);

  for (const TrainingSample &Sample : Test) {
    double Prob = Model.predict(Sample.Features);
    EXPECT_GE(Prob, 0.0);
    EXPECT_LE(Prob, 1.0);
  }
  EXPECT_GT(Model.accuracy(Test), 0.75)
      << "held-out accuracy must beat the 0.5 baseline comfortably";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperties, ::testing::Values(3, 13, 23));

//===----------------------------------------------------------------------===//
// Generator robustness across profiles and idiom mixes
//===----------------------------------------------------------------------===//

struct GenParam {
  uint64_t Seed;
  bool Python;
  double Direct, Roundtrip, Getter, Mutating, Complex;
};

class GeneratorRobustness : public ::testing::TestWithParam<GenParam> {};

TEST_P(GeneratorRobustness, EveryProgramParsesLowersAnalyzes) {
  GenParam Param = GetParam();
  LanguageProfile P = Param.Python ? pythonProfile() : javaProfile();
  GeneratorConfig Cfg;
  Cfg.WDirect = Param.Direct;
  Cfg.WRoundtrip = Param.Roundtrip;
  Cfg.WGetter = Param.Getter;
  Cfg.WMutating = Param.Mutating;
  Cfg.WComplex = Param.Complex;
  Rng Rand(Param.Seed);
  StringInterner S;
  for (int I = 0; I < 40; ++I) {
    std::string Source = generateProgramSource(P, Cfg, Rand);
    DiagnosticSink Diags;
    auto Program = parseAndLower(Source, "gen", S, Diags);
    ASSERT_TRUE(Program.has_value())
        << "profile=" << P.Name << "\n"
        << Source << "\n"
        << Diags.render();
    // The analysis must not crash or hang on any generated program.
    AnalysisResult R = analyzeProgram(*Program, S, AnalysisOptions());
    EXPECT_GE(R.Events.size(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, GeneratorRobustness,
    ::testing::Values(GenParam{1, false, 1, 0, 0, 0, 0},
                      GenParam{2, false, 0, 1, 0, 0, 0},
                      GenParam{3, false, 0, 0, 1, 0, 0},
                      GenParam{4, false, 0, 0, 0, 1, 0},
                      GenParam{5, false, 0, 0, 0, 0, 1},
                      GenParam{6, false, .2, .2, .2, .2, .2},
                      GenParam{7, true, 1, 0, 0, 0, 0},
                      GenParam{8, true, 0, 1, 0, 0, 0},
                      GenParam{9, true, 0, 0, 1, 0, 0},
                      GenParam{10, true, 0, 0, 0, 1, 0},
                      GenParam{11, true, 0, 0, 0, 0, 1},
                      GenParam{12, true, .2, .2, .2, .2, .2}));

//===----------------------------------------------------------------------===//
// Ghost-field bounds
//===----------------------------------------------------------------------===//

TEST(GhostBounds, TupleCapPreventsBlowup) {
  // A store whose key may be any of many objects: the cartesian product of
  // ghost names must stay capped.
  std::string Source = "class Main { def main() { var m = new Map();\n";
  Source += "var k = api.pick();\n";
  // Join many possible keys into one variable.
  for (int I = 0; I < 12; ++I)
    Source += "if (c" + std::to_string(I) + " != null) { k = new K" +
              std::to_string(I) + "(); }\n";
  Source += "m.put(k, api.mk());\nvar x = m.get(k);\n} }";

  StringInterner S;
  DiagnosticSink Diags;
  auto P = parseAndLower(Source, "blowup", S, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.render();

  SpecSet Specs;
  MethodId Get = {S.intern("Map"), S.intern("get"), 1};
  MethodId Put = {S.intern("Map"), S.intern("put"), 2};
  Specs.insert(Spec::retArg(Get, Put, 2));
  Specs.insert(Spec::retSame(Get));
  AnalysisOptions Options;
  Options.ApiAware = true;
  Options.Specs = &Specs;
  Options.MaxGhostTuples = 8;
  AnalysisResult R = analyzeProgram(*P, S, Options);
  // Fields per receiver bounded: ghost fields ≤ cap + regular bookkeeping.
  EXPECT_LE(R.Fields.size(), 64u);
}
