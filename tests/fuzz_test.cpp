//===- fuzz_test.cpp - Randomized robustness tests ------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// The pipeline's front door must never crash on garbage: random byte
// strings, random token soup, and random mutations of valid programs are
// thrown at the lexer/parser/lowering (and, where they survive, at the
// analysis). Diagnostics are allowed; crashes and hangs are not.
//
//===----------------------------------------------------------------------===//

#include "corpus/Generator.h"
#include "corpus/Profiles.h"
#include "ir/Lowering.h"
#include "pointsto/Analysis.h"
#include "specs/SpecIO.h"

#include <gtest/gtest.h>

using namespace uspec;

namespace {

/// Exercises the whole front end on arbitrary input; returns true if it
/// lowered cleanly.
bool feed(const std::string &Source) {
  StringInterner S;
  DiagnosticSink Diags;
  auto P = parseAndLower(Source, "fuzz", S, Diags);
  if (!P)
    return false;
  // Lowered inputs must also analyze without crashing.
  analyzeProgram(*P, S, AnalysisOptions());
  return true;
}

} // namespace

class FuzzBytes : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzBytes, RandomBytesNeverCrash) {
  Rng Rand(GetParam());
  for (int Case = 0; Case < 200; ++Case) {
    size_t Len = Rand.below(200);
    std::string Source;
    for (size_t I = 0; I < Len; ++I)
      Source += static_cast<char>(32 + Rand.below(95));
    feed(Source); // outcome irrelevant; must not crash
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzBytes, ::testing::Values(1, 2, 3));

class FuzzTokens : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTokens, RandomTokenSoupNeverCrashes) {
  static const char *Tokens[] = {
      "class",  "def",   "var",  "new",   "if",    "else", "while",
      "return", "null",  "this", "{",     "}",     "(",    ")",
      ",",      ";",     ".",    "=",     "==",    "!=",   "<",
      ">",      "x",     "y",    "Main",  "main",  "get",  "put",
      "\"s\"",  "42",    "0"};
  Rng Rand(GetParam());
  for (int Case = 0; Case < 300; ++Case) {
    std::string Source;
    size_t Len = Rand.below(120);
    for (size_t I = 0; I < Len; ++I) {
      Source += Tokens[Rand.below(std::size(Tokens))];
      Source += ' ';
    }
    feed(Source);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTokens, ::testing::Values(4, 5, 6));

class FuzzMutations : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzMutations, MutatedValidProgramsNeverCrash) {
  LanguageProfile P = javaProfile();
  GeneratorConfig Cfg;
  Rng Rand(GetParam());
  for (int Case = 0; Case < 60; ++Case) {
    std::string Source = generateProgramSource(P, Cfg, Rand);
    // Apply a handful of byte-level mutations.
    for (int M = 0; M < 5 && !Source.empty(); ++M) {
      size_t Pos = Rand.below(Source.size());
      switch (Rand.below(3)) {
      case 0:
        Source[Pos] = static_cast<char>(32 + Rand.below(95));
        break;
      case 1:
        Source.erase(Pos, 1 + Rand.below(4));
        break;
      default:
        Source.insert(Pos, 1, static_cast<char>(32 + Rand.below(95)));
        break;
      }
    }
    feed(Source);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzMutations, ::testing::Values(7, 8, 9));

TEST(FuzzSpecIO, RandomSpecDocumentsNeverCrash) {
  Rng Rand(11);
  StringInterner S;
  static const char *Pieces[] = {"RetSame", "RetArg",  "RetRecv", "(",
                                 ")",       ",",       ".",       "/",
                                 "Map",     "get",     "?",       "1",
                                 "255",     "#x",      "\n",      " "};
  for (int Case = 0; Case < 500; ++Case) {
    std::string Doc;
    size_t Len = Rand.below(40);
    for (size_t I = 0; I < Len; ++I)
      Doc += Pieces[Rand.below(std::size(Pieces))];
    size_t ErrorLine = 0;
    parseSpecs(Doc, S, &ErrorLine);
  }
  SUCCEED();
}

TEST(FuzzSpecIO, SerializeAfterParseIsStable) {
  // Valid documents round-trip through parse→serialize→parse.
  StringInterner S;
  std::string Doc = "RetSame(A.get/1)\nRetArg(B.get/1, B.put/2, 2)\n"
                    "RetRecv(C.append/1)\nRetSame(?.path/1)\n";
  size_t ErrorLine = 0;
  SpecSet First = parseSpecs(Doc, S, &ErrorLine);
  ASSERT_EQ(ErrorLine, 0u);
  std::string Out1 = serializeSpecs(First, S);
  SpecSet Second = parseSpecs(Out1, S, &ErrorLine);
  ASSERT_EQ(ErrorLine, 0u);
  EXPECT_EQ(serializeSpecs(Second, S), Out1);
}
