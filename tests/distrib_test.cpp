//===- distrib_test.cpp - Distributed training + routed serving ----------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Pins the DESIGN.md §14 contracts:
//
//   - Wire codecs round-trip every message type, and frames survive a real
//     socket (length-prefixed, binary-safe).
//   - `train --distributed N` is byte-identical to single-process `train`
//     at any worker count, for both file-list and --journal (full and warm)
//     runs — the flagship determinism claim.
//   - Worker death (injected SIGKILL via USPEC_FAULT) converges to the same
//     bytes through reassignment/demotion.
//   - The consistent-hash router keeps ownership stable when a replica is
//     removed from the ring, fails over deterministically when one is
//     marked down, and broadcast reload swaps every replica's model with
//     no stale cache bleed-through.
//
// CLI-driven suites use the real `uspec` binary (USPEC_CLI_PATH, injected
// by CMake); router suites run distrib::Router and service::Server
// in-process on Unix sockets under testing::TempDir().
//
//===----------------------------------------------------------------------===//

#include "distrib/Router.h"
#include "distrib/Wire.h"
#include "service/Protocol.h"
#include "service/Server.h"
#include "support/FaultInject.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace uspec;
using namespace uspec::distrib;

namespace {

struct RunResult {
  int ExitCode = -1;
  std::string Output; ///< stdout + stderr interleaved.
};

/// Runs a full shell command (so `USPEC_FAULT=... uspec ...` env prefixes
/// work), merging stderr into the captured output.
RunResult runShell(const std::string &Command) {
  std::string Full = Command + " 2>&1";
  RunResult R;
  FILE *Pipe = popen(Full.c_str(), "r");
  if (!Pipe) {
    ADD_FAILURE() << "popen failed for: " << Full;
    return R;
  }
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    R.Output.append(Buf, N);
  int Status = pclose(Pipe);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

RunResult runCli(const std::string &ArgString) {
  return runShell(std::string(USPEC_CLI_PATH) + " " + ArgString);
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

void writeFile(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Content;
}

/// A per-test scratch directory under TempDir (tests in one binary run
/// sequentially, so a name per test suffices).
std::string scratchDir(const std::string &Name) {
  std::string Dir = testing::TempDir() + "uspec_distrib_" + Name + "_" +
                    std::to_string(getpid());
  std::string Cmd = "rm -rf " + Dir + " && mkdir -p " + Dir;
  if (std::system(Cmd.c_str()) != 0)
    ADD_FAILURE() << "cannot create scratch dir " << Dir;
  return Dir;
}

/// Byte-level artifact comparison without dumping binary on failure.
void expectSameBytes(const std::string &PathA, const std::string &PathB,
                     const char *What) {
  std::string A = readFile(PathA), B = readFile(PathB);
  ASSERT_FALSE(A.empty()) << PathA << " is empty/missing (" << What << ")";
  EXPECT_EQ(A.size(), B.size()) << What;
  EXPECT_TRUE(A == B) << What << ": " << PathA << " and " << PathB
                      << " differ";
}

/// A small MiniLang program whose text varies with \p Salt — used to find
/// programs landing on specific ring owners.
std::string miniProgram(unsigned Salt) {
  std::string K = "k" + std::to_string(Salt);
  return "class Main { def main() { var m = new Map(); m.put(\"" + K +
         "\", 1); var a = m.get(\"" + K + "\"); var b = m.get(\"" + K +
         "\"); } }";
}

std::string analyzeRequest(const std::string &Id, const std::string &Prog) {
  std::string Line = "{\"id\":\"" + Id + "\",\"verb\":\"analyze\","
                     "\"program\":";
  // Programs here contain no characters needing JSON escaping.
  Line += "\"";
  for (char C : Prog) {
    if (C == '"' || C == '\\')
      Line += '\\';
    Line += C;
  }
  Line += "\"}";
  return Line;
}

} // namespace

//===----------------------------------------------------------------------===//
// DistribWire: addresses, frames, message codecs
//===----------------------------------------------------------------------===//

TEST(DistribWire, ParseAddressForms) {
  std::string Err;
  auto A = parseAddress("unix:/tmp/x.sock", &Err);
  ASSERT_TRUE(A) << Err;
  EXPECT_FALSE(A->Tcp);
  EXPECT_EQ(A->Path, "/tmp/x.sock");
  EXPECT_EQ(A->str(), "unix:/tmp/x.sock");

  auto Bare = parseAddress("/tmp/y.sock", &Err);
  ASSERT_TRUE(Bare) << Err;
  EXPECT_FALSE(Bare->Tcp);
  EXPECT_EQ(Bare->Path, "/tmp/y.sock");

  auto T = parseAddress("tcp:127.0.0.1:7070", &Err);
  ASSERT_TRUE(T) << Err;
  EXPECT_TRUE(T->Tcp);
  EXPECT_EQ(T->Path, "127.0.0.1");
  EXPECT_EQ(T->Port, 7070);
  EXPECT_EQ(T->str(), "tcp:127.0.0.1:7070");

  // A bare token is a (relative) Unix socket path, matching serve --socket.
  auto Rel = parseAddress("nonsense", &Err);
  ASSERT_TRUE(Rel) << Err;
  EXPECT_FALSE(Rel->Tcp);

  EXPECT_FALSE(parseAddress("tcp:hostonly", &Err));
  EXPECT_FALSE(parseAddress("tcp:h:99999", &Err));
  EXPECT_FALSE(parseAddress("", &Err));
}

TEST(DistribWire, FramesSurviveASocketBinarySafe) {
  int Fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);

  // Arbitrary bytes, embedded NULs included: the frame layer is oblivious
  // to payload contents.
  std::string Payload = "abc";
  Payload.push_back('\0');
  Payload += "def\xff\x01";
  std::string Err;
  ASSERT_TRUE(sendFrame(Fds[0], Payload, &Err)) << Err;
  std::string Got;
  ASSERT_TRUE(recvFrame(Fds[1], Got, &Err)) << Err;
  EXPECT_EQ(Got, Payload);

  // A second frame queued behind the first is framed independently.
  ASSERT_TRUE(sendFrame(Fds[0], "second", &Err)) << Err;
  ASSERT_TRUE(sendFrame(Fds[0], "", &Err)) << Err;
  ASSERT_TRUE(recvFrame(Fds[1], Got, &Err)) << Err;
  EXPECT_EQ(Got, "second");
  ASSERT_TRUE(recvFrame(Fds[1], Got, &Err)) << Err;
  EXPECT_EQ(Got, "");

  // Peer close = clean EOF, not garbage.
  close(Fds[0]);
  EXPECT_FALSE(recvFrame(Fds[1], Got, &Err));
  close(Fds[1]);

  // Garbage bytes are not a USPB container.
  EXPECT_FALSE(peekType(Payload, &Err));
}

TEST(DistribWire, ControlMessagesRoundTrip) {
  std::string Frame = encodeControl(MsgType::Hello, "pid 1234");
  auto Type = peekType(Frame);
  ASSERT_TRUE(Type);
  EXPECT_EQ(*Type, MsgType::Hello);

  MsgType T;
  std::string Text, Err;
  ASSERT_TRUE(decodeControl(Frame, T, Text, &Err)) << Err;
  EXPECT_EQ(T, MsgType::Hello);
  EXPECT_EQ(Text, "pid 1234");

  Frame = encodeControl(MsgType::Error, "shard 3 exploded");
  ASSERT_TRUE(decodeControl(Frame, T, Text, &Err)) << Err;
  EXPECT_EQ(T, MsgType::Error);
  EXPECT_EQ(Text, "shard 3 exploded");
}

TEST(DistribWire, InitRoundTripsConfigAndInternerSnapshot) {
  InitMsg Msg;
  Msg.Config.Seed = 0xDEADBEEF12345678ull;
  Msg.Config.DistanceBound = 7;
  Msg.Config.ProgramStepBudget = 100000;
  Msg.Config.Threads = 3;
  Msg.Config.ExperimentalPatterns = true;
  Msg.Symbols = {"Map", "get", "", "put", "a string with spaces"};
  Msg.WorkerId = 42;

  std::string Frame = encodeInit(Msg);
  auto Type = peekType(Frame);
  ASSERT_TRUE(Type);
  EXPECT_EQ(*Type, MsgType::Init);

  InitMsg Out;
  std::string Err;
  ASSERT_TRUE(decodeInit(Frame, Out, &Err)) << Err;
  EXPECT_EQ(Out.Config.Seed, Msg.Config.Seed);
  EXPECT_EQ(Out.Config.DistanceBound, Msg.Config.DistanceBound);
  EXPECT_EQ(Out.Config.ProgramStepBudget, Msg.Config.ProgramStepBudget);
  EXPECT_EQ(Out.Config.Threads, Msg.Config.Threads);
  EXPECT_EQ(Out.Config.ExperimentalPatterns, Msg.Config.ExperimentalPatterns);
  EXPECT_EQ(Out.Symbols, Msg.Symbols);
  EXPECT_EQ(Out.WorkerId, Msg.WorkerId);
}

TEST(DistribWire, AnalyzeTaskAndResultRoundTrip) {
  AnalyzeTask Task;
  Task.Shard = 5;
  Task.Base = 17;
  Task.Programs = {{"a.mini", "class A {}"}, {"b.mini", "class B {}"}};

  std::string Frame = encodeAnalyzeTask(Task);
  AnalyzeTask TOut;
  std::string Err;
  ASSERT_TRUE(decodeAnalyzeTask(Frame, TOut, &Err)) << Err;
  EXPECT_EQ(TOut.Shard, 5u);
  EXPECT_EQ(TOut.Base, 17u);
  ASSERT_EQ(TOut.Programs.size(), 2u);
  EXPECT_EQ(TOut.Programs[0].Name, "a.mini");
  EXPECT_EQ(TOut.Programs[1].Source, "class B {}");

  AnalyzedResult Result;
  Result.Shard = 5;
  Result.Graphs = 2;
  TrainingSample S1;
  S1.Features.PosKey = 0x0102;
  S1.Features.Hashes = {1u, 0xFFFFFFFFu, 42u};
  S1.Label = 1.0f;
  TrainingSample S2;
  S2.Features.PosKey = 0x0201;
  S2.Features.Hashes = {7u};
  S2.Label = 0.0f;
  Result.Samples = {{S1, S2}, {}};
  Result.QReason = {"", "parse: boom"};

  Frame = encodeAnalyzedResult(Result);
  AnalyzedResult ROut;
  ASSERT_TRUE(decodeAnalyzedResult(Frame, ROut, &Err)) << Err;
  EXPECT_EQ(ROut.Shard, 5u);
  EXPECT_EQ(ROut.Graphs, 2u);
  ASSERT_EQ(ROut.Samples.size(), 2u);
  ASSERT_EQ(ROut.Samples[0].size(), 2u);
  EXPECT_TRUE(ROut.Samples[1].empty());
  EXPECT_EQ(ROut.Samples[0][0].Features.PosKey, 0x0102);
  EXPECT_EQ(ROut.Samples[0][0].Features.Hashes, S1.Features.Hashes);
  EXPECT_EQ(ROut.Samples[0][0].Label, 1.0f);
  EXPECT_EQ(ROut.Samples[0][1].Features.Hashes, S2.Features.Hashes);
  ASSERT_EQ(ROut.QReason.size(), 2u);
  EXPECT_EQ(ROut.QReason[1], "parse: boom");
}

TEST(DistribWire, ExtractTaskAndResultRoundTrip) {
  ExtractTask Task;
  Task.Shard = 9;
  Task.Base = 3;
  // Empty Programs = "use your cached shard state".
  std::string Frame = encodeExtractTask(Task);
  ExtractTask TOut;
  std::string Err;
  ASSERT_TRUE(decodeExtractTask(Frame, TOut, &Err)) << Err;
  EXPECT_EQ(TOut.Shard, 9u);
  EXPECT_EQ(TOut.Base, 3u);
  EXPECT_TRUE(TOut.Programs.empty());

  StringInterner Strings;
  ExtractedResult Result;
  Result.Shard = 9;
  Result.QUpdates = {{2, "extract:steps"}};
  Result.ReceiverPairs = 100;
  Result.Matches = 40;
  Result.PeakCandidates = 12;

  Frame = encodeExtractedResult(Result, Strings);
  StringInterner Fresh;
  ExtractedResult ROut;
  ASSERT_TRUE(decodeExtractedResult(Frame, ROut, Fresh, &Err)) << Err;
  EXPECT_EQ(ROut.Shard, 9u);
  ASSERT_EQ(ROut.QUpdates.size(), 1u);
  EXPECT_EQ(ROut.QUpdates[0].first, 2u);
  EXPECT_EQ(ROut.QUpdates[0].second, "extract:steps");
  EXPECT_EQ(ROut.ReceiverPairs, 100u);
  EXPECT_EQ(ROut.Matches, 40u);
  EXPECT_EQ(ROut.PeakCandidates, 12u);
  EXPECT_TRUE(ROut.Ledger.Entries.empty());
}

TEST(DistribWire, ModelMessageRoundTrip) {
  EdgeModelConfig Cfg;
  Cfg.DimBits = 10;
  Cfg.Epochs = 2;
  EdgeModel Model(Cfg);
  std::string Frame = encodeModelMsg(Model);
  auto Type = peekType(Frame);
  ASSERT_TRUE(Type);
  EXPECT_EQ(*Type, MsgType::Model);
  EdgeModel Out;
  std::string Err;
  ASSERT_TRUE(decodeModelMsg(Frame, Out, &Err)) << Err;
  EXPECT_EQ(encodeModelMsg(Out), Frame);
}

//===----------------------------------------------------------------------===//
// DistribTrain: byte-identity against single-process training (CLI)
//===----------------------------------------------------------------------===//

TEST(DistribTrain, FileListByteIdenticalAt1_2_4Workers) {
  std::string Dir = scratchDir("filelist");
  RunResult Gen =
      runCli("gen --profile java -n 12 -o " + Dir + "/corpus --seed 3");
  ASSERT_EQ(Gen.ExitCode, 0) << Gen.Output;

  RunResult Single = runCli("train " + Dir + "/corpus/*.mini -o " + Dir +
                            "/single.uspb --seed 7");
  ASSERT_EQ(Single.ExitCode, 0) << Single.Output;

  for (unsigned W : {1u, 2u, 4u}) {
    std::string Out = Dir + "/dist" + std::to_string(W) + ".uspb";
    RunResult Dist = runCli("train " + Dir + "/corpus/*.mini -o " + Out +
                            " --seed 7 --distributed " + std::to_string(W));
    ASSERT_EQ(Dist.ExitCode, 0) << Dist.Output;
    EXPECT_NE(Dist.Output.find("distributed:"), std::string::npos)
        << Dist.Output;
    expectSameBytes(Dir + "/single.uspb", Out,
                    ("file-list, " + std::to_string(W) + " workers").c_str());
  }
}

TEST(DistribTrain, JournalFullAndWarmByteIdentical) {
  std::string Dir = scratchDir("journal");
  ASSERT_EQ(runCli("gen --profile java -n 10 -o " + Dir + "/c1 --seed 5")
                .ExitCode, 0);
  ASSERT_EQ(runCli("ingest " + Dir + "/c1/*.mini -j " + Dir + "/c.uspj")
                .ExitCode, 0);

  // Full journal run, single vs 2 workers.
  RunResult Single = runCli("train --journal " + Dir + "/c.uspj -o " + Dir +
                            "/single.uspb --seed 11");
  ASSERT_EQ(Single.ExitCode, 0) << Single.Output;
  RunResult Dist = runCli("train --journal " + Dir + "/c.uspj -o " + Dir +
                          "/dist.uspb --seed 11 --distributed 2");
  ASSERT_EQ(Dist.ExitCode, 0) << Dist.Output;
  expectSameBytes(Dir + "/single.uspb", Dir + "/dist.uspb", "journal full");

  // Grow the journal; both sides warm-start from their (identical) priors.
  ASSERT_EQ(runCli("gen --profile python -n 4 -o " + Dir + "/c2 --seed 6")
                .ExitCode, 0);
  ASSERT_EQ(runCli("ingest " + Dir + "/c2/*.mini -j " + Dir + "/c.uspj")
                .ExitCode, 0);
  Single = runCli("train --journal " + Dir + "/c.uspj -o " + Dir +
                  "/single.uspb --seed 11");
  ASSERT_EQ(Single.ExitCode, 0) << Single.Output;
  EXPECT_NE(Single.Output.find("warm"), std::string::npos) << Single.Output;
  Dist = runCli("train --journal " + Dir + "/c.uspj -o " + Dir +
                "/dist.uspb --seed 11 --distributed 3");
  ASSERT_EQ(Dist.ExitCode, 0) << Dist.Output;
  EXPECT_NE(Dist.Output.find("warm"), std::string::npos) << Dist.Output;
  expectSameBytes(Dir + "/single.uspb", Dir + "/dist.uspb", "journal warm");
}

TEST(DistribTrain, ProvenanceIsOptInAndPlainArtifactsUnchanged) {
  std::string Dir = scratchDir("provenance");
  ASSERT_EQ(runCli("gen --profile java -n 8 -o " + Dir + "/corpus --seed 9")
                .ExitCode, 0);
  ASSERT_EQ(runCli("train " + Dir + "/corpus/*.mini -o " + Dir +
                   "/single.uspb --seed 2").ExitCode, 0);

  // Without --provenance the distributed artifact is byte-identical.
  ASSERT_EQ(runCli("train " + Dir + "/corpus/*.mini -o " + Dir +
                   "/plain.uspb --seed 2 --distributed 2").ExitCode, 0);
  expectSameBytes(Dir + "/single.uspb", Dir + "/plain.uspb",
                  "no-provenance distributed");
  RunResult InfoPlain = runCli("info " + Dir + "/plain.uspb");
  ASSERT_EQ(InfoPlain.ExitCode, 0) << InfoPlain.Output;
  EXPECT_EQ(InfoPlain.Output.find("distributed training:"),
            std::string::npos) << InfoPlain.Output;

  // With --provenance the manifest records worker count + shard map, and
  // `uspec info` surfaces it.
  ASSERT_EQ(runCli("train " + Dir + "/corpus/*.mini -o " + Dir +
                   "/prov.uspb --seed 2 --distributed 2 --provenance")
                .ExitCode, 0);
  EXPECT_NE(readFile(Dir + "/prov.uspb"), readFile(Dir + "/single.uspb"));
  RunResult Info = runCli("info " + Dir + "/prov.uspb");
  ASSERT_EQ(Info.ExitCode, 0) << Info.Output;
  EXPECT_NE(Info.Output.find("distributed training: 2 worker(s)"),
            std::string::npos) << Info.Output;
}

//===----------------------------------------------------------------------===//
// DistribFault: injected worker death converges to identical bytes
//===----------------------------------------------------------------------===//

namespace {

/// Trains the fault-free baseline once per suite run.
std::string faultBaseline(const std::string &Dir) {
  EXPECT_EQ(runCli("gen --profile java -n 10 -o " + Dir + "/corpus --seed 4")
                .ExitCode, 0);
  RunResult R = runCli("train " + Dir + "/corpus/*.mini -o " + Dir +
                       "/single.uspb --seed 13");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  return Dir + "/single.uspb";
}

} // namespace

TEST(DistribFault, WorkerKilledMidAnalyzeConvergesByteIdentical) {
  std::string Dir = scratchDir("fault_analyze");
  std::string Baseline = faultBaseline(Dir);
  RunResult R = runShell("USPEC_FAULT=distrib.worker.analyze:0:kill " +
                         std::string(USPEC_CLI_PATH) + " train " + Dir +
                         "/corpus/*.mini -o " + Dir +
                         "/dist.uspb --seed 13 --distributed 2");
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("died"), std::string::npos) << R.Output;
  expectSameBytes(Baseline, Dir + "/dist.uspb", "kill mid-analyze");
}

TEST(DistribFault, WorkerKilledMidExtractConvergesByteIdentical) {
  std::string Dir = scratchDir("fault_extract");
  std::string Baseline = faultBaseline(Dir);
  RunResult R = runShell("USPEC_FAULT=distrib.worker.extract:0:kill " +
                         std::string(USPEC_CLI_PATH) + " train " + Dir +
                         "/corpus/*.mini -o " + Dir +
                         "/dist.uspb --seed 13 --distributed 2");
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  expectSameBytes(Baseline, Dir + "/dist.uspb", "kill mid-extract");
}

TEST(DistribFault, SpawnFailureDegradesButStaysByteIdentical) {
  std::string Dir = scratchDir("fault_spawn");
  std::string Baseline = faultBaseline(Dir);
  RunResult R = runShell("USPEC_FAULT=distrib.spawn:0:throw " +
                         std::string(USPEC_CLI_PATH) + " train " + Dir +
                         "/corpus/*.mini -o " + Dir +
                         "/dist.uspb --seed 13 --distributed 2");
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  expectSameBytes(Baseline, Dir + "/dist.uspb", "spawn fault");
}

//===----------------------------------------------------------------------===//
// DistribRouter: ring math (pure, in-process)
//===----------------------------------------------------------------------===//

namespace {

RouterConfig ringConfig(std::vector<std::string> Replicas) {
  RouterConfig Cfg;
  Cfg.Replicas = std::move(Replicas);
  return Cfg;
}

} // namespace

TEST(DistribRouter, OwnershipIsDeterministicAndCoversAllReplicas) {
  Router R(ringConfig({"/tmp/a.sock", "/tmp/b.sock", "/tmp/c.sock"}));
  Router R2(ringConfig({"/tmp/a.sock", "/tmp/b.sock", "/tmp/c.sock"}));
  std::vector<size_t> Hits(3, 0);
  for (unsigned I = 0; I < 300; ++I) {
    std::string P = miniProgram(I);
    size_t Owner = R.ownerOf(P);
    ASSERT_LT(Owner, 3u);
    EXPECT_EQ(Owner, R2.ownerOf(P)) << "ring must be a pure function of "
                                       "the replica list";
    ++Hits[Owner];
  }
  for (size_t I = 0; I < 3; ++I)
    EXPECT_GT(Hits[I], 0u) << "replica " << I << " owns no keys";
}

TEST(DistribRouter, RemovingAReplicaOnlyMovesItsOwnKeys) {
  std::vector<std::string> Three = {"/tmp/a.sock", "/tmp/b.sock",
                                    "/tmp/c.sock"};
  Router R3(ringConfig(Three));
  Router R2(ringConfig({"/tmp/a.sock", "/tmp/b.sock"}));
  size_t Moved = 0, Kept = 0;
  for (unsigned I = 0; I < 300; ++I) {
    std::string P = miniProgram(I);
    size_t Owner3 = R3.ownerOf(P);
    if (Owner3 == 2) {
      ++Moved; // keys of the removed replica must redistribute
      continue;
    }
    // Consistent hashing: every other key keeps its owner (replica indices
    // 0/1 name the same addresses in both rings).
    EXPECT_EQ(R2.ownerOf(P), Owner3) << "key " << I << " moved although its "
                                        "owner stayed in the ring";
    ++Kept;
  }
  EXPECT_GT(Moved, 0u);
  EXPECT_GT(Kept, 0u);
}

TEST(DistribRouter, DownReplicaFailoverIsDeterministic) {
  std::vector<std::string> Addrs = {"/tmp/a.sock", "/tmp/b.sock",
                                    "/tmp/c.sock"};
  Router A(ringConfig(Addrs));
  Router B(ringConfig(Addrs));
  A.markDown(2);
  B.markDown(2);
  for (unsigned I = 0; I < 200; ++I) {
    std::string P = miniProgram(I);
    size_t Live = A.liveOwnerOf(P);
    ASSERT_LT(Live, 3u);
    EXPECT_NE(Live, 2u);
    EXPECT_EQ(Live, B.liveOwnerOf(P)) << "failover must be deterministic";
    if (A.ownerOf(P) != 2)
      EXPECT_EQ(Live, A.ownerOf(P)) << "healthy owners must not move";
  }
  A.markUp(2);
  for (unsigned I = 0; I < 200; ++I) {
    std::string P = miniProgram(I);
    EXPECT_EQ(A.liveOwnerOf(P), A.ownerOf(P));
  }
  // All down: no live owner.
  A.markDown(0);
  A.markDown(1);
  A.markDown(2);
  EXPECT_EQ(A.liveOwnerOf("x"), 3u);
}

TEST(DistribRouter, BadRequestAndAllReplicasDownErrors) {
  // Replicas that do not exist: the first forward attempt marks each down.
  Router R(ringConfig({"/tmp/uspec_nope_a.sock", "/tmp/uspec_nope_b.sock"}));

  std::string Resp = R.handleLine("this is not json");
  EXPECT_NE(Resp.find("\"kind\":\"bad_request\""), std::string::npos)
      << Resp;

  // Each failed forward marks one replica down (structured replica_down,
  // the transient kind `uspec query --retries` retries).
  std::string Prog = miniProgram(1);
  Resp = R.handleLine(analyzeRequest("q1", Prog));
  EXPECT_NE(Resp.find("\"kind\":\"replica_down\""), std::string::npos)
      << Resp;
  EXPECT_NE(Resp.find("marked down"), std::string::npos) << Resp;
  Resp = R.handleLine(analyzeRequest("q2", Prog));
  EXPECT_NE(Resp.find("\"kind\":\"replica_down\""), std::string::npos)
      << Resp;
  // Both replicas are now down: the router answers without a socket.
  Resp = R.handleLine(analyzeRequest("q3", Prog));
  EXPECT_NE(Resp.find("all 2 replicas down"), std::string::npos) << Resp;
  EXPECT_TRUE(R.isDown(0));
  EXPECT_TRUE(R.isDown(1));
  EXPECT_NE(R.statsJson().find("\"replica_down_errors\":3"),
            std::string::npos) << R.statsJson();
}

//===----------------------------------------------------------------------===//
// DistribRouter: live replicas (in-process service::Server on Unix sockets)
//===----------------------------------------------------------------------===//

namespace {

/// One in-process serve replica on a Unix socket, driven from a background
/// thread exactly like `uspec serve --socket`.
struct TestReplica {
  service::ServerConfig Cfg;
  std::unique_ptr<service::Server> S;
  volatile int Stop = 0;
  volatile int Reload = 0;
  std::thread T;
  std::string Path;

  bool start(const std::string &SockPath, const std::string &ModelPath) {
    Path = SockPath;
    Cfg.Workers = 2;
    Cfg.AcceptPollMs = 20;
    Cfg.ModelPath = ModelPath;
    std::string Err;
    auto M = service::loadModelState(ModelPath, &Err);
    if (!M) {
      ADD_FAILURE() << "loadModelState(" << ModelPath << "): " << Err;
      return false;
    }
    S = std::make_unique<service::Server>(Cfg, std::move(*M));
    T = std::thread([this] { S->serveUnixSocket(Path, &Stop, &Reload); });
    // Wait for the socket to be bound.
    for (int I = 0; I < 200 && access(Path.c_str(), F_OK) != 0; ++I)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return access(Path.c_str(), F_OK) == 0;
  }

  ~TestReplica() {
    // beginDrain() is mutex-synchronized with the accept loop's draining()
    // check; writing the volatile Stop flag from this thread would be a
    // data race (the flag exists for signal handlers, not cross-thread
    // shutdown).
    if (S)
      S->beginDrain();
    if (T.joinable())
      T.join();
  }
};

} // namespace

TEST(DistribRouter, ForwardsVerbatimAndAggregatesFanOut) {
  std::string Dir = scratchDir("router_live");
  std::string SpecPath = Dir + "/specs.txt";
  writeFile(SpecPath, "RetSame(Map.get/1)\n");

  TestReplica RA, RB;
  ASSERT_TRUE(RA.start(Dir + "/ra.sock", SpecPath));
  ASSERT_TRUE(RB.start(Dir + "/rb.sock", SpecPath));

  Router R(ringConfig({RA.Path, RB.Path}));
  std::string Prog = miniProgram(0);
  std::string Line = analyzeRequest("fwd1", Prog);

  // The routed response is the replica's response, byte for byte.
  std::string Routed = R.handleLine(Line);
  size_t Owner = R.ownerOf(Prog);
  std::string Direct, Err;
  ASSERT_TRUE(clientRoundTrip(Owner == 0 ? RA.Path : RB.Path, Line, Direct,
                              &Err)) << Err;
  EXPECT_EQ(Routed, Direct);
  EXPECT_NE(Routed.find("\"ok\":true"), std::string::npos) << Routed;

  // stats fans out to every replica and nests their payloads.
  std::string Stats = R.handleLine("{\"id\":\"s1\",\"verb\":\"stats\"}");
  EXPECT_NE(Stats.find("\"router\""), std::string::npos) << Stats;
  EXPECT_NE(Stats.find(RA.Path), std::string::npos) << Stats;
  EXPECT_NE(Stats.find(RB.Path), std::string::npos) << Stats;
  EXPECT_NE(Stats.find("\"ok\":true"), std::string::npos) << Stats;

  // metrics aggregates router counters with each replica's exposition.
  std::string Metrics = R.handleLine("{\"id\":\"m1\",\"verb\":\"metrics\"}");
  EXPECT_NE(Metrics.find("uspec_router_requests_total"), std::string::npos)
      << Metrics;
  EXPECT_NE(Metrics.find("uspec_requests_admitted_total"), std::string::npos)
      << Metrics;
}

TEST(DistribRouter, BroadcastReloadSwapsEveryReplicaNoCacheBleed) {
  std::string Dir = scratchDir("router_reload");
  std::string SpecPath = Dir + "/specs.txt";
  writeFile(SpecPath, "RetSame(Map.get/1)\n");

  TestReplica RA, RB;
  ASSERT_TRUE(RA.start(Dir + "/ra.sock", SpecPath));
  ASSERT_TRUE(RB.start(Dir + "/rb.sock", SpecPath));
  Router R(ringConfig({RA.Path, RB.Path}));

  // Find one program owned by each replica so the assertions below prove
  // the broadcast reached the whole fleet.
  std::string ProgA, ProgB;
  for (unsigned I = 0; I < 1000 && (ProgA.empty() || ProgB.empty()); ++I) {
    std::string P = miniProgram(I);
    (R.ownerOf(P) == 0 ? ProgA : ProgB) = P;
  }
  ASSERT_FALSE(ProgA.empty());
  ASSERT_FALSE(ProgB.empty());

  // Both replicas answer (and cache) under the 1-spec model.
  std::string RespA = R.handleLine(analyzeRequest("a1", ProgA));
  std::string RespB = R.handleLine(analyzeRequest("b1", ProgB));
  EXPECT_NE(RespA.find("\"specs\":1"), std::string::npos) << RespA;
  EXPECT_NE(RespB.find("\"specs\":1"), std::string::npos) << RespB;

  // Swap the model file and broadcast a reload through the router.
  writeFile(SpecPath, "RetSame(Map.get/1)\nRetSame(List.get/1)\n");
  std::string Reload = R.handleLine("{\"id\":\"r1\",\"verb\":\"reload\"}");
  EXPECT_NE(Reload.find("\"reloaded\":2"), std::string::npos) << Reload;

  // The same programs now answer under the 2-spec model on BOTH replicas:
  // the old generation's cache entries (keyed by the old checksum) cannot
  // bleed into the new generation.
  RespA = R.handleLine(analyzeRequest("a2", ProgA));
  RespB = R.handleLine(analyzeRequest("b2", ProgB));
  EXPECT_NE(RespA.find("\"specs\":2"), std::string::npos) << RespA;
  EXPECT_NE(RespB.find("\"specs\":2"), std::string::npos) << RespB;
}

TEST(DistribRouter, DeadReplicaFailsOverAndRecovers) {
  std::string Dir = scratchDir("router_failover");
  std::string SpecPath = Dir + "/specs.txt";
  writeFile(SpecPath, "RetSame(Map.get/1)\n");

  TestReplica RA;
  ASSERT_TRUE(RA.start(Dir + "/ra.sock", SpecPath));
  // Replica B never starts: its socket path is dead.
  Router R(ringConfig({RA.Path, Dir + "/rb.sock"}));

  // A program owned by the dead replica: first attempt returns the
  // structured transient error and marks it down; the retry (exactly what
  // `uspec query --retries` does) deterministically lands on the live one.
  std::string Prog;
  for (unsigned I = 0; I < 1000; ++I)
    if (R.ownerOf(miniProgram(I)) == 1) {
      Prog = miniProgram(I);
      break;
    }
  ASSERT_FALSE(Prog.empty());

  std::string First = R.handleLine(analyzeRequest("f1", Prog));
  EXPECT_NE(First.find("\"kind\":\"replica_down\""), std::string::npos)
      << First;
  std::string Retry = R.handleLine(analyzeRequest("f2", Prog));
  EXPECT_NE(Retry.find("\"ok\":true"), std::string::npos) << Retry;
  EXPECT_EQ(R.liveOwnerOf(Prog), 0u);

  // A stats fan-out re-probes the dead replica (still down) and reports it.
  std::string Stats = R.handleLine("{\"id\":\"s\",\"verb\":\"stats\"}");
  EXPECT_NE(Stats.find("\"down\":[1]"), std::string::npos) << Stats;
  EXPECT_NE(Stats.find("\"ok\":false"), std::string::npos) << Stats;
}

//===----------------------------------------------------------------------===//
// DistribSelfHeal: supervisor, ring rejoin, hedging, warm-cache handoff
//===----------------------------------------------------------------------===//

namespace {

/// Directly queries a replica for its resident cache keys (the `cachekeys`
/// verb) and returns the raw payload.
std::string cacheKeysOf(const std::string &SockPath) {
  std::string Response, Err;
  if (!clientRoundTrip(SockPath, "{\"verb\":\"cachekeys\"}", Response, &Err)) {
    ADD_FAILURE() << "cachekeys round trip failed: " << Err;
    return "";
  }
  return Response;
}

} // namespace

// The pure-function claim behind the rejoin discipline: removing a replica
// from the ring and re-adding it restores the EXACT original key→replica
// assignment — no key that stayed moves, every key that moved comes back.
TEST(DistribSelfHeal, RingRemoveThenReaddRestoresExactAssignment) {
  std::vector<std::string> Addrs = {"/tmp/a.sock", "/tmp/b.sock",
                                    "/tmp/c.sock", "/tmp/d.sock"};
  Router R(ringConfig(Addrs));
  const unsigned Keys = 400;
  std::vector<size_t> Original(Keys);
  for (unsigned I = 0; I < Keys; ++I) {
    Original[I] = R.liveOwnerOf(miniProgram(I));
    ASSERT_LT(Original[I], Addrs.size());
  }
  for (size_t Dead = 0; Dead < Addrs.size(); ++Dead) {
    R.markDown(Dead);
    size_t Moved = 0;
    for (unsigned I = 0; I < Keys; ++I) {
      size_t Now = R.liveOwnerOf(miniProgram(I));
      ASSERT_NE(Now, Dead) << "down replica still owns keys";
      if (Original[I] == Dead)
        ++Moved; // its keys must land elsewhere...
      else
        EXPECT_EQ(Now, Original[I]) << "removal moved a foreign key";
    }
    EXPECT_GT(Moved, 0u) << "replica " << Dead << " owned nothing";
    R.markUp(Dead); // ...and come back exactly where they were.
    for (unsigned I = 0; I < Keys; ++I)
      ASSERT_EQ(R.liveOwnerOf(miniProgram(I)), Original[I])
          << "re-add did not restore the original assignment (key " << I
          << ", replica " << Dead << ")";
  }
}

// Satellite: a replica marked down must be reported `"down":true` in the
// stats aggregate (not silently listed as healthy), and the metrics
// exposition must carry the `uspec_router_replicas_up` gauge.
TEST(DistribSelfHeal, FanOutReportsPerReplicaDownAndUpGauge) {
  std::string Dir = scratchDir("selfheal_downflag");
  std::string SpecPath = Dir + "/specs.txt";
  writeFile(SpecPath, "RetSame(Map.get/1)\n");

  TestReplica RA;
  ASSERT_TRUE(RA.start(Dir + "/ra.sock", SpecPath));
  // Replica B is a dead socket path.
  Router R(ringConfig({RA.Path, Dir + "/rb.sock"}));

  std::string Stats = R.handleLine("{\"id\":\"s\",\"verb\":\"stats\"}");
  // Entry order follows the replica list: RA first (up), RB second (down).
  EXPECT_NE(Stats.find("\"down\":false,\"ok\":true"), std::string::npos)
      << Stats;
  EXPECT_NE(Stats.find("\"down\":true,\"ok\":false"), std::string::npos)
      << Stats;

  std::string Metrics = R.handleLine("{\"id\":\"m\",\"verb\":\"metrics\"}");
  EXPECT_NE(Metrics.find("uspec_router_replicas_up 1"), std::string::npos)
      << Metrics;
  EXPECT_NE(Metrics.find("uspec_router_replicas_down 1"), std::string::npos)
      << Metrics;
}

// The hedging dedup rule end to end: a request with `"no_cache":true` is
// answered byte-identically but never inserts into the replica's cache.
TEST(DistribSelfHeal, NoCacheRequestAnswersWithoutInserting) {
  std::string Dir = scratchDir("selfheal_nocache");
  std::string SpecPath = Dir + "/specs.txt";
  writeFile(SpecPath, "RetSame(Map.get/1)\n");

  TestReplica RA;
  ASSERT_TRUE(RA.start(Dir + "/ra.sock", SpecPath));

  EXPECT_NE(cacheKeysOf(RA.Path).find("\"count\":0"), std::string::npos);

  std::string Prog = miniProgram(7);
  std::string Plain = analyzeRequest("n1", Prog);
  std::string Hedge = Plain;
  Hedge.insert(Hedge.size() - 1, ",\"no_cache\":true");

  std::string HedgeResp, PlainResp, Err;
  ASSERT_TRUE(clientRoundTrip(RA.Path, Hedge, HedgeResp, &Err)) << Err;
  EXPECT_NE(HedgeResp.find("\"ok\":true"), std::string::npos) << HedgeResp;
  // Computed, answered — and the cache is still empty.
  EXPECT_NE(cacheKeysOf(RA.Path).find("\"count\":0"), std::string::npos);

  ASSERT_TRUE(clientRoundTrip(RA.Path, Plain, PlainResp, &Err)) << Err;
  // Identical id → identical bytes: no_cache changes caching, not answers.
  EXPECT_NE(Plain.find("n1"), std::string::npos);
  std::string HedgeBody = HedgeResp, PlainBody = PlainResp;
  EXPECT_EQ(HedgeBody, PlainBody);
  EXPECT_NE(cacheKeysOf(RA.Path).find("\"count\":1"), std::string::npos);
}

// Warm-cache handoff: after a replica dies and comes back cold, the router
// replays its hot request lines before marking it up, so the rejoined
// replica holds the exact fingerprint keys it served before the incident.
TEST(DistribSelfHeal, RejoinReplaysWarmKeysBeforeTakingTraffic) {
  std::string Dir = scratchDir("selfheal_warm");
  std::string SpecPath = Dir + "/specs.txt";
  writeFile(SpecPath, "RetSame(Map.get/1)\n");

  auto RA = std::make_unique<TestReplica>();
  ASSERT_TRUE(RA->start(Dir + "/ra.sock", SpecPath));
  TestReplica RB;
  ASSERT_TRUE(RB.start(Dir + "/rb.sock", SpecPath));

  RouterConfig Cfg = ringConfig({Dir + "/ra.sock", RB.Path});
  Cfg.WarmKeys = 8;
  Router R(Cfg);

  // Serve a few programs owned by replica 0 through the router: each
  // successful forward records the line in replica 0's warm set.
  unsigned ServedByA = 0;
  for (unsigned I = 0; I < 200 && ServedByA < 3; ++I) {
    std::string P = miniProgram(I);
    if (R.ownerOf(P) != 0)
      continue;
    std::string Resp =
        R.handleLine(analyzeRequest("w" + std::to_string(I), P));
    ASSERT_NE(Resp.find("\"ok\":true"), std::string::npos) << Resp;
    ++ServedByA;
  }
  ASSERT_EQ(ServedByA, 3u);
  // The salted programs are structurally identical, so the replica's
  // fingerprint-keyed cache holds ONE entry for all three (the warm set
  // still remembers all three request lines — replay count proves it).
  std::string HotKeys = cacheKeysOf(Dir + "/ra.sock");
  EXPECT_NE(HotKeys.find("\"count\":1"), std::string::npos) << HotKeys;

  // Replica 0 dies; a forward notices and marks it down.
  RA.reset();
  std::string P0;
  for (unsigned I = 0; I < 200; ++I)
    if (R.ownerOf(miniProgram(I)) == 0) {
      P0 = miniProgram(I);
      break;
    }
  (void)R.handleLine(analyzeRequest("dead", P0));
  ASSERT_TRUE(R.isDown(0));

  // It comes back with a cold cache...
  RA = std::make_unique<TestReplica>();
  ASSERT_TRUE(RA->start(Dir + "/ra.sock", SpecPath));
  EXPECT_NE(cacheKeysOf(Dir + "/ra.sock").find("\"count\":0"),
            std::string::npos);

  // ...and recoverReplica probes, replays the warm set, then marks up.
  ASSERT_TRUE(R.recoverReplica(0));
  EXPECT_FALSE(R.isDown(0));
  EXPECT_GE(R.rejoinsCount(), 1u);
  EXPECT_GE(R.warmReplaysCount(), 3u);
  // The rejoined replica holds the exact keys it served before the death.
  std::string Warmed = cacheKeysOf(Dir + "/ra.sock");
  EXPECT_EQ(Warmed, HotKeys);
}

// Hedging: when the primary owner is wedged, the hedge fires at the next
// ring owner after the delay and the answer is byte-identical to a direct
// query — the determinism contract makes the two replicas interchangeable.
TEST(DistribSelfHeal, HedgeWinsByteIdenticalWhenPrimaryIsWedged) {
  std::string Dir = scratchDir("selfheal_hedge");
  std::string SpecPath = Dir + "/specs.txt";
  writeFile(SpecPath, "RetSame(Map.get/1)\n");

  TestReplica RA, RB;
  RA.Cfg.EnableTestVerbs = true;
  RB.Cfg.EnableTestVerbs = true;
  ASSERT_TRUE(RA.start(Dir + "/ra.sock", SpecPath));
  ASSERT_TRUE(RB.start(Dir + "/rb.sock", SpecPath));

  RouterConfig Cfg = ringConfig({RA.Path, RB.Path});
  Cfg.HedgeMs = 25;
  Router R(Cfg);

  std::string Prog;
  for (unsigned I = 0; I < 200; ++I)
    if (R.ownerOf(miniProgram(I)) == 0) {
      Prog = miniProgram(I);
      break;
    }
  ASSERT_FALSE(Prog.empty());
  std::string Line = analyzeRequest("h1", Prog);
  std::string Direct, Err;
  ASSERT_TRUE(clientRoundTrip(RB.Path, Line + "", Direct, &Err)) << Err;
  // RB computed it with no_cache absent — clear its cache effect is fine;
  // byte-identity holds regardless of hit/miss.

  // Park BOTH of the primary's workers so the routed request cannot be
  // answered there within the hedge delay.
  service::Server *PrimaryServer =
      R.ownerOf(Prog) == 0 ? RA.S.get() : RB.S.get();
  TestReplica &Primary = R.ownerOf(Prog) == 0 ? RA : RB;
  std::thread Block1([&] {
    std::string Resp, E;
    clientRoundTrip(Primary.Path, "{\"verb\":\"test_block\"}", Resp, &E);
  });
  std::thread Block2([&] {
    std::string Resp, E;
    clientRoundTrip(Primary.Path, "{\"verb\":\"test_block\"}", Resp, &E);
  });
  // Give the blockers time to occupy both workers.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::string Routed = R.handleLine(Line);
  EXPECT_EQ(Routed, Direct) << "hedged answer must be byte-identical";
  EXPECT_GE(R.hedgedCount(), 1u);
  EXPECT_GE(R.hedgedWinsCount(), 1u);

  PrimaryServer->releaseTestGate();
  Block1.join();
  Block2.join();
}

// Fault sites: `router.probe` makes a healthy replica look dead for one
// tick (throw handled as probe failure, not thread death); `router.respawn`
// suppresses one spawn attempt while the backoff schedule advances.
TEST(DistribSelfHeal, ProbeAndRespawnFaultSitesAreDeterministic) {
  std::string Dir = scratchDir("selfheal_fault");
  std::string SpecPath = Dir + "/specs.txt";
  writeFile(SpecPath, "RetSame(Map.get/1)\n");

  TestReplica RA;
  ASSERT_TRUE(RA.start(Dir + "/ra.sock", SpecPath));
  Router R(ringConfig({RA.Path}));

  // First probe hits the armed throw → treated as a failed probe.
  armFault("router.probe", 1, FaultAction::Throw);
  R.superviseTick();
  EXPECT_TRUE(R.isDown(0));
  // Fault exhausted: the next tick probes for real and rejoins.
  R.superviseTick();
  EXPECT_FALSE(R.isDown(0));
  EXPECT_GE(R.rejoinsCount(), 1u);
  disarmFaults();

  // A dead replica with a respawn command: the armed soft fault eats the
  // first spawn attempt (attempt counted, nothing spawned).
  RouterConfig Cfg2 = ringConfig({Dir + "/never.sock"});
  Cfg2.RespawnCmd = "true"; // a no-op command; must not even run
  Router R2(Cfg2);
  armFault("router.respawn", 1, FaultAction::Soft);
  R2.superviseTick();
  EXPECT_EQ(R2.respawnsCount(), 1u);
  EXPECT_TRUE(R2.isDown(0));
  disarmFaults();
}

// End to end: kill -9 a real `uspec serve` replica; a supervising router
// detects the death, respawns it via the {socket} command template, rejoins
// it after a successful probe, and answers byte-identically throughout.
TEST(DistribSelfHeal, SupervisorRespawnsKilledReplicaEndToEnd) {
  std::string Dir = scratchDir("selfheal_respawn");
  std::string SpecPath = Dir + "/specs.txt";
  writeFile(SpecPath, "RetSame(Map.get/1)\n");
  std::string Sock = Dir + "/replica.sock";
  std::string PidFile = Dir + "/replica.pid";

  std::string ServeCmd = std::string(USPEC_CLI_PATH) + " serve --socket " +
                         Sock + " --specs " + SpecPath;
  RunResult Launch = runShell(ServeCmd + " >/dev/null 2>&1 & echo $! > " +
                              PidFile);
  ASSERT_EQ(Launch.ExitCode, 0);
  for (int I = 0; I < 200 && access(Sock.c_str(), F_OK) != 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_EQ(access(Sock.c_str(), F_OK), 0) << "replica never bound";

  RouterConfig Cfg = ringConfig({Sock});
  Cfg.RespawnCmd = ServeCmd; // {socket}-free: the path is fixed here
  Cfg.RespawnSeed = 42;
  Router R(Cfg);

  std::string Prog = miniProgram(3);
  std::string Line = analyzeRequest("e2e", Prog);
  std::string Before = R.handleLine(Line);
  ASSERT_NE(Before.find("\"ok\":true"), std::string::npos) << Before;

  // kill -9 the replica process.
  std::string Pid = readFile(PidFile);
  ASSERT_FALSE(Pid.empty());
  RunResult Kill = runShell("kill -9 " + Pid);
  ASSERT_EQ(Kill.ExitCode, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // The supervisor notices, respawns, and rejoins once the probe succeeds.
  bool Recovered = false;
  for (int TickNo = 0; TickNo < 100 && !Recovered; ++TickNo) {
    R.superviseTick();
    Recovered = !R.isDown(0);
    if (!Recovered)
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ASSERT_TRUE(Recovered) << "supervisor never recovered the replica";
  EXPECT_GE(R.respawnsCount(), 1u);
  EXPECT_GE(R.rejoinsCount(), 1u);

  // Byte-identical service after the incident.
  std::string After = R.handleLine(Line);
  EXPECT_EQ(After, Before);

  // Drain the respawned replica (it is orphaned to init, not our child).
  std::string Resp, Err;
  clientRoundTrip(Sock, "{\"verb\":\"shutdown\"}", Resp, &Err);
}
