//===- atlas_test.cpp - Tests for the Atlas-style baseline (§7.5) -------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "atlas/Atlas.h"
#include "corpus/Profiles.h"

#include <gtest/gtest.h>

using namespace uspec;

namespace {

const AtlasClassResult &resultFor(const std::vector<AtlasClassResult> &All,
                                  const std::string &Class) {
  for (const AtlasClassResult &R : All)
    if (R.Class == Class)
      return R;
  static AtlasClassResult Empty;
  ADD_FAILURE() << "no Atlas result for " << Class;
  return Empty;
}

} // namespace

struct AtlasTest : ::testing::Test {
  LanguageProfile P = javaProfile();
  std::vector<AtlasClassResult> Results =
      runAtlasBaseline(P.Registry, AtlasConfig());
};

TEST_F(AtlasTest, LearnsFlowSpecsForStandardCollections) {
  // §7.5: Atlas infers sound (but arg-insensitive) points-to specs for
  // Hashtable, ArrayList and HashMap.
  for (const char *Class : {"HashMap", "Hashtable", "ArrayList"}) {
    const AtlasClassResult &R = resultFor(Results, Class);
    EXPECT_TRUE(R.ConstructorAvailable);
    EXPECT_TRUE(R.hasSpecs()) << Class;
    AtlasSoundness V = judgeAtlasClass(*P.Registry.findClass(Class), R);
    EXPECT_TRUE(V.AllLoadsCovered) << Class;
    EXPECT_FALSE(V.UnsoundFresh) << Class;
  }
}

TEST_F(AtlasTest, FailsOnFactoryOnlyClasses) {
  // §7.5: "for classes like NodeList, ResultSet or KeyStore, Atlas failed to
  // generate any non-empty specifications, because it could not figure how
  // to call a constructor".
  for (const char *Class : {"ResultSet", "KeyStore", "NodeList"}) {
    const AtlasClassResult &R = resultFor(Results, Class);
    EXPECT_FALSE(R.ConstructorAvailable) << Class;
    EXPECT_FALSE(R.hasSpecs()) << Class;
  }
}

TEST_F(AtlasTest, UnsoundOnStringKeyedProperties) {
  // §7.5: Atlas unsoundly concludes that getProperty/setProperty return
  // fresh objects.
  const AtlasClassResult &R = resultFor(Results, "Properties");
  EXPECT_TRUE(R.ConstructorAvailable);
  AtlasSoundness V =
      judgeAtlasClass(*P.Registry.findClass("Properties"), R);
  EXPECT_TRUE(V.UnsoundFresh);
  EXPECT_EQ(V.LoadsCovered, 0u);
}

TEST_F(AtlasTest, PartialResultsOnJsonObject) {
  // §7.5: for org.json.JSONObject Atlas learns some methods but incorrectly
  // concludes `get` returns fresh objects (string-keyed store/load).
  const AtlasClassResult &R = resultFor(Results, "JSONObject");
  AtlasSoundness V =
      judgeAtlasClass(*P.Registry.findClass("JSONObject"), R);
  EXPECT_TRUE(V.UnsoundFresh);
}

TEST_F(AtlasTest, SpecsAreArgumentInsensitive) {
  // Atlas flow specs never mention argument positions or keys — merely that
  // a load may return values stored by a put. This is the structural
  // difference to USpec's RetArg/RetSame (§7.5).
  const AtlasClassResult &R = resultFor(Results, "HashMap");
  auto It = R.Methods.find("get");
  ASSERT_NE(It, R.Methods.end());
  EXPECT_TRUE(It->second.MayReturnArgsOf.count("put"));
}

TEST_F(AtlasTest, DeterministicUnderSeed) {
  auto Again = runAtlasBaseline(P.Registry, AtlasConfig());
  ASSERT_EQ(Again.size(), Results.size());
  for (size_t I = 0; I < Again.size(); ++I) {
    EXPECT_EQ(Again[I].Class, Results[I].Class);
    EXPECT_EQ(Again[I].Methods.size(), Results[I].Methods.size());
  }
}

TEST(AtlasPython, IntKeyedContainersWork) {
  // Int-keyed subscripting is discoverable by Atlas (int constants are in
  // its pool) — e.g. builtins List.
  LanguageProfile P = pythonProfile();
  auto Results = runAtlasBaseline(P.Registry, AtlasConfig());
  const AtlasClassResult &R = resultFor(Results, "List");
  AtlasSoundness V = judgeAtlasClass(*P.Registry.findClass("List"), R);
  EXPECT_TRUE(V.AllLoadsCovered);
}
