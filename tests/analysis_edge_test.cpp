//===- analysis_edge_test.cpp - Edge cases of the points-to analysis ----------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Corner cases of the flow walker, the ghost-field machinery, and spec
// shapes beyond the standard two-argument containers: zero-key stores
// (ThreadLocal), three-argument stores (ConfigParser), unknown receivers,
// recursion, deep nesting, and defensive behavior on degenerate programs.
//
//===----------------------------------------------------------------------===//

#include "ir/Lowering.h"
#include "pointsto/Analysis.h"

#include <gtest/gtest.h>

using namespace uspec;

namespace {

struct Ctx {
  StringInterner S;
  IRProgram Program;
  SpecSet Specs;

  AnalysisResult run(std::string_view Source, bool Aware = false,
                     bool Coverage = false,
                     AnalysisOptions Base = AnalysisOptions()) {
    DiagnosticSink Diags;
    auto P = parseAndLower(Source, "edge", S, Diags);
    EXPECT_TRUE(P.has_value()) << Diags.render();
    Program = std::move(*P);
    if (Aware) {
      Base.ApiAware = true;
      Base.Specs = &Specs;
      Base.CoverageExtension = Coverage;
    }
    return analyzeProgram(Program, S, Base);
  }

  MethodId mid(const char *Class, const char *Name, uint8_t Arity) {
    return {*Class ? S.intern(Class) : Symbol(), S.intern(Name), Arity};
  }

  EventId retEvent(const AnalysisResult &R, const char *Name, int Occ = 0) {
    int Found = 0;
    for (EventId E = 0; E < R.Events.size(); ++E) {
      const Event &Ev = R.Events.get(E);
      if (Ev.Kind == EventKind::ApiCall && Ev.Pos == PosRet &&
          S.str(Ev.Method.Name) == Name && Found++ == Occ)
        return E;
    }
    return InvalidEvent;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Non-standard spec shapes
//===----------------------------------------------------------------------===//

TEST(AnalysisEdge, ThreadLocalZeroKeyStore) {
  // set(1)/get(0): the RetArg "other arguments" set is empty — the ghost
  // field name is the empty tuple.
  Ctx C;
  C.Specs.insert(Spec::retArg(C.mid("ThreadLocal", "get", 0),
                              C.mid("ThreadLocal", "set", 1), 1));
  C.Specs.insert(Spec::retSame(C.mid("ThreadLocal", "get", 0)));
  AnalysisResult R = C.run(R"(
    class Main {
      def main() {
        var tl = new ThreadLocal();
        tl.set(api.mk());
        var v = tl.get();
      }
    }
  )",
                           /*Aware=*/true);
  EXPECT_TRUE(R.retMayAlias(C.retEvent(R, "get"), C.retEvent(R, "mk")));
}

TEST(AnalysisEdge, ThreeArgumentConfigParserStore) {
  // set(section, option, value) with StorePos 3; get(section, option).
  Ctx C;
  C.Specs.insert(Spec::retArg(C.mid("Cfg", "get", 2), C.mid("Cfg", "set", 3),
                              3));
  C.Specs.insert(Spec::retSame(C.mid("Cfg", "get", 2)));
  AnalysisResult R = C.run(R"(
    class Main {
      def main() {
        var cfg = new Cfg();
        cfg.set("db", "host", api.mk());
        var hit = cfg.get("db", "host");
        var missSection = cfg.get("web", "host");
        var missOption = cfg.get("db", "port");
      }
    }
  )",
                           /*Aware=*/true);
  EventId Mk = C.retEvent(R, "mk");
  EXPECT_TRUE(R.retMayAlias(C.retEvent(R, "get", 0), Mk));
  EXPECT_FALSE(R.retMayAlias(C.retEvent(R, "get", 1), Mk));
  EXPECT_FALSE(R.retMayAlias(C.retEvent(R, "get", 2), Mk));
}

TEST(AnalysisEdge, MiddleArgumentStorePosition) {
  // RetArg with x = 1 of a 2-arg store: store(value, key), load(key).
  Ctx C;
  C.Specs.insert(
      Spec::retArg(C.mid("Reg", "load", 1), C.mid("Reg", "store", 2), 1));
  C.Specs.insert(Spec::retSame(C.mid("Reg", "load", 1)));
  AnalysisResult R = C.run(R"(
    class Main {
      def main() {
        var r = new Reg();
        r.store(api.mk(), "slot");
        var v = r.load("slot");
      }
    }
  )",
                           /*Aware=*/true);
  EXPECT_TRUE(R.retMayAlias(C.retEvent(R, "load"), C.retEvent(R, "mk")));
}

TEST(AnalysisEdge, SpecWithUnknownClassAppliesToUnknownReceivers) {
  // A "?"-class spec matches calls whose receiver class cannot be resolved
  // (externals, API returns) but not resolved-class receivers.
  Ctx C;
  C.Specs.insert(Spec::retSame(C.mid("", "getString", 1)));
  AnalysisResult R = C.run(R"(
    class Main {
      def main() {
        var rs = stmt.executeQuery("q");
        var a = rs.getString("col");
        var b = rs.getString("col");
        var typed = new Bundle();
        var c = typed.getString("col");
        var d = typed.getString("col");
      }
    }
  )",
                           /*Aware=*/true);
  EXPECT_TRUE(R.retMayAlias(C.retEvent(R, "getString", 0),
                            C.retEvent(R, "getString", 1)))
      << "?-class spec applies to the unknown receiver";
  EXPECT_FALSE(R.retMayAlias(C.retEvent(R, "getString", 2),
                             C.retEvent(R, "getString", 3)))
      << "?-class spec must not fire for receivers with a resolved class";
}

//===----------------------------------------------------------------------===//
// Defensive behavior
//===----------------------------------------------------------------------===//

TEST(AnalysisEdge, RecursionIsBounded) {
  Ctx C;
  AnalysisResult R = C.run(R"(
    class Loop {
      def spin(x) { return spin(x); }
    }
    class Main {
      def main() {
        var l = new Loop();
        var v = l.spin(api.mk());
      }
    }
  )");
  // Terminates (inline depth bound) and still produces events.
  EXPECT_GT(R.Events.size(), 0u);
}

TEST(AnalysisEdge, MutualRecursionIsBounded) {
  Ctx C;
  AnalysisResult R = C.run(R"(
    class A {
      def ping(b) { return b.pong(this); }
      def pong(a) { return a.ping(this); }
    }
    class Main {
      def main() { var a = new A(); a.ping(a); }
    }
  )");
  EXPECT_GT(R.Objects.size(), 0u);
}

TEST(AnalysisEdge, EmptyProgramAndEmptyMethods) {
  Ctx C;
  AnalysisResult R1 = C.run("class Main { }");
  EXPECT_EQ(R1.Events.size(), 0u);
  // An empty method still seeds the synthetic `this` root event — but no
  // API events.
  AnalysisResult R2 = C.run("class Main { def main() { } }");
  for (EventId E = 0; E < R2.Events.size(); ++E)
    EXPECT_NE(R2.Events.get(E).Kind, EventKind::ApiCall);
}

TEST(AnalysisEdge, CallOnNullLiteral) {
  Ctx C;
  AnalysisResult R = C.run(R"(
    class Main { def main() { var x = null; x.boom(); } }
  )");
  // Receiver points-to is the null literal; no crash, receiver class "?".
  EventId Boom = C.retEvent(R, "boom");
  ASSERT_NE(Boom, InvalidEvent);
  EXPECT_TRUE(R.Events.get(Boom).Method.Class.isEmpty());
}

TEST(AnalysisEdge, DeeplyNestedControlFlow) {
  std::string Source = "class Main { def main() { var x = api.mk();\n";
  for (int I = 0; I < 12; ++I)
    Source += "if (x != null) { while (x != null) {\n";
  Source += "x.use();\n";
  for (int I = 0; I < 12; ++I)
    Source += "} }\n";
  Source += "} }";
  Ctx C;
  AnalysisResult R = C.run(Source);
  // Histories stay bounded despite 24 nested joins.
  for (const HistorySet &H : R.Histories)
    EXPECT_LE(H.size(), AnalysisOptions().HistoryCap);
}

TEST(AnalysisEdge, ManyArgumentsBeyondPosBuckets) {
  Ctx C;
  AnalysisResult R = C.run(R"(
    class Main {
      def main() { api.wide(1, 2, 3, 4, 5, 6, 7, 8); }
    }
  )");
  EventId Ret = C.retEvent(R, "wide");
  ASSERT_NE(Ret, InvalidEvent);
  EXPECT_EQ(R.Events.get(Ret).Method.Arity, 8);
}

TEST(AnalysisEdge, ReceiverWithMixedClassesIsUnknown) {
  Ctx C;
  AnalysisResult R = C.run(R"(
    class Main {
      def main(c) {
        var x = new Map();
        if (c != null) { x = new Dict(); }
        x.get("k");
      }
    }
  )");
  EventId Get = C.retEvent(R, "get");
  ASSERT_NE(Get, InvalidEvent);
  EXPECT_TRUE(R.Events.get(Get).Method.Class.isEmpty())
      << "two possible classes -> unresolved method class";
}

TEST(AnalysisEdge, GhostWriteWithEmptyValueSetIsNoop) {
  // Storing the result of a field read that was never written: the stored
  // set is empty; no ghost write happens and the read misses.
  Ctx C;
  C.Specs.insert(
      Spec::retArg(C.mid("Map", "get", 1), C.mid("Map", "put", 2), 2));
  C.Specs.insert(Spec::retSame(C.mid("Map", "get", 1)));
  AnalysisResult R = C.run(R"(
    class Holder { var slot; }
    class Main {
      def main() {
        var h = new Holder();
        var m = new Map();
        m.put("k", h.slot);
        var v = m.get("k");
      }
    }
  )",
                           /*Aware=*/true);
  // get returns a ghost (read miss allocates), not a crash.
  EventId Get = C.retEvent(R, "get");
  auto It = R.RetPointsTo.find(Get);
  ASSERT_NE(It, R.RetPointsTo.end());
  ASSERT_EQ(It->second.size(), 1u);
  EXPECT_EQ(R.Objects.get(It->second[0]).Kind, ObjectKind::Ghost);
}

TEST(AnalysisEdge, BranchJoinUnionsRetPointsTo) {
  Ctx C;
  C.Specs.insert(
      Spec::retArg(C.mid("Map", "get", 1), C.mid("Map", "put", 2), 2));
  C.Specs.insert(Spec::retSame(C.mid("Map", "get", 1)));
  AnalysisResult R = C.run(R"(
    class Main {
      def main(c) {
        var m = new Map();
        if (c != null) {
          m.put("k", api.mk1());
        } else {
          m.put("k", api.mk2());
        }
        var v = m.get("k");
      }
    }
  )",
                           /*Aware=*/true);
  EventId Get = C.retEvent(R, "get");
  EXPECT_TRUE(R.retMayAlias(Get, C.retEvent(R, "mk1")));
  EXPECT_TRUE(R.retMayAlias(Get, C.retEvent(R, "mk2")));
}

TEST(AnalysisEdge, InlineDepthLimitTreatsDeepCallsConservatively) {
  Ctx C;
  AnalysisOptions Base;
  Base.InlineDepth = 1;
  AnalysisResult R = C.run(R"(
    class A { def one(v) { return two(v); } def two(v) { return v; } }
    class Main {
      def main() {
        var a = new A();
        var x = api.mk();
        var y = a.one(x);
        y.use();
      }
    }
  )",
                           /*Aware=*/false, /*Coverage=*/false, Base);
  // At depth 1 the nested call two() is not inlined: the chain breaks and
  // use() runs on an unknown object — but nothing crashes and use exists.
  EXPECT_NE(C.retEvent(R, "use"), InvalidEvent);
}

TEST(AnalysisEdge, StoreLoadThroughProgramFieldAndGhost) {
  // A container cached in a program field, used from two methods — the
  // ghost flow must survive the field round-trip.
  Ctx C;
  C.Specs.insert(
      Spec::retArg(C.mid("Map", "get", 1), C.mid("Map", "put", 2), 2));
  C.Specs.insert(Spec::retSame(C.mid("Map", "get", 1)));
  AnalysisResult R = C.run(R"(
    class Store {
      var m;
      def init2() { this.m = new Map(); }
      def write() { this.m.put("k", api.mk()); }
      def read() { var v = this.m.get("k"); v.use(); }
    }
  )",
                           /*Aware=*/true);
  EXPECT_TRUE(R.retMayAlias(C.retEvent(R, "get"), C.retEvent(R, "mk")));
}
