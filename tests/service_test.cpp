//===- service_test.cpp - Tests for the alias-query service --------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Covers the resident query service (src/service/): protocol parsing and
// robustness, the shared analyze engine, the byte-identity contract
// (service responses == `uspec analyze --json` at any worker count), the
// sharded result cache, explicit backpressure, and graceful drain. All
// suite names start with "Service" so the TSan CI job picks them up.
//
//===----------------------------------------------------------------------===//

#include "core/USpec.h"
#include "corpus/Generator.h"
#include "corpus/Profiles.h"
#include "service/Server.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <future>
#include <sstream>
#include <thread>
#include <vector>

using namespace uspec;
using namespace uspec::service;

namespace {

/// Deterministic corpus of MiniLang sources.
std::vector<std::string> makeSources(size_t N, uint64_t Seed) {
  LanguageProfile Profile = javaProfile();
  GeneratorConfig Cfg;
  Rng Rand(Seed);
  std::vector<std::string> Out;
  for (size_t I = 0; I < N; ++I)
    Out.push_back(generateProgramSource(Profile, Cfg, Rand));
  return Out;
}

/// Learns a spec set from \p Sources and canonicalizes it.
ServiceSpecs learnSpecs(const std::vector<std::string> &Sources) {
  StringInterner Strings;
  std::vector<IRProgram> Corpus;
  for (size_t I = 0; I < Sources.size(); ++I) {
    DiagnosticSink Diags;
    auto P = parseAndLower(Sources[I], "p" + std::to_string(I), Strings,
                           Diags);
    EXPECT_TRUE(P.has_value()) << Diags.render();
    if (P)
      Corpus.push_back(std::move(*P));
  }
  USpecLearner Learner(Strings, LearnerConfig());
  LearnResult Result = Learner.learn(Corpus);
  return ServiceSpecs::fromSpecSet(Result.Selected, Strings);
}

std::string analyzeRequest(int Id, const std::string &Program,
                           bool Coverage = false) {
  std::string R = "{\"id\":" + std::to_string(Id) +
                  ",\"verb\":\"analyze\",\"program\":";
  appendJsonString(R, Program);
  if (Coverage)
    R += ",\"coverage\":true";
  R += "}";
  return R;
}

/// A tiny program with a known alias: get/put on one receiver, so the
/// RetSame/RetArg specs learned from the generator corpus apply.
const char *TinyProgram =
    "class Main { def main() { var m = new Cache(); m.put(\"k\", 1); "
    "var a = m.getIfPresent(\"k\"); var b = m.getIfPresent(\"k\"); } }";

} // namespace

//===----------------------------------------------------------------------===//
// Protocol: request parsing
//===----------------------------------------------------------------------===//

TEST(ServiceProtocol, ParsesAnalyzeRequest) {
  Request R;
  std::string Err;
  ASSERT_TRUE(parseRequest("{\"id\":42,\"verb\":\"analyze\","
                           "\"program\":\"class C {}\",\"coverage\":true}",
                           R, &Err))
      << Err;
  EXPECT_EQ(R.Id, "42");
  EXPECT_EQ(R.TheVerb, Verb::Analyze);
  EXPECT_EQ(R.Program, "class C {}");
  EXPECT_TRUE(R.Coverage);
}

TEST(ServiceProtocol, ParsesAllVerbs) {
  struct Case {
    const char *Line;
    Verb Expected;
  } Cases[] = {
      {"{\"verb\":\"alias\",\"program\":\"x\",\"a\":\"get\",\"b\":\"put\"}",
       Verb::Alias},
      {"{\"verb\":\"typestate\",\"program\":\"x\",\"check\":\"hasNext\","
       "\"use\":\"next\"}",
       Verb::Typestate},
      {"{\"verb\":\"taint\",\"program\":\"x\",\"sources\":[\"s\"],"
       "\"sinks\":[\"k\"],\"sanitizers\":[]}",
       Verb::Taint},
      {"{\"verb\":\"specs\"}", Verb::Specs},
      {"{\"verb\":\"stats\"}", Verb::Stats},
      {"{\"verb\":\"shutdown\"}", Verb::Shutdown},
  };
  for (const Case &C : Cases) {
    Request R;
    std::string Err;
    EXPECT_TRUE(parseRequest(C.Line, R, &Err)) << C.Line << ": " << Err;
    EXPECT_EQ(R.TheVerb, C.Expected) << C.Line;
  }
}

TEST(ServiceProtocol, StringIdsAndEscapesSurvive) {
  Request R;
  std::string Err;
  ASSERT_TRUE(parseRequest("{\"id\":\"req-\\u0041\",\"verb\":\"analyze\","
                           "\"program\":\"a\\n\\\"b\\\"\\t\\\\\"}",
                           R, &Err))
      << Err;
  // String ids are echoed JSON-equivalently (re-encoded: A -> A).
  EXPECT_EQ(R.Id, "\"req-A\"");
  EXPECT_EQ(R.Program, "a\n\"b\"\t\\");
}

TEST(ServiceProtocol, RejectsMalformedRequests) {
  const char *Bad[] = {
      "",                                         // empty
      "   ",                                      // whitespace only
      "{",                                        // truncated object
      "null",                                     // not an object
      "[1,2]",                                    // wrong top-level kind
      "{\"verb\":42}",                            // verb not a string
      "{\"verb\":\"frobnicate\"}",                // unknown verb
      "{\"verb\":\"analyze\"}",                   // missing program
      "{\"verb\":\"analyze\",\"program\":7}",     // program not a string
      "{\"verb\":\"alias\",\"program\":\"x\",\"a\":\"g\"}", // missing b
      "{\"verb\":\"typestate\",\"program\":\"x\",\"check\":\"c\"}",
      "{\"verb\":\"taint\",\"program\":\"x\",\"sources\":\"s\"}",
      "{\"verb\":\"specs\"} trailing",            // trailing garbage
      "{\"verb\":\"specs\",}",                    // trailing comma
      "{\"program\":\"x\"}",                      // no verb at all
  };
  for (const char *Line : Bad) {
    Request R;
    std::string Err;
    EXPECT_FALSE(parseRequest(Line, R, &Err)) << "accepted: " << Line;
    EXPECT_FALSE(Err.empty()) << Line;
  }
}

TEST(ServiceProtocol, IdSurvivesSemanticErrors) {
  // Valid JSON with a bad verb still yields the id, so the error response
  // can be correlated by the client.
  Request R;
  std::string Err;
  EXPECT_FALSE(parseRequest("{\"id\":7,\"verb\":\"nope\"}", R, &Err));
  EXPECT_EQ(R.Id, "7");
}

TEST(ServiceProtocol, DepthCapStopsNestingBombs) {
  std::string Bomb(200, '[');
  JsonValue V;
  std::string Err;
  EXPECT_FALSE(parseJson(Bomb, V, &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(ServiceProtocol, TestBlockIsGated) {
  Request R;
  std::string Err;
  EXPECT_FALSE(parseRequest("{\"verb\":\"test_block\"}", R, &Err));
  EXPECT_TRUE(parseRequest("{\"verb\":\"test_block\"}", R, &Err,
                           /*EnableTestVerbs=*/true))
      << Err;
}

TEST(ServiceProtocol, ResponseEnvelopes) {
  EXPECT_EQ(okResponse("7", "{\"x\":1}"),
            "{\"id\":7,\"ok\":true,\"result\":{\"x\":1}}");
  EXPECT_EQ(okResponse("", "{\"x\":1}"),
            "{\"ok\":true,\"result\":{\"x\":1}}");
  EXPECT_EQ(errorResponse("", "overloaded", "queue full"),
            "{\"ok\":false,\"error\":{\"kind\":\"overloaded\","
            "\"message\":\"queue full\"}}");
}

//===----------------------------------------------------------------------===//
// The shared engine
//===----------------------------------------------------------------------===//

TEST(ServiceEngine, SpecsCanonicalizationIsIdempotent) {
  auto Sources = makeSources(20, 0x5E1);
  ServiceSpecs Specs = learnSpecs(Sources);
  ASSERT_FALSE(Specs.empty());
  auto Again = ServiceSpecs::fromText(Specs.Text);
  ASSERT_TRUE(Again.has_value());
  EXPECT_EQ(Again->Text, Specs.Text);
  EXPECT_EQ(Again->Lines, Specs.Lines);
}

TEST(ServiceEngine, AnalyzeSourceIsDeterministic) {
  auto Sources = makeSources(10, 0xABC);
  ServiceSpecs Specs = learnSpecs(Sources);
  for (const std::string &Src : Sources) {
    std::string E1, E2;
    auto A = analyzeSource(Src, "", Specs, false, &E1);
    auto B = analyzeSource(Src, "", Specs, false, &E2);
    ASSERT_TRUE(A && B) << E1 << E2;
    EXPECT_EQ(A->AnalyzeJson, B->AnalyzeJson);
    EXPECT_EQ(A->Fingerprint, B->Fingerprint);
  }
}

TEST(ServiceEngine, ParseFailureIsReported) {
  std::string Err;
  EXPECT_EQ(analyzeSource("class {", "", ServiceSpecs(), false, &Err),
            nullptr);
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===//
// Byte-identity: service == engine == CLI, at any worker count
//===----------------------------------------------------------------------===//

TEST(ServiceServer, ByteIdenticalAtAnyWorkerCount) {
  auto Sources = makeSources(12, 0xB17E);
  ServiceSpecs Specs = learnSpecs(Sources);
  ASSERT_FALSE(Specs.empty());

  // The reference: the same engine `uspec analyze --json` calls.
  std::vector<std::string> Expected;
  for (const std::string &Src : Sources) {
    std::string Err;
    auto PA = analyzeSource(Src, "", Specs, false, &Err);
    ASSERT_TRUE(PA) << Err;
    Expected.push_back(PA->AnalyzeJson);
  }

  for (unsigned NumWorkers : {1u, 8u}) {
    ServerConfig Cfg;
    Cfg.Workers = NumWorkers;
    Server S(Cfg, Specs);
    // Submit everything at once (exercises concurrent workers), then two
    // duplicate rounds (exercises both cache paths).
    std::vector<std::future<std::string>> Futures;
    for (int Round = 0; Round < 3; ++Round)
      for (size_t I = 0; I < Sources.size(); ++I)
        Futures.push_back(
            S.submit(analyzeRequest(static_cast<int>(I), Sources[I])));
    for (size_t F = 0; F < Futures.size(); ++F) {
      size_t I = F % Sources.size();
      EXPECT_EQ(Futures[F].get(),
                okResponse(std::to_string(I), Expected[I]))
          << "workers=" << NumWorkers << " request=" << F;
    }
  }
}

TEST(ServiceServer, CacheHitsAreByteExactAndCounted) {
  ServerConfig Cfg;
  Cfg.Workers = 1;
  Server S(Cfg, ServiceSpecs());

  std::string First = S.handle(analyzeRequest(1, TinyProgram));
  EXPECT_EQ(S.metrics().cacheMissCount(), 1u);
  EXPECT_EQ(S.metrics().cacheHitCount(), 0u);

  // Byte-identical resubmission: source-hash memo path.
  std::string Second = S.handle(analyzeRequest(2, TinyProgram));
  EXPECT_EQ(S.metrics().cacheHitCount(), 1u);

  // Whitespace/comment variant: different source hash, same structural
  // fingerprint — served from the fingerprint map, still byte-exact.
  std::string Variant = std::string("// reformatted\n") + TinyProgram;
  std::string Third = S.handle(analyzeRequest(3, Variant));
  EXPECT_EQ(S.metrics().cacheHitCount(), 2u);
  EXPECT_EQ(S.metrics().cacheMissCount(), 1u);

  // Same payload under different ids: strip the envelope and compare.
  auto Payload = [](const std::string &Response) {
    size_t At = Response.find("\"result\":");
    EXPECT_NE(At, std::string::npos) << Response;
    return Response.substr(At);
  };
  EXPECT_EQ(Payload(First), Payload(Second));
  EXPECT_EQ(Payload(First), Payload(Third));

  // Coverage flag is part of the cache key, not a stale-hit source.
  S.handle(analyzeRequest(4, TinyProgram, /*Coverage=*/true));
  EXPECT_EQ(S.metrics().cacheMissCount(), 2u);
}

TEST(ServiceServer, QueryVerbsAnswer) {
  auto Sources = makeSources(20, 0x5E1);
  ServiceSpecs Specs = learnSpecs(Sources);
  ServerConfig Cfg;
  Cfg.Workers = 2;
  Server S(Cfg, Specs);

  std::string Req = "{\"verb\":\"alias\",\"program\":";
  appendJsonString(Req, TinyProgram);
  Req += ",\"a\":\"getIfPresent\",\"b\":\"getIfPresent\"}";
  std::string Alias = S.handle(Req);
  EXPECT_NE(Alias.find("\"ok\":true"), std::string::npos) << Alias;
  EXPECT_NE(Alias.find("\"may_alias\":"), std::string::npos) << Alias;

  std::string SpecsResp = S.handle("{\"verb\":\"specs\"}");
  EXPECT_NE(SpecsResp.find("\"count\":"), std::string::npos) << SpecsResp;

  std::string Stats = S.handle("{\"verb\":\"stats\"}");
  for (const char *Field :
       {"\"workers\":2", "\"queue_capacity\":", "\"completed\":",
        "\"hit_rate\":", "\"p50\":", "\"qps\":"})
    EXPECT_NE(Stats.find(Field), std::string::npos)
        << Field << " missing in " << Stats;

  std::string Ts = "{\"verb\":\"typestate\",\"program\":";
  appendJsonString(Ts, TinyProgram);
  Ts += ",\"check\":\"getIfPresent\",\"use\":\"put\"}";
  EXPECT_NE(S.handle(Ts).find("\"ok\":true"), std::string::npos);

  std::string Taint = "{\"verb\":\"taint\",\"program\":";
  appendJsonString(Taint, TinyProgram);
  Taint += ",\"sources\":[\"getIfPresent\"],\"sinks\":[\"put\"],"
           "\"sanitizers\":[]}";
  EXPECT_NE(S.handle(Taint).find("\"ok\":true"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Robustness: malformed input never crashes, errors are structured
//===----------------------------------------------------------------------===//

TEST(ServiceFuzz, MalformedLinesGetStructuredErrors) {
  ServerConfig Cfg;
  Cfg.Workers = 2;
  Server S(Cfg, ServiceSpecs());

  const char *Nasty[] = {
      "",
      "{",
      "}",
      "nul",
      "{\"verb\":}",
      "{\"verb\":\"analyze\",\"program\":\"class C {\"}", // parse_error
      "{\"verb\":\"analyze\",\"program\":\"\\ud800\"}",   // lone surrogate
      "\x01\x02\xff\xfe binary junk",
      "{\"verb\":\"analyze\",\"program\":\"x\",\"coverage\":\"yes\"}",
      "[[[[[[[[[[[[[[[[",
  };
  for (const char *Line : Nasty) {
    std::string Resp = S.handle(Line);
    EXPECT_NE(Resp.find("\"ok\":false"), std::string::npos)
        << "line: " << Line << " resp: " << Resp;
    EXPECT_NE(Resp.find("\"kind\":\""), std::string::npos) << Resp;
  }

  // The server is still healthy afterwards.
  std::string Resp = S.handle(analyzeRequest(9, TinyProgram));
  EXPECT_NE(Resp.find("\"ok\":true"), std::string::npos) << Resp;
}

TEST(ServiceFuzz, RandomBytesNeverCrash) {
  ServerConfig Cfg;
  Cfg.Workers = 2;
  Server S(Cfg, ServiceSpecs());
  Rng Rand(0xF022);
  for (int I = 0; I < 200; ++I) {
    std::string Line;
    size_t Len = Rand.below(120);
    for (size_t J = 0; J < Len; ++J) {
      // Mostly JSON-ish punctuation so some lines get deep into the parser.
      static const char Alphabet[] =
          "{}[]\",:0123456789.eE+-\\ \tabcdefverbanalyzprogm\xc3\xa9\x01";
      Line += Alphabet[Rand.below(sizeof(Alphabet) - 1)];
    }
    std::string Resp = S.handle(Line);
    EXPECT_NE(Resp.find("\"ok\":false"), std::string::npos)
        << "iteration " << I;
  }
}

TEST(ServiceFuzz, OversizedLinesRejectedUnparsed) {
  ServerConfig Cfg;
  Cfg.Workers = 1;
  Cfg.MaxRequestBytes = 256;
  Server S(Cfg, ServiceSpecs());
  std::string Huge = analyzeRequest(1, std::string(4096, 'x'));
  std::string Resp = S.handle(Huge);
  EXPECT_NE(Resp.find("\"kind\":\"oversized\""), std::string::npos) << Resp;
  // No id: the line was never parsed.
  EXPECT_EQ(Resp.find("\"id\""), std::string::npos) << Resp;
}

//===----------------------------------------------------------------------===//
// Backpressure
//===----------------------------------------------------------------------===//

TEST(ServiceBackpressure, FullQueueAnswersOverloaded) {
  ServerConfig Cfg;
  Cfg.Workers = 2;
  Cfg.QueueCapacity = 2;
  Cfg.EnableTestVerbs = true;
  Server S(Cfg, ServiceSpecs());

  // Park both workers on the test gate...
  auto Blocked1 = S.submit("{\"verb\":\"test_block\"}");
  auto Blocked2 = S.submit("{\"verb\":\"test_block\"}");
  // ...wait until both are in flight (queue visibly empty again)...
  for (int Spin = 0; Spin < 2000; ++Spin) {
    if (S.statsJson().find("\"queue_depth\":0") != std::string::npos)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(S.statsJson().find("\"queue_depth\":0"), std::string::npos);

  // ...fill the admission queue to its bound...
  auto Queued1 = S.submit("{\"id\":1,\"verb\":\"specs\"}");
  auto Queued2 = S.submit("{\"id\":2,\"verb\":\"specs\"}");

  // ...and the next submission is rejected immediately, fully formed.
  auto Rejected = S.submit("{\"id\":3,\"verb\":\"specs\"}");
  ASSERT_EQ(Rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  std::string Resp = Rejected.get();
  EXPECT_NE(Resp.find("\"kind\":\"overloaded\""), std::string::npos) << Resp;
  EXPECT_GE(S.metrics().overloadedCount(), 1u);

  // Opening the gate lets everything admitted complete normally.
  S.releaseTestGate();
  EXPECT_NE(Blocked1.get().find("\"ok\":true"), std::string::npos);
  EXPECT_NE(Blocked2.get().find("\"ok\":true"), std::string::npos);
  EXPECT_NE(Queued1.get().find("\"ok\":true"), std::string::npos);
  EXPECT_NE(Queued2.get().find("\"ok\":true"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Drain
//===----------------------------------------------------------------------===//

TEST(ServiceDrain, ShutdownCompletesInFlightAndRejectsNew) {
  ServerConfig Cfg;
  Cfg.Workers = 2;
  Server S(Cfg, ServiceSpecs());

  // Some real work before the drain.
  auto Work = S.submit(analyzeRequest(1, TinyProgram));
  std::string Ack = S.handle("{\"id\":99,\"verb\":\"shutdown\"}");
  EXPECT_EQ(Ack, okResponse("99", "{\"draining\":true}"));

  // Admitted work still completes...
  EXPECT_NE(Work.get().find("\"ok\":true"), std::string::npos);
  // ...new work is refused with a structured error...
  std::string Late = S.handle("{\"id\":5,\"verb\":\"specs\"}");
  EXPECT_NE(Late.find("\"kind\":\"shutting_down\""), std::string::npos)
      << Late;
  // ...and the drain itself terminates.
  S.drain();
  EXPECT_TRUE(S.draining());
}

TEST(ServiceDrain, StreamServesInOrderAndDrainsOnShutdown) {
  auto Sources = makeSources(3, 0xD1A);
  ServiceSpecs Specs = learnSpecs(makeSources(20, 0x5E1));

  std::string Input;
  std::vector<std::string> Expected;
  for (size_t I = 0; I < Sources.size(); ++I) {
    Input += analyzeRequest(static_cast<int>(I), Sources[I]);
    Input += '\n';
    std::string Err;
    auto PA = analyzeSource(Sources[I], "", Specs, false, &Err);
    ASSERT_TRUE(PA) << Err;
    Expected.push_back(okResponse(std::to_string(I), PA->AnalyzeJson));
  }
  Input += "{\"id\":9,\"verb\":\"shutdown\"}\n";
  // A line after shutdown races the drain flag: the reader may stop before
  // it (not served), admit it before the flag flips (served normally — a
  // graceful drain completes everything admitted), or get shutting_down.
  Input += "{\"id\":10,\"verb\":\"specs\"}\n";
  Expected.push_back(okResponse("9", "{\"draining\":true}"));

  ServerConfig Cfg;
  Cfg.Workers = 4;
  Server S(Cfg, Specs);
  std::istringstream In(Input);
  std::ostringstream Out;
  EXPECT_EQ(S.serveStream(In, Out), 0);

  std::vector<std::string> Lines;
  std::istringstream Parse(Out.str());
  std::string Line;
  while (std::getline(Parse, Line))
    Lines.push_back(Line);
  ASSERT_GE(Lines.size(), Expected.size());
  ASSERT_LE(Lines.size(), Expected.size() + 1);
  for (size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(Lines[I], Expected[I]) << "line " << I;
  if (Lines.size() == Expected.size() + 1)
    EXPECT_NE(Lines.back().find("\"id\":10"), std::string::npos)
        << Lines.back();
}

//===----------------------------------------------------------------------===//
// Concurrency: mixed verbs from many client threads
//===----------------------------------------------------------------------===//

TEST(ServiceConcurrent, MixedVerbClientsGetConsistentAnswers) {
  auto Sources = makeSources(6, 0xCAFE);
  ServiceSpecs Specs = learnSpecs(Sources);

  std::vector<std::string> Expected;
  for (const std::string &Src : Sources) {
    std::string Err;
    auto PA = analyzeSource(Src, "", Specs, false, &Err);
    ASSERT_TRUE(PA) << Err;
    Expected.push_back(PA->AnalyzeJson);
  }

  ServerConfig Cfg;
  Cfg.Workers = 4;
  Cfg.QueueCapacity = 1024; // roomy: this test is about answers, not limits
  Server S(Cfg, Specs);

  constexpr int ClientThreads = 8, PerClient = 24;
  std::vector<std::thread> Clients;
  std::vector<int> Failures(ClientThreads, 0);
  for (int T = 0; T < ClientThreads; ++T) {
    Clients.emplace_back([&, T] {
      for (int I = 0; I < PerClient; ++I) {
        int Kind = (T + I) % 4;
        std::string Resp;
        if (Kind == 0 || Kind == 1) {
          size_t P = static_cast<size_t>(T + I) % Sources.size();
          Resp = S.handle(analyzeRequest(static_cast<int>(P), Sources[P]));
          if (Resp !=
              okResponse(std::to_string(P), Expected[P]))
            ++Failures[T];
        } else if (Kind == 2) {
          Resp = S.handle("{\"verb\":\"stats\"}");
          if (Resp.find("\"ok\":true") == std::string::npos)
            ++Failures[T];
        } else {
          Resp = S.handle("{\"verb\":\"broken");
          if (Resp.find("\"ok\":false") == std::string::npos)
            ++Failures[T];
        }
      }
    });
  }
  for (std::thread &C : Clients)
    C.join();
  for (int T = 0; T < ClientThreads; ++T)
    EXPECT_EQ(Failures[T], 0) << "client " << T;
  EXPECT_GE(S.metrics().cacheHitCount(), 1u);
}
