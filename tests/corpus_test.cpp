//===- corpus_test.cpp - Tests for the registry, generator, ground truth ------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Generator.h"
#include "corpus/GroundTruth.h"
#include "corpus/Profiles.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace uspec;

namespace {

MethodId mid(StringInterner &S, const char *Class, const char *Name,
             uint8_t Arity) {
  return {S.intern(Class), S.intern(Name), Arity};
}

} // namespace

//===----------------------------------------------------------------------===//
// Registry & ground truth
//===----------------------------------------------------------------------===//

TEST(Registry, JavaProfileBasics) {
  LanguageProfile P = javaProfile();
  const ApiClass *Map = P.Registry.findClass("HashMap");
  ASSERT_NE(Map, nullptr);
  EXPECT_EQ(Map->Library, "java.util");
  EXPECT_TRUE(Map->Constructible);
  const ApiMethod *Put = Map->findMethod("put", 2);
  ASSERT_NE(Put, nullptr);
  EXPECT_EQ(Put->Semantics, MethodSemantics::Store);
  EXPECT_EQ(Put->StorePos, 2u);

  const ApiClass *RS = P.Registry.findClass("ResultSet");
  ASSERT_NE(RS, nullptr);
  EXPECT_FALSE(RS->Constructible) << "ResultSet is factory-only (§7.5)";
  EXPECT_EQ(RS->ProducerMethod, "executeQuery");
}

TEST(Registry, PythonProfileBasics) {
  LanguageProfile P = pythonProfile();
  const ApiClass *Dict = P.Registry.findClass("Dict");
  ASSERT_NE(Dict, nullptr);
  const ApiMethod *Sub = Dict->findMethod("SubscriptStore", 2);
  ASSERT_NE(Sub, nullptr);
  EXPECT_EQ(Sub->Semantics, MethodSemantics::Store);
  const ApiClass *Cfg = P.Registry.findClass("SafeConfigParser");
  ASSERT_NE(Cfg, nullptr);
  const ApiMethod *Set = Cfg->findMethod("set", 3);
  ASSERT_NE(Set, nullptr);
  EXPECT_EQ(Set->StorePos, 3u) << "Tab. 3: RetArg(get, set, 3)";
}

TEST(Registry, ContainersDerived) {
  LanguageProfile P = javaProfile();
  EXPECT_GT(P.Containers.size(), 5u);
  for (const ContainerInfo &C : P.Containers)
    EXPECT_EQ(C.Store->Semantics, MethodSemantics::Store);
}

TEST(GroundTruth, JudgesRetArg) {
  LanguageProfile P = javaProfile();
  StringInterner S;
  // Valid: RetArg(HashMap.get/1, HashMap.put/2, 2).
  Spec Valid = Spec::retArg(mid(S, "HashMap", "get", 1),
                            mid(S, "HashMap", "put", 2), 2);
  EXPECT_EQ(P.Registry.judgeSpec(Valid, S), SpecValidity::Valid);
  // Wrong position.
  Spec WrongPos = Spec::retArg(mid(S, "HashMap", "get", 1),
                               mid(S, "HashMap", "put", 2), 1);
  EXPECT_EQ(P.Registry.judgeSpec(WrongPos, S), SpecValidity::Invalid);
  // Wrong pairing: ArrayList.get is not a paired load of HashMap.put.
  Spec CrossClass = Spec::retArg(mid(S, "ArrayList", "get", 1),
                                 mid(S, "HashMap", "put", 2), 2);
  EXPECT_EQ(P.Registry.judgeSpec(CrossClass, S), SpecValidity::Invalid);
  // Unknown method.
  Spec Unknown = Spec::retArg(mid(S, "HashMap", "frobnicate", 1),
                              mid(S, "HashMap", "put", 2), 2);
  EXPECT_EQ(P.Registry.judgeSpec(Unknown, S), SpecValidity::Unknown);
}

TEST(GroundTruth, JudgesRetSame) {
  LanguageProfile P = javaProfile();
  StringInterner S;
  EXPECT_EQ(P.Registry.judgeSpec(
                Spec::retSame(mid(S, "ResultSet", "getString", 1)), S),
            SpecValidity::Valid);
  EXPECT_EQ(P.Registry.judgeSpec(
                Spec::retSame(mid(S, "HashMap", "get", 1)), S),
            SpecValidity::Valid);
  // The paper's filtered-out wrong spec: RetSame(SecureRandom.nextInt).
  EXPECT_EQ(P.Registry.judgeSpec(
                Spec::retSame(mid(S, "SecureRandom", "nextInt", 1)), S),
            SpecValidity::Invalid);
  EXPECT_EQ(P.Registry.judgeSpec(
                Spec::retSame(mid(S, "Iterator", "next", 0)), S),
            SpecValidity::Invalid);
  // Factory methods are not RetSame.
  EXPECT_EQ(P.Registry.judgeSpec(
                Spec::retSame(mid(S, "Document", "createElement", 1)), S),
            SpecValidity::Invalid);
}

TEST(GroundTruth, UnknownClassResolvedByUniqueName) {
  LanguageProfile P = javaProfile();
  StringInterner S;
  // db.getFile(...) receivers have unknown class; unique lookup resolves to
  // Database.getFile which is a stateless getter.
  EXPECT_EQ(
      P.Registry.judgeSpec(Spec::retSame(mid(S, "", "getFile", 1)), S),
      SpecValidity::Valid);
  // fs.open is a factory: invalid.
  EXPECT_EQ(P.Registry.judgeSpec(Spec::retSame(mid(S, "", "open", 1)), S),
            SpecValidity::Invalid);
}

TEST(GroundTruth, LibraryGrouping) {
  LanguageProfile P = javaProfile();
  StringInterner S;
  EXPECT_EQ(P.Registry.libraryOf(
                Spec::retSame(mid(S, "HashMap", "get", 1)), S),
            "java.util");
  EXPECT_EQ(P.Registry.libraryOf(
                Spec::retSame(mid(S, "SparseArray", "get", 1)), S),
            "android.util");
  EXPECT_EQ(P.Registry.libraryOf(
                Spec::retSame(mid(S, "Nope", "get", 1)), S),
            "?");
}

TEST(GroundTruth, PrComputation) {
  std::vector<LabeledCandidate> Labeled;
  auto Add = [&](double Score, SpecValidity V) {
    LabeledCandidate L;
    L.C.Score = Score;
    L.Validity = V;
    Labeled.push_back(L);
  };
  Add(0.9, SpecValidity::Valid);
  Add(0.8, SpecValidity::Invalid);
  Add(0.4, SpecValidity::Valid);
  Add(0.2, SpecValidity::Unknown);

  PrPoint AtHalf = prAtTau(Labeled, 0.5);
  EXPECT_EQ(AtHalf.Selected, 2u);
  EXPECT_DOUBLE_EQ(AtHalf.Precision, 0.5);
  EXPECT_DOUBLE_EQ(AtHalf.Recall, 0.5);

  PrPoint AtZero = prAtTau(Labeled, 0.0);
  EXPECT_EQ(AtZero.Selected, 4u);
  EXPECT_DOUBLE_EQ(AtZero.Recall, 1.0);
  EXPECT_DOUBLE_EQ(AtZero.Precision, 0.5); // Unknown counts as invalid

  auto Curve = prCurve(Labeled, {0.0, 0.5, 0.95});
  ASSERT_EQ(Curve.size(), 3u);
  EXPECT_DOUBLE_EQ(Curve[2].Precision, 1.0);
}

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

TEST(Generator, ProgramsParse) {
  for (const LanguageProfile &P : {javaProfile(), pythonProfile()}) {
    GeneratorConfig Cfg;
    Rng Rand(11);
    for (int I = 0; I < 100; ++I) {
      std::string Source = generateProgramSource(P, Cfg, Rand);
      DiagnosticSink Diags;
      auto M = Parser::parse(Source, "gen", Diags);
      ASSERT_TRUE(M.has_value() && !Diags.hasErrors())
          << "profile " << P.Name << " source:\n"
          << Source << "\n"
          << Diags.render();
    }
  }
}

TEST(Generator, DeterministicFromSeed) {
  LanguageProfile P = javaProfile();
  GeneratorConfig Cfg;
  Rng R1(99), R2(99);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(generateProgramSource(P, Cfg, R1),
              generateProgramSource(P, Cfg, R2));
}

TEST(Generator, CorpusGeneration) {
  LanguageProfile P = javaProfile();
  GeneratorConfig Cfg;
  Cfg.NumPrograms = 50;
  Cfg.Seed = 3;
  StringInterner S;
  GeneratedCorpus Corpus = generateCorpus(P, Cfg, S);
  EXPECT_EQ(Corpus.Programs.size(), 50u);
  EXPECT_EQ(Corpus.Sources.size(), 50u);
  EXPECT_GT(Corpus.TotalLines, 200u);
}

TEST(Generator, EmitsRoundtripIdioms) {
  // With only the roundtrip idiom enabled, generated programs must contain
  // store calls of registry containers.
  LanguageProfile P = javaProfile();
  GeneratorConfig Cfg;
  Cfg.WDirect = Cfg.WGetter = Cfg.WMutating = Cfg.WComplex = 0;
  Cfg.WRoundtrip = 1;
  Cfg.NoiseProb = 0;
  Rng Rand(5);
  int Stores = 0;
  for (int I = 0; I < 20; ++I) {
    std::string Source = generateProgramSource(P, Cfg, Rand);
    if (Source.find(".put(") != std::string::npos ||
        Source.find(".set") != std::string::npos ||
        Source.find("setProperty") != std::string::npos)
      ++Stores;
  }
  EXPECT_GT(Stores, 10);
}

//===----------------------------------------------------------------------===//
// Full pipeline on a generated corpus (integration)
//===----------------------------------------------------------------------===//

TEST(Integration, LearnsValidSpecsFromGeneratedJavaCorpus) {
  LanguageProfile P = javaProfile();
  GeneratorConfig Cfg;
  Cfg.NumPrograms = 250;
  Cfg.Seed = 42;
  StringInterner S;
  GeneratedCorpus Corpus = generateCorpus(P, Cfg, S);

  LearnerConfig LC;
  LC.Tau = 0.6;
  USpecLearner Learner(S, LC);
  LearnResult Result = Learner.learn(Corpus.Programs);

  EXPECT_GT(Result.Candidates.size(), 10u) << "candidates must arise";
  EXPECT_GT(Result.TrainAccuracy, 0.8);
  EXPECT_FALSE(Result.Selected.empty());

  // Precision of the selection against ground truth should be high.
  auto Labeled = labelCandidates(P.Registry, S, Result.Candidates);
  PrPoint At = prAtTau(Labeled, LC.Tau);
  EXPECT_GT(At.Precision, 0.7)
      << "selected specs should be mostly valid (paper: >0.9 at τ=0.6)";
  EXPECT_GT(At.Recall, 0.3);

  // The flagship spec should be learned.
  Spec MapSpec = Spec::retArg(mid(S, "HashMap", "get", 1),
                              mid(S, "HashMap", "put", 2), 2);
  bool Found = false;
  for (const ScoredCandidate &C : Result.Candidates)
    if (C.S == MapSpec && C.Score >= LC.Tau)
      Found = true;
  EXPECT_TRUE(Found) << "RetArg(HashMap.get, HashMap.put, 2) must be selected";
}
