//===- fault_test.cpp - Fault injection, budgets and crash safety --------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Covers the robustness layer (DESIGN.md §10): the deterministic fault-
// injection registry, cooperative step/deadline budgets, bounded-analysis
// ⊤ degradation, per-program quarantine in learn(), crash-safe atomic
// artifact writes (including a kill-at-every-site subprocess sweep over the
// real `uspec` binary with `train --resume` recovery), and the hardened
// service (watchdog deadlines, worker-death recovery, uncached bounded
// results). All suite names start with "Fault" so the CI fault-injection
// and sanitizer jobs pick them up by regex.
//
//===----------------------------------------------------------------------===//

#include "artifact/ArtifactIO.h"
#include "core/USpec.h"
#include "corpus/Generator.h"
#include "corpus/Profiles.h"
#include "pointsto/Analysis.h"
#include "pointsto/ConstraintSolver.h"
#include "service/Server.h"
#include "specs/SpecIO.h"
#include "support/Budget.h"
#include "support/FaultInject.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <sys/wait.h>
#include <vector>

using namespace uspec;

namespace {

/// Every fixtureless test neutralizes ambient USPEC_FAULT schedules and any
/// schedule a previous test armed — the registry is process-global.
struct FaultTest : ::testing::Test {
  void SetUp() override { disarmFaults(); }
  void TearDown() override { disarmFaults(); }
};

struct FaultBudget : FaultTest {};
struct FaultRegistry : FaultTest {};
struct FaultAnalysis : FaultTest {};
struct FaultLearner : FaultTest {};
struct FaultArtifact : FaultTest {};
struct FaultService : FaultTest {};
struct FaultProtocol : FaultTest {};
struct FaultCli : FaultTest {};

std::vector<std::string> makeSources(size_t N, uint64_t Seed) {
  LanguageProfile Profile = javaProfile();
  GeneratorConfig Cfg;
  Rng Rand(Seed);
  std::vector<std::string> Out;
  for (size_t I = 0; I < N; ++I)
    Out.push_back(generateProgramSource(Profile, Cfg, Rand));
  return Out;
}

std::vector<IRProgram> parseCorpus(const std::vector<std::string> &Sources,
                                   StringInterner &Strings) {
  std::vector<IRProgram> Corpus;
  for (size_t I = 0; I < Sources.size(); ++I) {
    DiagnosticSink Diags;
    auto P = parseAndLower(Sources[I], "p" + std::to_string(I), Strings,
                           Diags);
    EXPECT_TRUE(P.has_value()) << Diags.render();
    if (P)
      Corpus.push_back(std::move(*P));
  }
  return Corpus;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::string Out((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  return Out;
}

const char *TinyProgram =
    "class Main { def main() { var m = new Cache(); m.put(\"k\", 1); "
    "var a = m.getIfPresent(\"k\"); var b = m.getIfPresent(\"k\"); } }";

} // namespace

//===----------------------------------------------------------------------===//
// Budgets
//===----------------------------------------------------------------------===//

TEST_F(FaultBudget, StepLimitExhaustsAndSticks) {
  Budget B = Budget::steps(3);
  EXPECT_TRUE(B.consume());
  EXPECT_TRUE(B.consume());
  EXPECT_TRUE(B.consume());
  EXPECT_FALSE(B.exhausted());
  EXPECT_FALSE(B.consume()); // 4th step crosses the limit
  EXPECT_TRUE(B.exhausted());
  EXPECT_STREQ(B.reason(), "steps");
  // Monotonic: once exhausted, stays exhausted.
  EXPECT_FALSE(B.consume());
  EXPECT_FALSE(B.checkpoint());
}

TEST_F(FaultBudget, UnlimitedBudgetNeverExhausts) {
  Budget B;
  for (int I = 0; I < 10000; ++I)
    EXPECT_TRUE(B.consume());
  EXPECT_FALSE(B.exhausted());
  EXPECT_STREQ(B.reason(), "");
  EXPECT_EQ(B.used(), 10000u);
}

TEST_F(FaultBudget, ExpiredDeadlineFiresAtNextClockPoll) {
  Budget B;
  B.setDeadlinePoint(Budget::Clock::now() - std::chrono::milliseconds(1));
  // The clock is only polled every ClockPollInterval steps; checkpoint()
  // counts as a step, so a checkpoint-only loop still hits the poll.
  bool Stopped = false;
  for (uint64_t I = 0; I <= Budget::ClockPollInterval + 1; ++I) {
    if (!B.checkpoint()) {
      Stopped = true;
      break;
    }
  }
  EXPECT_TRUE(Stopped);
  EXPECT_TRUE(B.exhausted());
  EXPECT_STREQ(B.reason(), "deadline");
}

TEST_F(FaultBudget, BulkConsumeCountsAllSteps) {
  Budget B = Budget::steps(100);
  EXPECT_TRUE(B.consume(100));
  EXPECT_FALSE(B.consume(1));
  EXPECT_STREQ(B.reason(), "steps");
}

//===----------------------------------------------------------------------===//
// Fault registry
//===----------------------------------------------------------------------===//

TEST_F(FaultRegistry, CounterSiteThrowsOnExactlyTheNthHit) {
  armFault("t.counter", 3);
  EXPECT_FALSE(faultFires("t.counter"));
  EXPECT_FALSE(faultFires("t.counter"));
  EXPECT_THROW(faultFires("t.counter"), FaultInjected);
  // One-shot: the counter moved past Nth.
  EXPECT_FALSE(faultFires("t.counter"));
}

TEST_F(FaultRegistry, SoftActionReportsFiredWithoutThrowing) {
  armFault("t.soft", 1, FaultAction::Soft);
  EXPECT_TRUE(faultFires("t.soft"));
  EXPECT_FALSE(faultFires("t.soft"));
}

TEST_F(FaultRegistry, IndexedSiteFiresOnlyAtArmedIndex) {
  armFault("t.indexed", 2, FaultAction::Soft);
  EXPECT_FALSE(faultFiresAt("t.indexed", 0));
  EXPECT_FALSE(faultFiresAt("t.indexed", 1));
  EXPECT_TRUE(faultFiresAt("t.indexed", 2));
  // Unlike counter sites, indexed sites fire every time the index matches.
  EXPECT_TRUE(faultFiresAt("t.indexed", 2));
  EXPECT_FALSE(faultFiresAt("t.indexed", 3));
}

TEST_F(FaultRegistry, UnarmedSitesNeverFire) {
  armFault("t.other", 1, FaultAction::Soft);
  EXPECT_FALSE(faultFires("t.unrelated"));
  EXPECT_FALSE(faultFiresAt("t.unrelated", 1));
}

TEST_F(FaultRegistry, DisarmClearsSchedulesAndCounters) {
  armFault("t.gone", 1, FaultAction::Soft);
  disarmFaults();
  EXPECT_FALSE(faultFires("t.gone"));
}

TEST_F(FaultRegistry, SpecParsingArmsMultipleSites) {
  EXPECT_TRUE(armFaultsFromSpec("a.x:1:soft,b.y:2:soft"));
  EXPECT_TRUE(faultFires("a.x"));
  EXPECT_FALSE(faultFires("b.y"));
  EXPECT_TRUE(faultFires("b.y"));
}

TEST_F(FaultRegistry, MalformedSpecIsRejected) {
  EXPECT_FALSE(armFaultsFromSpec("nocolon"));
  EXPECT_FALSE(armFaultsFromSpec("site:notanumber"));
  EXPECT_FALSE(armFaultsFromSpec("site:1:frobnicate"));
  EXPECT_FALSE(armFaultsFromSpec(":1"));
}

//===----------------------------------------------------------------------===//
// Bounded analysis: sound ⊤ degradation
//===----------------------------------------------------------------------===//

TEST_F(FaultAnalysis, ExhaustedStepBudgetYieldsBoundedTop) {
  StringInterner Strings;
  DiagnosticSink Diags;
  auto P = parseAndLower(TinyProgram, "tiny", Strings, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.render();

  AnalysisOptions Unbounded;
  AnalysisResult Full = analyzeProgram(*P, Strings, Unbounded);
  ASSERT_FALSE(Full.Bounded);

  Budget B = Budget::steps(1);
  AnalysisOptions Opts;
  Opts.StepBudget = &B;
  AnalysisResult Bounded = analyzeProgram(*P, Strings, Opts);
  EXPECT_TRUE(Bounded.Bounded);
  EXPECT_TRUE(B.exhausted());

  // ⊤ is a sound over-approximation: every pair the exact analysis reports
  // as may-alias is also reported by the bounded one.
  EventGraph G = EventGraph::build(Full);
  const auto &Sites = G.callSites();
  for (size_t I = 0; I < Sites.size(); ++I)
    for (size_t J = I + 1; J < Sites.size(); ++J) {
      if (Sites[I].Ret == InvalidEvent || Sites[J].Ret == InvalidEvent)
        continue;
      if (Full.retMayAlias(Sites[I].Ret, Sites[J].Ret)) {
        EXPECT_TRUE(Bounded.retMayAlias(Sites[I].Ret, Sites[J].Ret));
      }
    }
}

TEST_F(FaultAnalysis, SolverStepBudgetYieldsBoundedTop) {
  StringInterner Strings;
  DiagnosticSink Diags;
  auto P = parseAndLower(TinyProgram, "tiny", Strings, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.render();

  ConstraintResult Full = solveConstraints(*P, Strings);
  ASSERT_FALSE(Full.Bounded);

  Budget B = Budget::steps(1);
  ConstraintResult Bounded = solveConstraints(*P, Strings, &B);
  EXPECT_TRUE(Bounded.Bounded);
  // ⊤: every may-query answers true, a superset of the exact result.
  EXPECT_TRUE(Bounded.retMayAlias(0, 1));
  EXPECT_TRUE(Bounded.recvMayAlias(0, 1));
}

TEST_F(FaultAnalysis, SolverInjectedSoftFaultDegradesToBounded) {
  StringInterner Strings;
  DiagnosticSink Diags;
  auto P = parseAndLower(TinyProgram, "tiny", Strings, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.render();

  armFault("solver.step", 1, FaultAction::Soft);
  ConstraintResult R = solveConstraints(*P, Strings);
  EXPECT_TRUE(R.Bounded);
  EXPECT_TRUE(R.retMayAlias(0, 1));
}

TEST_F(FaultAnalysis, AnalysisInjectedSoftFaultDegradesToBounded) {
  StringInterner Strings;
  DiagnosticSink Diags;
  auto P = parseAndLower(TinyProgram, "tiny", Strings, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.render();

  armFault("analysis.step", 1, FaultAction::Soft);
  AnalysisResult R = analyzeProgram(*P, Strings, AnalysisOptions());
  EXPECT_TRUE(R.Bounded);
}

TEST_F(FaultAnalysis, GenerousBudgetLeavesResultExact) {
  StringInterner Strings;
  DiagnosticSink Diags;
  auto P = parseAndLower(TinyProgram, "tiny", Strings, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.render();

  Budget B = Budget::steps(1u << 20);
  AnalysisOptions Opts;
  Opts.StepBudget = &B;
  AnalysisResult R = analyzeProgram(*P, Strings, Opts);
  EXPECT_FALSE(R.Bounded);
  EXPECT_FALSE(B.exhausted());
  EXPECT_GT(B.used(), 0u);
}

//===----------------------------------------------------------------------===//
// Learner quarantine
//===----------------------------------------------------------------------===//

TEST_F(FaultLearner, TinyBudgetQuarantinesEveryProgramWithoutAborting) {
  StringInterner Strings;
  auto Sources = makeSources(4, 11);
  auto Corpus = parseCorpus(Sources, Strings);

  LearnerConfig Cfg;
  Cfg.ProgramStepBudget = 1;
  USpecLearner Learner(Strings, Cfg);
  LearnResult R = Learner.learn(Corpus);
  EXPECT_TRUE(R.Selected.empty());
  ASSERT_EQ(R.Stats.Quarantined.size(), Corpus.size());
  for (size_t I = 0; I < R.Stats.Quarantined.size(); ++I) {
    EXPECT_EQ(R.Stats.Quarantined[I].Program, I);
    EXPECT_EQ(R.Stats.Quarantined[I].Reason, "analysis:steps");
  }
}

TEST_F(FaultLearner, InjectedQuarantineIsDeterministicAcrossThreadCounts) {
  StringInterner Strings;
  auto Sources = makeSources(8, 23);
  auto Corpus = parseCorpus(Sources, Strings);

  armFault("learn.analyze", 3); // quarantine corpus index 3 on every run

  auto Run = [&](unsigned Threads) {
    LearnerConfig Cfg;
    Cfg.Threads = Threads;
    USpecLearner Learner(Strings, Cfg);
    return Learner.learn(Corpus);
  };
  LearnResult R1 = Run(1);
  LearnResult R8 = Run(8);

  EXPECT_EQ(serializeSpecs(R1.Selected, Strings),
            serializeSpecs(R8.Selected, Strings));
  ASSERT_EQ(R1.Candidates.size(), R8.Candidates.size());
  for (size_t I = 0; I < R1.Candidates.size(); ++I) {
    EXPECT_EQ(R1.Candidates[I].S.str(Strings), R8.Candidates[I].S.str(Strings));
    EXPECT_EQ(R1.Candidates[I].Score, R8.Candidates[I].Score);
    EXPECT_EQ(R1.Candidates[I].Matches, R8.Candidates[I].Matches);
  }
  ASSERT_EQ(R1.Stats.Quarantined.size(), 1u);
  ASSERT_EQ(R8.Stats.Quarantined.size(), 1u);
  EXPECT_EQ(R1.Stats.Quarantined[0].Program, 3u);
  EXPECT_EQ(R1.Stats.Quarantined[0].Reason, "fault:learn.analyze");
  EXPECT_EQ(R8.Stats.Quarantined[0].Reason, "fault:learn.analyze");
}

TEST_F(FaultLearner, QuarantiningLastProgramEqualsHandPrunedCorpus) {
  // Quarantine is in-place (per-program sample seeds are index-keyed), so
  // knocking out the LAST program must give exactly the specs of a corpus
  // that never contained it.
  auto Sources = makeSources(6, 37);

  StringInterner SA;
  auto Full = parseCorpus(Sources, SA);
  armFault("learn.analyze", Full.size() - 1);
  LearnResult RFull = USpecLearner(SA, LearnerConfig()).learn(Full);
  disarmFaults();

  StringInterner SB;
  auto Pruned = parseCorpus(
      std::vector<std::string>(Sources.begin(), Sources.end() - 1), SB);
  LearnResult RPruned = USpecLearner(SB, LearnerConfig()).learn(Pruned);

  EXPECT_EQ(serializeSpecs(RFull.Selected, SA),
            serializeSpecs(RPruned.Selected, SB));
  EXPECT_EQ(RFull.Candidates.size(), RPruned.Candidates.size());
}

//===----------------------------------------------------------------------===//
// Crash-safe artifact writes
//===----------------------------------------------------------------------===//

TEST_F(FaultArtifact, AtomicWriteRoundTripsAndLeavesNoTemp) {
  std::string Path = testing::TempDir() + "fault_atomic_rt.bin";
  std::string Err;
  ASSERT_TRUE(writeFileAtomic(Path, "hello artifact", &Err)) << Err;
  EXPECT_EQ(slurp(Path), "hello artifact");
  EXPECT_FALSE(std::filesystem::exists(atomicTempPath(Path)));
  // Overwrite is atomic too.
  ASSERT_TRUE(writeFileAtomic(Path, "second version", &Err)) << Err;
  EXPECT_EQ(slurp(Path), "second version");
}

TEST_F(FaultArtifact, ThrowBeforeRenameLeavesOldContentAndNoTemp) {
  for (const char *Site :
       {"artifact.write", "artifact.write.data", "artifact.write.fsync"}) {
    disarmFaults();
    std::string Path = testing::TempDir() + "fault_atomic_old.bin";
    std::string Err;
    ASSERT_TRUE(writeFileAtomic(Path, "old", &Err)) << Err;

    armFault(Site, 1);
    Err.clear();
    EXPECT_FALSE(writeFileAtomic(Path, "new", &Err)) << "site " << Site;
    EXPECT_NE(Err.find(Site), std::string::npos) << Err;
    EXPECT_EQ(slurp(Path), "old") << "site " << Site;
    EXPECT_FALSE(std::filesystem::exists(atomicTempPath(Path)))
        << "site " << Site;
  }
}

TEST_F(FaultArtifact, ThrowAfterRenameLeavesNewContent) {
  std::string Path = testing::TempDir() + "fault_atomic_new.bin";
  std::string Err;
  ASSERT_TRUE(writeFileAtomic(Path, "old", &Err)) << Err;
  armFault("artifact.write.rename", 1);
  // The fault fires after the rename: the call reports failure but the new
  // file is already in place — never a torn mix of the two.
  EXPECT_FALSE(writeFileAtomic(Path, "new", &Err));
  EXPECT_EQ(slurp(Path), "new");
  EXPECT_FALSE(std::filesystem::exists(atomicTempPath(Path)));
}

TEST_F(FaultArtifact, DiscardStaleTempRemovesAndWarns) {
  std::string Path = testing::TempDir() + "fault_stale.bin";
  std::string Tmp = atomicTempPath(Path);
  {
    std::ofstream Out(Tmp, std::ios::binary);
    Out << "torn";
  }
  std::string Warning;
  EXPECT_TRUE(discardStaleTemp(Path, &Warning));
  EXPECT_NE(Warning.find(Tmp), std::string::npos) << Warning;
  EXPECT_FALSE(std::filesystem::exists(Tmp));
  EXPECT_FALSE(discardStaleTemp(Path, &Warning));
}

//===----------------------------------------------------------------------===//
// Service hardening
//===----------------------------------------------------------------------===//

TEST_F(FaultService, DeadWorkerIsReplacedAndRequestAnsweredInternal) {
  service::ServerConfig Cfg;
  Cfg.Workers = 2;
  service::Server S(Cfg, service::ServiceSpecs());

  armFault("service.worker", 1);
  std::string R1 = S.handle("{\"id\":1,\"verb\":\"specs\"}");
  EXPECT_NE(R1.find("\"kind\":\"internal\""), std::string::npos) << R1;
  EXPECT_NE(R1.find("\"id\":1"), std::string::npos) << R1;
  EXPECT_EQ(S.metrics().workerDeathCount(), 1u);

  // The pool replaced the dead worker: later requests still get served.
  for (int I = 0; I < 4; ++I) {
    std::string R = S.handle("{\"id\":2,\"verb\":\"specs\"}");
    EXPECT_NE(R.find("\"ok\":true"), std::string::npos) << R;
  }
  S.drain(); // must not hang on a short-handed pool
}

TEST_F(FaultService, WatchdogAnswersQueuedRequestPastDeadline) {
  service::ServerConfig Cfg;
  Cfg.Workers = 1;
  Cfg.EnableTestVerbs = true;
  service::Server S(Cfg, service::ServiceSpecs());

  // Park the only worker, then submit a request with a short deadline: the
  // watchdog must answer it while it is still stuck in the queue.
  auto Parked = S.submit("{\"verb\":\"test_block\"}");
  auto Doomed = S.submit("{\"id\":7,\"verb\":\"specs\",\"deadline_ms\":50}");
  ASSERT_EQ(Doomed.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  std::string R = Doomed.get();
  EXPECT_NE(R.find("\"kind\":\"deadline_exceeded\""), std::string::npos) << R;
  EXPECT_NE(R.find("\"id\":7"), std::string::npos) << R;
  EXPECT_EQ(S.metrics().deadlineExceededCount(), 1u);

  S.releaseTestGate();
  EXPECT_NE(Parked.get().find("\"ok\":true"), std::string::npos);
  S.drain();
}

TEST_F(FaultService, ServerDefaultTimeoutAppliesWithoutPerRequestDeadline) {
  service::ServerConfig Cfg;
  Cfg.Workers = 1;
  Cfg.EnableTestVerbs = true;
  Cfg.RequestTimeoutMs = 50;
  service::Server S(Cfg, service::ServiceSpecs());

  auto Parked = S.submit("{\"verb\":\"test_block\"}");
  auto Doomed = S.submit("{\"id\":8,\"verb\":\"specs\"}");
  ASSERT_EQ(Doomed.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  EXPECT_NE(Doomed.get().find("\"kind\":\"deadline_exceeded\""),
            std::string::npos);

  S.releaseTestGate();
  Parked.get();
  S.drain();
}

TEST_F(FaultService, BoundedResultIsServedButNeverCached) {
  service::ServerConfig Cfg;
  Cfg.Workers = 1;
  Cfg.MaxStepsPerRequest = 1;
  service::Server S(Cfg, service::ServiceSpecs());

  std::string Req = "{\"verb\":\"analyze\",\"program\":";
  service::appendJsonString(Req, TinyProgram);
  Req += "}";

  std::string R1 = S.handle(Req);
  EXPECT_NE(R1.find("\"ok\":true"), std::string::npos) << R1;
  EXPECT_NE(R1.find("\"bounded\":true"), std::string::npos) << R1;

  std::string R2 = S.handle(Req);
  EXPECT_EQ(R1, R2); // deterministic even when degraded
  EXPECT_EQ(S.metrics().cacheMissCount(), 2u); // ⊤ results never enter cache
  EXPECT_EQ(S.metrics().cacheHitCount(), 0u);
  S.drain();
}

//===----------------------------------------------------------------------===//
// Protocol: deadline plumbing + retry backoff
//===----------------------------------------------------------------------===//

TEST_F(FaultProtocol, ScanDeadlineMsFindsCanonicalMember) {
  EXPECT_EQ(service::scanDeadlineMs("{\"verb\":\"x\",\"deadline_ms\":250}"),
            std::optional<uint64_t>(250));
  EXPECT_EQ(service::scanDeadlineMs("{\"deadline_ms\": 7}"),
            std::optional<uint64_t>(7));
  EXPECT_EQ(service::scanDeadlineMs("{\"verb\":\"x\"}"), std::nullopt);
}

TEST_F(FaultProtocol, ScanDeadlineMsCannotFireInsideStringContent) {
  // Inside JSON string content a literal `"` must be escaped, so the exact
  // byte sequence `"deadline_ms":` cannot occur there.
  std::string Line = "{\"verb\":\"analyze\",\"program\":";
  service::appendJsonString(Line, "say \"deadline_ms\":99 out loud");
  Line += "}";
  EXPECT_EQ(service::scanDeadlineMs(Line), std::nullopt);
}

TEST_F(FaultProtocol, ScanRequestIdReturnsRawToken) {
  EXPECT_EQ(service::scanRequestId("{\"id\":42,\"verb\":\"x\"}"), "42");
  EXPECT_EQ(service::scanRequestId("{\"id\": -3}"), "-3");
  EXPECT_EQ(service::scanRequestId("{\"id\":\"abc\",\"verb\":\"x\"}"),
            "\"abc\"");
  EXPECT_EQ(service::scanRequestId("{\"verb\":\"x\"}"), "");
  EXPECT_EQ(service::scanRequestId("{\"id\":bogus}"), "");
}

TEST_F(FaultProtocol, ParseRequestValidatesDeadlineMs) {
  service::Request R;
  std::string Err;
  ASSERT_TRUE(service::parseRequest(
      "{\"verb\":\"specs\",\"deadline_ms\":125}", R, &Err))
      << Err;
  EXPECT_EQ(R.DeadlineMs, 125u);
  EXPECT_FALSE(service::parseRequest(
      "{\"verb\":\"specs\",\"deadline_ms\":-5}", R, &Err));
  EXPECT_FALSE(service::parseRequest(
      "{\"verb\":\"specs\",\"deadline_ms\":1.5}", R, &Err));
  EXPECT_FALSE(service::parseRequest(
      "{\"verb\":\"specs\",\"deadline_ms\":\"soon\"}", R, &Err));
}

TEST_F(FaultProtocol, RetryDelayIsDeterministicAndBounded) {
  for (unsigned Attempt = 0; Attempt < 10; ++Attempt) {
    uint64_t D1 = service::retryDelayMs(Attempt, 42);
    uint64_t D2 = service::retryDelayMs(Attempt, 42);
    EXPECT_EQ(D1, D2); // same (seed, attempt) -> same delay
    uint64_t Base = 10u << (Attempt < 6 ? Attempt : 6);
    EXPECT_GE(D1, Base);
    EXPECT_LT(D1, 2 * Base);
  }
  // Different seeds decorrelate clients retrying in lockstep.
  bool AnyDiffer = false;
  for (unsigned Attempt = 0; Attempt < 10 && !AnyDiffer; ++Attempt)
    AnyDiffer = service::retryDelayMs(Attempt, 1) !=
                service::retryDelayMs(Attempt, 2);
  EXPECT_TRUE(AnyDiffer);
}

TEST_F(FaultProtocol, RetryDelayClampsAtMax) {
  // Past the exponent cap the base is 640 ms and base+jitter can reach
  // 1279 ms unclamped; every delay must respect the documented ceiling.
  bool SawClamp = false;
  for (unsigned Attempt = 6; Attempt < 40; ++Attempt) {
    for (uint64_t Seed = 0; Seed < 50; ++Seed) {
      uint64_t D = service::retryDelayMs(Attempt, Seed);
      EXPECT_LE(D, service::MaxRetryDelayMs);
      EXPECT_GE(D, 640u); // the clamp never pulls a delay below its base
      SawClamp |= D == service::MaxRetryDelayMs;
    }
  }
  // The ceiling is actually reachable (jitter >= 360 ms occurs), so the
  // clamp is live, not dead code.
  EXPECT_TRUE(SawClamp);
}

//===----------------------------------------------------------------------===//
// Kill-at-every-site subprocess sweep over the real binary
//===----------------------------------------------------------------------===//

namespace {

struct RunResult {
  int ExitCode = -1;
  std::string Output;
};

/// Runs \p Command (already including the uspec path and any env prefix)
/// through the shell, merging stderr into the captured output.
RunResult runShell(const std::string &Command) {
  RunResult R;
  FILE *Pipe = popen((Command + " 2>&1").c_str(), "r");
  if (!Pipe) {
    ADD_FAILURE() << "popen failed for: " << Command;
    return R;
  }
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    R.Output.append(Buf, N);
  int Status = pclose(Pipe);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

} // namespace

TEST_F(FaultCli, KillAtEveryArtifactWriteSiteThenResumeMatchesCleanRun) {
  namespace fs = std::filesystem;
  std::string Dir = testing::TempDir() + "fault_kill_sweep/";
  fs::remove_all(Dir);
  fs::create_directories(Dir);

  // A tiny 3-program corpus written by hand (no generator dependency in the
  // subprocess path).
  std::string FileArgs;
  for (int I = 0; I < 3; ++I) {
    std::string Path = Dir + "p" + std::to_string(I) + ".mini";
    std::ofstream Out(Path);
    Out << "class Main { def main() { var m = new Map" << I << "(); "
        << "m.put(\"k\", " << I << "); var a = m.get(\"k\"); "
        << "var b = m.get(\"k\"); } }\n";
    FileArgs += " " + Path;
  }

  // The uninterrupted run: the recovery contract is that `train --resume`
  // after a kill converges to exactly these bytes.
  std::string Base = Dir + "base.uspb";
  RunResult Clean =
      runShell(std::string(USPEC_CLI_PATH) + " train" + FileArgs + " -o " +
               Base);
  ASSERT_EQ(Clean.ExitCode, 0) << Clean.Output;
  std::string BaseBytes = slurp(Base);
  ASSERT_FALSE(BaseBytes.empty());

  for (const char *Site :
       {"artifact.write", "artifact.write.data", "artifact.write.fsync",
        "artifact.write.rename"}) {
    std::string Out = Dir + "out.uspb";
    fs::remove(Out);
    fs::remove(Out + ".tmp");

    RunResult Killed = runShell("USPEC_FAULT=" + std::string(Site) +
                                ":1:kill " + USPEC_CLI_PATH + " train" +
                                FileArgs + " -o " + Out);
    EXPECT_EQ(Killed.ExitCode, 137) << Site << ": " << Killed.Output;

    // Whatever the kill left behind is either absent or a complete,
    // loadable artifact — never a torn file.
    if (fs::exists(Out)) {
      RunResult Info =
          runShell(std::string(USPEC_CLI_PATH) + " info " + Out);
      EXPECT_EQ(Info.ExitCode, 0) << Site << ": " << Info.Output;
      EXPECT_EQ(slurp(Out), BaseBytes) << Site;
    }

    RunResult Resumed = runShell(std::string(USPEC_CLI_PATH) + " train" +
                                 FileArgs + " -o " + Out + " --resume");
    EXPECT_EQ(Resumed.ExitCode, 0) << Site << ": " << Resumed.Output;
    EXPECT_EQ(slurp(Out), BaseBytes) << Site << ": " << Resumed.Output;
    EXPECT_FALSE(fs::exists(Out + ".tmp")) << Site;
  }
}

TEST_F(FaultCli, TrainQuarantinesMalformedFileAndStrictAborts) {
  namespace fs = std::filesystem;
  std::string Dir = testing::TempDir() + "fault_cli_strict/";
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  std::string Good = Dir + "good.mini", Bad = Dir + "bad.mini";
  {
    std::ofstream Out(Good);
    Out << TinyProgram << "\n";
  }
  {
    std::ofstream Out(Bad);
    Out << "this is not minilang {\n";
  }

  RunResult Lenient = runShell(std::string(USPEC_CLI_PATH) + " train " +
                               Good + " " + Bad + " -o " + Dir +
                               "out.uspb --stats");
  EXPECT_EQ(Lenient.ExitCode, 0) << Lenient.Output;
  EXPECT_NE(Lenient.Output.find("warning: quarantined"), std::string::npos)
      << Lenient.Output;
  EXPECT_NE(Lenient.Output.find("\"reason\": \"parse\""), std::string::npos)
      << Lenient.Output;

  RunResult Strict = runShell(std::string(USPEC_CLI_PATH) + " train " + Good +
                              " " + Bad + " -o " + Dir + "out2.uspb --strict");
  EXPECT_EQ(Strict.ExitCode, 1) << Strict.Output;
  EXPECT_FALSE(fs::exists(Dir + "out2.uspb"));
}
