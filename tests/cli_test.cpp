//===- cli_test.cpp - Regression tests for uspec CLI arg handling --------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Drives the real `uspec` binary (path injected by CMake as USPEC_CLI_PATH)
// and pins the argument-handling contract: unknown subcommands and unknown
// flags name the offending token on stderr and exit with status 2; valid
// invocations keep working. Also covers `analyze --json` end to end.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <sys/wait.h>

namespace {

struct RunResult {
  int ExitCode = -1;
  std::string Output; ///< stdout + stderr interleaved.
};

/// Runs `uspec <args>` through the shell, merging stderr into the captured
/// output.
RunResult runCli(const std::string &ArgString) {
  std::string Command = std::string(USPEC_CLI_PATH) + " " + ArgString + " 2>&1";
  RunResult R;
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe) {
    ADD_FAILURE() << "popen failed for: " << Command;
    return R;
  }
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    R.Output.append(Buf, N);
  int Status = pclose(Pipe);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

/// Writes a small valid MiniLang program and returns its path.
std::string writeTinyProgram() {
  std::string Path = testing::TempDir() + "cli_test_prog.mini";
  std::ofstream Out(Path);
  Out << "class Main { def main() { var m = new Map(); m.put(\"k\", 1); "
         "var a = m.get(\"k\"); var b = m.get(\"k\"); } }\n";
  return Path;
}

} // namespace

TEST(Cli, UnknownSubcommandNamesTokenAndExits2) {
  RunResult R = runCli("frobnicate");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Output.find("unknown subcommand 'frobnicate'"),
            std::string::npos)
      << R.Output;
}

TEST(Cli, UnknownFlagsNameTokenAndExit2) {
  struct Case {
    const char *Args;
    const char *Token;
  } Cases[] = {
      {"gen --bogus", "'--bogus'"},
      {"learn a.mini --frob", "'--frob'"},
      {"train a.mini --frob", "'--frob'"},
      {"select run.uspb --nope", "'--nope'"},
      {"analyze a.mini --wat", "'--wat'"},
      {"serve --listen", "'--listen'"},
      {"query --socket s --zap", "'--zap'"},
      {"check --strict", "'--strict'"},
  };
  for (const Case &C : Cases) {
    RunResult R = runCli(C.Args);
    EXPECT_EQ(R.ExitCode, 2) << C.Args << ": " << R.Output;
    EXPECT_NE(R.Output.find(C.Token), std::string::npos)
        << C.Args << ": " << R.Output;
  }
}

TEST(Cli, StrayPositionalsAreErrors) {
  RunResult R = runCli("select a.uspb extra.uspb");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Output.find("'extra.uspb'"), std::string::npos) << R.Output;

  R = runCli("analyze a.mini b.mini");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Output.find("'b.mini'"), std::string::npos) << R.Output;

  R = runCli("info a.uspb b.uspb");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Output.find("'b.uspb'"), std::string::npos) << R.Output;
}

TEST(Cli, MissingOptionValuesAreNamed) {
  struct Case {
    const char *Args;
    const char *Option;
  } Cases[] = {
      {"gen --seed", "'--seed'"},
      {"learn a.mini -o", "'-o'"},
      {"analyze --specs", "'--specs'"},
      {"serve --workers", "'--workers'"},
      {"query --socket", "'--socket'"},
  };
  for (const Case &C : Cases) {
    RunResult R = runCli(C.Args);
    EXPECT_EQ(R.ExitCode, 2) << C.Args << ": " << R.Output;
    EXPECT_NE(R.Output.find(C.Option), std::string::npos)
        << C.Args << ": " << R.Output;
    EXPECT_NE(R.Output.find("requires a value"), std::string::npos)
        << C.Args << ": " << R.Output;
  }
}

TEST(Cli, NoArgumentsPrintsUsage) {
  RunResult R = runCli("");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Output.find("usage:"), std::string::npos) << R.Output;
}

TEST(Cli, ValidInvocationsStillWork) {
  std::string Prog = writeTinyProgram();

  RunResult Check = runCli("check " + Prog);
  EXPECT_EQ(Check.ExitCode, 0) << Check.Output;
  EXPECT_NE(Check.Output.find("ok"), std::string::npos) << Check.Output;

  RunResult Analyze = runCli("analyze " + Prog);
  EXPECT_EQ(Analyze.ExitCode, 0) << Analyze.Output;
  EXPECT_NE(Analyze.Output.find("aliasing pairs"), std::string::npos)
      << Analyze.Output;
}

TEST(Cli, AnalyzeJsonEmitsOneJsonLine) {
  std::string Prog = writeTinyProgram();
  RunResult R = runCli("analyze " + Prog + " --json");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  ASSERT_FALSE(R.Output.empty());
  // One line, a JSON object with the analyze payload fields.
  EXPECT_EQ(R.Output.find('\n'), R.Output.size() - 1) << R.Output;
  EXPECT_EQ(R.Output.front(), '{');
  for (const char *Field : {"\"specs\":", "\"fingerprint\":",
                            "\"alias_pairs\":", "\"alias_count\":"})
    EXPECT_NE(R.Output.find(Field), std::string::npos)
        << Field << " missing in " << R.Output;

  // Deterministic across runs.
  EXPECT_EQ(runCli("analyze " + Prog + " --json").Output, R.Output);
}

TEST(Cli, AnalyzeJsonReportsParseErrorsAsJson) {
  std::string Path = testing::TempDir() + "cli_test_broken.mini";
  std::ofstream(Path) << "class {";
  RunResult R = runCli("analyze " + Path + " --json");
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Output.find("\"error\":{\"kind\":\"parse_error\""),
            std::string::npos)
      << R.Output;
}
