//===- misc_test.cpp - Remaining distinct behaviours ---------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Profiles.h"
#include "ir/Lowering.h"
#include "lang/Parser.h"
#include "runtime/Interpreter.h"
#include "support/Table.h"

#include <gtest/gtest.h>

using namespace uspec;

//===----------------------------------------------------------------------===//
// Interpreter semantics not covered elsewhere
//===----------------------------------------------------------------------===//

namespace {

struct Exec {
  StringInterner S;
  IRProgram Program;
  LanguageProfile Profile = javaProfile();

  std::map<uint32_t, std::vector<RtValue>> run(std::string_view Source,
                                               InterpreterOptions Opts = {}) {
    DiagnosticSink Diags;
    auto P = parseAndLower(Source, "m", S, Diags);
    EXPECT_TRUE(P.has_value()) << Diags.render();
    Program = std::move(*P);
    Interpreter I(Program, S, Profile.Registry, Opts);
    I.runAll();
    return I.returnsPerSite();
  }

  size_t callCount(const std::map<uint32_t, std::vector<RtValue>> &Returns,
                   const char *Name) {
    size_t Count = 0;
    std::function<void(const InstrList &)> Walk = [&](const InstrList &B) {
      for (const Instr &I : B) {
        if (I.TheKind == Instr::Kind::Call && S.str(I.Name) == Name) {
          auto It = Returns.find(I.SiteId);
          if (It != Returns.end())
            Count += It->second.size();
        }
        Walk(I.Inner1);
        if (I.TheKind == Instr::Kind::If)
          Walk(I.Inner2);
      }
    };
    for (const IRClass &C : Program.Classes)
      for (const IRMethod &M : C.Methods)
        Walk(M.Body);
    return Count;
  }
};

} // namespace

TEST(InterpreterMisc, IntegerComparisons) {
  Exec E;
  auto R = E.run(R"(
    class Main {
      def main() {
        var a = 3;
        var b = 5;
        if (a < b) { api.lt(); }
        if (a > b) { api.gt(); }
        if (a == 3) { api.eq(); }
        if (a != 3) { api.ne(); }
      }
    }
  )");
  EXPECT_EQ(E.callCount(R, "lt"), 1u);
  EXPECT_EQ(E.callCount(R, "gt"), 0u);
  EXPECT_EQ(E.callCount(R, "eq"), 1u);
  EXPECT_EQ(E.callCount(R, "ne"), 0u);
}

TEST(InterpreterMisc, StringAndNullTruthiness) {
  Exec E;
  auto R = E.run(R"(
    class Main {
      def main() {
        var s = "x";
        var e = "";
        var n = null;
        if (s) { api.str(); }
        if (e) { api.empty(); }
        if (n) { api.nul(); }
        if (n == null) { api.isnull(); }
      }
    }
  )");
  EXPECT_EQ(E.callCount(R, "str"), 1u);
  EXPECT_EQ(E.callCount(R, "empty"), 0u);
  EXPECT_EQ(E.callCount(R, "nul"), 0u);
  EXPECT_EQ(E.callCount(R, "isnull"), 1u);
}

TEST(InterpreterMisc, ReturnStopsExecution) {
  Exec E;
  auto R = E.run(R"(
    class Main {
      def main() {
        api.before();
        return;
        api.after();
      }
    }
  )");
  EXPECT_EQ(E.callCount(R, "before"), 1u);
  EXPECT_EQ(E.callCount(R, "after"), 0u);
}

TEST(InterpreterMisc, StepLimitStopsRunawayLoops) {
  Exec E;
  InterpreterOptions Opts;
  Opts.MaxSteps = 50;
  Opts.MaxLoopIters = 1000000;
  auto R = E.run(R"(
    class Main {
      def main() {
        var i = 1;
        while (i == 1) { api.tick(); }
      }
    }
  )",
                 Opts);
  EXPECT_LE(E.callCount(R, "tick"), 50u);
}

TEST(InterpreterMisc, EqualityIsIdentityForObjects) {
  Exec E;
  auto R = E.run(R"(
    class Main {
      def main() {
        var a = new HashMap();
        var b = new HashMap();
        var c = a;
        if (a == b) { api.diff(); }
        if (a == c) { api.same(); }
      }
    }
  )");
  EXPECT_EQ(E.callCount(R, "diff"), 0u);
  EXPECT_EQ(E.callCount(R, "same"), 1u);
}

//===----------------------------------------------------------------------===//
// TextTable details
//===----------------------------------------------------------------------===//

TEST(TableMisc, SeparatorsAndRaggedRows) {
  TextTable T;
  T.setHeader({"a", "bbbb", "c"});
  T.addRow({"1"});
  T.addSeparator();
  T.addRow({"22", "3", "4"});
  std::string Out = T.render();
  // Header underline + explicit separator = two dashed lines.
  size_t Dashes = 0, Pos = 0;
  while ((Pos = Out.find("\n--", Pos)) != std::string::npos) {
    ++Dashes;
    Pos += 3;
  }
  EXPECT_EQ(Dashes, 2u);
  EXPECT_NE(Out.find("22"), std::string::npos);
}

TEST(TableMisc, EmptyTableRendersNothing) {
  TextTable T;
  EXPECT_EQ(T.render(), "");
}

//===----------------------------------------------------------------------===//
// Parser recovery
//===----------------------------------------------------------------------===//

TEST(ParserMisc, RecoversAtClassBoundary) {
  DiagnosticSink Diags;
  auto M = Parser::parse("class Bad { def broken( } class Good { }", "t",
                         Diags);
  ASSERT_TRUE(M.has_value());
  EXPECT_TRUE(Diags.hasErrors());
  // The parser resynchronizes and still sees the second class.
  bool FoundGood = false;
  for (const ClassDecl &C : M->Classes)
    FoundGood |= C.Name == "Good";
  EXPECT_TRUE(FoundGood);
}

TEST(ParserMisc, DeeplyNestedExpressionsParse) {
  std::string Source = "class C { def m() { var x = a";
  for (int I = 0; I < 60; ++I)
    Source += ".f" + std::to_string(I) + "()";
  Source += "; } }";
  DiagnosticSink Diags;
  auto M = Parser::parse(Source, "t", Diags);
  EXPECT_TRUE(M.has_value());
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render();
}

//===----------------------------------------------------------------------===//
// Registry invariants
//===----------------------------------------------------------------------===//

TEST(RegistryMisc, StoresAlwaysHavePairedLoadsWithMatchingArity) {
  for (const LanguageProfile &P : {javaProfile(), pythonProfile()}) {
    for (const ApiClass &C : P.Registry.classes()) {
      for (const ApiMethod &M : C.Methods) {
        if (M.Semantics != MethodSemantics::Store)
          continue;
        EXPECT_GE(M.StorePos, 1u) << C.Name << "." << M.Name;
        EXPECT_LE(M.StorePos, M.Arity) << C.Name << "." << M.Name;
        EXPECT_FALSE(M.PairedLoads.empty()) << C.Name << "." << M.Name;
        for (const std::string &L : M.PairedLoads) {
          const ApiMethod *Load = C.findMethod(L, M.Arity - 1);
          ASSERT_NE(Load, nullptr)
              << C.Name << "." << M.Name << " pairs missing load " << L;
          EXPECT_TRUE(Load->Semantics == MethodSemantics::Load ||
                      Load->Semantics == MethodSemantics::StatelessGetter)
              << C.Name << "." << L;
        }
      }
    }
  }
}

TEST(RegistryMisc, ProducedClassesDeclareProducers) {
  for (const LanguageProfile &P : {javaProfile(), pythonProfile()})
    for (const ApiClass &C : P.Registry.classes())
      if (!C.Constructible) {
        EXPECT_FALSE(C.ProducerVar.empty()) << C.Name;
        EXPECT_FALSE(C.ProducerMethod.empty()) << C.Name;
      }
}

TEST(RegistryMisc, ConceptProducersResolveInRegistry) {
  for (const LanguageProfile &P : {javaProfile(), pythonProfile()})
    for (const Concept &C : P.Concepts)
      for (const Concept::Producer &Prod : C.Producers) {
        const ApiMethod *M =
            P.Registry.findUniqueMethod(Prod.Method, Prod.KeyArgs);
        EXPECT_NE(M, nullptr)
            << P.Name << ": producer " << Prod.Var << "." << Prod.Method
            << "/" << Prod.KeyArgs << " not judgeable";
      }
}
