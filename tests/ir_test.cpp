//===- ir_test.cpp - Tests for AST->IR lowering ------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Lowering.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

using namespace uspec;

namespace {

struct LoweredProgram {
  StringInterner Strings;
  IRProgram Program;
};

LoweredProgram lower(std::string_view Source) {
  LoweredProgram Result;
  DiagnosticSink Diags;
  auto P = parseAndLower(Source, "test", Result.Strings, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.render();
  if (P)
    Result.Program = std::move(*P);
  return Result;
}

/// Finds the first instruction of \p Kind in a flat list (does not recurse).
const Instr *findFirst(const InstrList &Body, Instr::Kind Kind) {
  for (const Instr &I : Body)
    if (I.TheKind == Kind)
      return &I;
  return nullptr;
}

} // namespace

TEST(Lowering, SimpleAllocAndCall) {
  auto L = lower(R"(
    class Main {
      def main() {
        var map = new Map();
        map.put("key", 1);
      }
    }
  )");
  ASSERT_EQ(L.Program.Classes.size(), 1u);
  const IRMethod &Main = L.Program.Classes[0].Methods[0];

  const Instr *Alloc = findFirst(Main.Body, Instr::Kind::Alloc);
  ASSERT_NE(Alloc, nullptr);
  EXPECT_EQ(L.Strings.str(Alloc->Name), "Map");
  EXPECT_GT(Alloc->SiteId, 0u);

  const Instr *Call = findFirst(Main.Body, Instr::Kind::Call);
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(L.Strings.str(Call->Name), "put");
  EXPECT_EQ(Call->Args.size(), 2u);
  EXPECT_GT(Call->SiteId, 0u);
  EXPECT_NE(Call->SiteId, Alloc->SiteId);
}

TEST(Lowering, SiteIdsAreUnique) {
  auto L = lower(R"(
    class Main {
      def main() {
        var a = api.m1();
        var b = api.m2("x");
        var c = new T();
        if (a != null) { api.m3(b, c); }
      }
    }
  )");
  // Walk all instructions recursively collecting site ids.
  std::vector<uint32_t> Sites;
  std::function<void(const InstrList &)> Walk = [&](const InstrList &Body) {
    for (const Instr &I : Body) {
      if (I.SiteId)
        Sites.push_back(I.SiteId);
      Walk(I.Inner1);
      // While.Inner2 is a copy of the condition instructions (same sites by
      // design); only If.Inner2 holds distinct code.
      if (I.TheKind == Instr::Kind::If)
        Walk(I.Inner2);
    }
  };
  for (const IRClass &C : L.Program.Classes)
    for (const IRMethod &M : C.Methods)
      Walk(M.Body);
  std::sort(Sites.begin(), Sites.end());
  EXPECT_EQ(std::adjacent_find(Sites.begin(), Sites.end()), Sites.end())
      << "duplicate site ids";
  EXPECT_EQ(Sites.size(), static_cast<size_t>(L.Program.NumSites));
}

TEST(Lowering, NestedCallArgumentsAreFlattened) {
  auto L = lower(R"(
    class Main {
      def main() {
        map.put(db.key(), db.getFile());
      }
    }
  )");
  const IRMethod &Main = L.Program.Classes[0].Methods[0];
  // Expect three calls in order: key, getFile, put (args evaluated first).
  std::vector<std::string> Names;
  for (const Instr &I : Main.Body)
    if (I.TheKind == Instr::Kind::Call)
      Names.push_back(L.Strings.str(I.Name));
  ASSERT_EQ(Names.size(), 3u);
  EXPECT_EQ(Names[0], "key");
  EXPECT_EQ(Names[1], "getFile");
  EXPECT_EQ(Names[2], "put");
}

TEST(Lowering, LiteralKindsAndInterning) {
  auto L = lower(R"(
    class Main { def main() { api.f("s", 42, null); } }
  )");
  const IRMethod &Main = L.Program.Classes[0].Methods[0];
  std::vector<const Instr *> Lits;
  for (const Instr &I : Main.Body)
    if (I.TheKind == Instr::Kind::Literal)
      Lits.push_back(&I);
  ASSERT_EQ(Lits.size(), 3u);
  EXPECT_EQ(Lits[0]->LitKind, LiteralKind::String);
  EXPECT_EQ(L.Strings.str(Lits[0]->StrValue), "s");
  EXPECT_EQ(Lits[1]->LitKind, LiteralKind::Int);
  EXPECT_EQ(L.Strings.str(Lits[1]->StrValue), "42");
  EXPECT_EQ(Lits[1]->IntValue, 42);
  EXPECT_EQ(Lits[2]->LitKind, LiteralKind::Null);
}

TEST(Lowering, GuardIdsAssignedInsideBranches) {
  auto L = lower(R"(
    class Main {
      def main() {
        api.outside();
        if (x()) {
          api.inside();
          while (y()) { api.nested(); }
        }
      }
    }
  )");
  const IRMethod &Main = L.Program.Classes[0].Methods[0];
  const Instr *Outside = findFirst(Main.Body, Instr::Kind::Call);
  ASSERT_NE(Outside, nullptr);
  EXPECT_EQ(Outside->GuardId, 0u);

  const Instr *If = findFirst(Main.Body, Instr::Kind::If);
  ASSERT_NE(If, nullptr);
  ASSERT_FALSE(If->Inner1.empty());
  const Instr *Inside = findFirst(If->Inner1, Instr::Kind::Call);
  ASSERT_NE(Inside, nullptr);
  EXPECT_EQ(Inside->GuardId, If->GuardId);

  const Instr *While = findFirst(If->Inner1, Instr::Kind::While);
  ASSERT_NE(While, nullptr);
  const Instr *Nested = findFirst(While->Inner1, Instr::Kind::Call);
  ASSERT_NE(Nested, nullptr);
  EXPECT_EQ(Nested->GuardId, While->GuardId);
  EXPECT_NE(Nested->GuardId, Inside->GuardId);
}

TEST(Lowering, InitConstructorIsCalledForProgramClasses) {
  auto L = lower(R"(
    class Box {
      var v;
      def init(x) { this.v = x; }
    }
    class Main {
      def main() { var b = new Box(42); }
    }
  )");
  const IRMethod &Main = L.Program.Classes[1].Methods[0];
  const Instr *Call = findFirst(Main.Body, Instr::Kind::Call);
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(L.Strings.str(Call->Name), "init");
  ASSERT_EQ(Call->Args.size(), 1u);
}

TEST(Lowering, NoInitCallForApiClasses) {
  auto L = lower("class Main { def main() { var m = new HashMap(); } }");
  const IRMethod &Main = L.Program.Classes[0].Methods[0];
  EXPECT_EQ(findFirst(Main.Body, Instr::Kind::Call), nullptr);
}

TEST(Lowering, FreeNamesBecomeExternals) {
  // Free names such as `db` in the paper's snippets denote external globals
  // holding unknown API objects; lowering registers them as externals.
  auto L = lower("class C { def m() { db.getFile(); db.close(); } }");
  const IRMethod &M = L.Program.Classes[0].Methods[0];
  ASSERT_EQ(M.Externals.size(), 1u);
  EXPECT_EQ(L.Strings.str(M.Externals[0].second), "db");
  // Both calls use the same slot.
  std::vector<VarId> Receivers;
  for (const Instr &I : M.Body)
    if (I.TheKind == Instr::Kind::Call)
      Receivers.push_back(I.Base);
  ASSERT_EQ(Receivers.size(), 2u);
  EXPECT_EQ(Receivers[0], Receivers[1]);
  EXPECT_EQ(Receivers[0], M.Externals[0].first);
}

TEST(Lowering, DeclaredVariablesAreNotExternals) {
  auto L = lower("class C { def m(p) { var x = p; x.use(); } }");
  EXPECT_TRUE(L.Program.Classes[0].Methods[0].Externals.empty());
}

TEST(Lowering, ParamsAndThisOccupyLowSlots) {
  auto L = lower("class C { def m(a, b) { var x = a; } }");
  const IRMethod &M = L.Program.Classes[0].Methods[0];
  EXPECT_EQ(M.NumParams, 2u);
  ASSERT_GE(M.VarNames.size(), 3u);
  EXPECT_EQ(M.VarNames[0], "this");
  EXPECT_EQ(M.VarNames[1], "a");
  EXPECT_EQ(M.VarNames[2], "b");
}

TEST(Lowering, FieldLoadStore) {
  auto L = lower(R"(
    class C {
      var f;
      def m(o) {
        this.f = o;
        var x = this.f;
      }
    }
  )");
  const IRMethod &M = L.Program.Classes[0].Methods[0];
  const Instr *Store = findFirst(M.Body, Instr::Kind::StoreField);
  ASSERT_NE(Store, nullptr);
  EXPECT_EQ(Store->Base, 0u); // this
  EXPECT_EQ(L.Strings.str(Store->Name), "f");
  const Instr *Load = findFirst(M.Body, Instr::Kind::LoadField);
  ASSERT_NE(Load, nullptr);
  EXPECT_EQ(Load->Base, 0u);
}

TEST(Lowering, DisassembleSmokeTest) {
  auto L = lower(R"(
    class Main {
      def main() {
        var map = new Map();
        map.put("k", 1);
        if (map.get("k") != null) { api.log("hit"); }
      }
    }
  )");
  std::string Text = disassemble(L.Program, L.Strings);
  EXPECT_NE(Text.find("alloc Map"), std::string::npos);
  EXPECT_NE(Text.find(".put("), std::string::npos);
  EXPECT_NE(Text.find("if"), std::string::npos);
}
