//===- retrecv_test.cpp - Tests for the experimental RetRecv pattern -----------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// §5.3 discusses extending the hypothesis class beyond RetSame/RetArg; this
// repository implements RetRecv ("a call may return its receiver" — builder
// APIs) end to end: spec type, matching, candidate collection, ghost
// semantics, ground truth, concrete runtime.
//
//===----------------------------------------------------------------------===//

#include "core/USpec.h"
#include "corpus/Generator.h"
#include "corpus/Profiles.h"
#include "runtime/Runtime.h"
#include "specs/SpecIO.h"

#include <gtest/gtest.h>

using namespace uspec;

TEST(RetRecv, SpecBasics) {
  StringInterner S;
  MethodId Append = {S.intern("StringBuilder"), S.intern("append"), 1};
  Spec Sp = Spec::retRecv(Append);
  EXPECT_EQ(Sp.str(S), "RetRecv(StringBuilder.append/1)");

  SpecSet Set;
  EXPECT_FALSE(Set.hasRetRecv(Append));
  Set.insert(Sp);
  EXPECT_TRUE(Set.hasRetRecv(Append));
  EXPECT_FALSE(Set.hasRetSame(Append));
  // RetRecv is not touched by the §5.4 closure.
  EXPECT_EQ(Set.extendConsistency(), 0u);
}

TEST(RetRecv, SerializationRoundTrip) {
  StringInterner S;
  SpecSet Set;
  Set.insert(Spec::retRecv({S.intern("StringBuilder"), S.intern("append"), 1}));
  std::string Text = serializeSpecs(Set, S);
  EXPECT_NE(Text.find("RetRecv(StringBuilder.append/1)"), std::string::npos);

  StringInterner S2;
  size_t ErrorLine = 0;
  SpecSet Parsed = parseSpecs(Text, S2, &ErrorLine);
  EXPECT_EQ(ErrorLine, 0u);
  EXPECT_TRUE(Parsed.hasRetRecv(
      {S2.intern("StringBuilder"), S2.intern("append"), 1}));
}

TEST(RetRecv, GroundTruth) {
  LanguageProfile P = javaProfile();
  StringInterner S;
  EXPECT_EQ(P.Registry.judgeSpec(
                Spec::retRecv(
                    {S.intern("StringBuilder"), S.intern("append"), 1}),
                S),
            SpecValidity::Valid);
  EXPECT_EQ(P.Registry.judgeSpec(
                Spec::retRecv({S.intern("HashMap"), S.intern("get"), 1}), S),
            SpecValidity::Invalid);
  // Fluent methods are also trivially RetSame-valid.
  EXPECT_EQ(P.Registry.judgeSpec(
                Spec::retSame(
                    {S.intern("StringBuilder"), S.intern("append"), 1}),
                S),
            SpecValidity::Valid);
}

TEST(RetRecv, ConcreteRuntimeReturnsReceiver) {
  LanguageProfile P = javaProfile();
  ApiHeap Heap(P.Registry);
  RtValue SB = Heap.allocObject("StringBuilder");
  const ApiMethod *Append =
      P.Registry.findClass("StringBuilder")->findMethod("append", 1);
  ASSERT_NE(Append, nullptr);
  RtValue Ret = Heap.callApi(SB, *Append, {RtValue::ofStr("x")});
  EXPECT_TRUE(Ret == SB);
}

TEST(RetRecv, AwareAnalysisChainsThroughBuilder) {
  // With RetRecv(append), a chained builder keeps one abstract object.
  constexpr const char *Src = R"(
    class Main {
      def main() {
        var sb = new StringBuilder();
        var x = sb.append("a");
        var y = x.append("b");
      }
    }
  )";
  StringInterner S;
  DiagnosticSink Diags;
  auto P = parseAndLower(Src, "t", S, Diags);
  ASSERT_TRUE(P.has_value());

  auto RetOf = [&](const AnalysisResult &R, const char *Name, int Occ) {
    int Found = 0;
    for (EventId E = 0; E < R.Events.size(); ++E) {
      const Event &Ev = R.Events.get(E);
      if (Ev.Kind == EventKind::ApiCall && Ev.Pos == PosRet &&
          S.str(Ev.Method.Name) == Name && Found++ == Occ)
        return E;
    }
    return InvalidEvent;
  };

  // Unaware: the two appends return distinct fresh objects.
  AnalysisResult R0 = analyzeProgram(*P, S, AnalysisOptions());
  EXPECT_FALSE(R0.retMayAlias(RetOf(R0, "append", 0), RetOf(R0, "append", 1)));

  // Aware with RetRecv(append): both return the builder.
  SpecSet Specs;
  Specs.insert(
      Spec::retRecv({S.intern("StringBuilder"), S.intern("append"), 1}));
  AnalysisOptions Aware;
  Aware.ApiAware = true;
  Aware.Specs = &Specs;
  AnalysisResult R1 = analyzeProgram(*P, S, Aware);
  EXPECT_TRUE(R1.retMayAlias(RetOf(R1, "append", 0), RetOf(R1, "append", 1)));
}

TEST(RetRecv, MatchingInducesRootToContinuationEdge) {
  constexpr const char *Src = R"(
    class Main {
      def main() {
        var sb = new StringBuilder();
        sb.append("a").append("b");
      }
    }
  )";
  StringInterner S;
  DiagnosticSink Diags;
  auto P = parseAndLower(Src, "t", S, Diags);
  ASSERT_TRUE(P.has_value());
  AnalysisResult R = analyzeProgram(*P, S, AnalysisOptions());
  EventGraph G = EventGraph::build(R);

  // First append: induced edge newStringBuilder -> second append's recv.
  const CallSite *First = nullptr;
  for (const CallSite &CS : G.callSites())
    if (S.str(CS.Method.Name) == "append" && !First)
      First = &CS;
  ASSERT_NE(First, nullptr);
  auto Edges = inducedRetRecv(G, *First);
  ASSERT_EQ(Edges.size(), 1u);
  EXPECT_EQ(G.event(Edges[0].first).Kind, EventKind::NewAlloc);
  const Event &To = G.event(Edges[0].second);
  EXPECT_EQ(S.str(To.Method.Name), "append");
  EXPECT_EQ(To.Pos, PosReceiver);
}

TEST(RetRecv, PipelineShowsModestResults) {
  // End-to-end reproduction of the §5.3 observation that additional
  // patterns give "modest results": RetRecv matches at *every* call site,
  // so its candidate pool is large and its selected precision falls well
  // below the RetSame/RetArg precision at the same threshold, while the
  // genuine builder spec does arise as a candidate.
  StringInterner S;
  LanguageProfile Profile = javaProfile();
  GeneratorConfig GenCfg;
  GenCfg.NumPrograms = 500;
  GenCfg.Seed = 0xF1;
  GeneratedCorpus Corpus = generateCorpus(Profile, GenCfg, S);
  LearnerConfig Cfg;
  Cfg.ExperimentalPatterns = true;
  USpecLearner Learner(S, Cfg);
  LearnResult Result = Learner.learn(Corpus.Programs);

  const ScoredCandidate *Append = nullptr;
  size_t RecvCandidates = 0, RecvSelected = 0, RecvSelectedValid = 0;
  size_t CoreSelected = 0, CoreSelectedValid = 0;
  for (const ScoredCandidate &C : Result.Candidates) {
    bool Valid =
        Profile.Registry.judgeSpec(C.S, S) == SpecValidity::Valid;
    bool Selected = C.Score >= 0.6;
    if (C.S.TheKind == Spec::Kind::RetRecv) {
      ++RecvCandidates;
      RecvSelected += Selected;
      RecvSelectedValid += Selected && Valid;
      if (C.S.str(S).find("append") != std::string::npos)
        Append = &C;
    } else {
      CoreSelected += Selected;
      CoreSelectedValid += Selected && Valid;
    }
  }
  ASSERT_NE(Append, nullptr) << "RetRecv(append) candidate must arise";
  EXPECT_GE(Append->Score, 0.25)
      << "the genuine builder pattern should carry some signal";
  // RetRecv candidates vastly outnumber valid builder APIs...
  EXPECT_GT(RecvCandidates, 20u);
  // ...and their selected precision is "modest" compared to the core
  // patterns at the same τ (or the pattern contributes nothing at all).
  ASSERT_GT(CoreSelected, 0u);
  double CorePrecision =
      static_cast<double>(CoreSelectedValid) / CoreSelected;
  if (RecvSelected > 0) {
    double RecvPrecision =
        static_cast<double>(RecvSelectedValid) / RecvSelected;
    EXPECT_LT(RecvPrecision, CorePrecision);
  }
}

TEST(RetRecv, DisabledByDefault) {
  StringInterner S;
  LanguageProfile Profile = javaProfile();
  GeneratorConfig GenCfg;
  GenCfg.NumPrograms = 120;
  GenCfg.Seed = 0xF2;
  GeneratedCorpus Corpus = generateCorpus(Profile, GenCfg, S);
  LearnerConfig Cfg; // ExperimentalPatterns defaults to false
  USpecLearner Learner(S, Cfg);
  LearnResult Result = Learner.learn(Corpus.Programs);
  for (const ScoredCandidate &C : Result.Candidates)
    EXPECT_NE(C.S.TheKind, Spec::Kind::RetRecv)
        << "RetRecv must not arise unless explicitly enabled";
}
