//===- telemetry_test.cpp - Tests for metrics registry + span tracer ------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Covers support/Telemetry.h (log2 histograms, shard merging, percentile
// exactness against uspec::percentile, the registry and its Prometheus
// renderer), support/Trace.h (trace JSON well-formedness, span nesting at 1
// and 8 threads, the disarmed zero-allocation fast path, artifact
// bit-identity with tracing on/off), and the service surface (stats JSON on
// large counters, the `metrics` verb, trace_id echo, the slow-request log).
// All suite names start with "Telemetry" so the TSan CI job picks them up.
//
//===----------------------------------------------------------------------===//

#include "core/USpec.h"
#include "corpus/Generator.h"
#include "corpus/Profiles.h"
#include "service/Server.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <future>
#include <new>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

using namespace uspec;
using namespace uspec::telemetry;

//===----------------------------------------------------------------------===//
// Allocation counting (for the disarmed zero-allocation contract)
//===----------------------------------------------------------------------===//

// Per-thread allocation tally: replacement global operator new bumps the
// calling thread's counter, so measurements are immune to background-thread
// allocations (gtest, other workers).
namespace {
thread_local size_t TlAllocs = 0;
} // namespace

void *operator new(std::size_t Size) {
  ++TlAllocs;
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t Size) {
  ++TlAllocs;
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}
// The nothrow forms must be replaced too: libstdc++'s stable_sort temporary
// buffer allocates through operator new(size_t, nothrow). Leaving that one to
// the default (ASan-intercepted) implementation while our operator delete
// frees with std::free trips ASan's alloc-dealloc-mismatch check.
void *operator new(std::size_t Size, const std::nothrow_t &) noexcept {
  ++TlAllocs;
  return std::malloc(Size ? Size : 1);
}
void *operator new[](std::size_t Size, const std::nothrow_t &) noexcept {
  ++TlAllocs;
  return std::malloc(Size ? Size : 1);
}
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }
void operator delete(void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}
void operator delete[](void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}

//===----------------------------------------------------------------------===//
// Shared corpus helpers
//===----------------------------------------------------------------------===//

namespace {

std::vector<IRProgram> makeCorpus(size_t N, uint64_t Seed,
                                  StringInterner &Strings) {
  LanguageProfile Profile = javaProfile();
  GeneratorConfig Cfg;
  Rng Rand(Seed);
  std::vector<IRProgram> Corpus;
  for (size_t I = 0; I < N; ++I) {
    std::string Src = generateProgramSource(Profile, Cfg, Rand);
    DiagnosticSink Diags;
    auto P = parseAndLower(Src, "p" + std::to_string(I), Strings, Diags);
    EXPECT_TRUE(P.has_value()) << Diags.render();
    if (P)
      Corpus.push_back(std::move(*P));
  }
  return Corpus;
}

/// Runs the full pipeline at \p Threads and returns the artifact bytes.
std::string learnArtifactBytes(unsigned Threads) {
  StringInterner Strings;
  std::vector<IRProgram> Corpus = makeCorpus(8, /*Seed=*/17, Strings);
  LearnerConfig Cfg;
  Cfg.Threads = Threads;
  USpecLearner Learner(Strings, Cfg);
  LearnResult Result = Learner.learn(Corpus);
  return Learner.saveArtifacts(Result);
}

} // namespace

//===----------------------------------------------------------------------===//
// Histogram buckets and percentiles
//===----------------------------------------------------------------------===//

TEST(TelemetryHistogram, BucketBoundaries) {
  EXPECT_EQ(histogramBucketFor(0), 0u);
  EXPECT_EQ(histogramBucketFor(1), 1u);
  EXPECT_EQ(histogramBucketFor(2), 2u);
  EXPECT_EQ(histogramBucketFor(3), 2u);
  EXPECT_EQ(histogramBucketFor(4), 3u);
  EXPECT_EQ(histogramBucketFor((1ull << 20) - 1), 20u);
  EXPECT_EQ(histogramBucketFor(1ull << 20), 21u);
  EXPECT_EQ(histogramBucketFor(~0ull), HistogramBuckets - 1);

  EXPECT_EQ(histogramBucketUpperBound(0), 0u);
  EXPECT_EQ(histogramBucketUpperBound(1), 1u);
  EXPECT_EQ(histogramBucketUpperBound(2), 3u);
  EXPECT_EQ(histogramBucketUpperBound(20), (1ull << 20) - 1);
  EXPECT_EQ(histogramBucketUpperBound(HistogramBuckets - 1), ~0ull);

  // Every value lands in the bucket whose range contains it.
  for (uint64_t V : {0ull, 1ull, 2ull, 7ull, 1000ull, 123456789ull}) {
    unsigned B = histogramBucketFor(V);
    EXPECT_LE(V, histogramBucketUpperBound(B));
    if (B > 0) {
      EXPECT_GT(V, histogramBucketUpperBound(B - 1));
    }
  }
}

TEST(TelemetryHistogram, CountSumMaxExact) {
  Histogram H;
  H.record(0);
  H.record(5);
  H.record(1000);
  HistogramSnapshot S;
  H.accumulate(S);
  EXPECT_EQ(S.Count, 3u);
  EXPECT_EQ(S.Sum, 1005u);
  EXPECT_EQ(S.Max, 1000u); // exact, not bucket-quantized
}

TEST(TelemetryHistogram, PercentileMatchesStatsNearestRank) {
  // The snapshot percentile (nearest rank over bucket upper bounds) must
  // agree exactly with uspec::percentile applied to the quantized samples.
  Rng Rand(42);
  Histogram H;
  std::vector<double> Quantized;
  for (int I = 0; I < 500; ++I) {
    uint64_t V = Rand.next() >> static_cast<unsigned>(Rand.range(0, 50));
    H.record(V);
    Quantized.push_back(static_cast<double>(
        histogramBucketUpperBound(histogramBucketFor(V))));
  }
  HistogramSnapshot S;
  H.accumulate(S);
  for (double Q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(static_cast<double>(S.percentileNs(Q)),
              percentile(Quantized, Q))
        << "Q=" << Q;
  }
}

TEST(TelemetryHistogram, SnapshotMergeAddsEverything) {
  Histogram A, B;
  A.record(1);
  A.record(100);
  B.record(7);
  B.record(1u << 30);
  HistogramSnapshot SA, SB;
  A.accumulate(SA);
  B.accumulate(SB);
  SA.merge(SB);

  HistogramSnapshot All;
  A.accumulate(All);
  B.accumulate(All);
  EXPECT_EQ(SA.Count, All.Count);
  EXPECT_EQ(SA.Sum, All.Sum);
  EXPECT_EQ(SA.Max, All.Max);
  EXPECT_EQ(SA.Buckets, All.Buckets);
}

TEST(TelemetryHistogram, ShardedRecordingFromManyThreads) {
  ShardedHistogram H;
  constexpr int ThreadCount = 8, PerThread = 10000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < ThreadCount; ++T)
    Threads.emplace_back([&H, T] {
      for (int I = 0; I < PerThread; ++I)
        H.record(static_cast<uint64_t>(T * PerThread + I));
    });
  for (std::thread &T : Threads)
    T.join();
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, static_cast<uint64_t>(ThreadCount * PerThread));
  EXPECT_EQ(S.Max, static_cast<uint64_t>(ThreadCount * PerThread - 1));
  uint64_t ExpectSum = 0;
  for (uint64_t V = 0; V < ThreadCount * PerThread; ++V)
    ExpectSum += V;
  EXPECT_EQ(S.Sum, ExpectSum);
}

TEST(TelemetryHistogram, RecordSecondsClampsNegativeToZero) {
  ShardedHistogram H;
  H.recordSeconds(-1.0);
  H.recordSeconds(0.0);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 2u);
  EXPECT_EQ(S.Buckets[0], 2u);
  EXPECT_EQ(S.Max, 0u);
}

//===----------------------------------------------------------------------===//
// Registry + Prometheus exposition
//===----------------------------------------------------------------------===//

TEST(TelemetryRegistry, ReRegistrationReturnsSameMetric) {
  MetricsRegistry R;
  Counter &A = R.counter("x_total", "help");
  Counter &B = R.counter("x_total");
  EXPECT_EQ(&A, &B);
  A.inc(3);
  EXPECT_EQ(B.value(), 3u);

  Gauge &G1 = R.gauge("g");
  Gauge &G2 = R.gauge("g");
  EXPECT_EQ(&G1, &G2);

  ShardedHistogram &H1 = R.histogram("h_seconds");
  ShardedHistogram &H2 = R.histogram("h_seconds");
  EXPECT_EQ(&H1, &H2);
}

TEST(TelemetryRegistry, RendersPrometheusExposition) {
  MetricsRegistry R;
  R.counter("uspec_test_total", "A test counter").inc(42);
  R.gauge("uspec_depth", "A level").set(-3);
  R.gaugeFn("uspec_computed", "Computed at render time", [] { return 2.5; });
  ShardedHistogram &H = R.histogram("uspec_lat_seconds", "A latency");
  H.record(1500); // 1.5us -> bucket 11, upper bound 2047ns
  std::string Text = R.renderPrometheus();

  EXPECT_NE(Text.find("# HELP uspec_test_total A test counter\n"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("# TYPE uspec_test_total counter\n"), std::string::npos);
  EXPECT_NE(Text.find("uspec_test_total 42\n"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE uspec_depth gauge\n"), std::string::npos);
  EXPECT_NE(Text.find("uspec_depth -3\n"), std::string::npos);
  EXPECT_NE(Text.find("uspec_computed 2.5\n"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE uspec_lat_seconds histogram\n"),
            std::string::npos);
  // Cumulative buckets in seconds, then +Inf, _sum, _count.
  EXPECT_NE(Text.find("uspec_lat_seconds_bucket{le=\""), std::string::npos);
  EXPECT_NE(Text.find("uspec_lat_seconds_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(Text.find("uspec_lat_seconds_count 1\n"), std::string::npos);
  EXPECT_NE(Text.find("uspec_lat_seconds_sum 1.5e-06\n"), std::string::npos)
      << Text;
  // Exposition ends with a newline (scrapers require it).
  ASSERT_FALSE(Text.empty());
  EXPECT_EQ(Text.back(), '\n');
}

TEST(TelemetryRegistry, HistogramBucketsAreCumulative) {
  MetricsRegistry R;
  ShardedHistogram &H = R.histogram("h_seconds");
  H.record(1); // bucket 1
  H.record(3); // bucket 2
  H.record(3); // bucket 2
  std::string Text = R.renderPrometheus();
  // Bucket for le=1ns holds 1 sample; le=3ns holds all 3 cumulatively.
  EXPECT_NE(Text.find("h_seconds_bucket{le=\"1e-09\"} 1\n"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("h_seconds_bucket{le=\"3e-09\"} 3\n"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("h_seconds_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// ServiceMetrics: stats JSON on large counters (regression: the old
// fixed-896-byte snprintf build truncated and produced invalid JSON)
//===----------------------------------------------------------------------===//

TEST(TelemetryServiceMetrics, StatsJsonSurvivesLargeCounters) {
  service::ServiceMetrics M;
  // Drive every counter to a 16-digit value straight through the registry.
  constexpr uint64_t Big = 1234567890123456ull;
  for (const char *Name :
       {"uspec_requests_admitted_total", "uspec_requests_completed_total",
        "uspec_requests_errored_total", "uspec_requests_overloaded_total",
        "uspec_requests_rejected_draining_total",
        "uspec_requests_deadline_exceeded_total", "uspec_worker_deaths_total",
        "uspec_cache_hits_total", "uspec_cache_misses_total"})
    M.registry().counter(Name).inc(Big);
  for (int I = 0; I < 200; ++I)
    M.recordCompleted(0.001 * I, /*Ok=*/true);

  service::AnalysisCache::Stats Cache;
  Cache.Entries = 123456789;
  Cache.Capacity = 987654321;
  Cache.Evictions = Big;
  std::string Json = M.json(64, 999999, 888888, Cache);

  service::JsonValue V;
  std::string Err;
  ASSERT_TRUE(service::parseJson(Json, V, &Err)) << Err << "\n" << Json;
  const service::JsonValue *Requests = V.find("requests");
  ASSERT_NE(Requests, nullptr);
  const service::JsonValue *Admitted = Requests->find("admitted");
  ASSERT_NE(Admitted, nullptr);
  EXPECT_EQ(Admitted->NumberValue, static_cast<double>(Big));
  const service::JsonValue *Lat = V.find("latency_ms");
  ASSERT_NE(Lat, nullptr);
  const service::JsonValue *Samples = Lat->find("samples");
  ASSERT_NE(Samples, nullptr);
  EXPECT_EQ(Samples->NumberValue, 200.0);
}

TEST(TelemetryServiceMetrics, P50ComesFromHistogram) {
  service::ServiceMetrics M;
  for (int I = 1; I <= 100; ++I)
    M.recordCompleted(0.001 * I, /*Ok=*/true);
  // Median ~50ms; the log2 quantization keeps it within its bucket's
  // [lower, upper] range, i.e. within a factor of 2.
  double P50 = M.p50LatencySeconds();
  EXPECT_GE(P50, 0.050);
  EXPECT_LE(P50, 0.100);
}

//===----------------------------------------------------------------------===//
// Trace sessions
//===----------------------------------------------------------------------===//

namespace {

/// Runs learn() under an in-memory trace session and returns the parsed
/// trace document.
service::JsonValue tracedLearnDoc(unsigned Threads) {
  trace::start();
  {
    StringInterner Strings;
    std::vector<IRProgram> Corpus = makeCorpus(8, /*Seed=*/17, Strings);
    LearnerConfig Cfg;
    Cfg.Threads = Threads;
    USpecLearner Learner(Strings, Cfg);
    Learner.learn(Corpus);
  }
  std::string Json = trace::stop();
  service::JsonValue Doc;
  std::string Err;
  EXPECT_TRUE(service::parseJson(Json, Doc, &Err)) << Err;
  return Doc;
}

const service::JsonValue *findEvent(const service::JsonValue &Doc,
                                    const std::string &Name) {
  const service::JsonValue *Events = Doc.find("traceEvents");
  if (!Events)
    return nullptr;
  for (const service::JsonValue &E : Events->Items) {
    const service::JsonValue *N = E.find("name");
    if (N && N->StringValue == Name)
      return &E;
  }
  return nullptr;
}

double numField(const service::JsonValue &E, const char *Key) {
  const service::JsonValue *V = E.find(Key);
  EXPECT_NE(V, nullptr) << Key;
  return V ? V->NumberValue : 0;
}

} // namespace

TEST(TelemetryTrace, LearnTraceIsWellFormedAndNested) {
  service::JsonValue Doc = tracedLearnDoc(/*Threads=*/2);
  const service::JsonValue *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  ASSERT_FALSE(Events->Items.empty());

  // Every event is a complete ("ph":"X") event with the required fields.
  for (const service::JsonValue &E : Events->Items) {
    const service::JsonValue *Ph = E.find("ph");
    ASSERT_NE(Ph, nullptr);
    EXPECT_EQ(Ph->StringValue, "X");
    EXPECT_NE(E.find("name"), nullptr);
    EXPECT_NE(E.find("pid"), nullptr);
    EXPECT_NE(E.find("tid"), nullptr);
    EXPECT_GE(numField(E, "ts"), 0.0);
    EXPECT_GE(numField(E, "dur"), 0.0);
  }

  // The phase spans nest inside the top-level learn span (same thread,
  // contained interval; 0.01us slack for the microsecond rounding).
  const service::JsonValue *Learn = findEvent(Doc, "learn");
  ASSERT_NE(Learn, nullptr);
  for (const char *Phase :
       {"learn.phase1_analyze", "learn.phase2_train", "learn.phase3_extract",
        "learn.phase4_score", "learn.phase5_select"}) {
    const service::JsonValue *E = findEvent(Doc, Phase);
    ASSERT_NE(E, nullptr) << Phase;
    EXPECT_EQ(numField(*E, "tid"), numField(*Learn, "tid")) << Phase;
    EXPECT_GE(numField(*E, "ts") + 0.01, numField(*Learn, "ts")) << Phase;
    EXPECT_LE(numField(*E, "ts") + numField(*E, "dur"),
              numField(*Learn, "ts") + numField(*Learn, "dur") + 0.01)
        << Phase;
  }

  // Per-program spans exist and carry their index argument.
  const service::JsonValue *Program = findEvent(Doc, "learn.program");
  ASSERT_NE(Program, nullptr);
  const service::JsonValue *Args = Program->find("args");
  ASSERT_NE(Args, nullptr);
  EXPECT_NE(Args->find("index"), nullptr);
}

TEST(TelemetryTrace, ThreadFanOutShowsInTids) {
  // One thread: every event carries the same tid.
  service::JsonValue Serial = tracedLearnDoc(/*Threads=*/1);
  std::set<double> SerialTids;
  for (const service::JsonValue &E :
       Serial.find("traceEvents")->Items)
    SerialTids.insert(numField(E, "tid"));
  EXPECT_EQ(SerialTids.size(), 1u);

  // Eight real threads recording concurrently: every thread gets its own
  // tid in the document. (learn() itself hands work out through an atomic
  // counter, so with a tiny corpus one fast worker may legally take every
  // program — spawning threads directly makes the fan-out deterministic.)
  trace::start();
  {
    std::vector<std::thread> Threads;
    for (int T = 0; T < 8; ++T)
      Threads.emplace_back([] { TraceSpan Span("telemetry.worker"); });
    for (std::thread &T : Threads)
      T.join();
  }
  service::JsonValue Parallel;
  {
    std::string Json = trace::stop();
    std::string Err;
    ASSERT_TRUE(service::parseJson(Json, Parallel, &Err)) << Err;
  }
  std::set<double> WorkerTids;
  for (const service::JsonValue &E :
       Parallel.find("traceEvents")->Items) {
    const service::JsonValue *N = E.find("name");
    if (N && N->StringValue == "telemetry.worker")
      WorkerTids.insert(numField(E, "tid"));
  }
  EXPECT_EQ(WorkerTids.size(), 8u);
}

TEST(TelemetryTrace, EventsSortedByStartTime) {
  service::JsonValue Doc = tracedLearnDoc(/*Threads=*/2);
  const service::JsonValue *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  double Prev = -1;
  for (const service::JsonValue &E : Events->Items) {
    double Ts = numField(E, "ts");
    EXPECT_GE(Ts, Prev);
    Prev = Ts;
  }
}

TEST(TelemetryTrace, StopWithoutSessionYieldsEmptyDocument) {
  ASSERT_FALSE(trace::enabled());
  std::string Json = trace::stop();
  service::JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(service::parseJson(Json, Doc, &Err)) << Err;
  const service::JsonValue *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  EXPECT_TRUE(Events->Items.empty());
}

TEST(TelemetryTrace, RestartedSessionDropsOldEvents) {
  trace::start();
  { TraceSpan Span("telemetry.first"); }
  trace::stop();
  trace::start();
  { TraceSpan Span("telemetry.second"); }
  std::string Json = trace::stop();
  EXPECT_EQ(Json.find("telemetry.first"), std::string::npos);
  EXPECT_NE(Json.find("telemetry.second"), std::string::npos);
}

TEST(TelemetryTrace, DisarmedSpanAllocatesNothing) {
  ASSERT_FALSE(trace::enabled());
  size_t Before = TlAllocs;
  for (int I = 0; I < 1000; ++I) {
    TraceSpan Span("telemetry.disarmed");
    if (Span.active())
      Span.arg("k", std::to_string(I)); // never taken: guard keeps it free
  }
  EXPECT_EQ(TlAllocs, Before);
}

TEST(TelemetryDeterminism, ArtifactsBitIdenticalWithTracingOnOrOff) {
  // The determinism contract: tracing observes, never perturbs. The learned
  // artifact must be byte-identical with tracing on or off, serial or
  // parallel.
  std::string Plain1 = learnArtifactBytes(/*Threads=*/1);
  std::string Plain8 = learnArtifactBytes(/*Threads=*/8);
  trace::start();
  std::string Traced1 = learnArtifactBytes(/*Threads=*/1);
  trace::stop();
  trace::start();
  std::string Traced8 = learnArtifactBytes(/*Threads=*/8);
  trace::stop();
  ASSERT_FALSE(Plain1.empty());
  EXPECT_EQ(Plain1, Plain8);
  EXPECT_EQ(Plain1, Traced1);
  EXPECT_EQ(Plain1, Traced8);
}

//===----------------------------------------------------------------------===//
// Service surface: metrics verb, trace_id echo, slow-request log
//===----------------------------------------------------------------------===//

namespace {
const char *SpecsRequest = "{\"verb\":\"specs\"}";
} // namespace

TEST(TelemetryService, MetricsVerbRendersPrometheus) {
  service::ServerConfig Cfg;
  Cfg.Workers = 1;
  service::Server S(Cfg, service::ServiceSpecs());
  S.handle(SpecsRequest); // complete one request so the histograms have data

  std::string R = S.handle("{\"id\":1,\"verb\":\"metrics\"}");
  service::JsonValue V;
  std::string Err;
  ASSERT_TRUE(service::parseJson(R, V, &Err)) << Err << "\n" << R;
  const service::JsonValue *Ok = V.find("ok");
  ASSERT_NE(Ok, nullptr);
  EXPECT_TRUE(Ok->BoolValue);
  const service::JsonValue *Result = V.find("result");
  ASSERT_NE(Result, nullptr);
  ASSERT_TRUE(Result->isString());
  const std::string &Text = Result->StringValue;
  EXPECT_NE(Text.find("# TYPE uspec_request_latency_seconds histogram"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("# TYPE uspec_queue_wait_seconds histogram"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE uspec_analyze_seconds histogram"),
            std::string::npos);
  EXPECT_NE(Text.find("uspec_requests_admitted_total "), std::string::npos);
  EXPECT_NE(Text.find("uspec_queue_wait_seconds_count "), std::string::npos);
  EXPECT_NE(Text.find("uspec_workers 1"), std::string::npos);
  EXPECT_NE(Text.find("uspec_queue_capacity "), std::string::npos);
  S.drain();
}

TEST(TelemetryService, QueueWaitAndLatencyHistogramsRecord) {
  service::ServerConfig Cfg;
  Cfg.Workers = 2;
  service::Server S(Cfg, service::ServiceSpecs());
  for (int I = 0; I < 5; ++I)
    S.handle(SpecsRequest);
  // Workers record the latency sample after answering the client, so only
  // drain() (which joins them) makes all five samples visible.
  S.drain();
  telemetry::MetricsRegistry &R = S.metrics().registry();
  EXPECT_GE(R.histogram("uspec_queue_wait_seconds").snapshot().Count, 5u);
  EXPECT_GE(R.histogram("uspec_request_latency_seconds").snapshot().Count,
            5u);
}

TEST(TelemetryService, TraceIdEchoedVerbatim) {
  service::ServerConfig Cfg;
  Cfg.Workers = 1;
  service::Server S(Cfg, service::ServiceSpecs());

  std::string R =
      S.handle("{\"id\":5,\"verb\":\"specs\",\"trace_id\":\"abc-123\"}");
  EXPECT_EQ(R.rfind("{\"id\":5,\"trace_id\":\"abc-123\",\"ok\":true,", 0), 0u)
      << R;

  // Requests without a trace_id keep the exact pre-PR envelope bytes (the
  // service_test byte-identity suite depends on this).
  std::string Plain = S.handle("{\"id\":6,\"verb\":\"specs\"}");
  EXPECT_EQ(Plain.find("trace_id"), std::string::npos);
  EXPECT_EQ(Plain.rfind("{\"id\":6,\"ok\":true,", 0), 0u) << Plain;
  S.drain();
}

TEST(TelemetryService, SlowRequestLogTriggers) {
  service::ServerConfig Cfg;
  Cfg.Workers = 1;
  Cfg.EnableTestVerbs = true;
  Cfg.SlowRequestMs = 1;
  std::ostringstream Log;
  Cfg.SlowLog = &Log;
  service::Server S(Cfg, service::ServiceSpecs());

  auto Parked =
      S.submit("{\"id\":3,\"verb\":\"test_block\",\"trace_id\":\"t1\"}");
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  S.releaseTestGate();
  EXPECT_NE(Parked.get().find("\"ok\":true"), std::string::npos);
  S.drain();

  std::string Line = Log.str();
  EXPECT_NE(Line.find("uspec-slow verb=test_block"), std::string::npos)
      << Line;
  EXPECT_NE(Line.find("total_ms="), std::string::npos);
  EXPECT_NE(Line.find("queue_ms="), std::string::npos);
  EXPECT_NE(Line.find("ok=true"), std::string::npos);
  EXPECT_NE(Line.find("id=3"), std::string::npos);
  EXPECT_NE(Line.find("trace_id=t1"), std::string::npos);
}

TEST(TelemetryService, SlowLogDisabledByDefault) {
  service::ServerConfig Cfg;
  Cfg.Workers = 1;
  Cfg.EnableTestVerbs = true; // SlowRequestMs stays 0 (disabled)
  std::ostringstream Log;
  Cfg.SlowLog = &Log;
  service::Server S(Cfg, service::ServiceSpecs());

  auto Parked = S.submit("{\"verb\":\"test_block\"}");
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  S.releaseTestGate();
  Parked.get();
  S.drain();
  EXPECT_TRUE(Log.str().empty()) << Log.str();
}

TEST(TelemetryService, StatsShapeUnchangedByMetricsRefactor) {
  // The stats verb keeps its exact field set (clients parse it).
  service::ServerConfig Cfg;
  Cfg.Workers = 1;
  service::Server S(Cfg, service::ServiceSpecs());
  S.handle(SpecsRequest);
  std::string R = S.handle("{\"verb\":\"stats\"}");
  service::JsonValue V;
  std::string Err;
  ASSERT_TRUE(service::parseJson(R, V, &Err)) << Err;
  const service::JsonValue *Result = V.find("result");
  ASSERT_NE(Result, nullptr);
  for (const char *Key : {"uptime_seconds", "workers", "queue_depth",
                          "queue_capacity", "requests", "worker_deaths",
                          "qps", "cache", "model", "latency_ms"})
    EXPECT_NE(Result->find(Key), nullptr) << Key;
  const service::JsonValue *Model = Result->find("model");
  ASSERT_NE(Model, nullptr);
  for (const char *Key : {"generation", "checksum", "specs", "reloads"})
    EXPECT_NE(Model->find(Key), nullptr) << Key;
  const service::JsonValue *Lat = Result->find("latency_ms");
  ASSERT_NE(Lat, nullptr);
  EXPECT_NE(Lat->find("p50"), nullptr);
  EXPECT_NE(Lat->find("p95"), nullptr);
  EXPECT_NE(Lat->find("samples"), nullptr);
  S.drain();
}
