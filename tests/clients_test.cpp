//===- clients_test.cpp - Tests for the type-state and taint clients ----------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// These reproduce the Fig. 8 scenarios: the API-unaware analysis produces a
// type-state false positive and a taint false negative which the API-aware
// analysis (with the respective RetSame/RetArg specs) eliminates.
//
//===----------------------------------------------------------------------===//

#include "clients/Taint.h"
#include "clients/Typestate.h"
#include "ir/Lowering.h"

#include <gtest/gtest.h>

using namespace uspec;

namespace {

struct ClientFixture {
  StringInterner Strings;
  IRProgram Program;
  SpecSet Specs;

  AnalysisResult analyze(std::string_view Source, bool Aware) {
    DiagnosticSink Diags;
    auto P = parseAndLower(Source, "client", Strings, Diags);
    EXPECT_TRUE(P.has_value()) << Diags.render();
    Program = std::move(*P);
    AnalysisOptions Options;
    if (Aware) {
      Options.ApiAware = true;
      Options.Specs = &Specs;
      Options.CoverageExtension = true;
    }
    return analyzeProgram(Program, Strings, Options);
  }
};

/// Fig. 8a in MiniLang: repeated list.get(i) receivers.
constexpr const char *Fig8a = R"(
  class Main {
    def main() {
      var iters = new ArrayList();
      var i = 0;
      if (iters.get(i).hasNext()) {
        someMethod.call(iters.get(i).next());
      }
    }
  }
)";

/// Fig. 8b in MiniLang: kwargs flow through setdefault / subscript.
constexpr const char *Fig8b = R"(
  class Main {
    def call() {
      var kwargs = new Dict();
      kwargs.setdefault("data-value", request.input("value"));
      var w = kwargs.SubscriptLoad("data-value");
      html.render(w);
    }
  }
)";

} // namespace

//===----------------------------------------------------------------------===//
// Type-state (Fig. 8a)
//===----------------------------------------------------------------------===//

TEST(TypestateClient, UnawareAnalysisFalsePositive) {
  ClientFixture F;
  AnalysisResult R = F.analyze(Fig8a, /*Aware=*/false);
  auto Warnings =
      checkTypestate(R, F.Strings, {"hasNext", "next"});
  EXPECT_FALSE(Warnings.empty())
      << "without List.get aliasing, the check is lost (false positive)";
}

TEST(TypestateClient, AwareAnalysisVerifiesProtocol) {
  ClientFixture F;
  // RetSame(ArrayList.get): the spec USpec learns for Fig. 8a.
  F.Specs.insert(Spec::retSame(
      {F.Strings.intern("ArrayList"), F.Strings.intern("get"), 1}));
  AnalysisResult R = F.analyze(Fig8a, /*Aware=*/true);
  auto Warnings =
      checkTypestate(R, F.Strings, {"hasNext", "next"});
  EXPECT_TRUE(Warnings.empty())
      << "RetSame(get) merges the receivers; the protocol verifies";
}

TEST(TypestateClient, RealViolationStillReported) {
  // next() without any hasNext() must warn in both modes.
  constexpr const char *Bad = R"(
    class Main {
      def main() {
        var it = coll.iterator();
        it.next();
      }
    }
  )";
  ClientFixture F;
  AnalysisResult R = F.analyze(Bad, /*Aware=*/false);
  EXPECT_FALSE(checkTypestate(R, F.Strings, {"hasNext", "next"}).empty());
}

TEST(TypestateClient, UseConsumesCheck) {
  // Two next() calls after one hasNext(): the second is unchecked.
  constexpr const char *Twice = R"(
    class Main {
      def main() {
        var it = coll.iterator();
        if (it.hasNext()) {
          it.next();
          it.next();
        }
      }
    }
  )";
  ClientFixture F;
  AnalysisResult R = F.analyze(Twice, /*Aware=*/false);
  auto Warnings = checkTypestate(R, F.Strings, {"hasNext", "next"});
  EXPECT_EQ(Warnings.size(), 1u);
}

TEST(TypestateClient, CheckedUseIsClean) {
  constexpr const char *Good = R"(
    class Main {
      def main() {
        var it = coll.iterator();
        while (it.hasNext()) {
          it.next();
        }
      }
    }
  )";
  ClientFixture F;
  AnalysisResult R = F.analyze(Good, /*Aware=*/false);
  EXPECT_TRUE(checkTypestate(R, F.Strings, {"hasNext", "next"}).empty());
}

//===----------------------------------------------------------------------===//
// Taint (Fig. 8b)
//===----------------------------------------------------------------------===//

namespace {

TaintConfig webConfig() {
  TaintConfig Config;
  Config.Sources = {"input"};
  Config.Sinks = {"render"};
  Config.Sanitizers = {"escape"};
  return Config;
}

} // namespace

TEST(TaintClient, UnawareAnalysisFalseNegative) {
  ClientFixture F;
  AnalysisResult R = F.analyze(Fig8b, /*Aware=*/false);
  EXPECT_TRUE(checkTaint(R, F.Strings, webConfig()).empty())
      << "without the Dict spec the flow is invisible (false negative)";
}

TEST(TaintClient, AwareAnalysisFindsTheFlow) {
  ClientFixture F;
  // RetArg(Dict.SubscriptLoad, Dict.setdefault, 2) — what USpec learns.
  MethodId LoadM = {F.Strings.intern("Dict"),
                    F.Strings.intern("SubscriptLoad"), 1};
  MethodId SetDefault = {F.Strings.intern("Dict"),
                         F.Strings.intern("setdefault"), 2};
  F.Specs.insert(Spec::retArg(LoadM, SetDefault, 2));
  F.Specs.insert(Spec::retSame(LoadM));
  AnalysisResult R = F.analyze(Fig8b, /*Aware=*/true);
  auto Findings = checkTaint(R, F.Strings, webConfig());
  ASSERT_EQ(Findings.size(), 1u)
      << "the XSS flow must be found with the learned spec";
}

TEST(TaintClient, DirectFlowFoundInBothModes) {
  constexpr const char *Direct = R"(
    class Main {
      def call() {
        var v = request.input("value");
        html.render(v);
      }
    }
  )";
  ClientFixture F;
  AnalysisResult R = F.analyze(Direct, /*Aware=*/false);
  EXPECT_EQ(checkTaint(R, F.Strings, webConfig()).size(), 1u);
}

TEST(TaintClient, SanitizerClearsTaint) {
  constexpr const char *Sanitized = R"(
    class Main {
      def call() {
        var v = request.input("value");
        esc.escape(v);
        html.render(v);
      }
    }
  )";
  ClientFixture F;
  AnalysisResult R = F.analyze(Sanitized, /*Aware=*/false);
  EXPECT_TRUE(checkTaint(R, F.Strings, webConfig()).empty());
}

TEST(TaintClient, UntaintedValuesAreClean) {
  constexpr const char *Clean = R"(
    class Main {
      def call() {
        var v = cfg.lookup("title");
        html.render(v);
      }
    }
  )";
  ClientFixture F;
  AnalysisResult R = F.analyze(Clean, /*Aware=*/false);
  EXPECT_TRUE(checkTaint(R, F.Strings, webConfig()).empty());
}
