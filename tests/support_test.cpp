//===- support_test.cpp - Tests for the support library ---------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/FlatMap.h"
#include "support/Hashing.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/StringInterner.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

using namespace uspec;

//===----------------------------------------------------------------------===//
// StringInterner
//===----------------------------------------------------------------------===//

TEST(StringInterner, EmptyStringIsSymbolZero) {
  StringInterner Strings;
  EXPECT_TRUE(Strings.intern("").isEmpty());
  EXPECT_EQ(Strings.str(Symbol()), "");
}

TEST(StringInterner, InterningIsIdempotent) {
  StringInterner Strings;
  Symbol A = Strings.intern("getFile");
  Symbol B = Strings.intern("getFile");
  EXPECT_EQ(A, B);
  EXPECT_EQ(Strings.str(A), "getFile");
}

TEST(StringInterner, DistinctStringsGetDistinctSymbols) {
  StringInterner Strings;
  Symbol A = Strings.intern("put");
  Symbol B = Strings.intern("get");
  EXPECT_NE(A, B);
  EXPECT_EQ(Strings.str(A), "put");
  EXPECT_EQ(Strings.str(B), "get");
}

TEST(StringInterner, ManySymbolsRemainStable) {
  StringInterner Strings;
  std::vector<Symbol> Symbols;
  for (int I = 0; I < 1000; ++I)
    Symbols.push_back(Strings.intern("name" + std::to_string(I)));
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(Strings.str(Symbols[I]), "name" + std::to_string(I));
  EXPECT_EQ(Strings.size(), 1001u); // + empty string
}

TEST(StringInterner, SymbolIsHashable) {
  StringInterner Strings;
  std::unordered_set<Symbol> Set;
  Set.insert(Strings.intern("a"));
  Set.insert(Strings.intern("b"));
  Set.insert(Strings.intern("a"));
  EXPECT_EQ(Set.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

TEST(Hashing, Mix64IsDeterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(Hashing, HashCombineIsOrderSensitive) {
  EXPECT_NE(hashCombine(hashCombine(0, 1), 2),
            hashCombine(hashCombine(0, 2), 1));
}

TEST(Hashing, HashStringMatchesContentNotIdentity) {
  std::string A = "hello";
  std::string B = "hello";
  EXPECT_EQ(hashString(A), hashString(B));
  EXPECT_NE(hashString("hello"), hashString("hellp"));
}

TEST(Hashing, HashValuesVariadic) {
  EXPECT_EQ(hashValues(1, 2, 3), hashValues(1, 2, 3));
  EXPECT_NE(hashValues(1, 2, 3), hashValues(3, 2, 1));
  EXPECT_NE(hashValues(1, 2), hashValues(1, 2, 0));
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(Rng, DeterministicFromSeed) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 5);
}

TEST(Rng, BelowStaysInBounds) {
  Rng R(7);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng R(7);
  std::set<int64_t> Seen;
  for (int I = 0; I < 10000; ++I) {
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 7u); // all values hit
}

TEST(Rng, RealInUnitInterval) {
  Rng R(9);
  for (int I = 0; I < 10000; ++I) {
    double V = R.real();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng R(11);
  int Hits = 0;
  for (int I = 0; I < 100000; ++I)
    Hits += R.chance(0.3);
  EXPECT_NEAR(Hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng R(13);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0);
  EXPECT_DOUBLE_EQ(mean({2, 4}), 3);
}

TEST(Stats, TopKMeanTakesLargest) {
  std::vector<double> V = {0.1, 0.9, 0.5, 0.8};
  EXPECT_DOUBLE_EQ(topKMean(V, 2), (0.9 + 0.8) / 2);
  // Fewer elements than K: plain mean.
  EXPECT_DOUBLE_EQ(topKMean(V, 10), mean(V));
  EXPECT_DOUBLE_EQ(topKMean({}, 10), 0);
}

TEST(Stats, PercentileNearestRank) {
  std::vector<double> V = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(V, 0.0), 1);
  EXPECT_DOUBLE_EQ(percentile(V, 0.95), 10);
  EXPECT_DOUBLE_EQ(percentile(V, 0.5), 6);
}

TEST(Stats, MaxValue) {
  EXPECT_DOUBLE_EQ(maxValue({}), 0);
  EXPECT_DOUBLE_EQ(maxValue({0.2, 0.7, 0.1}), 0.7);
}

TEST(Stats, PrecisionRecallCounters) {
  PrecisionRecall PR;
  PR.record(/*IsValid=*/true, /*IsSelected=*/true);   // TP
  PR.record(/*IsValid=*/false, /*IsSelected=*/true);  // FP
  PR.record(/*IsValid=*/true, /*IsSelected=*/false);  // FN
  PR.record(/*IsValid=*/false, /*IsSelected=*/false); // TN
  EXPECT_DOUBLE_EQ(PR.precision(), 0.5);
  EXPECT_DOUBLE_EQ(PR.recall(), 0.5);
  EXPECT_DOUBLE_EQ(PR.f1(), 0.5);
}

TEST(Stats, PrecisionRecallEmptyConventions) {
  PrecisionRecall PR;
  EXPECT_DOUBLE_EQ(PR.precision(), 1.0);
  EXPECT_DOUBLE_EQ(PR.recall(), 1.0);
}

//===----------------------------------------------------------------------===//
// TextTable
//===----------------------------------------------------------------------===//

TEST(TextTable, RendersAlignedColumns) {
  TextTable T;
  T.setHeader({"spec", "score"});
  T.addRow({"RetSame(get)", "0.99"});
  T.addRow({"x", "1"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("spec"), std::string::npos);
  EXPECT_NE(Out.find("RetSame(get)  0.99"), std::string::npos);
}

TEST(TextTable, FormatReal) {
  EXPECT_EQ(TextTable::formatReal(0.12345, 3), "0.123");
  EXPECT_EQ(TextTable::formatReal(2.0, 1), "2.0");
}

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena A(64); // tiny first slab to force growth
  uint32_t *P1 = A.allocArray<uint32_t>(8);
  uint64_t *P2 = A.allocArray<uint64_t>(8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P2) % alignof(uint64_t), 0u);
  for (int I = 0; I < 8; ++I)
    P1[I] = 0x11111111u * (I + 1);
  for (int I = 0; I < 8; ++I)
    P2[I] = ~uint64_t(0);
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(P1[I], 0x11111111u * (I + 1));
}

TEST(Arena, GrowsAcrossSlabs) {
  Arena A(64);
  // Allocate far past the first slab; every byte must stay addressable.
  std::vector<unsigned char *> Ptrs;
  for (int I = 0; I < 100; ++I) {
    unsigned char *P = A.allocArray<unsigned char>(40);
    std::memset(P, I, 40);
    Ptrs.push_back(P);
  }
  for (int I = 0; I < 100; ++I)
    for (int J = 0; J < 40; ++J)
      EXPECT_EQ(Ptrs[I][J], static_cast<unsigned char>(I));
  EXPECT_GE(A.bytesReserved(), A.bytesUsed());
  EXPECT_GE(A.bytesUsed(), size_t(100 * 40));
}

TEST(Arena, ResetReusesSlabsWithoutShrinking) {
  Arena A(64);
  for (int I = 0; I < 100; ++I)
    A.allocArray<uint64_t>(16);
  size_t Reserved = A.bytesReserved();
  A.reset();
  EXPECT_EQ(A.bytesUsed(), 0u);
  EXPECT_EQ(A.bytesReserved(), Reserved);
  // Refill: no new slab needed for the same workload.
  for (int I = 0; I < 100; ++I)
    A.allocArray<uint64_t>(16);
  EXPECT_EQ(A.bytesReserved(), Reserved);
}

TEST(Arena, ZeroedArrayIsZero) {
  Arena A;
  uint64_t *P = A.allocArrayZeroed<uint64_t>(64);
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(P[I], 0u);
}

//===----------------------------------------------------------------------===//
// FlatMap64 / FlatSet64
//===----------------------------------------------------------------------===//

TEST(FlatMap64, GetOrCreateFindRoundTrip) {
  FlatMap64<uint32_t> M;
  for (uint64_t K = 1; K <= 1000; ++K)
    M.getOrCreate(K * 0x9e3779b9ULL) = static_cast<uint32_t>(K);
  EXPECT_EQ(M.size(), 1000u);
  for (uint64_t K = 1; K <= 1000; ++K) {
    const uint32_t *V = M.find(K * 0x9e3779b9ULL);
    ASSERT_NE(V, nullptr);
    EXPECT_EQ(*V, static_cast<uint32_t>(K));
  }
  EXPECT_EQ(M.find(0xdeadbeefULL), nullptr);
}

TEST(FlatMap64, InsertedFlagDistinguishesNewKeys) {
  FlatMap64<int> M;
  bool Inserted = false;
  M.getOrCreate(42, &Inserted) = 7;
  EXPECT_TRUE(Inserted);
  int &V = M.getOrCreate(42, &Inserted);
  EXPECT_FALSE(Inserted);
  EXPECT_EQ(V, 7);
}

TEST(FlatMap64, ZeroKeyIsAValidKey) {
  FlatMap64<int> M;
  M.getOrCreate(0) = 99;
  const int *V = M.find(0);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(*V, 99);
  EXPECT_EQ(M.size(), 1u);
}

TEST(FlatMap64, ForEachVisitsEveryEntryOnce) {
  FlatMap64<uint64_t> M;
  for (uint64_t K = 1; K <= 257; ++K)
    M.getOrCreate(K) = K * 2;
  std::set<uint64_t> Keys;
  uint64_t Sum = 0;
  M.forEach([&](uint64_t K, uint64_t V) {
    EXPECT_EQ(V, K * 2);
    Keys.insert(K);
    Sum += V;
  });
  EXPECT_EQ(Keys.size(), 257u);
  EXPECT_EQ(Sum, 257u * 258u); // 2 * (1 + ... + 257)
}

TEST(FlatSet64, InsertReportsNewness) {
  FlatSet64 S;
  EXPECT_TRUE(S.insert(5));
  EXPECT_FALSE(S.insert(5));
  EXPECT_TRUE(S.insert(6));
  EXPECT_TRUE(S.contains(5));
  EXPECT_FALSE(S.contains(7));
  // Survives growth.
  for (uint64_t K = 100; K < 600; ++K)
    EXPECT_TRUE(S.insert(K));
  for (uint64_t K = 100; K < 600; ++K)
    EXPECT_FALSE(S.insert(K));
  EXPECT_TRUE(S.contains(5));
}

//===----------------------------------------------------------------------===//
// hashBytesWide
//===----------------------------------------------------------------------===//

TEST(Hashing, HashBytesWideMatchesContentNotIdentity) {
  std::string A = "interned-string-one";
  std::string B = "interned-string-one";
  EXPECT_EQ(hashBytesWide(A), hashBytesWide(B));
  EXPECT_NE(hashBytesWide("interned-string-one"),
            hashBytesWide("interned-string-two"));
}

TEST(Hashing, HashBytesWideLengthSensitive) {
  // Tail bytes must not collide with the 8-byte-padded prefix.
  EXPECT_NE(hashBytesWide(std::string_view("abc")),
            hashBytesWide(std::string_view("abc\0", 4)));
  EXPECT_NE(hashBytesWide(""), hashBytesWide(std::string_view("\0", 1)));
}

TEST(Hashing, HashBytesWideCoversAllLengths) {
  // Every length 0..32 hashes distinctly for a fixed alphabet (smoke test
  // for the word-at-a-time loop + tail handling).
  std::string S = "abcdefghijklmnopqrstuvwxyzABCDEF";
  std::set<uint64_t> Seen;
  for (size_t N = 0; N <= S.size(); ++N)
    Seen.insert(hashBytesWide(std::string_view(S.data(), N)));
  EXPECT_EQ(Seen.size(), S.size() + 1);
}
