//===- dedup_test.cpp - Tests for corpus deduplication (§7.1) ------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Dedup.h"
#include "corpus/Generator.h"
#include "corpus/Profiles.h"
#include "ir/Lowering.h"

#include <gtest/gtest.h>

using namespace uspec;

namespace {

IRProgram lower(StringInterner &S, const std::string &Source,
                const std::string &Name = "p") {
  DiagnosticSink Diags;
  auto P = parseAndLower(Source, Name, S, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.render();
  return std::move(*P);
}

} // namespace

TEST(Dedup, IdenticalProgramsShareFingerprint) {
  StringInterner S;
  const char *Src = "class Main { def main() { var m = new Map(); "
                    "m.put(\"k\", 1); } }";
  IRProgram A = lower(S, Src, "a");
  IRProgram B = lower(S, Src, "b"); // different module name, same structure
  EXPECT_EQ(programFingerprint(A), programFingerprint(B));
}

TEST(Dedup, CommentsAndWhitespaceDoNotDefeatDedup) {
  StringInterner S;
  IRProgram A =
      lower(S, "class Main { def main() { var m = new Map(); } }");
  IRProgram B = lower(S, "class Main {\n  // forked copy\n  def main() {\n"
                         "    var m = new Map();\n  }\n}");
  EXPECT_EQ(programFingerprint(A), programFingerprint(B));
}

TEST(Dedup, StructuralDifferencesChangeFingerprint) {
  StringInterner S;
  IRProgram Base =
      lower(S, "class Main { def main() { var m = new Map(); m.put(\"k\", 1); } }");
  // Different literal.
  EXPECT_NE(programFingerprint(Base),
            programFingerprint(lower(
                S, "class Main { def main() { var m = new Map(); "
                   "m.put(\"k\", 2); } }")));
  // Different method.
  EXPECT_NE(programFingerprint(Base),
            programFingerprint(lower(
                S, "class Main { def main() { var m = new Map(); "
                   "m.set(\"k\", 1); } }")));
  // Different class.
  EXPECT_NE(programFingerprint(Base),
            programFingerprint(lower(
                S, "class Main { def main() { var m = new Dict(); "
                   "m.put(\"k\", 1); } }")));
}

TEST(Dedup, VariableRenamingIsNotNormalizedAway) {
  // Renaming keeps structure: slots are positional, so a pure rename SHOULD
  // produce the same fingerprint.
  StringInterner S;
  IRProgram A =
      lower(S, "class Main { def main() { var x = api.get(\"k\"); x.use(); } }");
  IRProgram B =
      lower(S, "class Main { def main() { var y = api.get(\"k\"); y.use(); } }");
  EXPECT_EQ(programFingerprint(A), programFingerprint(B));
}

TEST(Dedup, DuplicateIndicesAndRemoval) {
  StringInterner S;
  std::vector<IRProgram> Corpus;
  Corpus.push_back(lower(S, "class A { def f() { x.a(); } }", "0"));
  Corpus.push_back(lower(S, "class A { def f() { x.b(); } }", "1"));
  Corpus.push_back(lower(S, "class A { def f() { x.a(); } }", "2")); // dup of 0
  Corpus.push_back(lower(S, "class A { def f() { x.b(); } }", "3")); // dup of 1

  auto Dups = duplicateIndices(Corpus);
  ASSERT_EQ(Dups.size(), 2u);
  EXPECT_EQ(Dups[0], 2u);
  EXPECT_EQ(Dups[1], 3u);

  EXPECT_EQ(dedupeCorpus(Corpus), 2u);
  EXPECT_EQ(Corpus.size(), 2u);
  EXPECT_EQ(dedupeCorpus(Corpus), 0u) << "idempotent";
}

TEST(Dedup, GeneratorInjectsDuplicatesAndDedupRemovesThem) {
  LanguageProfile P = javaProfile();
  GeneratorConfig Cfg;
  Cfg.NumPrograms = 120;
  Cfg.Seed = 5;
  Cfg.DuplicateProb = 0.3;
  StringInterner S;
  GeneratedCorpus Corpus = generateCorpus(P, Cfg, S);
  ASSERT_EQ(Corpus.Programs.size(), 120u);

  size_t Removed = dedupeCorpus(Corpus.Programs);
  EXPECT_GT(Removed, 15u) << "the fork simulation must inject duplicates";
  EXPECT_LT(Removed, 80u);
  EXPECT_TRUE(duplicateIndices(Corpus.Programs).empty());
}

TEST(Dedup, DuplicatesInflateMatchCounts) {
  // §7.1's motivation: duplicated files multiply one pattern's weight. The
  // same corpus, duplicated twice, doubles candidate match counts while the
  // deduped corpus keeps them.
  LanguageProfile P = javaProfile();
  GeneratorConfig Cfg;
  Cfg.NumPrograms = 80;
  Cfg.Seed = 6;
  StringInterner S;
  GeneratedCorpus Corpus = generateCorpus(P, Cfg, S);

  std::vector<IRProgram> Doubled;
  for (int Round = 0; Round < 2; ++Round)
    for (const std::string &Source : Corpus.Sources) {
      DiagnosticSink Diags;
      auto Prog = parseAndLower(Source, "dup", S, Diags);
      ASSERT_TRUE(Prog.has_value());
      Doubled.push_back(std::move(*Prog));
    }
  ASSERT_EQ(Doubled.size(), 160u);
  EXPECT_EQ(dedupeCorpus(Doubled), 80u);
}
