//===- runtime_test.cpp - Tests for the concrete runtime/interpreter ----------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Generator.h"
#include "corpus/Profiles.h"
#include "eventgraph/EventGraph.h"
#include "ir/Lowering.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace uspec;

namespace {

const ApiMethod &method(const ApiRegistry &R, const char *Class,
                        const char *Name, unsigned Arity) {
  const ApiClass *C = R.findClass(Class);
  EXPECT_NE(C, nullptr) << Class;
  const ApiMethod *M = C->findMethod(Name, Arity);
  EXPECT_NE(M, nullptr) << Name;
  return *M;
}

} // namespace

//===----------------------------------------------------------------------===//
// ApiHeap semantics
//===----------------------------------------------------------------------===//

TEST(ApiHeap, StoreThenLoadReturnsStoredValue) {
  LanguageProfile P = javaProfile();
  ApiHeap Heap(P.Registry);
  RtValue Map = Heap.allocObject("HashMap");
  RtValue Value = Heap.allocObject("File");

  const ApiMethod &Put = method(P.Registry, "HashMap", "put", 2);
  const ApiMethod &Get = method(P.Registry, "HashMap", "get", 1);

  Heap.callApi(Map, Put, {RtValue::ofStr("k"), Value});
  RtValue Hit = Heap.callApi(Map, Get, {RtValue::ofStr("k")});
  EXPECT_TRUE(Hit == Value);
  RtValue Miss = Heap.callApi(Map, Get, {RtValue::ofStr("other")});
  EXPECT_TRUE(Miss.isNull());
}

TEST(ApiHeap, SeparateReceiversSeparateState) {
  LanguageProfile P = javaProfile();
  ApiHeap Heap(P.Registry);
  RtValue M1 = Heap.allocObject("HashMap");
  RtValue M2 = Heap.allocObject("HashMap");
  RtValue Value = Heap.allocObject("File");
  const ApiMethod &Put = method(P.Registry, "HashMap", "put", 2);
  const ApiMethod &Get = method(P.Registry, "HashMap", "get", 1);
  Heap.callApi(M1, Put, {RtValue::ofStr("k"), Value});
  EXPECT_TRUE(Heap.callApi(M2, Get, {RtValue::ofStr("k")}).isNull());
}

TEST(ApiHeap, StatelessGetterMemoizes) {
  LanguageProfile P = javaProfile();
  ApiHeap Heap(P.Registry);
  RtValue RS = Heap.allocObject("ResultSet");
  const ApiMethod &GetString = method(P.Registry, "ResultSet", "getString", 1);
  RtValue A = Heap.callApi(RS, GetString, {RtValue::ofStr("col")});
  RtValue B = Heap.callApi(RS, GetString, {RtValue::ofStr("col")});
  RtValue C = Heap.callApi(RS, GetString, {RtValue::ofStr("other")});
  EXPECT_TRUE(A == B) << "same column: same object (RetSame ground truth)";
  EXPECT_FALSE(A == C);
}

TEST(ApiHeap, MutatingReaderPopsInsertedValues) {
  LanguageProfile P = pythonProfile();
  ApiHeap Heap(P.Registry);
  RtValue List = Heap.allocObject("List");
  RtValue V = Heap.allocObject("Item");
  const ApiMethod &Append = method(P.Registry, "List", "append", 1);
  const ApiMethod &Pop = method(P.Registry, "List", "pop", 0);
  Heap.callApi(List, Append, {V});
  RtValue Popped = Heap.callApi(List, Pop, {});
  EXPECT_TRUE(Popped == V);
  RtValue Popped2 = Heap.callApi(List, Pop, {});
  EXPECT_FALSE(Popped2 == V) << "second pop must not return the same value";
}

TEST(ApiHeap, FactoryReturnsFreshObjects) {
  LanguageProfile P = javaProfile();
  ApiHeap Heap(P.Registry);
  RtValue Doc = Heap.allocObject("Document");
  const ApiMethod &Create = method(P.Registry, "Document", "createElement", 1);
  RtValue A = Heap.callApi(Doc, Create, {RtValue::ofStr("div")});
  RtValue B = Heap.callApi(Doc, Create, {RtValue::ofStr("div")});
  EXPECT_TRUE(A.isObj() && B.isObj());
  EXPECT_FALSE(A == B) << "factories must not memoize";
}

TEST(ApiHeap, StringKeyedClassesRejectObjectKeys) {
  LanguageProfile P = javaProfile();
  ApiHeap Heap(P.Registry);
  RtValue Props = Heap.allocObject("Properties");
  RtValue Key = Heap.allocObject("testArg");
  RtValue Value = Heap.allocObject("File");
  const ApiMethod &Set = method(P.Registry, "Properties", "setProperty", 2);
  const ApiMethod &Get = method(P.Registry, "Properties", "getProperty", 1);
  Heap.callApi(Props, Set, {Key, Value});
  EXPECT_TRUE(Heap.callApi(Props, Get, {Key}).isNull())
      << "object keys are rejected by string-keyed classes";
  // String keys work.
  Heap.callApi(Props, Set, {RtValue::ofStr("k"), Value});
  EXPECT_TRUE(Heap.callApi(Props, Get, {RtValue::ofStr("k")}) == Value);
}

TEST(ApiHeap, IteratorInheritsSequence) {
  LanguageProfile P = javaProfile();
  ApiHeap Heap(P.Registry);
  RtValue List = Heap.allocObject("ArrayList");
  RtValue V = Heap.allocObject("Item");
  Heap.callApi(List, method(P.Registry, "ArrayList", "add", 1), {V});
  RtValue It =
      Heap.callApi(List, method(P.Registry, "ArrayList", "iterator", 0), {});
  ASSERT_TRUE(It.isObj());
  RtValue HasNext =
      Heap.callApi(It, method(P.Registry, "Iterator", "hasNext", 0), {});
  EXPECT_EQ(HasNext.Int, 1);
  RtValue E = Heap.callApi(It, method(P.Registry, "Iterator", "next", 0), {});
  EXPECT_TRUE(E == V);
  EXPECT_EQ(
      Heap.callApi(It, method(P.Registry, "Iterator", "hasNext", 0), {}).Int,
      0);
}

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

namespace {

struct Executed {
  StringInterner Strings;
  IRProgram Program;
  LanguageProfile Profile = javaProfile();
  std::map<uint32_t, std::vector<RtValue>> Returns;

  /// Returns the site id of the Nth call to \p Name (textual order).
  uint32_t siteOf(const std::string &Name, int Occurrence = 0) {
    int Found = 0;
    uint32_t Result = 0;
    std::function<void(const InstrList &)> Walk = [&](const InstrList &Body) {
      for (const Instr &I : Body) {
        if (I.TheKind == Instr::Kind::Call &&
            Strings.str(I.Name) == Name) {
          if (Found++ == Occurrence)
            Result = I.SiteId;
        }
        Walk(I.Inner1);
        Walk(I.Inner2);
      }
    };
    for (const IRClass &C : Program.Classes)
      for (const IRMethod &M : C.Methods)
        Walk(M.Body);
    EXPECT_GT(Found, Occurrence) << "call not found: " << Name;
    return Result;
  }
};

Executed execute(std::string_view Source) {
  Executed E;
  DiagnosticSink Diags;
  auto P = parseAndLower(Source, "test", E.Strings, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.render();
  E.Program = std::move(*P);
  Interpreter Interp(E.Program, E.Strings, E.Profile.Registry);
  Interp.runAll();
  E.Returns = Interp.returnsPerSite();
  return E;
}

} // namespace

TEST(Interpreter, RoundtripAliasesConcretely) {
  Executed E = execute(R"(
    class Main {
      def main() {
        var map = new HashMap();
        map.put("k", db.getFile("cfg"));
        var f = map.get("k");
      }
    }
  )");
  auto &GetFile = E.Returns[E.siteOf("getFile")];
  auto &Get = E.Returns[E.siteOf("get")];
  ASSERT_EQ(GetFile.size(), 1u);
  ASSERT_EQ(Get.size(), 1u);
  EXPECT_TRUE(GetFile[0] == Get[0]) << "get must concretely return the file";
}

TEST(Interpreter, BranchesAndLoops) {
  Executed E = execute(R"(
    class Main {
      def main() {
        var n = 3;
        if (n > 1) { db.getFile("a"); } else { db.getFile("b"); }
        var list = new ArrayList();
        list.add(db.getFile("c"));
        var it = list.iterator();
        while (it.hasNext()) { sink.process(it.next()); }
      }
    }
  )");
  // Then-branch executed, else not.
  EXPECT_EQ(E.Returns[E.siteOf("getFile", 0)].size(), 1u);
  EXPECT_EQ(E.Returns.count(E.siteOf("getFile", 1)), 0u);
  // Loop ran exactly once (one element).
  EXPECT_EQ(E.Returns[E.siteOf("next")].size(), 1u);
}

TEST(Interpreter, ProgramMethodsExecute) {
  Executed E = execute(R"(
    class Box {
      var v;
      def fill(x) { this.v = x; }
      def take() { return this.v; }
    }
    class Main {
      def main() {
        var b = new Box();
        b.fill(db.getFile("cfg"));
        var f = b.take();
        f.getName();
      }
    }
  )");
  // getName executed on the file object (its site has one return).
  EXPECT_EQ(E.Returns[E.siteOf("getName")].size(), 1u);
}

//===----------------------------------------------------------------------===//
// Differential soundness: concrete aliasing ⇒ may-alias (ground-truth specs)
//===----------------------------------------------------------------------===//

namespace {

/// Builds the full ground-truth SpecSet for a profile.
SpecSet groundTruthSpecs(const LanguageProfile &P, StringInterner &S) {
  SpecSet Specs;
  for (const ApiClass &C : P.Registry.classes()) {
    Symbol ClassSym = S.intern(C.Name);
    for (const ApiMethod &M : C.Methods) {
      MethodId Mid = {ClassSym, S.intern(M.Name),
                      static_cast<uint8_t>(M.Arity)};
      if (M.Semantics == MethodSemantics::Load ||
          M.Semantics == MethodSemantics::StatelessGetter)
        Specs.insert(Spec::retSame(Mid));
      if (M.Semantics == MethodSemantics::Store) {
        for (const std::string &L : M.PairedLoads) {
          if (const ApiMethod *Load = C.findMethod(L, M.Arity - 1)) {
            MethodId Tid = {ClassSym, S.intern(Load->Name),
                            static_cast<uint8_t>(Load->Arity)};
            Specs.insert(
                Spec::retArg(Tid, Mid, static_cast<uint8_t>(M.StorePos)));
          }
        }
      }
    }
  }
  return Specs;
}

} // namespace

TEST(Differential, AwareAnalysisCoversConcreteContainerAliases) {
  // Property test over generated programs: whenever two Load/Getter call
  // sites on literal keys concretely return the same object, the API-aware
  // analysis with ground-truth specs must report may-alias between their ret
  // events.
  LanguageProfile P = javaProfile();
  GeneratorConfig Cfg;
  Cfg.NumPrograms = 60;
  Cfg.Seed = 77;
  StringInterner S;
  GeneratedCorpus Corpus = generateCorpus(P, Cfg, S);
  SpecSet Specs = groundTruthSpecs(P, S);

  AnalysisOptions Aware;
  Aware.ApiAware = true;
  Aware.Specs = &Specs;
  Aware.CoverageExtension = true;

  size_t CheckedPairs = 0, Violations = 0;
  for (const IRProgram &Program : Corpus.Programs) {
    Interpreter Interp(Program, S, P.Registry);
    Interp.runAll();
    AnalysisResult R = analyzeProgram(Program, S, Aware);

    // Map: site -> ret events (any context).
    std::map<uint32_t, std::vector<EventId>> RetEvents;
    for (EventId E = 0; E < R.Events.size(); ++E) {
      const Event &Ev = R.Events.get(E);
      if (Ev.Kind == EventKind::ApiCall && Ev.Pos == PosRet)
        RetEvents[Ev.Site].push_back(E);
    }

    // Sites whose method is a registry Load/StatelessGetter.
    auto IsCovered = [&](uint32_t Site) {
      auto It = RetEvents.find(Site);
      if (It == RetEvents.end())
        return false;
      const Event &Ev = R.Events.get(It->second.front());
      MethodId Mid = Ev.Method;
      return Specs.hasRetSame(Mid);
    };

    const auto &Returns = Interp.returnsPerSite();
    for (auto ItA = Returns.begin(); ItA != Returns.end(); ++ItA) {
      for (auto ItB = std::next(ItA); ItB != Returns.end(); ++ItB) {
        if (!IsCovered(ItA->first) || !IsCovered(ItB->first))
          continue;
        // Concretely aliasing object returns?
        bool ConcreteAlias = false;
        for (const RtValue &A : ItA->second)
          for (const RtValue &B : ItB->second)
            ConcreteAlias |= A.isObj() && A == B;
        if (!ConcreteAlias)
          continue;
        ++CheckedPairs;
        bool MayAlias = false;
        for (EventId EA : RetEvents[ItA->first])
          for (EventId EB : RetEvents[ItB->first])
            MayAlias |= R.retMayAlias(EA, EB);
        if (!MayAlias)
          ++Violations;
      }
    }
  }
  EXPECT_GT(CheckedPairs, 3u) << "the corpus must exercise aliasing pairs";
  EXPECT_EQ(Violations, 0u)
      << "aware analysis with ground-truth specs missed concrete aliases";
}
