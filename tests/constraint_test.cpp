//===- constraint_test.cpp - Tests for the reference Andersen solver ----------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Generator.h"
#include "corpus/Profiles.h"
#include "ir/Lowering.h"
#include "pointsto/Analysis.h"
#include "pointsto/ConstraintSolver.h"

#include <gtest/gtest.h>

using namespace uspec;

namespace {

struct Fixture {
  StringInterner S;
  IRProgram Program;

  ConstraintResult solve(std::string_view Source) {
    DiagnosticSink Diags;
    auto P = parseAndLower(Source, "cs", S, Diags);
    EXPECT_TRUE(P.has_value()) << Diags.render();
    Program = std::move(*P);
    return solveConstraints(Program, S);
  }

  /// Site id of the Nth call named \p Name.
  uint32_t siteOf(const char *Name, int Occurrence = 0) {
    int Found = 0;
    uint32_t Result = 0;
    std::function<void(const InstrList &)> Walk = [&](const InstrList &Body) {
      for (const Instr &I : Body) {
        if (I.TheKind == Instr::Kind::Call && S.str(I.Name) == Name &&
            Found++ == Occurrence)
          Result = I.SiteId;
        Walk(I.Inner1);
        if (I.TheKind == Instr::Kind::If)
          Walk(I.Inner2);
      }
    };
    for (const IRClass &C : Program.Classes)
      for (const IRMethod &M : C.Methods)
        Walk(M.Body);
    EXPECT_GT(Found, Occurrence) << Name;
    return Result;
  }
};

} // namespace

TEST(ConstraintSolver, DirectCopyFlow) {
  Fixture F;
  ConstraintResult R = F.solve(R"(
    class Main {
      def main() {
        var a = api.mk();
        var b = a;
        b.use();
        var c = api.other();
      }
    }
  )");
  // use's receiver is mk's return — both sites' ret sets share the object.
  EXPECT_FALSE(R.retMayAlias(F.siteOf("mk"), F.siteOf("other")));
  auto It = R.RetPointsTo.find(F.siteOf("mk"));
  ASSERT_NE(It, R.RetPointsTo.end());
  EXPECT_EQ(It->second.size(), 1u);
}

TEST(ConstraintSolver, FieldFlow) {
  Fixture F;
  ConstraintResult R = F.solve(R"(
    class Box { var v; }
    class Main {
      def main() {
        var b = new Box();
        b.v = api.mk();
        var x = b.v;
        x.use();
      }
    }
  )");
  uint32_t Use = F.siteOf("use");
  uint32_t Mk = F.siteOf("mk");
  // The receiver of use aliases mk's return through the field; compare via
  // the use receiver's... we only expose ret sets, so check a load-driven
  // aliasing shape instead: mk's ret object must flow into the field cell,
  // visible as non-empty ret pts and solver stats.
  EXPECT_GT(R.NumEdges, 0u);
  EXPECT_NE(R.RetPointsTo.find(Mk), R.RetPointsTo.end());
  (void)Use;
}

TEST(ConstraintSolver, ProgramMethodReturnFlow) {
  Fixture F;
  ConstraintResult R = F.solve(R"(
    class Helper { def pass(v) { return v; } }
    class Main {
      def main() {
        var h = new Helper();
        var a = api.mk();
        var b = h.pass(a);
        var c = h2.passthru(a);
      }
    }
  )");
  // pass is a program method: its call site's ret includes mk's object.
  uint32_t Pass = F.siteOf("pass");
  uint32_t Mk = F.siteOf("mk");
  EXPECT_TRUE(R.retMayAlias(Pass, Mk));
  // passthru is an unknown API: fresh object, no alias.
  EXPECT_FALSE(R.retMayAlias(F.siteOf("passthru"), Mk));
}

TEST(ConstraintSolver, RecursionConvergesWithoutDepthLimit) {
  Fixture F;
  ConstraintResult R = F.solve(R"(
    class Rec {
      def spin(v, n) {
        if (n > 0) { return spin(v, n); }
        return v;
      }
    }
    class Main {
      def main() {
        var r = new Rec();
        var x = api.mk();
        var y = r.spin(x, 3);
      }
    }
  )");
  // Unlike the bounded-inlining analysis, the constraint solver handles
  // recursion exactly: spin's return flows v through the base case and the
  // recursive case alike.
  EXPECT_TRUE(R.retMayAlias(F.siteOf("spin"), F.siteOf("mk")));

  // A truly bottom recursion returns nothing — no spurious objects.
  Fixture F2;
  ConstraintResult R2 = F2.solve(R"(
    class Bot { def loop(v) { return loop(v); } }
    class Main {
      def main() { var b = new Bot(); var x = b.loop(api.mk()); }
    }
  )");
  EXPECT_FALSE(R2.retMayAlias(F2.siteOf("loop"), F2.siteOf("mk")))
      << "non-terminating recursion yields no return value";
}

TEST(ConstraintSolver, ContextInsensitivityMergesCallers) {
  // The price of the coarser abstraction: two distinct values passed through
  // one helper are conflated (the flow-sensitive inlining analysis keeps
  // them apart).
  Fixture F;
  const char *Src = R"(
    class Id { def same(v) { return v; } }
    class Main {
      def main() {
        var id = new Id();
        var a = id.same(api.mk1());
        var b = id.same(api.mk2());
      }
    }
  )";
  ConstraintResult R = F.solve(Src);
  EXPECT_TRUE(R.retMayAlias(F.siteOf("same", 0), F.siteOf("mk2")))
      << "context-insensitive: both callers merge";

  // Reference point: the flow-sensitive analysis keeps them apart.
  StringInterner S2;
  DiagnosticSink Diags;
  auto P = parseAndLower(Src, "fs", S2, Diags);
  ASSERT_TRUE(P.has_value());
  AnalysisResult FS = analyzeProgram(*P, S2, AnalysisOptions());
  // Collect per-site ret alias via events.
  auto SiteRetAlias = [&](uint32_t SiteA, uint32_t SiteB) {
    for (EventId EA = 0; EA < FS.Events.size(); ++EA) {
      const Event &A = FS.Events.get(EA);
      if (A.Kind != EventKind::ApiCall || A.Pos != PosRet || A.Site != SiteA)
        continue;
      for (EventId EB = 0; EB < FS.Events.size(); ++EB) {
        const Event &B = FS.Events.get(EB);
        if (B.Kind != EventKind::ApiCall || B.Pos != PosRet ||
            B.Site != SiteB)
          continue;
        if (FS.retMayAlias(EA, EB))
          return true;
      }
    }
    return false;
  };
  EXPECT_FALSE(SiteRetAlias(F.siteOf("same", 0), F.siteOf("mk2")))
      << "inlining keeps the two calls separate";
}

TEST(ConstraintSolver, BranchesAreFlowInsensitive) {
  // A load before the store still sees the stored object (no ordering).
  Fixture F;
  ConstraintResult R = F.solve(R"(
    class Box { var v; }
    class Main {
      def main() {
        var b = new Box();
        var early = b.v;
        early.use();
        b.v = api.mk();
      }
    }
  )");
  // use's receiver includes mk's object: check mk flowed into field node by
  // confirming the solve did not drop it (structural smoke check).
  EXPECT_GE(R.Propagations, 1u);
}

//===----------------------------------------------------------------------===//
// Differential property: the constraint solver over-approximates the
// flow-sensitive analysis on ret-value aliasing.
//===----------------------------------------------------------------------===//

class ConstraintOverApprox : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConstraintOverApprox, FlowSensitiveRecvAliasImpliesConstraintAlias) {
  // In API-unaware mode return values are always fresh, so the comparable
  // aliasing facts live at call-site RECEIVERS: whenever two call sites'
  // receivers may alias under the precise flow-sensitive analysis, the
  // coarse constraint solver must agree.
  uint64_t Seed = GetParam();
  LanguageProfile P = javaProfile();
  GeneratorConfig Cfg;
  Cfg.NumPrograms = 40;
  Cfg.Seed = Seed;
  StringInterner S;
  GeneratedCorpus Corpus = generateCorpus(P, Cfg, S);

  size_t CheckedPairs = 0, Violations = 0;
  for (const IRProgram &Program : Corpus.Programs) {
    AnalysisResult FS = analyzeProgram(Program, S, AnalysisOptions());
    ConstraintResult CS = solveConstraints(Program, S);

    // Per-site receiver participant sets of the flow-sensitive analysis:
    // objects whose histories contain the site's receiver event.
    std::map<uint32_t, ObjSet> FsRecv;
    for (ObjectId Obj = 0; Obj < FS.Histories.size(); ++Obj)
      for (const History &H : FS.Histories[Obj])
        for (EventId E : H) {
          const Event &Ev = FS.Events.get(E);
          if (Ev.Kind == EventKind::ApiCall && Ev.Pos == PosReceiver)
            objSetInsert(FsRecv[Ev.Site], Obj);
        }

    for (auto IA = FsRecv.begin(); IA != FsRecv.end(); ++IA) {
      for (auto IB = std::next(IA); IB != FsRecv.end(); ++IB) {
        if (!objSetIntersects(IA->second, IB->second))
          continue;
        ++CheckedPairs;
        if (!CS.recvMayAlias(IA->first, IB->first))
          ++Violations;
      }
    }
  }
  EXPECT_GT(CheckedPairs, 10u);
  EXPECT_EQ(Violations, 0u)
      << "the reference solver must over-approximate the precise analysis";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstraintOverApprox,
                         ::testing::Values(101, 202, 303, 404, 505));
