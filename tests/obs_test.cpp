//===- obs_test.cpp - Fleet observability ---------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Pins the DESIGN.md §16 contracts:
//
//   - The structured event log writes schema-versioned JSONL with a
//     gap-free per-process sequence, rotates at the size cap, and costs
//     one relaxed atomic load when disarmed.
//   - `uspec obs stitch` merges per-process trace shards onto the shared
//     steady-clock timeline, names every pid, and links router forwards to
//     replica request spans by trace id (flow events).
//   - Hedged routed responses echo the client's trace_id byte-identically
//     to a direct replica answer — observability never perturbs payloads.
//   - The Prometheus exposition stays valid at the edges: empty
//     histograms, metric-name grammar, and counters too large for a float
//     mantissa all round-trip.
//
//===----------------------------------------------------------------------===//

#include "distrib/Router.h"
#include "distrib/Wire.h"
#include "service/Metrics.h"
#include "service/Protocol.h"
#include "service/Server.h"
#include "support/EventLog.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace uspec;

namespace {

std::string readWholeFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

void writeWholeFile(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Content;
}

std::string scratchDir(const std::string &Name) {
  std::string Dir = testing::TempDir() + "uspec_obs_" + Name + "_" +
                    std::to_string(getpid());
  std::string Cmd = "rm -rf " + Dir + " && mkdir -p " + Dir;
  if (std::system(Cmd.c_str()) != 0)
    ADD_FAILURE() << "cannot create scratch dir " << Dir;
  return Dir;
}

struct RunResult {
  int ExitCode = -1;
  std::string Output;
};

RunResult runCli(const std::string &ArgString) {
  std::string Full = std::string(USPEC_CLI_PATH) + " " + ArgString + " 2>&1";
  RunResult R;
  FILE *Pipe = popen(Full.c_str(), "r");
  if (!Pipe) {
    ADD_FAILURE() << "popen failed for: " << Full;
    return R;
  }
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    R.Output.append(Buf, N);
  int Status = pclose(Pipe);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

/// Parses every line of a JSONL event log (skipping blanks), failing the
/// test on any line that is not one JSON object.
std::vector<service::JsonValue> parseEventLog(const std::string &Path) {
  std::vector<service::JsonValue> Events;
  std::ifstream In(Path);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    service::JsonValue Doc;
    std::string Err;
    EXPECT_TRUE(service::parseJson(Line, Doc, &Err))
        << "bad event line: " << Line << ": " << Err;
    Events.push_back(std::move(Doc));
  }
  return Events;
}

double numberOf(const service::JsonValue &Doc, const char *Key) {
  const service::JsonValue *V = Doc.find(Key);
  if (!V || V->TheKind != service::JsonValue::Kind::Number) {
    ADD_FAILURE() << "missing number member " << Key;
    return -1;
  }
  return V->NumberValue;
}

std::string stringOf(const service::JsonValue &Doc, const char *Key) {
  const service::JsonValue *V = Doc.find(Key);
  return V && V->isString() ? V->StringValue : std::string();
}

} // namespace

//===----------------------------------------------------------------------===//
// ObsEventLog: JSONL schema, sequencing, rotation, disarmed cost
//===----------------------------------------------------------------------===//

TEST(ObsEventLog, DisarmedEmitIsANoOp) {
  ASSERT_FALSE(events::enabled());
  events::emit("ignored", {{"k", "v"}}); // must not crash or write anywhere
  ASSERT_FALSE(events::enabled());
}

TEST(ObsEventLog, SchemaVersionSeqPidAndFieldsRoundTrip) {
  std::string Dir = scratchDir("schema");
  std::string Path = Dir + "/events.jsonl";
  std::string Err;
  ASSERT_TRUE(events::startToFile(Path, 0, &Err)) << Err;
  ASSERT_TRUE(events::enabled());
  events::emit("replica_down", {{"replica", "0"}, {"cause", "probe"}});
  events::emit("respawn", {{"replica", "0"}, {"attempt", "1"}});
  events::emit("rejoin",
               {{"via", "supervisor"}, {"note", "quote\" and \nnewline"}});
  events::finish();
  ASSERT_FALSE(events::enabled());

  std::vector<service::JsonValue> Events = parseEventLog(Path);
  ASSERT_EQ(Events.size(), 3u);
  for (size_t I = 0; I < Events.size(); ++I) {
    EXPECT_EQ(numberOf(Events[I], "v"),
              static_cast<double>(events::SchemaVersion));
    EXPECT_EQ(numberOf(Events[I], "seq"), static_cast<double>(I))
        << "seq must be gap-free from 0";
    EXPECT_EQ(numberOf(Events[I], "pid"), static_cast<double>(getpid()));
    EXPECT_GT(numberOf(Events[I], "ts_ms"), 1e12) << "wall-clock ms epoch";
  }
  EXPECT_EQ(stringOf(Events[0], "type"), "replica_down");
  EXPECT_EQ(stringOf(Events[0], "cause"), "probe");
  EXPECT_EQ(stringOf(Events[1], "attempt"), "1");
  // Escaping survives the round trip.
  EXPECT_EQ(stringOf(Events[2], "note"), "quote\" and \nnewline");
}

TEST(ObsEventLog, RotatesAtTheSizeCapKeepingOneGeneration) {
  std::string Dir = scratchDir("rotate");
  std::string Path = Dir + "/events.jsonl";
  std::string Err;
  ASSERT_TRUE(events::startToFile(Path, /*MaxBytes=*/512, &Err)) << Err;
  for (int I = 0; I < 40; ++I)
    events::emit("hedge_fired", {{"primary", std::to_string(I)}});
  events::finish();

  std::string Live = readWholeFile(Path);
  std::string Rotated = readWholeFile(Path + ".1");
  EXPECT_FALSE(Rotated.empty()) << "cap of 512 bytes must have rotated";
  EXPECT_LE(Live.size(), 512u + 256u) << "live file respects the cap";
  // Every line in both generations still parses; seq stays monotonic
  // across the rotation boundary.
  std::vector<service::JsonValue> Old = parseEventLog(Path + ".1");
  std::vector<service::JsonValue> New = parseEventLog(Path);
  ASSERT_FALSE(Old.empty());
  ASSERT_FALSE(New.empty());
  double LastOld = numberOf(Old.back(), "seq");
  double FirstNew = numberOf(New.front(), "seq");
  EXPECT_EQ(FirstNew, LastOld + 1) << "rotation must not drop or repeat seq";
}

TEST(ObsEventLog, RestartedSessionAppendsToAnExistingFile) {
  std::string Dir = scratchDir("append");
  std::string Path = Dir + "/events.jsonl";
  ASSERT_TRUE(events::startToFile(Path, 0, nullptr));
  events::emit("reload", {});
  events::finish();
  ASSERT_TRUE(events::startToFile(Path, 0, nullptr));
  events::emit("reload", {});
  events::finish();
  EXPECT_EQ(parseEventLog(Path).size(), 2u)
      << "O_APPEND sessions extend the log, never truncate it";
}

//===----------------------------------------------------------------------===//
// ObsStitch: shard merging via the real CLI
//===----------------------------------------------------------------------===//

namespace {

/// Finds the first traceEvents entry with the given ph (and name, when
/// non-null); returns nullptr when absent.
const service::JsonValue *findEvent(const service::JsonValue &Doc,
                                    const char *Ph, const char *Name) {
  const service::JsonValue *Events = Doc.find("traceEvents");
  if (!Events || !Events->isArray())
    return nullptr;
  for (const service::JsonValue &E : Events->Items) {
    if (!E.isObject())
      continue;
    const service::JsonValue *P = E.find("ph");
    if (!P || !P->isString() || P->StringValue != Ph)
      continue;
    if (Name) {
      const service::JsonValue *N = E.find("name");
      if (!N || !N->isString() || N->StringValue != Name)
        continue;
    }
    return &E;
  }
  return nullptr;
}

} // namespace

TEST(ObsStitch, AlignsShardsNamesProcessesAndLinksFlows) {
  std::string Dir = scratchDir("stitch");
  // Two hand-built shards: a router process (session epoch 1 ms) and a
  // replica process (epoch 2 ms). The replica span carries the same
  // trace_id the router forward does.
  writeWholeFile(Dir + "/router.json",
                 "{\"uspecBaseNs\":1000000,\"traceEvents\":["
                 "{\"name\":\"router.forward\",\"cat\":\"uspec\",\"ph\":"
                 "\"X\",\"pid\":100,\"tid\":1,\"ts\":5.000,\"dur\":10.000,"
                 "\"args\":{\"replica\":\"0\",\"trace_id\":\"t-1\"}}]}");
  writeWholeFile(Dir + "/replica.json",
                 "{\"uspecBaseNs\":2000000,\"traceEvents\":["
                 "{\"name\":\"service.request\",\"cat\":\"uspec\",\"ph\":"
                 "\"X\",\"pid\":200,\"tid\":3,\"ts\":1.000,\"dur\":4.000,"
                 "\"args\":{\"verb\":\"analyze\",\"trace_id\":\"t-1\"}}]}");

  RunResult R = runCli("obs stitch " + Dir + "/merged.json " + Dir +
                       "/router.json " + Dir + "/replica.json");
  ASSERT_EQ(R.ExitCode, 0) << R.Output;

  service::JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(service::parseJson(readWholeFile(Dir + "/merged.json"), Doc,
                                 &Err))
      << Err;

  // Timeline alignment: the replica shard's epoch is 1 ms after the
  // router's, so its span shifts from ts=1.0 to ts=1001.0 µs while the
  // router span keeps ts=5.0.
  const service::JsonValue *Fwd = findEvent(Doc, "X", "router.forward");
  const service::JsonValue *Req = findEvent(Doc, "X", "service.request");
  ASSERT_TRUE(Fwd && Req);
  EXPECT_DOUBLE_EQ(numberOf(*Fwd, "ts"), 5.0);
  EXPECT_DOUBLE_EQ(numberOf(*Req, "ts"), 1001.0);

  // Both pids get role-named process metadata.
  std::string Merged = readWholeFile(Dir + "/merged.json");
  EXPECT_NE(Merged.find("\"process_name\""), std::string::npos);
  EXPECT_NE(Merged.find("uspec route"), std::string::npos);
  EXPECT_NE(Merged.find("uspec serve"), std::string::npos);

  // One flow pair links the forward (pid 100) to the request (pid 200).
  const service::JsonValue *Start = findEvent(Doc, "s", nullptr);
  const service::JsonValue *Finish = findEvent(Doc, "f", nullptr);
  ASSERT_TRUE(Start && Finish) << "stitch must emit s/f flow events";
  EXPECT_EQ(numberOf(*Start, "pid"), 100);
  EXPECT_EQ(numberOf(*Finish, "pid"), 200);
  EXPECT_EQ(numberOf(*Start, "id"), numberOf(*Finish, "id"));
}

TEST(ObsStitch, ShardWithoutTraceEventsIsAnError) {
  std::string Dir = scratchDir("stitch_bad");
  writeWholeFile(Dir + "/bad.json", "{\"hello\":1}");
  RunResult R = runCli("obs stitch " + Dir + "/out.json " + Dir +
                       "/bad.json");
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Output.find("traceEvents"), std::string::npos) << R.Output;
}

TEST(ObsStitch, EventsSubcommandFiltersByTypeAndSkipsTornLines) {
  std::string Dir = scratchDir("events_cli");
  writeWholeFile(Dir + "/ev.jsonl",
                 "{\"v\":1,\"seq\":0,\"type\":\"respawn\",\"replica\":\"0\"}\n"
                 "{\"v\":1,\"seq\":1,\"type\":\"rejoin\",\"replica\":\"0\"}\n"
                 "{\"v\":1,\"seq\":2,\"ty"); // torn tail write
  RunResult R = runCli("obs events " + Dir + "/ev.jsonl --type rejoin");
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("\"rejoin\""), std::string::npos);
  EXPECT_EQ(R.Output.find("\"respawn\""), std::string::npos);
  EXPECT_EQ(R.Output.find("seq\":2"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// ObsFleet: trace_id echo through the hedged router path
//===----------------------------------------------------------------------===//

namespace {

struct TestReplica {
  service::ServerConfig Cfg;
  std::unique_ptr<service::Server> S;
  volatile int Stop = 0;
  volatile int Reload = 0;
  std::thread T;
  std::string Path;

  bool start(const std::string &SockPath, const std::string &ModelPath) {
    Path = SockPath;
    Cfg.Workers = 2;
    Cfg.AcceptPollMs = 20;
    Cfg.ModelPath = ModelPath;
    std::string Err;
    auto M = service::loadModelState(ModelPath, &Err);
    if (!M) {
      ADD_FAILURE() << "loadModelState(" << ModelPath << "): " << Err;
      return false;
    }
    S = std::make_unique<service::Server>(Cfg, std::move(*M));
    T = std::thread([this] { S->serveUnixSocket(Path, &Stop, &Reload); });
    for (int I = 0; I < 200 && access(Path.c_str(), F_OK) != 0; ++I)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return access(Path.c_str(), F_OK) == 0;
  }

  ~TestReplica() {
    // beginDrain() is mutex-synchronized with the accept loop's draining()
    // check; writing the volatile Stop flag from this thread would be a
    // data race (the flag exists for signal handlers, not cross-thread
    // shutdown).
    if (S)
      S->beginDrain();
    if (T.joinable())
      T.join();
  }
};

std::string obsMiniProgram(unsigned Salt) {
  std::string K = "k" + std::to_string(Salt);
  return "class Main { def main() { var m = new Map(); m.put(\"" + K +
         "\", 1); var a = m.get(\"" + K + "\"); var b = m.get(\"" + K +
         "\"); } }";
}

std::string tracedAnalyzeRequest(const std::string &Id,
                                 const std::string &TraceId,
                                 const std::string &Prog) {
  std::string Line = "{\"id\":\"" + Id + "\",\"trace_id\":\"" + TraceId +
                     "\",\"verb\":\"analyze\",\"program\":\"";
  for (char C : Prog) {
    if (C == '"' || C == '\\')
      Line += '\\';
    Line += C;
  }
  Line += "\"}";
  return Line;
}

} // namespace

TEST(ObsFleet, HedgedResponseEchoesTraceIdByteIdentically) {
  std::string Dir = scratchDir("hedge_trace");
  std::string SpecPath = Dir + "/specs.txt";
  writeWholeFile(SpecPath, "RetSame(Map.get/1)\n");

  TestReplica RA, RB;
  RA.Cfg.EnableTestVerbs = true;
  RB.Cfg.EnableTestVerbs = true;
  ASSERT_TRUE(RA.start(Dir + "/ra.sock", SpecPath));
  ASSERT_TRUE(RB.start(Dir + "/rb.sock", SpecPath));

  distrib::RouterConfig Cfg;
  Cfg.Replicas = {RA.Path, RB.Path};
  Cfg.HedgeMs = 25;
  distrib::Router R(Cfg);

  std::string Prog;
  for (unsigned I = 0; I < 200; ++I)
    if (R.ownerOf(obsMiniProgram(I)) == 0) {
      Prog = obsMiniProgram(I);
      break;
    }
  ASSERT_FALSE(Prog.empty());
  std::string Line = tracedAnalyzeRequest("h1", "trace-obs-77", Prog);

  // The non-owner computes the reference answer directly.
  std::string Direct, Err;
  ASSERT_TRUE(distrib::clientRoundTrip(RB.Path, Line, Direct, &Err)) << Err;
  ASSERT_NE(Direct.find("\"trace_id\":\"trace-obs-77\""), std::string::npos)
      << Direct;

  // Park both of the owner's workers so the hedge leg must answer.
  service::Server *PrimaryServer = RA.S.get();
  std::thread Block1([&] {
    std::string Resp, E;
    distrib::clientRoundTrip(RA.Path, "{\"verb\":\"test_block\"}", Resp, &E);
  });
  std::thread Block2([&] {
    std::string Resp, E;
    distrib::clientRoundTrip(RA.Path, "{\"verb\":\"test_block\"}", Resp, &E);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::string Routed = R.handleLine(Line);
  EXPECT_EQ(Routed, Direct)
      << "hedged response (trace_id envelope included) must be "
         "byte-identical to a direct replica answer";
  EXPECT_GE(R.hedgedCount(), 1u);

  PrimaryServer->releaseTestGate();
  Block1.join();
  Block2.join();
}

TEST(ObsFleet, StatsCarryUptimeAndStartTime) {
  service::ServiceMetrics M;
  service::AnalysisCache::Stats CS;
  std::string Json = M.json(2, 0, 8, CS);
  EXPECT_NE(Json.find("\"uptime_s\":"), std::string::npos);
  EXPECT_NE(Json.find("\"start_time_unix\":"), std::string::npos);
  EXPECT_GT(M.startTimeUnixSeconds(), 1e9) << "Unix-epoch seconds";
  std::string Prom = M.prometheus(2, 0, 8, CS);
  EXPECT_NE(Prom.find("uspec_process_start_time_seconds"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// ObsProm: exposition edge cases
//===----------------------------------------------------------------------===//

namespace {

/// Checks one exposition document line-by-line against the text-format
/// grammar subset this codebase emits: comment lines, and
/// `name[{labels}] value` samples with a valid metric name and a value
/// strtod can consume fully.
void expectValidExposition(const std::string &Text) {
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Space = Line.find(' ');
    ASSERT_NE(Space, std::string::npos) << "sample without value: " << Line;
    std::string Series = Line.substr(0, Space);
    std::string Name = Series.substr(0, Series.find('{'));
    ASSERT_FALSE(Name.empty()) << Line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(Name[0])) ||
                Name[0] == '_' || Name[0] == ':')
        << "invalid metric name start: " << Line;
    for (char C : Name)
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
                  C == ':')
          << "invalid metric name char '" << C << "': " << Line;
    std::string Value = Line.substr(Space + 1);
    char *End = nullptr;
    std::strtod(Value.c_str(), &End);
    EXPECT_TRUE(End && *End == '\0')
        << "unparseable sample value: " << Line;
  }
}

} // namespace

TEST(ObsProm, EmptyHistogramRendersAValidExposition) {
  telemetry::MetricsRegistry Reg;
  Reg.histogram("uspec_obs_empty_seconds", "never recorded");
  std::string Text = Reg.renderPrometheus();
  expectValidExposition(Text);
  // An empty histogram still exposes the +Inf bucket, sum and count.
  EXPECT_NE(Text.find("uspec_obs_empty_seconds_bucket{le=\"+Inf\"} 0"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("uspec_obs_empty_seconds_sum 0"), std::string::npos);
  EXPECT_NE(Text.find("uspec_obs_empty_seconds_count 0"),
            std::string::npos);
}

TEST(ObsProm, EveryServiceSeriesNameIsValid) {
  service::ServiceMetrics M;
  M.recordAdmitted();
  M.recordCompleted(0.001, true);
  M.recordAnalyze(0.002);
  service::AnalysisCache::Stats CS;
  expectValidExposition(M.prometheus(2, 1, 8, CS));
}

TEST(ObsProm, LargeCounterRoundTripsWithoutTruncation) {
  // 2^50 + 3 does not survive a %.9g float render; the exposition must
  // print integral values exactly.
  constexpr uint64_t Big = (1ull << 50) + 3;
  telemetry::MetricsRegistry Reg;
  Reg.counter("uspec_obs_big_total").inc(Big);
  std::string Text = Reg.renderPrometheus();
  expectValidExposition(Text);
  std::string Expect = "uspec_obs_big_total " + std::to_string(Big);
  EXPECT_NE(Text.find(Expect), std::string::npos) << Text;

  std::string Out;
  telemetry::appendPromValue(Out, static_cast<double>(Big));
  EXPECT_EQ(Out, std::to_string(Big));
  // Fractions keep the compact float rendering.
  Out.clear();
  telemetry::appendPromValue(Out, 0.125);
  EXPECT_EQ(Out, "0.125");
}
