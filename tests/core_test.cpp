//===- core_test.cpp - Tests for matching, candidates, and the learner --------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/USpec.h"

#include <gtest/gtest.h>

using namespace uspec;

namespace {

/// Shared fixture: parse/lower/analyze/build graph with one interner.
struct CoreFixture {
  StringInterner Strings;
  std::vector<IRProgram> Programs;
  std::vector<std::unique_ptr<AnalysisResult>> Analyses;
  std::vector<EventGraph> Graphs;

  EventGraph &addGraph(const std::string &Source) {
    DiagnosticSink Diags;
    auto P = parseAndLower(Source, "p" + std::to_string(Programs.size()),
                           Strings, Diags);
    EXPECT_TRUE(P.has_value()) << Diags.render();
    Programs.push_back(std::move(*P));
    Analyses.push_back(std::make_unique<AnalysisResult>(
        analyzeProgram(Programs.back(), Strings, AnalysisOptions())));
    Graphs.push_back(EventGraph::build(*Analyses.back()));
    return Graphs.back();
  }

  const CallSite *site(const EventGraph &G, const std::string &Name,
                       int Occurrence = 0) {
    int Found = 0;
    for (const CallSite &CS : G.callSites())
      if (Strings.str(CS.Method.Name) == Name) {
        if (Found == Occurrence)
          return &CS;
        ++Found;
      }
    return nullptr;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Pattern matching (§5.1)
//===----------------------------------------------------------------------===//

TEST(Matching, RetArgMatchesFig2) {
  CoreFixture F;
  EventGraph &G = F.addGraph(R"(
    class Main {
      def main() {
        var map = new Map();
        map.put("key", someApi.getFile());
        var name = map.get("key").getName();
      }
    }
  )");
  const CallSite *Get = F.site(G, "get");
  const CallSite *Put = F.site(G, "put");
  ASSERT_TRUE(Get && Put);
  EXPECT_TRUE(matchesRetArg(G, *Get, *Put, 2));
  // x = 1 would require put's arg2 to equal get's arg1; it does not.
  EXPECT_FALSE(matchesRetArg(G, *Get, *Put, 1));
  // Induced edge is exactly ℓ: getFile.ret -> getName.0.
  auto Edges = inducedRetArg(G, *Get, *Put, 2);
  ASSERT_EQ(Edges.size(), 1u);
  const CallSite *GetFile = F.site(G, "getFile");
  const CallSite *GetName = F.site(G, "getName");
  EXPECT_EQ(Edges[0].first, GetFile->Ret);
  EXPECT_EQ(Edges[0].second, GetName->Recv);
}

TEST(Matching, RetArgRejectsDifferentKeys) {
  CoreFixture F;
  EventGraph &G = F.addGraph(R"(
    class Main {
      def main() {
        var map = new Map();
        map.put("a", someApi.getFile());
        var x = map.get("b");
      }
    }
  )");
  const CallSite *Get = F.site(G, "get");
  const CallSite *Put = F.site(G, "put");
  ASSERT_TRUE(Get && Put);
  EXPECT_FALSE(matchesRetArg(G, *Get, *Put, 2)) << "C4' must fail: keys differ";
}

TEST(Matching, RetArgRejectsDifferentReceivers) {
  CoreFixture F;
  EventGraph &G = F.addGraph(R"(
    class Main {
      def main() {
        var m1 = new Map();
        var m2 = new Map();
        m1.put("k", someApi.getFile());
        var x = m2.get("k");
      }
    }
  )");
  const CallSite *Get = F.site(G, "get");
  const CallSite *Put = F.site(G, "put");
  ASSERT_TRUE(Get && Put);
  EXPECT_FALSE(matchesRetArg(G, *Get, *Put, 2)) << "C2 must fail";
}

TEST(Matching, RetArgRejectsWrongOrder) {
  CoreFixture F;
  EventGraph &G = F.addGraph(R"(
    class Main {
      def main() {
        var map = new Map();
        var x = map.get("k");
        map.put("k", someApi.getFile());
      }
    }
  )");
  const CallSite *Get = F.site(G, "get");
  const CallSite *Put = F.site(G, "put");
  ASSERT_TRUE(Get && Put);
  EXPECT_FALSE(matchesRetArg(G, *Get, *Put, 2)) << "C3: put must precede get";
}

TEST(Matching, RetArgRejectsArityMismatch) {
  CoreFixture F;
  EventGraph &G = F.addGraph(R"(
    class Main {
      def main() {
        var map = new Map();
        map.store("k", someApi.getFile(), 1);
        var x = map.get("k");
      }
    }
  )");
  const CallSite *Get = F.site(G, "get");
  const CallSite *Store = F.site(G, "store");
  ASSERT_TRUE(Get && Store);
  EXPECT_FALSE(matchesRetArg(G, *Get, *Store, 2)) << "C1' must fail";
}

TEST(Matching, RetSameMatchesEqualArguments) {
  CoreFixture F;
  EventGraph &G = F.addGraph(R"(
    class Main {
      def main() {
        var rs = new ResultSet();
        var a = rs.getString("col");
        var b = rs.getString("col");
        var c = rs.getString("other");
      }
    }
  )");
  const CallSite *S0 = F.site(G, "getString", 0);
  const CallSite *S1 = F.site(G, "getString", 1);
  const CallSite *S2 = F.site(G, "getString", 2);
  ASSERT_TRUE(S0 && S1 && S2);
  EXPECT_TRUE(matchesRetSame(G, *S1, *S0));
  EXPECT_FALSE(matchesRetSame(G, *S0, *S1)) << "C3: order matters";
  EXPECT_FALSE(matchesRetSame(G, *S2, *S0)) << "C4: arguments differ";
}

TEST(Matching, RetSameZeroArgMethodsMatchVacuously) {
  // Iterator.next()-style candidates do arise (C4 is vacuous); the model's
  // scoring, not the matcher, must filter them (§5.2).
  CoreFixture F;
  EventGraph &G = F.addGraph(R"(
    class Main {
      def main() {
        var it = new Iterator();
        var a = it.next();
        var b = it.next();
      }
    }
  )");
  const CallSite *N0 = F.site(G, "next", 0);
  const CallSite *N1 = F.site(G, "next", 1);
  ASSERT_TRUE(N0 && N1);
  EXPECT_TRUE(matchesRetSame(G, *N1, *N0));
}

TEST(Matching, RetSameRequiresSameMethod) {
  CoreFixture F;
  EventGraph &G = F.addGraph(R"(
    class Main {
      def main() {
        var rs = new ResultSet();
        var a = rs.getString("c");
        var b = rs.getBlob("c");
      }
    }
  )");
  const CallSite *S = F.site(G, "getString");
  const CallSite *B = F.site(G, "getBlob");
  ASSERT_TRUE(S && B);
  EXPECT_FALSE(matchesRetSame(G, *B, *S)) << "C1 must fail";
}

//===----------------------------------------------------------------------===//
// Candidate collection (Alg. 1)
//===----------------------------------------------------------------------===//

TEST(Candidates, CollectsAndAggregates) {
  CoreFixture F;
  const char *Src = R"(
    class Main {
      def main() {
        var map = new Map();
        map.put("k", someApi.getFile());
        var f = map.get("k");
        f.getName();
      }
    }
  )";
  F.addGraph(Src);
  F.addGraph(Src);

  EdgeModel Model; // untrained: every confidence is 0.5
  CandidateCollector Collector(Model, 10);
  for (size_t I = 0; I < F.Graphs.size(); ++I)
    Collector.addGraph(F.Graphs[I], static_cast<uint32_t>(I));

  Spec Expected = Spec::retArg(
      {F.Strings.intern("Map"), F.Strings.intern("get"), 1},
      {F.Strings.intern("Map"), F.Strings.intern("put"), 2}, 2);
  auto It = Collector.stats().find(Expected);
  ASSERT_NE(It, Collector.stats().end()) << "RetArg(get, put, 2) must arise";
  EXPECT_EQ(It->second.Matches, 2u);
  EXPECT_EQ(It->second.Programs, 2u);
  EXPECT_EQ(It->second.Confidences.size(), 2u) << "single-edge matches scored";
  EXPECT_DOUBLE_EQ(It->second.Confidences[0], 0.5);
}

TEST(Candidates, ScoreKinds) {
  CandidateStats Stats;
  Stats.Confidences = {0.9, 0.2, 0.8};
  Stats.Matches = 50;
  Stats.Programs = 10;
  EXPECT_DOUBLE_EQ(scoreCandidate(Stats, ScoreKind::MaxConfidence, 10), 0.9);
  EXPECT_DOUBLE_EQ(scoreCandidate(Stats, ScoreKind::TopKMean, 2),
                   (0.9 + 0.8) / 2);
  EXPECT_NEAR(scoreCandidate(Stats, ScoreKind::MatchCount, 10), 50.0 / 75.0,
              1e-12);
  EXPECT_NEAR(scoreCandidate(Stats, ScoreKind::ProgramCount, 10), 0.5, 1e-12);
  EXPECT_GT(scoreCandidate(Stats, ScoreKind::P95, 10), 0.5);
}

//===----------------------------------------------------------------------===//
// End-to-end pipeline (Fig. 1)
//===----------------------------------------------------------------------===//

namespace {

/// Builds a small corpus with a learnable RetArg spec (Map) and a spurious
/// RetSame candidate (Random.next) that the model should score lower.
void buildMiniCorpus(StringInterner &Strings, std::vector<IRProgram> &Corpus) {
  auto Add = [&](const std::string &Source) {
    DiagnosticSink Diags;
    auto P = parseAndLower(Source, "p" + std::to_string(Corpus.size()),
                           Strings, Diags);
    ASSERT_TRUE(P.has_value()) << Diags.render();
    Corpus.push_back(std::move(*P));
  };

  // Direct flows: teach the model that getFile-returns become getName
  // receivers, and that the same file is getName'd repeatedly.
  for (int I = 0; I < 15; ++I) {
    Add(R"(
      class Main {
        def main() {
          var f = db.getFile("cfg");
          var n = f.getName();
          log.info(n);
        }
      }
    )");
    Add(R"(
      class Main {
        def main() {
          var f = db.getFile("data");
          f.getName();
          f.getName();
        }
      }
    )");
    // Noise: values from next() are consumed once, never re-used; launch
    // receivers are unrelated to files.
    Add(R"(
      class Main {
        def main() {
          var r = new Random();
          var a = r.next();
          sink.consume(a);
          var b = r.next();
          sink.consume(b);
          rocket.launch();
        }
      }
    )");
  }

  // Store/load programs: the candidate source.
  for (int I = 0; I < 8; ++I) {
    Add(R"(
      class Main {
        def main() {
          var map = new Map();
          map.put("k", db.getFile("cfg"));
          var f = map.get("k");
          var n = f.getName();
        }
      }
    )");
  }
}

const ScoredCandidate *findCandidate(const LearnResult &Result,
                                     const Spec &S) {
  for (const ScoredCandidate &C : Result.Candidates)
    if (C.S == S)
      return &C;
  return nullptr;
}

} // namespace

TEST(Learner, EndToEndLearnsMapRetArg) {
  StringInterner S;
  std::vector<IRProgram> Corpus;
  buildMiniCorpus(S, Corpus);
  ASSERT_FALSE(Corpus.empty());

  LearnerConfig Config;
  Config.Tau = 0.6;
  USpecLearner Learner(S, Config);
  LearnResult Result = Learner.learn(Corpus);

  EXPECT_GT(Result.NumTrainingSamples, 100u);
  EXPECT_GT(Result.TrainAccuracy, 0.8);

  Spec MapRetArg = Spec::retArg({S.intern("Map"), S.intern("get"), 1},
                                {S.intern("Map"), S.intern("put"), 2}, 2);
  const ScoredCandidate *C = findCandidate(Result, MapRetArg);
  ASSERT_NE(C, nullptr) << "RetArg(Map.get, Map.put, 2) must be a candidate";
  EXPECT_EQ(C->Matches, 8u);

  Spec RandomRetSame =
      Spec::retSame({S.intern("Random"), S.intern("next"), 0});
  const ScoredCandidate *R = findCandidate(Result, RandomRetSame);
  ASSERT_NE(R, nullptr) << "RetSame(Random.next) must arise as a candidate";

  EXPECT_GT(C->Score, R->Score)
      << "the model must rank the true spec above the spurious one";
}

TEST(Learner, SelectionRespectsTauAndExtends) {
  std::vector<ScoredCandidate> Candidates;
  StringInterner S;
  MethodId Get = {S.intern("Map"), S.intern("get"), 1};
  MethodId Put = {S.intern("Map"), S.intern("put"), 2};
  MethodId Next = {S.intern("Random"), S.intern("next"), 0};
  Candidates.push_back({Spec::retArg(Get, Put, 2), 0.9, 10, 5, 10});
  Candidates.push_back({Spec::retSame(Next), 0.3, 10, 5, 10});

  size_t Added = 0;
  SpecSet Selected = USpecLearner::select(Candidates, 0.6, true, &Added);
  EXPECT_EQ(Selected.size(), 2u); // RetArg + extended RetSame(get)
  EXPECT_EQ(Added, 1u);
  EXPECT_TRUE(Selected.hasRetSame(Get));
  EXPECT_FALSE(Selected.hasRetSame(Next));

  SpecSet NoExtend = USpecLearner::select(Candidates, 0.6, false);
  EXPECT_EQ(NoExtend.size(), 1u);

  SpecSet AllSelected = USpecLearner::select(Candidates, 0.0, false);
  EXPECT_EQ(AllSelected.size(), 2u);
}

TEST(Learner, CountApiClasses) {
  StringInterner S;
  std::vector<ScoredCandidate> Candidates;
  Candidates.push_back(
      {Spec::retSame({S.intern("A"), S.intern("m"), 0}), 1, 1, 1, 1});
  Candidates.push_back(
      {Spec::retSame({S.intern("A"), S.intern("n"), 0}), 1, 1, 1, 1});
  Candidates.push_back(
      {Spec::retSame({S.intern("B"), S.intern("m"), 0}), 1, 1, 1, 1});
  EXPECT_EQ(USpecLearner::countApiClasses(Candidates), 2u);
}
