//===- specio_test.cpp - Tests for spec serialization and DOT export ----------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "eventgraph/Dot.h"
#include "ir/Lowering.h"
#include "specs/SpecIO.h"

#include <gtest/gtest.h>

using namespace uspec;

namespace {

MethodId mid(StringInterner &S, const char *Class, const char *Name,
             uint8_t Arity) {
  return {Class[0] == '?' && Class[1] == 0 ? Symbol() : S.intern(Class),
          S.intern(Name), Arity};
}

} // namespace

TEST(SpecIO, SerializeRoundTrip) {
  StringInterner S;
  SpecSet Specs;
  Specs.insert(Spec::retSame(mid(S, "Map", "get", 1)));
  Specs.insert(Spec::retArg(mid(S, "Map", "get", 1), mid(S, "Map", "put", 2),
                            2));
  Specs.insert(Spec::retSame(mid(S, "?", "getString", 1)));

  std::string Text = serializeSpecs(Specs, S);
  StringInterner S2;
  size_t ErrorLine = 7;
  SpecSet Parsed = parseSpecs(Text, S2, &ErrorLine);
  EXPECT_EQ(ErrorLine, 0u);
  ASSERT_EQ(Parsed.size(), Specs.size());
  // Compare via re-serialization through the second interner.
  EXPECT_EQ(serializeSpecs(Parsed, S2), Text);
}

TEST(SpecIO, UnknownReceiverClassRoundTripIsFixedPoint) {
  // The "?" unknown-receiver class (empty Symbol) must survive
  // serialize → parse → serialize unchanged: the second serialization is a
  // fixed point of the first, in every spec position.
  StringInterner S;
  SpecSet Specs;
  Specs.insert(Spec::retSame(mid(S, "?", "getString", 1)));
  Specs.insert(Spec::retArg(mid(S, "?", "get", 1), mid(S, "?", "put", 2), 2));
  Specs.insert(
      Spec::retArg(mid(S, "Map", "get", 1), mid(S, "?", "wrap", 1), 1));
  Specs.insert(Spec::retRecv(mid(S, "?", "append", 1)));

  std::string Once = serializeSpecs(Specs, S);
  EXPECT_NE(Once.find("RetSame(?.getString/1)"), std::string::npos);

  StringInterner S2;
  size_t ErrorLine = 1;
  SpecSet Parsed = parseSpecs(Once, S2, &ErrorLine);
  ASSERT_EQ(ErrorLine, 0u);
  std::string Twice = serializeSpecs(Parsed, S2);
  EXPECT_EQ(Twice, Once);

  // And the parsed set resolves "?" back to the empty Symbol.
  for (const Spec &Sp : Parsed.all()) {
    if (Sp.TheKind == Spec::Kind::RetRecv) {
      EXPECT_TRUE(Sp.Target.Class.isEmpty());
    }
  }

  // One more cycle for good measure: already at the fixed point.
  StringInterner S3;
  EXPECT_EQ(serializeSpecs(parseSpecs(Twice, S3), S3), Twice);
}

TEST(SpecIO, ParseSingleLines) {
  StringInterner S;
  auto RS = parseSpecLine("RetSame(Map.get/1)", S);
  ASSERT_TRUE(RS.has_value());
  EXPECT_EQ(RS->TheKind, Spec::Kind::RetSame);
  EXPECT_EQ(S.str(RS->Target.Class), "Map");
  EXPECT_EQ(RS->Target.Arity, 1);

  auto RA = parseSpecLine("RetArg(Map.get/1, Map.put/2, 2)", S);
  ASSERT_TRUE(RA.has_value());
  EXPECT_EQ(RA->TheKind, Spec::Kind::RetArg);
  EXPECT_EQ(RA->ArgPos, 2);

  auto Unknown = parseSpecLine("RetSame(?.getString/1)", S);
  ASSERT_TRUE(Unknown.has_value());
  EXPECT_TRUE(Unknown->Target.Class.isEmpty());
}

TEST(SpecIO, ParseToleratesWhitespace) {
  StringInterner S;
  EXPECT_TRUE(parseSpecLine("  RetArg( Map.get/1 , Map.put/2 , 2 )  ", S)
                  .has_value());
}

TEST(SpecIO, RejectsMalformedLines) {
  StringInterner S;
  for (const char *Bad :
       {"RetSame(Map.get)", "RetSame(Map/1)", "RetArg(Map.get/1, Map.put/2)",
        "RetArg(Map.get/1, Map.put/2, 0)", "Nonsense(x)",
        "RetSame(Map.get/1) trailing", "RetSame()"})
    EXPECT_FALSE(parseSpecLine(Bad, S).has_value()) << Bad;
}

TEST(SpecIO, DocumentSkipsCommentsAndReportsErrors) {
  StringInterner S;
  size_t ErrorLine = 0;
  SpecSet Ok = parseSpecs("# header\n\nRetSame(Map.get/1)\n", S, &ErrorLine);
  EXPECT_EQ(ErrorLine, 0u);
  EXPECT_EQ(Ok.size(), 1u);

  parseSpecs("RetSame(Map.get/1)\nbroken line\n", S, &ErrorLine);
  EXPECT_EQ(ErrorLine, 2u);
}

TEST(SpecIO, LoadedSpecsDriveTheAnalysis) {
  // Parse specs from text, run the aware analysis with them.
  StringInterner S;
  size_t ErrorLine = 0;
  SpecSet Specs = parseSpecs(
      "RetSame(Map.get/1)\nRetArg(Map.get/1, Map.put/2, 2)\n", S, &ErrorLine);
  ASSERT_EQ(ErrorLine, 0u);

  DiagnosticSink Diags;
  auto P = parseAndLower(R"(
    class Main {
      def main() {
        var m = new Map();
        m.put("k", api.mk());
        var x = m.get("k");
      }
    }
  )",
                         "t", S, Diags);
  ASSERT_TRUE(P.has_value());
  AnalysisOptions Options;
  Options.ApiAware = true;
  Options.Specs = &Specs;
  AnalysisResult R = analyzeProgram(*P, S, Options);

  EventId MkRet = InvalidEvent, GetRet = InvalidEvent;
  for (EventId E = 0; E < R.Events.size(); ++E) {
    const Event &Ev = R.Events.get(E);
    if (Ev.Kind != EventKind::ApiCall || Ev.Pos != PosRet)
      continue;
    if (S.str(Ev.Method.Name) == "mk")
      MkRet = E;
    if (S.str(Ev.Method.Name) == "get")
      GetRet = E;
  }
  EXPECT_TRUE(R.retMayAlias(GetRet, MkRet));
}

TEST(Dot, RendersClustersAndEdges) {
  StringInterner S;
  DiagnosticSink Diags;
  auto P = parseAndLower(R"(
    class Main {
      def main() {
        var m = new Map();
        m.put("k", 1);
        m.get("k");
      }
    }
  )",
                         "t", S, Diags);
  ASSERT_TRUE(P.has_value());
  AnalysisResult R = analyzeProgram(*P, S, AnalysisOptions());
  EventGraph G = EventGraph::build(R);
  std::string Dot = toDot(G, S, "fig");
  EXPECT_NE(Dot.find("digraph fig"), std::string::npos);
  EXPECT_NE(Dot.find("subgraph cluster_site"), std::string::npos);
  EXPECT_NE(Dot.find("label=\"put\""), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos);
  EXPECT_EQ(Dot.find("digraph"), 0u);
}
