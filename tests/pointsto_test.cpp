//===- pointsto_test.cpp - Tests for the points-to analysis ------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// These tests exercise the analysis of §3.2 (API-unaware mode, abstract
// histories) and §6 (ghost fields), largely via the paper's own running
// examples (Fig. 2, Fig. 6).
//
//===----------------------------------------------------------------------===//

#include "ir/Lowering.h"
#include "pointsto/Analysis.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace uspec;

namespace {

/// Test harness bundling interner + program + analysis result.
struct Analyzed {
  StringInterner Strings;
  IRProgram Program;
  AnalysisResult Result;

  /// Returns the ret-event points-to set of the unique API call site whose
  /// method name is \p Method; fails the test if not unique.
  EventId retEventOf(const std::string &Method, int Occurrence = 0) {
    int Found = 0;
    for (EventId E = 0; E < Result.Events.size(); ++E) {
      const Event &Ev = Result.Events.get(E);
      if (Ev.Kind == EventKind::ApiCall && Ev.Pos == PosRet &&
          Strings.str(Ev.Method.Name) == Method) {
        if (Found == Occurrence)
          return E;
        ++Found;
      }
    }
    ADD_FAILURE() << "no ret event for " << Method << " #" << Occurrence;
    return InvalidEvent;
  }

  const ObjSet &retPts(const std::string &Method, int Occurrence = 0) {
    static const ObjSet Empty;
    EventId E = retEventOf(Method, Occurrence);
    auto It = Result.RetPointsTo.find(E);
    return It == Result.RetPointsTo.end() ? Empty : It->second;
  }

  bool retsAlias(const std::string &MethodA, int OccA,
                 const std::string &MethodB, int OccB) {
    return objSetIntersects(retPts(MethodA, OccA), retPts(MethodB, OccB));
  }
};

Analyzed analyze(std::string_view Source, const AnalysisOptions &Options) {
  Analyzed A;
  DiagnosticSink Diags;
  auto P = parseAndLower(Source, "test", A.Strings, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.render();
  if (P)
    A.Program = std::move(*P);
  A.Result = analyzeProgram(A.Program, A.Strings, Options);
  return A;
}

AnalysisOptions unaware() { return AnalysisOptions(); }

/// The running example of the paper (Fig. 2).
constexpr const char *Fig2 = R"(
  class Main {
    def main() {
      var map = new Map();
      map.put("key", someApi.getFile());
      var name = map.get("key").getName();
    }
  }
)";

/// Specs (4) from §6.2: RetSame(get), RetArg(get, put, 2) for Map.
SpecSet mapSpecs(StringInterner &Strings) {
  SpecSet S;
  MethodId Get = {Strings.intern("Map"), Strings.intern("get"), 1};
  MethodId Put = {Strings.intern("Map"), Strings.intern("put"), 2};
  S.insert(Spec::retArg(Get, Put, 2));
  S.insert(Spec::retSame(Get));
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// API-unaware mode (§3.2)
//===----------------------------------------------------------------------===//

TEST(PointsToUnaware, ApiCallsReturnFreshObjects) {
  Analyzed A = analyze(Fig2, unaware());
  // get's return must NOT alias getFile's return (fresh-object assumption).
  EXPECT_FALSE(A.retsAlias("get", 0, "getFile", 0));
  const ObjSet &GetPts = A.retPts("get");
  ASSERT_EQ(GetPts.size(), 1u);
  EXPECT_EQ(A.Result.Objects.get(GetPts[0]).Kind, ObjectKind::ApiRet);
}

TEST(PointsToUnaware, Fig2HistoriesAreRecorded) {
  Analyzed A = analyze(Fig2, unaware());
  // Find the Map object: a New object of class Map.
  ObjectId MapObj = InvalidObject;
  for (ObjectId O = 0; O < A.Result.Objects.size(); ++O) {
    const AbstractObject &AO = A.Result.Objects.get(O);
    if (AO.Kind == ObjectKind::New && A.Strings.str(AO.Class) == "Map")
      MapObj = O;
  }
  ASSERT_NE(MapObj, InvalidObject);
  const HistorySet &His = A.Result.historiesOf(MapObj);
  ASSERT_EQ(His.size(), 1u);
  // Expected: (⟨newMap, ret⟩, ⟨put, 0⟩, ⟨get, 0⟩).
  ASSERT_EQ(His[0].size(), 3u);
  const Event &E0 = A.Result.Events.get(His[0][0]);
  EXPECT_EQ(E0.Kind, EventKind::NewAlloc);
  const Event &E1 = A.Result.Events.get(His[0][1]);
  EXPECT_EQ(A.Strings.str(E1.Method.Name), "put");
  EXPECT_EQ(E1.Pos, PosReceiver);
  const Event &E2 = A.Result.Events.get(His[0][2]);
  EXPECT_EQ(A.Strings.str(E2.Method.Name), "get");
  EXPECT_EQ(E2.Pos, PosReceiver);
}

TEST(PointsToUnaware, ReceiverClassResolvedFromAllocationSite) {
  Analyzed A = analyze(Fig2, unaware());
  EventId PutRet = A.retEventOf("put");
  const Event &Ev = A.Result.Events.get(PutRet);
  EXPECT_EQ(A.Strings.str(Ev.Method.Class), "Map");
  EXPECT_EQ(Ev.Method.Arity, 2);
  // getFile's receiver is external: class unknown.
  EventId GetFileRet = A.retEventOf("getFile");
  EXPECT_TRUE(A.Result.Events.get(GetFileRet).Method.Class.isEmpty());
}

TEST(PointsToUnaware, StoredObjectHistoryIncludesArgEvent) {
  Analyzed A = analyze(Fig2, unaware());
  // o1 = getFile's return: history (⟨getFile, ret⟩, ⟨put, 2⟩).
  const ObjSet &O1Set = A.retPts("getFile");
  ASSERT_EQ(O1Set.size(), 1u);
  const HistorySet &His = A.Result.historiesOf(O1Set[0]);
  ASSERT_EQ(His.size(), 1u);
  ASSERT_EQ(His[0].size(), 2u);
  EXPECT_EQ(A.Result.Events.get(His[0][0]).Pos, PosRet);
  const Event &PutArg = A.Result.Events.get(His[0][1]);
  EXPECT_EQ(A.Strings.str(PutArg.Method.Name), "put");
  EXPECT_EQ(PutArg.Pos, 2);
}

TEST(PointsToUnaware, BranchesJoinHistories) {
  Analyzed A = analyze(R"(
    class Main {
      def main(c) {
        var x = api.make();
        if (c == null) { x.alpha(); } else { x.beta(); }
        x.gamma();
      }
    }
  )",
                       unaware());
  const ObjSet &XSet = A.retPts("make");
  ASSERT_EQ(XSet.size(), 1u);
  const HistorySet &His = A.Result.historiesOf(XSet[0]);
  // Two joined histories: (make, alpha, gamma) and (make, beta, gamma).
  ASSERT_EQ(His.size(), 2u);
  EXPECT_EQ(His[0].size(), 3u);
  EXPECT_EQ(His[1].size(), 3u);
}

TEST(PointsToUnaware, LoopBodyAnalyzedOnceForHistories) {
  Analyzed A = analyze(R"(
    class Main {
      def main() {
        var x = api.make();
        while (x != null) { x.tick(); }
      }
    }
  )",
                       unaware());
  const ObjSet &XSet = A.retPts("make");
  ASSERT_EQ(XSet.size(), 1u);
  const HistorySet &His = A.Result.historiesOf(XSet[0]);
  // Skip path (make) and single unrolled path (make, tick).
  ASSERT_EQ(His.size(), 2u);
  size_t MaxLen = std::max(His[0].size(), His[1].size());
  EXPECT_EQ(MaxLen, 2u) << "tick must appear at most once per history";
}

TEST(PointsToUnaware, InterproceduralInlining) {
  Analyzed A = analyze(R"(
    class Helper {
      def pass(v) { return v; }
    }
    class Main {
      def main() {
        var h = new Helper();
        var o = api.make();
        var p = h.pass(o);
        p.use();
      }
    }
  )",
                       unaware());
  // `use`'s receiver aliases api.make's return: the Helper call is inlined.
  const ObjSet &MakeSet = A.retPts("make");
  ASSERT_EQ(MakeSet.size(), 1u);
  const HistorySet &His = A.Result.historiesOf(MakeSet[0]);
  bool SawUse = false;
  for (const History &H : His)
    for (EventId E : H)
      if (A.Strings.str(A.Result.Events.get(E).Method.Name) == "use")
        SawUse = true;
  EXPECT_TRUE(SawUse) << "inlined flow should reach the use() receiver event";
}

TEST(PointsToUnaware, FieldStoreFlowsAcrossMethods) {
  // Store in one method, load in another: the global field store plus the
  // outer fixpoint iteration must connect them (this-receiver is the same
  // abstract object in both entries).
  Analyzed A = analyze(R"(
    class Cache {
      var slot;
      def put() { this.slot = api.make(); }
      def get() { var v = this.slot; v.use(); }
    }
  )",
                       unaware());
  const ObjSet &MakeSet = A.retPts("make");
  ASSERT_EQ(MakeSet.size(), 1u);
  bool SawUse = false;
  for (const History &H : A.Result.historiesOf(MakeSet[0]))
    for (EventId E : H)
      if (A.Strings.str(A.Result.Events.get(E).Method.Name) == "use")
        SawUse = true;
  EXPECT_TRUE(SawUse);
}

TEST(PointsToUnaware, DistinctExternalsAreDistinctObjects) {
  Analyzed A = analyze(R"(
    class Main {
      def main() {
        var a = db1.load();
        var b = db2.load();
      }
    }
  )",
                       unaware());
  EXPECT_FALSE(A.retsAlias("load", 0, "load", 1));
}

//===----------------------------------------------------------------------===//
// API-aware mode (§6): ghost fields
//===----------------------------------------------------------------------===//

TEST(PointsToAware, RetArgConnectsPutAndGet) {
  Analyzed A = analyze(Fig2, AnalysisOptions());
  // First sanity: unaware mode does not connect them.
  EXPECT_FALSE(A.retsAlias("get", 0, "getFile", 0));

  // Aware mode: get("key") returns the object stored by put("key", ...).
  StringInterner S2;
  DiagnosticSink Diags;
  auto P = parseAndLower(Fig2, "test", S2, Diags);
  ASSERT_TRUE(P.has_value());
  SpecSet Specs = mapSpecs(S2);
  AnalysisOptions Aware;
  Aware.ApiAware = true;
  Aware.Specs = &Specs;
  AnalysisResult R = analyzeProgram(*P, S2, Aware);

  // Find ret events.
  EventId GetRet = InvalidEvent, GetFileRet = InvalidEvent;
  for (EventId E = 0; E < R.Events.size(); ++E) {
    const Event &Ev = R.Events.get(E);
    if (Ev.Kind != EventKind::ApiCall || Ev.Pos != PosRet)
      continue;
    if (S2.str(Ev.Method.Name) == "get")
      GetRet = E;
    if (S2.str(Ev.Method.Name) == "getFile")
      GetFileRet = E;
  }
  ASSERT_NE(GetRet, InvalidEvent);
  ASSERT_NE(GetFileRet, InvalidEvent);
  EXPECT_TRUE(R.retMayAlias(GetRet, GetFileRet))
      << "ghost fields must connect put/get with equal keys";

  // The merged history of o1 (Fig. 3): getFile.ret, put.2, get.ret,
  // getName.0.
  auto It = R.RetPointsTo.find(GetFileRet);
  ASSERT_NE(It, R.RetPointsTo.end());
  ASSERT_EQ(It->second.size(), 1u);
  const HistorySet &His = R.historiesOf(It->second[0]);
  ASSERT_EQ(His.size(), 1u);
  std::vector<std::string> Names;
  for (EventId E : His[0]) {
    const Event &Ev = R.Events.get(E);
    Names.push_back(S2.str(Ev.Method.Name) +
                    (Ev.Pos == PosRet
                         ? ".ret"
                         : "." + std::to_string(static_cast<int>(Ev.Pos))));
  }
  ASSERT_EQ(Names.size(), 4u);
  EXPECT_EQ(Names[0], "getFile.ret");
  EXPECT_EQ(Names[1], "put.2");
  EXPECT_EQ(Names[2], "get.ret");
  EXPECT_EQ(Names[3], "getName.0");
}

namespace {

/// Runs the aware analysis over \p Source with Map specs.
AnalysisResult analyzeAwareMap(std::string_view Source, StringInterner &S,
                               bool Coverage = false) {
  DiagnosticSink Diags;
  auto P = parseAndLower(Source, "test", S, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.render();
  static SpecSet Specs; // must outlive the analysis call only
  Specs = mapSpecs(S);
  AnalysisOptions Aware;
  Aware.ApiAware = true;
  Aware.Specs = &Specs;
  Aware.CoverageExtension = Coverage;
  return analyzeProgram(*P, S, Aware);
}

EventId retEvent(const AnalysisResult &R, StringInterner &S,
                 const std::string &Method, int Occurrence = 0) {
  int Found = 0;
  for (EventId E = 0; E < R.Events.size(); ++E) {
    const Event &Ev = R.Events.get(E);
    if (Ev.Kind == EventKind::ApiCall && Ev.Pos == PosRet &&
        S.str(Ev.Method.Name) == Method) {
      if (Found == Occurrence)
        return E;
      ++Found;
    }
  }
  return InvalidEvent;
}

} // namespace

TEST(PointsToAware, DifferentKeysDoNotAlias) {
  StringInterner S;
  AnalysisResult R = analyzeAwareMap(R"(
    class Main {
      def main() {
        var map = new Map();
        map.put("a", api.mk());
        var x = map.get("b");
      }
    }
  )",
                                     S);
  EXPECT_FALSE(
      R.retMayAlias(retEvent(R, S, "get"), retEvent(R, S, "mk")));
}

TEST(PointsToAware, RetSameAliasesTwoReadsWithoutWrite) {
  // GhostR allocates a ghost object so two get("k") calls alias even though
  // nothing was ever put (§6.3, rule GhostR's allocation clause).
  StringInterner S;
  AnalysisResult R = analyzeAwareMap(R"(
    class Main {
      def main() {
        var map = new Map();
        var a = map.get("k");
        var b = map.get("k");
        var c = map.get("other");
      }
    }
  )",
                                     S);
  EXPECT_TRUE(R.retMayAlias(retEvent(R, S, "get", 0), retEvent(R, S, "get", 1)));
  EXPECT_FALSE(R.retMayAlias(retEvent(R, S, "get", 0), retEvent(R, S, "get", 2)));
}

TEST(PointsToAware, IntLiteralKeysWork) {
  StringInterner S;
  AnalysisResult R = analyzeAwareMap(R"(
    class Main {
      def main() {
        var map = new Map();
        map.put(7, api.mk());
        var x = map.get(7);
        var y = map.get(8);
      }
    }
  )",
                                     S);
  EXPECT_TRUE(R.retMayAlias(retEvent(R, S, "get", 0), retEvent(R, S, "mk")));
  EXPECT_FALSE(R.retMayAlias(retEvent(R, S, "get", 1), retEvent(R, S, "mk")));
}

TEST(PointsToAware, ObjectKeysUseIdentity) {
  StringInterner S;
  AnalysisResult R = analyzeAwareMap(R"(
    class Main {
      def main() {
        var k1 = new Key();
        var k2 = new Key();
        var map = new Map();
        map.put(k1, api.mk());
        var hit = map.get(k1);
        var miss = map.get(k2);
      }
    }
  )",
                                     S);
  EXPECT_TRUE(R.retMayAlias(retEvent(R, S, "get", 0), retEvent(R, S, "mk")));
  EXPECT_FALSE(R.retMayAlias(retEvent(R, S, "get", 1), retEvent(R, S, "mk")));
}

TEST(PointsToAware, SeparateReceiversHaveSeparateGhostFields) {
  StringInterner S;
  AnalysisResult R = analyzeAwareMap(R"(
    class Main {
      def main() {
        var m1 = new Map();
        var m2 = new Map();
        m1.put("k", api.mk());
        var x = m2.get("k");
      }
    }
  )",
                                     S);
  EXPECT_FALSE(R.retMayAlias(retEvent(R, S, "get"), retEvent(R, S, "mk")));
}

//===----------------------------------------------------------------------===//
// Coverage extension (§6.4, Fig. 6, App. A)
//===----------------------------------------------------------------------===//

TEST(PointsToCoverage, UnknownKeyWriteReachesAllReads) {
  // Fig. 6a: map.put(api.foo(), obj); map.get("k1"); map.get("k2") — with
  // the extension, both reads may return obj via the ⊤ field.
  constexpr const char *Src = R"(
    class Main {
      def main() {
        var map = new Map();
        map.put(api.foo(), api.mk());
        var a = map.get("k1");
        var b = map.get("k2");
      }
    }
  )";
  {
    StringInterner S;
    AnalysisResult R = analyzeAwareMap(Src, S, /*Coverage=*/false);
    EXPECT_FALSE(R.retMayAlias(retEvent(R, S, "get", 0), retEvent(R, S, "mk")));
  }
  {
    StringInterner S;
    AnalysisResult R = analyzeAwareMap(Src, S, /*Coverage=*/true);
    EXPECT_TRUE(R.retMayAlias(retEvent(R, S, "get", 0), retEvent(R, S, "mk")));
    EXPECT_TRUE(R.retMayAlias(retEvent(R, S, "get", 1), retEvent(R, S, "mk")));
  }
}

TEST(PointsToCoverage, UnknownKeyReadSeesAllWrites) {
  // Fig. 6b: map.put("k", obj); map.get(api.foo()); map.get("k").
  constexpr const char *Src = R"(
    class Main {
      def main() {
        var map = new Map();
        map.put("k", api.mk());
        var a = map.get(api.foo());
        var b = map.get("k");
      }
    }
  )";
  {
    StringInterner S;
    AnalysisResult R = analyzeAwareMap(Src, S, /*Coverage=*/false);
    EXPECT_FALSE(R.retMayAlias(retEvent(R, S, "get", 0), retEvent(R, S, "mk")));
    // The precise read still works without the extension.
    EXPECT_TRUE(R.retMayAlias(retEvent(R, S, "get", 1), retEvent(R, S, "mk")));
  }
  {
    StringInterner S;
    AnalysisResult R = analyzeAwareMap(Src, S, /*Coverage=*/true);
    EXPECT_TRUE(R.retMayAlias(retEvent(R, S, "get", 0), retEvent(R, S, "mk")));
    EXPECT_TRUE(R.retMayAlias(retEvent(R, S, "get", 1), retEvent(R, S, "mk")));
  }
}

TEST(PointsToCoverage, MissingWriteKeepsTopReadsSeparate) {
  // App. A: in Fig. 6a without the put, the two gets must NOT alias (the new
  // object is not allocated for ⊤) — here with unknown keys on both gets.
  StringInterner S;
  AnalysisResult R = analyzeAwareMap(R"(
    class Main {
      def main() {
        var map = new Map();
        var a = map.get(api.k1());
        var b = map.get(api.k2());
      }
    }
  )",
                                     S, /*Coverage=*/true);
  // Both read ⊥(get) — they alias with each other through the ⊥ ghost, which
  // is the documented may-alias trade-off of §6.4 (coverage over precision).
  EXPECT_TRUE(R.retMayAlias(retEvent(R, S, "get", 0), retEvent(R, S, "get", 1)));
}

//===----------------------------------------------------------------------===//
// PtsSet (arena-backed small-set representation)
//===----------------------------------------------------------------------===//

namespace {

ObjSet toSorted(const PtsSet &S) { return S.toObjSet(); }

} // namespace

TEST(PtsSet, SmallModeInsertKeepsSortedUnique) {
  Arena A;
  PtsSet S;
  EXPECT_TRUE(S.insert(5, A));
  EXPECT_TRUE(S.insert(1, A));
  EXPECT_TRUE(S.insert(3, A));
  EXPECT_FALSE(S.insert(3, A));
  EXPECT_FALSE(S.isDense());
  EXPECT_EQ(toSorted(S), (ObjSet{1, 3, 5}));
  EXPECT_TRUE(S.contains(3));
  EXPECT_FALSE(S.contains(4));
}

TEST(PtsSet, PromotesToDensePastSmallCap) {
  Arena A;
  PtsSet S;
  // Insert in descending order so the small path shifts, then promotes.
  for (ObjectId Obj = 2 * PtsSet::SmallCap; Obj > 0; --Obj)
    EXPECT_TRUE(S.insert(Obj * 10, A));
  EXPECT_TRUE(S.isDense());
  EXPECT_EQ(S.size(), 2 * PtsSet::SmallCap);
  ObjSet Expect;
  for (ObjectId Obj = 1; Obj <= 2 * PtsSet::SmallCap; ++Obj)
    Expect.push_back(Obj * 10);
  // forEach must stay ascending after promotion — the bit-identity contract.
  EXPECT_EQ(toSorted(S), Expect);
  // Large ids force bitset growth; earlier bits survive the regrow.
  EXPECT_TRUE(S.insert(100000, A));
  EXPECT_TRUE(S.contains(10));
  EXPECT_TRUE(S.contains(100000));
}

TEST(PtsSet, UnionWithMirrorsObjSetUnion) {
  Arena A;
  Rng R(1234);
  for (int Trial = 0; Trial < 200; ++Trial) {
    PtsSet P1, P2;
    ObjSet V1, V2;
    for (int I = 0, N = static_cast<int>(R.below(20)); I < N; ++I) {
      ObjectId Obj = static_cast<ObjectId>(R.below(300));
      P1.insert(Obj, A);
      objSetInsert(V1, Obj);
    }
    for (int I = 0, N = static_cast<int>(R.below(20)); I < N; ++I) {
      ObjectId Obj = static_cast<ObjectId>(R.below(300));
      P2.insert(Obj, A);
      objSetInsert(V2, Obj);
    }
    EXPECT_EQ(toSorted(P1), V1);
    EXPECT_EQ(objSetIntersects(P1, P2), objSetIntersects(V1, V2));
    bool GrewP = P1.unionWith(P2, A);
    bool GrewV = objSetUnion(V1, V2);
    EXPECT_EQ(GrewP, GrewV);
    EXPECT_EQ(toSorted(P1), V1);
  }
}

TEST(PtsSet, SelfUnionIsNoOp) {
  Arena A;
  PtsSet S;
  for (ObjectId Obj = 0; Obj < 10; ++Obj)
    S.insert(Obj * 7, A);
  EXPECT_FALSE(S.unionWith(S, A));
  EXPECT_EQ(S.size(), 10u);
}

TEST(PtsSet, CloneIsDeepForDenseSets) {
  Arena A;
  PtsSet S;
  for (ObjectId Obj = 0; Obj < 20; ++Obj)
    S.insert(Obj, A);
  ASSERT_TRUE(S.isDense());
  PtsSet C = S.clone(A);
  C.insert(500, A);
  EXPECT_FALSE(S.contains(500));
  EXPECT_TRUE(C.contains(500));
  EXPECT_EQ(S.size(), 20u);
}

//===----------------------------------------------------------------------===//
// objSetUnion subset fast path (regression: no-growth union must not
// allocate, and must return false)
//===----------------------------------------------------------------------===//

TEST(ObjSetUnion, SubsetUnionDoesNotGrowOrReallocate) {
  ObjSet Into{1, 3, 5, 7, 9};
  ObjSet From{3, 7};
  const ObjectId *Data = Into.data();
  EXPECT_FALSE(objSetUnion(Into, From));
  EXPECT_EQ(Into.data(), Data) << "subset union must not touch storage";
  EXPECT_EQ(Into, (ObjSet{1, 3, 5, 7, 9}));
}

TEST(ObjSetUnion, GrowingUnionMergesSorted) {
  ObjSet Into{2, 4};
  ObjSet From{1, 4, 9};
  EXPECT_TRUE(objSetUnion(Into, From));
  EXPECT_EQ(Into, (ObjSet{1, 2, 4, 9}));
  // Union into empty copies.
  ObjSet Empty;
  EXPECT_TRUE(objSetUnion(Empty, Into));
  EXPECT_EQ(Empty, Into);
  // Empty From never grows.
  ObjSet None;
  EXPECT_FALSE(objSetUnion(Into, None));
}

TEST(ObjSetUnion, AliasedSelfUnionIsSafe) {
  ObjSet S{1, 2, 3};
  EXPECT_FALSE(objSetUnion(S, S));
  EXPECT_EQ(S, (ObjSet{1, 2, 3}));
}

//===----------------------------------------------------------------------===//
// ObjectTable identity regressions
//===----------------------------------------------------------------------===//

TEST(ObjectTable, SiteObjectKeyIncludesSymbol) {
  // Regression: two creations at the same (kind, site, ctx) with different
  // class/value symbols must be distinct objects — the symbol is part of
  // the identity, not a first-writer-wins label.
  StringInterner Strings;
  ObjectTable T;
  Symbol File = Strings.intern("File");
  Symbol Sock = Strings.intern("Socket");
  ObjectId O1 = T.getSiteObject(ObjectKind::New, 7, 0, File);
  ObjectId O2 = T.getSiteObject(ObjectKind::New, 7, 0, Sock);
  EXPECT_NE(O1, O2);
  EXPECT_EQ(T.get(O1).Class, File);
  EXPECT_EQ(T.get(O2).Class, Sock);
  // Same symbol → same object (dedup still works).
  EXPECT_EQ(T.getSiteObject(ObjectKind::New, 7, 0, File), O1);
  // Kind is also part of the key.
  ObjectId O3 = T.getSiteObject(ObjectKind::ApiRet, 7, 0, File);
  EXPECT_NE(O3, O1);
  EXPECT_EQ(T.get(O3).Value, File);
}

TEST(ObjectTable, ParamObjectRecordsOrigin) {
  // Regression: Param objects used to drop their class/method/index, making
  // every parameter object indistinguishable in diagnostics.
  StringInterner Strings;
  ObjectTable T;
  Symbol Cls = Strings.intern("Main");
  Symbol Mth = Strings.intern("handle");
  ObjectId P0 = T.getParamObject(Cls, Mth, 0);
  ObjectId P1 = T.getParamObject(Cls, Mth, 1);
  EXPECT_NE(P0, P1);
  const AbstractObject &AO = T.get(P1);
  EXPECT_EQ(AO.Kind, ObjectKind::Param);
  EXPECT_EQ(AO.Class, Cls);
  EXPECT_EQ(AO.Value, Mth);
  EXPECT_EQ(AO.Site, 1u);
  EXPECT_EQ(T.getParamObject(Cls, Mth, 1), P1);
}
