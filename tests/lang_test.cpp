//===- lang_test.cpp - Tests for the MiniLang frontend -----------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "lang/Printer.h"

#include <gtest/gtest.h>

using namespace uspec;

namespace {

std::vector<Token> lex(std::string_view Source) {
  DiagnosticSink Diags;
  Lexer L(Source, Diags);
  auto Tokens = L.lexAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render();
  return Tokens;
}

Module parseOk(std::string_view Source) {
  DiagnosticSink Diags;
  auto M = Parser::parse(Source, "test", Diags);
  EXPECT_TRUE(M.has_value());
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render();
  return std::move(*M);
}

} // namespace

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, KeywordsAndIdentifiers) {
  auto Tokens = lex("class def var new foo_1 Bar");
  ASSERT_EQ(Tokens.size(), 7u); // + EOF
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwClass);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::KwDef);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::KwVar);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::KwNew);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[4].Text, "foo_1");
  EXPECT_EQ(Tokens[5].Text, "Bar");
}

TEST(Lexer, StringEscapes) {
  auto Tokens = lex(R"("a\nb\"c\\d")");
  ASSERT_GE(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Tokens[0].Text, "a\nb\"c\\d");
}

TEST(Lexer, IntLiteralAndPunct) {
  auto Tokens = lex("x = 42; y.z(1, 2)");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Assign);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Tokens[2].Text, "42");
  EXPECT_EQ(Tokens[3].Kind, TokenKind::Semicolon);
}

TEST(Lexer, ComparisonOperators) {
  auto Tokens = lex("== != < >");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::EqualEqual);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::NotEqual);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Less);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::Greater);
}

TEST(Lexer, LineCommentsSkipped) {
  auto Tokens = lex("a // comment == != \n b");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
  EXPECT_EQ(Tokens[1].Line, 2);
}

TEST(Lexer, TracksLineAndColumn) {
  auto Tokens = lex("a\n  b");
  EXPECT_EQ(Tokens[0].Line, 1);
  EXPECT_EQ(Tokens[0].Column, 1);
  EXPECT_EQ(Tokens[1].Line, 2);
  EXPECT_EQ(Tokens[1].Column, 3);
}

TEST(Lexer, UnterminatedStringReportsError) {
  DiagnosticSink Diags;
  Lexer L("\"abc", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, UnexpectedCharacterReportsError) {
  DiagnosticSink Diags;
  Lexer L("a # b", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(Parser, EmptyClass) {
  Module M = parseOk("class Main { }");
  ASSERT_EQ(M.Classes.size(), 1u);
  EXPECT_EQ(M.Classes[0].Name, "Main");
  EXPECT_TRUE(M.Classes[0].Methods.empty());
}

TEST(Parser, FieldsAndMethods) {
  Module M = parseOk(R"(
    class C {
      var cache;
      var other;
      def m(a, b) { return a; }
    }
  )");
  ASSERT_EQ(M.Classes.size(), 1u);
  const ClassDecl &C = M.Classes[0];
  EXPECT_EQ(C.Fields.size(), 2u);
  ASSERT_EQ(C.Methods.size(), 1u);
  EXPECT_EQ(C.Methods[0].Name, "m");
  EXPECT_EQ(C.Methods[0].Params.size(), 2u);
  ASSERT_EQ(C.Methods[0].Body.size(), 1u);
  EXPECT_EQ(C.Methods[0].Body[0]->getKind(), Stmt::Kind::Return);
}

TEST(Parser, HashMapExampleFromFig2) {
  // The running example of the paper (Fig. 2), in MiniLang syntax.
  Module M = parseOk(R"(
    class Main {
      def main() {
        var map = new Map();
        map.put("key", someApi.getFile());
        var name = map.get("key").getName();
      }
    }
  )");
  const MethodDecl &Main = M.Classes[0].Methods[0];
  ASSERT_EQ(Main.Body.size(), 3u);
  // Statement 2: map.put("key", someApi.getFile());
  const auto *Call =
      dyn_cast<CallExpr>(cast<ExprStmt>(Main.Body[1].get())->E.get());
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(Call->Method, "put");
  ASSERT_EQ(Call->Args.size(), 2u);
  EXPECT_EQ(Call->Args[0]->getKind(), Expr::Kind::StringLit);
  EXPECT_EQ(Call->Args[1]->getKind(), Expr::Kind::Call);
}

TEST(Parser, ChainedCallsAndFieldReads) {
  Module M = parseOk(R"(
    class Main { def main() { var x = a.b.c().d; } }
  )");
  // a.b -> field read; .c() -> call; .d -> field read
  const auto *Decl =
      cast<VarDeclStmt>(M.Classes[0].Methods[0].Body[0].get());
  const auto *D = dyn_cast<FieldReadExpr>(Decl->Init.get());
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Field, "d");
  const auto *C = dyn_cast<CallExpr>(D->Base.get());
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->Method, "c");
}

TEST(Parser, IfElseWithConditions) {
  Module M = parseOk(R"(
    class Main {
      def main() {
        var x = api.get();
        if (x != null) { x.use(); } else { api.log(); }
        while (x == null) { x = api.get(); }
      }
    }
  )");
  const auto &Body = M.Classes[0].Methods[0].Body;
  ASSERT_EQ(Body.size(), 3u);
  const auto *If = cast<IfStmt>(Body[1].get());
  EXPECT_EQ(If->Cond.Op, CmpOp::Ne);
  EXPECT_EQ(If->Then.size(), 1u);
  EXPECT_EQ(If->Else.size(), 1u);
  const auto *While = cast<WhileStmt>(Body[2].get());
  EXPECT_EQ(While->Cond.Op, CmpOp::Eq);
}

TEST(Parser, ImplicitThisCallAndThisKeyword) {
  Module M = parseOk(R"(
    class C {
      var f;
      def helper() { return this.f; }
      def main() { var x = helper(); this.f = x; }
    }
  )");
  const MethodDecl &Main = M.Classes[0].Methods[1];
  const auto *Decl = cast<VarDeclStmt>(Main.Body[0].get());
  const auto *Call = cast<CallExpr>(Decl->Init.get());
  EXPECT_EQ(Call->Receiver, nullptr); // implicit this
  const auto *Assign = cast<AssignStmt>(Main.Body[1].get());
  const auto *Target = cast<FieldReadExpr>(Assign->Target.get());
  EXPECT_EQ(Target->Base->getKind(), Expr::Kind::This);
}

TEST(Parser, FieldAssignment) {
  Module M = parseOk("class C { var f; def m(o) { o.f = o; } }");
  const auto *Assign =
      cast<AssignStmt>(M.Classes[0].Methods[0].Body[0].get());
  EXPECT_EQ(Assign->Target->getKind(), Expr::Kind::FieldRead);
}

TEST(Parser, ErrorOnBadAssignTarget) {
  DiagnosticSink Diags;
  Parser::parse("class C { def m() { m() = 3; } }", "t", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, ErrorOnMissingSemicolon) {
  DiagnosticSink Diags;
  Parser::parse("class C { def m() { var x = 1 } }", "t", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, MultipleClasses) {
  Module M = parseOk("class A { } class B { def m() { } }");
  EXPECT_EQ(M.Classes.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Printer round-trips
//===----------------------------------------------------------------------===//

namespace {

/// Structural equality via printing: parse -> print -> parse -> print must be
/// a fixpoint.
void expectRoundTrip(const std::string &Source) {
  Module M1 = parseOk(Source);
  std::string P1 = printModule(M1);
  Module M2 = parseOk(P1);
  std::string P2 = printModule(M2);
  EXPECT_EQ(P1, P2) << "printer not a fixpoint for:\n" << Source;
}

} // namespace

TEST(Printer, RoundTripSimple) {
  expectRoundTrip("class Main { def main() { var x = new Map(); } }");
}

TEST(Printer, RoundTripFullFeatureSet) {
  expectRoundTrip(R"(
    class Helper {
      var state;
      def init(v) { this.state = v; }
      def get() { return this.state; }
    }
    class Main {
      def main() {
        var h = new Helper(someApi.load("cfg"));
        var map = new Map();
        map.put("k\n1", h.get());
        if (map.get("k\n1") != null) {
          var it = list.iterator();
          while (it.hasNext()) {
            it.next().process(1, "two", null);
          }
        } else {
          log.warn("missing");
        }
        return;
      }
    }
  )");
}

TEST(Printer, RoundTripEscapes) {
  expectRoundTrip(R"(class C { def m() { var s = "a\\b\"c\td"; } })");
}

TEST(Printer, ExprPrinting) {
  Module M = parseOk(
      "class C { def m() { var x = a.b(c.d(), \"s\", 42).e; } }");
  const auto *Decl = cast<VarDeclStmt>(M.Classes[0].Methods[0].Body[0].get());
  EXPECT_EQ(printExpr(*Decl->Init), "a.b(c.d(), \"s\", 42).e");
}
