//===- artifact_test.cpp - Tests for the USPB artifact store ------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Covers the binary primitives, the USPB container, every typed codec, the
// checkpointed train → save → load → select(τ) pipeline (which must be
// byte-identical to the in-memory learn path), and robustness against
// truncated/mutated artifacts (which must fail with diagnostics, never UB).
//
//===----------------------------------------------------------------------===//

#include "artifact/Checkpoint.h"
#include "artifact/Container.h"
#include "corpus/Generator.h"
#include "corpus/Profiles.h"
#include "specs/SpecIO.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace uspec;

//===----------------------------------------------------------------------===//
// Binary primitives
//===----------------------------------------------------------------------===//

TEST(Binary, FixedWidthRoundTrip) {
  BinaryWriter W;
  W.writeU8(0xAB);
  W.writeU16(0xBEEF);
  W.writeU32(0xDEADBEEFu);
  W.writeU64(0x0123456789ABCDEFull);
  W.writeF32(3.5f);
  W.writeF64(-0.125);
  W.writeString("hello");
  W.writeString("");

  BinaryReader R(W.data(), "test");
  EXPECT_EQ(R.readU8(), 0xAB);
  EXPECT_EQ(R.readU16(), 0xBEEF);
  EXPECT_EQ(R.readU32(), 0xDEADBEEFu);
  EXPECT_EQ(R.readU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(R.readF32(), 3.5f);
  EXPECT_EQ(R.readF64(), -0.125);
  EXPECT_EQ(R.readString(), "hello");
  EXPECT_EQ(R.readString(), "");
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.atEnd());
}

TEST(Binary, LittleEndianLayout) {
  BinaryWriter W;
  W.writeU32(0x01020304u);
  ASSERT_EQ(W.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(W.data()[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(W.data()[3]), 0x01);
}

TEST(Binary, VarintRoundTrip) {
  const uint64_t Values[] = {0,     1,        127,         128,  16383,
                             16384, 1u << 20, 0xC0FFEEull, ~0ull};
  BinaryWriter W;
  for (uint64_t V : Values)
    W.writeVarint(V);
  BinaryReader R(W.data(), "test");
  for (uint64_t V : Values)
    EXPECT_EQ(R.readVarint(), V);
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.atEnd());
}

TEST(Binary, TruncatedReadsFailWithoutUB) {
  BinaryWriter W;
  W.writeU32(42);
  std::string Bytes = W.take();
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    BinaryReader R(std::string_view(Bytes).substr(0, Len), "sec");
    R.readU32();
    EXPECT_FALSE(R.ok());
    EXPECT_EQ(R.error().Section, "sec");
    // Sticky: further reads keep failing and return zero.
    EXPECT_EQ(R.readU64(), 0u);
    EXPECT_FALSE(R.ok());
  }
}

TEST(Binary, TruncatedVarintFails) {
  std::string Bytes = "\xFF\xFF"; // two continuation bytes, then EOF
  BinaryReader R(Bytes, "sec");
  R.readVarint();
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.error().Message.find("varint"), std::string::npos);
}

TEST(Binary, OverlongVarintFails) {
  std::string Bytes(11, '\xFF'); // would encode > 64 bits
  BinaryReader R(Bytes, "sec");
  R.readVarint();
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.error().Message.find("overflow"), std::string::npos);
}

TEST(Binary, CountLimitEnforced) {
  BinaryWriter W;
  W.writeVarint(1000);
  BinaryReader R(W.data(), "sec");
  R.readCount(10, "thing");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.error().Message.find("exceeds limit"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Container
//===----------------------------------------------------------------------===//

namespace {

std::string smallContainer() {
  ArtifactWriter W;
  W.addSection("alpha", "first section payload");
  W.addSection("beta", std::string("\x00\x01\x02nul-safe", 11));
  W.addSection("gamma", "");
  return W.finish();
}

} // namespace

TEST(Container, RoundTrip) {
  std::string Bytes = smallContainer();
  ArtifactError Err;
  auto A = ArtifactReader::open(Bytes, &Err);
  ASSERT_TRUE(A.has_value()) << Err.str();
  EXPECT_EQ(A->version(), ArtifactFormatVersion);
  ASSERT_EQ(A->sections().size(), 3u);
  EXPECT_EQ(A->section("alpha"), "first section payload");
  EXPECT_EQ(A->section("beta")->size(), 11u);
  EXPECT_EQ(A->section("gamma"), "");
  EXPECT_FALSE(A->section("delta").has_value());
  EXPECT_TRUE(A->hasSection("beta"));
}

TEST(Container, RejectsBadMagic) {
  std::string Bytes = smallContainer();
  Bytes[0] = 'X';
  ArtifactError Err;
  EXPECT_FALSE(ArtifactReader::open(Bytes, &Err).has_value());
  EXPECT_NE(Err.Message.find("magic"), std::string::npos);
}

TEST(Container, RejectsVersionMismatch) {
  std::string Bytes = smallContainer();
  Bytes[4] = 99; // little-endian version low byte
  ArtifactError Err;
  EXPECT_FALSE(ArtifactReader::open(Bytes, &Err).has_value());
  EXPECT_NE(Err.Message.find("version"), std::string::npos);
  EXPECT_EQ(Err.Offset, 6u); // reported right after reading the u16
}

TEST(Container, DetectsPayloadCorruptionByName) {
  std::string Bytes = smallContainer();
  // Flip a byte inside the payload (the tail holds the section bytes).
  Bytes[Bytes.size() - 3] ^= 0x40;
  ArtifactError Err;
  EXPECT_FALSE(ArtifactReader::open(Bytes, &Err).has_value());
  EXPECT_NE(Err.Message.find("checksum mismatch"), std::string::npos);
  // The diagnostic names the corrupted section.
  EXPECT_NE(Err.Message.find("beta"), std::string::npos);
}

TEST(Container, TruncationAtEveryPrefixFailsCleanly) {
  std::string Bytes = smallContainer();
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    ArtifactError Err;
    auto A = ArtifactReader::open(std::string_view(Bytes).substr(0, Len),
                                  &Err);
    EXPECT_FALSE(A.has_value()) << "prefix " << Len;
    EXPECT_FALSE(Err.Message.empty());
  }
}

//===----------------------------------------------------------------------===//
// Typed codecs
//===----------------------------------------------------------------------===//

namespace {

MethodId mid(StringInterner &S, const char *Class, const char *Name,
             uint8_t Arity) {
  return {Class[0] == '?' && Class[1] == 0 ? Symbol() : S.intern(Class),
          S.intern(Name), Arity};
}

} // namespace

TEST(ArtifactIO, SpecSetRoundTripIncludingUnknownClass) {
  StringInterner S;
  SpecSet Specs;
  Specs.insert(Spec::retSame(mid(S, "Map", "get", 1)));
  Specs.insert(
      Spec::retArg(mid(S, "Map", "get", 1), mid(S, "Map", "put", 2), 2));
  Specs.insert(Spec::retSame(mid(S, "?", "getString", 1)));
  Specs.insert(Spec::retRecv(mid(S, "Builder", "append", 1)));

  SymbolTableBuilder Builder(S);
  std::string SpecBytes = encodeSpecSet(Specs, Builder);
  std::string TableBytes = Builder.encode();

  StringInterner S2;
  ArtifactError Err;
  auto Table = SymbolTable::decode(TableBytes, S2, &Err);
  ASSERT_TRUE(Table.has_value()) << Err.str();
  auto Loaded = decodeSpecSet(SpecBytes, *Table, &Err);
  ASSERT_TRUE(Loaded.has_value()) << Err.str();

  // Insertion order and content survive, so the text twin matches too.
  EXPECT_EQ(serializeSpecs(*Loaded, S2), serializeSpecs(Specs, S));
  EXPECT_TRUE(Loaded->hasRetSame({Symbol(), S2.intern("getString"), 1}));
}

TEST(ArtifactIO, SpecDecodeRejectsMalformed) {
  StringInterner S;
  SymbolTableBuilder Builder(S);
  BinaryWriter W;
  encodeSpec(W, Spec::retSame(mid(S, "Map", "get", 1)), Builder);
  std::string TableBytes = Builder.encode();

  StringInterner S2;
  auto Table = SymbolTable::decode(TableBytes, S2);
  ASSERT_TRUE(Table.has_value());

  {
    // Unknown kind byte.
    std::string Bad = W.data();
    Bad[0] = 7;
    BinaryReader R(Bad, "spec");
    decodeSpec(R, *Table);
    EXPECT_FALSE(R.ok());
    EXPECT_NE(R.error().Message.find("kind"), std::string::npos);
  }
  {
    // Out-of-range symbol id.
    BinaryWriter W2;
    W2.writeU8(0);         // RetSame
    W2.writeVarint(0);     // class ""
    W2.writeVarint(999);   // name: out of table range
    W2.writeU8(1);
    BinaryReader R(W2.data(), "spec");
    decodeSpec(R, *Table);
    EXPECT_FALSE(R.ok());
    EXPECT_NE(R.error().Message.find("out of range"), std::string::npos);
  }
}

TEST(ArtifactIO, ModelRoundTripPredictsIdentically) {
  EdgeModelConfig Cfg;
  Cfg.DimBits = 10;
  EdgeModel Model(Cfg);

  // Train on synthetic feature vectors across two position keys.
  Rng Rand(42);
  std::vector<TrainingSample> Samples;
  for (int I = 0; I < 200; ++I) {
    TrainingSample S;
    S.Features.PosKey = I % 2;
    for (int J = 0; J < 8; ++J)
      S.Features.Hashes.push_back(static_cast<uint32_t>(Rand.next()));
    S.Label = static_cast<float>(I % 3 == 0);
    Samples.push_back(std::move(S));
  }
  Model.train(Samples);
  ASSERT_EQ(Model.numModels(), 2u);

  ArtifactError Err;
  auto Loaded = decodeModel(encodeModel(Model), &Err);
  ASSERT_TRUE(Loaded.has_value()) << Err.str();
  EXPECT_EQ(Loaded->numModels(), Model.numModels());
  EXPECT_EQ(Loaded->config().DimBits, Cfg.DimBits);
  for (const TrainingSample &S : Samples)
    EXPECT_EQ(Loaded->predict(S.Features), Model.predict(S.Features));
  // Unseen position keys still fall back to 0.5.
  EdgeFeatures Unseen;
  Unseen.PosKey = 35;
  EXPECT_EQ(Loaded->predict(Unseen), 0.5);
}

TEST(ArtifactIO, CandidateTableRoundTrip) {
  StringInterner S;
  std::vector<ScoredCandidate> Candidates;
  ScoredCandidate A;
  A.S = Spec::retArg(mid(S, "Map", "get", 1), mid(S, "Map", "put", 2), 2);
  A.Score = 0.875;
  A.Matches = 41;
  A.Programs = 17;
  A.NumConfidences = 12;
  ScoredCandidate B;
  B.S = Spec::retSame(mid(S, "?", "next", 0));
  B.Score = 0.25;
  Candidates.push_back(A);
  Candidates.push_back(B);

  SymbolTableBuilder Builder(S);
  std::string Bytes = encodeCandidates(Candidates, Builder);
  std::string TableBytes = Builder.encode();

  StringInterner S2;
  auto Table = SymbolTable::decode(TableBytes, S2);
  ASSERT_TRUE(Table.has_value());
  ArtifactError Err;
  auto Loaded = decodeCandidates(Bytes, *Table, &Err);
  ASSERT_TRUE(Loaded.has_value()) << Err.str();
  ASSERT_EQ(Loaded->size(), 2u);
  EXPECT_EQ((*Loaded)[0].S.str(S2), A.S.str(S));
  EXPECT_EQ((*Loaded)[0].Score, 0.875);
  EXPECT_EQ((*Loaded)[0].Matches, 41u);
  EXPECT_EQ((*Loaded)[0].Programs, 17u);
  EXPECT_EQ((*Loaded)[0].NumConfidences, 12u);
  EXPECT_TRUE((*Loaded)[1].S.Target.Class.isEmpty());
}

TEST(ArtifactIO, ManifestRoundTripAndMatching) {
  CorpusManifest M;
  M.Entries.push_back({"a.mini", 0x1111});
  M.Entries.push_back({"b.mini", 0x2222});

  ArtifactError Err;
  auto Loaded = decodeManifest(encodeManifest(M), &Err);
  ASSERT_TRUE(Loaded.has_value()) << Err.str();
  EXPECT_EQ(*Loaded, M);
  EXPECT_TRUE(Loaded->sameCorpus(M));

  CorpusManifest Renamed = M;
  Renamed.Entries[0].Name = "c.mini"; // names are display-only
  EXPECT_TRUE(Renamed.sameCorpus(M));

  CorpusManifest Changed = M;
  Changed.Entries[1].Fingerprint = 0x3333;
  EXPECT_FALSE(Changed.sameCorpus(M));
  CorpusManifest Shorter = M;
  Shorter.Entries.pop_back();
  EXPECT_FALSE(Shorter.sameCorpus(M));
}

//===----------------------------------------------------------------------===//
// Checkpointed pipeline: train → save → load → select(τ) ≡ learn
//===----------------------------------------------------------------------===//

namespace {

struct Trained {
  StringInterner Strings;
  LearnerConfig Config;
  LearnResult Result;
  std::string Artifact;
};

std::unique_ptr<Trained> trainSmall(const LanguageProfile &Profile,
                                    uint64_t Seed, double Tau = 0.6) {
  auto T = std::make_unique<Trained>();
  GeneratorConfig GenCfg;
  GenCfg.NumPrograms = 40;
  GenCfg.Seed = Seed;
  GeneratedCorpus Corpus = generateCorpus(Profile, GenCfg, T->Strings);
  T->Config.Tau = Tau;
  T->Config.Seed = Seed ^ 0xABCDEFull;
  USpecLearner Learner(T->Strings, T->Config);
  T->Result = Learner.learn(Corpus.Programs);
  T->Artifact = Learner.saveArtifacts(T->Result);
  return T;
}

} // namespace

TEST(Checkpoint, SelectFromLoadedArtifactMatchesLearnAcrossSeedsAndProfiles) {
  const LanguageProfile Profiles[] = {javaProfile(), pythonProfile()};
  const uint64_t Seeds[] = {1, 7, 1234};
  for (const LanguageProfile &Profile : Profiles) {
    for (uint64_t Seed : Seeds) {
      auto T = trainSmall(Profile, Seed);
      ASSERT_FALSE(T->Result.Candidates.empty());

      StringInterner Loaded;
      ArtifactError Err;
      auto A = USpecLearner::loadArtifacts(T->Artifact, Loaded, &Err);
      ASSERT_TRUE(A.has_value())
          << Profile.Name << " seed " << Seed << ": " << Err.str();

      // Run statistics and config survive.
      EXPECT_EQ(A->Config.Tau, T->Config.Tau);
      EXPECT_EQ(A->Config.Seed, T->Config.Seed);
      EXPECT_EQ(A->Result.NumTrainingSamples, T->Result.NumTrainingSamples);
      EXPECT_EQ(A->Result.TrainAccuracy, T->Result.TrainAccuracy);
      EXPECT_EQ(A->Result.AddedByExtension, T->Result.AddedByExtension);
      EXPECT_EQ(A->Result.Model.numModels(), T->Result.Model.numModels());

      // Candidate table: same length, same scores/stats/specs (exact).
      ASSERT_EQ(A->Result.Candidates.size(), T->Result.Candidates.size());
      for (size_t I = 0; I < T->Result.Candidates.size(); ++I) {
        const ScoredCandidate &X = T->Result.Candidates[I];
        const ScoredCandidate &Y = A->Result.Candidates[I];
        EXPECT_EQ(X.S.str(T->Strings), Y.S.str(Loaded));
        EXPECT_EQ(X.Score, Y.Score);
        EXPECT_EQ(X.Matches, Y.Matches);
      }

      // The stored selected set is the learn path's, byte for byte.
      EXPECT_EQ(serializeSpecs(A->Result.Selected, Loaded),
                serializeSpecs(T->Result.Selected, T->Strings));

      // Re-selecting from loaded candidates at any τ matches the in-memory
      // pipeline's selection at that τ exactly (text twin included).
      for (double Tau : {0.0, 0.3, 0.6, 0.8, 0.95}) {
        SpecSet FromLoaded =
            USpecLearner::select(A->Result.Candidates, Tau, true);
        SpecSet FromMemory =
            USpecLearner::select(T->Result.Candidates, Tau, true);
        EXPECT_EQ(serializeSpecs(FromLoaded, Loaded),
                  serializeSpecs(FromMemory, T->Strings))
            << Profile.Name << " seed " << Seed << " tau " << Tau;
      }
    }
  }
}

TEST(Checkpoint, ManifestTravelsWithArtifact) {
  StringInterner Strings;
  GeneratorConfig GenCfg;
  GenCfg.NumPrograms = 10;
  GeneratedCorpus Corpus = generateCorpus(javaProfile(), GenCfg, Strings);
  LearnerConfig Cfg;
  USpecLearner Learner(Strings, Cfg);
  LearnResult Result = Learner.learn(Corpus.Programs);

  CorpusManifest Manifest;
  for (size_t I = 0; I < Corpus.Programs.size(); ++I)
    Manifest.Entries.push_back({"p" + std::to_string(I), 1000 + I});
  std::string Bytes = Learner.saveArtifacts(Result, &Manifest);

  StringInterner Loaded;
  auto A = USpecLearner::loadArtifacts(Bytes, Loaded);
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(A->Manifest, Manifest);
}

//===----------------------------------------------------------------------===//
// Robustness fuzzing: mutated/truncated artifacts must never crash
//===----------------------------------------------------------------------===//

TEST(ArtifactFuzz, TruncationAtEveryPrefixNeverCrashes) {
  auto T = trainSmall(javaProfile(), 99);
  const std::string &Bytes = T->Artifact;
  size_t Failures = 0;
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    StringInterner S;
    ArtifactError Err;
    auto A = USpecLearner::loadArtifacts(
        std::string_view(Bytes).substr(0, Len), S, &Err);
    if (!A) {
      ++Failures;
      EXPECT_FALSE(Err.Message.empty()) << "prefix " << Len;
    }
  }
  // Every strict prefix must be rejected: all sections are required and
  // any truncation breaks a checksum or the table bounds.
  EXPECT_EQ(Failures, Bytes.size());

  StringInterner S;
  EXPECT_TRUE(USpecLearner::loadArtifacts(Bytes, S).has_value());
}

TEST(ArtifactFuzz, RandomMutationsNeverCrash) {
  auto T = trainSmall(javaProfile(), 5);
  const std::string &Original = T->Artifact;
  Rng Rand(0xF422);
  size_t Rejected = 0, Accepted = 0;
  for (int Iter = 0; Iter < 500; ++Iter) {
    std::string Mutated = Original;
    size_t Flips = 1 + Rand.below(4);
    for (size_t F = 0; F < Flips; ++F) {
      size_t Pos = Rand.below(Mutated.size());
      Mutated[Pos] = static_cast<char>(Rand.next());
    }
    StringInterner S;
    ArtifactError Err;
    auto A = USpecLearner::loadArtifacts(Mutated, S, &Err);
    if (A) {
      // A no-op mutation (same byte value) can legitimately load; anything
      // else is caught by the section checksums.
      ++Accepted;
      EXPECT_EQ(Mutated, Original);
    } else {
      ++Rejected;
      EXPECT_FALSE(Err.Message.empty());
    }
  }
  EXPECT_GT(Rejected, 450u);
  (void)Accepted;
}

TEST(ArtifactFuzz, RandomGarbageNeverCrashes) {
  Rng Rand(0xBAD);
  for (int Iter = 0; Iter < 200; ++Iter) {
    std::string Garbage(Rand.below(512), '\0');
    for (char &C : Garbage)
      C = static_cast<char>(Rand.next());
    // Give half the inputs a valid magic so parsing goes deeper.
    if (Iter % 2 == 0 && Garbage.size() >= 4)
      Garbage.replace(0, 4, ArtifactMagic);
    StringInterner S;
    ArtifactError Err;
    EXPECT_FALSE(USpecLearner::loadArtifacts(Garbage, S, &Err).has_value());
  }
}
