//===- parallel_test.cpp - Determinism of the parallel pipeline ---------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// The §7.2 contract, strengthened into hard assertions: the *entire*
// LearnResult — candidate order, exact score bits, match/program counts,
// selected specification text, and saved USPB artifact bytes — must be
// identical for any thread count. Plus unit coverage for the pieces the
// contract rests on: exception-safe parallelFor, the deterministic
// CandidateCollector shard merge, and StringInterner reference stability
// under growth (the parallel phases read the interner concurrently).
//
//===----------------------------------------------------------------------===//

#include "artifact/Checkpoint.h"
#include "core/USpec.h"
#include "corpus/Dedup.h"
#include "corpus/Generator.h"
#include "corpus/Profiles.h"
#include "specs/SpecIO.h"
#include "support/ParallelFor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

using namespace uspec;

namespace {

//===----------------------------------------------------------------------===//
// parallelFor
//===----------------------------------------------------------------------===//

TEST(ParallelPipeline, ParallelForCoversEverySlotOnce) {
  for (unsigned Threads : {1u, 2u, 8u, 0u}) {
    std::vector<int> Touched(997, 0);
    parallelFor(Touched.size(), Threads,
                [&](size_t I) { Touched[I] += static_cast<int>(I) + 1; });
    for (size_t I = 0; I < Touched.size(); ++I)
      ASSERT_EQ(Touched[I], static_cast<int>(I) + 1) << "slot " << I;
  }
}

TEST(ParallelPipeline, ParallelForPropagatesWorkerExceptions) {
  // A throwing body must surface on the caller, not std::terminate the
  // process via an unhandled exception on a std::thread.
  for (unsigned Threads : {1u, 2u, 8u}) {
    std::atomic<size_t> Ran{0};
    EXPECT_THROW(
        parallelFor(64, Threads,
                    [&](size_t I) {
                      if (I == 13)
                        throw std::runtime_error("worker failure");
                      ++Ran;
                    }),
        std::runtime_error);
    EXPECT_LT(Ran.load(), 64u) << "the throwing slot never counts";
  }
}

TEST(ParallelPipeline, ParallelForRethrowsFirstExceptionOnly) {
  // Every worker throwing concurrently still yields exactly one rethrow.
  EXPECT_THROW(parallelFor(256, 8,
                           [](size_t) {
                             throw std::runtime_error("all workers fail");
                           }),
               std::runtime_error);
}

TEST(ParallelPipeline, ShardRangesPartitionTheIndexSpace) {
  for (size_t N : {0u, 1u, 7u, 64u, 1000u}) {
    for (unsigned Shards : {1u, 2u, 3u, 8u, 17u}) {
      size_t Covered = 0, PrevEnd = 0;
      for (unsigned S = 0; S < Shards; ++S) {
        auto [Lo, Hi] = shardRange(N, S, Shards);
        EXPECT_EQ(Lo, PrevEnd) << "contiguous";
        EXPECT_LE(Lo, Hi);
        Covered += Hi - Lo;
        PrevEnd = Hi;
      }
      EXPECT_EQ(PrevEnd, N);
      EXPECT_EQ(Covered, N);
    }
  }
}

//===----------------------------------------------------------------------===//
// StringInterner
//===----------------------------------------------------------------------===//

TEST(ParallelPipeline, InternerReferencesSurviveReallocation) {
  StringInterner S;
  Symbol First = S.intern("the-very-first-string");
  const std::string &FirstRef = S.str(First);
  const char *FirstData = FirstRef.data();

  // Far more interns than any initial chunk holds: a vector-backed storage
  // would have reallocated (and moved FirstRef's bytes) many times over.
  std::vector<Symbol> Syms;
  for (int I = 0; I < 20000; ++I)
    Syms.push_back(S.intern("filler-string-number-" + std::to_string(I)));

  EXPECT_EQ(FirstRef, "the-very-first-string");
  EXPECT_EQ(FirstRef.data(), FirstData)
      << "str() references must stay stable across interner growth";
  EXPECT_EQ(S.intern("the-very-first-string"), First);
  // Spot-check that growth kept every symbol resolvable.
  EXPECT_EQ(S.str(Syms[123]), "filler-string-number-123");
  EXPECT_EQ(S.str(Syms[19999]), "filler-string-number-19999");
}

TEST(ParallelPipeline, InternerHeterogeneousLookup) {
  StringInterner S;
  std::string Backing = "heterogeneous-probe";
  Symbol A = S.intern(std::string_view(Backing));
  // Probing with a view into different backing memory must hit the same
  // entry (the index compares contents, not addresses).
  std::string Copy = Backing;
  EXPECT_EQ(S.intern(std::string_view(Copy)), A);
  EXPECT_EQ(S.size(), 2u) << "empty string + one interned entry";
}

//===----------------------------------------------------------------------===//
// CandidateCollector shard merge
//===----------------------------------------------------------------------===//

TEST(ParallelPipeline, CollectorShardMergeMatchesSerialRun) {
  StringInterner S;
  LanguageProfile P = javaProfile();
  GeneratorConfig GenCfg;
  GenCfg.NumPrograms = 40;
  GenCfg.Seed = 0xA11CE;
  GeneratedCorpus Corpus = generateCorpus(P, GenCfg, S);

  std::vector<AnalysisResult> Analyses;
  std::vector<EventGraph> Graphs;
  Analyses.reserve(Corpus.Programs.size());
  for (const IRProgram &Prog : Corpus.Programs)
    Analyses.push_back(analyzeProgram(Prog, S, AnalysisOptions()));
  for (const AnalysisResult &R : Analyses)
    Graphs.push_back(EventGraph::build(R));

  EdgeModel Model;
  CandidateCollector Serial(Model, 10);
  for (size_t I = 0; I < Graphs.size(); ++I)
    Serial.addGraph(Graphs[I], static_cast<uint32_t>(I));

  for (unsigned NumShards : {1u, 2u, 3u, 8u}) {
    std::vector<CandidateCollector> Shards;
    Shards.reserve(NumShards);
    for (unsigned T = 0; T < NumShards; ++T)
      Shards.emplace_back(Model, 10);
    for (unsigned T = 0; T < NumShards; ++T) {
      auto [Lo, Hi] = shardRange(Graphs.size(), T, NumShards);
      for (size_t I = Lo; I < Hi; ++I)
        Shards[T].addGraph(Graphs[I], static_cast<uint32_t>(I));
    }
    for (unsigned T = 1; T < NumShards; ++T)
      Shards[0].merge(std::move(Shards[T]));
    const CandidateCollector &Merged = Shards[0];

    ASSERT_EQ(Merged.candidates().size(), Serial.candidates().size())
        << NumShards << " shards";
    ASSERT_FALSE(Serial.candidates().empty());
    for (size_t I = 0; I < Serial.candidates().size(); ++I)
      EXPECT_EQ(Merged.candidates()[I], Serial.candidates()[I])
          << "first-seen order diverged at slot " << I << " with "
          << NumShards << " shards";
    for (const Spec &Sp : Serial.candidates()) {
      const CandidateStats &A = Serial.stats().at(Sp);
      const CandidateStats &B = Merged.stats().at(Sp);
      EXPECT_EQ(A.Matches, B.Matches);
      EXPECT_EQ(A.Programs, B.Programs);
      EXPECT_EQ(A.ProgramIds, B.ProgramIds);
      EXPECT_EQ(A.Confidences, B.Confidences)
          << "ΓS must concatenate in graph order: " << Sp.str(S);
    }
    EXPECT_EQ(Merged.numReceiverPairs(), Serial.numReceiverPairs());
    EXPECT_EQ(Merged.numMatches(), Serial.numMatches());
  }
}

//===----------------------------------------------------------------------===//
// Full-pipeline determinism across thread counts
//===----------------------------------------------------------------------===//

struct FullRun {
  std::vector<std::string> CandidateText;
  std::vector<double> Scores;
  std::vector<size_t> Matches, Programs, NumConfidences;
  std::string SelectedText;
  std::string ArtifactBytes;
  PipelineStats Stats;
};

FullRun runPipelineWith(unsigned Threads) {
  StringInterner S;
  LanguageProfile P = javaProfile();
  GeneratorConfig GenCfg;
  GenCfg.NumPrograms = 120;
  GenCfg.Seed = 0xF00D;
  GeneratedCorpus Corpus = generateCorpus(P, GenCfg, S);

  LearnerConfig Cfg;
  Cfg.Threads = Threads;
  USpecLearner Learner(S, Cfg);
  LearnResult Result = Learner.learn(Corpus.Programs);

  CorpusManifest Manifest;
  for (size_t I = 0; I < Corpus.Programs.size(); ++I)
    Manifest.Entries.push_back(
        {"prog" + std::to_string(I), programFingerprint(Corpus.Programs[I])});

  FullRun Run;
  for (const ScoredCandidate &C : Result.Candidates) {
    Run.CandidateText.push_back(C.S.str(S));
    Run.Scores.push_back(C.Score);
    Run.Matches.push_back(C.Matches);
    Run.Programs.push_back(C.Programs);
    Run.NumConfidences.push_back(C.NumConfidences);
  }
  Run.SelectedText = serializeSpecs(Result.Selected, S);
  Run.ArtifactBytes = Learner.saveArtifacts(Result, &Manifest);
  Run.Stats = Result.Stats;
  return Run;
}

TEST(ParallelPipeline, FullLearnResultIsThreadCountInvariant) {
  FullRun One = runPipelineWith(1);
  ASSERT_FALSE(One.CandidateText.empty());
  ASSERT_FALSE(One.SelectedText.empty());
  ASSERT_FALSE(One.ArtifactBytes.empty());

  for (unsigned Threads : {2u, 8u}) {
    FullRun Other = runPipelineWith(Threads);
    // Candidate order and every per-candidate field, bit-exact scores
    // included.
    EXPECT_EQ(One.CandidateText, Other.CandidateText) << Threads << " threads";
    EXPECT_EQ(One.Scores, Other.Scores) << Threads << " threads";
    EXPECT_EQ(One.Matches, Other.Matches) << Threads << " threads";
    EXPECT_EQ(One.Programs, Other.Programs) << Threads << " threads";
    EXPECT_EQ(One.NumConfidences, Other.NumConfidences)
        << Threads << " threads";
    // Selected specification text and the serialized artifact.
    EXPECT_EQ(One.SelectedText, Other.SelectedText) << Threads << " threads";
    EXPECT_EQ(One.ArtifactBytes, Other.ArtifactBytes)
        << "USPB bytes must not depend on the thread count ("
        << Threads << " threads)";
    // Workload counters (not timings) are sharding-invariant too.
    EXPECT_EQ(One.Stats.ReceiverPairs, Other.Stats.ReceiverPairs);
    EXPECT_EQ(One.Stats.Matches, Other.Stats.Matches);
    EXPECT_EQ(One.Stats.TrainingSamples, Other.Stats.TrainingSamples);
    EXPECT_EQ(One.Stats.Candidates, Other.Stats.Candidates);
    EXPECT_EQ(One.Stats.Graphs, Other.Stats.Graphs);
  }
}

TEST(ParallelPipeline, PipelineStatsArePopulated) {
  FullRun Run = runPipelineWith(2);
  const PipelineStats &St = Run.Stats;
  EXPECT_EQ(St.Programs, 120u);
  EXPECT_GT(St.Graphs, 0u);
  EXPECT_GT(St.ReceiverPairs, 0u);
  EXPECT_GT(St.Matches, 0u);
  EXPECT_GT(St.TrainingSamples, 0u);
  EXPECT_GT(St.Candidates, 0u);
  EXPECT_GE(St.PeakCandidates, St.Candidates);
  EXPECT_GT(St.TotalSeconds, 0.0);
  EXPECT_GE(St.TotalSeconds, St.AnalyzeSeconds);

  std::string Json = St.json();
  EXPECT_NE(Json.find("\"phase_seconds\""), std::string::npos);
  EXPECT_NE(Json.find("\"receiver_pairs\""), std::string::npos);
  EXPECT_NE(Json.find("\"peak_candidates\""), std::string::npos);
  EXPECT_EQ(Json.front(), '{');
  EXPECT_EQ(Json.back(), '}');
}

} // namespace
