//===- uspec.cpp - The USpec command-line tool ----------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Subcommands:
//
//   uspec gen     --profile java|python -n N -o DIR [--seed S]
//       Write a synthetic corpus of MiniLang files into DIR.
//
//   uspec learn   FILES... [-o specs.txt] [--tau X] [--seed S]
//       Learn aliasing specifications from MiniLang files and write them in
//       the SpecIO text format (stdout when -o is omitted). Prints the
//       scored candidate list to stderr.
//
//   uspec train   FILES... -o run.uspb [--tau X] [--seed S] [--resume]
//       Run the same pipeline but checkpoint everything up to τ-selection
//       (model ϕ, scored candidates, selected set, corpus manifest) into a
//       USPB artifact for `uspec select` / `uspec analyze --model`. The
//       artifact is written crash-safely (temp + fsync + atomic rename);
//       --resume discards any stale temp from an interrupted run and skips
//       retraining when the artifact already matches the corpus/tau/seed.
//
//   uspec ingest  FILES... -j corpus.uspj
//       Append MiniLang files to an append-only corpus journal. Every file
//       is parse-validated first; a rotten file aborts the batch and the
//       journal on disk is untouched (all-or-nothing append through the
//       same temp + fsync + rename path artifacts use). One invocation
//       appends one generation.
//
//   uspec train   --journal corpus.uspj -o run.uspb [--replay] [...]
//       Journal-driven training (DESIGN.md §12): reads how far the
//       artifact at -o got (its "jrnl" lineage section), trains only the
//       new journal suffix warm-starting ϕ from the prior model, and
//       reports a quantified spec-level diff. --replay forces a full
//       retrain over the whole journal — byte-identical to training the
//       same corpus from scratch with the same seed. Any lineage/config
//       mismatch demotes warm to full with a printed note.
//
//   uspec select  run.uspb [--tau X] [-o specs.txt]
//       Re-select specifications from a training artifact at threshold τ
//       (the training τ when omitted) without retraining. Emits exactly the
//       text `uspec learn --tau X` would emit for the same corpus and seed.
//
//   uspec info    run.uspb
//       Show an artifact's sections, sizes, training statistics and (for
//       journal-trained artifacts) the journal lineage.
//
//   uspec analyze FILE [--specs specs.txt | --model run.uspb] [--coverage]
//                 [--dot out.dot] [--json]
//       Run the may-alias analysis on FILE (API-aware when --specs or
//       --model is given), print aliasing call-site pairs, optionally dump
//       the event graph in Graphviz format. --json emits the machine-
//       readable payload of the query service (byte-identical to what
//       `uspec serve` answers for the same program and artifact).
//
//   uspec serve   [--model run.uspb | --specs specs.txt] [--workers N]
//                 [--queue N] [--cache N] [--socket PATH]
//                 [--request-timeout MS] [--step-budget N]
//                 [--trace t.json] [--slow-ms N]
//       Run the resident query service: load the specs once, then answer
//       newline-delimited JSON requests over stdin/stdout (default) or a
//       Unix-domain socket. --request-timeout sets the default per-request
//       deadline (a request's own "deadline_ms" wins); --step-budget bounds
//       analysis work per request (exhaustion degrades to a sound "bounded"
//       payload). --slow-ms logs requests slower than N ms to stderr;
//       --trace records spans (DESIGN.md §11). See DESIGN.md §9–10 for the
//       protocol and fault model. In socket mode SIGHUP (or the `reload`
//       verb) hot-swaps the model from --model without dropping requests.
//
//   uspec query   --socket PATH [--retries N] [--retry-seed S]
//                 [--trace-id ID]
//                 (analyze FILE [--coverage] | alias FILE A B
//                 | typestate FILE CHECK USE | taint FILE [--source M]...
//                 [--sink M]... [--sanitizer M]... | specs | cachekeys
//                 | stats | metrics | reload [ARTIFACT] | shutdown
//                 | --json REQUEST)
//       One-shot client for a running `uspec serve --socket` instance.
//       Prints the result payload (byte-identical to `analyze --json` for
//       the analyze verb); errors go to stderr with exit 1. --retries N
//       retries transient failures (connection errors, `overloaded`) with
//       deterministic seeded exponential backoff.
//
//   uspec train   ... --distributed N [--listen ADDR] [--worker-threads N]
//                 [--provenance]
//       Fan the training pipeline out across N worker processes
//       (self-spawned, or externally launched `uspec worker` instances
//       when --listen is given). The artifact is byte-identical to the
//       single-process run at any worker count — including after worker
//       deaths, which reassign shards with bounded retries and demote to
//       in-process execution. --provenance records the worker count and
//       shard-map checksum in the manifest (shown by `uspec info`).
//
//   uspec worker  --connect ADDR [--threads N]
//       One training worker: connect to a coordinator, process shards
//       until Done.
//
//   uspec route   --socket PATH --replicas SOCK1,SOCK2,... [--vnodes N]
//                 [--supervise] [--respawn-cmd CMD | --model PATH]
//                 [--probe-interval-ms N] [--respawn-seed S]
//                 [--hedge-ms N | --hedge-auto] [--warm-keys K]
//       Self-healing consistent-hash router over N `uspec serve --socket`
//       replicas: program-carrying verbs go to the ring owner of the
//       program text, stats/metrics fan out and aggregate, reload
//       broadcasts, and a dead replica answers `replica_down` (transient
//       for `query --retries`) with deterministic ring-walk failover.
//       --supervise probes each replica every --probe-interval-ms and
//       respawns dead ones (via CMD with `{socket}` substituted, or a
//       synthesized `uspec serve` line when --model is given) with
//       deterministic seeded backoff; a recovered replica rejoins the ring
//       only after a successful probe + warm-cache replay. --hedge-ms (or
//       --hedge-auto, p95-derived) fires slow requests at the next ring
//       owner too and takes the first answer — byte-identical either way;
//       the hedge carries no_cache so caches don't bleed. --warm-keys K
//       bounds the per-replica hot-request LRU replayed on rejoin/reload.
//
//   uspec obs     stitch OUT.json SHARD... | top --socket PATH [--watch]
//                 | events FILE [--follow] [--type T]
//       Fleet observability (DESIGN.md §16). `stitch` merges per-process
//       Chrome-trace shards into one Perfetto-loadable trace: shards are
//       aligned onto the shared steady-clock timeline via their uspecBaseNs
//       epoch, every pid gets process_name metadata, and flow events link
//       router forwards to the replica request spans (and coordinator runs
//       to worker shard spans) that carry the same trace id. `top` renders
//       a one-shot (or --watch, refreshing) fleet summary from a router or
//       serve socket. `events` prints a structured event log (--events /
//       USPEC_EVENTS), optionally filtered by --type and tailed by
//       --follow.
//
//   uspec check   FILES...
//       Parse and lower files, reporting diagnostics.
//
// Unknown subcommands and unknown flags name the offending token and exit
// with status 2.
//
//===----------------------------------------------------------------------===//

#include "artifact/Checkpoint.h"
#include "artifact/Container.h"
#include "core/USpec.h"
#include "corpus/Dedup.h"
#include "corpus/Generator.h"
#include "corpus/Profiles.h"
#include "distrib/Coordinator.h"
#include "distrib/Router.h"
#include "distrib/Worker.h"
#include "eventgraph/Dot.h"
#include "incremental/Journal.h"
#include "incremental/Trainer.h"
#include "service/Server.h"
#include "specs/SpecIO.h"
#include "support/EventLog.h"
#include "support/Trace.h"

#include <cerrno>
#include <string_view>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace uspec;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  uspec gen --profile java|python -n N -o DIR [--seed S]\n"
      "  uspec learn FILES... [-o specs.txt] [--tau X] [--seed S] [--dedup]\n"
      "              [--threads N] [--stats] [--strict] [--step-budget N]\n"
      "              [--trace t.json]\n"
      "  uspec train FILES... -o run.uspb [--tau X] [--seed S] [--dedup]\n"
      "              [--threads N] [--stats] [--strict] [--step-budget N]\n"
      "              [--resume] [--trace t.json]\n"
      "  uspec train --journal corpus.uspj -o run.uspb [--replay]\n"
      "              [--tau X] [--seed S] [--threads N] [--stats]\n"
      "              [--step-budget N] [--trace t.json]\n"
      "  uspec train ... --distributed N [--listen ADDR]\n"
      "              [--worker-threads N] [--provenance]\n"
      "  uspec worker --connect ADDR [--threads N]\n"
      "  uspec route --socket PATH --replicas SOCK1,SOCK2,...\n"
      "              [--vnodes N] [--supervise]\n"
      "              [--respawn-cmd CMD | --model run.uspb]\n"
      "              [--probe-interval-ms N] [--respawn-seed S]\n"
      "              [--hedge-ms N | --hedge-auto] [--warm-keys K]\n"
      "  uspec ingest FILES... -j corpus.uspj\n"
      "  uspec select run.uspb [--tau X] [-o specs.txt]\n"
      "  uspec info run.uspb\n"
      "  uspec analyze FILE [--specs specs.txt | --model run.uspb]\n"
      "               [--coverage] [--dot out] [--json] [--trace t.json]\n"
      "  uspec serve [--model run.uspb | --specs specs.txt] [--workers N]\n"
      "              [--queue N] [--cache N] [--socket PATH]\n"
      "              [--request-timeout MS] [--step-budget N]\n"
      "              [--trace t.json] [--slow-ms N]\n"
      "  uspec query --socket PATH [--retries N] [--trace-id ID]\n"
      "              VERB [ARGS...]\n"
      "  uspec obs stitch OUT.json SHARD...\n"
      "  uspec obs top --socket PATH [--watch] [--interval-ms N]\n"
      "  uspec obs events FILE [--follow] [--type T]\n"
      "  uspec check FILES...\n"
      "(USPEC_TRACE=t.json arms --trace for any subcommand;\n"
      " USPEC_EVENTS=e.jsonl arms --events the same way; serve, route and\n"
      " learn/train also take --events FILE directly)\n");
  return 2;
}

/// Unknown flag / stray positional: name the offending token and exit 2
/// (never silently fall through to the generic usage text).
int unknownToken(const char *Cmd, const char *Token) {
  std::fprintf(stderr, "error: unknown %s '%s' for 'uspec %s'\n",
               Token[0] == '-' ? "option" : "argument", Token, Cmd);
  usage();
  return 2;
}

/// An option that expects a value hit the end of the argument list.
int missingValue(const char *Cmd, const char *Opt) {
  std::fprintf(stderr, "error: option '%s' for 'uspec %s' requires a value\n",
               Opt, Cmd);
  return 2;
}

/// Reads a whole file (binary-safe); on failure prints the path and the OS
/// error and returns nullopt.
std::optional<std::string> readFile(const std::string &Path) {
  errno = 0;
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "error: cannot read %s: %s\n", Path.c_str(),
                 errno ? std::strerror(errno) : "unknown error");
    return std::nullopt;
  }
  std::ostringstream Out;
  Out << In.rdbuf();
  if (In.bad()) {
    std::fprintf(stderr, "error: cannot read %s: %s\n", Path.c_str(),
                 errno ? std::strerror(errno) : "I/O error");
    return std::nullopt;
  }
  return Out.str();
}

/// Writes a whole file (binary-safe); on failure prints the path and the OS
/// error.
bool writeFile(const std::string &Path, const std::string &Content) {
  errno = 0;
  std::ofstream Out(Path, std::ios::binary);
  if (Out)
    Out << Content;
  if (Out)
    Out.flush();
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s: %s\n", Path.c_str(),
                 errno ? std::strerror(errno) : "I/O error");
    return false;
  }
  return true;
}

/// Parses a floating-point option value; rejects empty or partial parses so
/// `--tau banana` errors instead of silently becoming 0.
bool parseDouble(const char *Opt, const char *V, double &Out) {
  char *End = nullptr;
  Out = std::strtod(V, &End);
  if (End == V || *End) {
    std::fprintf(stderr, "error: %s expects a number, got '%s'\n", Opt, V);
    return false;
  }
  return true;
}

/// Same for unsigned integer option values (-n, --seed).
bool parseUInt(const char *Opt, const char *V, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(V, &End, 10);
  if (End == V || *End) {
    std::fprintf(stderr, "error: %s expects an unsigned integer, got '%s'\n",
                 Opt, V);
    return false;
  }
  return true;
}

/// Simple argument cursor.
struct Args {
  int Argc;
  char **Argv;
  int Pos = 2;

  const char *next() { return Pos < Argc ? Argv[Pos++] : nullptr; }
  bool has() const { return Pos < Argc; }
};

int cmdGen(Args &A) {
  std::string ProfileName = "java", OutDir;
  size_t N = 100;
  uint64_t Seed = 1;
  while (const char *Arg = A.next()) {
    if (!std::strcmp(Arg, "--profile")) {
      const char *V = A.next();
      if (!V)
        return missingValue("gen", Arg);
      ProfileName = V;
    } else if (!std::strcmp(Arg, "-n")) {
      const char *V = A.next();
      if (!V)
        return missingValue("gen", Arg);
      uint64_t Val = 0;
      if (!parseUInt("-n", V, Val))
        return 2;
      N = Val;
    } else if (!std::strcmp(Arg, "-o")) {
      const char *V = A.next();
      if (!V)
        return missingValue("gen", Arg);
      OutDir = V;
    } else if (!std::strcmp(Arg, "--seed")) {
      const char *V = A.next();
      if (!V)
        return missingValue("gen", Arg);
      if (!parseUInt("--seed", V, Seed))
        return 2;
    } else {
      return unknownToken("gen", Arg);
    }
  }
  if (OutDir.empty())
    return usage();
  LanguageProfile Profile =
      ProfileName == "python" ? pythonProfile() : javaProfile();
  std::filesystem::create_directories(OutDir);
  GeneratorConfig Cfg;
  Rng Rand(Seed);
  for (size_t I = 0; I < N; ++I) {
    std::string Source = generateProgramSource(Profile, Cfg, Rand);
    std::string Path =
        OutDir + "/prog" + std::to_string(I) + ".mini";
    if (!writeFile(Path, Source))
      return 1;
  }
  std::fprintf(stderr, "wrote %zu %s programs to %s\n", N,
               Profile.Name.c_str(), OutDir.c_str());
  return 0;
}

/// Parses + lowers \p Files; also records one manifest entry per program.
/// By default a file that cannot be read or parsed is *quarantined*: it is
/// reported on stderr, recorded in \p Quarantined (by its index in \p Files)
/// and never enters the corpus or manifest, so one rotten file cannot sink
/// a whole training run. \p Strict restores the old abort-on-first-error
/// behavior (`learn/train --strict`).
bool loadCorpus(const std::vector<std::string> &Files, StringInterner &Strings,
                std::vector<IRProgram> &Corpus, CorpusManifest &Manifest,
                bool Strict, std::vector<QuarantineRecord> &Quarantined,
                std::vector<distrib::ProgramSource> *Sources = nullptr) {
  for (size_t I = 0; I < Files.size(); ++I) {
    const std::string &Path = Files[I];
    auto Source = readFile(Path);
    if (!Source) {
      if (Strict)
        return false;
      std::fprintf(stderr, "warning: quarantined %s (unreadable)\n",
                   Path.c_str());
      Quarantined.push_back({I, Path, "read"});
      continue;
    }
    DiagnosticSink Diags;
    auto P = parseAndLower(*Source, Path, Strings, Diags);
    if (!P) {
      std::fprintf(stderr, "%s:\n%s", Path.c_str(), Diags.render().c_str());
      if (Strict)
        return false;
      std::fprintf(stderr, "warning: quarantined %s (parse error)\n",
                   Path.c_str());
      Quarantined.push_back({I, Path, "parse"});
      continue;
    }
    Manifest.Entries.push_back({Path, programFingerprint(*P)});
    Corpus.push_back(std::move(*P));
    if (Sources)
      Sources->push_back({Path, std::move(*Source)});
  }
  if (Corpus.empty()) {
    std::fprintf(stderr, "error: no loadable programs in the corpus\n");
    return false;
  }
  return true;
}

/// Prints the per-run summary + candidate table to stderr (shared by
/// learn/train/select so their diagnostics line up).
void printCandidates(const StringInterner &Strings, size_t NumPrograms,
                     const std::vector<ScoredCandidate> &Candidates,
                     size_t NumSelected, double Tau) {
  std::fprintf(stderr, "%zu programs, %zu candidates, %zu selected "
               "(tau=%.2f)\n",
               NumPrograms, Candidates.size(), NumSelected, Tau);
  for (const ScoredCandidate &C : Candidates)
    std::fprintf(stderr, "  %-55s %.3f (%zu matches)\n",
                 C.S.str(Strings).c_str(), C.Score, C.Matches);
}

/// Shared implementation of `learn` (text specs out) and `train` (USPB
/// artifact out).
int cmdLearnOrTrain(Args &A, bool Train) {
  std::vector<std::string> Files;
  std::string OutPath, TracePath, EventsPath, JournalPath;
  double Tau = 0.6;
  uint64_t Seed = 0xC0FFEE;
  uint64_t Threads = 0; // 0 = hardware concurrency
  uint64_t StepBudget = 0;
  uint64_t Distributed = 0, WorkerThreads = 1;
  std::string ListenAddr;
  bool Dedup = false, Stats = false, Strict = false, Resume = false;
  bool Replay = false, Provenance = false;
  const char *Cmd = Train ? "train" : "learn";
  while (const char *Arg = A.next()) {
    if (!std::strcmp(Arg, "--dedup")) {
      Dedup = true;
    } else if (!std::strcmp(Arg, "--stats")) {
      Stats = true;
    } else if (!std::strcmp(Arg, "--strict")) {
      Strict = true;
    } else if (Train && !std::strcmp(Arg, "--resume")) {
      Resume = true;
    } else if (Train && !std::strcmp(Arg, "--distributed")) {
      const char *V = A.next();
      if (!V)
        return missingValue(Cmd, Arg);
      if (!parseUInt("--distributed", V, Distributed))
        return 2;
      if (!Distributed) {
        std::fprintf(stderr, "error: --distributed expects at least 1 "
                             "worker\n");
        return 2;
      }
    } else if (Train && !std::strcmp(Arg, "--listen")) {
      const char *V = A.next();
      if (!V)
        return missingValue(Cmd, Arg);
      ListenAddr = V;
    } else if (Train && !std::strcmp(Arg, "--worker-threads")) {
      const char *V = A.next();
      if (!V)
        return missingValue(Cmd, Arg);
      if (!parseUInt("--worker-threads", V, WorkerThreads))
        return 2;
    } else if (Train && !std::strcmp(Arg, "--provenance")) {
      Provenance = true;
    } else if (Train && !std::strcmp(Arg, "--journal")) {
      const char *V = A.next();
      if (!V)
        return missingValue(Cmd, Arg);
      JournalPath = V;
    } else if (Train && !std::strcmp(Arg, "--replay")) {
      Replay = true;
    } else if (!std::strcmp(Arg, "--trace")) {
      const char *V = A.next();
      if (!V)
        return missingValue(Cmd, Arg);
      TracePath = V;
    } else if (!std::strcmp(Arg, "--events")) {
      const char *V = A.next();
      if (!V)
        return missingValue(Cmd, Arg);
      EventsPath = V;
    } else if (!std::strcmp(Arg, "--step-budget")) {
      const char *V = A.next();
      if (!V)
        return missingValue(Cmd, Arg);
      if (!parseUInt("--step-budget", V, StepBudget))
        return 2;
    } else if (!std::strcmp(Arg, "--threads")) {
      const char *V = A.next();
      if (!V)
        return missingValue(Cmd, Arg);
      if (!parseUInt("--threads", V, Threads))
        return 2;
    } else if (!std::strcmp(Arg, "-o")) {
      const char *V = A.next();
      if (!V)
        return missingValue(Cmd, Arg);
      OutPath = V;
    } else if (!std::strcmp(Arg, "--tau")) {
      const char *V = A.next();
      if (!V)
        return missingValue(Cmd, Arg);
      if (!parseDouble("--tau", V, Tau))
        return 2;
    } else if (!std::strcmp(Arg, "--seed")) {
      const char *V = A.next();
      if (!V)
        return missingValue(Cmd, Arg);
      if (!parseUInt("--seed", V, Seed))
        return 2;
    } else if (Arg[0] == '-' && Arg[1] != '\0') {
      return unknownToken(Cmd, Arg);
    } else {
      Files.push_back(Arg);
    }
  }
  if (Files.empty() && JournalPath.empty())
    return usage();
  if (Train && OutPath.empty()) {
    std::fprintf(stderr, "error: train requires -o ARTIFACT\n");
    return usage();
  }
  if (!JournalPath.empty()) {
    if (!Files.empty())
      return unknownToken(Cmd, Files.front().c_str());
    if (Dedup || Strict || Resume) {
      std::fprintf(stderr, "error: --journal is incompatible with --dedup, "
                           "--strict and --resume (entries are validated at "
                           "ingest; lineage replaces --resume)\n");
      return 2;
    }
  } else if (Replay) {
    std::fprintf(stderr, "error: --replay requires --journal\n");
    return 2;
  }
  if (!Distributed && (Provenance || !ListenAddr.empty())) {
    std::fprintf(stderr, "error: %s requires --distributed N\n",
                 Provenance ? "--provenance" : "--listen");
    return 2;
  }
  distrib::DistribOptions DOpts;
  DOpts.NumWorkers = static_cast<unsigned>(Distributed);
  DOpts.ListenAddress = ListenAddr;
  DOpts.WorkerThreads = static_cast<unsigned>(WorkerThreads);
  distrib::DistStats DStats;
  auto PrintDistSummary = [&] {
    for (const std::string &Note : DStats.Notes)
      std::fprintf(stderr, "note: %s\n", Note.c_str());
    std::fprintf(stderr,
                 "distributed: %u/%u workers (%u died), %zu shards "
                 "(%zu reassigned, %zu demoted), shard map %016llx\n",
                 DStats.WorkersConnected, DStats.WorkersRequested,
                 DStats.WorkersDied, DStats.Shards, DStats.ShardsReassigned,
                 DStats.ShardsDemoted,
                 static_cast<unsigned long long>(DStats.ShardMapChecksum));
  };
  if (!TracePath.empty()) {
    std::string Err;
    if (!trace::startToFile(TracePath, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 2;
    }
  }
  if (!EventsPath.empty()) {
    std::string Err;
    if (!events::startToFile(EventsPath, /*MaxBytes=*/0, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 2;
    }
  }

  if (!JournalPath.empty()) {
    incremental::CorpusJournal J;
    std::string Err;
    if (!incremental::loadJournal(JournalPath, J, /*MissingOk=*/false,
                                  &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    // The artifact at -o anchors the lineage: its "jrnl" section records how
    // far a previous run trained. Absent just means a full run; unreadable
    // bytes demote to full inside trainFromJournal.
    std::string PrevBytes;
    std::error_code Ec;
    if (std::filesystem::exists(OutPath, Ec)) {
      auto Bytes = readFile(OutPath);
      if (!Bytes)
        return 1;
      PrevBytes = std::move(*Bytes);
    }
    StringInterner Strings;
    LearnerConfig Cfg;
    Cfg.Tau = Tau;
    Cfg.Seed = Seed;
    Cfg.Threads = static_cast<unsigned>(Threads);
    Cfg.ProgramStepBudget = StepBudget;
    // --distributed swaps the pipeline engine under the journal layer: mode
    // decisions, lineage and diffs are unchanged, only learn()/
    // learnIncrement() fan out to worker processes. The closures slice the
    // journal itself into shard payloads (the parsed corpus they receive
    // already populated the interner, which is all distributedLearn needs
    // from it) and fall back to the in-process learner if provisioning
    // fails outright.
    incremental::PipelineEngine Engine;
    if (Distributed) {
      Engine.Full = [&](const std::vector<IRProgram> &Corpus) -> LearnResult {
        std::vector<distrib::ProgramSource> Sources;
        Sources.reserve(J.Entries.size());
        for (const auto &E : J.Entries)
          Sources.push_back({E.Name, E.Source});
        std::string DErr;
        auto R = distrib::distributedLearn(Sources, Cfg, Strings, DOpts,
                                           std::nullopt, DStats, &DErr);
        if (R)
          return std::move(*R);
        std::fprintf(stderr,
                     "warning: distributed run unavailable (%s); training "
                     "in-process\n",
                     DErr.c_str());
        USpecLearner Learner(Strings, Cfg);
        return Learner.learn(Corpus);
      };
      Engine.Increment = [&](const std::vector<IRProgram> &Delta,
                             WarmStart Seed) -> LearnResult {
        std::vector<distrib::ProgramSource> Sources;
        Sources.reserve(J.Entries.size() - Seed.BasePrograms);
        for (size_t I = Seed.BasePrograms; I < J.Entries.size(); ++I)
          Sources.push_back({J.Entries[I].Name, J.Entries[I].Source});
        std::string DErr;
        auto R = distrib::distributedLearn(Sources, Cfg, Strings, DOpts,
                                           Seed, DStats, &DErr);
        if (R)
          return std::move(*R);
        std::fprintf(stderr,
                     "warning: distributed run unavailable (%s); training "
                     "in-process\n",
                     DErr.c_str());
        USpecLearner Learner(Strings, Cfg);
        return Learner.learnIncrement(Delta, std::move(Seed));
      };
    }
    auto Outcome = incremental::trainFromJournal(
        J, Cfg, Strings, PrevBytes, Replay, &Err,
        Distributed ? &Engine : nullptr);
    if (!Outcome) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    for (const std::string &Note : Outcome->Notes)
      std::fprintf(stderr, "note: %s\n", Note.c_str());
    if (Distributed && Outcome->Mode != incremental::TrainMode::UpToDate) {
      PrintDistSummary();
      if (Provenance) {
        Outcome->Manifest.DistWorkers = Distributed;
        Outcome->Manifest.DistShardChecksum = DStats.ShardMapChecksum;
      }
    }
    if (Outcome->Mode == incremental::TrainMode::UpToDate) {
      std::fprintf(stderr,
                   "%s is up to date with %s (generation %llu, %zu entries); "
                   "nothing to train\n",
                   OutPath.c_str(), JournalPath.c_str(),
                   static_cast<unsigned long long>(J.lastGeneration()),
                   J.Entries.size());
      return 0;
    }
    printCandidates(Strings, J.Entries.size(), Outcome->Result.Candidates,
                    Outcome->Result.Selected.size(), Tau);
    if (Stats)
      std::fprintf(stderr, "%s\n", Outcome->Result.Stats.json().c_str());
    // Warm runs quantify the spec-level change against the prior artifact
    // (the byte-identity contract belongs to --replay, not warm-start).
    if (!Outcome->DiffJson.empty())
      std::fprintf(stderr, "diff: %s\n", Outcome->DiffJson.c_str());
    std::string WriteErr;
    if (!writeFileAtomic(OutPath,
                         saveLearnArtifacts(Outcome->Result, Cfg, Strings,
                                            Outcome->Manifest,
                                            &Outcome->Lineage,
                                            &Outcome->Result.Ledger),
                         &WriteErr)) {
      std::fprintf(stderr, "error: %s\n", WriteErr.c_str());
      return 1;
    }
    std::fprintf(
        stderr,
        "wrote artifact %s (%s, %zu of %zu journal entries trained this "
        "run, generation %llu)\n",
        OutPath.c_str(),
        std::string(incremental::trainModeName(Outcome->Mode)).c_str(),
        Outcome->ProgramsTrained, J.Entries.size(),
        static_cast<unsigned long long>(Outcome->Lineage.Generation));
    return 0;
  }

  StringInterner Strings;
  std::vector<IRProgram> Corpus;
  CorpusManifest Manifest;
  std::vector<QuarantineRecord> ParseQuarantine;
  std::vector<distrib::ProgramSource> RawSources;
  if (!loadCorpus(Files, Strings, Corpus, Manifest, Strict, ParseQuarantine,
                  Distributed ? &RawSources : nullptr))
    return 1;

  if (Dedup) {
    std::vector<size_t> Dups = duplicateIndices(Corpus);
    for (size_t I = Dups.size(); I-- > 0;) {
      Manifest.Entries.erase(Manifest.Entries.begin() +
                             static_cast<long>(Dups[I]));
      if (Distributed)
        RawSources.erase(RawSources.begin() + static_cast<long>(Dups[I]));
    }
    size_t Removed = dedupeCorpus(Corpus);
    std::fprintf(stderr, "dedup: removed %zu duplicate program(s)\n",
                 Removed);
  }

  if (Train && Resume) {
    // A previous run killed mid-write leaves a ".tmp" next to the artifact;
    // the artifact itself is either absent or a complete older version
    // (writeFileAtomic renames atomically), so it is safe to inspect.
    std::string Warning;
    if (discardStaleTemp(OutPath, &Warning))
      std::fprintf(stderr, "warning: %s\n", Warning.c_str());
    std::error_code Ec;
    if (std::filesystem::exists(OutPath, Ec)) {
      auto Bytes = readFile(OutPath);
      if (!Bytes)
        return 1;
      StringInterner OldStrings;
      ArtifactError Err;
      auto Old = USpecLearner::loadArtifacts(*Bytes, OldStrings, &Err);
      if (Old && Old->Manifest.sameCorpus(Manifest) &&
          Old->Config.Tau == Tau && Old->Config.Seed == Seed) {
        std::fprintf(stderr,
                     "resume: %s is up to date (same corpus, tau, seed); "
                     "skipping retrain\n",
                     OutPath.c_str());
        return 0;
      }
      std::fprintf(stderr, "resume: %s %s; retraining\n", OutPath.c_str(),
                   Old ? "was trained on a different corpus/config"
                       : "is not a loadable artifact");
    }
  }

  LearnerConfig Cfg;
  Cfg.Tau = Tau;
  Cfg.Seed = Seed;
  Cfg.Threads = static_cast<unsigned>(Threads);
  Cfg.ProgramStepBudget = StepBudget;
  USpecLearner Learner(Strings, Cfg);
  LearnResult Result;
  if (Distributed) {
    std::string DErr;
    auto R = distrib::distributedLearn(RawSources, Cfg, Strings, DOpts,
                                       std::nullopt, DStats, &DErr);
    if (R) {
      Result = std::move(*R);
    } else {
      std::fprintf(stderr,
                   "warning: distributed run unavailable (%s); training "
                   "in-process\n",
                   DErr.c_str());
      Result = Learner.learn(Corpus);
    }
    PrintDistSummary();
    if (Provenance) {
      Manifest.DistWorkers = Distributed;
      Manifest.DistShardChecksum = DStats.ShardMapChecksum;
    }
  } else {
    Result = Learner.learn(Corpus);
  }
  printCandidates(Strings, Corpus.size(), Result.Candidates,
                  Result.Selected.size(), Tau);
  // Specs/artifacts go to stdout or -o; stats stay on stderr so pipelines
  // that consume the primary output are unaffected.
  if (Stats) {
    // CLI-level parse quarantine (indices into the FILES list) goes in
    // front of the learner's in-corpus quarantine records.
    Result.Stats.Quarantined.insert(Result.Stats.Quarantined.begin(),
                                    ParseQuarantine.begin(),
                                    ParseQuarantine.end());
    std::fprintf(stderr, "%s\n", Result.Stats.json().c_str());
  }

  if (Train) {
    std::string WriteErr;
    if (!writeFileAtomic(OutPath, Learner.saveArtifacts(Result, &Manifest),
                         &WriteErr)) {
      std::fprintf(stderr, "error: %s\n", WriteErr.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote artifact %s (%zu programs, %zu candidates)\n",
                 OutPath.c_str(), Manifest.Entries.size(),
                 Result.Candidates.size());
    return 0;
  }

  std::string Text = serializeSpecs(Result.Selected, Strings);
  if (OutPath.empty()) {
    std::fputs(Text.c_str(), stdout);
    return 0;
  }
  if (!writeFile(OutPath, Text))
    return 1;
  std::fprintf(stderr, "wrote %s\n", OutPath.c_str());
  return 0;
}

/// `uspec ingest FILES... -j corpus.uspj`: parse-validate every file, then
/// append them all as one new generation. All-or-nothing: a file that fails
/// to read or parse aborts before any byte of the journal is rewritten.
int cmdIngest(Args &A) {
  std::vector<std::string> Files;
  std::string JournalPath;
  while (const char *Arg = A.next()) {
    if (!std::strcmp(Arg, "-j") || !std::strcmp(Arg, "--journal")) {
      const char *V = A.next();
      if (!V)
        return missingValue("ingest", Arg);
      JournalPath = V;
    } else if (Arg[0] == '-' && Arg[1] != '\0') {
      return unknownToken("ingest", Arg);
    } else {
      Files.push_back(Arg);
    }
  }
  if (Files.empty() || JournalPath.empty()) {
    std::fprintf(stderr, "error: ingest requires FILES... and -j JOURNAL\n");
    return usage();
  }

  incremental::CorpusJournal J;
  std::string Err;
  if (!incremental::loadJournal(JournalPath, J, /*MissingOk=*/true, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  uint64_t Generation = J.lastGeneration() + 1;
  for (const std::string &Path : Files) {
    auto Source = readFile(Path);
    if (!Source) {
      std::fprintf(stderr, "error: ingest aborted; %s unchanged\n",
                   JournalPath.c_str());
      return 1;
    }
    StringInterner Strings;
    DiagnosticSink Diags;
    if (!parseAndLower(*Source, Path, Strings, Diags)) {
      std::fprintf(stderr, "%s:\n%s", Path.c_str(), Diags.render().c_str());
      std::fprintf(stderr, "error: ingest aborted; %s unchanged\n",
                   JournalPath.c_str());
      return 1;
    }
    J.append(Generation, Path, std::move(*Source));
  }
  if (!incremental::saveJournal(JournalPath, J, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "ingested %zu program(s) into %s as generation %llu "
               "(%zu entries total, chain %016llx)\n",
               Files.size(), JournalPath.c_str(),
               static_cast<unsigned long long>(Generation), J.Entries.size(),
               static_cast<unsigned long long>(J.chainChecksum()));
  return 0;
}

int cmdSelect(Args &A) {
  std::string ArtifactPath, OutPath;
  std::optional<double> Tau;
  while (const char *Arg = A.next()) {
    if (!std::strcmp(Arg, "-o")) {
      const char *V = A.next();
      if (!V)
        return missingValue("select", Arg);
      OutPath = V;
    } else if (!std::strcmp(Arg, "--tau")) {
      const char *V = A.next();
      if (!V)
        return missingValue("select", Arg);
      double Val = 0;
      if (!parseDouble("--tau", V, Val))
        return 2;
      Tau = Val;
    } else if (Arg[0] == '-' && Arg[1] != '\0') {
      return unknownToken("select", Arg);
    } else if (ArtifactPath.empty()) {
      ArtifactPath = Arg;
    } else {
      return unknownToken("select", Arg);
    }
  }
  if (ArtifactPath.empty())
    return usage();

  auto Bytes = readFile(ArtifactPath);
  if (!Bytes)
    return 1;
  StringInterner Strings;
  ArtifactError Err;
  auto Artifacts = USpecLearner::loadArtifacts(*Bytes, Strings, &Err);
  if (!Artifacts) {
    std::fprintf(stderr, "error: %s: %s\n", ArtifactPath.c_str(),
                 Err.str().c_str());
    return 1;
  }

  const LearnResult &R = Artifacts->Result;
  double UseTau = Tau.value_or(Artifacts->Config.Tau);
  SpecSet Selected;
  if (Tau && *Tau != Artifacts->Config.Tau)
    Selected = USpecLearner::select(R.Candidates, UseTau,
                                    Artifacts->Config.ExtendConsistency);
  else
    Selected = R.Selected;
  printCandidates(Strings, Artifacts->Manifest.Entries.size(), R.Candidates,
                  Selected.size(), UseTau);

  std::string Text = serializeSpecs(Selected, Strings);
  if (OutPath.empty()) {
    std::fputs(Text.c_str(), stdout);
    return 0;
  }
  if (!writeFile(OutPath, Text))
    return 1;
  std::fprintf(stderr, "wrote %s\n", OutPath.c_str());
  return 0;
}

int cmdInfo(Args &A) {
  const char *Path = A.next();
  if (!Path)
    return usage();
  if (Path[0] == '-' && Path[1] != '\0')
    return unknownToken("info", Path);
  if (A.has())
    return unknownToken("info", A.next());
  auto Bytes = readFile(Path);
  if (!Bytes)
    return 1;

  ArtifactError Err;
  auto Container = ArtifactReader::open(*Bytes, &Err);
  if (!Container) {
    std::fprintf(stderr, "error: %s: %s\n", Path, Err.str().c_str());
    return 1;
  }
  std::printf("%s: USPB artifact, format version %u, %zu bytes\n", Path,
              Container->version(), Bytes->size());
  for (const ArtifactReader::Section &S : Container->sections())
    std::printf("  section %-6s %8zu bytes (checksum ok)\n",
                std::string(S.Name).c_str(), S.Bytes.size());

  StringInterner Strings;
  auto Artifacts = USpecLearner::loadArtifacts(*Bytes, Strings, &Err);
  if (!Artifacts) {
    std::fprintf(stderr, "error: %s: %s\n", Path, Err.str().c_str());
    return 1;
  }
  const LearnResult &R = Artifacts->Result;
  std::printf("trained on %zu programs (tau=%.2f, seed=%llu)\n",
              Artifacts->Manifest.Entries.size(), Artifacts->Config.Tau,
              static_cast<unsigned long long>(Artifacts->Config.Seed));
  std::printf("%zu candidates, %zu selected (+%zu by extension), "
              "%zu position-pair models, %zu training samples, "
              "%.3f in-sample accuracy\n",
              R.Candidates.size(), R.Selected.size(), R.AddedByExtension,
              R.Model.numModels(), R.NumTrainingSamples, R.TrainAccuracy);
  if (Artifacts->Lineage) {
    const JournalLineage &L = *Artifacts->Lineage;
    std::printf("journal lineage: generation %llu, trained through %llu "
                "entr%s, chain checksum %016llx%s\n",
                static_cast<unsigned long long>(L.Generation),
                static_cast<unsigned long long>(L.TrainedEntries),
                L.TrainedEntries == 1 ? "y" : "ies",
                static_cast<unsigned long long>(L.ChainChecksum),
                Artifacts->Ledger ? ", evidence ledger present" : "");
  }
  if (Artifacts->Manifest.DistWorkers != 0)
    std::printf("distributed training: %llu worker(s), shard map checksum "
                "%016llx\n",
                static_cast<unsigned long long>(
                    Artifacts->Manifest.DistWorkers),
                static_cast<unsigned long long>(
                    Artifacts->Manifest.DistShardChecksum));
  return 0;
}

/// Loads the spec set for `analyze --json` / `serve` in canonical text form
/// (see ServiceSpecs) from either a spec text file or a USPB artifact.
/// Returns nullopt after printing a diagnostic.
std::optional<service::ServiceSpecs>
loadServiceSpecs(const std::string &SpecsPath, const std::string &ModelPath) {
  if (!SpecsPath.empty()) {
    auto Text = readFile(SpecsPath);
    if (!Text)
      return std::nullopt;
    size_t BadLine = 0;
    auto Specs = service::ServiceSpecs::fromText(*Text, &BadLine);
    if (!Specs) {
      std::fprintf(stderr, "%s:%zu: malformed specification\n",
                   SpecsPath.c_str(), BadLine);
      return std::nullopt;
    }
    return Specs;
  }
  if (!ModelPath.empty()) {
    auto Bytes = readFile(ModelPath);
    if (!Bytes)
      return std::nullopt;
    StringInterner Strings;
    ArtifactError Err;
    auto Artifacts = USpecLearner::loadArtifacts(*Bytes, Strings, &Err);
    if (!Artifacts) {
      std::fprintf(stderr, "error: %s: %s\n", ModelPath.c_str(),
                   Err.str().c_str());
      return std::nullopt;
    }
    return service::ServiceSpecs::fromSpecSet(Artifacts->Result.Selected,
                                              Strings);
  }
  return service::ServiceSpecs();
}

int cmdAnalyze(Args &A) {
  std::string File, SpecsPath, ModelPath, DotPath, TracePath;
  bool Coverage = false, Json = false;
  while (const char *Arg = A.next()) {
    if (!std::strcmp(Arg, "--specs")) {
      const char *V = A.next();
      if (!V)
        return missingValue("analyze", Arg);
      SpecsPath = V;
    } else if (!std::strcmp(Arg, "--trace")) {
      const char *V = A.next();
      if (!V)
        return missingValue("analyze", Arg);
      TracePath = V;
    } else if (!std::strcmp(Arg, "--model")) {
      const char *V = A.next();
      if (!V)
        return missingValue("analyze", Arg);
      ModelPath = V;
    } else if (!std::strcmp(Arg, "--dot")) {
      const char *V = A.next();
      if (!V)
        return missingValue("analyze", Arg);
      DotPath = V;
    } else if (!std::strcmp(Arg, "--coverage")) {
      Coverage = true;
    } else if (!std::strcmp(Arg, "--json")) {
      Json = true;
    } else if (Arg[0] == '-' && Arg[1] != '\0') {
      return unknownToken("analyze", Arg);
    } else if (File.empty()) {
      File = Arg;
    } else {
      return unknownToken("analyze", Arg);
    }
  }
  if (File.empty() || (!SpecsPath.empty() && !ModelPath.empty()))
    return usage();
  if (!TracePath.empty()) {
    std::string Err;
    if (!trace::startToFile(TracePath, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 2;
    }
  }

  auto Source = readFile(File);
  if (!Source)
    return 1;

  if (Json) {
    // The service engine: same specs canonicalization, same analysis, same
    // serializer as the `analyze` verb of `uspec serve` — byte-identical by
    // construction (and pinned by tests/service_test.cpp).
    auto Specs = loadServiceSpecs(SpecsPath, ModelPath);
    if (!Specs)
      return 1;
    std::string Error;
    auto PA = service::analyzeSource(*Source, File, *Specs, Coverage, &Error);
    if (!PA) {
      std::string Out = "{\"error\":";
      Out += service::errorBody("parse_error", Error);
      Out += "}";
      std::fprintf(stdout, "%s\n", Out.c_str());
      return 1;
    }
    std::fprintf(stdout, "%s\n", PA->AnalyzeJson.c_str());
    return 0;
  }
  StringInterner Strings;
  DiagnosticSink Diags;
  auto P = parseAndLower(*Source, File, Strings, Diags);
  if (!P) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    return 1;
  }

  SpecSet Specs;
  AnalysisOptions Options;
  if (!SpecsPath.empty()) {
    auto Text = readFile(SpecsPath);
    if (!Text)
      return 1;
    size_t ErrorLine = 0;
    Specs = parseSpecs(*Text, Strings, &ErrorLine);
    if (ErrorLine) {
      std::fprintf(stderr, "%s:%zu: malformed specification\n",
                   SpecsPath.c_str(), ErrorLine);
      return 1;
    }
    Options.ApiAware = true;
    Options.Specs = &Specs;
    Options.CoverageExtension = Coverage;
    std::printf("loaded %zu specifications (API-aware analysis%s)\n",
                Specs.size(), Coverage ? " + coverage extension" : "");
  } else if (!ModelPath.empty()) {
    auto Bytes = readFile(ModelPath);
    if (!Bytes)
      return 1;
    ArtifactError Err;
    auto Artifacts = USpecLearner::loadArtifacts(*Bytes, Strings, &Err);
    if (!Artifacts) {
      std::fprintf(stderr, "error: %s: %s\n", ModelPath.c_str(),
                   Err.str().c_str());
      return 1;
    }
    Specs = std::move(Artifacts->Result.Selected);
    Options.ApiAware = true;
    Options.Specs = &Specs;
    Options.CoverageExtension = Coverage;
    std::printf("loaded %zu specifications from artifact %s (API-aware "
                "analysis%s)\n",
                Specs.size(), ModelPath.c_str(),
                Coverage ? " + coverage extension" : "");
  } else {
    std::printf("no specifications (API-unaware baseline)\n");
  }

  AnalysisResult R = analyzeProgram(*P, Strings, Options);
  EventGraph G = EventGraph::build(R);

  // Report may-aliasing between call-site return values.
  std::printf("\nmay-alias call-site return pairs:\n");
  size_t Pairs = 0;
  const auto &Sites = G.callSites();
  for (size_t I = 0; I < Sites.size(); ++I) {
    for (size_t J = I + 1; J < Sites.size(); ++J) {
      if (Sites[I].Ret == InvalidEvent || Sites[J].Ret == InvalidEvent)
        continue;
      if (!R.retMayAlias(Sites[I].Ret, Sites[J].Ret))
        continue;
      std::printf("  %s  ~  %s\n",
                  Sites[I].Method.str(Strings).c_str(),
                  Sites[J].Method.str(Strings).c_str());
      ++Pairs;
    }
  }
  std::printf("%zu aliasing pairs, %zu events, %zu objects\n", Pairs,
              R.Events.size(), R.Objects.size());

  if (!DotPath.empty()) {
    if (writeFile(DotPath, toDot(G, Strings)))
      std::printf("event graph written to %s\n", DotPath.c_str());
  }
  return 0;
}

int cmdCheck(Args &A) {
  bool Ok = true;
  while (const char *Arg = A.next()) {
    if (Arg[0] == '-' && Arg[1] != '\0')
      return unknownToken("check", Arg);
    auto Source = readFile(Arg);
    if (!Source) {
      Ok = false;
      continue;
    }
    StringInterner Strings;
    DiagnosticSink Diags;
    auto P = parseAndLower(*Source, Arg, Strings, Diags);
    if (!P) {
      std::fprintf(stderr, "%s:\n%s", Arg, Diags.render().c_str());
      Ok = false;
    } else {
      std::printf("%s: ok (%u sites, %u guards)\n", Arg, P->NumSites,
                  P->NumGuards);
    }
  }
  return Ok ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// serve
//===----------------------------------------------------------------------===//

/// Set by the SIGTERM/SIGINT handler; polled by the socket accept loop and —
/// because the handler is installed *without* SA_RESTART — also unblocks the
/// stdin getline in stream mode via EINTR.
volatile int GStopRequested = 0;

void onStopSignal(int) { GStopRequested = 1; }

/// Set by the SIGHUP handler (socket mode only — a stream-mode getline has
/// no safe point to reload from); the accept loop clears it and hot-swaps
/// the model from --model. No SA_RESTART so a blocking accept/poll wakes
/// promptly via EINTR.
volatile int GReloadRequested = 0;

void onReloadSignal(int) { GReloadRequested = 1; }

int cmdServe(Args &A) {
  std::string ModelPath, SpecsPath, SocketPath, TracePath, EventsPath;
  service::ServerConfig Cfg;
  while (const char *Arg = A.next()) {
    if (!std::strcmp(Arg, "--trace")) {
      const char *V = A.next();
      if (!V)
        return missingValue("serve", Arg);
      TracePath = V;
    } else if (!std::strcmp(Arg, "--events")) {
      const char *V = A.next();
      if (!V)
        return missingValue("serve", Arg);
      EventsPath = V;
    } else if (!std::strcmp(Arg, "--slow-ms")) {
      const char *V = A.next();
      if (!V)
        return missingValue("serve", Arg);
      uint64_t Val = 0;
      if (!parseUInt("--slow-ms", V, Val))
        return 2;
      Cfg.SlowRequestMs = static_cast<unsigned>(Val);
    } else if (!std::strcmp(Arg, "--model")) {
      const char *V = A.next();
      if (!V)
        return missingValue("serve", Arg);
      ModelPath = V;
    } else if (!std::strcmp(Arg, "--specs")) {
      const char *V = A.next();
      if (!V)
        return missingValue("serve", Arg);
      SpecsPath = V;
    } else if (!std::strcmp(Arg, "--socket")) {
      const char *V = A.next();
      if (!V)
        return missingValue("serve", Arg);
      SocketPath = V;
    } else if (!std::strcmp(Arg, "--workers")) {
      const char *V = A.next();
      if (!V)
        return missingValue("serve", Arg);
      uint64_t Val = 0;
      if (!parseUInt("--workers", V, Val))
        return 2;
      Cfg.Workers = static_cast<unsigned>(Val);
    } else if (!std::strcmp(Arg, "--queue")) {
      const char *V = A.next();
      if (!V)
        return missingValue("serve", Arg);
      uint64_t Val = 0;
      if (!parseUInt("--queue", V, Val))
        return 2;
      if (!Val) {
        std::fprintf(stderr, "error: --queue must be at least 1\n");
        return 2;
      }
      Cfg.QueueCapacity = Val;
    } else if (!std::strcmp(Arg, "--cache")) {
      const char *V = A.next();
      if (!V)
        return missingValue("serve", Arg);
      uint64_t Val = 0;
      if (!parseUInt("--cache", V, Val))
        return 2;
      Cfg.CacheCapacity = Val;
    } else if (!std::strcmp(Arg, "--request-timeout")) {
      const char *V = A.next();
      if (!V)
        return missingValue("serve", Arg);
      uint64_t Val = 0;
      if (!parseUInt("--request-timeout", V, Val))
        return 2;
      Cfg.RequestTimeoutMs = static_cast<unsigned>(Val);
    } else if (!std::strcmp(Arg, "--step-budget")) {
      const char *V = A.next();
      if (!V)
        return missingValue("serve", Arg);
      uint64_t Val = 0;
      if (!parseUInt("--step-budget", V, Val))
        return 2;
      Cfg.MaxStepsPerRequest = Val;
    } else {
      return unknownToken("serve", Arg);
    }
  }
  if (!SpecsPath.empty() && !ModelPath.empty()) {
    std::fprintf(stderr, "error: --specs and --model are mutually "
                         "exclusive\n");
    return 2;
  }
  if (!TracePath.empty()) {
    std::string Err;
    if (!trace::startToFile(TracePath, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 2;
    }
  }
  if (!EventsPath.empty()) {
    std::string Err;
    if (!events::startToFile(EventsPath, /*MaxBytes=*/0, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 2;
    }
  }

  // --model loads a versioned ModelState (journal generation, hot-swap
  // source path); --specs / no flags keep the unversioned generation-0
  // path. ServerConfig::ModelPath is what SIGHUP / `reload` without an
  // explicit path re-reads.
  std::optional<service::ModelState> Model;
  if (!ModelPath.empty()) {
    Cfg.ModelPath = ModelPath;
    std::string Err;
    Model = service::loadModelState(ModelPath, &Err);
    if (!Model) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
  } else {
    auto Specs = loadServiceSpecs(SpecsPath, ModelPath);
    if (!Specs)
      return 1;
    Model = service::ModelState::make(
        std::move(*Specs), 0, SpecsPath.empty() ? "inline" : SpecsPath);
  }

  size_t NumSpecs = Model->Specs.Lines.size();
  uint64_t Generation = Model->Generation;
  service::Server Server(Cfg, std::move(*Model));

  // Graceful drain on SIGTERM/SIGINT. Deliberately no SA_RESTART so a
  // blocking stdin read returns EINTR and the stream loop can wind down.
  GStopRequested = 0;
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onStopSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0;
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);

  if (!SocketPath.empty()) {
    // Live reload on SIGHUP — socket mode only: the handler must not
    // interrupt a stream-mode stdin getline, which would end the session.
    GReloadRequested = 0;
    struct sigaction HupSA;
    std::memset(&HupSA, 0, sizeof(HupSA));
    HupSA.sa_handler = onReloadSignal;
    sigemptyset(&HupSA.sa_mask);
    HupSA.sa_flags = 0;
    sigaction(SIGHUP, &HupSA, nullptr);
    std::fprintf(stderr,
                 "uspec serve: %zu specs (generation %llu), listening on "
                 "%s\n",
                 NumSpecs, static_cast<unsigned long long>(Generation),
                 SocketPath.c_str());
    return Server.serveUnixSocket(SocketPath, &GStopRequested,
                                  &GReloadRequested);
  }
  std::fprintf(stderr, "uspec serve: %zu specs, reading stdin\n", NumSpecs);
  return Server.serveStream(std::cin, std::cout);
}

//===----------------------------------------------------------------------===//
// worker / route (distributed training + routed serving, DESIGN.md §14)
//===----------------------------------------------------------------------===//

/// `uspec worker --connect ADDR [--threads N]`: one externally-launched (or
/// coordinator-spawned) training worker. Connects, serves shards, exits
/// when the coordinator says Done or goes away.
int cmdWorker(Args &A) {
  std::string Connect;
  uint64_t Threads = 0;
  while (const char *Arg = A.next()) {
    if (!std::strcmp(Arg, "--connect")) {
      const char *V = A.next();
      if (!V)
        return missingValue("worker", Arg);
      Connect = V;
    } else if (!std::strcmp(Arg, "--threads")) {
      const char *V = A.next();
      if (!V)
        return missingValue("worker", Arg);
      if (!parseUInt("--threads", V, Threads))
        return 2;
    } else {
      return unknownToken("worker", Arg);
    }
  }
  if (Connect.empty()) {
    std::fprintf(stderr, "error: worker requires --connect ADDR\n");
    return 2;
  }
  std::string Err;
  auto Addr = distrib::parseAddress(Connect, &Err);
  if (!Addr) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }
  // Coordinator-spawned workers inherit USPEC_TRACE; re-arm onto a per-pid
  // shard so each worker writes its own file instead of the last exiting
  // worker clobbering the coordinator's. `uspec obs stitch` merges them.
  if (trace::enabled()) {
    if (const char *Base = std::getenv("USPEC_TRACE")) {
      std::string Shard = std::string(Base) + "." +
                          std::to_string(static_cast<long>(::getpid()));
      std::string TraceErr;
      if (!Shard.empty() && !trace::startToFile(Shard, &TraceErr))
        std::fprintf(stderr, "warning: %s\n", TraceErr.c_str());
    }
  }
  int Rc = distrib::runWorker(*Addr, static_cast<unsigned>(Threads), &Err);
  if (Rc != 0 && !Err.empty())
    std::fprintf(stderr, "error: %s\n", Err.c_str());
  return Rc;
}

/// `uspec route --socket PATH --replicas SOCK1,SOCK2,... [--vnodes N]
///  [--supervise] [--respawn-cmd CMD] [--model PATH]
///  [--probe-interval-ms N] [--respawn-seed S]
///  [--hedge-ms N | --hedge-auto] [--warm-keys K]`:
/// the self-healing consistent-hash router in front of N `uspec serve
/// --socket` replicas. `--supervise` probes replicas each interval and
/// respawns dead ones: via CMD (every `{socket}` replaced by the replica's
/// socket path), or — when only `--model` is given — via a synthesized
/// `<this binary> serve --socket {socket} --model PATH`.
int cmdRoute(Args &A) {
  std::string SocketPath, ReplicaList, RespawnCmd, ModelPath, TracePath,
      EventsPath;
  uint64_t Vnodes = 64, ProbeIntervalMs = 500, RespawnSeed = 0, HedgeMs = 0,
           WarmKeys = 32;
  bool Supervise = false, HedgeAuto = false;
  while (const char *Arg = A.next()) {
    if (!std::strcmp(Arg, "--socket")) {
      const char *V = A.next();
      if (!V)
        return missingValue("route", Arg);
      SocketPath = V;
    } else if (!std::strcmp(Arg, "--replicas")) {
      const char *V = A.next();
      if (!V)
        return missingValue("route", Arg);
      ReplicaList = V;
    } else if (!std::strcmp(Arg, "--vnodes")) {
      const char *V = A.next();
      if (!V)
        return missingValue("route", Arg);
      if (!parseUInt("--vnodes", V, Vnodes))
        return 2;
      if (!Vnodes) {
        std::fprintf(stderr, "error: --vnodes must be at least 1\n");
        return 2;
      }
    } else if (!std::strcmp(Arg, "--supervise")) {
      Supervise = true;
    } else if (!std::strcmp(Arg, "--respawn-cmd")) {
      const char *V = A.next();
      if (!V)
        return missingValue("route", Arg);
      RespawnCmd = V;
    } else if (!std::strcmp(Arg, "--model")) {
      const char *V = A.next();
      if (!V)
        return missingValue("route", Arg);
      ModelPath = V;
    } else if (!std::strcmp(Arg, "--probe-interval-ms")) {
      const char *V = A.next();
      if (!V)
        return missingValue("route", Arg);
      if (!parseUInt("--probe-interval-ms", V, ProbeIntervalMs))
        return 2;
      if (!ProbeIntervalMs) {
        std::fprintf(stderr,
                     "error: --probe-interval-ms must be at least 1\n");
        return 2;
      }
    } else if (!std::strcmp(Arg, "--respawn-seed")) {
      const char *V = A.next();
      if (!V)
        return missingValue("route", Arg);
      if (!parseUInt("--respawn-seed", V, RespawnSeed))
        return 2;
    } else if (!std::strcmp(Arg, "--hedge-ms")) {
      const char *V = A.next();
      if (!V)
        return missingValue("route", Arg);
      if (!parseUInt("--hedge-ms", V, HedgeMs))
        return 2;
    } else if (!std::strcmp(Arg, "--hedge-auto")) {
      HedgeAuto = true;
    } else if (!std::strcmp(Arg, "--warm-keys")) {
      const char *V = A.next();
      if (!V)
        return missingValue("route", Arg);
      if (!parseUInt("--warm-keys", V, WarmKeys))
        return 2;
    } else if (!std::strcmp(Arg, "--trace")) {
      const char *V = A.next();
      if (!V)
        return missingValue("route", Arg);
      TracePath = V;
    } else if (!std::strcmp(Arg, "--events")) {
      const char *V = A.next();
      if (!V)
        return missingValue("route", Arg);
      EventsPath = V;
    } else {
      return unknownToken("route", Arg);
    }
  }
  if (!TracePath.empty()) {
    std::string Err;
    if (!trace::startToFile(TracePath, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 2;
    }
  }
  if (!EventsPath.empty()) {
    std::string Err;
    if (!events::startToFile(EventsPath, /*MaxBytes=*/0, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 2;
    }
  }
  distrib::RouterConfig Cfg;
  Cfg.VirtualNodes = static_cast<unsigned>(Vnodes);
  Cfg.Supervise = Supervise;
  Cfg.ProbeIntervalMs = static_cast<unsigned>(ProbeIntervalMs);
  Cfg.RespawnSeed = RespawnSeed;
  Cfg.HedgeMs = static_cast<unsigned>(HedgeMs);
  Cfg.HedgeAuto = HedgeAuto;
  Cfg.WarmKeys = static_cast<unsigned>(WarmKeys);
  if (!RespawnCmd.empty()) {
    Cfg.RespawnCmd = RespawnCmd;
  } else if (Supervise && !ModelPath.empty()) {
    // Own the replica processes outright: respawn them as this very binary.
    char Self[4096];
    ssize_t N = ::readlink("/proc/self/exe", Self, sizeof(Self) - 1);
    if (N > 0) {
      Self[N] = '\0';
      Cfg.RespawnCmd = std::string("'") + Self +
                       "' serve --socket '{socket}' --model '" + ModelPath +
                       "' >/dev/null 2>&1";
    }
  }
  for (size_t Pos = 0; Pos <= ReplicaList.size();) {
    size_t Comma = ReplicaList.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = ReplicaList.size();
    if (Comma > Pos)
      Cfg.Replicas.push_back(ReplicaList.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  if (SocketPath.empty() || Cfg.Replicas.empty()) {
    std::fprintf(stderr, "error: route requires --socket PATH and "
                         "--replicas SOCK1,SOCK2,...\n");
    return 2;
  }

  distrib::Router Router(Cfg);
  GStopRequested = 0;
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onStopSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0;
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);
  std::fprintf(stderr,
               "uspec route: %zu replicas, %llu vnodes each, listening on "
               "%s%s%s%s\n",
               Cfg.Replicas.size(), static_cast<unsigned long long>(Vnodes),
               SocketPath.c_str(),
               Cfg.Supervise ? (Cfg.RespawnCmd.empty()
                                    ? " (supervise: probe/rejoin)"
                                    : " (supervise: respawn)")
                             : "",
               Cfg.HedgeAuto ? " (hedge: auto-p95)" : "",
               !Cfg.HedgeAuto && Cfg.HedgeMs
                   ? (" (hedge: " + std::to_string(Cfg.HedgeMs) + " ms)")
                         .c_str()
                   : "");
  return Router.serveUnixSocket(SocketPath, &GStopRequested);
}

//===----------------------------------------------------------------------===//
// query
//===----------------------------------------------------------------------===//

/// Connects to a `uspec serve --socket` instance, sends \p RequestLine, and
/// reads one response line into \p ResponseLine.
bool roundTrip(const std::string &SocketPath, const std::string &RequestLine,
               std::string &ResponseLine) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::fprintf(stderr, "error: socket: %s\n", std::strerror(errno));
    return false;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long: %s\n",
                 SocketPath.c_str());
    ::close(Fd);
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::fprintf(stderr, "error: connect %s: %s\n", SocketPath.c_str(),
                 std::strerror(errno));
    ::close(Fd);
    return false;
  }

  std::string Wire = RequestLine;
  Wire += '\n';
  size_t Sent = 0;
  while (Sent < Wire.size()) {
    ssize_t N = ::send(Fd, Wire.data() + Sent, Wire.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      std::fprintf(stderr, "error: send: %s\n", std::strerror(errno));
      ::close(Fd);
      return false;
    }
    Sent += static_cast<size_t>(N);
  }

  ResponseLine.clear();
  char Buf[65536];
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      std::fprintf(stderr, "error: recv: %s\n", std::strerror(errno));
      ::close(Fd);
      return false;
    }
    if (N == 0)
      break;
    ResponseLine.append(Buf, static_cast<size_t>(N));
    size_t Nl = ResponseLine.find('\n');
    if (Nl != std::string::npos) {
      ResponseLine.resize(Nl);
      break;
    }
  }
  ::close(Fd);
  if (ResponseLine.empty()) {
    std::fprintf(stderr, "error: server closed the connection without a "
                         "response\n");
    return false;
  }
  return true;
}

/// Appends `,"KEY":"VALUE"` with JSON escaping.
void appendField(std::string &Out, const char *Key, std::string_view Value) {
  Out += ",\"";
  Out += Key;
  Out += "\":";
  service::appendJsonString(Out, Value);
}

int cmdQuery(Args &A) {
  std::string SocketPath, RawRequest, TraceId;
  std::vector<const char *> Positional;
  bool Coverage = false;
  uint64_t Retries = 0, RetrySeed = 0;
  std::vector<std::string> Sources, Sinks, Sanitizers;
  while (const char *Arg = A.next()) {
    if (!std::strcmp(Arg, "--socket")) {
      const char *V = A.next();
      if (!V)
        return missingValue("query", Arg);
      SocketPath = V;
    } else if (!std::strcmp(Arg, "--trace-id")) {
      const char *V = A.next();
      if (!V)
        return missingValue("query", Arg);
      TraceId = V;
    } else if (!std::strcmp(Arg, "--retries")) {
      const char *V = A.next();
      if (!V)
        return missingValue("query", Arg);
      if (!parseUInt("--retries", V, Retries))
        return 2;
    } else if (!std::strcmp(Arg, "--retry-seed")) {
      const char *V = A.next();
      if (!V)
        return missingValue("query", Arg);
      if (!parseUInt("--retry-seed", V, RetrySeed))
        return 2;
    } else if (!std::strcmp(Arg, "--json")) {
      const char *V = A.next();
      if (!V)
        return missingValue("query", Arg);
      RawRequest = V;
    } else if (!std::strcmp(Arg, "--coverage")) {
      Coverage = true;
    } else if (!std::strcmp(Arg, "--source")) {
      const char *V = A.next();
      if (!V)
        return missingValue("query", Arg);
      Sources.push_back(V);
    } else if (!std::strcmp(Arg, "--sink")) {
      const char *V = A.next();
      if (!V)
        return missingValue("query", Arg);
      Sinks.push_back(V);
    } else if (!std::strcmp(Arg, "--sanitizer")) {
      const char *V = A.next();
      if (!V)
        return missingValue("query", Arg);
      Sanitizers.push_back(V);
    } else if (Arg[0] == '-' && Arg[1] != '\0') {
      return unknownToken("query", Arg);
    } else {
      Positional.push_back(Arg);
    }
  }
  if (SocketPath.empty()) {
    std::fprintf(stderr, "error: query requires --socket PATH\n");
    return 2;
  }

  std::string Request;
  if (!RawRequest.empty()) {
    if (!Positional.empty())
      return unknownToken("query", Positional.front());
    Request = RawRequest;
  } else {
    if (Positional.empty()) {
      std::fprintf(stderr, "error: query requires a verb (analyze, alias, "
                           "typestate, taint, specs, cachekeys, stats, "
                           "metrics, reload, shutdown) or --json REQUEST\n");
      return 2;
    }
    std::string VerbName = Positional.front();
    auto NeedArgs = [&](size_t N, const char *Shape) -> bool {
      if (Positional.size() == N + 1)
        return true;
      std::fprintf(stderr, "error: usage: uspec query --socket PATH %s\n",
                   Shape);
      return false;
    };
    auto ReadProgram = [&](size_t Index,
                           std::string &Out) -> bool {
      auto Source = readFile(Positional[Index]);
      if (!Source)
        return false;
      Out = std::move(*Source);
      return true;
    };
    std::string Program;
    if (VerbName == "analyze") {
      if (!NeedArgs(1, "analyze FILE [--coverage]"))
        return 2;
      if (!ReadProgram(1, Program))
        return 1;
      Request = "{\"verb\":\"analyze\"";
      appendField(Request, "program", Program);
      if (Coverage)
        Request += ",\"coverage\":true";
      Request += "}";
    } else if (VerbName == "alias") {
      if (!NeedArgs(3, "alias FILE A B"))
        return 2;
      if (!ReadProgram(1, Program))
        return 1;
      Request = "{\"verb\":\"alias\"";
      appendField(Request, "program", Program);
      appendField(Request, "a", Positional[2]);
      appendField(Request, "b", Positional[3]);
      Request += "}";
    } else if (VerbName == "typestate") {
      if (!NeedArgs(3, "typestate FILE CHECK USE"))
        return 2;
      if (!ReadProgram(1, Program))
        return 1;
      Request = "{\"verb\":\"typestate\"";
      appendField(Request, "program", Program);
      appendField(Request, "check", Positional[2]);
      appendField(Request, "use", Positional[3]);
      Request += "}";
    } else if (VerbName == "taint") {
      if (!NeedArgs(1, "taint FILE [--source M]... [--sink M]... "
                       "[--sanitizer M]..."))
        return 2;
      if (!ReadProgram(1, Program))
        return 1;
      Request = "{\"verb\":\"taint\"";
      appendField(Request, "program", Program);
      auto AppendList = [&](const char *Key,
                            const std::vector<std::string> &Names) {
        Request += ",\"";
        Request += Key;
        Request += "\":[";
        for (size_t I = 0; I < Names.size(); ++I) {
          if (I)
            Request += ',';
          service::appendJsonString(Request, Names[I]);
        }
        Request += ']';
      };
      AppendList("sources", Sources);
      AppendList("sinks", Sinks);
      AppendList("sanitizers", Sanitizers);
      Request += "}";
    } else if (VerbName == "reload") {
      // `reload` swaps the server's model in place: no path re-reads the
      // server's own --model, an explicit path is read *by the server*
      // (this is a server-side file name, not program content).
      if (Positional.size() > 2)
        return unknownToken("query", Positional[2]);
      Request = "{\"verb\":\"reload\"";
      if (Positional.size() == 2)
        appendField(Request, "path", Positional[1]);
      Request += "}";
    } else if (VerbName == "specs" || VerbName == "cachekeys" ||
               VerbName == "stats" || VerbName == "metrics" ||
               VerbName == "shutdown") {
      if (!NeedArgs(0, (VerbName).c_str()))
        return 2;
      Request = "{\"verb\":\"" + VerbName + "\"}";
    } else {
      return unknownToken("query", Positional.front());
    }
    if (!TraceId.empty()) {
      Request.pop_back(); // reopen the object to append the trace id
      appendField(Request, "trace_id", TraceId);
      Request += '}';
    }
  }

  // Transient failures — a connect/send/recv error (server restarting), a
  // structured `overloaded` rejection (queue full), or a router's
  // `replica_down` (the replica is marked down on the way out, so the retry
  // deterministically fails over to the next live ring owner) — are retried
  // with deterministic exponential backoff: the delay for a given
  // (seed, attempt) is always the same (service::retryDelayMs), so retry
  // traces reproduce.
  std::string Response;
  for (unsigned Attempt = 0;; ++Attempt) {
    bool Ok = roundTrip(SocketPath, Request, Response);
    const char *Reason = nullptr;
    if (!Ok)
      Reason = "connection failed";
    else if (Response.find("\"kind\":\"overloaded\"") != std::string::npos)
      Reason = "overloaded";
    else if (Response.find("\"kind\":\"replica_down\"") != std::string::npos)
      Reason = "replica down";
    if (!Reason)
      break;
    if (Attempt >= Retries) {
      if (!Ok)
        return 1;
      break; // Transient error with no retries left: fall through, print it.
    }
    uint64_t DelayMs = service::retryDelayMs(Attempt, RetrySeed);
    std::fprintf(stderr, "retry %u/%llu in %llu ms (%s)\n", Attempt + 1,
                 static_cast<unsigned long long>(Retries),
                 static_cast<unsigned long long>(DelayMs), Reason);
    std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
  }

  // `uspec query` sends no id, so a success is exactly
  // {"ok":true,"result":PAYLOAD} — or, when --trace-id was sent,
  // {"trace_id":"...","ok":true,"result":PAYLOAD}. Strip the envelope to
  // recover the payload byte-exactly (the analyze payload then matches
  // `analyze --json`).
  static const char OkPrefix[] = "{\"ok\":true,\"result\":";
  const size_t PrefixLen = sizeof(OkPrefix) - 1;
  size_t PayloadStart = std::string::npos;
  if (Response.size() > PrefixLen + 1 &&
      !Response.compare(0, PrefixLen, OkPrefix) && Response.back() == '}') {
    PayloadStart = PrefixLen;
  } else if (!TraceId.empty() &&
             !Response.compare(0, 12, "{\"trace_id\":") &&
             Response.size() > 1 && Response.back() == '}') {
    static const char OkMember[] = ",\"ok\":true,\"result\":";
    size_t Pos = Response.find(OkMember, 12);
    if (Pos != std::string::npos)
      PayloadStart = Pos + sizeof(OkMember) - 1;
  }
  if (PayloadStart != std::string::npos) {
    std::string_view Payload(Response.data() + PayloadStart,
                             Response.size() - PayloadStart - 1);
    // A string payload (the `metrics` verb) is decoded so the Prometheus
    // exposition text prints ready to scrape; structured payloads pass
    // through byte-exact.
    if (!Payload.empty() && Payload.front() == '"') {
      service::JsonValue V;
      if (service::parseJson(Payload, V, nullptr) && V.isString()) {
        std::fwrite(V.StringValue.data(), 1, V.StringValue.size(), stdout);
        if (V.StringValue.empty() || V.StringValue.back() != '\n')
          std::fputc('\n', stdout);
        return 0;
      }
    }
    std::fwrite(Payload.data(), 1, Payload.size(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  std::fprintf(stderr, "%s\n", Response.c_str());
  return 1;
}

//===----------------------------------------------------------------------===//
// obs (fleet observability: stitch / top / events; DESIGN.md §16)
//===----------------------------------------------------------------------===//

/// Serializes \p V back to JSON text. Member and array order are preserved
/// (JsonValue keeps both as vectors); integral numbers print without a
/// decimal point and everything else at the trace serializer's microsecond
/// precision (%.3f), so a round-tripped trace shard keeps its shape.
void writeJson(const service::JsonValue &V, std::string &Out) {
  using service::JsonValue;
  switch (V.TheKind) {
  case JsonValue::Kind::Null:
    Out += "null";
    break;
  case JsonValue::Kind::Bool:
    Out += V.BoolValue ? "true" : "false";
    break;
  case JsonValue::Kind::Number: {
    char Buf[64];
    double Whole;
    if (std::modf(V.NumberValue, &Whole) == 0.0 &&
        std::fabs(Whole) < 9.0e15)
      std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(Whole));
    else
      std::snprintf(Buf, sizeof(Buf), "%.3f", V.NumberValue);
    Out += Buf;
    break;
  }
  case JsonValue::Kind::String:
    service::appendJsonString(Out, V.StringValue);
    break;
  case JsonValue::Kind::Array:
    Out += '[';
    for (size_t I = 0; I < V.Items.size(); ++I) {
      if (I)
        Out += ',';
      writeJson(V.Items[I], Out);
    }
    Out += ']';
    break;
  case JsonValue::Kind::Object:
    Out += '{';
    for (size_t I = 0; I < V.Members.size(); ++I) {
      if (I)
        Out += ',';
      service::appendJsonString(Out, V.Members[I].first);
      Out += ':';
      writeJson(V.Members[I].second, Out);
    }
    Out += '}';
    break;
  }
}

/// String member \p Key of the "args" object of trace event \p E ("" when
/// absent) — where spans carry trace_id / trace_ctx correlation keys.
std::string obsSpanArg(const service::JsonValue &E, const char *Key) {
  const service::JsonValue *Args = E.find("args");
  if (!Args || !Args->isObject())
    return {};
  const service::JsonValue *V = Args->find(Key);
  return V && V->isString() ? V->StringValue : std::string();
}

/// `uspec obs stitch OUT.json SHARD...`: merge per-process Chrome-trace
/// shards into one Perfetto-loadable document. Shards are aligned onto the
/// shared machine-wide steady clock via their uspecBaseNs session epoch,
/// each pid gets a process_name metadata record naming its role (inferred
/// from span-name prefixes) and source shard, and flow events connect
/// router.forward spans to the replica service.request spans — and
/// distrib.coordinate spans to worker.* shard spans — that carry the same
/// trace_id / trace_ctx.
int cmdObsStitch(const std::vector<const char *> &Pos) {
  if (Pos.size() < 3) {
    std::fprintf(stderr,
                 "error: usage: uspec obs stitch OUT.json SHARD...\n");
    return 2;
  }
  struct Shard {
    std::string Label; ///< Basename, shown in process_name metadata.
    double ShiftUs = 0;
    service::JsonValue Doc;
  };
  std::vector<Shard> Shards;
  double MinBaseNs = -1;
  for (size_t I = 2; I < Pos.size(); ++I) {
    auto Text = readFile(Pos[I]);
    if (!Text)
      return 1;
    Shard S;
    std::string Err;
    if (!service::parseJson(*Text, S.Doc, &Err) || !S.Doc.isObject()) {
      std::fprintf(stderr, "error: %s: not a trace shard: %s\n", Pos[I],
                   Err.empty() ? "not a JSON object" : Err.c_str());
      return 1;
    }
    const service::JsonValue *Events = S.Doc.find("traceEvents");
    if (!Events || !Events->isArray()) {
      std::fprintf(stderr, "error: %s: no traceEvents array\n", Pos[I]);
      return 1;
    }
    S.Label = Pos[I];
    size_t Slash = S.Label.find_last_of('/');
    if (Slash != std::string::npos)
      S.Label.erase(0, Slash + 1);
    if (const service::JsonValue *Base = S.Doc.find("uspecBaseNs"))
      if (Base->TheKind == service::JsonValue::Kind::Number &&
          Base->NumberValue > 0) {
        S.ShiftUs = Base->NumberValue / 1e3;
        if (MinBaseNs < 0 || Base->NumberValue < MinBaseNs)
          MinBaseNs = Base->NumberValue;
      }
    Shards.push_back(std::move(S));
  }
  // Normalize: the earliest session epoch becomes t=0; shards without an
  // epoch (foreign traces) keep their own timestamps.
  for (Shard &S : Shards)
    S.ShiftUs = S.ShiftUs > 0 ? S.ShiftUs - MinBaseNs / 1e3 : 0;

  // Pass 1 over every event: shift timestamps in place, classify each pid's
  // role by span-name prefix, and index flow sources / destinations by
  // their correlation key.
  struct SpanRef {
    long Pid;
    double Tid, Ts;
  };
  std::map<long, std::pair<std::string, int>> PidRole; // pid -> label, rank
  std::map<std::string, std::vector<SpanRef>> FlowSrc, FlowDst;
  static const std::pair<const char *, const char *> Roles[] = {
      {"router.", "uspec route"},
      {"worker.", "uspec worker"},
      {"service.", "uspec serve"},
      {"distrib.", "uspec train"},
      {"learn.", "uspec train"},
  };
  for (Shard &S : Shards) {
    // find() is const; locate the traceEvents member mutably.
    for (auto &Member : S.Doc.Members) {
      if (Member.first != "traceEvents" || !Member.second.isArray())
        continue;
      for (service::JsonValue &E : Member.second.Items) {
        if (!E.isObject())
          continue;
        double Ts = 0;
        for (auto &M : E.Members)
          if (M.first == "ts" &&
              M.second.TheKind == service::JsonValue::Kind::Number) {
            M.second.NumberValue += S.ShiftUs;
            Ts = M.second.NumberValue;
          }
        const service::JsonValue *NameV = E.find("name");
        const service::JsonValue *PidV = E.find("pid");
        if (!NameV || !NameV->isString() || !PidV)
          continue;
        const std::string &Name = NameV->StringValue;
        long Pid = static_cast<long>(PidV->NumberValue);
        for (int R = 0; R < static_cast<int>(std::size(Roles)); ++R) {
          if (Name.compare(0, std::strlen(Roles[R].first), Roles[R].first))
            continue;
          auto It = PidRole.find(Pid);
          if (It == PidRole.end() || R < It->second.second)
            PidRole[Pid] = {std::string(Roles[R].second) + " — " +
                                S.Label,
                            R};
          break;
        }
        const service::JsonValue *TidV = E.find("tid");
        SpanRef Ref{Pid, TidV ? TidV->NumberValue : 0, Ts};
        if (Name == "router.forward" || Name == "distrib.coordinate") {
          std::string Key = obsSpanArg(E, "trace_id");
          if (Key.empty())
            Key = obsSpanArg(E, "trace_ctx");
          if (!Key.empty())
            FlowSrc[Key].push_back(Ref);
        } else if (Name == "service.request" ||
                   !Name.compare(0, 7, "worker.")) {
          std::string Key = obsSpanArg(E, "trace_id");
          if (Key.empty())
            Key = obsSpanArg(E, "trace_ctx");
          if (!Key.empty())
            FlowDst[Key].push_back(Ref);
        }
      }
    }
    // Pids with no recognized span prefix still get named after the shard.
    for (const service::JsonValue &E :
         S.Doc.find("traceEvents")->Items) {
      const service::JsonValue *PidV = E.isObject() ? E.find("pid") : nullptr;
      if (!PidV)
        continue;
      long Pid = static_cast<long>(PidV->NumberValue);
      if (!PidRole.count(Pid))
        PidRole[Pid] = {std::string("uspec — ") + S.Label,
                        static_cast<int>(std::size(Roles))};
    }
  }

  // Pass 2: emit. Original events (shifted), then process_name metadata,
  // then one s/f flow pair per (source span, cross-process matching span).
  std::string Out;
  Out.reserve(1 << 16);
  Out += "{\"traceEvents\":[";
  bool First = true;
  for (const Shard &S : Shards)
    for (const service::JsonValue &E :
         S.Doc.find("traceEvents")->Items) {
      if (!First)
        Out += ',';
      First = false;
      writeJson(E, Out);
    }
  char Buf[192];
  for (const auto &[Pid, Role] : PidRole) {
    if (!First)
      Out += ',';
    First = false;
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%ld,"
                  "\"tid\":0,\"args\":{\"name\":",
                  Pid);
    Out += Buf;
    service::appendJsonString(Out, Role.first);
    Out += "}}";
  }
  uint64_t FlowId = 0, Flows = 0;
  for (const auto &[Key, Srcs] : FlowSrc) {
    auto DstIt = FlowDst.find(Key);
    if (DstIt == FlowDst.end())
      continue;
    for (const SpanRef &Src : Srcs)
      for (const SpanRef &Dst : DstIt->second) {
        if (Dst.Pid == Src.Pid)
          continue;
        ++FlowId;
        ++Flows;
        std::snprintf(Buf, sizeof(Buf),
                      ",{\"name\":\"request\",\"cat\":\"uspec\",\"ph\":"
                      "\"s\",\"id\":%llu,\"pid\":%ld,\"tid\":%u,"
                      "\"ts\":%.3f}",
                      static_cast<unsigned long long>(FlowId), Src.Pid,
                      static_cast<unsigned>(Src.Tid), Src.Ts);
        Out += Buf;
        std::snprintf(Buf, sizeof(Buf),
                      ",{\"name\":\"request\",\"cat\":\"uspec\",\"ph\":"
                      "\"f\",\"bp\":\"e\",\"id\":%llu,\"pid\":%ld,"
                      "\"tid\":%u,\"ts\":%.3f}",
                      static_cast<unsigned long long>(FlowId), Dst.Pid,
                      static_cast<unsigned>(Dst.Tid), Dst.Ts);
        Out += Buf;
      }
  }
  Out += "]}";
  if (!writeFile(Pos[1], Out))
    return 1;
  std::fprintf(stderr,
               "stitched %zu shards: %zu processes, %llu flow links -> %s\n",
               Shards.size(), PidRole.size(),
               static_cast<unsigned long long>(Flows), Pos[1]);
  return 0;
}

/// Number member \p Key of object \p V (\p Dflt when absent).
double obsNum(const service::JsonValue *V, const char *Key, double Dflt = 0) {
  if (!V || !V->isObject())
    return Dflt;
  const service::JsonValue *M = V->find(Key);
  return M && M->TheKind == service::JsonValue::Kind::Number ? M->NumberValue
                                                            : Dflt;
}

/// Renders one fleet summary from a `stats` payload — the router fan-out
/// shape ({"router":...,"replicas":[...]}) gets the per-replica table, a
/// plain serve payload gets a single-process line.
void renderObsTop(const service::JsonValue &Payload) {
  const service::JsonValue *R = Payload.find("router");
  if (!R) {
    std::printf("serve: uptime %.1fs, %.0f completed (qps %.1f), "
                "cache hit %.0f%%, p95 %.2f ms\n",
                obsNum(&Payload, "uptime_s"),
                obsNum(Payload.find("requests"), "completed"),
                obsNum(&Payload, "qps"),
                obsNum(Payload.find("cache"), "hit_rate") * 100,
                obsNum(Payload.find("latency_ms"), "p95"));
    return;
  }
  const service::JsonValue *Reps = Payload.find("replicas");
  size_t Total = Reps && Reps->isArray() ? Reps->Items.size() : 0;
  size_t NumDown = 0;
  if (const service::JsonValue *D = R->find("down"))
    if (D->isArray())
      NumDown = D->Items.size();
  std::printf("fleet: %zu replicas (%zu down), router uptime %.1fs\n",
              Total, NumDown, obsNum(R, "uptime_s"));
  std::printf("router: %.0f requests, %.0f forwarded, %.0f hedged "
              "(%.0f wins), %.0f respawns, %.0f rejoins, %.0f warm "
              "replays\n",
              obsNum(R, "requests"), obsNum(R, "forwarded"),
              obsNum(R, "hedged"), obsNum(R, "hedged_wins"),
              obsNum(R, "respawns"), obsNum(R, "rejoins"),
              obsNum(R, "warm_replays"));
  if (!Reps || !Reps->isArray())
    return;
  for (size_t I = 0; I < Reps->Items.size(); ++I) {
    const service::JsonValue &Rep = Reps->Items[I];
    const service::JsonValue *Addr = Rep.find("addr");
    const service::JsonValue *DownV = Rep.find("down");
    bool IsDown = DownV && DownV->isBool() && DownV->BoolValue;
    const service::JsonValue *Stats = Rep.find("stats");
    if (Stats) {
      std::printf("  [%zu] %-28s %-4s uptime %7.1fs  %6.0f done  "
                  "hit %3.0f%%  p95 %7.2f ms\n",
                  I, Addr && Addr->isString() ? Addr->StringValue.c_str()
                                              : "?",
                  IsDown ? "DOWN" : "up", obsNum(Stats, "uptime_s"),
                  obsNum(Stats->find("requests"), "completed"),
                  obsNum(Stats->find("cache"), "hit_rate") * 100,
                  obsNum(Stats->find("latency_ms"), "p95"));
    } else {
      std::printf("  [%zu] %-28s %s\n", I,
                  Addr && Addr->isString() ? Addr->StringValue.c_str() : "?",
                  IsDown ? "DOWN (unreachable)" : "up (no stats)");
    }
  }
}

/// `uspec obs top --socket PATH [--watch] [--interval-ms N]`: one-shot (or
/// refreshing) fleet summary over the router's stats fan-out — or a single
/// serve socket's stats.
int cmdObsTop(const std::vector<const char *> &Pos) {
  std::string SocketPath;
  bool Watch = false;
  uint64_t IntervalMs = 2000;
  for (size_t I = 1; I < Pos.size(); ++I) {
    if (!std::strcmp(Pos[I], "--socket")) {
      if (++I == Pos.size())
        return missingValue("obs", "--socket");
      SocketPath = Pos[I];
    } else if (!std::strcmp(Pos[I], "--watch")) {
      Watch = true;
    } else if (!std::strcmp(Pos[I], "--interval-ms")) {
      if (++I == Pos.size())
        return missingValue("obs", "--interval-ms");
      if (!parseUInt("--interval-ms", Pos[I], IntervalMs) || !IntervalMs)
        return 2;
    } else {
      return unknownToken("obs", Pos[I]);
    }
  }
  if (SocketPath.empty()) {
    std::fprintf(stderr, "error: obs top requires --socket PATH\n");
    return 2;
  }
  GStopRequested = 0;
  if (Watch) {
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_handler = onStopSignal;
    sigemptyset(&SA.sa_mask);
    sigaction(SIGTERM, &SA, nullptr);
    sigaction(SIGINT, &SA, nullptr);
  }
  for (;;) {
    std::string Response;
    if (!roundTrip(SocketPath, "{\"verb\":\"stats\"}", Response))
      return 1;
    service::JsonValue Doc;
    std::string Err;
    const service::JsonValue *Ok = nullptr, *Result = nullptr;
    if (service::parseJson(Response, Doc, &Err)) {
      Ok = Doc.find("ok");
      Result = Doc.find("result");
    }
    if (!Ok || !Ok->isBool() || !Ok->BoolValue || !Result) {
      std::fprintf(stderr, "error: stats failed: %s\n", Response.c_str());
      return 1;
    }
    if (Watch)
      std::printf("\x1b[H\x1b[2J");
    renderObsTop(*Result);
    std::fflush(stdout);
    if (!Watch)
      return 0;
    for (uint64_t Slept = 0; Slept < IntervalMs && !GStopRequested;
         Slept += 100)
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (GStopRequested)
      return 0;
  }
}

/// `uspec obs events FILE [--follow] [--type T]`: print (and optionally
/// tail) a structured event log, filtered by event type. Torn or foreign
/// lines are skipped, not fatal — the log is append-only JSONL from
/// multiple processes.
int cmdObsEvents(const std::vector<const char *> &Pos) {
  std::string Path, Type;
  bool Follow = false;
  for (size_t I = 1; I < Pos.size(); ++I) {
    if (!std::strcmp(Pos[I], "--follow")) {
      Follow = true;
    } else if (!std::strcmp(Pos[I], "--type")) {
      if (++I == Pos.size())
        return missingValue("obs", "--type");
      Type = Pos[I];
    } else if (Pos[I][0] == '-' && Pos[I][1] != '\0') {
      return unknownToken("obs", Pos[I]);
    } else if (Path.empty()) {
      Path = Pos[I];
    } else {
      return unknownToken("obs", Pos[I]);
    }
  }
  if (Path.empty()) {
    std::fprintf(stderr,
                 "error: usage: uspec obs events FILE [--follow] "
                 "[--type T]\n");
    return 2;
  }
  errno = 0;
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot read %s: %s\n", Path.c_str(),
                 errno ? std::strerror(errno) : "unknown error");
    return 1;
  }
  GStopRequested = 0;
  if (Follow) {
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_handler = onStopSignal;
    sigemptyset(&SA.sa_mask);
    sigaction(SIGTERM, &SA, nullptr);
    sigaction(SIGINT, &SA, nullptr);
  }
  std::string Line;
  for (;;) {
    while (std::getline(In, Line)) {
      if (Line.empty())
        continue;
      service::JsonValue Doc;
      if (!service::parseJson(Line, Doc, nullptr) || !Doc.isObject())
        continue; // torn tail line or foreign text
      if (!Type.empty()) {
        const service::JsonValue *T = Doc.find("type");
        if (!T || !T->isString() || T->StringValue != Type)
          continue;
      }
      std::fwrite(Line.data(), 1, Line.size(), stdout);
      std::fputc('\n', stdout);
    }
    if (!Follow || GStopRequested)
      return 0;
    std::fflush(stdout);
    In.clear(); // new appends clear the EOF condition on the next read
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

/// `uspec obs (stitch|top|events) ...` dispatch.
int cmdObs(Args &A) {
  std::vector<const char *> Pos;
  while (const char *Arg = A.next())
    Pos.push_back(Arg);
  if (Pos.empty()) {
    std::fprintf(stderr,
                 "error: obs requires a mode: stitch, top or events\n");
    return 2;
  }
  if (!std::strcmp(Pos[0], "stitch"))
    return cmdObsStitch(Pos);
  if (!std::strcmp(Pos[0], "top"))
    return cmdObsTop(Pos);
  if (!std::strcmp(Pos[0], "events"))
    return cmdObsEvents(Pos);
  return unknownToken("obs", Pos[0]);
}

int runSubcommand(Args &A, const char *Cmd) {
  if (!std::strcmp(Cmd, "gen"))
    return cmdGen(A);
  if (!std::strcmp(Cmd, "learn"))
    return cmdLearnOrTrain(A, /*Train=*/false);
  if (!std::strcmp(Cmd, "train"))
    return cmdLearnOrTrain(A, /*Train=*/true);
  if (!std::strcmp(Cmd, "ingest"))
    return cmdIngest(A);
  if (!std::strcmp(Cmd, "select"))
    return cmdSelect(A);
  if (!std::strcmp(Cmd, "info"))
    return cmdInfo(A);
  if (!std::strcmp(Cmd, "analyze"))
    return cmdAnalyze(A);
  if (!std::strcmp(Cmd, "serve"))
    return cmdServe(A);
  if (!std::strcmp(Cmd, "worker"))
    return cmdWorker(A);
  if (!std::strcmp(Cmd, "route"))
    return cmdRoute(A);
  if (!std::strcmp(Cmd, "query"))
    return cmdQuery(A);
  if (!std::strcmp(Cmd, "obs"))
    return cmdObs(A);
  if (!std::strcmp(Cmd, "check"))
    return cmdCheck(A);
  std::fprintf(stderr, "error: unknown subcommand '%s'\n", Cmd);
  return usage();
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  // USPEC_TRACE=t.json arms tracing for any subcommand; an explicit --trace
  // (learn/train/analyze/serve/route) re-arms with its own output path.
  // USPEC_EVENTS=e.jsonl arms the structured event log the same way.
  trace::loadFromEnv();
  events::loadFromEnv();
  Args A{Argc, Argv};
  int Rc = runSubcommand(A, Argv[1]);
  std::string TraceErr;
  if (!trace::finish(&TraceErr))
    std::fprintf(stderr, "warning: failed to write trace: %s\n",
                 TraceErr.c_str());
  events::finish();
  return Rc;
}
