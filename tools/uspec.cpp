//===- uspec.cpp - The USpec command-line tool ----------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Subcommands:
//
//   uspec gen     --profile java|python -n N -o DIR [--seed S]
//       Write a synthetic corpus of MiniLang files into DIR.
//
//   uspec learn   FILES... [-o specs.txt] [--tau X] [--seed S]
//       Learn aliasing specifications from MiniLang files and write them in
//       the SpecIO text format (stdout when -o is omitted). Prints the
//       scored candidate list to stderr.
//
//   uspec analyze FILE [--specs specs.txt] [--coverage] [--dot out.dot]
//       Run the may-alias analysis on FILE (API-aware when --specs is
//       given), print aliasing call-site pairs, optionally dump the event
//       graph in Graphviz format.
//
//   uspec check   FILES...
//       Parse and lower files, reporting diagnostics.
//
//===----------------------------------------------------------------------===//

#include "core/USpec.h"
#include "corpus/Dedup.h"
#include "corpus/Generator.h"
#include "corpus/Profiles.h"
#include "eventgraph/Dot.h"
#include "specs/SpecIO.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace uspec;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  uspec gen --profile java|python -n N -o DIR [--seed S]\n"
      "  uspec learn FILES... [-o specs.txt] [--tau X] [--seed S] [--dedup]\n"
      "  uspec analyze FILE [--specs specs.txt] [--coverage] [--dot out]\n"
      "  uspec check FILES...\n");
  return 2;
}

std::optional<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

bool writeFile(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << Content;
  return true;
}

/// Simple argument cursor.
struct Args {
  int Argc;
  char **Argv;
  int Pos = 2;

  const char *next() { return Pos < Argc ? Argv[Pos++] : nullptr; }
  bool has() const { return Pos < Argc; }
};

int cmdGen(Args &A) {
  std::string ProfileName = "java", OutDir;
  size_t N = 100;
  uint64_t Seed = 1;
  while (const char *Arg = A.next()) {
    if (!std::strcmp(Arg, "--profile")) {
      const char *V = A.next();
      if (!V)
        return usage();
      ProfileName = V;
    } else if (!std::strcmp(Arg, "-n")) {
      const char *V = A.next();
      if (!V)
        return usage();
      N = std::strtoull(V, nullptr, 10);
    } else if (!std::strcmp(Arg, "-o")) {
      const char *V = A.next();
      if (!V)
        return usage();
      OutDir = V;
    } else if (!std::strcmp(Arg, "--seed")) {
      const char *V = A.next();
      if (!V)
        return usage();
      Seed = std::strtoull(V, nullptr, 10);
    } else {
      return usage();
    }
  }
  if (OutDir.empty())
    return usage();
  LanguageProfile Profile =
      ProfileName == "python" ? pythonProfile() : javaProfile();
  std::filesystem::create_directories(OutDir);
  GeneratorConfig Cfg;
  Rng Rand(Seed);
  for (size_t I = 0; I < N; ++I) {
    std::string Source = generateProgramSource(Profile, Cfg, Rand);
    std::string Path =
        OutDir + "/prog" + std::to_string(I) + ".mini";
    if (!writeFile(Path, Source)) {
      std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "wrote %zu %s programs to %s\n", N,
               Profile.Name.c_str(), OutDir.c_str());
  return 0;
}

int cmdLearn(Args &A) {
  std::vector<std::string> Files;
  std::string OutPath;
  double Tau = 0.6;
  uint64_t Seed = 0xC0FFEE;
  bool Dedup = false;
  while (const char *Arg = A.next()) {
    if (!std::strcmp(Arg, "--dedup")) {
      Dedup = true;
    } else if (!std::strcmp(Arg, "-o")) {
      const char *V = A.next();
      if (!V)
        return usage();
      OutPath = V;
    } else if (!std::strcmp(Arg, "--tau")) {
      const char *V = A.next();
      if (!V)
        return usage();
      Tau = std::strtod(V, nullptr);
    } else if (!std::strcmp(Arg, "--seed")) {
      const char *V = A.next();
      if (!V)
        return usage();
      Seed = std::strtoull(V, nullptr, 10);
    } else {
      Files.push_back(Arg);
    }
  }
  if (Files.empty())
    return usage();

  StringInterner Strings;
  std::vector<IRProgram> Corpus;
  for (const std::string &Path : Files) {
    auto Source = readFile(Path);
    if (!Source) {
      std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
      return 1;
    }
    DiagnosticSink Diags;
    auto P = parseAndLower(*Source, Path, Strings, Diags);
    if (!P) {
      std::fprintf(stderr, "%s:\n%s", Path.c_str(), Diags.render().c_str());
      return 1;
    }
    Corpus.push_back(std::move(*P));
  }

  if (Dedup) {
    size_t Removed = dedupeCorpus(Corpus);
    std::fprintf(stderr, "dedup: removed %zu duplicate program(s)\n",
                 Removed);
  }

  LearnerConfig Cfg;
  Cfg.Tau = Tau;
  Cfg.Seed = Seed;
  USpecLearner Learner(Strings, Cfg);
  LearnResult Result = Learner.learn(Corpus);

  std::fprintf(stderr, "%zu programs, %zu candidates, %zu selected "
               "(tau=%.2f)\n",
               Corpus.size(), Result.Candidates.size(),
               Result.Selected.size(), Tau);
  for (const ScoredCandidate &C : Result.Candidates)
    std::fprintf(stderr, "  %-55s %.3f (%zu matches)\n",
                 C.S.str(Strings).c_str(), C.Score, C.Matches);

  std::string Text = serializeSpecs(Result.Selected, Strings);
  if (OutPath.empty()) {
    std::fputs(Text.c_str(), stdout);
    return 0;
  }
  if (!writeFile(OutPath, Text)) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", OutPath.c_str());
  return 0;
}

int cmdAnalyze(Args &A) {
  std::string File, SpecsPath, DotPath;
  bool Coverage = false;
  while (const char *Arg = A.next()) {
    if (!std::strcmp(Arg, "--specs")) {
      const char *V = A.next();
      if (!V)
        return usage();
      SpecsPath = V;
    } else if (!std::strcmp(Arg, "--dot")) {
      const char *V = A.next();
      if (!V)
        return usage();
      DotPath = V;
    } else if (!std::strcmp(Arg, "--coverage")) {
      Coverage = true;
    } else {
      File = Arg;
    }
  }
  if (File.empty())
    return usage();

  auto Source = readFile(File);
  if (!Source) {
    std::fprintf(stderr, "error: cannot read %s\n", File.c_str());
    return 1;
  }
  StringInterner Strings;
  DiagnosticSink Diags;
  auto P = parseAndLower(*Source, File, Strings, Diags);
  if (!P) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    return 1;
  }

  SpecSet Specs;
  AnalysisOptions Options;
  if (!SpecsPath.empty()) {
    auto Text = readFile(SpecsPath);
    if (!Text) {
      std::fprintf(stderr, "error: cannot read %s\n", SpecsPath.c_str());
      return 1;
    }
    size_t ErrorLine = 0;
    Specs = parseSpecs(*Text, Strings, &ErrorLine);
    if (ErrorLine) {
      std::fprintf(stderr, "%s:%zu: malformed specification\n",
                   SpecsPath.c_str(), ErrorLine);
      return 1;
    }
    Options.ApiAware = true;
    Options.Specs = &Specs;
    Options.CoverageExtension = Coverage;
    std::printf("loaded %zu specifications (API-aware analysis%s)\n",
                Specs.size(), Coverage ? " + coverage extension" : "");
  } else {
    std::printf("no specifications (API-unaware baseline)\n");
  }

  AnalysisResult R = analyzeProgram(*P, Strings, Options);
  EventGraph G = EventGraph::build(R);

  // Report may-aliasing between call-site return values.
  std::printf("\nmay-alias call-site return pairs:\n");
  size_t Pairs = 0;
  const auto &Sites = G.callSites();
  for (size_t I = 0; I < Sites.size(); ++I) {
    for (size_t J = I + 1; J < Sites.size(); ++J) {
      if (Sites[I].Ret == InvalidEvent || Sites[J].Ret == InvalidEvent)
        continue;
      if (!R.retMayAlias(Sites[I].Ret, Sites[J].Ret))
        continue;
      std::printf("  %s  ~  %s\n",
                  Sites[I].Method.str(Strings).c_str(),
                  Sites[J].Method.str(Strings).c_str());
      ++Pairs;
    }
  }
  std::printf("%zu aliasing pairs, %zu events, %zu objects\n", Pairs,
              R.Events.size(), R.Objects.size());

  if (!DotPath.empty()) {
    if (!writeFile(DotPath, toDot(G, Strings)))
      std::fprintf(stderr, "error: cannot write %s\n", DotPath.c_str());
    else
      std::printf("event graph written to %s\n", DotPath.c_str());
  }
  return 0;
}

int cmdCheck(Args &A) {
  bool Ok = true;
  while (const char *Arg = A.next()) {
    auto Source = readFile(Arg);
    if (!Source) {
      std::fprintf(stderr, "error: cannot read %s\n", Arg);
      Ok = false;
      continue;
    }
    StringInterner Strings;
    DiagnosticSink Diags;
    auto P = parseAndLower(*Source, Arg, Strings, Diags);
    if (!P) {
      std::fprintf(stderr, "%s:\n%s", Arg, Diags.render().c_str());
      Ok = false;
    } else {
      std::printf("%s: ok (%u sites, %u guards)\n", Arg, P->NumSites,
                  P->NumGuards);
    }
  }
  return Ok ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  Args A{Argc, Argv};
  if (!std::strcmp(Argv[1], "gen"))
    return cmdGen(A);
  if (!std::strcmp(Argv[1], "learn"))
    return cmdLearn(A);
  if (!std::strcmp(Argv[1], "analyze"))
    return cmdAnalyze(A);
  if (!std::strcmp(Argv[1], "check"))
    return cmdCheck(A);
  return usage();
}
