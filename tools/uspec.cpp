//===- uspec.cpp - The USpec command-line tool ----------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Subcommands:
//
//   uspec gen     --profile java|python -n N -o DIR [--seed S]
//       Write a synthetic corpus of MiniLang files into DIR.
//
//   uspec learn   FILES... [-o specs.txt] [--tau X] [--seed S]
//       Learn aliasing specifications from MiniLang files and write them in
//       the SpecIO text format (stdout when -o is omitted). Prints the
//       scored candidate list to stderr.
//
//   uspec train   FILES... -o run.uspb [--tau X] [--seed S]
//       Run the same pipeline but checkpoint everything up to τ-selection
//       (model ϕ, scored candidates, selected set, corpus manifest) into a
//       USPB artifact for `uspec select` / `uspec analyze --model`.
//
//   uspec select  run.uspb [--tau X] [-o specs.txt]
//       Re-select specifications from a training artifact at threshold τ
//       (the training τ when omitted) without retraining. Emits exactly the
//       text `uspec learn --tau X` would emit for the same corpus and seed.
//
//   uspec info    run.uspb
//       Show an artifact's sections, sizes and training statistics.
//
//   uspec analyze FILE [--specs specs.txt | --model run.uspb] [--coverage]
//                 [--dot out.dot]
//       Run the may-alias analysis on FILE (API-aware when --specs or
//       --model is given), print aliasing call-site pairs, optionally dump
//       the event graph in Graphviz format.
//
//   uspec check   FILES...
//       Parse and lower files, reporting diagnostics.
//
//===----------------------------------------------------------------------===//

#include "artifact/Checkpoint.h"
#include "artifact/Container.h"
#include "core/USpec.h"
#include "corpus/Dedup.h"
#include "corpus/Generator.h"
#include "corpus/Profiles.h"
#include "eventgraph/Dot.h"
#include "specs/SpecIO.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace uspec;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  uspec gen --profile java|python -n N -o DIR [--seed S]\n"
      "  uspec learn FILES... [-o specs.txt] [--tau X] [--seed S] [--dedup]\n"
      "              [--threads N] [--stats]\n"
      "  uspec train FILES... -o run.uspb [--tau X] [--seed S] [--dedup]\n"
      "              [--threads N] [--stats]\n"
      "  uspec select run.uspb [--tau X] [-o specs.txt]\n"
      "  uspec info run.uspb\n"
      "  uspec analyze FILE [--specs specs.txt | --model run.uspb]\n"
      "               [--coverage] [--dot out]\n"
      "  uspec check FILES...\n");
  return 2;
}

/// Reads a whole file (binary-safe); on failure prints the path and the OS
/// error and returns nullopt.
std::optional<std::string> readFile(const std::string &Path) {
  errno = 0;
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "error: cannot read %s: %s\n", Path.c_str(),
                 errno ? std::strerror(errno) : "unknown error");
    return std::nullopt;
  }
  std::ostringstream Out;
  Out << In.rdbuf();
  if (In.bad()) {
    std::fprintf(stderr, "error: cannot read %s: %s\n", Path.c_str(),
                 errno ? std::strerror(errno) : "I/O error");
    return std::nullopt;
  }
  return Out.str();
}

/// Writes a whole file (binary-safe); on failure prints the path and the OS
/// error.
bool writeFile(const std::string &Path, const std::string &Content) {
  errno = 0;
  std::ofstream Out(Path, std::ios::binary);
  if (Out)
    Out << Content;
  if (Out)
    Out.flush();
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s: %s\n", Path.c_str(),
                 errno ? std::strerror(errno) : "I/O error");
    return false;
  }
  return true;
}

/// Parses a floating-point option value; rejects empty or partial parses so
/// `--tau banana` errors instead of silently becoming 0.
bool parseDouble(const char *Opt, const char *V, double &Out) {
  char *End = nullptr;
  Out = std::strtod(V, &End);
  if (End == V || *End) {
    std::fprintf(stderr, "error: %s expects a number, got '%s'\n", Opt, V);
    return false;
  }
  return true;
}

/// Same for unsigned integer option values (-n, --seed).
bool parseUInt(const char *Opt, const char *V, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(V, &End, 10);
  if (End == V || *End) {
    std::fprintf(stderr, "error: %s expects an unsigned integer, got '%s'\n",
                 Opt, V);
    return false;
  }
  return true;
}

/// Simple argument cursor.
struct Args {
  int Argc;
  char **Argv;
  int Pos = 2;

  const char *next() { return Pos < Argc ? Argv[Pos++] : nullptr; }
  bool has() const { return Pos < Argc; }
};

int cmdGen(Args &A) {
  std::string ProfileName = "java", OutDir;
  size_t N = 100;
  uint64_t Seed = 1;
  while (const char *Arg = A.next()) {
    if (!std::strcmp(Arg, "--profile")) {
      const char *V = A.next();
      if (!V)
        return usage();
      ProfileName = V;
    } else if (!std::strcmp(Arg, "-n")) {
      const char *V = A.next();
      if (!V)
        return usage();
      uint64_t Val = 0;
      if (!parseUInt("-n", V, Val))
        return 2;
      N = Val;
    } else if (!std::strcmp(Arg, "-o")) {
      const char *V = A.next();
      if (!V)
        return usage();
      OutDir = V;
    } else if (!std::strcmp(Arg, "--seed")) {
      const char *V = A.next();
      if (!V)
        return usage();
      if (!parseUInt("--seed", V, Seed))
        return 2;
    } else {
      return usage();
    }
  }
  if (OutDir.empty())
    return usage();
  LanguageProfile Profile =
      ProfileName == "python" ? pythonProfile() : javaProfile();
  std::filesystem::create_directories(OutDir);
  GeneratorConfig Cfg;
  Rng Rand(Seed);
  for (size_t I = 0; I < N; ++I) {
    std::string Source = generateProgramSource(Profile, Cfg, Rand);
    std::string Path =
        OutDir + "/prog" + std::to_string(I) + ".mini";
    if (!writeFile(Path, Source))
      return 1;
  }
  std::fprintf(stderr, "wrote %zu %s programs to %s\n", N,
               Profile.Name.c_str(), OutDir.c_str());
  return 0;
}

/// Parses + lowers \p Files; also records one manifest entry per program.
bool loadCorpus(const std::vector<std::string> &Files, StringInterner &Strings,
                std::vector<IRProgram> &Corpus, CorpusManifest &Manifest) {
  for (const std::string &Path : Files) {
    auto Source = readFile(Path);
    if (!Source)
      return false;
    DiagnosticSink Diags;
    auto P = parseAndLower(*Source, Path, Strings, Diags);
    if (!P) {
      std::fprintf(stderr, "%s:\n%s", Path.c_str(), Diags.render().c_str());
      return false;
    }
    Manifest.Entries.push_back({Path, programFingerprint(*P)});
    Corpus.push_back(std::move(*P));
  }
  return true;
}

/// Prints the per-run summary + candidate table to stderr (shared by
/// learn/train/select so their diagnostics line up).
void printCandidates(const StringInterner &Strings, size_t NumPrograms,
                     const std::vector<ScoredCandidate> &Candidates,
                     size_t NumSelected, double Tau) {
  std::fprintf(stderr, "%zu programs, %zu candidates, %zu selected "
               "(tau=%.2f)\n",
               NumPrograms, Candidates.size(), NumSelected, Tau);
  for (const ScoredCandidate &C : Candidates)
    std::fprintf(stderr, "  %-55s %.3f (%zu matches)\n",
                 C.S.str(Strings).c_str(), C.Score, C.Matches);
}

/// Shared implementation of `learn` (text specs out) and `train` (USPB
/// artifact out).
int cmdLearnOrTrain(Args &A, bool Train) {
  std::vector<std::string> Files;
  std::string OutPath;
  double Tau = 0.6;
  uint64_t Seed = 0xC0FFEE;
  uint64_t Threads = 0; // 0 = hardware concurrency
  bool Dedup = false, Stats = false;
  while (const char *Arg = A.next()) {
    if (!std::strcmp(Arg, "--dedup")) {
      Dedup = true;
    } else if (!std::strcmp(Arg, "--stats")) {
      Stats = true;
    } else if (!std::strcmp(Arg, "--threads")) {
      const char *V = A.next();
      if (!V)
        return usage();
      if (!parseUInt("--threads", V, Threads))
        return 2;
    } else if (!std::strcmp(Arg, "-o")) {
      const char *V = A.next();
      if (!V)
        return usage();
      OutPath = V;
    } else if (!std::strcmp(Arg, "--tau")) {
      const char *V = A.next();
      if (!V)
        return usage();
      if (!parseDouble("--tau", V, Tau))
        return 2;
    } else if (!std::strcmp(Arg, "--seed")) {
      const char *V = A.next();
      if (!V)
        return usage();
      if (!parseUInt("--seed", V, Seed))
        return 2;
    } else {
      Files.push_back(Arg);
    }
  }
  if (Files.empty())
    return usage();
  if (Train && OutPath.empty()) {
    std::fprintf(stderr, "error: train requires -o ARTIFACT\n");
    return usage();
  }

  StringInterner Strings;
  std::vector<IRProgram> Corpus;
  CorpusManifest Manifest;
  if (!loadCorpus(Files, Strings, Corpus, Manifest))
    return 1;

  if (Dedup) {
    std::vector<size_t> Dups = duplicateIndices(Corpus);
    for (size_t I = Dups.size(); I-- > 0;)
      Manifest.Entries.erase(Manifest.Entries.begin() +
                             static_cast<long>(Dups[I]));
    size_t Removed = dedupeCorpus(Corpus);
    std::fprintf(stderr, "dedup: removed %zu duplicate program(s)\n",
                 Removed);
  }

  LearnerConfig Cfg;
  Cfg.Tau = Tau;
  Cfg.Seed = Seed;
  Cfg.Threads = static_cast<unsigned>(Threads);
  USpecLearner Learner(Strings, Cfg);
  LearnResult Result = Learner.learn(Corpus);
  printCandidates(Strings, Corpus.size(), Result.Candidates,
                  Result.Selected.size(), Tau);
  // Specs/artifacts go to stdout or -o; stats stay on stderr so pipelines
  // that consume the primary output are unaffected.
  if (Stats)
    std::fprintf(stderr, "%s\n", Result.Stats.json().c_str());

  if (Train) {
    if (!writeFile(OutPath, Learner.saveArtifacts(Result, &Manifest)))
      return 1;
    std::fprintf(stderr, "wrote artifact %s (%zu programs, %zu candidates)\n",
                 OutPath.c_str(), Manifest.Entries.size(),
                 Result.Candidates.size());
    return 0;
  }

  std::string Text = serializeSpecs(Result.Selected, Strings);
  if (OutPath.empty()) {
    std::fputs(Text.c_str(), stdout);
    return 0;
  }
  if (!writeFile(OutPath, Text))
    return 1;
  std::fprintf(stderr, "wrote %s\n", OutPath.c_str());
  return 0;
}

int cmdSelect(Args &A) {
  std::string ArtifactPath, OutPath;
  std::optional<double> Tau;
  while (const char *Arg = A.next()) {
    if (!std::strcmp(Arg, "-o")) {
      const char *V = A.next();
      if (!V)
        return usage();
      OutPath = V;
    } else if (!std::strcmp(Arg, "--tau")) {
      const char *V = A.next();
      if (!V)
        return usage();
      double Val = 0;
      if (!parseDouble("--tau", V, Val))
        return 2;
      Tau = Val;
    } else if (ArtifactPath.empty()) {
      ArtifactPath = Arg;
    } else {
      return usage();
    }
  }
  if (ArtifactPath.empty())
    return usage();

  auto Bytes = readFile(ArtifactPath);
  if (!Bytes)
    return 1;
  StringInterner Strings;
  ArtifactError Err;
  auto Artifacts = USpecLearner::loadArtifacts(*Bytes, Strings, &Err);
  if (!Artifacts) {
    std::fprintf(stderr, "error: %s: %s\n", ArtifactPath.c_str(),
                 Err.str().c_str());
    return 1;
  }

  const LearnResult &R = Artifacts->Result;
  double UseTau = Tau.value_or(Artifacts->Config.Tau);
  SpecSet Selected;
  if (Tau && *Tau != Artifacts->Config.Tau)
    Selected = USpecLearner::select(R.Candidates, UseTau,
                                    Artifacts->Config.ExtendConsistency);
  else
    Selected = R.Selected;
  printCandidates(Strings, Artifacts->Manifest.Entries.size(), R.Candidates,
                  Selected.size(), UseTau);

  std::string Text = serializeSpecs(Selected, Strings);
  if (OutPath.empty()) {
    std::fputs(Text.c_str(), stdout);
    return 0;
  }
  if (!writeFile(OutPath, Text))
    return 1;
  std::fprintf(stderr, "wrote %s\n", OutPath.c_str());
  return 0;
}

int cmdInfo(Args &A) {
  const char *Path = A.next();
  if (!Path || A.has())
    return usage();
  auto Bytes = readFile(Path);
  if (!Bytes)
    return 1;

  ArtifactError Err;
  auto Container = ArtifactReader::open(*Bytes, &Err);
  if (!Container) {
    std::fprintf(stderr, "error: %s: %s\n", Path, Err.str().c_str());
    return 1;
  }
  std::printf("%s: USPB artifact, format version %u, %zu bytes\n", Path,
              Container->version(), Bytes->size());
  for (const ArtifactReader::Section &S : Container->sections())
    std::printf("  section %-6s %8zu bytes (checksum ok)\n",
                std::string(S.Name).c_str(), S.Bytes.size());

  StringInterner Strings;
  auto Artifacts = USpecLearner::loadArtifacts(*Bytes, Strings, &Err);
  if (!Artifacts) {
    std::fprintf(stderr, "error: %s: %s\n", Path, Err.str().c_str());
    return 1;
  }
  const LearnResult &R = Artifacts->Result;
  std::printf("trained on %zu programs (tau=%.2f, seed=%llu)\n",
              Artifacts->Manifest.Entries.size(), Artifacts->Config.Tau,
              static_cast<unsigned long long>(Artifacts->Config.Seed));
  std::printf("%zu candidates, %zu selected (+%zu by extension), "
              "%zu position-pair models, %zu training samples, "
              "%.3f in-sample accuracy\n",
              R.Candidates.size(), R.Selected.size(), R.AddedByExtension,
              R.Model.numModels(), R.NumTrainingSamples, R.TrainAccuracy);
  return 0;
}

int cmdAnalyze(Args &A) {
  std::string File, SpecsPath, ModelPath, DotPath;
  bool Coverage = false;
  while (const char *Arg = A.next()) {
    if (!std::strcmp(Arg, "--specs")) {
      const char *V = A.next();
      if (!V)
        return usage();
      SpecsPath = V;
    } else if (!std::strcmp(Arg, "--model")) {
      const char *V = A.next();
      if (!V)
        return usage();
      ModelPath = V;
    } else if (!std::strcmp(Arg, "--dot")) {
      const char *V = A.next();
      if (!V)
        return usage();
      DotPath = V;
    } else if (!std::strcmp(Arg, "--coverage")) {
      Coverage = true;
    } else {
      File = Arg;
    }
  }
  if (File.empty() || (!SpecsPath.empty() && !ModelPath.empty()))
    return usage();

  auto Source = readFile(File);
  if (!Source)
    return 1;
  StringInterner Strings;
  DiagnosticSink Diags;
  auto P = parseAndLower(*Source, File, Strings, Diags);
  if (!P) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    return 1;
  }

  SpecSet Specs;
  AnalysisOptions Options;
  if (!SpecsPath.empty()) {
    auto Text = readFile(SpecsPath);
    if (!Text)
      return 1;
    size_t ErrorLine = 0;
    Specs = parseSpecs(*Text, Strings, &ErrorLine);
    if (ErrorLine) {
      std::fprintf(stderr, "%s:%zu: malformed specification\n",
                   SpecsPath.c_str(), ErrorLine);
      return 1;
    }
    Options.ApiAware = true;
    Options.Specs = &Specs;
    Options.CoverageExtension = Coverage;
    std::printf("loaded %zu specifications (API-aware analysis%s)\n",
                Specs.size(), Coverage ? " + coverage extension" : "");
  } else if (!ModelPath.empty()) {
    auto Bytes = readFile(ModelPath);
    if (!Bytes)
      return 1;
    ArtifactError Err;
    auto Artifacts = USpecLearner::loadArtifacts(*Bytes, Strings, &Err);
    if (!Artifacts) {
      std::fprintf(stderr, "error: %s: %s\n", ModelPath.c_str(),
                   Err.str().c_str());
      return 1;
    }
    Specs = std::move(Artifacts->Result.Selected);
    Options.ApiAware = true;
    Options.Specs = &Specs;
    Options.CoverageExtension = Coverage;
    std::printf("loaded %zu specifications from artifact %s (API-aware "
                "analysis%s)\n",
                Specs.size(), ModelPath.c_str(),
                Coverage ? " + coverage extension" : "");
  } else {
    std::printf("no specifications (API-unaware baseline)\n");
  }

  AnalysisResult R = analyzeProgram(*P, Strings, Options);
  EventGraph G = EventGraph::build(R);

  // Report may-aliasing between call-site return values.
  std::printf("\nmay-alias call-site return pairs:\n");
  size_t Pairs = 0;
  const auto &Sites = G.callSites();
  for (size_t I = 0; I < Sites.size(); ++I) {
    for (size_t J = I + 1; J < Sites.size(); ++J) {
      if (Sites[I].Ret == InvalidEvent || Sites[J].Ret == InvalidEvent)
        continue;
      if (!R.retMayAlias(Sites[I].Ret, Sites[J].Ret))
        continue;
      std::printf("  %s  ~  %s\n",
                  Sites[I].Method.str(Strings).c_str(),
                  Sites[J].Method.str(Strings).c_str());
      ++Pairs;
    }
  }
  std::printf("%zu aliasing pairs, %zu events, %zu objects\n", Pairs,
              R.Events.size(), R.Objects.size());

  if (!DotPath.empty()) {
    if (writeFile(DotPath, toDot(G, Strings)))
      std::printf("event graph written to %s\n", DotPath.c_str());
  }
  return 0;
}

int cmdCheck(Args &A) {
  bool Ok = true;
  while (const char *Arg = A.next()) {
    auto Source = readFile(Arg);
    if (!Source) {
      Ok = false;
      continue;
    }
    StringInterner Strings;
    DiagnosticSink Diags;
    auto P = parseAndLower(*Source, Arg, Strings, Diags);
    if (!P) {
      std::fprintf(stderr, "%s:\n%s", Arg, Diags.render().c_str());
      Ok = false;
    } else {
      std::printf("%s: ok (%u sites, %u guards)\n", Arg, P->NumSites,
                  P->NumGuards);
    }
  }
  return Ok ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  Args A{Argc, Argv};
  if (!std::strcmp(Argv[1], "gen"))
    return cmdGen(A);
  if (!std::strcmp(Argv[1], "learn"))
    return cmdLearnOrTrain(A, /*Train=*/false);
  if (!std::strcmp(Argv[1], "train"))
    return cmdLearnOrTrain(A, /*Train=*/true);
  if (!std::strcmp(Argv[1], "select"))
    return cmdSelect(A);
  if (!std::strcmp(Argv[1], "info"))
    return cmdInfo(A);
  if (!std::strcmp(Argv[1], "analyze"))
    return cmdAnalyze(A);
  if (!std::strcmp(Argv[1], "check"))
    return cmdCheck(A);
  return usage();
}
