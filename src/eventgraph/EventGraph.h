//===- EventGraph.h - The event graph GP (§3.3) ----------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event graph of a program: nodes are events, and a directed edge
/// (e1, e2) exists iff e1 and e2 occur in the same history of some abstract
/// object and, in every history where both are present, e1 occurs before e2.
/// The graph exposes the paper's derived notions:
///
///   parentsG / childG — direct predecessors/successors,
///   allocG(e)         — allocation events (parentless ret events) among
///                       parents(e) ∪ {e}; the points-to set of e,
///   valG(e)           — literal/object values reaching e,
///   equalG            — value-overlap predicate on call-site arguments.
///
/// It also groups events back into call sites, which candidate extraction
/// (Alg. 1) iterates over.
///
/// Storage is struct-of-arrays: every per-event list (parents, children,
/// alloc sets, values, participants) lives in one contiguous pool with a
/// compressed-sparse-row offset table, handed out as Span views. Feature
/// extraction walks these lists for every candidate pair, so the win from
/// contiguity lands on the hottest read path of learn().
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_EVENTGRAPH_EVENTGRAPH_H
#define USPEC_EVENTGRAPH_EVENTGRAPH_H

#include "pointsto/Analysis.h"
#include "support/FlatMap.h"

#include <cstdint>
#include <vector>

namespace uspec {

/// All events of one API call site (one Site/Ctx pair).
struct CallSite {
  uint32_t Site = 0;
  uint32_t Ctx = 0;
  MethodId Method;
  uint32_t Guard = 0;
  EventId Recv = InvalidEvent;
  EventId Ret = InvalidEvent;
  /// Argument events by position (index 0 = first argument); entries may be
  /// InvalidEvent if the event was never created.
  std::vector<EventId> Args;

  uint8_t nargs() const { return Method.Arity; }
};

/// Immutable event graph built from an analysis result.
class EventGraph {
public:
  /// Builds the graph for \p R. The result references \p R — it must stay
  /// alive as long as the graph is used.
  static EventGraph build(const AnalysisResult &R);

  const AnalysisResult &analysis() const { return *R; }

  size_t numEvents() const { return NumEvents; }
  const Event &event(EventId Id) const { return R->Events.get(Id); }

  Span<EventId> parents(EventId Id) const { return Parents.row(Id); }
  Span<EventId> children(EventId Id) const { return Children.row(Id); }

  /// True iff the edge (From, To) exists.
  bool hasEdge(EventId From, EventId To) const;

  /// allocG(e): the points-to set of the event, as allocation events.
  Span<EventId> allocOf(EventId Id) const { return AllocSets.row(Id); }

  /// valG(e): sorted value tags reaching the event.
  Span<uint64_t> valOf(EventId Id) const { return Vals.row(Id); }

  /// equalG: do the two events share a value? (§5.1)
  bool equalVals(EventId A, EventId B) const;

  /// May-alias per §3.3: allocG(A) ∩ allocG(B) ≠ ∅.
  bool mayAlias(EventId A, EventId B) const;

  /// Abstract objects whose histories contain the event.
  Span<ObjectId> participants(EventId Id) const {
    return Participants.row(Id);
  }

  /// All API call sites with at least one event.
  const std::vector<CallSite> &callSites() const { return Sites; }

  /// Index into callSites() for the site owning \p Id, or -1.
  int callSiteOf(EventId Id) const {
    return Id < EventToSite.size() ? EventToSite[Id] : -1;
  }

  /// Call-site index pairs (Later, Earlier) whose receiver events co-occur
  /// in some object history within \p DistanceBound positions, with the
  /// earlier receiver event first (the set AG of Alg. 1, bounded as §7.1).
  std::vector<std::pair<uint32_t, uint32_t>>
  receiverPairs(unsigned DistanceBound) const;

private:
  /// Compressed-sparse-row list-of-lists: row I is Pool[Off[I], Off[I+1]).
  template <typename T> struct CsrRows {
    std::vector<T> Pool;
    std::vector<uint32_t> Off; ///< NumRows + 1 offsets.

    Span<T> row(size_t I) const {
      return Span<T>(Pool.data() + Off[I], Off[I + 1] - Off[I]);
    }
  };

  const AnalysisResult *R = nullptr;
  size_t NumEvents = 0;
  CsrRows<EventId> Parents;
  CsrRows<EventId> Children;
  CsrRows<EventId> AllocSets;
  CsrRows<uint64_t> Vals;
  CsrRows<ObjectId> Participants;
  std::vector<CallSite> Sites;
  /// Dense event → call-site index map (-1 = none).
  std::vector<int32_t> EventToSite;
};

} // namespace uspec

#endif // USPEC_EVENTGRAPH_EVENTGRAPH_H
