//===- EventGraph.h - The event graph GP (§3.3) ----------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event graph of a program: nodes are events, and a directed edge
/// (e1, e2) exists iff e1 and e2 occur in the same history of some abstract
/// object and, in every history where both are present, e1 occurs before e2.
/// The graph exposes the paper's derived notions:
///
///   parentsG / childG — direct predecessors/successors,
///   allocG(e)         — allocation events (parentless ret events) among
///                       parents(e) ∪ {e}; the points-to set of e,
///   valG(e)           — literal/object values reaching e,
///   equalG            — value-overlap predicate on call-site arguments.
///
/// It also groups events back into call sites, which candidate extraction
/// (Alg. 1) iterates over.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_EVENTGRAPH_EVENTGRAPH_H
#define USPEC_EVENTGRAPH_EVENTGRAPH_H

#include "pointsto/Analysis.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace uspec {

/// All events of one API call site (one Site/Ctx pair).
struct CallSite {
  uint32_t Site = 0;
  uint32_t Ctx = 0;
  MethodId Method;
  uint32_t Guard = 0;
  EventId Recv = InvalidEvent;
  EventId Ret = InvalidEvent;
  /// Argument events by position (index 0 = first argument); entries may be
  /// InvalidEvent if the event was never created.
  std::vector<EventId> Args;

  uint8_t nargs() const { return Method.Arity; }
};

/// Immutable event graph built from an analysis result.
class EventGraph {
public:
  /// Builds the graph for \p R. The result references \p R — it must stay
  /// alive as long as the graph is used.
  static EventGraph build(const AnalysisResult &R);

  const AnalysisResult &analysis() const { return *R; }

  size_t numEvents() const { return Parents.size(); }
  const Event &event(EventId Id) const { return R->Events.get(Id); }

  const std::vector<EventId> &parents(EventId Id) const {
    return Parents[Id];
  }
  const std::vector<EventId> &children(EventId Id) const {
    return Children[Id];
  }

  /// True iff the edge (From, To) exists.
  bool hasEdge(EventId From, EventId To) const;

  /// allocG(e): the points-to set of the event, as allocation events.
  const std::vector<EventId> &allocOf(EventId Id) const {
    return AllocSets[Id];
  }

  /// valG(e): sorted value tags reaching the event.
  const std::vector<uint64_t> &valOf(EventId Id) const { return Vals[Id]; }

  /// equalG: do the two events share a value? (§5.1)
  bool equalVals(EventId A, EventId B) const;

  /// May-alias per §3.3: allocG(A) ∩ allocG(B) ≠ ∅.
  bool mayAlias(EventId A, EventId B) const;

  /// Abstract objects whose histories contain the event.
  const std::vector<ObjectId> &participants(EventId Id) const {
    return Participants[Id];
  }

  /// All API call sites with at least one event.
  const std::vector<CallSite> &callSites() const { return Sites; }

  /// Index into callSites() for the site owning \p Id, or -1.
  int callSiteOf(EventId Id) const {
    auto It = EventToSite.find(Id);
    return It == EventToSite.end() ? -1 : static_cast<int>(It->second);
  }

  /// Call-site index pairs (Later, Earlier) whose receiver events co-occur
  /// in some object history within \p DistanceBound positions, with the
  /// earlier receiver event first (the set AG of Alg. 1, bounded as §7.1).
  std::vector<std::pair<uint32_t, uint32_t>>
  receiverPairs(unsigned DistanceBound) const;

private:
  const AnalysisResult *R = nullptr;
  std::vector<std::vector<EventId>> Parents;
  std::vector<std::vector<EventId>> Children;
  std::vector<std::vector<EventId>> AllocSets;
  std::vector<std::vector<uint64_t>> Vals;
  std::vector<std::vector<ObjectId>> Participants;
  std::vector<CallSite> Sites;
  std::unordered_map<EventId, uint32_t> EventToSite;
};

} // namespace uspec

#endif // USPEC_EVENTGRAPH_EVENTGRAPH_H
