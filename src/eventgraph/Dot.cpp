//===- Dot.cpp - Graphviz export of event graphs -------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "eventgraph/Dot.h"

#include <map>
#include <sstream>

using namespace uspec;

namespace {

/// Origin description for a synthetic root-allocation event: the abstract
/// object allocated there knows where it came from (parameter slot, external
/// source, receiver class), so render that instead of a bare label.
std::string rootOrigin(const EventGraph &G, const StringInterner &Strings,
                       EventId E) {
  const AnalysisResult &R = G.analysis();
  for (ObjectId Obj = 0; Obj < R.Objects.size(); ++Obj) {
    const AbstractObject &AO = R.Objects.get(Obj);
    if (AO.AllocEvent != E)
      continue;
    switch (AO.Kind) {
    case ObjectKind::Param:
      return "param:" + Strings.str(AO.Class) + "." + Strings.str(AO.Value) +
             "#" + std::to_string(AO.Site);
    case ObjectKind::External:
      return "ext:" + Strings.str(AO.Value);
    case ObjectKind::This:
      return "this:" + Strings.str(AO.Class);
    default:
      return "";
    }
  }
  return "";
}

std::string eventLabel(const EventGraph &G, const StringInterner &Strings,
                       EventId E) {
  const Event &Ev = G.event(E);
  std::string Name = Strings.str(Ev.Method.Name);
  switch (Ev.Kind) {
  case EventKind::NewAlloc:
    Name = "new" + Name;
    break;
  case EventKind::LitAlloc:
    Name = "lc";
    break;
  case EventKind::RootAlloc: {
    std::string Origin = rootOrigin(G, Strings, E);
    Name = Origin.empty() ? "root:" + Name : Origin;
    break;
  }
  case EventKind::ApiCall:
    break;
  }
  std::string Pos = Ev.Pos == PosRet
                        ? "ret"
                        : std::to_string(static_cast<int>(Ev.Pos));
  return "\\<" + Name + ", " + Pos + "\\>";
}

} // namespace

std::string uspec::toDot(const EventGraph &G, const StringInterner &Strings,
                         const std::string &Name) {
  std::ostringstream Out;
  Out << "digraph " << Name << " {\n";
  Out << "  rankdir=TB;\n  node [shape=ellipse, fontsize=10];\n";

  // Cluster ApiCall events by call site (the rectangular regions of Fig. 3).
  std::map<int, std::vector<EventId>> BySite;
  std::vector<EventId> Loose;
  for (EventId E = 0; E < G.numEvents(); ++E) {
    int Site = G.callSiteOf(E);
    if (Site >= 0)
      BySite[Site].push_back(E);
    else
      Loose.push_back(E);
  }
  for (const auto &[Site, Events] : BySite) {
    const CallSite &CS = G.callSites()[static_cast<size_t>(Site)];
    Out << "  subgraph cluster_site" << Site << " {\n";
    Out << "    label=\"" << Strings.str(CS.Method.Name) << "\";\n";
    for (EventId E : Events)
      Out << "    e" << E << " [label=\"" << eventLabel(G, Strings, E)
          << "\"];\n";
    Out << "  }\n";
  }
  for (EventId E : Loose)
    Out << "  e" << E << " [label=\"" << eventLabel(G, Strings, E)
        << "\", style=dashed];\n";

  for (EventId E = 0; E < G.numEvents(); ++E)
    for (EventId C : G.children(E))
      Out << "  e" << E << " -> e" << C << ";\n";
  Out << "}\n";
  return Out.str();
}
