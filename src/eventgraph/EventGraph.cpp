//===- EventGraph.cpp - The event graph GP (§3.3) ----------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "eventgraph/EventGraph.h"

#include <algorithm>
#include <map>
#include <unordered_set>

using namespace uspec;

namespace {

/// Sorted-unique insertion into a small vector.
template <typename T> void insertSorted(std::vector<T> &Vec, T Value) {
  auto It = std::lower_bound(Vec.begin(), Vec.end(), Value);
  if (It == Vec.end() || *It != Value)
    Vec.insert(It, Value);
}

} // namespace

EventGraph EventGraph::build(const AnalysisResult &R) {
  EventGraph G;
  G.R = &R;
  size_t N = R.Events.size();
  G.Parents.resize(N);
  G.Children.resize(N);
  G.AllocSets.resize(N);
  G.Vals.resize(N);
  G.Participants.resize(N);

  // Order votes: Forward[(a,b)] set iff some history has a before b.
  // An edge (a,b) exists iff Forward(a,b) and not Forward(b,a).
  std::unordered_map<uint64_t, uint8_t> Order; // bit0: fwd, bit1: bwd
  auto Key = [](EventId A, EventId B) {
    return (static_cast<uint64_t>(A) << 32) | B;
  };

  for (ObjectId Obj = 0; Obj < R.Histories.size(); ++Obj) {
    for (const History &H : R.Histories[Obj]) {
      for (size_t I = 0; I < H.size(); ++I) {
        insertSorted(G.Participants[H[I]], Obj);
        for (size_t J = I + 1; J < H.size(); ++J) {
          if (H[I] == H[J])
            continue;
          Order[Key(H[I], H[J])] |= 1;
          Order[Key(H[J], H[I])] |= 2;
        }
      }
    }
  }

  for (const auto &[K, Bits] : Order) {
    if (Bits != 1)
      continue; // either no forward occurrence or a contradicting order
    EventId A = static_cast<EventId>(K >> 32);
    EventId B = static_cast<EventId>(K & 0xFFFFFFFF);
    insertSorted(G.Children[A], B);
    insertSorted(G.Parents[B], A);
  }

  // Allocation events: parentless ret events. allocG(e) = allocation events
  // among parents(e) ∪ {e}.
  std::vector<bool> IsAlloc(N, false);
  for (EventId E = 0; E < N; ++E)
    IsAlloc[E] = R.Events.get(E).isRet() && G.Parents[E].empty();

  // Value of each allocation event = value of the object allocated there.
  std::unordered_map<EventId, uint64_t> AllocValue;
  for (ObjectId Obj = 0; Obj < R.Objects.size(); ++Obj) {
    const AbstractObject &AO = R.Objects.get(Obj);
    if (AO.AllocEvent == InvalidEvent)
      continue;
    auto It = R.ObjectValues.find(Obj);
    if (It != R.ObjectValues.end())
      AllocValue.emplace(AO.AllocEvent, It->second);
  }

  for (EventId E = 0; E < N; ++E) {
    std::vector<EventId> &Alloc = G.AllocSets[E];
    if (IsAlloc[E])
      Alloc.push_back(E);
    for (EventId P : G.Parents[E])
      if (IsAlloc[P])
        insertSorted(Alloc, P);

    std::vector<uint64_t> &Val = G.Vals[E];
    for (EventId A : Alloc) {
      // API-return allocation events carry no value (valG(⟨m,ret⟩) = ∅).
      if (R.Events.get(A).Kind == EventKind::ApiCall)
        continue;
      auto It = AllocValue.find(A);
      if (It != AllocValue.end())
        insertSorted(Val, It->second);
    }
  }

  // Group ApiCall events into call sites (deterministic order by Site/Ctx).
  std::map<std::pair<uint32_t, uint32_t>, CallSite> SiteMap;
  for (EventId E = 0; E < N; ++E) {
    const Event &Ev = R.Events.get(E);
    if (Ev.Kind != EventKind::ApiCall)
      continue;
    CallSite &CS = SiteMap[{Ev.Site, Ev.Ctx}];
    CS.Site = Ev.Site;
    CS.Ctx = Ev.Ctx;
    CS.Method = Ev.Method;
    CS.Guard = Ev.Guard;
    if (Ev.Pos == PosReceiver) {
      CS.Recv = E;
    } else if (Ev.Pos == PosRet) {
      CS.Ret = E;
    } else {
      if (CS.Args.size() < Ev.Pos)
        CS.Args.resize(Ev.Pos, InvalidEvent);
      CS.Args[Ev.Pos - 1] = E;
    }
  }
  for (auto &[K, CS] : SiteMap) {
    (void)K;
    CS.Args.resize(CS.Method.Arity, InvalidEvent);
    G.EventToSite.reserve(G.EventToSite.size() + 2 + CS.Args.size());
    uint32_t Index = static_cast<uint32_t>(G.Sites.size());
    if (CS.Recv != InvalidEvent)
      G.EventToSite.emplace(CS.Recv, Index);
    if (CS.Ret != InvalidEvent)
      G.EventToSite.emplace(CS.Ret, Index);
    for (EventId Arg : CS.Args)
      if (Arg != InvalidEvent)
        G.EventToSite.emplace(Arg, Index);
    G.Sites.push_back(std::move(CS));
  }
  return G;
}

bool EventGraph::hasEdge(EventId From, EventId To) const {
  const std::vector<EventId> &Succ = Children[From];
  return std::binary_search(Succ.begin(), Succ.end(), To);
}

bool EventGraph::equalVals(EventId A, EventId B) const {
  const std::vector<uint64_t> &VA = Vals[A];
  const std::vector<uint64_t> &VB = Vals[B];
  auto IA = VA.begin();
  auto IB = VB.begin();
  while (IA != VA.end() && IB != VB.end()) {
    if (*IA == *IB)
      return true;
    if (*IA < *IB)
      ++IA;
    else
      ++IB;
  }
  return false;
}

bool EventGraph::mayAlias(EventId A, EventId B) const {
  const std::vector<EventId> &SA = AllocSets[A];
  const std::vector<EventId> &SB = AllocSets[B];
  auto IA = SA.begin();
  auto IB = SB.begin();
  while (IA != SA.end() && IB != SB.end()) {
    if (*IA == *IB)
      return true;
    if (*IA < *IB)
      ++IA;
    else
      ++IB;
  }
  return false;
}

std::vector<std::pair<uint32_t, uint32_t>>
EventGraph::receiverPairs(unsigned DistanceBound) const {
  std::vector<std::pair<uint32_t, uint32_t>> Pairs;
  // A true set (not map<u64,bool>), sized up front: each site pairs with at
  // most DistanceBound predecessors, so Sites·Bound bounds the distinct
  // (later, earlier) keys and one reserve avoids rehashing during growth.
  std::unordered_set<uint64_t> Seen;
  Seen.reserve(std::min<size_t>(Sites.size() * DistanceBound,
                                Sites.size() * Sites.size()));
  for (ObjectId Obj = 0; Obj < R->Histories.size(); ++Obj) {
    for (const History &H : R->Histories[Obj]) {
      // Positions of receiver events within this history.
      std::vector<std::pair<size_t, uint32_t>> RecvAt; // (index, site idx)
      for (size_t I = 0; I < H.size(); ++I) {
        const Event &Ev = R->Events.get(H[I]);
        if (Ev.Kind != EventKind::ApiCall || Ev.Pos != PosReceiver)
          continue;
        int SiteIdx = callSiteOf(H[I]);
        if (SiteIdx >= 0)
          RecvAt.emplace_back(I, static_cast<uint32_t>(SiteIdx));
      }
      for (size_t A = 0; A < RecvAt.size(); ++A) {
        for (size_t B = A + 1; B < RecvAt.size(); ++B) {
          if (RecvAt[B].first - RecvAt[A].first > DistanceBound)
            break;
          if (RecvAt[A].second == RecvAt[B].second)
            continue;
          // (Later, Earlier) = (m1, m2).
          uint64_t Key = (static_cast<uint64_t>(RecvAt[B].second) << 32) |
                         RecvAt[A].second;
          if (!Seen.insert(Key).second)
            continue;
          Pairs.emplace_back(RecvAt[B].second, RecvAt[A].second);
        }
      }
    }
  }
  return Pairs;
}
