//===- EventGraph.cpp - The event graph GP (§3.3) ----------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "eventgraph/EventGraph.h"

#include <algorithm>

using namespace uspec;

namespace {

/// Sorted-unique insertion into a small vector.
template <typename T> void insertSorted(std::vector<T> &Vec, T Value) {
  auto It = std::lower_bound(Vec.begin(), Vec.end(), Value);
  if (It == Vec.end() || *It != Value)
    Vec.insert(It, Value);
}

/// Fills a CSR offset table + pool from a sorted, deduplicated (row, value)
/// pair list.
template <typename T, typename Rows, typename Pairs>
void fillCsr(Rows &Out, size_t NumRows, const Pairs &Sorted) {
  Out.Off.assign(NumRows + 1, 0);
  Out.Pool.resize(Sorted.size());
  for (const auto &P : Sorted)
    ++Out.Off[P.first + 1];
  for (size_t I = 1; I <= NumRows; ++I)
    Out.Off[I] += Out.Off[I - 1];
  for (size_t I = 0; I < Sorted.size(); ++I)
    Out.Pool[I] = Sorted[I].second;
}

} // namespace

EventGraph EventGraph::build(const AnalysisResult &R) {
  EventGraph G;
  G.R = &R;
  size_t N = R.Events.size();
  G.NumEvents = N;

  // Order votes: Forward[(a,b)] set iff some history has a before b.
  // An edge (a,b) exists iff Forward(a,b) and not Forward(b,a).
  FlatMap64<uint8_t> Order; // bit0: fwd, bit1: bwd
  auto Key = [](EventId A, EventId B) {
    return (static_cast<uint64_t>(A) << 32) | B;
  };

  // Participant occurrences are gathered as (event, object) pairs and
  // deduplicated by one sort below — same sets the old per-event
  // insertSorted produced, without per-event vector churn.
  std::vector<std::pair<uint32_t, ObjectId>> PartPairs;
  for (ObjectId Obj = 0; Obj < R.Histories.size(); ++Obj) {
    for (const History &H : R.Histories[Obj]) {
      for (size_t I = 0; I < H.size(); ++I) {
        PartPairs.emplace_back(H[I], Obj);
        for (size_t J = I + 1; J < H.size(); ++J) {
          if (H[I] == H[J])
            continue;
          Order.getOrCreate(Key(H[I], H[J])) |= 1;
          Order.getOrCreate(Key(H[J], H[I])) |= 2;
        }
      }
    }
  }
  std::sort(PartPairs.begin(), PartPairs.end());
  PartPairs.erase(std::unique(PartPairs.begin(), PartPairs.end()),
                  PartPairs.end());
  fillCsr<ObjectId>(G.Participants, N, PartPairs);

  // Edge list, sorted for deterministic CSR rows (the flat map's iteration
  // order is probe-table order, which must never leak into the graph).
  std::vector<std::pair<uint32_t, uint32_t>> Edges;
  Order.forEach([&](uint64_t K, uint8_t Bits) {
    if (Bits != 1)
      return; // either no forward occurrence or a contradicting order
    Edges.emplace_back(static_cast<uint32_t>(K >> 32),
                       static_cast<uint32_t>(K & 0xFFFFFFFF));
  });
  std::sort(Edges.begin(), Edges.end());
  fillCsr<EventId>(G.Children, N, Edges);
  // Parents: same edges keyed by target. Re-sorting by (to, from) keeps
  // every parent row ascending.
  for (auto &E : Edges)
    std::swap(E.first, E.second);
  std::sort(Edges.begin(), Edges.end());
  fillCsr<EventId>(G.Parents, N, Edges);

  // Allocation events: parentless ret events. allocG(e) = allocation events
  // among parents(e) ∪ {e}.
  std::vector<bool> IsAlloc(N, false);
  for (EventId E = 0; E < N; ++E)
    IsAlloc[E] = R.Events.get(E).isRet() && G.Parents.row(E).empty();

  // Value of each allocation event = value of the object allocated there
  // (first object wins, as with the old map's emplace).
  FlatMap64<uint64_t> AllocValue;
  for (ObjectId Obj = 0; Obj < R.Objects.size(); ++Obj) {
    const AbstractObject &AO = R.Objects.get(Obj);
    if (AO.AllocEvent == InvalidEvent)
      continue;
    auto It = R.ObjectValues.find(Obj);
    if (It == R.ObjectValues.end())
      continue;
    bool Inserted = false;
    uint64_t &Slot = AllocValue.getOrCreate(AO.AllocEvent, &Inserted);
    if (Inserted)
      Slot = It->second;
  }

  // Alloc sets and value sets build row-by-row in event order, so the CSR
  // pools can be appended directly.
  G.AllocSets.Off.assign(N + 1, 0);
  G.Vals.Off.assign(N + 1, 0);
  std::vector<uint64_t> ValScratch;
  for (EventId E = 0; E < N; ++E) {
    size_t Begin = G.AllocSets.Pool.size();
    if (IsAlloc[E])
      G.AllocSets.Pool.push_back(E);
    for (EventId P : G.Parents.row(E))
      if (IsAlloc[P]) {
        // Keep the row sorted: parents are ascending, but E itself may sort
        // anywhere among them.
        auto It = std::lower_bound(G.AllocSets.Pool.begin() + Begin,
                                   G.AllocSets.Pool.end(), P);
        if (It == G.AllocSets.Pool.end() || *It != P)
          G.AllocSets.Pool.insert(It, P);
      }
    G.AllocSets.Off[E + 1] = static_cast<uint32_t>(G.AllocSets.Pool.size());

    ValScratch.clear();
    for (size_t I = Begin; I < G.AllocSets.Pool.size(); ++I) {
      EventId A = G.AllocSets.Pool[I];
      // API-return allocation events carry no value (valG(⟨m,ret⟩) = ∅).
      if (R.Events.get(A).Kind == EventKind::ApiCall)
        continue;
      if (const uint64_t *V = AllocValue.find(A))
        insertSorted(ValScratch, *V);
    }
    G.Vals.Pool.insert(G.Vals.Pool.end(), ValScratch.begin(),
                       ValScratch.end());
    G.Vals.Off[E + 1] = static_cast<uint32_t>(G.Vals.Pool.size());
  }

  // Group ApiCall events into call sites, ordered by (Site, Ctx) — the same
  // deterministic order the old std::map produced; candidate extraction
  // (first-seen order) depends on it.
  std::vector<uint64_t> SiteKeys;
  for (EventId E = 0; E < N; ++E) {
    const Event &Ev = R.Events.get(E);
    if (Ev.Kind == EventKind::ApiCall)
      SiteKeys.push_back((static_cast<uint64_t>(Ev.Site) << 32) | Ev.Ctx);
  }
  std::sort(SiteKeys.begin(), SiteKeys.end());
  SiteKeys.erase(std::unique(SiteKeys.begin(), SiteKeys.end()),
                 SiteKeys.end());
  auto SiteIndexOf = [&](uint32_t Site, uint32_t Ctx) {
    uint64_t K = (static_cast<uint64_t>(Site) << 32) | Ctx;
    return static_cast<uint32_t>(
        std::lower_bound(SiteKeys.begin(), SiteKeys.end(), K) -
        SiteKeys.begin());
  };

  G.Sites.resize(SiteKeys.size());
  for (EventId E = 0; E < N; ++E) {
    const Event &Ev = R.Events.get(E);
    if (Ev.Kind != EventKind::ApiCall)
      continue;
    CallSite &CS = G.Sites[SiteIndexOf(Ev.Site, Ev.Ctx)];
    CS.Site = Ev.Site;
    CS.Ctx = Ev.Ctx;
    CS.Method = Ev.Method;
    CS.Guard = Ev.Guard;
    if (Ev.Pos == PosReceiver) {
      CS.Recv = E;
    } else if (Ev.Pos == PosRet) {
      CS.Ret = E;
    } else {
      if (CS.Args.size() < Ev.Pos)
        CS.Args.resize(Ev.Pos, InvalidEvent);
      CS.Args[Ev.Pos - 1] = E;
    }
  }
  G.EventToSite.assign(N, -1);
  for (uint32_t Index = 0; Index < G.Sites.size(); ++Index) {
    CallSite &CS = G.Sites[Index];
    CS.Args.resize(CS.Method.Arity, InvalidEvent);
    if (CS.Recv != InvalidEvent)
      G.EventToSite[CS.Recv] = static_cast<int32_t>(Index);
    if (CS.Ret != InvalidEvent)
      G.EventToSite[CS.Ret] = static_cast<int32_t>(Index);
    for (EventId Arg : CS.Args)
      if (Arg != InvalidEvent)
        G.EventToSite[Arg] = static_cast<int32_t>(Index);
  }
  return G;
}

bool EventGraph::hasEdge(EventId From, EventId To) const {
  Span<EventId> Succ = Children.row(From);
  return std::binary_search(Succ.begin(), Succ.end(), To);
}

bool EventGraph::equalVals(EventId A, EventId B) const {
  Span<uint64_t> VA = Vals.row(A);
  Span<uint64_t> VB = Vals.row(B);
  auto IA = VA.begin();
  auto IB = VB.begin();
  while (IA != VA.end() && IB != VB.end()) {
    if (*IA == *IB)
      return true;
    if (*IA < *IB)
      ++IA;
    else
      ++IB;
  }
  return false;
}

bool EventGraph::mayAlias(EventId A, EventId B) const {
  Span<EventId> SA = AllocSets.row(A);
  Span<EventId> SB = AllocSets.row(B);
  auto IA = SA.begin();
  auto IB = SB.begin();
  while (IA != SA.end() && IB != SB.end()) {
    if (*IA == *IB)
      return true;
    if (*IA < *IB)
      ++IA;
    else
      ++IB;
  }
  return false;
}

std::vector<std::pair<uint32_t, uint32_t>>
EventGraph::receiverPairs(unsigned DistanceBound) const {
  std::vector<std::pair<uint32_t, uint32_t>> Pairs;
  // A true set, sized up front: each site pairs with at most DistanceBound
  // predecessors, so Sites·Bound bounds the distinct (later, earlier) keys
  // and one reserve avoids rehashing during growth.
  FlatSet64 Seen;
  Seen.reserve(std::min<size_t>(Sites.size() * DistanceBound,
                                Sites.size() * Sites.size()));
  // Positions of receiver events within one history; hoisted so the buffer
  // is allocated once per graph, not once per history.
  std::vector<std::pair<size_t, uint32_t>> RecvAt; // (index, site idx)
  for (ObjectId Obj = 0; Obj < R->Histories.size(); ++Obj) {
    for (const History &H : R->Histories[Obj]) {
      RecvAt.clear();
      for (size_t I = 0; I < H.size(); ++I) {
        const Event &Ev = R->Events.get(H[I]);
        if (Ev.Kind != EventKind::ApiCall || Ev.Pos != PosReceiver)
          continue;
        int SiteIdx = callSiteOf(H[I]);
        if (SiteIdx >= 0)
          RecvAt.emplace_back(I, static_cast<uint32_t>(SiteIdx));
      }
      for (size_t A = 0; A < RecvAt.size(); ++A) {
        for (size_t B = A + 1; B < RecvAt.size(); ++B) {
          if (RecvAt[B].first - RecvAt[A].first > DistanceBound)
            break;
          if (RecvAt[A].second == RecvAt[B].second)
            continue;
          // (Later, Earlier) = (m1, m2).
          uint64_t Key = (static_cast<uint64_t>(RecvAt[B].second) << 32) |
                         RecvAt[A].second;
          if (!Seen.insert(Key))
            continue;
          Pairs.emplace_back(RecvAt[B].second, RecvAt[A].second);
        }
      }
    }
  }
  return Pairs;
}
