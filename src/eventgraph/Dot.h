//===- Dot.h - Graphviz export of event graphs -----------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an event graph in Graphviz DOT format, in the visual style of
/// the paper's Fig. 3: call sites become clustered boxes of their events;
/// solid edges are event-graph edges. Useful for debugging analyses and for
/// documentation.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_EVENTGRAPH_DOT_H
#define USPEC_EVENTGRAPH_DOT_H

#include "eventgraph/EventGraph.h"

#include <string>

namespace uspec {

/// Renders \p G as a DOT digraph named \p Name.
std::string toDot(const EventGraph &G, const StringInterner &Strings,
                  const std::string &Name = "event_graph");

} // namespace uspec

#endif // USPEC_EVENTGRAPH_DOT_H
