//===- Runtime.h - Concrete values and executable library models -*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete heap with executable library models. API calls are interpreted
/// mechanically from the registry's ground-truth semantics:
///
///   Store            — writes the value argument under the serialized key
///                      tuple (string-keyed classes reject non-string keys);
///   Load             — returns the stored value or null;
///   StatelessGetter  — memoizes one fresh object per (receiver, args);
///   MutatingReader   — pops the most recently inserted value, else returns
///                      a fresh object per call;
///   Factory          — fresh object per call (inheriting the receiver's
///                      inserted sequence, so iterator() works);
///   Action           — no-op, except Inserts methods which append;
///   Predicate        — 1 iff the receiver's sequence is non-empty.
///
/// This is the "library implementation" the Atlas-style baseline (§7.5)
/// black-box-executes, and what the differential soundness tests run
/// MiniLang programs against.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_RUNTIME_RUNTIME_H
#define USPEC_RUNTIME_RUNTIME_H

#include "corpus/Api.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace uspec {

/// A concrete runtime value.
struct RtValue {
  enum class Kind : uint8_t { Null, Int, Str, Obj };

  Kind TheKind = Kind::Null;
  int64_t Int = 0;
  std::string Str;
  uint32_t Obj = 0;

  static RtValue null() { return RtValue(); }
  static RtValue ofInt(int64_t V) {
    RtValue R;
    R.TheKind = Kind::Int;
    R.Int = V;
    return R;
  }
  static RtValue ofStr(std::string V) {
    RtValue R;
    R.TheKind = Kind::Str;
    R.Str = std::move(V);
    return R;
  }
  static RtValue ofObj(uint32_t Id) {
    RtValue R;
    R.TheKind = Kind::Obj;
    R.Obj = Id;
    return R;
  }

  bool isObj() const { return TheKind == Kind::Obj; }
  bool isNull() const { return TheKind == Kind::Null; }
  bool truthy() const {
    switch (TheKind) {
    case Kind::Null:
      return false;
    case Kind::Int:
      return Int != 0;
    case Kind::Str:
      return !Str.empty();
    case Kind::Obj:
      return true;
    }
    return false;
  }

  /// Structural equality (object identity for Obj).
  friend bool operator==(const RtValue &A, const RtValue &B) {
    if (A.TheKind != B.TheKind)
      return false;
    switch (A.TheKind) {
    case Kind::Null:
      return true;
    case Kind::Int:
      return A.Int == B.Int;
    case Kind::Str:
      return A.Str == B.Str;
    case Kind::Obj:
      return A.Obj == B.Obj;
    }
    return false;
  }
};

/// The concrete heap executing API semantics.
class ApiHeap {
public:
  explicit ApiHeap(const ApiRegistry &Registry) : Registry(Registry) {}

  /// Allocates a fresh object of dynamic class \p Class (may be an API
  /// class, a concept class, or an opaque tag).
  RtValue allocObject(const std::string &Class);

  /// Executes an API method concretely.
  RtValue callApi(const RtValue &Recv, const ApiMethod &Method,
                  const std::vector<RtValue> &Args);

  /// Dynamic class of an object.
  const std::string &classOf(uint32_t Obj) const;

  size_t numObjects() const { return Objects.size(); }

private:
  struct ObjState {
    std::string Class;
    std::map<std::string, RtValue> Store; ///< Key tuple -> stored value.
    std::map<std::string, RtValue> Memo;  ///< Getter memoization.
    std::vector<RtValue> Seq;             ///< Inserted sequence.
  };

  ObjState &state(const RtValue &Recv);
  static std::string serializeKey(const std::vector<RtValue> &Args,
                                  unsigned SkipPos /*1-based, 0=none*/);
  static bool keysAreStrings(const std::vector<RtValue> &Args,
                             unsigned SkipPos);

  const ApiRegistry &Registry;
  std::vector<ObjState> Objects;
  ObjState Scratch; ///< State for non-object receivers (defensive).
};

} // namespace uspec

#endif // USPEC_RUNTIME_RUNTIME_H
