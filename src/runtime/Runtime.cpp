//===- Runtime.cpp - Concrete values and executable library models ------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"

using namespace uspec;

RtValue ApiHeap::allocObject(const std::string &Class) {
  uint32_t Id = static_cast<uint32_t>(Objects.size());
  Objects.push_back(ObjState());
  Objects.back().Class = Class;
  return RtValue::ofObj(Id);
}

const std::string &ApiHeap::classOf(uint32_t Obj) const {
  static const std::string Unknown = "?";
  return Obj < Objects.size() ? Objects[Obj].Class : Unknown;
}

ApiHeap::ObjState &ApiHeap::state(const RtValue &Recv) {
  if (Recv.isObj() && Recv.Obj < Objects.size())
    return Objects[Recv.Obj];
  return Scratch;
}

std::string ApiHeap::serializeKey(const std::vector<RtValue> &Args,
                                  unsigned SkipPos) {
  std::string Key;
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I + 1 == SkipPos)
      continue;
    const RtValue &V = Args[I];
    switch (V.TheKind) {
    case RtValue::Kind::Null:
      Key += "n|";
      break;
    case RtValue::Kind::Int:
      Key += "i" + std::to_string(V.Int) + "|";
      break;
    case RtValue::Kind::Str:
      Key += "s" + V.Str + "|";
      break;
    case RtValue::Kind::Obj:
      Key += "o" + std::to_string(V.Obj) + "|";
      break;
    }
  }
  return Key;
}

bool ApiHeap::keysAreStrings(const std::vector<RtValue> &Args,
                             unsigned SkipPos) {
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I + 1 == SkipPos)
      continue;
    if (Args[I].TheKind != RtValue::Kind::Str)
      return false;
  }
  return true;
}

RtValue ApiHeap::callApi(const RtValue &Recv, const ApiMethod &Method,
                         const std::vector<RtValue> &Args) {
  ObjState &S = state(Recv);
  std::string RetClass =
      Method.ReturnsConcept.empty() ? "Opaque" : Method.ReturnsConcept;

  switch (Method.Semantics) {
  case MethodSemantics::Store: {
    if (Method.StorePos < 1 || Method.StorePos > Args.size())
      return RtValue::null();
    if (Method.StringKeysOnly && !keysAreStrings(Args, Method.StorePos))
      return RtValue::null(); // rejected: key type mismatch
    const RtValue &Value = Args[Method.StorePos - 1];
    S.Store[serializeKey(Args, Method.StorePos)] = Value;
    S.Seq.push_back(Value);
    return RtValue::null(); // put-style methods: previous value elided
  }
  case MethodSemantics::Load: {
    if (Method.StringKeysOnly && !keysAreStrings(Args, 0))
      return RtValue::null();
    auto It = S.Store.find(serializeKey(Args, 0));
    return It == S.Store.end() ? RtValue::null() : It->second;
  }
  case MethodSemantics::StatelessGetter: {
    std::string Key = Method.Name + "#" + serializeKey(Args, 0);
    auto It = S.Memo.find(Key);
    if (It != S.Memo.end())
      return It->second;
    RtValue Fresh = allocObject(RetClass);
    // NOTE: allocObject may reallocate Objects; re-resolve the state.
    state(Recv).Memo[Key] = Fresh;
    return Fresh;
  }
  case MethodSemantics::MutatingReader: {
    if (!S.Seq.empty()) {
      RtValue Last = S.Seq.back();
      S.Seq.pop_back();
      return Last;
    }
    return allocObject(RetClass);
  }
  case MethodSemantics::Factory: {
    std::vector<RtValue> Inherited = S.Seq;
    RtValue Fresh = allocObject(RetClass);
    // Factories like iterator() hand their receiver's sequence to the new
    // object so element reads are concrete.
    state(Fresh).Seq = std::move(Inherited);
    return Fresh;
  }
  case MethodSemantics::Action:
    if (Method.Inserts && !Args.empty())
      S.Seq.push_back(Args[0]);
    return RtValue::null();
  case MethodSemantics::Predicate:
    return RtValue::ofInt(S.Seq.empty() ? 0 : 1);
  case MethodSemantics::Fluent:
    if (Method.Inserts && !Args.empty())
      S.Seq.push_back(Args[0]);
    return Recv; // builder APIs return their receiver
  }
  return RtValue::null();
}
