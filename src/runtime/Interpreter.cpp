//===- Interpreter.cpp - Concrete MiniLang interpreter ------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

using namespace uspec;

Interpreter::Interpreter(const IRProgram &Program,
                         const StringInterner &Strings,
                         const ApiRegistry &Registry,
                         InterpreterOptions Options)
    : Program(Program), Strings(Strings), Registry(Registry), Opts(Options),
      Heap(Registry) {}

void Interpreter::runAll() {
  for (const IRClass &Class : Program.Classes)
    for (const IRMethod &Method : Class.Methods)
      runEntry(Class, Method);
}

RtValue Interpreter::externalObject(Symbol Name) {
  auto It = Externals.find(Name.id());
  if (It != Externals.end())
    return It->second;
  RtValue Obj = Heap.allocObject("ext:" + Strings.str(Name));
  Externals.emplace(Name.id(), Obj);
  return Obj;
}

void Interpreter::runEntry(const IRClass &Class, const IRMethod &Method) {
  Frame F;
  F.Method = &Method;
  F.Vars.resize(Method.NumVars);
  F.Vars[0] = Heap.allocObject(Strings.str(Class.Name));
  for (uint32_t P = 0; P < Method.NumParams; ++P)
    F.Vars[1 + P] = Heap.allocObject("param");
  for (const auto &[Slot, Name] : Method.Externals)
    F.Vars[Slot] = externalObject(Name);
  Steps = 0;
  execBody(Method.Body, F, /*Depth=*/0);
}

void Interpreter::execBody(const InstrList &Body, Frame &F, unsigned Depth) {
  for (const Instr &I : Body) {
    if (F.Returned || ++Steps > Opts.MaxSteps)
      return;
    execInstr(I, F, Depth);
  }
}

bool Interpreter::evalCond(const Instr &I, const Frame &F) const {
  RtValue Lhs =
      I.CondLhs != InvalidVar ? F.Vars[I.CondLhs] : RtValue::null();
  if (I.CondOp == IRCmpOp::None)
    return Lhs.truthy();
  RtValue Rhs =
      I.CondRhs != InvalidVar ? F.Vars[I.CondRhs] : RtValue::null();
  switch (I.CondOp) {
  case IRCmpOp::Eq:
    return Lhs == Rhs;
  case IRCmpOp::Ne:
    return !(Lhs == Rhs);
  case IRCmpOp::Lt:
    return Lhs.Int < Rhs.Int;
  case IRCmpOp::Gt:
    return Lhs.Int > Rhs.Int;
  case IRCmpOp::None:
    break;
  }
  return false;
}

void Interpreter::execInstr(const Instr &I, Frame &F, unsigned Depth) {
  switch (I.TheKind) {
  case Instr::Kind::Alloc:
    F.Vars[I.Dst] = Heap.allocObject(Strings.str(I.Name));
    return;
  case Instr::Kind::Literal:
    switch (I.LitKind) {
    case LiteralKind::String:
      F.Vars[I.Dst] = RtValue::ofStr(Strings.str(I.StrValue));
      return;
    case LiteralKind::Int:
      F.Vars[I.Dst] = RtValue::ofInt(I.IntValue);
      return;
    case LiteralKind::Null:
      F.Vars[I.Dst] = RtValue::null();
      return;
    }
    return;
  case Instr::Kind::Copy:
    F.Vars[I.Dst] = F.Vars[I.Src];
    return;
  case Instr::Kind::LoadField: {
    const RtValue &Base = F.Vars[I.Base];
    if (!Base.isObj()) {
      F.Vars[I.Dst] = RtValue::null();
      return;
    }
    auto It = ProgramFields.find({Base.Obj, I.Name.id()});
    F.Vars[I.Dst] = It == ProgramFields.end() ? RtValue::null() : It->second;
    return;
  }
  case Instr::Kind::StoreField: {
    const RtValue &Base = F.Vars[I.Base];
    if (Base.isObj())
      ProgramFields[{Base.Obj, I.Name.id()}] = F.Vars[I.Src];
    return;
  }
  case Instr::Kind::Call: {
    RtValue Result = callMethod(I, F, Depth);
    if (I.Dst != InvalidVar)
      F.Vars[I.Dst] = Result;
    return;
  }
  case Instr::Kind::If:
    if (evalCond(I, F))
      execBody(I.Inner1, F, Depth);
    else
      execBody(I.Inner2, F, Depth);
    return;
  case Instr::Kind::While: {
    unsigned Iters = 0;
    while (Iters++ < Opts.MaxLoopIters && evalCond(I, F) && !F.Returned) {
      execBody(I.Inner1, F, Depth);
      // Re-evaluate the condition expressions (Inner2 holds a copy).
      execBody(I.Inner2, F, Depth);
    }
    return;
  }
  case Instr::Kind::Return:
    if (I.Src != InvalidVar)
      F.Ret = F.Vars[I.Src];
    F.Returned = true;
    return;
  }
}

RtValue Interpreter::callMethod(const Instr &I, Frame &F, unsigned Depth) {
  RtValue Recv = F.Vars[I.Base];
  std::vector<RtValue> Args;
  Args.reserve(I.Args.size());
  for (VarId Arg : I.Args)
    Args.push_back(F.Vars[Arg]);

  const std::string &Name = Strings.str(I.Name);

  // Program-defined method? (Dynamic class of the receiver.)
  if (Recv.isObj()) {
    const std::string &Class = Heap.classOf(Recv.Obj);
    Symbol ClassSym;
    // Avoid interning into a const interner: linear scan over classes.
    for (const IRClass &C : Program.Classes) {
      if (Strings.str(C.Name) != Class)
        continue;
      if (const IRMethod *Target = C.findMethod(I.Name)) {
        if (Depth >= Opts.MaxCallDepth)
          return RtValue::null();
        Frame Callee;
        Callee.Method = Target;
        Callee.Vars.resize(Target->NumVars);
        Callee.Vars[0] = Recv;
        for (uint32_t P = 0; P < Target->NumParams && P < Args.size(); ++P)
          Callee.Vars[1 + P] = Args[P];
        for (const auto &[Slot, ExtName] : Target->Externals)
          Callee.Vars[Slot] = externalObject(ExtName);
        execBody(Target->Body, Callee, Depth + 1);
        return Callee.Ret;
      }
      break;
    }
    (void)ClassSym;
  }

  // API call: resolve by unique (name, arity) in the registry; receivers of
  // registry classes prefer their own class's method.
  const ApiMethod *Method = nullptr;
  if (Recv.isObj())
    if (const ApiClass *C = Registry.findClass(Heap.classOf(Recv.Obj)))
      Method = C->findMethod(Name, static_cast<unsigned>(Args.size()));
  if (!Method)
    Method =
        Registry.findUniqueMethod(Name, static_cast<unsigned>(Args.size()));

  RtValue Result;
  if (Method)
    Result = Heap.callApi(Recv, *Method, Args);
  else
    Result = Heap.allocObject("Opaque"); // unknown API: fresh object
  SiteReturns[I.SiteId].push_back(Result);
  return Result;
}
