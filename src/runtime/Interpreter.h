//===- Interpreter.h - Concrete MiniLang interpreter -----------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a lowered MiniLang program concretely against the ApiHeap
/// library models. Used by the differential soundness tests: aliasing
/// observed in a concrete run (identical object identities returned by two
/// API call sites) must be reported as may-alias by the API-aware analysis
/// running with ground-truth specifications.
///
/// Loops are bounded; program-defined methods are interpreted with a bounded
/// call depth; every entry method of every class is run once.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_RUNTIME_INTERPRETER_H
#define USPEC_RUNTIME_INTERPRETER_H

#include "ir/IR.h"
#include "runtime/Runtime.h"
#include "support/StringInterner.h"

#include <map>
#include <vector>

namespace uspec {

/// Interpreter limits.
struct InterpreterOptions {
  unsigned MaxLoopIters = 2;
  unsigned MaxCallDepth = 8;
  /// Upper bound on executed instructions per entry (runaway guard).
  unsigned MaxSteps = 100000;
};

/// Runs a program and records per-call-site return values.
class Interpreter {
public:
  Interpreter(const IRProgram &Program, const StringInterner &Strings,
              const ApiRegistry &Registry,
              InterpreterOptions Options = InterpreterOptions());

  /// Executes every method of every class as an entry point.
  void runAll();

  /// Concrete values returned by each API call site (multiple entries when
  /// the site executed several times).
  const std::map<uint32_t, std::vector<RtValue>> &returnsPerSite() const {
    return SiteReturns;
  }

  const ApiHeap &heap() const { return Heap; }

private:
  struct Frame {
    const IRMethod *Method = nullptr;
    std::vector<RtValue> Vars;
    RtValue Ret;
    bool Returned = false;
  };

  void runEntry(const IRClass &Class, const IRMethod &Method);
  void execBody(const InstrList &Body, Frame &F, unsigned Depth);
  void execInstr(const Instr &I, Frame &F, unsigned Depth);
  bool evalCond(const Instr &I, const Frame &F) const;
  RtValue callMethod(const Instr &I, Frame &F, unsigned Depth);

  /// Resolves an external/global name to a heap object (one per name).
  RtValue externalObject(Symbol Name);

  const IRProgram &Program;
  const StringInterner &Strings;
  const ApiRegistry &Registry;
  InterpreterOptions Opts;
  ApiHeap Heap;
  std::map<uint32_t, RtValue> Externals;
  std::map<uint32_t, std::vector<RtValue>> SiteReturns;
  /// Program-defined objects: heap objects whose class is a program class;
  /// their fields live here (keyed by object id + field symbol).
  std::map<std::pair<uint32_t, uint32_t>, RtValue> ProgramFields;
  unsigned Steps = 0;
};

} // namespace uspec

#endif // USPEC_RUNTIME_INTERPRETER_H
