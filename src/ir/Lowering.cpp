//===- Lowering.cpp - AST to IR lowering ------------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Lowering.h"

#include "lang/Parser.h"

#include <unordered_map>

using namespace uspec;

namespace {

/// Per-module lowering state.
class LoweringContext {
public:
  LoweringContext(const Module &M, StringInterner &Strings,
                  DiagnosticSink &Diags)
      : M(M), Strings(Strings), Diags(Diags) {}

  std::optional<IRProgram> run() {
    IRProgram Program;
    Program.Name = M.Name;
    for (const ClassDecl &Class : M.Classes) {
      IRClass IC;
      IC.Name = Strings.intern(Class.Name);
      for (const std::string &Field : Class.Fields)
        IC.Fields.push_back(Strings.intern(Field));
      for (const MethodDecl &Method : Class.Methods) {
        auto Lowered = lowerMethod(Method);
        if (!Lowered)
          return std::nullopt;
        IC.Methods.push_back(std::move(*Lowered));
      }
      Program.Classes.push_back(std::move(IC));
    }
    Program.NumSites = NextSiteId - 1;
    Program.NumGuards = NextGuardId - 1;
    Program.SourceLines = MaxLine;
    return Program;
  }

private:
  //===--------------------------------------------------------------------===//
  // Method-level state
  //===--------------------------------------------------------------------===//

  struct MethodState {
    IRMethod Method;
    /// Scope stack: innermost last. Maps source name -> slot.
    std::vector<std::unordered_map<std::string, VarId>> Scopes;
    bool HadError = false;
  };

  std::optional<IRMethod> lowerMethod(const MethodDecl &Decl) {
    MethodState State;
    State.Method.Name = Strings.intern(Decl.Name);
    State.Method.NumParams = static_cast<uint32_t>(Decl.Params.size());
    State.Scopes.emplace_back();

    // Slot 0 is `this`.
    State.Method.VarNames.push_back("this");
    for (const std::string &Param : Decl.Params) {
      VarId Slot = static_cast<VarId>(State.Method.VarNames.size());
      State.Method.VarNames.push_back(Param);
      if (!State.Scopes.back().emplace(Param, Slot).second) {
        Diags.error(Decl.Line, 0, "duplicate parameter '" + Param + "'");
        State.HadError = true;
      }
    }

    lowerBlock(State, Decl.Body, State.Method.Body);
    State.Method.NumVars = static_cast<uint32_t>(State.Method.VarNames.size());
    if (State.HadError)
      return std::nullopt;
    return std::move(State.Method);
  }

  VarId newTemp(MethodState &State) {
    VarId Slot = static_cast<VarId>(State.Method.VarNames.size());
    State.Method.VarNames.push_back("%t" +
                                    std::to_string(State.Method.VarNames.size()));
    return Slot;
  }

  VarId declareLocal(MethodState &State, const std::string &Name, int Line) {
    if (State.Scopes.back().count(Name)) {
      Diags.error(Line, 0, "redeclaration of '" + Name + "'");
      State.HadError = true;
      return State.Scopes.back()[Name];
    }
    VarId Slot = static_cast<VarId>(State.Method.VarNames.size());
    State.Method.VarNames.push_back(Name);
    State.Scopes.back().emplace(Name, Slot);
    return Slot;
  }

  VarId lookup(MethodState &State, const std::string &Name, int Line) {
    (void)Line;
    for (auto It = State.Scopes.rbegin(); It != State.Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    // Free name: an external global holding an unknown API object. Register
    // it method-wide (in the outermost scope) so repeated uses share a slot.
    VarId Slot = static_cast<VarId>(State.Method.VarNames.size());
    State.Method.VarNames.push_back(Name);
    State.Scopes.front().emplace(Name, Slot);
    State.Method.Externals.emplace_back(Slot, Strings.intern(Name));
    return Slot;
  }

  void noteLine(int Line) {
    if (Line > 0 && static_cast<uint32_t>(Line) > MaxLine)
      MaxLine = static_cast<uint32_t>(Line);
  }

  //===--------------------------------------------------------------------===//
  // Expression lowering
  //===--------------------------------------------------------------------===//

  /// Lowers \p E into \p Out, returning the slot holding its value.
  VarId lowerExpr(MethodState &State, const Expr &E, InstrList &Out) {
    noteLine(E.getLine());
    switch (E.getKind()) {
    case Expr::Kind::New:
      return lowerNew(State, *cast<NewExpr>(&E), Out);
    case Expr::Kind::StringLit: {
      const auto &Lit = *cast<StringLitExpr>(&E);
      Instr I;
      I.TheKind = Instr::Kind::Literal;
      I.Line = E.getLine();
      I.Dst = newTemp(State);
      I.LitKind = LiteralKind::String;
      I.StrValue = Strings.intern(Lit.Value);
      I.SiteId = NextSiteId++;
      Out.push_back(std::move(I));
      return Out.back().Dst;
    }
    case Expr::Kind::IntLit: {
      const auto &Lit = *cast<IntLitExpr>(&E);
      Instr I;
      I.TheKind = Instr::Kind::Literal;
      I.Line = E.getLine();
      I.Dst = newTemp(State);
      I.LitKind = LiteralKind::Int;
      I.StrValue = Strings.intern(std::to_string(Lit.Value));
      I.IntValue = Lit.Value;
      I.SiteId = NextSiteId++;
      Out.push_back(std::move(I));
      return Out.back().Dst;
    }
    case Expr::Kind::Null: {
      Instr I;
      I.TheKind = Instr::Kind::Literal;
      I.Line = E.getLine();
      I.Dst = newTemp(State);
      I.LitKind = LiteralKind::Null;
      I.SiteId = NextSiteId++;
      Out.push_back(std::move(I));
      return Out.back().Dst;
    }
    case Expr::Kind::This:
      return 0;
    case Expr::Kind::VarRef:
      return lookup(State, cast<VarRefExpr>(&E)->Name, E.getLine());
    case Expr::Kind::FieldRead: {
      const auto &Read = *cast<FieldReadExpr>(&E);
      VarId Base = lowerExpr(State, *Read.Base, Out);
      Instr I;
      I.TheKind = Instr::Kind::LoadField;
      I.Line = E.getLine();
      I.Dst = newTemp(State);
      I.Base = Base;
      I.Name = Strings.intern(Read.Field);
      Out.push_back(std::move(I));
      return Out.back().Dst;
    }
    case Expr::Kind::Call: {
      const auto &Call = *cast<CallExpr>(&E);
      VarId Recv = Call.Receiver ? lowerExpr(State, *Call.Receiver, Out)
                                 : 0 /* implicit this */;
      std::vector<VarId> Args;
      Args.reserve(Call.Args.size());
      for (const ExprPtr &Arg : Call.Args)
        Args.push_back(lowerExpr(State, *Arg, Out));
      Instr I;
      I.TheKind = Instr::Kind::Call;
      I.Line = E.getLine();
      I.Dst = newTemp(State);
      I.Base = Recv;
      I.Name = Strings.intern(Call.Method);
      I.Args = std::move(Args);
      I.SiteId = NextSiteId++;
      I.GuardId = CurrentGuard;
      Out.push_back(std::move(I));
      return Out.back().Dst;
    }
    }
    return InvalidVar; // unreachable: all kinds covered
  }

  VarId lowerNew(MethodState &State, const NewExpr &New, InstrList &Out) {
    std::vector<VarId> Args;
    Args.reserve(New.Args.size());
    for (const ExprPtr &Arg : New.Args)
      Args.push_back(lowerExpr(State, *Arg, Out));

    Instr I;
    I.TheKind = Instr::Kind::Alloc;
    I.Line = New.getLine();
    I.Dst = newTemp(State);
    I.Name = Strings.intern(New.ClassName);
    I.SiteId = NextSiteId++;
    Out.push_back(std::move(I));
    VarId Obj = Out.back().Dst;

    // If this instantiates a program-defined class with an `init` method,
    // lower the constructor call; otherwise arguments are dropped (API-class
    // construction is opaque).
    const ClassDecl *Class = M.findClass(New.ClassName);
    if (Class && Class->findMethod("init")) {
      Instr CallInit;
      CallInit.TheKind = Instr::Kind::Call;
      CallInit.Line = New.getLine();
      CallInit.Dst = InvalidVar;
      CallInit.Base = Obj;
      CallInit.Name = Strings.intern("init");
      CallInit.Args = std::move(Args);
      CallInit.SiteId = NextSiteId++;
      CallInit.GuardId = CurrentGuard;
      Out.push_back(std::move(CallInit));
    }
    return Obj;
  }

  //===--------------------------------------------------------------------===//
  // Statement lowering
  //===--------------------------------------------------------------------===//

  void lowerCondition(MethodState &State, const Condition &Cond, Instr &Target,
                      InstrList &Out) {
    Target.CondLhs = lowerExpr(State, *Cond.Lhs, Out);
    switch (Cond.Op) {
    case CmpOp::None:
      Target.CondOp = IRCmpOp::None;
      break;
    case CmpOp::Eq:
      Target.CondOp = IRCmpOp::Eq;
      break;
    case CmpOp::Ne:
      Target.CondOp = IRCmpOp::Ne;
      break;
    case CmpOp::Lt:
      Target.CondOp = IRCmpOp::Lt;
      break;
    case CmpOp::Gt:
      Target.CondOp = IRCmpOp::Gt;
      break;
    }
    if (Cond.Rhs)
      Target.CondRhs = lowerExpr(State, *Cond.Rhs, Out);
  }

  void lowerBlock(MethodState &State, const Block &B, InstrList &Out) {
    State.Scopes.emplace_back();
    for (const StmtPtr &S : B)
      lowerStmt(State, *S, Out);
    State.Scopes.pop_back();
  }

  void lowerStmt(MethodState &State, const Stmt &S, InstrList &Out) {
    noteLine(S.getLine());
    switch (S.getKind()) {
    case Stmt::Kind::VarDecl: {
      const auto &Decl = *cast<VarDeclStmt>(&S);
      VarId Init = InvalidVar;
      if (Decl.Init)
        Init = lowerExpr(State, *Decl.Init, Out);
      VarId Slot = declareLocal(State, Decl.Name, S.getLine());
      if (Init != InvalidVar) {
        Instr I;
        I.TheKind = Instr::Kind::Copy;
        I.Line = S.getLine();
        I.Dst = Slot;
        I.Src = Init;
        Out.push_back(std::move(I));
      }
      return;
    }
    case Stmt::Kind::Assign: {
      const auto &Assign = *cast<AssignStmt>(&S);
      if (const auto *Var = dyn_cast<VarRefExpr>(Assign.Target.get())) {
        VarId Value = lowerExpr(State, *Assign.Value, Out);
        VarId Slot = lookup(State, Var->Name, S.getLine());
        Instr I;
        I.TheKind = Instr::Kind::Copy;
        I.Line = S.getLine();
        I.Dst = Slot;
        I.Src = Value;
        Out.push_back(std::move(I));
        return;
      }
      const auto &Field = *cast<FieldReadExpr>(Assign.Target.get());
      VarId Base = lowerExpr(State, *Field.Base, Out);
      VarId Value = lowerExpr(State, *Assign.Value, Out);
      Instr I;
      I.TheKind = Instr::Kind::StoreField;
      I.Line = S.getLine();
      I.Base = Base;
      I.Name = Strings.intern(Field.Field);
      I.Src = Value;
      Out.push_back(std::move(I));
      return;
    }
    case Stmt::Kind::ExprStmt: {
      VarId Result = lowerExpr(State, *cast<ExprStmt>(&S)->E, Out);
      // Mark unused call results: keep Dst, analyses don't care.
      (void)Result;
      return;
    }
    case Stmt::Kind::If: {
      const auto &If = *cast<IfStmt>(&S);
      Instr I;
      I.TheKind = Instr::Kind::If;
      I.Line = S.getLine();
      lowerCondition(State, If.Cond, I, Out);
      uint32_t Guard = NextGuardId++;
      I.GuardId = Guard;
      uint32_t SavedGuard = CurrentGuard;
      CurrentGuard = Guard;
      lowerBlock(State, If.Then, I.Inner1);
      lowerBlock(State, If.Else, I.Inner2);
      CurrentGuard = SavedGuard;
      Out.push_back(std::move(I));
      return;
    }
    case Stmt::Kind::While: {
      const auto &While = *cast<WhileStmt>(&S);
      Instr I;
      I.TheKind = Instr::Kind::While;
      I.Line = S.getLine();
      // The condition is evaluated once before the loop (for the analysis'
      // single unrolling); a copy of its instructions is kept on the loop so
      // the interpreter can re-evaluate it per iteration.
      InstrList CondInstrs;
      lowerCondition(State, While.Cond, I, CondInstrs);
      I.Inner2 = CondInstrs;
      for (Instr &C : CondInstrs)
        Out.push_back(std::move(C));
      uint32_t Guard = NextGuardId++;
      I.GuardId = Guard;
      uint32_t SavedGuard = CurrentGuard;
      CurrentGuard = Guard;
      lowerBlock(State, While.Body, I.Inner1);
      CurrentGuard = SavedGuard;
      Out.push_back(std::move(I));
      return;
    }
    case Stmt::Kind::Return: {
      const auto &Ret = *cast<ReturnStmt>(&S);
      Instr I;
      I.TheKind = Instr::Kind::Return;
      I.Line = S.getLine();
      if (Ret.Value)
        I.Src = lowerExpr(State, *Ret.Value, Out);
      Out.push_back(std::move(I));
      return;
    }
    }
  }

  const Module &M;
  StringInterner &Strings;
  DiagnosticSink &Diags;
  uint32_t NextSiteId = 1;
  uint32_t NextGuardId = 1;
  uint32_t CurrentGuard = 0;
  uint32_t MaxLine = 0;
};

} // namespace

std::optional<IRProgram> uspec::lowerModule(const Module &M,
                                            StringInterner &Strings,
                                            DiagnosticSink &Diags) {
  LoweringContext Ctx(M, Strings, Diags);
  auto Result = Ctx.run();
  if (Diags.hasErrors())
    return std::nullopt;
  return Result;
}

std::optional<IRProgram> uspec::parseAndLower(std::string_view Source,
                                              std::string ModuleName,
                                              StringInterner &Strings,
                                              DiagnosticSink &Diags) {
  auto M = Parser::parse(Source, std::move(ModuleName), Diags);
  if (!M || Diags.hasErrors())
    return std::nullopt;
  return lowerModule(*M, Strings, Diags);
}
