//===- IR.cpp - IR utilities -----------------------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include <sstream>

using namespace uspec;

namespace {

void disassembleList(const InstrList &Body, const IRMethod &Method,
                     const StringInterner &Strings, int Indent,
                     std::ostringstream &Out) {
  auto Pad = [&Out](int N) {
    for (int I = 0; I < N; ++I)
      Out << "  ";
  };
  auto VarName = [&Method](VarId Var) -> std::string {
    if (Var == InvalidVar)
      return "_";
    if (Var < Method.VarNames.size())
      return Method.VarNames[Var];
    return "v" + std::to_string(Var);
  };

  for (const Instr &I : Body) {
    Pad(Indent);
    switch (I.TheKind) {
    case Instr::Kind::Alloc:
      Out << VarName(I.Dst) << " = alloc " << Strings.str(I.Name) << " @"
          << I.SiteId << "\n";
      break;
    case Instr::Kind::Literal:
      Out << VarName(I.Dst) << " = lit ";
      switch (I.LitKind) {
      case LiteralKind::String:
        Out << '"' << Strings.str(I.StrValue) << '"';
        break;
      case LiteralKind::Int:
        Out << I.IntValue;
        break;
      case LiteralKind::Null:
        Out << "null";
        break;
      }
      Out << " @" << I.SiteId << "\n";
      break;
    case Instr::Kind::Copy:
      Out << VarName(I.Dst) << " = " << VarName(I.Src) << "\n";
      break;
    case Instr::Kind::LoadField:
      Out << VarName(I.Dst) << " = " << VarName(I.Base) << "."
          << Strings.str(I.Name) << "\n";
      break;
    case Instr::Kind::StoreField:
      Out << VarName(I.Base) << "." << Strings.str(I.Name) << " = "
          << VarName(I.Src) << "\n";
      break;
    case Instr::Kind::Call:
      if (I.Dst != InvalidVar)
        Out << VarName(I.Dst) << " = ";
      Out << VarName(I.Base) << "." << Strings.str(I.Name) << "(";
      for (size_t A = 0; A < I.Args.size(); ++A) {
        if (A)
          Out << ", ";
        Out << VarName(I.Args[A]);
      }
      Out << ") @" << I.SiteId << "\n";
      break;
    case Instr::Kind::If:
      Out << "if " << VarName(I.CondLhs) << " guard#" << I.GuardId << "\n";
      disassembleList(I.Inner1, Method, Strings, Indent + 1, Out);
      if (!I.Inner2.empty()) {
        Pad(Indent);
        Out << "else\n";
        disassembleList(I.Inner2, Method, Strings, Indent + 1, Out);
      }
      break;
    case Instr::Kind::While:
      Out << "while " << VarName(I.CondLhs) << " guard#" << I.GuardId << "\n";
      disassembleList(I.Inner1, Method, Strings, Indent + 1, Out);
      break;
    case Instr::Kind::Return:
      Out << "return";
      if (I.Src != InvalidVar)
        Out << " " << VarName(I.Src);
      Out << "\n";
      break;
    }
  }
}

} // namespace

std::string uspec::disassemble(const IRProgram &Program,
                               const StringInterner &Strings) {
  std::ostringstream Out;
  for (const IRClass &Class : Program.Classes) {
    Out << "class " << Strings.str(Class.Name) << " {\n";
    for (const IRMethod &Method : Class.Methods) {
      Out << " def " << Strings.str(Method.Name) << "/" << Method.NumParams
          << " {\n";
      disassembleList(Method.Body, Method, Strings, 2, Out);
      Out << " }\n";
    }
    Out << "}\n";
  }
  return Out.str();
}
