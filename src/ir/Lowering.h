//===- Lowering.h - AST to IR lowering -------------------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a parsed MiniLang Module into the analysis IR: expressions are
/// flattened into temporaries, `new C(...)` of a program-defined class with
/// an `init` method additionally calls the initializer, and every
/// allocation/literal/call receives a program-unique site id.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_IR_LOWERING_H
#define USPEC_IR_LOWERING_H

#include "ir/IR.h"
#include "lang/AST.h"
#include "lang/Diagnostics.h"
#include "support/StringInterner.h"

#include <optional>

namespace uspec {

/// Lowers \p M into an IRProgram. Names are interned into \p Strings (which
/// must outlive the result and be shared corpus-wide). Semantic errors (use
/// of undeclared variables, duplicate locals) are reported to \p Diags;
/// returns std::nullopt if any error was emitted.
std::optional<IRProgram> lowerModule(const Module &M, StringInterner &Strings,
                                     DiagnosticSink &Diags);

/// Convenience: parse + lower in one step.
std::optional<IRProgram> parseAndLower(std::string_view Source,
                                       std::string ModuleName,
                                       StringInterner &Strings,
                                       DiagnosticSink &Diags);

} // namespace uspec

#endif // USPEC_IR_LOWERING_H
