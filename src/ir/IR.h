//===- IR.h - Structured three-address IR for MiniLang ---------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis IR. MiniLang ASTs are lowered (see Lowering.h) into a
/// structured IR: flat instruction lists with nested If/While regions and
/// method-scoped variable slots. All names are interned in a pipeline-wide
/// StringInterner so method identifiers are comparable across programs — the
/// specification learner aggregates candidates corpus-wide.
///
/// Site identifiers (allocations, literals, calls) are unique within one
/// IRProgram; events in the paper are pairs ⟨call site, position⟩ and our
/// SiteId plays the call-site role.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_IR_IR_H
#define USPEC_IR_IR_H

#include "support/StringInterner.h"

#include <cstdint>
#include <string>
#include <vector>

namespace uspec {

/// Index of a variable slot within a method frame. Slot 0 is `this`,
/// slots 1..N are parameters, the rest are locals and compiler temps.
using VarId = uint32_t;

/// Sentinel for "no variable" (e.g. a call whose result is unused).
inline constexpr VarId InvalidVar = ~static_cast<VarId>(0);

/// Comparison operator recorded on If/While guards (mirrors AST CmpOp).
enum class IRCmpOp : uint8_t { None, Eq, Ne, Lt, Gt };

/// Kind of literal produced by a Literal instruction.
enum class LiteralKind : uint8_t { String, Int, Null };

/// A single IR instruction. If/While instructions own nested instruction
/// lists; everything else is a leaf. A tagged struct (rather than a class
/// hierarchy) keeps the interpreter and analyses simple and fast.
struct Instr {
  enum class Kind : uint8_t {
    Alloc,      ///< Dst = new Class          (site)
    Literal,    ///< Dst = literal            (site)
    Copy,       ///< Dst = Src
    LoadField,  ///< Dst = Base.Name
    StoreField, ///< Base.Name = Src
    Call,       ///< [Dst =] Base.Name(Args)  (site, guard)
    If,         ///< if (CondLhs op CondRhs) Inner1 else Inner2
    While,      ///< while (CondLhs op CondRhs) Inner1
    Return,     ///< return [Src]
  };

  Kind TheKind;
  int Line = 0;

  VarId Dst = InvalidVar;  ///< Alloc/Literal/Copy/LoadField/Call result.
  VarId Src = InvalidVar;  ///< Copy/StoreField/Return operand.
  VarId Base = InvalidVar; ///< LoadField/StoreField base, Call receiver.
  Symbol Name;             ///< Class (Alloc), field, or method name.

  LiteralKind LitKind = LiteralKind::Null;
  Symbol StrValue;      ///< Interned literal text (also for ints, canonical
                        ///< decimal) — this feeds valG.
  int64_t IntValue = 0; ///< Int literal payload for the interpreter.

  std::vector<VarId> Args; ///< Call arguments.

  /// Program-unique site id for Alloc/Literal/Call (0 = not a site).
  uint32_t SiteId = 0;
  /// Innermost enclosing guard region id (0 = none); feeds feature γ.
  uint32_t GuardId = 0;

  // Guard condition operands for If/While.
  IRCmpOp CondOp = IRCmpOp::None;
  VarId CondLhs = InvalidVar;
  VarId CondRhs = InvalidVar;

  std::vector<Instr> Inner1; ///< If-then / While-body.
  std::vector<Instr> Inner2; ///< If-else; for While: a copy of the
                             ///< condition-evaluating instructions, re-run
                             ///< per iteration by the concrete interpreter
                             ///< (the analysis unrolls once and ignores it).
};

using InstrList = std::vector<Instr>;

/// A lowered method.
struct IRMethod {
  Symbol Name;
  uint32_t NumParams = 0;
  /// Total number of variable slots (this + params + locals + temps).
  uint32_t NumVars = 0;
  /// Debug names per slot (temps are named "%tN").
  std::vector<std::string> VarNames;
  /// Free names referenced by the method body (e.g. `db` in `db.getFile()`),
  /// treated as external globals holding unknown API objects, exactly like
  /// the partial-program fragments the paper analyzes. Each entry maps the
  /// variable slot to the source name.
  std::vector<std::pair<VarId, Symbol>> Externals;
  InstrList Body;
};

/// A lowered class.
struct IRClass {
  Symbol Name;
  std::vector<Symbol> Fields;
  std::vector<IRMethod> Methods;

  const IRMethod *findMethod(Symbol MethodName) const {
    for (const IRMethod &M : Methods)
      if (M.Name == MethodName)
        return &M;
    return nullptr;
  }
};

/// A lowered program (one MiniLang module).
struct IRProgram {
  std::string Name;
  std::vector<IRClass> Classes;
  /// Total number of site ids handed out (site ids are 1..NumSites).
  uint32_t NumSites = 0;
  /// Total number of guard ids handed out (guard ids are 1..NumGuards).
  uint32_t NumGuards = 0;
  /// Approximate number of source lines (used for per-loc rates in Tab. 4).
  uint32_t SourceLines = 0;

  const IRClass *findClass(Symbol ClassName) const {
    for (const IRClass &C : Classes)
      if (C.Name == ClassName)
        return &C;
    return nullptr;
  }
};

/// Returns a compact disassembly of \p Program for tests and debugging.
std::string disassemble(const IRProgram &Program, const StringInterner &Strings);

} // namespace uspec

#endif // USPEC_IR_IR_H
