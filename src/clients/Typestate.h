//===- Typestate.h - Type-state client analysis (§7.4, Fig. 8a) -*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A type-state checker over abstract histories: a protocol names a *check*
/// method and a *use* method (e.g. Iterator.hasNext / Iterator.next), and
/// every use must be preceded — on the same abstract object, with no
/// intervening use — by a check. Warnings are per call site.
///
/// The client's precision depends directly on the may-alias analysis: with
/// the API-unaware analysis, `iters.get(i).hasNext()` and
/// `iters.get(i).next()` act on two distinct abstract objects and the check
/// is lost (false positive); the API-aware analysis merges them via
/// RetSame(get) (Fig. 8a).
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_CLIENTS_TYPESTATE_H
#define USPEC_CLIENTS_TYPESTATE_H

#include "pointsto/Analysis.h"
#include "support/StringInterner.h"

#include <string>
#include <vector>

namespace uspec {

/// A check-before-use protocol.
struct TypestateProtocol {
  std::string CheckMethod; ///< e.g. "hasNext"
  std::string UseMethod;   ///< e.g. "next"
};

/// One potential protocol violation.
struct TypestateWarning {
  uint32_t Site = 0;
  uint32_t Ctx = 0;

  friend bool operator==(const TypestateWarning &A,
                         const TypestateWarning &B) {
    return A.Site == B.Site && A.Ctx == B.Ctx;
  }
  friend bool operator<(const TypestateWarning &A, const TypestateWarning &B) {
    return A.Site != B.Site ? A.Site < B.Site : A.Ctx < B.Ctx;
  }
};

/// Checks the protocol over every abstract history of \p R. A use call site
/// is warned about if *some* history reaches it in unchecked state
/// (may-analysis, conservative).
std::vector<TypestateWarning> checkTypestate(const AnalysisResult &R,
                                             const StringInterner &Strings,
                                             const TypestateProtocol &Proto);

/// Symbol-resolved core: \p Check / \p Use are method-name symbols of the
/// interner \p R was analyzed under. Entirely const over its inputs and
/// allocates no interner state, so concurrent callers (one per service
/// request) may share one frozen analysis. Resolve names with
/// StringInterner::lookup — a name that was never interned cannot match any
/// event, so passing Symbol() for an absent check is equivalent to "no
/// check method exists".
std::vector<TypestateWarning> checkTypestate(const AnalysisResult &R,
                                             Symbol Check, Symbol Use);

} // namespace uspec

#endif // USPEC_CLIENTS_TYPESTATE_H
