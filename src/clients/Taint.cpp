//===- Taint.cpp - Taint client analysis ---------------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "clients/Taint.h"

#include <algorithm>

using namespace uspec;

ResolvedTaintConfig
ResolvedTaintConfig::resolve(const TaintConfig &Config,
                             const StringInterner &Strings) {
  auto ResolveSet = [&Strings](const std::set<std::string> &Names) {
    std::set<Symbol> Out;
    for (const std::string &Name : Names)
      if (auto Sym = Strings.lookup(Name); Sym && !Sym->isEmpty())
        Out.insert(*Sym);
    return Out;
  };
  ResolvedTaintConfig Out;
  Out.Sources = ResolveSet(Config.Sources);
  Out.Sinks = ResolveSet(Config.Sinks);
  Out.Sanitizers = ResolveSet(Config.Sanitizers);
  return Out;
}

std::vector<TaintFinding> uspec::checkTaint(const AnalysisResult &R,
                                            const ResolvedTaintConfig &Config) {
  std::vector<TaintFinding> Findings;
  for (const HistorySet &His : R.Histories) {
    for (const History &H : His) {
      bool Tainted = false;
      uint32_t SourceSite = 0;
      for (EventId E : H) {
        const Event &Ev = R.Events.get(E);
        if (Ev.Kind != EventKind::ApiCall)
          continue;
        Symbol Name = Ev.Method.Name;
        if (Ev.Pos == PosRet && Config.Sources.count(Name)) {
          Tainted = true;
          SourceSite = Ev.Site;
          continue;
        }
        if (Ev.Pos != PosRet && Config.Sanitizers.count(Name)) {
          Tainted = false;
          continue;
        }
        if (Ev.Pos != PosRet && Ev.Pos != PosReceiver &&
            Config.Sinks.count(Name) && Tainted)
          Findings.push_back({SourceSite, Ev.Site});
      }
    }
  }
  std::sort(Findings.begin(), Findings.end());
  Findings.erase(std::unique(Findings.begin(), Findings.end()),
                 Findings.end());
  return Findings;
}

std::vector<TaintFinding> uspec::checkTaint(const AnalysisResult &R,
                                            const StringInterner &Strings,
                                            const TaintConfig &Config) {
  return checkTaint(R, ResolvedTaintConfig::resolve(Config, Strings));
}
