//===- Taint.cpp - Taint client analysis ---------------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "clients/Taint.h"

#include <algorithm>

using namespace uspec;

std::vector<TaintFinding> uspec::checkTaint(const AnalysisResult &R,
                                            const StringInterner &Strings,
                                            const TaintConfig &Config) {
  std::vector<TaintFinding> Findings;
  for (const HistorySet &His : R.Histories) {
    for (const History &H : His) {
      bool Tainted = false;
      uint32_t SourceSite = 0;
      for (EventId E : H) {
        const Event &Ev = R.Events.get(E);
        if (Ev.Kind != EventKind::ApiCall)
          continue;
        const std::string &Name = Strings.str(Ev.Method.Name);
        if (Ev.Pos == PosRet && Config.Sources.count(Name)) {
          Tainted = true;
          SourceSite = Ev.Site;
          continue;
        }
        if (Ev.Pos != PosRet && Config.Sanitizers.count(Name)) {
          Tainted = false;
          continue;
        }
        if (Ev.Pos != PosRet && Ev.Pos != PosReceiver &&
            Config.Sinks.count(Name) && Tainted)
          Findings.push_back({SourceSite, Ev.Site});
      }
    }
  }
  std::sort(Findings.begin(), Findings.end());
  Findings.erase(std::unique(Findings.begin(), Findings.end()),
                 Findings.end());
  return Findings;
}
