//===- Typestate.cpp - Type-state client analysis ------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "clients/Typestate.h"

#include <algorithm>

using namespace uspec;

std::vector<TypestateWarning>
uspec::checkTypestate(const AnalysisResult &R, const StringInterner &Strings,
                      const TypestateProtocol &Proto) {
  std::vector<TypestateWarning> Warnings;
  for (const HistorySet &His : R.Histories) {
    for (const History &H : His) {
      bool Checked = false;
      for (EventId E : H) {
        const Event &Ev = R.Events.get(E);
        if (Ev.Kind != EventKind::ApiCall || Ev.Pos != PosReceiver)
          continue;
        const std::string &Name = Strings.str(Ev.Method.Name);
        if (Name == Proto.CheckMethod) {
          Checked = true;
          continue;
        }
        if (Name != Proto.UseMethod)
          continue;
        if (!Checked)
          Warnings.push_back({Ev.Site, Ev.Ctx});
        Checked = false; // a use consumes the check
      }
    }
  }
  std::sort(Warnings.begin(), Warnings.end());
  Warnings.erase(std::unique(Warnings.begin(), Warnings.end()),
                 Warnings.end());
  return Warnings;
}
