//===- Typestate.cpp - Type-state client analysis ------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "clients/Typestate.h"

#include <algorithm>

using namespace uspec;

std::vector<TypestateWarning> uspec::checkTypestate(const AnalysisResult &R,
                                                    Symbol Check, Symbol Use) {
  std::vector<TypestateWarning> Warnings;
  if (Use.isEmpty())
    return Warnings; // the use method does not occur anywhere
  for (const HistorySet &His : R.Histories) {
    for (const History &H : His) {
      bool Checked = false;
      for (EventId E : H) {
        const Event &Ev = R.Events.get(E);
        if (Ev.Kind != EventKind::ApiCall || Ev.Pos != PosReceiver)
          continue;
        if (Ev.Method.Name == Check) {
          Checked = true;
          continue;
        }
        if (Ev.Method.Name != Use)
          continue;
        if (!Checked)
          Warnings.push_back({Ev.Site, Ev.Ctx});
        Checked = false; // a use consumes the check
      }
    }
  }
  std::sort(Warnings.begin(), Warnings.end());
  Warnings.erase(std::unique(Warnings.begin(), Warnings.end()),
                 Warnings.end());
  return Warnings;
}

std::vector<TypestateWarning>
uspec::checkTypestate(const AnalysisResult &R, const StringInterner &Strings,
                      const TypestateProtocol &Proto) {
  // Names never interned cannot match any event; Symbol() (the empty
  // string) is equally unmatchable because method names are non-empty.
  std::optional<Symbol> Check = Strings.lookup(Proto.CheckMethod);
  std::optional<Symbol> Use = Strings.lookup(Proto.UseMethod);
  if (!Use || Use->isEmpty())
    return {};
  return checkTypestate(R, Check.value_or(Symbol()), *Use);
}
