//===- Taint.h - Taint client analysis (§7.4, Fig. 8b) ---------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A taint checker over abstract histories: values returned by *source*
/// methods are tainted; passing a tainted value to a *sink* method is a
/// finding; *sanitizer* calls clear the taint of the value passing through.
///
/// Like the type-state client, findings hinge on the may-alias analysis: in
/// Fig. 8b the tainted value flows through kwargs.setdefault /
/// kwargs['data-value'], which only an API-aware analysis connects — the
/// unaware analysis produces a false negative.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_CLIENTS_TAINT_H
#define USPEC_CLIENTS_TAINT_H

#include "pointsto/Analysis.h"
#include "support/StringInterner.h"

#include <set>
#include <string>
#include <vector>

namespace uspec {

/// Taint policy: method names acting as sources, sinks and sanitizers.
struct TaintConfig {
  std::set<std::string> Sources;
  std::set<std::string> Sinks;
  std::set<std::string> Sanitizers;
};

/// One tainted flow reaching a sink.
struct TaintFinding {
  uint32_t SourceSite = 0;
  uint32_t SinkSite = 0;

  friend bool operator==(const TaintFinding &A, const TaintFinding &B) {
    return A.SourceSite == B.SourceSite && A.SinkSite == B.SinkSite;
  }
  friend bool operator<(const TaintFinding &A, const TaintFinding &B) {
    return A.SourceSite != B.SourceSite ? A.SourceSite < B.SourceSite
                                        : A.SinkSite < B.SinkSite;
  }
};

/// A TaintConfig resolved to method-name symbols of one interner. Names
/// that were never interned are dropped at resolution time (they cannot
/// match any event), so the check itself touches only symbols.
struct ResolvedTaintConfig {
  std::set<Symbol> Sources;
  std::set<Symbol> Sinks;
  std::set<Symbol> Sanitizers;

  /// Resolves \p Config against \p Strings via the const lookup() probe —
  /// never interns, so concurrent resolutions over a frozen interner are
  /// safe (one per service request).
  static ResolvedTaintConfig resolve(const TaintConfig &Config,
                                     const StringInterner &Strings);
};

/// Finds tainted source→sink flows over all abstract histories.
std::vector<TaintFinding> checkTaint(const AnalysisResult &R,
                                     const StringInterner &Strings,
                                     const TaintConfig &Config);

/// Symbol-resolved core; entirely const over its inputs (see
/// ResolvedTaintConfig::resolve).
std::vector<TaintFinding> checkTaint(const AnalysisResult &R,
                                     const ResolvedTaintConfig &Config);

} // namespace uspec

#endif // USPEC_CLIENTS_TAINT_H
