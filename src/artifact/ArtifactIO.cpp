//===- ArtifactIO.cpp - Typed section codecs for USPB artifacts ---------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "artifact/ArtifactIO.h"

#include "support/FaultInject.h"
#include "support/Trace.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace uspec;

namespace {

/// Decoder-side cardinality caps: generous for real artifacts, small enough
/// that corrupted counts cannot provoke huge allocations.
constexpr uint64_t MaxStrings = 1u << 24;
constexpr uint64_t MaxSpecs = 1u << 24;
constexpr uint64_t MaxCandidates = 1u << 24;
constexpr uint64_t MaxModels = 1u << 16;
constexpr uint64_t MaxDimBits = 30;
constexpr uint64_t MaxManifestEntries = 1u << 24;
constexpr uint64_t MaxLedgerConfidences = 1u << 28;

/// Finishes a section decode: the reader must have consumed every byte.
template <typename T>
std::optional<T> finish(BinaryReader &R, T Value, ArtifactError *Err) {
  if (R.ok() && R.remaining() > 0)
    R.fail(std::to_string(R.remaining()) + " trailing bytes after payload");
  if (!R.ok()) {
    if (Err)
      *Err = R.error();
    return std::nullopt;
  }
  return std::optional<T>(std::move(Value));
}

} // namespace

//===----------------------------------------------------------------------===//
// String table
//===----------------------------------------------------------------------===//

uint32_t SymbolTableBuilder::localId(Symbol Sym) {
  if (Sym.isEmpty())
    return 0;
  auto It = Map.find(Sym.id());
  if (It != Map.end())
    return It->second;
  uint32_t Local = static_cast<uint32_t>(Order.size());
  Order.push_back(Sym);
  Map.emplace(Sym.id(), Local);
  return Local;
}

std::string SymbolTableBuilder::encode() const {
  BinaryWriter W;
  W.writeVarint(Order.size());
  for (Symbol Sym : Order)
    W.writeString(Strings.str(Sym));
  return W.take();
}

std::optional<SymbolTable> SymbolTable::decode(std::string_view Bytes,
                                               StringInterner &Strings,
                                               ArtifactError *Err) {
  BinaryReader R(Bytes, "strs");
  SymbolTable Table;
  uint64_t Count = R.readCount(MaxStrings, "string");
  Table.Syms.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; R.ok() && I < Count; ++I) {
    std::string_view Str = R.readString();
    if (!R.ok())
      break;
    if (I == 0 && !Str.empty()) {
      R.fail("string 0 must be empty (the unknown class)");
      break;
    }
    Table.Syms.push_back(Strings.intern(Str));
  }
  return finish(R, std::move(Table), Err);
}

//===----------------------------------------------------------------------===//
// Specs
//===----------------------------------------------------------------------===//

namespace {

void encodeMethodId(BinaryWriter &W, const MethodId &M,
                    SymbolTableBuilder &Syms) {
  W.writeVarint(Syms.localId(M.Class));
  W.writeVarint(Syms.localId(M.Name));
  W.writeU8(M.Arity);
}

MethodId decodeMethodId(BinaryReader &R, const SymbolTable &Syms) {
  MethodId M;
  M.Class = Syms.resolve(R.readVarint(), R);
  M.Name = Syms.resolve(R.readVarint(), R);
  M.Arity = R.readU8();
  if (R.ok() && M.Name.isEmpty())
    R.fail("method with empty name");
  return M;
}

} // namespace

void uspec::encodeSpec(BinaryWriter &W, const Spec &S,
                       SymbolTableBuilder &Syms) {
  W.writeU8(static_cast<uint8_t>(S.TheKind));
  encodeMethodId(W, S.Target, Syms);
  if (S.TheKind == Spec::Kind::RetArg) {
    encodeMethodId(W, S.Source, Syms);
    W.writeU8(S.ArgPos);
  }
}

Spec uspec::decodeSpec(BinaryReader &R, const SymbolTable &Syms) {
  uint8_t Kind = R.readU8();
  if (R.ok() && Kind > static_cast<uint8_t>(Spec::Kind::RetRecv)) {
    R.fail("unknown spec kind " + std::to_string(Kind));
    return Spec();
  }
  MethodId Target = decodeMethodId(R, Syms);
  if (!R.ok())
    return Spec();
  switch (static_cast<Spec::Kind>(Kind)) {
  case Spec::Kind::RetSame:
    return Spec::retSame(Target);
  case Spec::Kind::RetRecv:
    return Spec::retRecv(Target);
  case Spec::Kind::RetArg:
    break;
  }
  MethodId Source = decodeMethodId(R, Syms);
  uint8_t ArgPos = R.readU8();
  if (R.ok() && ArgPos == 0)
    R.fail("RetArg with argument position 0");
  if (!R.ok())
    return Spec();
  return Spec::retArg(Target, Source, ArgPos);
}

std::string uspec::encodeSpecSet(const SpecSet &Specs,
                                 SymbolTableBuilder &Syms) {
  BinaryWriter W;
  W.writeVarint(Specs.size());
  for (const Spec &S : Specs.all())
    encodeSpec(W, S, Syms);
  return W.take();
}

std::optional<SpecSet> uspec::decodeSpecSet(std::string_view Bytes,
                                            const SymbolTable &Syms,
                                            ArtifactError *Err) {
  BinaryReader R(Bytes, "spec");
  SpecSet Specs;
  uint64_t Count = R.readCount(MaxSpecs, "spec");
  for (uint64_t I = 0; R.ok() && I < Count; ++I) {
    Spec S = decodeSpec(R, Syms);
    if (R.ok())
      Specs.insert(S);
  }
  return finish(R, std::move(Specs), Err);
}

//===----------------------------------------------------------------------===//
// Model
//===----------------------------------------------------------------------===//

std::string uspec::encodeModel(const EdgeModel &Model) {
  const EdgeModelConfig &Cfg = Model.config();
  BinaryWriter W;
  W.writeVarint(Cfg.DimBits);
  W.writeVarint(Cfg.Epochs);
  W.writeF64(Cfg.LearningRate);
  W.writeF64(Cfg.L2);
  W.writeU64(Cfg.Seed);
  W.writeVarint(Model.models().size());
  for (const auto &[PosKey, Lr] : Model.models()) {
    W.writeU16(PosKey);
    const std::vector<float> &Weights = Lr.weights();
    W.writeVarint(Weights.size());
    W.writeF32(Lr.bias());
    // Sparse gap coding: SGD only ever touches hashed feature slots, so
    // most of the table is still exactly 0.0f and is omitted.
    size_t NonZero = 0;
    for (float V : Weights)
      NonZero += V != 0.0f;
    W.writeVarint(NonZero);
    uint64_t Prev = 0;
    for (size_t I = 0; I < Weights.size(); ++I) {
      if (Weights[I] == 0.0f)
        continue;
      W.writeVarint(I - Prev);
      W.writeF32(Weights[I]);
      Prev = I;
    }
  }
  return W.take();
}

std::optional<EdgeModel> uspec::decodeModel(std::string_view Bytes,
                                            ArtifactError *Err) {
  BinaryReader R(Bytes, "modl");
  EdgeModelConfig Cfg;
  Cfg.DimBits =
      static_cast<unsigned>(R.readCount(MaxDimBits, "model dim bits"));
  Cfg.Epochs = static_cast<unsigned>(R.readCount(1u << 20, "epoch"));
  Cfg.LearningRate = R.readF64();
  Cfg.L2 = R.readF64();
  Cfg.Seed = R.readU64();
  uint64_t NumModels = R.readCount(MaxModels, "model");
  std::map<uint16_t, LogisticRegression> Models;
  for (uint64_t I = 0; R.ok() && I < NumModels; ++I) {
    uint16_t PosKey = R.readU16();
    uint64_t TableSize = R.readCount(1ull << MaxDimBits, "weight");
    if (R.ok() && (TableSize == 0 || (TableSize & (TableSize - 1))))
      R.fail("weight table size " + std::to_string(TableSize) +
             " is not a power of two");
    float Bias = R.readF32();
    uint64_t NonZero = R.readCount(TableSize, "nonzero weight");
    if (!R.ok())
      break;
    std::vector<float> Weights(static_cast<size_t>(TableSize), 0.0f);
    uint64_t Index = 0;
    bool First = true;
    for (uint64_t J = 0; R.ok() && J < NonZero; ++J) {
      uint64_t Gap = R.readVarint();
      Index = First ? Gap : Index + Gap;
      First = false;
      float V = R.readF32();
      if (!R.ok())
        break;
      if (Index >= TableSize) {
        R.fail("weight index " + std::to_string(Index) +
               " out of range (table size " + std::to_string(TableSize) + ")");
        break;
      }
      Weights[static_cast<size_t>(Index)] = V;
    }
    if (!R.ok())
      break;
    if (Models.count(PosKey)) {
      R.fail("duplicate model for position key " + std::to_string(PosKey));
      break;
    }
    Models.emplace(PosKey,
                   LogisticRegression::restore(Bias, std::move(Weights)));
  }
  return finish(R, EdgeModel::restore(Cfg, std::move(Models)), Err);
}

//===----------------------------------------------------------------------===//
// Candidates
//===----------------------------------------------------------------------===//

std::string
uspec::encodeCandidates(const std::vector<ScoredCandidate> &Candidates,
                        SymbolTableBuilder &Syms) {
  BinaryWriter W;
  W.writeVarint(Candidates.size());
  for (const ScoredCandidate &C : Candidates) {
    encodeSpec(W, C.S, Syms);
    W.writeF64(C.Score);
    W.writeVarint(C.Matches);
    W.writeVarint(C.Programs);
    W.writeVarint(C.NumConfidences);
  }
  return W.take();
}

std::optional<std::vector<ScoredCandidate>>
uspec::decodeCandidates(std::string_view Bytes, const SymbolTable &Syms,
                        ArtifactError *Err) {
  BinaryReader R(Bytes, "cand");
  std::vector<ScoredCandidate> Candidates;
  uint64_t Count = R.readCount(MaxCandidates, "candidate");
  Candidates.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; R.ok() && I < Count; ++I) {
    ScoredCandidate C;
    C.S = decodeSpec(R, Syms);
    C.Score = R.readF64();
    C.Matches = static_cast<size_t>(R.readVarint());
    C.Programs = static_cast<size_t>(R.readVarint());
    C.NumConfidences = static_cast<size_t>(R.readVarint());
    if (R.ok())
      Candidates.push_back(std::move(C));
  }
  return finish(R, std::move(Candidates), Err);
}

//===----------------------------------------------------------------------===//
// Corpus manifest
//===----------------------------------------------------------------------===//

bool CorpusManifest::sameCorpus(const CorpusManifest &Other) const {
  if (Entries.size() != Other.Entries.size())
    return false;
  for (size_t I = 0; I < Entries.size(); ++I)
    if (Entries[I].Fingerprint != Other.Entries[I].Fingerprint)
      return false;
  return true;
}

std::string uspec::encodeManifest(const CorpusManifest &Manifest) {
  BinaryWriter W;
  W.writeVarint(Manifest.Entries.size());
  for (const CorpusManifest::Entry &E : Manifest.Entries) {
    W.writeString(E.Name);
    W.writeU64(E.Fingerprint);
  }
  W.writeVarint(Manifest.Generation);
  // Distributed-training provenance trails the generation and is written
  // only when present, keeping plain artifacts byte-identical to the
  // pre-field encoding (a pinned golden checksum).
  if (Manifest.DistWorkers != 0) {
    W.writeVarint(Manifest.DistWorkers);
    W.writeU64(Manifest.DistShardChecksum);
  }
  return W.take();
}

std::optional<CorpusManifest> uspec::decodeManifest(std::string_view Bytes,
                                                    ArtifactError *Err) {
  BinaryReader R(Bytes, "mani");
  CorpusManifest Manifest;
  uint64_t Count = R.readCount(MaxManifestEntries, "manifest");
  Manifest.Entries.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; R.ok() && I < Count; ++I) {
    CorpusManifest::Entry E;
    E.Name = std::string(R.readString());
    E.Fingerprint = R.readU64();
    if (R.ok())
      Manifest.Entries.push_back(std::move(E));
  }
  // The trailing generation varint postdates the first artifact release:
  // absent bytes (an older artifact) decode as generation 0.
  if (R.ok() && R.remaining() > 0)
    Manifest.Generation = R.readVarint();
  if (R.ok() && R.remaining() > 0) {
    Manifest.DistWorkers = R.readVarint();
    Manifest.DistShardChecksum = R.readU64();
  }
  return finish(R, std::move(Manifest), Err);
}

//===----------------------------------------------------------------------===//
// Journal lineage + candidate ledger (incremental training)
//===----------------------------------------------------------------------===//

std::string uspec::encodeLineage(const JournalLineage &Lineage) {
  BinaryWriter W;
  W.writeVarint(Lineage.Generation);
  W.writeU64(Lineage.ChainChecksum);
  W.writeVarint(Lineage.TrainedEntries);
  return W.take();
}

std::optional<JournalLineage> uspec::decodeLineage(std::string_view Bytes,
                                                   ArtifactError *Err) {
  BinaryReader R(Bytes, "jrnl");
  JournalLineage Lineage;
  Lineage.Generation = R.readVarint();
  Lineage.ChainChecksum = R.readU64();
  Lineage.TrainedEntries = R.readVarint();
  return finish(R, std::move(Lineage), Err);
}

std::string uspec::encodeLedger(const CandidateLedger &Ledger,
                                SymbolTableBuilder &Syms) {
  BinaryWriter W;
  W.writeVarint(Ledger.Entries.size());
  for (const CandidateLedger::Entry &E : Ledger.Entries) {
    encodeSpec(W, E.S, Syms);
    W.writeVarint(E.Confidences.size());
    for (double C : E.Confidences)
      W.writeF64(C);
    W.writeVarint(E.Matches);
    W.writeVarint(E.Programs);
  }
  return W.take();
}

std::optional<CandidateLedger> uspec::decodeLedger(std::string_view Bytes,
                                                   const SymbolTable &Syms,
                                                   ArtifactError *Err) {
  BinaryReader R(Bytes, "gams");
  CandidateLedger Ledger;
  uint64_t Count = R.readCount(MaxCandidates, "ledger entry");
  Ledger.Entries.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; R.ok() && I < Count; ++I) {
    CandidateLedger::Entry E;
    E.S = decodeSpec(R, Syms);
    uint64_t NumConf = R.readCount(MaxLedgerConfidences, "confidence");
    E.Confidences.reserve(static_cast<size_t>(NumConf));
    for (uint64_t C = 0; R.ok() && C < NumConf; ++C)
      E.Confidences.push_back(R.readF64());
    E.Matches = static_cast<size_t>(R.readVarint());
    E.Programs = static_cast<size_t>(R.readVarint());
    if (R.ok())
      Ledger.Entries.push_back(std::move(E));
  }
  return finish(R, std::move(Ledger), Err);
}

//===----------------------------------------------------------------------===//
// Crash-safe file writes
//===----------------------------------------------------------------------===//

std::string uspec::atomicTempPath(const std::string &Path) {
  return Path + ".tmp";
}

bool uspec::writeFileAtomic(const std::string &Path, std::string_view Bytes,
                            std::string *Err) {
  TraceSpan Span("artifact.write");
  if (Span.active()) {
    Span.arg("path", Path);
    Span.arg("bytes", std::to_string(Bytes.size()));
  }
  const std::string Tmp = atomicTempPath(Path);
  auto Fail = [&](const char *What) {
    if (Err)
      *Err = std::string(What) + " '" + Tmp + "': " + std::strerror(errno);
    ::unlink(Tmp.c_str());
    return false;
  };
  try {
    USPEC_FAULT_POINT("artifact.write");
    int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (Fd < 0)
      return Fail("cannot open");
    size_t Off = 0;
    while (Off < Bytes.size()) {
      ssize_t W = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        ::close(Fd);
        return Fail("cannot write");
      }
      Off += static_cast<size_t>(W);
    }
    USPEC_FAULT_POINT("artifact.write.data");
    // fsync before rename: the rename must not become durable before the
    // data, or a crash could publish a zero-length/partial file.
    if (::fsync(Fd) != 0) {
      ::close(Fd);
      return Fail("cannot fsync");
    }
    ::close(Fd);
    USPEC_FAULT_POINT("artifact.write.fsync");
    if (::rename(Tmp.c_str(), Path.c_str()) != 0)
      return Fail("cannot rename");
    USPEC_FAULT_POINT("artifact.write.rename");
    return true;
  } catch (const FaultInjected &F) {
    if (Err)
      *Err = F.what();
    ::unlink(Tmp.c_str());
    return false;
  }
}

bool uspec::discardStaleTemp(const std::string &Path, std::string *Warning) {
  const std::string Tmp = atomicTempPath(Path);
  struct stat St;
  if (::stat(Tmp.c_str(), &St) != 0)
    return false;
  ::unlink(Tmp.c_str());
  if (Warning)
    *Warning = "discarded stale partial write '" + Tmp + "' (" +
               std::to_string(St.st_size) + " bytes) from an interrupted run";
  return true;
}
