//===- Container.h - The USPB artifact container ---------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned USPB container (DESIGN.md §7): a fixed header, a section
/// table, and a payload of named, individually checksummed sections.
///
///   magic "USPB" | u16 format version | u16 flags (0)
///   varint section count
///   per section: name (varint-length string), varint payload offset,
///                varint size, u64 checksum (support/Hashing.h hashString)
///   payload bytes (sections back to back)
///
/// Integrity is validated at open() time: magic, version, table sanity
/// (offsets/sizes inside the payload) and every section checksum. Readers
/// of individual sections can therefore trust the bytes they are handed —
/// any corruption is reported before with the section name and offset.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_ARTIFACT_CONTAINER_H
#define USPEC_ARTIFACT_CONTAINER_H

#include "artifact/Binary.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace uspec {

/// The 4-byte magic that opens every USPB artifact.
inline constexpr std::string_view ArtifactMagic = "USPB";

/// Bumped on every incompatible layout change. Readers reject any other
/// version with a diagnostic (no forward/backward compatibility shims yet;
/// see DESIGN.md §7 for the compatibility policy).
inline constexpr uint16_t ArtifactFormatVersion = 1;

/// Assembles a USPB container from named sections.
class ArtifactWriter {
public:
  /// Appends a section. Names must be unique; insertion order is preserved.
  void addSection(std::string Name, std::string Bytes);

  /// Renders header + table + payload. The writer is left empty.
  std::string finish();

private:
  struct Section {
    std::string Name;
    std::string Bytes;
  };
  std::vector<Section> Sections;
};

/// Read-side view of a USPB container. Holds views into the caller's
/// buffer, which must outlive the reader.
class ArtifactReader {
public:
  struct Section {
    std::string_view Name;
    std::string_view Bytes;
  };

  /// Parses and validates \p Data. On failure returns nullopt and, when
  /// \p Err is non-null, the section/offset/message of the failure.
  static std::optional<ArtifactReader> open(std::string_view Data,
                                            ArtifactError *Err = nullptr);

  uint16_t version() const { return Version; }
  const std::vector<Section> &sections() const { return Sections; }

  bool hasSection(std::string_view Name) const;

  /// The payload of section \p Name; nullopt when absent.
  std::optional<std::string_view> section(std::string_view Name) const;

private:
  uint16_t Version = 0;
  std::vector<Section> Sections;
};

} // namespace uspec

#endif // USPEC_ARTIFACT_CONTAINER_H
