//===- ArtifactIO.h - Typed section codecs for USPB artifacts --*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed codecs on top of the USPB container (artifact/Container.h):
///
///   - a serialized string table mapping interner Symbols to artifact-local
///     ids, so specs/candidates are stored position-independently and can
///     be loaded into any StringInterner;
///   - ModelIO: the EdgeModel config plus every per-position-pair logistic
///     regression, with sparse (gap-coded) weight tables;
///   - CandidateIO: the full ScoredCandidate table;
///   - a binary twin of the SpecIO text format for SpecSets;
///   - CorpusManifest: per-program structural fingerprints for cache
///     invalidation.
///
/// All decoders are total on arbitrary bytes: they either produce a value
/// or fail with an ArtifactError naming the section and byte offset.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_ARTIFACT_ARTIFACTIO_H
#define USPEC_ARTIFACT_ARTIFACTIO_H

#include "artifact/Binary.h"
#include "core/Learner.h"
#include "model/EdgeModel.h"
#include "specs/Spec.h"
#include "support/StringInterner.h"

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace uspec {

//===----------------------------------------------------------------------===//
// String table
//===----------------------------------------------------------------------===//

/// Collects every Symbol referenced while encoding and assigns dense
/// artifact-local ids. Local id 0 is always the empty string (the "?"
/// unknown receiver class).
class SymbolTableBuilder {
public:
  explicit SymbolTableBuilder(const StringInterner &Strings)
      : Strings(Strings) {
    Order.push_back(Symbol()); // local id 0 = ""
  }

  /// The artifact-local id for \p Sym, assigning a fresh one on first use.
  uint32_t localId(Symbol Sym);

  /// Encodes the table (string count, then contents in local-id order).
  std::string encode() const;

private:
  const StringInterner &Strings;
  std::unordered_map<uint32_t, uint32_t> Map;
  std::vector<Symbol> Order;
};

/// The decoded string table: artifact-local id -> Symbol in the loading
/// interner.
class SymbolTable {
public:
  static std::optional<SymbolTable> decode(std::string_view Bytes,
                                           StringInterner &Strings,
                                           ArtifactError *Err = nullptr);

  size_t size() const { return Syms.size(); }

  /// Resolves a local id read from \p R, failing \p R when out of range.
  Symbol resolve(uint64_t LocalId, BinaryReader &R) const {
    if (LocalId >= Syms.size()) {
      R.fail("symbol id " + std::to_string(LocalId) + " out of range (table "
             "has " + std::to_string(Syms.size()) + " entries)");
      return Symbol();
    }
    return Syms[static_cast<size_t>(LocalId)];
  }

private:
  std::vector<Symbol> Syms;
};

//===----------------------------------------------------------------------===//
// Specs
//===----------------------------------------------------------------------===//

void encodeSpec(BinaryWriter &W, const Spec &S, SymbolTableBuilder &Syms);

/// Decodes one spec; on malformed input fails \p R and returns a default
/// Spec.
Spec decodeSpec(BinaryReader &R, const SymbolTable &Syms);

/// Binary twin of specs/SpecIO.h: the whole set, insertion order preserved.
std::string encodeSpecSet(const SpecSet &Specs, SymbolTableBuilder &Syms);
std::optional<SpecSet> decodeSpecSet(std::string_view Bytes,
                                     const SymbolTable &Syms,
                                     ArtifactError *Err = nullptr);

//===----------------------------------------------------------------------===//
// Model
//===----------------------------------------------------------------------===//

/// Encodes config + per-position-pair weight tables (sparse gap coding;
/// untouched zero weights are not stored).
std::string encodeModel(const EdgeModel &Model);
std::optional<EdgeModel> decodeModel(std::string_view Bytes,
                                     ArtifactError *Err = nullptr);

//===----------------------------------------------------------------------===//
// Candidates
//===----------------------------------------------------------------------===//

/// Encodes the scored candidate table in order (order is significant: the
/// τ-selection inserts specs in this order).
std::string encodeCandidates(const std::vector<ScoredCandidate> &Candidates,
                             SymbolTableBuilder &Syms);
std::optional<std::vector<ScoredCandidate>>
decodeCandidates(std::string_view Bytes, const SymbolTable &Syms,
                 ArtifactError *Err = nullptr);

//===----------------------------------------------------------------------===//
// Corpus manifest
//===----------------------------------------------------------------------===//

/// Identifies the corpus an artifact was trained on: one structural
/// fingerprint per program (corpus/Dedup.h programFingerprint), plus an
/// optional display name (file path) each. Loaders compare manifests to
/// decide whether a cached artifact is still valid for a corpus.
struct CorpusManifest {
  struct Entry {
    std::string Name;
    uint64_t Fingerprint = 0;

    friend bool operator==(const Entry &A, const Entry &B) {
      return A.Fingerprint == B.Fingerprint && A.Name == B.Name;
    }
  };
  std::vector<Entry> Entries;

  /// Corpus-journal generation this manifest was trained through (0 for
  /// plain file-list training). Lineage metadata like the names: it does
  /// not participate in sameCorpus or equality. Encoded as a trailing
  /// varint; artifacts written before the field existed decode with 0.
  uint64_t Generation = 0;

  /// Distributed-training provenance (`train --distributed --provenance`):
  /// the worker count the run asked for and the shard-plan fingerprint.
  /// Operational metadata only — byte-identity of distributed training means
  /// the rest of the artifact cannot record it, so it is opt-in and excluded
  /// from sameCorpus/equality. Encoded as two trailing fields only when
  /// DistWorkers != 0: plain artifacts stay byte-identical to pre-field
  /// encodings, and both older and newer readers agree on them.
  uint64_t DistWorkers = 0;
  uint64_t DistShardChecksum = 0;

  /// True when the fingerprint sequences match exactly (names are display
  /// metadata and do not participate).
  bool sameCorpus(const CorpusManifest &Other) const;

  friend bool operator==(const CorpusManifest &A, const CorpusManifest &B) {
    return A.Entries == B.Entries;
  }
};

std::string encodeManifest(const CorpusManifest &Manifest);
std::optional<CorpusManifest> decodeManifest(std::string_view Bytes,
                                             ArtifactError *Err = nullptr);

//===----------------------------------------------------------------------===//
// Journal lineage + candidate ledger (incremental training, DESIGN.md §12)
//===----------------------------------------------------------------------===//

/// Where in a corpus journal an artifact's training stopped. Written as the
/// optional "jrnl" section by journal-driven training; `uspec train
/// --journal` reads it back to decide between warm-start and replay, and
/// the serve hot-swap reports Generation as `model_generation`.
struct JournalLineage {
  /// Journal generation trained through (CorpusJournal entry generations
  /// are non-decreasing; this is the last one covered).
  uint64_t Generation = 0;
  /// incremental::CorpusJournal::chainChecksum over the trained entries;
  /// a prefix-integrity check that the journal grew append-only.
  uint64_t ChainChecksum = 0;
  /// Number of journal entries trained through.
  uint64_t TrainedEntries = 0;

  friend bool operator==(const JournalLineage &A, const JournalLineage &B) {
    return A.Generation == B.Generation &&
           A.ChainChecksum == B.ChainChecksum &&
           A.TrainedEntries == B.TrainedEntries;
  }
};

std::string encodeLineage(const JournalLineage &Lineage);
std::optional<JournalLineage> decodeLineage(std::string_view Bytes,
                                            ArtifactError *Err = nullptr);

/// The optional "gams" section: per-candidate ΓS evidence in first-seen
/// order (core/Candidates.h CandidateLedger), persisted so the next delta
/// run can extend it without revisiting old programs.
std::string encodeLedger(const CandidateLedger &Ledger,
                         SymbolTableBuilder &Syms);
std::optional<CandidateLedger> decodeLedger(std::string_view Bytes,
                                            const SymbolTable &Syms,
                                            ArtifactError *Err = nullptr);

//===----------------------------------------------------------------------===//
// Crash-safe file writes
//===----------------------------------------------------------------------===//

/// The temp path writeFileAtomic stages through: "<path>.tmp".
std::string atomicTempPath(const std::string &Path);

/// Writes \p Bytes to \p Path crash-safely: write to "<path>.tmp", fsync,
/// then atomically rename over \p Path. A crash (or injected kill) at any
/// point leaves either the old file, or the new file, plus at most a stale
/// temp — never a torn \p Path. Fault sites, in order: `artifact.write`
/// (entry), `artifact.write.data` (after write, before fsync),
/// `artifact.write.fsync` (after fsync, before rename),
/// `artifact.write.rename` (after rename). Returns false and fills \p Err
/// on failure (including an injected FaultInjected, which is caught here).
bool writeFileAtomic(const std::string &Path, std::string_view Bytes,
                     std::string *Err = nullptr);

/// Removes a stale "<path>.tmp" left behind by an interrupted write.
/// Returns true (and fills \p Warning) when one was found and discarded.
bool discardStaleTemp(const std::string &Path, std::string *Warning = nullptr);

} // namespace uspec

#endif // USPEC_ARTIFACT_ARTIFACTIO_H
