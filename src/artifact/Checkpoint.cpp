//===- Checkpoint.cpp - Checkpointed train/select pipeline --------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
// Also defines USpecLearner::saveArtifacts/loadArtifacts, declared in
// core/Learner.h but implemented here so that core/ does not depend on the
// artifact layer (link uspec_artifact to use them).
//
//===----------------------------------------------------------------------===//

#include "artifact/Checkpoint.h"

#include "artifact/Container.h"

#include "support/Trace.h"

using namespace uspec;

namespace {

// Section names. "meta" carries the learner config + run statistics; the
// remaining sections are the typed codecs of ArtifactIO.h.
constexpr std::string_view SecMeta = "meta";
constexpr std::string_view SecStrings = "strs";
constexpr std::string_view SecModel = "modl";
constexpr std::string_view SecCandidates = "cand";
constexpr std::string_view SecSelected = "spec";
constexpr std::string_view SecManifest = "mani";
// Optional sections written only by journal-driven training (DESIGN.md §12).
constexpr std::string_view SecLineage = "jrnl";
constexpr std::string_view SecLedger = "gams";

std::string encodeMeta(const LearnResult &Result,
                       const LearnerConfig &Config) {
  BinaryWriter W;
  W.writeF64(Config.Tau);
  W.writeU64(Config.Seed);
  W.writeVarint(Config.DistanceBound);
  W.writeVarint(Config.TopK);
  W.writeU8(static_cast<uint8_t>(Config.Scoring));
  W.writeU8(Config.ExtendConsistency);
  W.writeU8(Config.ExperimentalPatterns);
  W.writeVarint(Result.NumTrainingSamples);
  W.writeF64(Result.TrainAccuracy);
  W.writeVarint(Result.AddedByExtension);
  return W.take();
}

bool decodeMeta(std::string_view Bytes, LearnArtifacts &Out,
                ArtifactError *Err) {
  BinaryReader R(Bytes, std::string(SecMeta));
  Out.Config.Tau = R.readF64();
  Out.Config.Seed = R.readU64();
  Out.Config.DistanceBound = static_cast<unsigned>(R.readVarint());
  Out.Config.TopK = static_cast<size_t>(R.readVarint());
  uint8_t Scoring = R.readU8();
  if (R.ok() && Scoring > static_cast<uint8_t>(ScoreKind::NameAware))
    R.fail("unknown score kind " + std::to_string(Scoring));
  Out.Config.Scoring = static_cast<ScoreKind>(Scoring);
  Out.Config.ExtendConsistency = R.readU8() != 0;
  Out.Config.ExperimentalPatterns = R.readU8() != 0;
  Out.Result.NumTrainingSamples = static_cast<size_t>(R.readVarint());
  Out.Result.TrainAccuracy = R.readF64();
  Out.Result.AddedByExtension = static_cast<size_t>(R.readVarint());
  if (R.ok() && R.remaining() > 0)
    R.fail(std::to_string(R.remaining()) + " trailing bytes after payload");
  if (!R.ok() && Err)
    *Err = R.error();
  return R.ok();
}

/// Fetches a required section, reporting a header-level error when absent.
std::optional<std::string_view> requireSection(const ArtifactReader &A,
                                               std::string_view Name,
                                               ArtifactError *Err) {
  if (auto S = A.section(Name))
    return S;
  if (Err)
    *Err = {"header", 0, "missing required section '" + std::string(Name) +
                             "'"};
  return std::nullopt;
}

} // namespace

std::string uspec::saveLearnArtifacts(const LearnResult &Result,
                                      const LearnerConfig &Config,
                                      const StringInterner &Strings,
                                      const CorpusManifest &Manifest,
                                      const JournalLineage *Lineage,
                                      const CandidateLedger *Ledger) {
  TraceSpan Span("artifact.save");
  SymbolTableBuilder Syms(Strings);
  // Encode symbol-bearing sections first so the string table is complete.
  std::string Candidates = encodeCandidates(Result.Candidates, Syms);
  std::string Selected = encodeSpecSet(Result.Selected, Syms);
  std::string LedgerBytes = Ledger ? encodeLedger(*Ledger, Syms) : "";

  ArtifactWriter A;
  A.addSection(std::string(SecMeta), encodeMeta(Result, Config));
  A.addSection(std::string(SecStrings), Syms.encode());
  A.addSection(std::string(SecModel), encodeModel(Result.Model));
  A.addSection(std::string(SecCandidates), std::move(Candidates));
  A.addSection(std::string(SecSelected), std::move(Selected));
  A.addSection(std::string(SecManifest), encodeManifest(Manifest));
  if (Lineage)
    A.addSection(std::string(SecLineage), encodeLineage(*Lineage));
  if (Ledger)
    A.addSection(std::string(SecLedger), std::move(LedgerBytes));
  return A.finish();
}

std::optional<LearnArtifacts>
uspec::loadLearnArtifacts(std::string_view Bytes, StringInterner &Strings,
                          ArtifactError *Err) {
  TraceSpan Span("artifact.load");
  if (Span.active())
    Span.arg("bytes", std::to_string(Bytes.size()));
  std::optional<ArtifactReader> A = ArtifactReader::open(Bytes, Err);
  if (!A)
    return std::nullopt;

  LearnArtifacts Out;
  auto Meta = requireSection(*A, SecMeta, Err);
  if (!Meta || !decodeMeta(*Meta, Out, Err))
    return std::nullopt;

  auto StrsBytes = requireSection(*A, SecStrings, Err);
  if (!StrsBytes)
    return std::nullopt;
  std::optional<SymbolTable> Syms = SymbolTable::decode(*StrsBytes, Strings,
                                                        Err);
  if (!Syms)
    return std::nullopt;

  auto ModelBytes = requireSection(*A, SecModel, Err);
  if (!ModelBytes)
    return std::nullopt;
  std::optional<EdgeModel> Model = decodeModel(*ModelBytes, Err);
  if (!Model)
    return std::nullopt;
  Out.Result.Model = std::move(*Model);
  Out.Config.Model = Out.Result.Model.config();

  auto CandBytes = requireSection(*A, SecCandidates, Err);
  if (!CandBytes)
    return std::nullopt;
  auto Candidates = decodeCandidates(*CandBytes, *Syms, Err);
  if (!Candidates)
    return std::nullopt;
  Out.Result.Candidates = std::move(*Candidates);

  auto SpecBytes = requireSection(*A, SecSelected, Err);
  if (!SpecBytes)
    return std::nullopt;
  std::optional<SpecSet> Selected = decodeSpecSet(*SpecBytes, *Syms, Err);
  if (!Selected)
    return std::nullopt;
  Out.Result.Selected = std::move(*Selected);

  auto ManiBytes = requireSection(*A, SecManifest, Err);
  if (!ManiBytes)
    return std::nullopt;
  std::optional<CorpusManifest> Manifest = decodeManifest(*ManiBytes, Err);
  if (!Manifest)
    return std::nullopt;
  Out.Manifest = std::move(*Manifest);

  // Optional incremental-training sections (absent from plain file-list
  // artifacts; present iff the artifact was journal-trained).
  if (auto LineageBytes = A->section(SecLineage)) {
    std::optional<JournalLineage> Lineage = decodeLineage(*LineageBytes, Err);
    if (!Lineage)
      return std::nullopt;
    Out.Lineage = std::move(*Lineage);
  }
  if (auto LedgerBytes = A->section(SecLedger)) {
    std::optional<CandidateLedger> Ledger =
        decodeLedger(*LedgerBytes, *Syms, Err);
    if (!Ledger)
      return std::nullopt;
    Out.Ledger = std::move(*Ledger);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// USpecLearner checkpoint members (declared in core/Learner.h)
//===----------------------------------------------------------------------===//

std::string USpecLearner::saveArtifacts(const LearnResult &Result,
                                        const CorpusManifest *Manifest) const {
  return saveLearnArtifacts(Result, Config, Strings,
                            Manifest ? *Manifest : CorpusManifest());
}

std::optional<LearnArtifacts>
USpecLearner::loadArtifacts(std::string_view Bytes, StringInterner &Strings,
                            ArtifactError *Err) {
  return loadLearnArtifacts(Bytes, Strings, Err);
}
