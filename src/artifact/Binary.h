//===- Binary.h - Little-endian binary (de)serialization -------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-level primitives of the USPB artifact format (DESIGN.md §7):
/// a BinaryWriter that appends fixed-width little-endian integers, IEEE-754
/// floats and LEB128 varints to a growable buffer, and a bounds-checked
/// BinaryReader over a read-only byte view.
///
/// The reader is designed for hostile input: every read is bounds-checked,
/// a failed read returns a zero value and latches a sticky error carrying
/// the section name and byte offset of the first failure, and no read ever
/// touches memory outside the view — truncated or corrupted artifacts fail
/// with a precise diagnostic, never with undefined behavior.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_ARTIFACT_BINARY_H
#define USPEC_ARTIFACT_BINARY_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace uspec {

/// Where and why decoding an artifact failed. Section is the USPB section
/// name being decoded ("header" before any section), Offset the byte
/// position within that section.
struct ArtifactError {
  std::string Section = "header";
  size_t Offset = 0;
  std::string Message;

  /// Renders as "section 'modl', offset 12: truncated varint".
  std::string str() const;
};

/// Appends little-endian binary data to a growable byte buffer.
class BinaryWriter {
public:
  void writeU8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }

  void writeU16(uint16_t V) { writeLE(V, 2); }
  void writeU32(uint32_t V) { writeLE(V, 4); }
  void writeU64(uint64_t V) { writeLE(V, 8); }

  void writeF32(float V) {
    uint32_t Bits;
    std::memcpy(&Bits, &V, 4);
    writeU32(Bits);
  }

  void writeF64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, 8);
    writeU64(Bits);
  }

  /// Unsigned LEB128.
  void writeVarint(uint64_t V) {
    while (V >= 0x80) {
      writeU8(static_cast<uint8_t>(V) | 0x80);
      V >>= 7;
    }
    writeU8(static_cast<uint8_t>(V));
  }

  /// Varint length followed by raw bytes.
  void writeString(std::string_view Str) {
    writeVarint(Str.size());
    Buf.append(Str);
  }

  /// Raw bytes, no length prefix.
  void writeBytes(std::string_view Bytes) { Buf.append(Bytes); }

  const std::string &data() const { return Buf; }
  std::string take() { return std::move(Buf); }
  size_t size() const { return Buf.size(); }

private:
  void writeLE(uint64_t V, unsigned Bytes) {
    for (unsigned I = 0; I < Bytes; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }

  std::string Buf;
};

/// Bounds-checked reader over a byte view. All reads after a failure return
/// zero values; the first failure is latched in error().
class BinaryReader {
public:
  explicit BinaryReader(std::string_view Data, std::string Section = "")
      : Data(Data) {
    Err.Section = Section.empty() ? "header" : std::move(Section);
  }

  uint8_t readU8() { return static_cast<uint8_t>(readLE(1, "u8")); }
  uint16_t readU16() { return static_cast<uint16_t>(readLE(2, "u16")); }
  uint32_t readU32() { return static_cast<uint32_t>(readLE(4, "u32")); }
  uint64_t readU64() { return readLE(8, "u64"); }

  float readF32() {
    uint32_t Bits = readU32();
    float V;
    std::memcpy(&V, &Bits, 4);
    return V;
  }

  double readF64() {
    uint64_t Bits = readU64();
    double V;
    std::memcpy(&V, &Bits, 8);
    return V;
  }

  /// Unsigned LEB128; fails on truncation and on encodings longer than 64
  /// bits.
  uint64_t readVarint() {
    if (Failed)
      return 0;
    uint64_t V = 0;
    for (unsigned Shift = 0;; Shift += 7) {
      if (Pos >= Data.size()) {
        fail("truncated varint");
        return 0;
      }
      uint8_t B = static_cast<uint8_t>(Data[Pos++]);
      // Byte 10 (shift 63) may only carry the 64th value bit and no
      // continuation.
      if (Shift > 63 || (Shift == 63 && (B & ~uint8_t(1)))) {
        fail("varint overflows 64 bits");
        return 0;
      }
      V |= static_cast<uint64_t>(B & 0x7F) << Shift;
      if (!(B & 0x80))
        return V;
    }
  }

  /// Varint that must fit in [0, Max]; used for element counts so corrupted
  /// headers cannot trigger multi-gigabyte allocations.
  uint64_t readCount(uint64_t Max, const char *What) {
    uint64_t V = readVarint();
    if (!Failed && V > Max)
      fail(std::string(What) + " count " + std::to_string(V) +
           " exceeds limit " + std::to_string(Max));
    return Failed ? 0 : V;
  }

  /// Varint length-prefixed byte string (view into the underlying buffer).
  std::string_view readString() {
    uint64_t Len = readVarint();
    return readBytes(Len);
  }

  /// Raw bytes, failing when fewer than \p Len remain.
  std::string_view readBytes(uint64_t Len) {
    if (Failed)
      return {};
    if (Len > Data.size() - Pos) {
      fail("truncated: need " + std::to_string(Len) + " bytes, have " +
           std::to_string(Data.size() - Pos));
      return {};
    }
    std::string_view V = Data.substr(Pos, Len);
    Pos += static_cast<size_t>(Len);
    return V;
  }

  /// Latches the first failure with the current offset.
  void fail(std::string Message) {
    if (Failed)
      return;
    Failed = true;
    Err.Offset = Pos;
    Err.Message = std::move(Message);
  }

  bool ok() const { return !Failed; }
  bool atEnd() const { return Failed || Pos >= Data.size(); }
  size_t offset() const { return Pos; }
  size_t remaining() const { return Failed ? 0 : Data.size() - Pos; }
  const ArtifactError &error() const { return Err; }

private:
  uint64_t readLE(unsigned Bytes, const char *What) {
    if (Failed)
      return 0;
    if (Bytes > Data.size() - Pos) {
      fail(std::string("truncated ") + What);
      return 0;
    }
    uint64_t V = 0;
    for (unsigned I = 0; I < Bytes; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(Data[Pos + I]))
           << (8 * I);
    Pos += Bytes;
    return V;
  }

  std::string_view Data;
  size_t Pos = 0;
  bool Failed = false;
  ArtifactError Err;
};

} // namespace uspec

#endif // USPEC_ARTIFACT_BINARY_H
