//===- Checkpoint.h - Checkpointed train/select pipeline -------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Train once, serve many": persists everything the pipeline computes up
/// to τ-selection — the trained model ϕ, the full scored candidate table,
/// the selected SpecSet and the corpus manifest — as one USPB artifact, so
/// τ-sweeps (Fig. 7), client benches and the `uspec select` subcommand can
/// re-select at any threshold without retraining.
///
/// Round-trip guarantee: loading an artifact and calling
/// USpecLearner::select(Artifacts.Result.Candidates, Tau, ...) yields a
/// SpecSet identical (including insertion order, hence serialized text) to
/// running the in-memory pipeline at that τ.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_ARTIFACT_CHECKPOINT_H
#define USPEC_ARTIFACT_CHECKPOINT_H

#include "artifact/ArtifactIO.h"
#include "core/Learner.h"

#include <optional>
#include <string>
#include <string_view>

namespace uspec {

/// Everything loaded back from a pipeline checkpoint.
struct LearnArtifacts {
  /// The configuration the pipeline was trained with. Analysis options are
  /// not persisted (learning always runs API-unaware) and are left default.
  LearnerConfig Config;
  /// Model, candidate table, selected set (at Config.Tau), statistics.
  LearnResult Result;
  /// Fingerprints of the corpus the artifact was trained on.
  CorpusManifest Manifest;
  /// Journal lineage ("jrnl" section); present only for journal-trained
  /// artifacts (DESIGN.md §12).
  std::optional<JournalLineage> Lineage;
  /// Candidate evidence ledger ("gams" section); present only for
  /// journal-trained artifacts — required to warm-start the next delta.
  std::optional<CandidateLedger> Ledger;
};

/// Serializes \p Result (trained with \p Config over the corpus described
/// by \p Manifest) as a USPB artifact. Journal-driven training additionally
/// passes \p Lineage and \p Ledger, written as the optional "jrnl"/"gams"
/// sections; plain file-list training leaves them null and the sections are
/// omitted (the artifact stays byte-identical to pre-incremental builds).
std::string saveLearnArtifacts(const LearnResult &Result,
                               const LearnerConfig &Config,
                               const StringInterner &Strings,
                               const CorpusManifest &Manifest,
                               const JournalLineage *Lineage = nullptr,
                               const CandidateLedger *Ledger = nullptr);

/// Parses, validates and decodes an artifact produced by
/// saveLearnArtifacts. Names are interned into \p Strings. On failure
/// returns nullopt and reports the section/offset/cause via \p Err.
std::optional<LearnArtifacts> loadLearnArtifacts(std::string_view Bytes,
                                                 StringInterner &Strings,
                                                 ArtifactError *Err = nullptr);

} // namespace uspec

#endif // USPEC_ARTIFACT_CHECKPOINT_H
