//===- Container.cpp - The USPB artifact container ----------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "artifact/Container.h"

#include "support/Hashing.h"

#include <cassert>

using namespace uspec;

std::string ArtifactError::str() const {
  return "section '" + Section + "', offset " + std::to_string(Offset) + ": " +
         Message;
}

void ArtifactWriter::addSection(std::string Name, std::string Bytes) {
#ifndef NDEBUG
  for (const Section &S : Sections)
    assert(S.Name != Name && "duplicate artifact section");
#endif
  Sections.push_back({std::move(Name), std::move(Bytes)});
}

std::string ArtifactWriter::finish() {
  BinaryWriter W;
  W.writeBytes(ArtifactMagic);
  W.writeU16(ArtifactFormatVersion);
  W.writeU16(0); // flags, reserved
  W.writeVarint(Sections.size());
  uint64_t Offset = 0;
  for (const Section &S : Sections) {
    W.writeString(S.Name);
    W.writeVarint(Offset);
    W.writeVarint(S.Bytes.size());
    W.writeU64(hashString(S.Bytes));
    Offset += S.Bytes.size();
  }
  for (const Section &S : Sections)
    W.writeBytes(S.Bytes);
  Sections.clear();
  return W.take();
}

namespace {

/// Caps on table cardinality/name length so a corrupted header cannot make
/// us allocate absurd amounts of memory before checksums catch it.
constexpr uint64_t MaxSections = 256;
constexpr uint64_t MaxSectionName = 64;

} // namespace

std::optional<ArtifactReader> ArtifactReader::open(std::string_view Data,
                                                   ArtifactError *Err) {
  BinaryReader R(Data, "header");
  auto Fail = [&]() -> std::optional<ArtifactReader> {
    if (Err)
      *Err = R.error();
    return std::nullopt;
  };

  std::string_view Magic = R.readBytes(ArtifactMagic.size());
  if (R.ok() && Magic != ArtifactMagic)
    R.fail("bad magic (not a USPB artifact)");
  uint16_t Version = R.readU16();
  if (R.ok() && Version != ArtifactFormatVersion)
    R.fail("unsupported format version " + std::to_string(Version) +
           " (expected " + std::to_string(ArtifactFormatVersion) + ")");
  uint16_t Flags = R.readU16();
  if (R.ok() && Flags != 0)
    R.fail("reserved flags must be zero (got " + std::to_string(Flags) + ")");
  uint64_t NumSections = R.readCount(MaxSections, "section");

  struct TableEntry {
    std::string_view Name;
    uint64_t Offset, Size;
    uint64_t Checksum;
  };
  std::vector<TableEntry> Table;
  Table.reserve(static_cast<size_t>(NumSections));
  for (uint64_t I = 0; R.ok() && I < NumSections; ++I) {
    TableEntry E;
    E.Name = R.readString();
    if (R.ok() && (E.Name.empty() || E.Name.size() > MaxSectionName))
      R.fail("bad section name length " + std::to_string(E.Name.size()));
    E.Offset = R.readVarint();
    E.Size = R.readVarint();
    E.Checksum = R.readU64();
    if (!R.ok())
      break;
    for (const TableEntry &Prev : Table)
      if (Prev.Name == E.Name)
        R.fail("duplicate section '" + std::string(E.Name) + "'");
    Table.push_back(E);
  }
  if (!R.ok())
    return Fail();

  // Everything after the table is payload; validate each entry against it.
  std::string_view Payload = Data.substr(R.offset());
  ArtifactReader Result;
  Result.Version = Version;
  for (const TableEntry &E : Table) {
    if (E.Offset > Payload.size() || E.Size > Payload.size() - E.Offset) {
      R.fail("section '" + std::string(E.Name) + "' out of bounds (offset " +
             std::to_string(E.Offset) + ", size " + std::to_string(E.Size) +
             ", payload " + std::to_string(Payload.size()) + ")");
      return Fail();
    }
    std::string_view Bytes =
        Payload.substr(static_cast<size_t>(E.Offset),
                       static_cast<size_t>(E.Size));
    if (hashString(Bytes) != E.Checksum) {
      R.fail("section '" + std::string(E.Name) +
             "' checksum mismatch (corrupted artifact)");
      return Fail();
    }
    Result.Sections.push_back({E.Name, Bytes});
  }
  return Result;
}

bool ArtifactReader::hasSection(std::string_view Name) const {
  return section(Name).has_value();
}

std::optional<std::string_view>
ArtifactReader::section(std::string_view Name) const {
  for (const Section &S : Sections)
    if (S.Name == Name)
      return S.Bytes;
  return std::nullopt;
}
