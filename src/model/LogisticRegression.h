//===- LogisticRegression.h - Sparse hashed logistic regression -*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Logistic regression over sparse binary hashed features, trained with SGD.
/// This is our stand-in for the paper's Vowpal Wabbit models (§7.1): the
/// same model class, the same hashed sparse encoding.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_MODEL_LOGISTICREGRESSION_H
#define USPEC_MODEL_LOGISTICREGRESSION_H

#include "support/Random.h"

#include <cmath>
#include <cstdint>
#include <vector>

namespace uspec {

/// A single binary logistic regression in a hashed feature space.
class LogisticRegression {
public:
  /// \p DimBits selects the weight-table size (2^DimBits weights).
  explicit LogisticRegression(unsigned DimBits = 17)
      : Mask((1u << DimBits) - 1), Weights(1u << DimBits, 0.0f) {}

  /// σ(w·x + b) for binary features given by raw 32-bit hashes.
  double predict(const std::vector<uint32_t> &Features) const {
    return sigmoid(margin(Features));
  }

  /// One SGD step toward \p Label ∈ {0, 1}; returns the pre-update
  /// prediction.
  double update(const std::vector<uint32_t> &Features, double Label,
                double LearningRate, double L2) {
    double P = predict(Features);
    double Gradient = P - Label;
    float Step = static_cast<float>(LearningRate * Gradient);
    Bias -= Step;
    for (uint32_t F : Features) {
      float &W = Weights[F & Mask];
      W -= Step + static_cast<float>(LearningRate * L2) * W;
    }
    return P;
  }

  /// Raw decision value w·x + b.
  double margin(const std::vector<uint32_t> &Features) const {
    double Z = Bias;
    for (uint32_t F : Features)
      Z += Weights[F & Mask];
    return Z;
  }

  static double sigmoid(double Z) {
    if (Z >= 0)
      return 1.0 / (1.0 + std::exp(-Z));
    double E = std::exp(Z);
    return E / (1.0 + E);
  }

  //===--------------------------------------------------------------------===//
  // Serialization hooks (artifact/ModelIO). Weight tables are always a
  // power of two; restore() rebuilds the mask from the table size.
  //===--------------------------------------------------------------------===//

  float bias() const { return Bias; }
  const std::vector<float> &weights() const { return Weights; }

  /// Rebuilds a trained model from its serialized state. \p Weights must
  /// have power-of-two size.
  static LogisticRegression restore(float Bias, std::vector<float> Weights) {
    assert(!Weights.empty() && (Weights.size() & (Weights.size() - 1)) == 0 &&
           "weight table size must be a power of two");
    LogisticRegression M(0);
    M.Bias = Bias;
    M.Mask = static_cast<uint32_t>(Weights.size() - 1);
    M.Weights = std::move(Weights);
    return M;
  }

private:
  uint32_t Mask;
  float Bias = 0;
  std::vector<float> Weights;
};

} // namespace uspec

#endif // USPEC_MODEL_LOGISTICREGRESSION_H
