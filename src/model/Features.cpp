//===- Features.cpp - Event pair features (§4.1) ------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/Features.h"

using namespace uspec;

PosBucket uspec::bucketPos(EventPos Pos) {
  if (Pos == PosRet)
    return PosBucket::Ret;
  if (Pos == PosReceiver)
    return PosBucket::Receiver;
  if (Pos == 1)
    return PosBucket::Arg1;
  if (Pos == 2)
    return PosBucket::Arg2;
  if (Pos == 3)
    return PosBucket::Arg3;
  return PosBucket::ArgMany;
}

namespace {

/// Stable label of an event for feature purposes: the method identifier and
/// position bucket (never the raw site id — features must generalize across
/// programs).
uint64_t eventLabel(const EventGraph &G, EventId E) {
  const Event &Ev = G.event(E);
  uint64_t KindTag = static_cast<uint64_t>(Ev.Kind);
  uint64_t LitTag = static_cast<uint64_t>(Ev.Lit);
  return hashValues(KindTag, Ev.Method.Class.id(), Ev.Method.Name.id(),
                    Ev.Method.Arity, static_cast<uint64_t>(bucketPos(Ev.Pos)),
                    LitTag);
}

/// Summarizes the kinds of objects participating in an event (the "type" of
/// a call argument for γ).
uint32_t participantClassMask(const EventGraph &G, EventId E) {
  uint32_t Mask = 0;
  for (ObjectId Obj : G.participants(E)) {
    switch (G.analysis().Objects.get(Obj).Kind) {
    case ObjectKind::LiteralStr:
      Mask |= 1;
      break;
    case ObjectKind::LiteralInt:
      Mask |= 2;
      break;
    case ObjectKind::LiteralNull:
      Mask |= 4;
      break;
    case ObjectKind::New:
    case ObjectKind::This:
      Mask |= 8;
      break;
    case ObjectKind::ApiRet:
    case ObjectKind::External:
    case ObjectKind::Param:
    case ObjectKind::Ghost:
      Mask |= 16;
      break;
    }
  }
  return Mask;
}

class Extractor {
public:
  Extractor(const EventGraph &G, EventId E1, EventId E2, bool PruneLink)
      : G(G), E1(E1), E2(E2), Prune(PruneLink) {}

  EdgeFeatures run() {
    EdgeFeatures Out;
    Out.PosKey = posKey(bucketPos(G.event(E1).Pos), bucketPos(G.event(E2).Pos));

    // Label-pair interaction: the quadratic (ctx1 × ctx2) feature a Vowpal
    // Wabbit setup would generate with namespace interactions. A linear
    // model needs it to rank which label *pairs* co-occur as edges.
    add(hashValues(0xBB, eventLabel(G, E1), eventLabel(G, E2)));

    emitContext(E1, /*Role=*/1, /*Excluded=*/E2);
    emitContext(E2, /*Role=*/2, /*Excluded=*/E1);
    emitGamma(Out);

    Out.Hashes = std::move(Hashes);
    return Out;
  }

private:
  void add(uint64_t Token) { Hashes.push_back(static_cast<uint32_t>(Token)); }

  /// Emits the length-≤2 path context of \p E, role-tagged. \p Excluded is
  /// the other event of the pair: when pruning, paths through it are
  /// dropped, and on the e2 side two-hop bridges from e1 are broken.
  void emitContext(EventId E, int Role, EventId Excluded) {
    uint64_t Self = eventLabel(G, E);
    add(hashValues(0xC0, Role, Self));
    for (EventId P : G.parents(E)) {
      if (Prune && P == Excluded)
        continue;
      // Break e1 -> z -> e2 bridges: when extracting the context of e2,
      // skip parents z that are children of e1.
      if (Prune && Role == 2 && G.hasEdge(Excluded, P))
        continue;
      add(hashValues(0xC1, Role, eventLabel(G, P), Self));
    }
    for (EventId C : G.children(E)) {
      if (Prune && C == Excluded)
        continue;
      add(hashValues(0xC2, Role, Self, eventLabel(G, C)));
    }
  }

  /// γ(e1, e2): argument literal classes at both call sites and the relation
  /// of the sites to guarding conditions.
  void emitGamma(EdgeFeatures &Out) {
    (void)Out;
    const Event &Ev1 = G.event(E1);
    const Event &Ev2 = G.event(E2);

    emitSiteArgs(E1, 1);
    emitSiteArgs(E2, 2);

    bool G1 = Ev1.Guard != 0, G2 = Ev2.Guard != 0;
    if (!G1 && !G2)
      add(hashValues(0xAA, 0));
    else if (G1 && G2 && Ev1.Guard == Ev2.Guard)
      add(hashValues(0xAA, 1)); // same guarding condition
    else if (G1 && G2)
      add(hashValues(0xAA, 2)); // differently guarded
    else
      add(hashValues(0xAA, 3, G1 ? 1 : 2)); // one side guarded
  }

  void emitSiteArgs(EventId E, int Role) {
    int SiteIdx = G.callSiteOf(E);
    if (SiteIdx < 0)
      return;
    const CallSite &CS = G.callSites()[static_cast<size_t>(SiteIdx)];
    for (size_t A = 0; A < CS.Args.size(); ++A) {
      if (CS.Args[A] == InvalidEvent)
        continue;
      add(hashValues(0xA5, Role, A, participantClassMask(G, CS.Args[A])));
    }
  }

  const EventGraph &G;
  EventId E1, E2;
  bool Prune;
  std::vector<uint32_t> Hashes;
};

} // namespace

EdgeFeatures uspec::extractFeatures(const EventGraph &G, EventId E1,
                                    EventId E2, bool PruneLink) {
  Extractor X(G, E1, E2, PruneLink);
  return X.run();
}
