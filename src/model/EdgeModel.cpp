//===- EdgeModel.cpp - The probabilistic event graph model ϕ (§4) ------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "model/EdgeModel.h"

#include <algorithm>

using namespace uspec;

void EdgeModel::train(std::vector<TrainingSample> Samples) {
  Rng Rand(Config.Seed);
  double LR = Config.LearningRate;
  for (unsigned Epoch = 0; Epoch < Config.Epochs; ++Epoch) {
    Rand.shuffle(Samples);
    for (const TrainingSample &S : Samples) {
      auto It = Models.find(S.Features.PosKey);
      if (It == Models.end())
        It = Models.emplace(S.Features.PosKey,
                            LogisticRegression(Config.DimBits))
                 .first;
      It->second.update(S.Features.Hashes, S.Label, LR, Config.L2);
    }
    LR *= 0.7; // simple decay schedule
  }
}

double EdgeModel::predict(const EdgeFeatures &Features) const {
  auto It = Models.find(Features.PosKey);
  if (It == Models.end())
    return 0.5;
  return It->second.predict(Features.Hashes);
}

double EdgeModel::edgeProbability(const EventGraph &G, EventId E1,
                                  EventId E2) const {
  return predict(extractFeatures(G, E1, E2, /*PruneLink=*/false));
}

double EdgeModel::accuracy(const std::vector<TrainingSample> &Samples) const {
  if (Samples.empty())
    return 0;
  size_t Correct = 0;
  for (const TrainingSample &S : Samples) {
    double P = predict(S.Features);
    Correct += (P >= 0.5) == (S.Label >= 0.5);
  }
  return static_cast<double>(Correct) / static_cast<double>(Samples.size());
}

void uspec::collectTrainingSamples(const EventGraph &G, Rng &Rand,
                                   std::vector<TrainingSample> &Out) {
  size_t N = G.numEvents();
  if (N < 2)
    return;

  // Positives: all edges, with contexts pruned so the pair link itself does
  // not leak into the features (§4.2).
  size_t NumPositives = 0;
  for (EventId E1 = 0; E1 < N; ++E1) {
    for (EventId E2 : G.children(E1)) {
      TrainingSample S;
      S.Features = extractFeatures(G, E1, E2, /*PruneLink=*/true);
      S.Label = 1;
      Out.push_back(std::move(S));
      ++NumPositives;
    }
  }

  // Negatives: event pairs in the same calling context (same Ctx value, i.e.
  // the same inlining chain) that are not connected in either direction.
  size_t Want = NumPositives;
  size_t Attempts = 0, MaxAttempts = Want * 20 + 64;
  size_t Produced = 0;
  while (Produced < Want && Attempts < MaxAttempts) {
    ++Attempts;
    EventId E1 = static_cast<EventId>(Rand.below(N));
    EventId E2 = static_cast<EventId>(Rand.below(N));
    if (E1 == E2)
      continue;
    if (G.event(E1).Ctx != G.event(E2).Ctx)
      continue;
    if (G.hasEdge(E1, E2) || G.hasEdge(E2, E1))
      continue;
    TrainingSample S;
    S.Features = extractFeatures(G, E1, E2, /*PruneLink=*/false);
    S.Label = 0;
    Out.push_back(std::move(S));
    ++Produced;
  }
}
