//===- EdgeModel.h - The probabilistic event graph model ϕ (§4) -*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The probabilistic model ϕ of §4: one logistic regression ψ(x1,x2) per
/// argument-position pair, trained on existing event-graph edges (positives,
/// with leakage-avoiding context pruning) and subsampled non-edges
/// (negatives). ϕ(ftr(e1,e2)) estimates the probability that (e1,e2) ∈ E.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_MODEL_EDGEMODEL_H
#define USPEC_MODEL_EDGEMODEL_H

#include "model/Features.h"
#include "model/LogisticRegression.h"
#include "support/Random.h"

#include <map>
#include <vector>

namespace uspec {

/// One labeled training sample.
struct TrainingSample {
  EdgeFeatures Features;
  float Label = 0; ///< 1 = edge exists, 0 = non-edge.
};

/// Training/prediction configuration.
struct EdgeModelConfig {
  unsigned DimBits = 17;  ///< Per-model weight table size (2^DimBits).
  unsigned Epochs = 4;    ///< SGD passes over the shuffled sample set.
  double LearningRate = 0.2;
  double L2 = 1e-6;
  uint64_t Seed = 0x5eed;
};

/// Model bank ϕ.
class EdgeModel {
public:
  explicit EdgeModel(EdgeModelConfig Config = EdgeModelConfig())
      : Config(Config) {}

  /// Trains the per-position-pair models; shuffles samples internally
  /// (deterministically from Config.Seed).
  void train(std::vector<TrainingSample> Samples);

  /// ϕ(ftr) for a pre-extracted feature vector. Position pairs never seen
  /// during training fall back to probability 0.5.
  double predict(const EdgeFeatures &Features) const;

  /// Convenience: extract (without pruning) and predict the probability of
  /// the potential edge (E1, E2) in \p G.
  double edgeProbability(const EventGraph &G, EventId E1, EventId E2) const;

  /// Fraction of \p Samples classified correctly at threshold 0.5.
  double accuracy(const std::vector<TrainingSample> &Samples) const;

  /// Number of per-position-pair models instantiated.
  size_t numModels() const { return Models.size(); }

  //===--------------------------------------------------------------------===//
  // Serialization hooks (artifact/ModelIO)
  //===--------------------------------------------------------------------===//

  const EdgeModelConfig &config() const { return Config; }

  /// The per-position-pair model bank, keyed by posKey(x1, x2).
  const std::map<uint16_t, LogisticRegression> &models() const {
    return Models;
  }

  /// Rebuilds a trained bank from its serialized state.
  static EdgeModel restore(EdgeModelConfig Config,
                           std::map<uint16_t, LogisticRegression> Models) {
    EdgeModel M(Config);
    M.Models = std::move(Models);
    return M;
  }

private:
  EdgeModelConfig Config;
  std::map<uint16_t, LogisticRegression> Models;
};

//===----------------------------------------------------------------------===//
// Training data collection (§4.2)
//===----------------------------------------------------------------------===//

/// Collects training samples from one event graph: every edge becomes a
/// positive sample (with pruned contexts); an equal number of non-edge
/// event pairs from the same calling context is subsampled as negatives.
void collectTrainingSamples(const EventGraph &G, Rng &Rand,
                            std::vector<TrainingSample> &Out);

} // namespace uspec

#endif // USPEC_MODEL_EDGEMODEL_H
