//===- Features.h - Event pair features (§4.1) -----------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The feature function of §4.1:
///
///   ftr(e1, e2) = (x1, x2, ctx_{G,2}(e1), ctx_{G,2}(e2), γ(e1, e2))
///
/// where ctx_{G,2}(e) is the set of paths of length ≤ 2 through e, and γ
/// captures (i) argument "types" (literal classes of sibling arguments at
/// both call sites) and (ii) the relation of the two sites to guarding
/// control-flow conditions. Every path and every γ element is encoded as an
/// integer in a sparse hashed feature space — the same strategy the paper
/// uses with Vowpal Wabbit (§7.1).
///
/// The position pair (x1, x2) is not hashed into the features; it selects
/// which logistic regression model ψ(x1,x2) is consulted (§4.1).
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_MODEL_FEATURES_H
#define USPEC_MODEL_FEATURES_H

#include "eventgraph/EventGraph.h"

#include <cstdint>
#include <vector>

namespace uspec {

/// Bucketed event position: Ret, Receiver, Arg1..Arg3, ArgMany.
enum class PosBucket : uint8_t {
  Ret = 0,
  Receiver = 1,
  Arg1 = 2,
  Arg2 = 3,
  Arg3 = 4,
  ArgMany = 5,
};

/// Number of distinct PosBucket values.
inline constexpr unsigned NumPosBuckets = 6;

/// Buckets a raw event position.
PosBucket bucketPos(EventPos Pos);

/// The (x1, x2) model selector for an event pair.
inline uint16_t posKey(PosBucket A, PosBucket B) {
  return static_cast<uint16_t>(static_cast<unsigned>(A) * NumPosBuckets +
                               static_cast<unsigned>(B));
}

/// One extracted sample: the model selector plus hashed sparse features.
struct EdgeFeatures {
  uint16_t PosKey = 0;
  std::vector<uint32_t> Hashes; ///< Raw 32-bit feature hashes (pre-masking).
};

/// Extracts ftr(e1, e2) from \p G.
///
/// When \p PruneLink is set (used for positive training samples, §4.2), the
/// contexts are modified so that no path between e1 and e2 remains in their
/// union: paths containing the other event are dropped on both sides, and
/// two-hop connections through a shared middle node are broken on the e2
/// side. This prevents the model from merely learning the transitive
/// closure.
EdgeFeatures extractFeatures(const EventGraph &G, EventId E1, EventId E2,
                             bool PruneLink);

} // namespace uspec

#endif // USPEC_MODEL_FEATURES_H
