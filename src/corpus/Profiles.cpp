//===- Profiles.cpp - Java/Python library profiles ----------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Profiles.h"

using namespace uspec;

namespace {

//===----------------------------------------------------------------------===//
// Method builders
//===----------------------------------------------------------------------===//

ApiMethod store(std::string Name, unsigned Arity, unsigned Pos,
                std::vector<std::string> Loads) {
  ApiMethod M;
  M.Name = std::move(Name);
  M.Arity = Arity;
  M.Semantics = MethodSemantics::Store;
  M.StorePos = Pos;
  M.PairedLoads = std::move(Loads);
  return M;
}

ApiMethod load(std::string Name, unsigned Arity, std::string Concept = "") {
  ApiMethod M;
  M.Name = std::move(Name);
  M.Arity = Arity;
  M.Semantics = MethodSemantics::Load;
  M.ReturnsConcept = std::move(Concept);
  return M;
}

ApiMethod getter(std::string Name, unsigned Arity, std::string Concept = "") {
  ApiMethod M;
  M.Name = std::move(Name);
  M.Arity = Arity;
  M.Semantics = MethodSemantics::StatelessGetter;
  M.ReturnsConcept = std::move(Concept);
  return M;
}

ApiMethod mutating(std::string Name, unsigned Arity,
                   std::string Concept = "") {
  ApiMethod M;
  M.Name = std::move(Name);
  M.Arity = Arity;
  M.Semantics = MethodSemantics::MutatingReader;
  M.ReturnsConcept = std::move(Concept);
  return M;
}

ApiMethod factory(std::string Name, unsigned Arity, std::string Concept = "") {
  ApiMethod M;
  M.Name = std::move(Name);
  M.Arity = Arity;
  M.Semantics = MethodSemantics::Factory;
  M.ReturnsConcept = std::move(Concept);
  return M;
}

ApiMethod action(std::string Name, unsigned Arity) {
  ApiMethod M;
  M.Name = std::move(Name);
  M.Arity = Arity;
  M.Semantics = MethodSemantics::Action;
  return M;
}

ApiMethod predicate(std::string Name, unsigned Arity) {
  ApiMethod M;
  M.Name = std::move(Name);
  M.Arity = Arity;
  M.Semantics = MethodSemantics::Predicate;
  return M;
}

ApiMethod fluent(std::string Name, unsigned Arity) {
  ApiMethod M;
  M.Name = std::move(Name);
  M.Arity = Arity;
  M.Semantics = MethodSemantics::Fluent;
  return M;
}

/// Marks a store/load pair as string-keyed.
ApiMethod stringKeyed(ApiMethod M) {
  M.StringKeysOnly = true;
  return M;
}

/// Marks an Action method as inserting its argument.
ApiMethod inserts(ApiMethod M) {
  M.Inserts = true;
  return M;
}

ApiClass makeClass(std::string Name, std::string Library,
                   std::vector<ApiMethod> Methods) {
  ApiClass C;
  C.Name = std::move(Name);
  C.Library = std::move(Library);
  C.Methods = std::move(Methods);
  return C;
}

ApiClass makeProduced(std::string Name, std::string Library,
                      std::string ProducerVar, std::string ProducerMethod,
                      unsigned ProducerArity,
                      std::vector<ApiMethod> Methods) {
  ApiClass C = makeClass(std::move(Name), std::move(Library),
                         std::move(Methods));
  C.Constructible = false;
  C.ProducerVar = std::move(ProducerVar);
  C.ProducerMethod = std::move(ProducerMethod);
  C.ProducerArity = ProducerArity;
  return C;
}

void fillContainers(LanguageProfile &P) {
  for (const ApiClass &C : P.Registry.classes())
    for (const ApiMethod &M : C.Methods)
      if (M.Semantics == MethodSemantics::Store)
        P.Containers.push_back({&C, &M});
}

} // namespace

//===----------------------------------------------------------------------===//
// Java profile
//===----------------------------------------------------------------------===//

LanguageProfile uspec::javaProfile() {
  LanguageProfile P;
  P.Name = "Java";
  ApiRegistry &R = P.Registry;

  // --- java.util -----------------------------------------------------------
  R.addClass(makeClass("HashMap", "java.util",
                       {store("put", 2, 2, {"get"}), load("get", 1),
                        predicate("containsKey", 1), predicate("size", 0),
                        action("clear", 0)}));
  R.addClass(makeClass("Hashtable", "java.util",
                       {store("put", 2, 2, {"get"}), load("get", 1),
                        predicate("containsKey", 1)}));
  R.addClass(makeClass(
      "Properties", "java.util",
      {stringKeyed(store("setProperty", 2, 2, {"getProperty"})),
       stringKeyed(load("getProperty", 1, "Text"))}));
  R.addClass(makeClass("ArrayList", "java.util",
                       {inserts(action("add", 1)), store("set", 2, 2, {"get"}),
                        load("get", 1), factory("iterator", 0, "Iterator"),
                        predicate("size", 0), predicate("isEmpty", 0)}));
  R.addClass(makeClass("Vector", "java.util",
                       {store("set", 2, 2, {"get", "elementAt"}),
                        load("get", 1), load("elementAt", 1),
                        inserts(action("addElement", 1))}));
  R.addClass(makeClass("Iterator", "java.util",
                       {predicate("hasNext", 0), mutating("next", 0, "Elem")}));
  R.addClass(makeClass("Random", "java.util",
                       {mutating("nextInt", 1, "Num"),
                        mutating("nextDouble", 0, "Num")}));
  R.addClass(makeClass("ThreadLocal", "java.lang",
                       {store("set", 1, 1, {"get"}), load("get", 0)}));
  // StringBuilder: append returns the receiver (RetRecv ground truth for
  // the experimental §5.3 pattern); toString builds a fresh String.
  R.addClass(makeClass("StringBuilder", "java.lang",
                       {fluent("append", 1),
                        factory("toString", 0, "Text"),
                        predicate("length", 0)}));
  R.addClass(makeClass("SecureRandom", "java.security",
                       {mutating("nextInt", 1, "Num")}));

  // --- java.sql (factory-only classes: the §7.5 Atlas pain point) ----------
  R.addClass(makeProduced(
      "ResultSet", "java.sql", "stmt", "executeQuery", 1,
      {getter("getString", 1, "Text"), getter("getInt", 1, "Num"),
       getter("getObject", 1, "Item"), predicate("next", 0),
       action("close", 0)}));

  // --- java.security --------------------------------------------------------
  R.addClass(makeProduced("KeyStore", "java.security", "provider",
                          "getKeyStore", 1,
                          {getter("getKey", 2, "Key"),
                           predicate("containsAlias", 1)}));

  // --- android --------------------------------------------------------------
  R.addClass(makeClass("SparseArray", "android.util",
                       {store("put", 2, 2, {"get"}), load("get", 1),
                        action("removeAt", 1), predicate("size", 0)}));
  R.addClass(makeClass("LongSparseArray", "android.util",
                       {store("put", 2, 2, {"get"}), load("get", 1)}));
  R.addClass(makeClass("ViewGroup", "android.view",
                       {getter("findViewById", 1, "View"),
                        action("addView", 1), action("removeAllViews", 0)}));
  R.addClass(makeClass("Bundle", "android.content",
                       {store("putParcelable", 2, 2, {"getParcelable"}),
                        load("getParcelable", 1),
                        store("putString", 2, 2, {"getString"}),
                        load("getString", 1, "Text")}));

  // --- jackson / org.json / org.w3c ----------------------------------------
  R.addClass(makeProduced("JsonNode", "com.fasterxml.jackson", "mapper",
                          "readTree", 1,
                          {getter("path", 1, "JNode"),
                           getter("get", 1, "JNode"),
                           getter("asText", 0, "Text")}));
  R.addClass(makeClass("JSONObject", "org.json",
                       {stringKeyed(store("put", 2, 2, {"get", "optString"})),
                        stringKeyed(load("get", 1)),
                        stringKeyed(load("optString", 1, "Text")),
                        predicate("has", 1)}));
  R.addClass(makeClass("JSONArray", "org.json",
                       {store("put", 2, 2, {"get"}), load("get", 1),
                        predicate("length", 0)}));
  R.addClass(makeProduced("NodeList", "org.w3c", "doc",
                          "getElementsByTagName", 1,
                          {getter("item", 1, "Element"),
                           predicate("getLength", 0)}));
  R.addClass(makeProduced("Document", "org.w3c", "builder", "parse", 1,
                          {getter("getElementById", 1, "Element"),
                           factory("createElement", 1, "Element")}));

  // --- guava / eclipse / apache / swing / minecraft / codehaus -------------
  R.addClass(makeClass("Cache", "com.google",
                       {store("put", 2, 2, {"getIfPresent"}),
                        load("getIfPresent", 1), action("invalidate", 1)}));
  R.addClass(makeClass(
      "BaseConfiguration", "org.apache",
      {stringKeyed(store("setProperty", 2, 2, {"getProperty"})),
       stringKeyed(load("getProperty", 1)), action("clear", 0)}));
  R.addClass(makeClass("JTable", "javax.swing",
                       // setValueAt(value, row, col): the stored value is the
                       // FIRST argument — exercises StorePos = 1.
                       {store("setValueAt", 3, 1, {"getValueAt"}),
                        load("getValueAt", 2), predicate("getRowCount", 0)}));
  R.addClass(makeClass("JComboBox", "javax.swing",
                       {inserts(action("addItem", 1)),
                        load("getItemAt", 1),
                        store("insertItemAt", 2, 1, {"getItemAt"})}));
  R.addClass(makeClass("NBTTagCompound", "net.minecraft",
                       {store("setTag", 2, 2, {"getTag"}), load("getTag", 1),
                        stringKeyed(store("setString", 2, 2, {"getString"})),
                        stringKeyed(load("getString", 1, "Text"))}));
  R.addClass(makeClass("ObjectNode", "org.codehaus",
                       {store("put", 2, 2, {"get"}), load("get", 1),
                        factory("deepCopy", 0)}));
  R.addClass(makeClass("Preferences", "org.eclipse",
                       {stringKeyed(store("put", 2, 2, {"get"})),
                        stringKeyed(load("get", 1, "Text")),
                        action("flush", 0)}));

  // --- value concepts (classes methods are called on) ----------------------
  R.addClass(makeClass("File", "java.io",
                       {getter("getName", 0, "Text"),
                        getter("getPath", 0, "Text"),
                        getter("getParent", 0, "File"),
                        predicate("exists", 0)}));
  R.addClass(makeClass("Key", "java.security.cert",
                       {getter("getAlgorithm", 0, "Text"),
                        getter("getFormat", 0, "Text")}));
  R.addClass(makeClass("View", "android.widget",
                       {action("invalidate", 0), action("requestFocus", 0),
                        getter("getParent", 0, "View"),
                        store("setTag", 2, 2, {"getTag"}),
                        load("getTag", 1)}));
  R.addClass(makeClass("Element", "org.w3c.elem",
                       {getter("getTagName", 0, "Text"),
                        getter("getAttribute", 1, "Text"),
                        store("setAttribute", 2, 2, {"getAttribute"})}));
  R.addClass(makeClass("Text", "java.lang",
                       {predicate("isEmpty", 0), predicate("length", 0)}));
  R.addClass(makeClass("Item", "java.app",
                       {getter("getId", 0, "Text"),
                        getter("getLabel", 0, "Text")}));

  // --- external producers and sinks (unknown-typed receivers) --------------
  R.addClass(makeClass("Database", "java.app",
                       {getter("getFile", 1, "File"),
                        getter("getItem", 1, "Item"), action("close", 0)}));
  R.addClass(makeClass("FileSystem", "java.app",
                       {factory("open", 1, "File")}));
  R.addClass(makeClass("ConfigService", "java.app",
                       {getter("lookup", 1, "Text")}));
  R.addClass(makeClass("UiService", "java.app",
                       {getter("findView", 1, "View")}));
  R.addClass(makeClass("Logger", "java.app",
                       {action("write", 1), action("info", 1)}));
  R.addClass(makeClass("Sink", "java.app",
                       {action("process", 1), action("consume", 1)}));
  R.addClass(makeClass("Metrics", "java.app", {action("tick", 0)}));

  // --- generator vocabulary --------------------------------------------------
  P.Concepts = {
      {"File",
       {{"db", "getFile", 1}, {"fs", "open", 1}},
       {"getName", "getPath", "getParent"},
       {{"log", "write"}}},
      {"Item",
       {{"db", "getItem", 1}},
       {"getId", "getLabel"},
       {{"sink", "process"}}},
      {"Text", {{"cfg", "lookup", 1}}, {"isEmpty", "length"}, {{"log", "info"}}},
      {"View",
       {{"ui", "findView", 1}},
       {"invalidate", "requestFocus", "getParent"},
       {}},
      {"Key", {}, {"getAlgorithm", "getFormat"}, {}},
      {"Element", {}, {"getTagName"}, {}},
      {"JNode", {}, {"asText"}, {}},
      {"Elem", {}, {}, {{"sink", "consume"}, {"sink", "process"}}},
      {"Num", {}, {}, {{"sink", "consume"}, {"metrics", "tick"}}},
      {"Iterator", {}, {}, {}},
  };
  P.KeyPool = {"id",   "name", "key",   "user", "config",
               "host", "port", "token", "path", "title"};
  fillContainers(P);
  return P;
}

//===----------------------------------------------------------------------===//
// Python profile
//===----------------------------------------------------------------------===//

LanguageProfile uspec::pythonProfile() {
  LanguageProfile P;
  P.Name = "Python";
  ApiRegistry &R = P.Registry;

  // --- builtins (subscripting modeled as in the paper's Tab. 3) ------------
  R.addClass(makeClass(
      "Dict", "builtins",
      {store("SubscriptStore", 2, 2, {"SubscriptLoad", "get"}),
       load("SubscriptLoad", 1), load("get", 1),
       store("setdefault", 2, 2, {"SubscriptLoad", "get"}),
       mutating("pop", 1, "Item"), factory("keys", 0), factory("items", 0),
       predicate("contains", 1)}));
  R.addClass(makeClass(
      "List", "builtins",
      {inserts(action("append", 1)),
       store("SubscriptStore", 2, 2, {"SubscriptLoad"}),
       load("SubscriptLoad", 1),
       // pop() results are bound and reused by idiomatic code, which is why
       // the paper's pipeline learns the *incorrect* RetSame(pop) (Tab. 3).
       mutating("pop", 0, "Item"), predicate("len", 0)}));

  // --- collections ----------------------------------------------------------
  R.addClass(makeClass("OrderedDict", "collections",
                       {store("SubscriptStore", 2, 2, {"SubscriptLoad"}),
                        load("SubscriptLoad", 1)}));
  R.addClass(makeClass("defaultdict", "collections",
                       {load("SubscriptLoad", 1),
                        store("SubscriptStore", 2, 2, {"SubscriptLoad"})}));
  R.addClass(makeClass("Counter", "collections",
                       {load("SubscriptLoad", 1),
                        store("SubscriptStore", 2, 2, {"SubscriptLoad"}),
                        action("update", 1)}));
  R.addClass(makeClass("deque", "collections",
                       {inserts(action("append", 1)),
                        mutating("popleft", 0, "Item"),
                        predicate("len", 0)}));

  // --- pandas ---------------------------------------------------------------
  R.addClass(makeClass("DataFrame", "pandas",
                       {store("SubscriptStore", 2, 2, {"SubscriptLoad", "get"}),
                        load("SubscriptLoad", 1), load("get", 1),
                        factory("copy", 0), getter("head", 0),
                        predicate("empty", 0)}));
  R.addClass(makeClass("Series", "pandas",
                       {store("SubscriptStore", 2, 2, {"SubscriptLoad"}),
                        load("SubscriptLoad", 1),
                        getter("mean", 0, "Num")}));

  // --- ConfigParser (Tab. 3: RetArg(get, set, 3)) ---------------------------
  R.addClass(makeClass("SafeConfigParser", "ConfigParser",
                       {stringKeyed(store("set", 3, 3, {"get"})),
                        stringKeyed(load("get", 2, "Text")),
                        action("read", 1), predicate("has_section", 1)}));

  // --- os / re / json / yaml / copy -----------------------------------------
  R.addClass(makeClass("Os", "os",
                       {getter("getenv", 1, "Text"), getter("getcwd", 0, "Text"),
                        factory("listdir", 1), factory("open", 1, "Handle")}));
  R.addClass(makeClass("Re", "re",
                       {factory("compile", 1, "Pattern"),
                        getter("escape", 1, "Text")}));
  R.addClass(makeProduced("Pattern", "re", "re", "compile", 1,
                          {factory("match", 1, "Match"),
                           factory("search", 1, "Match"),
                           getter("pattern", 0, "Text")}));
  R.addClass(makeProduced("Match", "re", "pattern", "search", 1,
                          {getter("group", 1, "Text"),
                           getter("start", 0, "Num")}));
  R.addClass(makeClass("Json", "json",
                       {factory("loads", 1, "Item"),
                        getter("dumps", 1, "Text")}));
  R.addClass(makeClass("Yaml", "yaml",
                       {factory("load", 1, "Item"),
                        getter("dump", 1, "Text")}));
  R.addClass(makeClass("Copy", "copy",
                       {factory("copy", 1, "Item"),
                        factory("deepcopy", 1, "Item")}));

  // --- numpy -----------------------------------------------------------------
  R.addClass(makeClass("ndarray", "numpy",
                       {store("SubscriptStore", 2, 2, {"SubscriptLoad"}),
                        load("SubscriptLoad", 1),
                        factory("reshape", 1, "Arr"),
                        factory("copy", 0, "Arr"),
                        getter("take", 1, "Arr"),
                        getter("mean", 0, "Num")}));
  R.addClass(makeClass("Np", "numpy",
                       {factory("array", 1, "Arr"), factory("zeros", 1, "Arr"),
                        factory("arange", 1, "Arr")}));
  R.addClass(makeClass("RandomState", "numpy",
                       {mutating("rand", 0, "Num"),
                        mutating("randint", 1, "Num")}));

  // --- web frameworks --------------------------------------------------------
  R.addClass(makeProduced("Session", "django", "request", "getSession", 0,
                          {store("SubscriptStore", 2, 2, {"SubscriptLoad", "get"}),
                           load("SubscriptLoad", 1), load("get", 1)}));
  R.addClass(makeProduced("QuerySet", "django", "objects", "filter", 1,
                          {getter("first", 0, "Item"),
                           factory("exclude", 1), predicate("count", 0)}));
  R.addClass(makeProduced("Args", "flask", "request", "getArgs", 0,
                          {getter("get", 1, "Text"),
                           predicate("has_key", 1)}));

  // --- xml -------------------------------------------------------------------
  R.addClass(makeProduced("ElementTree", "xml", "etree", "parse", 1,
                          {getter("getroot", 0, "PyElem"),
                           getter("find", 1, "PyElem")}));
  R.addClass(makeClass("PyElem", "xml",
                       {getter("get", 1, "Text"),
                        store("set", 2, 2, {"get"}),
                        getter("tag", 0, "Text")}));

  // --- value concepts --------------------------------------------------------
  R.addClass(makeClass("Item", "app",
                       {getter("label", 0, "Text"),
                        getter("describe", 0, "Text")}));
  R.addClass(makeClass("Text", "builtins.str",
                       {predicate("isdigit", 0), predicate("len", 0)}));
  R.addClass(makeClass("Repo", "app", {getter("fetch", 1, "Item")}));
  R.addClass(makeClass("Builder", "app", {factory("make", 1, "Item")}));
  R.addClass(makeClass("Out", "app",
                       {action("emit", 1), action("push", 1)}));
  R.addClass(makeClass("Acc", "app", {action("add", 1)}));
  R.addClass(makeClass("Log", "app", {action("info", 1)}));

  P.Concepts = {
      {"Item",
       {{"repo", "fetch", 1}, {"builder", "make", 1}},
       {"label", "describe"},
       {{"out", "emit"}}},
      {"Text", {{"os", "getenv", 1}}, {"isdigit", "len"}, {{"log", "info"}}},
      {"Arr", {}, {"mean", "take"}, {{"out", "push"}}},
      {"Pattern", {}, {"pattern"}, {}},
      {"Match", {}, {"start"}, {}},
      {"PyElem", {}, {"tag"}, {}},
      {"Handle", {}, {}, {{"out", "push"}}},
      {"Num", {}, {}, {{"acc", "add"}}},
      {"Elem", {}, {}, {{"out", "push"}, {"out", "emit"}}},
  };
  P.KeyPool = {"id",  "name",  "value", "data-value", "url",
               "cnt", "mode",  "debug", "lang",       "path"};
  fillContainers(P);
  return P;
}
