//===- Api.h - Simulated API registry with ground-truth semantics -*- C++-*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated library ecosystem standing in for the paper's real-world
/// Java/Python APIs (see DESIGN.md §2). Every API class carries per-method
/// *ground-truth aliasing semantics*, which serves three purposes:
///
///  1. The corpus generator emits idiomatic usage consistent with the
///     semantics (stored values are later loaded, stateless getters are
///     re-read, iterator elements are consumed once, ...).
///  2. Candidate specifications are labeled valid/invalid exactly — the
///     ground truth replaces the paper's manual labeling of sampled
///     candidates (§7.2).
///  3. The concrete interpreter executes API calls mechanically from the
///     same semantics, which drives the Atlas-style dynamic baseline (§7.5)
///     and differential soundness tests.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_CORPUS_API_H
#define USPEC_CORPUS_API_H

#include "specs/Spec.h"
#include "support/StringInterner.h"

#include <string>
#include <vector>

namespace uspec {

/// Ground-truth aliasing behaviour of one API method.
enum class MethodSemantics : uint8_t {
  Store,           ///< Writes an argument into keyed internal state.
  Load,            ///< Returns keyed internal state (container read).
  StatelessGetter, ///< Returns internal state without mutation (RetSame ok).
  MutatingReader,  ///< Returns internal state AND advances it (next, pop).
  Factory,         ///< Returns a fresh object on every call.
  Action,          ///< No interesting return value (close, clear, add, log).
  Predicate,       ///< Returns a boolean (hasNext, contains).
  Fluent,          ///< Returns the receiver (builder APIs; RetRecv ground
                   ///< truth for the experimental §5.3 pattern).
};

/// One API method with its ground truth.
struct ApiMethod {
  std::string Name;
  unsigned Arity = 0;
  MethodSemantics Semantics = MethodSemantics::Action;
  /// Store only: 1-based position of the stored value argument.
  unsigned StorePos = 0;
  /// Store only: names of load methods that retrieve what this stores.
  std::vector<std::string> PairedLoads;
  /// Concept name of the returned value (Load/StatelessGetter/Mutating/
  /// Factory), e.g. "File", "View"; empty = opaque value.
  std::string ReturnsConcept;
  /// Store/Load only: keys must be strings (Properties, ConfigParser, ...).
  /// The concrete runtime enforces this, which is what defeats the
  /// Atlas-style baseline on such classes (§7.5): its synthesized tests do
  /// not enumerate string constants.
  bool StringKeysOnly = false;
  /// Action methods that insert their argument into the receiver's internal
  /// sequence (add/append); feeds pop()/iterator() concrete semantics.
  bool Inserts = false;

  bool returnsStoredValue() const {
    return Semantics == MethodSemantics::Load;
  }
};

/// One API class of a simulated library.
struct ApiClass {
  std::string Name;    ///< e.g. "HashMap".
  std::string Library; ///< e.g. "java.util" (Tab. 5/6 grouping).
  /// Whether client code can construct it with `new` (false for
  /// factory-only classes like ResultSet or KeyStore — the §7.5 Atlas
  /// failure mode).
  bool Constructible = true;
  /// For non-constructible classes: external variable + method producing an
  /// instance, e.g. stmt.executeQuery(...) for ResultSet.
  std::string ProducerVar;
  std::string ProducerMethod;
  unsigned ProducerArity = 0;
  std::vector<ApiMethod> Methods;

  const ApiMethod *findMethod(const std::string &MethodName,
                              unsigned Arity) const {
    for (const ApiMethod &M : Methods)
      if (M.Name == MethodName && M.Arity == Arity)
        return &M;
    return nullptr;
  }
};

/// Ground-truth label of a candidate specification.
enum class SpecValidity : uint8_t { Valid, Invalid, Unknown };

/// The registry of all simulated API classes of one language profile.
class ApiRegistry {
public:
  void addClass(ApiClass Class) { Classes.push_back(std::move(Class)); }

  const std::vector<ApiClass> &classes() const { return Classes; }

  const ApiClass *findClass(const std::string &Name) const;

  /// Unique method with this name/arity across all classes; null if absent
  /// or ambiguous. Used to judge specs whose receiver class is unknown.
  const ApiMethod *findUniqueMethod(const std::string &Name, unsigned Arity,
                                    const ApiClass **OwnerOut = nullptr) const;

  /// Labels \p S against the ground truth (§7.2 evaluation):
  ///  - RetSame(s) is Valid iff s is a Load or StatelessGetter;
  ///  - RetArg(t,s,x) is Valid iff s is a Store with StorePos = x and t is
  ///    one of its paired loads with matching arity;
  ///  - anything that cannot be resolved in the registry is Unknown
  ///    (counted as invalid in precision, matching the paper's conservative
  ///    manual labeling).
  SpecValidity judgeSpec(const Spec &S, const StringInterner &Strings) const;

  /// Library prefix of the class a spec targets ("?" when unresolvable) —
  /// used for the Tab. 5/6 per-library breakdown.
  std::string libraryOf(const Spec &S, const StringInterner &Strings) const;

private:
  const ApiMethod *resolve(const MethodId &M, const StringInterner &Strings,
                           const ApiClass **OwnerOut) const;

  std::vector<ApiClass> Classes;
};

} // namespace uspec

#endif // USPEC_CORPUS_API_H
