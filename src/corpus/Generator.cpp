//===- Generator.cpp - Synthetic corpus generator ------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Generator.h"

#include "ir/Lowering.h"
#include "lang/Diagnostics.h"

#include <cassert>
#include <sstream>

using namespace uspec;

namespace {

class ProgramBuilder {
public:
  ProgramBuilder(const LanguageProfile &P, const GeneratorConfig &Cfg,
                 Rng &Rand)
      : P(P), Cfg(Cfg), Rand(Rand) {
    // Pre-compute getter sites: (class, method) pairs usable by the
    // repeated-getter idiom. The class must be instantiable somehow.
    for (const ApiClass &C : P.Registry.classes()) {
      if (!C.Constructible && C.ProducerVar.empty())
        continue;
      for (const ApiMethod &M : C.Methods) {
        if (M.Semantics == MethodSemantics::Load ||
            M.Semantics == MethodSemantics::StatelessGetter)
          Getters.push_back({&C, &M});
        if (M.Semantics == MethodSemantics::MutatingReader)
          Mutators.push_back({&C, &M});
      }
    }
  }

  std::string build() {
    unsigned NumIdioms = static_cast<unsigned>(
        Rand.range(Cfg.MinIdioms, Cfg.MaxIdioms));
    for (unsigned I = 0; I < NumIdioms; ++I) {
      emitIdiom();
      if (Rand.chance(Cfg.NoiseProb))
        emitNoise();
    }
    if (MainLines.empty())
      emitDirect();

    std::ostringstream Out;
    Out << "class Main {\n";
    for (const std::string &Field : Fields)
      Out << "  var " << Field << ";\n";
    Out << "  def main() {\n";
    for (const std::string &Line : MainLines)
      Out << "    " << Line << "\n";
    Out << "  }\n";
    for (const std::string &Method : ExtraMethods)
      Out << Method;
    Out << "}\n";
    for (const std::string &Helper : Helpers)
      Out << Helper;
    return Out.str();
  }

private:
  struct MethodRef {
    const ApiClass *Class;
    const ApiMethod *Method;
  };

  //===--------------------------------------------------------------------===//
  // Small emission helpers
  //===--------------------------------------------------------------------===//

  void line(const std::string &Text) { MainLines.push_back(Text); }

  std::string freshVar(const char *Prefix = "v") {
    return std::string(Prefix) + std::to_string(VarCounter++);
  }

  /// A key literal: string from the pool or a small int.
  std::string keyLit() {
    if (Rand.chance(0.75))
      return "\"" + Rand.pick(P.KeyPool) + "\"";
    return std::to_string(Rand.range(0, 9));
  }

  std::string argList(const std::vector<std::string> &Args) {
    std::string Out = "(";
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Args[I];
    }
    return Out + ")";
  }

  /// Instantiates an API class: `new C()` or its producer call. Returns the
  /// variable holding the instance.
  std::string instantiate(const ApiClass &Class) {
    std::string Var = freshVar();
    if (Class.Constructible) {
      line("var " + Var + " = new " + Class.Name + "();");
      return Var;
    }
    std::vector<std::string> Args;
    for (unsigned I = 0; I < Class.ProducerArity; ++I)
      Args.push_back(keyLit());
    line("var " + Var + " = " + Class.ProducerVar + "." +
         Class.ProducerMethod + argList(Args) + ";");
    return Var;
  }

  /// Resolves a use-method's arity: first in the concept's own class, then
  /// uniquely across the registry (0 if unknown).
  unsigned useArity(const Concept &C, const std::string &Method) {
    if (const ApiClass *Own = P.Registry.findClass(C.Name))
      for (unsigned A = 0; A <= 3; ++A)
        if (Own->findMethod(Method, A))
          return A;
    for (unsigned A = 0; A <= 3; ++A)
      if (P.Registry.findUniqueMethod(Method, A))
        return A;
    return 0;
  }

  /// Produces a concept value via one of its producers; returns the variable
  /// and the concept. Returns false if no producible concept exists.
  bool produceValue(std::string &VarOut, const Concept *&ConceptOut,
                    const std::string *ForcedKey = nullptr) {
    std::vector<const Concept *> Producible;
    for (const Concept &C : P.Concepts)
      if (!C.Producers.empty())
        Producible.push_back(&C);
    if (Producible.empty())
      return false;
    const Concept *C = Rand.pick(Producible);
    const Concept::Producer &Prod = C->Producers[Rand.below(
        C->Producers.size())];
    std::vector<std::string> Args;
    for (unsigned I = 0; I < Prod.KeyArgs; ++I)
      Args.push_back(ForcedKey && I == 0 ? *ForcedKey : keyLit());
    std::string Var = freshVar();
    line("var " + Var + " = " + Prod.Var + "." + Prod.Method +
         argList(Args) + ";");
    VarOut = Var;
    ConceptOut = C;
    return true;
  }

  /// Uses a value: receiver-style use methods when the concept has them
  /// (bindable, chainable), otherwise a consume-once sink.
  void useValue(const std::string &Var, const Concept &C, unsigned Times,
                int Depth = 0) {
    if (!C.UseMethods.empty()) {
      for (unsigned T = 0; T < Times; ++T) {
        const std::string &Method = Rand.pick(C.UseMethods);
        unsigned Arity = useArity(C, Method);
        std::vector<std::string> Args;
        for (unsigned A = 0; A < Arity; ++A)
          Args.push_back(keyLit());
        std::string Call = Var + "." + Method + argList(Args);
        // Occasionally bind the result and keep using it (chains like
        // file.getParent().getName()).
        const ApiMethod *M = nullptr;
        if (const ApiClass *Own = P.Registry.findClass(C.Name))
          M = Own->findMethod(Method, Arity);
        if (!M)
          P.Registry.findUniqueMethod(Method, Arity, nullptr);
        const Concept *RetC =
            M && !M->ReturnsConcept.empty() ? P.findConcept(M->ReturnsConcept)
                                            : nullptr;
        if (Depth < 1 && RetC && !RetC->UseMethods.empty() &&
            Rand.chance(0.3)) {
          std::string Bound = freshVar();
          line("var " + Bound + " = " + Call + ";");
          useValue(Bound, *RetC, 1, Depth + 1);
        } else {
          line(Call + ";");
        }
      }
      return;
    }
    if (!C.Sinks.empty()) {
      auto [SinkVar, SinkMethod] = Rand.pick(C.Sinks);
      line(SinkVar + "." + SinkMethod + "(" + Var + ");");
    }
  }

  //===--------------------------------------------------------------------===//
  // Idioms
  //===--------------------------------------------------------------------===//

  void emitIdiom() {
    double Total = Cfg.WDirect + Cfg.WRoundtrip + Cfg.WGetter +
                   Cfg.WMutating + Cfg.WComplex;
    double Roll = Rand.real() * Total;
    if ((Roll -= Cfg.WDirect) < 0)
      return emitDirect();
    if ((Roll -= Cfg.WRoundtrip) < 0)
      return emitRoundtrip();
    if ((Roll -= Cfg.WGetter) < 0)
      return emitRepeatedGetter();
    if ((Roll -= Cfg.WMutating) < 0)
      return emitMutatingTrap();
    emitComplex();
  }

  void emitDirect() {
    std::string Var;
    const Concept *C = nullptr;
    std::string Key = keyLit();
    if (!produceValue(Var, C, &Key))
      return;
    useValue(Var, *C, 1 + static_cast<unsigned>(Rand.below(3)));
    // Repeat the same production with the same key: teaches the RetSame
    // shape for stateless producers.
    if (Rand.chance(0.4) && !C->Producers.empty()) {
      std::string Var2;
      const Concept *C2 = nullptr;
      if (produceValue(Var2, C2, &Key))
        useValue(Var2, *C2, 1);
    }
  }

  void emitRoundtrip() {
    if (P.Containers.empty())
      return emitDirect();
    const ContainerInfo &Container =
        P.Containers[Rand.below(P.Containers.size())];
    const ApiClass &Class = *Container.Class;
    const ApiMethod &Store = *Container.Store;
    if (!Class.Constructible && Class.ProducerVar.empty())
      return emitDirect();

    std::string Recv = instantiate(Class);

    // Keys for every non-value position.
    std::vector<std::string> Keys;
    for (unsigned I = 1; I <= Store.Arity; ++I)
      if (I != Store.StorePos)
        Keys.push_back(keyLit());

    // The stored value: a produced concept (80%) or a literal.
    std::string ValueVar;
    const Concept *ValueConcept = nullptr;
    if (!Rand.chance(0.2) && produceValue(ValueVar, ValueConcept)) {
      // produced above
    } else {
      ValueVar = keyLit();
      ValueConcept = nullptr;
    }

    // Store call with the value at StorePos.
    {
      std::vector<std::string> Args;
      size_t KeyIdx = 0;
      for (unsigned I = 1; I <= Store.Arity; ++I)
        Args.push_back(I == Store.StorePos ? ValueVar : Keys[KeyIdx++]);
      line(Recv + "." + Store.Name + argList(Args) + ";");
    }

    // A little unrelated churn between store and load.
    if (Rand.chance(Cfg.NoiseProb))
      emitNoise();

    // Load with matching keys (or a mismatch, as corpus noise).
    if (Store.PairedLoads.empty())
      return;
    const std::string &LoadName = Rand.pick(Store.PairedLoads);
    const ApiMethod *Load = Class.findMethod(LoadName, Store.Arity - 1);
    if (!Load)
      return;
    bool Match = Rand.chance(Cfg.KeyMatchProb);
    std::vector<std::string> LoadArgs;
    for (size_t I = 0; I < Keys.size(); ++I)
      LoadArgs.push_back(Match ? Keys[I] : keyLit());
    std::string Result = freshVar();
    line("var " + Result + " = " + Recv + "." + Load->Name +
         argList(LoadArgs) + ";");

    // Use the loaded value like the stored concept.
    if (ValueConcept) {
      if (Rand.chance(0.3)) {
        line("if (" + Result + " != null) {");
        MainLines.back() += " " + useInline(Result, *ValueConcept) + " }";
      } else {
        useValue(Result, *ValueConcept, 1 + Rand.below(2));
      }
    }
  }

  /// One inline use statement (for guarded one-liners).
  std::string useInline(const std::string &Var, const Concept &C) {
    if (!C.UseMethods.empty()) {
      const std::string &Method = Rand.pick(C.UseMethods);
      unsigned Arity = useArity(C, Method);
      std::vector<std::string> Args;
      for (unsigned A = 0; A < Arity; ++A)
        Args.push_back(keyLit());
      return Var + "." + Method + argList(Args) + ";";
    }
    if (!C.Sinks.empty()) {
      auto [SinkVar, SinkMethod] = Rand.pick(C.Sinks);
      return SinkVar + "." + SinkMethod + "(" + Var + ");";
    }
    return Var + ".touch();";
  }

  void emitRepeatedGetter() {
    if (Getters.empty())
      return emitDirect();
    const MethodRef &G = Getters[Rand.below(Getters.size())];
    std::string Recv = instantiate(*G.Class);
    std::vector<std::string> Args;
    for (unsigned I = 0; I < G.Method->Arity; ++I)
      Args.push_back(keyLit());
    const Concept *RetC = G.Method->ReturnsConcept.empty()
                              ? nullptr
                              : P.findConcept(G.Method->ReturnsConcept);

    unsigned Reads = 2 + Rand.below(2);
    for (unsigned I = 0; I < Reads; ++I) {
      std::string Var = freshVar();
      line("var " + Var + " = " + Recv + "." + G.Method->Name +
           argList(Args) + ";");
      // Reusing the result (people do) is the training signal that makes the
      // induced use->use edges of RetSame candidates familiar to the model.
      // Mostly one use, though: Alg. 1 only scores matches with a single
      // induced edge, i.e. single-use rets on both sides.
      if (RetC)
        useValue(Var, *RetC, Rand.chance(0.3) ? 2 : 1);
      if (Rand.chance(Cfg.NoiseProb * 0.5))
        emitNoise();
    }
    // Occasionally a differently-keyed read.
    if (G.Method->Arity > 0 && Rand.chance(0.4)) {
      std::vector<std::string> Other;
      for (unsigned I = 0; I < G.Method->Arity; ++I)
        Other.push_back(keyLit());
      std::string Var = freshVar();
      line("var " + Var + " = " + Recv + "." + G.Method->Name +
           argList(Other) + ";");
      if (RetC)
        useValue(Var, *RetC, 1);
    }
  }

  void emitMutatingTrap() {
    if (Mutators.empty())
      return emitDirect();
    const MethodRef &M = Mutators[Rand.below(Mutators.size())];
    std::string Recv;
    // Iterators come from collections.
    if (M.Class->Name == "Iterator") {
      std::string List = freshVar();
      line("var " + List + " = new ArrayList();");
      std::string Elem;
      const Concept *EC = nullptr;
      if (produceValue(Elem, EC))
        line(List + ".add(" + Elem + ");");
      Recv = freshVar("it");
      line("var " + Recv + " = " + List + ".iterator();");
      if (Rand.chance(0.5)) {
        // Loop form: while (it.hasNext()) { sink(it.next()); }
        std::string E = freshVar("e");
        line("while (" + Recv + ".hasNext()) {");
        MainLines.back() += " var " + E + " = " + Recv + ".next();";
        const Concept *Elc = P.findConcept("Elem");
        if (Elc && !Elc->Sinks.empty()) {
          auto [SV, SM] = Rand.pick(Elc->Sinks);
          MainLines.back() += " " + SV + "." + SM + "(" + E + ");";
        }
        MainLines.back() += " }";
        return;
      }
    } else {
      Recv = instantiate(*M.Class);
      // Seed containers before popping from them.
      if (M.Class->findMethod("append", 1)) {
        std::string V;
        const Concept *VC = nullptr;
        if (produceValue(V, VC))
          line(Recv + ".append(" + V + ");");
      }
    }
    const Concept *RetC = M.Method->ReturnsConcept.empty()
                              ? nullptr
                              : P.findConcept(M.Method->ReturnsConcept);
    unsigned Calls = 2;
    for (unsigned I = 0; I < Calls; ++I) {
      std::vector<std::string> Args;
      for (unsigned A = 0; A < M.Method->Arity; ++A)
        Args.push_back(keyLit());
      std::string Var = freshVar();
      line("var " + Var + " = " + Recv + "." + M.Method->Name +
           argList(Args) + ";");
      if (RetC)
        useValue(Var, *RetC, 1 + Rand.below(2));
    }
  }

  void emitComplex() {
    switch (Rand.below(4)) {
    case 0:
      return emitHelperPassthrough();
    case 1:
      return emitFieldCache();
    case 2:
      return emitFluentChain();
    default:
      return emitBranchStore();
    }
  }

  void emitFluentChain() {
    // Builder-style usage. Sequential calls on one variable teach the model
    // the receiver-continuation shape; chained calls (receiver = previous
    // return) are what the RetRecv pattern must explain.
    std::vector<MethodRef> Fluents;
    for (const ApiClass &C : P.Registry.classes()) {
      if (!C.Constructible)
        continue;
      for (const ApiMethod &M : C.Methods)
        if (M.Semantics == MethodSemantics::Fluent)
          Fluents.push_back({&C, &M});
    }
    if (Fluents.empty())
      return emitBranchStore();
    const MethodRef &F = Fluents[Rand.below(Fluents.size())];
    std::string Recv = instantiate(*F.Class);
    unsigned Calls = 2 + static_cast<unsigned>(Rand.below(2));
    if (Rand.chance(0.5)) {
      // Sequential style.
      for (unsigned I = 0; I < Calls; ++I) {
        std::vector<std::string> Args;
        for (unsigned A = 0; A < F.Method->Arity; ++A)
          Args.push_back(keyLit());
        line(Recv + "." + F.Method->Name + argList(Args) + ";");
      }
    } else {
      // Chained style.
      std::string Chain = Recv;
      for (unsigned I = 0; I < Calls; ++I) {
        std::vector<std::string> Args;
        for (unsigned A = 0; A < F.Method->Arity; ++A)
          Args.push_back(keyLit());
        Chain += "." + F.Method->Name + argList(Args);
      }
      line(Chain + ";");
    }
    // Finish the builder.
    if (const ApiMethod *Finish = F.Class->findMethod("toString", 0)) {
      std::string Out = freshVar();
      line("var " + Out + " = " + Recv + "." + Finish->Name + "();");
      if (const Concept *C = P.findConcept(Finish->ReturnsConcept))
        useValue(Out, *C, 1);
    }
  }

  void emitHelperPassthrough() {
    // A helper method fetches from a container; exercises inlining.
    if (P.Containers.empty())
      return emitDirect();
    const ContainerInfo &Container =
        P.Containers[Rand.below(P.Containers.size())];
    const ApiClass &Class = *Container.Class;
    const ApiMethod &Store = *Container.Store;
    if (!Class.Constructible || Store.Arity != 2 || Store.StorePos != 2 ||
        Store.PairedLoads.empty())
      return emitRoundtrip();
    const std::string &LoadName = Store.PairedLoads[0];
    if (!Class.findMethod(LoadName, 1))
      return emitRoundtrip();

    std::string HelperName = "Helper" + std::to_string(HelperCounter++);
    Helpers.push_back("class " + HelperName +
                      " {\n  def fetch(m, k) { return m." + LoadName +
                      "(k); }\n}\n");
    std::string Key = keyLit();
    std::string Recv = instantiate(Class);
    std::string ValueVar;
    const Concept *ValueConcept = nullptr;
    if (!produceValue(ValueVar, ValueConcept))
      return;
    line(Recv + "." + Store.Name + "(" + Key + ", " + ValueVar + ");");
    std::string H = freshVar("h");
    line("var " + H + " = new " + HelperName + "();");
    std::string Result = freshVar();
    line("var " + Result + " = " + H + ".fetch(" + Recv + ", " + Key + ");");
    useValue(Result, *ValueConcept, 1);
  }

  void emitFieldCache() {
    // Store a container in a field in one method, read it in main.
    if (P.Containers.empty())
      return emitDirect();
    const ContainerInfo &Container =
        P.Containers[Rand.below(P.Containers.size())];
    const ApiClass &Class = *Container.Class;
    const ApiMethod &Store = *Container.Store;
    if (!Class.Constructible || Store.Arity != 2 || Store.StorePos != 2 ||
        Store.PairedLoads.empty() || UsedFieldCache)
      return emitRoundtrip();
    const std::string &LoadName = Store.PairedLoads[0];
    if (!Class.findMethod(LoadName, 1))
      return emitRoundtrip();
    UsedFieldCache = true;

    std::string Key = keyLit();
    Fields.push_back("cache");
    ExtraMethods.push_back(
        "  def setup() {\n"
        "    var m = new " + Class.Name + "();\n"
        "    this.cache = m;\n"
        "  }\n");
    std::string ValueVar;
    const Concept *ValueConcept = nullptr;
    line("setup();");
    if (!produceValue(ValueVar, ValueConcept))
      return;
    std::string M = freshVar("m");
    line("var " + M + " = this.cache;");
    line(M + "." + Store.Name + "(" + Key + ", " + ValueVar + ");");
    std::string Result = freshVar();
    line("var " + Result + " = " + M + "." + LoadName + "(" + Key + ");");
    useValue(Result, *ValueConcept, 1);
  }

  void emitBranchStore() {
    if (P.Containers.empty())
      return emitDirect();
    const ContainerInfo &Container =
        P.Containers[Rand.below(P.Containers.size())];
    const ApiClass &Class = *Container.Class;
    const ApiMethod &Store = *Container.Store;
    if ((!Class.Constructible && Class.ProducerVar.empty()) ||
        Store.Arity != 2 || Store.StorePos != 2 || Store.PairedLoads.empty())
      return emitRoundtrip();
    const std::string &LoadName = Store.PairedLoads[0];
    if (!Class.findMethod(LoadName, 1))
      return emitRoundtrip();

    std::string Recv = instantiate(Class);
    std::string Key = keyLit();
    std::string V1, V2;
    const Concept *C1 = nullptr, *C2 = nullptr;
    if (!produceValue(V1, C1) || !produceValue(V2, C2))
      return;
    line("if (flag != null) { " + Recv + "." + Store.Name + "(" + Key + ", " +
         V1 + "); } else { " + Recv + "." + Store.Name + "(" + Key + ", " +
         V2 + "); }");
    std::string Result = freshVar();
    line("var " + Result + " = " + Recv + "." + LoadName + "(" + Key + ");");
    useValue(Result, *C1, 1);
  }

  void emitNoise() {
    switch (Rand.below(3)) {
    case 0:
      line(P.Name == "Java" ? "metrics.tick();" : "log.info(\"run\");");
      return;
    case 1:
      line(P.Name == "Java" ? "log.info(" + keyLit() + ");"
                            : "log.info(" + keyLit() + ");");
      return;
    default: {
      std::string Var;
      const Concept *C = nullptr;
      if (produceValue(Var, C))
        useValue(Var, *C, 1);
      return;
    }
    }
  }

  const LanguageProfile &P;
  const GeneratorConfig &Cfg;
  Rng &Rand;

  std::vector<std::string> MainLines;
  std::vector<std::string> Fields;
  std::vector<std::string> ExtraMethods;
  std::vector<std::string> Helpers;
  std::vector<MethodRef> Getters;
  std::vector<MethodRef> Mutators;
  int VarCounter = 0;
  int HelperCounter = 0;
  bool UsedFieldCache = false;
};

} // namespace

std::string uspec::generateProgramSource(const LanguageProfile &Profile,
                                         const GeneratorConfig &Config,
                                         Rng &Rand) {
  ProgramBuilder Builder(Profile, Config, Rand);
  return Builder.build();
}

GeneratedCorpus uspec::generateCorpus(const LanguageProfile &Profile,
                                      const GeneratorConfig &Config,
                                      StringInterner &Strings) {
  GeneratedCorpus Corpus;
  Rng Rand(Config.Seed);
  for (size_t I = 0; I < Config.NumPrograms; ++I) {
    std::string Source;
    if (!Corpus.Sources.empty() && Rand.chance(Config.DuplicateProb))
      Source = Corpus.Sources[Rand.below(Corpus.Sources.size())];
    else
      Source = generateProgramSource(Profile, Config, Rand);
    DiagnosticSink Diags;
    auto Program = parseAndLower(Source, Profile.Name + "_prog" +
                                             std::to_string(I),
                                 Strings, Diags);
    assert(Program && "generated program failed to parse/lower");
    if (!Program)
      continue;
    Corpus.TotalLines += Program->SourceLines;
    Corpus.Sources.push_back(std::move(Source));
    Corpus.Programs.push_back(std::move(*Program));
  }
  return Corpus;
}
