//===- GroundTruth.h - Candidate labeling and PR curves --------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluation helpers replacing the paper's manual labeling (§7.2): each
/// scored candidate is labeled against the API registry's ground truth, and
/// precision/recall are computed per threshold τ exactly as in Fig. 7
/// (precision = valid/selected; recall = selected-valid/valid; Unknown
/// labels count as invalid, mirroring the paper's conservative labeling).
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_CORPUS_GROUNDTRUTH_H
#define USPEC_CORPUS_GROUNDTRUTH_H

#include "core/Learner.h"
#include "corpus/Api.h"

#include <vector>

namespace uspec {

/// A scored candidate with its ground-truth label.
struct LabeledCandidate {
  ScoredCandidate C;
  SpecValidity Validity = SpecValidity::Unknown;

  bool isValid() const { return Validity == SpecValidity::Valid; }
};

/// Labels every candidate against \p Registry.
std::vector<LabeledCandidate>
labelCandidates(const ApiRegistry &Registry, const StringInterner &Strings,
                const std::vector<ScoredCandidate> &Candidates);

/// One point of the Fig. 7 curve.
struct PrPoint {
  double Tau = 0;
  double Precision = 0;
  double Recall = 0;
  size_t Selected = 0;
  size_t Valid = 0;
};

/// Precision/recall of τ-selection over labeled candidates.
PrPoint prAtTau(const std::vector<LabeledCandidate> &Candidates, double Tau);

/// Sweeps several thresholds.
std::vector<PrPoint> prCurve(const std::vector<LabeledCandidate> &Candidates,
                             const std::vector<double> &Taus);

} // namespace uspec

#endif // USPEC_CORPUS_GROUNDTRUTH_H
