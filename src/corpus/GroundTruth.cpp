//===- GroundTruth.cpp - Candidate labeling and PR curves ---------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/GroundTruth.h"

using namespace uspec;

std::vector<LabeledCandidate>
uspec::labelCandidates(const ApiRegistry &Registry,
                       const StringInterner &Strings,
                       const std::vector<ScoredCandidate> &Candidates) {
  std::vector<LabeledCandidate> Labeled;
  Labeled.reserve(Candidates.size());
  for (const ScoredCandidate &C : Candidates)
    Labeled.push_back({C, Registry.judgeSpec(C.S, Strings)});
  return Labeled;
}

PrPoint uspec::prAtTau(const std::vector<LabeledCandidate> &Candidates,
                       double Tau) {
  PrPoint Point;
  Point.Tau = Tau;
  size_t SelectedValid = 0;
  for (const LabeledCandidate &L : Candidates) {
    bool Selected = L.C.Score >= Tau;
    Point.Selected += Selected;
    Point.Valid += L.isValid();
    SelectedValid += Selected && L.isValid();
  }
  Point.Precision =
      Point.Selected == 0
          ? 1.0
          : static_cast<double>(SelectedValid) / Point.Selected;
  Point.Recall = Point.Valid == 0
                     ? 1.0
                     : static_cast<double>(SelectedValid) / Point.Valid;
  return Point;
}

std::vector<PrPoint>
uspec::prCurve(const std::vector<LabeledCandidate> &Candidates,
               const std::vector<double> &Taus) {
  std::vector<PrPoint> Curve;
  Curve.reserve(Taus.size());
  for (double Tau : Taus)
    Curve.push_back(prAtTau(Candidates, Tau));
  return Curve;
}
