//===- Dedup.h - Corpus deduplication (§7.1) -------------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §7.1: "We pruned our dataset to be free from project forks and file
/// duplicates." Duplicated files would otherwise multiply a single usage
/// pattern's weight in both model training and candidate match counts.
///
/// Programs are fingerprinted structurally over the lowered IR (instruction
/// kinds, interned method/field/class names, literal values, arities —
/// variable slots and site ids are positional and thus already normalized),
/// so textual noise like comments or whitespace does not defeat the dedup.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_CORPUS_DEDUP_H
#define USPEC_CORPUS_DEDUP_H

#include "ir/IR.h"

#include <cstdint>
#include <vector>

namespace uspec {

/// Structural fingerprint of a program.
uint64_t programFingerprint(const IRProgram &Program);

/// Indices of programs whose fingerprint duplicates an earlier program.
std::vector<size_t> duplicateIndices(const std::vector<IRProgram> &Corpus);

/// Removes duplicates in place (keeping the first occurrence of each
/// fingerprint); returns the number removed.
size_t dedupeCorpus(std::vector<IRProgram> &Corpus);

} // namespace uspec

#endif // USPEC_CORPUS_DEDUP_H
