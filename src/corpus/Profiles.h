//===- Profiles.h - Java/Python library profiles ---------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Language profiles: the simulated library ecosystems for the Java-flavored
/// and Python-flavored corpora (§7.1 evaluates both). A profile bundles the
/// API registry (with ground truth) and the generator vocabulary: value
/// concepts with their producers, use methods and sinks, plus key pools and
/// external variable names.
///
/// The Java profile mirrors the libraries of Tab. 3/5 (java.util, java.sql,
/// java.security, android.util, android.view, jackson, org.json, org.w3c,
/// ...); the Python profile mirrors Tab. 6 (Dict/List builtins, collections,
/// ConfigParser, numpy, os, re, json, yaml, django, flask, ...), including
/// the paper's subscript pseudo-methods SubscriptStore/SubscriptLoad.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_CORPUS_PROFILES_H
#define USPEC_CORPUS_PROFILES_H

#include "corpus/Api.h"

#include <string>
#include <vector>

namespace uspec {

/// A kind of value flowing through programs (files, views, nodes, ...).
struct Concept {
  std::string Name;
  /// Ways to obtain such a value: external variable + method + number of
  /// key arguments. The method's ground truth lives in the registry.
  struct Producer {
    std::string Var;
    std::string Method;
    unsigned KeyArgs = 1;
  };
  std::vector<Producer> Producers;
  /// Methods typically called *on* such a value (receiver position).
  std::vector<std::string> UseMethods;
  /// Consume-once sinks: external variable + method taking the value as an
  /// argument. Used for stream/iterator elements.
  std::vector<std::pair<std::string, std::string>> Sinks;
};

/// A container class usable by the round-trip idiom, derived from the
/// registry: class plus one Store method and its paired Loads.
struct ContainerInfo {
  const ApiClass *Class = nullptr;
  const ApiMethod *Store = nullptr;
};

/// One language profile.
struct LanguageProfile {
  std::string Name; ///< "Java" or "Python".
  ApiRegistry Registry;
  std::vector<Concept> Concepts;
  std::vector<std::string> KeyPool;
  /// Classes with MutatingReader methods used by the trap idiom.
  /// Derived views (filled by the profile builders):
  std::vector<ContainerInfo> Containers;

  const Concept *findConcept(const std::string &Name) const {
    for (const Concept &C : Concepts)
      if (C.Name == Name)
        return &C;
    return nullptr;
  }
};

/// Builds the Java-flavored profile.
LanguageProfile javaProfile();

/// Builds the Python-flavored profile.
LanguageProfile pythonProfile();

} // namespace uspec

#endif // USPEC_CORPUS_PROFILES_H
