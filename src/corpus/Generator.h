//===- Generator.h - Synthetic corpus generator ----------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates MiniLang programs whose API usage statistics mirror the
/// regularities USpec learns from real corpora (DESIGN.md §2):
///
///   direct     — produce a value and use it (repeatedly), teaching ϕ which
///                interactions co-occur on one object;
///   roundtrip  — store a value into a container and load it back by key
///                (the RetArg candidate source), with occasional key
///                mismatches as noise;
///   getter     — repeated reads from stateful getters (RetSame candidates);
///   mutating   — iterator/cursor/pop idioms whose per-call results either
///                get consumed once (true negatives for RetSame) or reused
///                (reproducing the paper's incorrect learned specs);
///   complex    — helper-method indirection, field caches, branches, loops.
///
/// Programs are emitted as source text and run through the regular parser
/// and lowering — the pipeline sees them exactly as it would see a mined
/// corpus file.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_CORPUS_GENERATOR_H
#define USPEC_CORPUS_GENERATOR_H

#include "corpus/Profiles.h"
#include "ir/IR.h"
#include "support/Random.h"
#include "support/StringInterner.h"

#include <string>
#include <vector>

namespace uspec {

/// Generator tuning knobs.
struct GeneratorConfig {
  size_t NumPrograms = 800;
  uint64_t Seed = 1;
  /// Probability that a load uses the same key as the preceding store.
  double KeyMatchProb = 0.85;
  /// Probability of injecting unrelated noise statements per idiom.
  double NoiseProb = 0.6;
  /// Idiom mix (normalized internally).
  double WDirect = 0.30;
  double WRoundtrip = 0.26;
  double WGetter = 0.17;
  double WMutating = 0.12;
  double WComplex = 0.15;
  /// Idioms per program (uniform in [MinIdioms, MaxIdioms]).
  unsigned MinIdioms = 1;
  unsigned MaxIdioms = 3;
  /// Probability of emitting an exact duplicate of an earlier program
  /// (simulates forked repositories/copied files; §7.1 prunes these —
  /// see corpus/Dedup.h).
  double DuplicateProb = 0.0;
};

/// A generated corpus: sources plus lowered programs.
struct GeneratedCorpus {
  std::vector<std::string> Sources;
  std::vector<IRProgram> Programs;
  size_t TotalLines = 0;
};

/// Generates one program's source text.
std::string generateProgramSource(const LanguageProfile &Profile,
                                  const GeneratorConfig &Config, Rng &Rand);

/// Generates a full corpus and lowers it through the regular front end.
/// Programs that fail to parse indicate a generator bug and abort via
/// assert; the returned corpus always has NumPrograms entries.
GeneratedCorpus generateCorpus(const LanguageProfile &Profile,
                               const GeneratorConfig &Config,
                               StringInterner &Strings);

} // namespace uspec

#endif // USPEC_CORPUS_GENERATOR_H
