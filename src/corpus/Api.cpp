//===- Api.cpp - Simulated API registry with ground-truth semantics -----------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Api.h"

using namespace uspec;

const ApiClass *ApiRegistry::findClass(const std::string &Name) const {
  for (const ApiClass &C : Classes)
    if (C.Name == Name)
      return &C;
  return nullptr;
}

namespace {

/// Aliasing-behaviour signature: two same-named methods are compatible for
/// unknown-class resolution iff this signature matches (e.g. a Load and a
/// StatelessGetter are both RetSame-valid non-stores).
std::tuple<bool, bool, unsigned> aliasingSignature(const ApiMethod &M) {
  bool RetSameValid = M.Semantics == MethodSemantics::Load ||
                      M.Semantics == MethodSemantics::StatelessGetter ||
                      M.Semantics == MethodSemantics::Fluent;
  return {RetSameValid, M.Semantics == MethodSemantics::Fluent,
          M.Semantics == MethodSemantics::Store ? M.StorePos : 0};
}

} // namespace

const ApiMethod *ApiRegistry::findUniqueMethod(const std::string &Name,
                                               unsigned Arity,
                                               const ApiClass **OwnerOut) const {
  const ApiMethod *Found = nullptr;
  const ApiClass *Owner = nullptr;
  for (const ApiClass &C : Classes) {
    if (const ApiMethod *M = C.findMethod(Name, Arity)) {
      if (Found) {
        // Ambiguous only when the aliasing behaviour differs.
        if (aliasingSignature(*M) != aliasingSignature(*Found))
          return nullptr;
        continue;
      }
      Found = M;
      Owner = &C;
    }
  }
  if (OwnerOut)
    *OwnerOut = Owner;
  return Found;
}

const ApiMethod *ApiRegistry::resolve(const MethodId &M,
                                      const StringInterner &Strings,
                                      const ApiClass **OwnerOut) const {
  const std::string &Name = Strings.str(M.Name);
  if (!M.Class.isEmpty()) {
    const ApiClass *C = findClass(Strings.str(M.Class));
    if (!C)
      return nullptr;
    if (OwnerOut)
      *OwnerOut = C;
    return C->findMethod(Name, M.Arity);
  }
  return findUniqueMethod(Name, M.Arity, OwnerOut);
}

SpecValidity ApiRegistry::judgeSpec(const Spec &S,
                                    const StringInterner &Strings) const {
  const ApiClass *TargetOwner = nullptr;
  const ApiMethod *Target = resolve(S.Target, Strings, &TargetOwner);
  if (!Target)
    return SpecValidity::Unknown;

  if (S.TheKind == Spec::Kind::RetSame) {
    switch (Target->Semantics) {
    case MethodSemantics::Load:
    case MethodSemantics::StatelessGetter:
    // A fluent method returns its receiver on every call — trivially the
    // same object for repeated calls.
    case MethodSemantics::Fluent:
      return SpecValidity::Valid;
    default:
      return SpecValidity::Invalid;
    }
  }

  if (S.TheKind == Spec::Kind::RetRecv)
    return Target->Semantics == MethodSemantics::Fluent
               ? SpecValidity::Valid
               : SpecValidity::Invalid;

  // RetArg(t, s, x).
  const ApiClass *SourceOwner = nullptr;
  const ApiMethod *Source = resolve(S.Source, Strings, &SourceOwner);
  if (!Source)
    return SpecValidity::Unknown;
  // Both methods must belong to the same class when resolvable.
  if (TargetOwner && SourceOwner && TargetOwner != SourceOwner)
    return SpecValidity::Invalid;
  if (Source->Semantics != MethodSemantics::Store)
    return SpecValidity::Invalid;
  if (Source->StorePos != S.ArgPos)
    return SpecValidity::Invalid;
  if (Source->Arity != Target->Arity + 1u)
    return SpecValidity::Invalid;
  for (const std::string &Load : Source->PairedLoads)
    if (Load == Target->Name)
      return SpecValidity::Valid;
  return SpecValidity::Invalid;
}

std::string ApiRegistry::libraryOf(const Spec &S,
                                   const StringInterner &Strings) const {
  const ApiClass *Owner = nullptr;
  if (!resolve(S.Target, Strings, &Owner) || !Owner)
    return "?";
  return Owner->Library;
}
