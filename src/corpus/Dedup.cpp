//===- Dedup.cpp - Corpus deduplication (§7.1) ---------------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Dedup.h"

#include "support/Hashing.h"

#include <unordered_set>

using namespace uspec;

namespace {

uint64_t hashInstrList(const InstrList &Body, uint64_t Seed) {
  uint64_t H = Seed;
  for (const Instr &I : Body) {
    H = hashCombine(H, static_cast<uint64_t>(I.TheKind));
    H = hashCombine(H, I.Name.id());
    H = hashCombine(H, I.StrValue.id());
    H = hashCombine(H, static_cast<uint64_t>(I.LitKind));
    H = hashCombine(H, static_cast<uint64_t>(I.IntValue));
    H = hashCombine(H, I.Args.size());
    H = hashCombine(H, static_cast<uint64_t>(I.CondOp));
    // Slots are positional (deterministic lowering), so including them keeps
    // genuinely different data flow apart without depending on names.
    H = hashCombine(H, I.Dst);
    H = hashCombine(H, I.Src);
    H = hashCombine(H, I.Base);
    for (VarId Arg : I.Args)
      H = hashCombine(H, Arg);
    H = hashInstrList(I.Inner1, hashCombine(H, 0x11));
    if (I.TheKind == Instr::Kind::If)
      H = hashInstrList(I.Inner2, hashCombine(H, 0x22));
  }
  return H;
}

} // namespace

uint64_t uspec::programFingerprint(const IRProgram &Program) {
  uint64_t H = 0xF1D0ULL;
  for (const IRClass &Class : Program.Classes) {
    H = hashCombine(H, Class.Name.id());
    for (Symbol Field : Class.Fields)
      H = hashCombine(H, Field.id());
    for (const IRMethod &Method : Class.Methods) {
      H = hashCombine(H, Method.Name.id());
      H = hashCombine(H, Method.NumParams);
      H = hashInstrList(Method.Body, H);
    }
  }
  return H;
}

std::vector<size_t>
uspec::duplicateIndices(const std::vector<IRProgram> &Corpus) {
  std::vector<size_t> Duplicates;
  std::unordered_set<uint64_t> Seen;
  for (size_t I = 0; I < Corpus.size(); ++I)
    if (!Seen.insert(programFingerprint(Corpus[I])).second)
      Duplicates.push_back(I);
  return Duplicates;
}

size_t uspec::dedupeCorpus(std::vector<IRProgram> &Corpus) {
  std::unordered_set<uint64_t> Seen;
  size_t Write = 0;
  for (size_t Read = 0; Read < Corpus.size(); ++Read) {
    if (!Seen.insert(programFingerprint(Corpus[Read])).second)
      continue;
    if (Write != Read)
      Corpus[Write] = std::move(Corpus[Read]);
    ++Write;
  }
  size_t Removed = Corpus.size() - Write;
  Corpus.resize(Write);
  return Removed;
}
