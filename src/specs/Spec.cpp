//===- Spec.cpp - API aliasing specification types ---------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "specs/Spec.h"

using namespace uspec;

std::string MethodId::str(const StringInterner &Strings) const {
  std::string Out;
  const std::string &ClassName = Strings.str(Class);
  Out += ClassName.empty() ? "?" : ClassName;
  Out += ".";
  Out += Strings.str(Name);
  Out += "/";
  Out += std::to_string(Arity);
  return Out;
}

std::string Spec::str(const StringInterner &Strings) const {
  switch (TheKind) {
  case Kind::RetSame:
    return "RetSame(" + Target.str(Strings) + ")";
  case Kind::RetRecv:
    return "RetRecv(" + Target.str(Strings) + ")";
  case Kind::RetArg:
    break;
  }
  return "RetArg(" + Target.str(Strings) + ", " + Source.str(Strings) + ", " +
         std::to_string(ArgPos) + ")";
}

bool SpecSet::insert(const Spec &S) {
  if (!Specs.insert(S).second)
    return false;
  Ordered.push_back(S);
  switch (S.TheKind) {
  case Spec::Kind::RetSame:
    RetSameIndex.insert(S.Target);
    break;
  case Spec::Kind::RetRecv:
    RetRecvIndex.insert(S.Target);
    break;
  case Spec::Kind::RetArg:
    BySource[S.Source].push_back(S);
    break;
  }
  return true;
}

const std::vector<Spec> &SpecSet::retArgsBySource(const MethodId &M) const {
  static const std::vector<Spec> Empty;
  auto It = BySource.find(M);
  return It == BySource.end() ? Empty : It->second;
}

size_t SpecSet::extendConsistency() {
  size_t Added = 0;
  // Collect first: inserting invalidates no iterators on Ordered, but be
  // explicit about iterating a snapshot.
  std::vector<Spec> Snapshot = Ordered;
  for (const Spec &S : Snapshot) {
    if (S.TheKind != Spec::Kind::RetArg)
      continue;
    if (insert(Spec::retSame(S.Target)))
      ++Added;
  }
  return Added;
}
