//===- SpecIO.h - Textual (de)serialization of specification sets -*- C++-*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line-oriented text format for specification sets, so learned specs can
/// be shipped, diffed and loaded without re-running the pipeline:
///
///   # comments and blank lines are ignored
///   RetSame(Map.get/1)
///   RetArg(Map.get/1, Map.put/2, 2)
///
/// The receiver class "?" denotes an unknown class (empty Symbol).
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SPECS_SPECIO_H
#define USPEC_SPECS_SPECIO_H

#include "specs/Spec.h"

#include <optional>
#include <string>
#include <string_view>

namespace uspec {

/// Renders the whole set, one spec per line, in insertion order.
std::string serializeSpecs(const SpecSet &Specs, const StringInterner &Strings);

/// Parses one spec line ("RetSame(...)"/"RetArg(...)"). Returns nullopt on
/// malformed input. Names are interned into \p Strings.
std::optional<Spec> parseSpecLine(std::string_view Line,
                                  StringInterner &Strings);

/// Parses a whole document; stops at the first malformed line and reports
/// its 1-based number via \p ErrorLine (0 = success).
SpecSet parseSpecs(std::string_view Text, StringInterner &Strings,
                   size_t *ErrorLine = nullptr);

} // namespace uspec

#endif // USPEC_SPECS_SPECIO_H
