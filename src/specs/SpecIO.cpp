//===- SpecIO.cpp - Textual (de)serialization of specification sets -----------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "specs/SpecIO.h"

#include <cctype>

using namespace uspec;

std::string uspec::serializeSpecs(const SpecSet &Specs,
                                  const StringInterner &Strings) {
  std::string Out;
  Out += "# USpec aliasing specifications (" +
         std::to_string(Specs.size()) + ")\n";
  for (const Spec &S : Specs.all())
    Out += S.str(Strings) + "\n";
  return Out;
}

namespace {

/// A tiny cursor over the line.
struct Cursor {
  std::string_view Text;
  size_t Pos = 0;

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool eat(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool eatWord(std::string_view Word) {
    skipSpace();
    if (Text.substr(Pos, Word.size()) == Word) {
      Pos += Word.size();
      return true;
    }
    return false;
  }

  /// Reads an identifier-ish token (letters, digits, '_', '?').
  std::string_view ident() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_' || Text[Pos] == '?'))
      ++Pos;
    return Text.substr(Start, Pos - Start);
  }

  std::optional<unsigned> number() {
    skipSpace();
    size_t Start = Pos;
    unsigned Value = 0;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
      Value = Value * 10 + static_cast<unsigned>(Text[Pos] - '0');
      ++Pos;
    }
    if (Pos == Start)
      return std::nullopt;
    return Value;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }
};

/// Parses "Class.name/arity".
std::optional<MethodId> parseMethodId(Cursor &C, StringInterner &Strings) {
  std::string_view Class = C.ident();
  if (Class.empty())
    return std::nullopt;
  if (!C.eat('.'))
    return std::nullopt;
  std::string_view Name = C.ident();
  if (Name.empty())
    return std::nullopt;
  if (!C.eat('/'))
    return std::nullopt;
  auto Arity = C.number();
  if (!Arity || *Arity > 250)
    return std::nullopt;
  MethodId M;
  M.Class = Class == "?" ? Symbol() : Strings.intern(Class);
  M.Name = Strings.intern(Name);
  M.Arity = static_cast<uint8_t>(*Arity);
  return M;
}

} // namespace

std::optional<Spec> uspec::parseSpecLine(std::string_view Line,
                                         StringInterner &Strings) {
  Cursor C{Line};
  if (C.eatWord("RetSame")) {
    if (!C.eat('('))
      return std::nullopt;
    auto S = parseMethodId(C, Strings);
    if (!S || !C.eat(')') || !C.atEnd())
      return std::nullopt;
    return Spec::retSame(*S);
  }
  if (C.eatWord("RetRecv")) {
    if (!C.eat('('))
      return std::nullopt;
    auto S = parseMethodId(C, Strings);
    if (!S || !C.eat(')') || !C.atEnd())
      return std::nullopt;
    return Spec::retRecv(*S);
  }
  if (C.eatWord("RetArg")) {
    if (!C.eat('('))
      return std::nullopt;
    auto T = parseMethodId(C, Strings);
    if (!T || !C.eat(','))
      return std::nullopt;
    auto S = parseMethodId(C, Strings);
    if (!S || !C.eat(','))
      return std::nullopt;
    auto X = C.number();
    if (!X || *X < 1 || *X > 250 || !C.eat(')') || !C.atEnd())
      return std::nullopt;
    return Spec::retArg(*T, *S, static_cast<uint8_t>(*X));
  }
  return std::nullopt;
}

SpecSet uspec::parseSpecs(std::string_view Text, StringInterner &Strings,
                          size_t *ErrorLine) {
  SpecSet Specs;
  if (ErrorLine)
    *ErrorLine = 0;
  size_t LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string_view::npos)
      End = Text.size();
    std::string_view Line = Text.substr(Pos, End - Pos);
    ++LineNo;
    Pos = End + 1;

    // Trim, skip blanks and comments.
    size_t First = Line.find_first_not_of(" \t\r");
    if (First == std::string_view::npos) {
      if (End == Text.size())
        break;
      continue;
    }
    if (Line[First] == '#') {
      if (End == Text.size())
        break;
      continue;
    }
    auto S = parseSpecLine(Line, Strings);
    if (!S) {
      if (ErrorLine)
        *ErrorLine = LineNo;
      return Specs;
    }
    Specs.insert(*S);
    if (End == Text.size())
      break;
  }
  return Specs;
}
