//===- Spec.h - API aliasing specification types ---------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hypothesis class of API aliasing specifications (§5.1, Tab. 1):
///
///   RetSame(s)      — calling s multiple times with equal arguments and
///                     receiver may return the same object;
///   RetArg(t, s, x) — calling t may return the x-th argument of a preceding
///                     call of s on the same receiver where all other
///                     arguments are equal.
///
/// Methods are identified by (API class, name, arity) — our stand-in for the
/// paper's fully qualified name and signature. The API class is derived from
/// the receiver's allocation site type, or the wildcard class "?" when the
/// receiver itself came from an API call of unknown type.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_SPECS_SPEC_H
#define USPEC_SPECS_SPEC_H

#include "support/Hashing.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace uspec {

/// Identifies an API method: receiver class, method name, number of
/// arguments (excluding the receiver).
struct MethodId {
  Symbol Class;
  Symbol Name;
  uint8_t Arity = 0;

  friend bool operator==(const MethodId &A, const MethodId &B) {
    return A.Class == B.Class && A.Name == B.Name && A.Arity == B.Arity;
  }
  friend bool operator!=(const MethodId &A, const MethodId &B) {
    return !(A == B);
  }

  uint64_t hash() const { return hashValues(Class.id(), Name.id(), Arity); }

  /// Renders as "Class.name/arity".
  std::string str(const StringInterner &Strings) const;
};

/// One aliasing specification.
struct Spec {
  /// RetSame/RetArg are the paper's hypothesis class (Tab. 1); RetRecv is
  /// the experimental extension discussed in §5.3 ("our approach is
  /// fundamentally not restricted to these patterns"): calling s may return
  /// its receiver (fluent/builder APIs).
  enum class Kind : uint8_t { RetSame, RetArg, RetRecv };

  Kind TheKind = Kind::RetSame;
  MethodId Target; ///< The returning method: s for RetSame/RetRecv, t for
                   ///< RetArg.
  MethodId Source; ///< The storing method s (RetArg only).
  uint8_t ArgPos = 0; ///< x in RetArg (1-based argument position of Source).

  static Spec retSame(MethodId S) {
    Spec Result;
    Result.TheKind = Kind::RetSame;
    Result.Target = S;
    return Result;
  }

  static Spec retArg(MethodId T, MethodId S, uint8_t X) {
    Spec Result;
    Result.TheKind = Kind::RetArg;
    Result.Target = T;
    Result.Source = S;
    Result.ArgPos = X;
    return Result;
  }

  static Spec retRecv(MethodId S) {
    Spec Result;
    Result.TheKind = Kind::RetRecv;
    Result.Target = S;
    return Result;
  }

  friend bool operator==(const Spec &A, const Spec &B) {
    return A.TheKind == B.TheKind && A.Target == B.Target &&
           A.Source == B.Source && A.ArgPos == B.ArgPos;
  }

  uint64_t hash() const {
    return hashValues(static_cast<uint64_t>(TheKind), Target.hash(),
                      Source.hash(), ArgPos);
  }

  /// Renders as "RetSame(Map.get/1)" or "RetArg(Map.get/1, Map.put/2, 2)".
  std::string str(const StringInterner &Strings) const;
};

struct SpecHash {
  size_t operator()(const Spec &S) const { return S.hash(); }
};

struct MethodIdHash {
  size_t operator()(const MethodId &M) const { return M.hash(); }
};

/// A set of selected specifications with the lookup indexes the augmented
/// points-to analysis needs (§6.2): per-source RetArg specs (for ghost
/// writes) and RetSame membership (for ghost reads).
class SpecSet {
public:
  /// Inserts \p S; returns true if it was new.
  bool insert(const Spec &S);

  bool contains(const Spec &S) const { return Specs.count(S) > 0; }
  size_t size() const { return Specs.size(); }
  bool empty() const { return Specs.empty(); }

  /// True iff RetSame(M) ∈ S.
  bool hasRetSame(const MethodId &M) const {
    return RetSameIndex.count(M) > 0;
  }

  /// True iff RetRecv(M) ∈ S.
  bool hasRetRecv(const MethodId &M) const {
    return RetRecvIndex.count(M) > 0;
  }

  /// All RetArg specs whose source (storing) method is \p M.
  const std::vector<Spec> &retArgsBySource(const MethodId &M) const;

  /// All specs, in insertion order (deterministic iteration).
  const std::vector<Spec> &all() const { return Ordered; }

  /// Extends the set per §5.4 eq. (3): for every RetArg(t,s,x) add
  /// RetSame(t). Returns the number of specifications added.
  size_t extendConsistency();

private:
  std::unordered_set<Spec, SpecHash> Specs;
  std::vector<Spec> Ordered;
  std::unordered_set<MethodId, MethodIdHash> RetSameIndex;
  std::unordered_set<MethodId, MethodIdHash> RetRecvIndex;
  std::unordered_map<MethodId, std::vector<Spec>, MethodIdHash> BySource;
};

} // namespace uspec

#endif // USPEC_SPECS_SPEC_H
