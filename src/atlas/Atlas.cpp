//===- Atlas.cpp - Atlas-style dynamic specification baseline -----------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "atlas/Atlas.h"

#include "runtime/Runtime.h"

using namespace uspec;

namespace {

/// One synthesized test: a random call sequence against a fresh instance.
void runOneTest(const ApiRegistry &Registry, const ApiClass &Class,
                const AtlasConfig &Config, Rng &Rand,
                AtlasClassResult &Result) {
  ApiHeap Heap(Registry);
  RtValue Recv = Heap.allocObject(Class.Name);

  // Argument pool: fresh objects and small integers. No string constants —
  // the modeled §7.5 limitation.
  std::vector<RtValue> Pool;
  for (unsigned I = 0; I < Config.ArgPoolObjects; ++I)
    Pool.push_back(Heap.allocObject("testArg"));
  Pool.push_back(RtValue::ofInt(0));
  Pool.push_back(RtValue::ofInt(1));

  // Which pool values were passed to which method.
  struct PassedArg {
    RtValue Value;
    std::string Method;
  };
  std::vector<PassedArg> Passed;

  for (unsigned Call = 0; Call < Config.CallsPerTest; ++Call) {
    const ApiMethod &Method =
        Class.Methods[Rand.below(Class.Methods.size())];
    std::vector<RtValue> Args;
    for (unsigned A = 0; A < Method.Arity; ++A) {
      const RtValue &Arg = Pool[Rand.below(Pool.size())];
      Args.push_back(Arg);
      if (Arg.isObj())
        Passed.push_back({Arg, Method.Name});
    }
    RtValue Ret = Heap.callApi(Recv, Method, Args);

    AtlasMethodSummary &Summary = Result.Methods[Method.Name];
    if (!Ret.isObj())
      continue;
    Summary.ReturnsObjects = true;
    bool Aliased = false;
    for (const PassedArg &P : Passed) {
      if (P.Value == Ret) {
        Summary.MayReturnArgsOf.insert(P.Method);
        Aliased = true;
      }
    }
    if (Aliased)
      Summary.ReturnsFresh = false;
  }
}

} // namespace

std::vector<AtlasClassResult>
uspec::runAtlasBaseline(const ApiRegistry &Registry,
                        const AtlasConfig &Config) {
  std::vector<AtlasClassResult> Results;
  Rng Rand(Config.Seed);
  for (const ApiClass &Class : Registry.classes()) {
    AtlasClassResult Result;
    Result.Class = Class.Name;
    Result.Library = Class.Library;
    Result.ConstructorAvailable = Class.Constructible;
    if (Class.Constructible && !Class.Methods.empty()) {
      for (unsigned T = 0; T < Config.TestsPerClass; ++T)
        runOneTest(Registry, Class, Config, Rand, Result);
    }
    Results.push_back(std::move(Result));
  }
  return Results;
}

AtlasSoundness uspec::judgeAtlasClass(const ApiClass &Class,
                                      const AtlasClassResult &Result) {
  AtlasSoundness Verdict;
  for (const ApiMethod &Load : Class.Methods) {
    if (Load.Semantics != MethodSemantics::Load)
      continue;
    // Which stores feed this load?
    bool Covered = false;
    bool SummarizedFresh = false;
    auto It = Result.Methods.find(Load.Name);
    for (const ApiMethod &Store : Class.Methods) {
      if (Store.Semantics != MethodSemantics::Store)
        continue;
      bool Pairs = false;
      for (const std::string &L : Store.PairedLoads)
        Pairs |= L == Load.Name;
      if (!Pairs)
        continue;
      ++Verdict.LoadsTotal;
      if (It != Result.Methods.end() &&
          It->second.MayReturnArgsOf.count(Store.Name)) {
        Covered = true;
        ++Verdict.LoadsCovered;
      } else if (It != Result.Methods.end() && It->second.ReturnsFresh) {
        SummarizedFresh = true;
      } else if (It == Result.Methods.end()) {
        SummarizedFresh = true; // never even exercised
      }
    }
    if (!Covered && Verdict.LoadsTotal > 0)
      Verdict.AllLoadsCovered = false;
    if (SummarizedFresh && !Covered)
      Verdict.UnsoundFresh = true;
  }
  return Verdict;
}
