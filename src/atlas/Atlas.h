//===- Atlas.h - Atlas-style dynamic specification baseline ----*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A baseline in the style of Atlas [Bastani et al., PLDI 2018], the system
/// §7.5 compares against: it synthesizes unit tests against the (black-box)
/// library implementation, executes them, and infers points-to
/// specifications from observed aliasing between return values and
/// previously passed arguments.
///
/// The modeled characteristics from §7.5:
///  - argument-INSENSITIVE specifications: "reading from a collection may
///    alias with all values inserted", never RetSame/RetArg instantiations;
///  - classes without callable constructors (ResultSet, KeyStore, NodeList)
///    yield no specifications;
///  - synthesized tests pass objects and small integer constants but do not
///    enumerate string constants, so string-keyed classes (Properties,
///    JSONObject, ...) are unsoundly summarized as returning fresh objects.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_ATLAS_ATLAS_H
#define USPEC_ATLAS_ATLAS_H

#include "corpus/Api.h"
#include "support/Random.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace uspec {

/// Test synthesis budget.
struct AtlasConfig {
  unsigned TestsPerClass = 60;
  unsigned CallsPerTest = 10;
  unsigned ArgPoolObjects = 3;
  uint64_t Seed = 0xA71A5;
};

/// What Atlas concluded about one method.
struct AtlasMethodSummary {
  bool ReturnsObjects = false; ///< Ever observed returning an object.
  bool ReturnsFresh = true;    ///< Never observed aliasing anything.
  /// Methods whose arguments this method was observed to return
  /// (argument-insensitive flow specs).
  std::set<std::string> MayReturnArgsOf;
};

/// Atlas' verdict for one class.
struct AtlasClassResult {
  std::string Class;
  std::string Library;
  bool ConstructorAvailable = false;
  std::map<std::string, AtlasMethodSummary> Methods;

  /// True iff any flow spec was inferred.
  bool hasSpecs() const {
    for (const auto &[Name, Summary] : Methods)
      if (!Summary.MayReturnArgsOf.empty())
        return true;
    return false;
  }
};

/// Runs the Atlas-style baseline over every class of \p Registry.
std::vector<AtlasClassResult> runAtlasBaseline(const ApiRegistry &Registry,
                                               const AtlasConfig &Config);

/// Judges an Atlas class result against ground truth: for every Load method
/// of the class, Atlas is sound iff it discovered a flow from the paired
/// store (or the class has no loads). Returns {sound, unsoundFresh}:
/// unsoundFresh means a ground-truth Load was summarized as returning fresh
/// objects (the §7.5 Properties failure).
struct AtlasSoundness {
  bool AllLoadsCovered = true;
  bool UnsoundFresh = false;
  unsigned LoadsTotal = 0;
  unsigned LoadsCovered = 0;
};
AtlasSoundness judgeAtlasClass(const ApiClass &Class,
                               const AtlasClassResult &Result);

} // namespace uspec

#endif // USPEC_ATLAS_ATLAS_H
