//===- ConstraintSolver.h - Reference Andersen-style solver ----*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic, flow- and context-INSENSITIVE Andersen-style points-to solver
/// over the MiniLang IR: inclusion constraints with a worklist fixpoint and
/// dynamic edges for field accesses and method resolution [Andersen 1994].
///
/// It deliberately mirrors the main analysis' API model (fresh objects for
/// API returns) so it serves as an over-approximation *reference*: any
/// may-alias fact reported by the flow-sensitive analysis must also be
/// reported here (checked by differential property tests). It is also the
/// "less precise initial analysis" end of the §7.1 spectrum.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_POINTSTO_CONSTRAINTSOLVER_H
#define USPEC_POINTSTO_CONSTRAINTSOLVER_H

#include "ir/IR.h"
#include "pointsto/Object.h"
#include "support/Budget.h"
#include "support/StringInterner.h"

#include <unordered_map>

namespace uspec {

/// Result of the constraint solve.
struct ConstraintResult {
  ObjectTable Objects;
  /// Points-to set of every call site's return value, keyed by SiteId.
  std::unordered_map<uint32_t, ObjSet> RetPointsTo;
  /// Points-to set of every call site's receiver, keyed by SiteId.
  std::unordered_map<uint32_t, ObjSet> RecvPointsTo;
  /// Solver statistics.
  size_t NumNodes = 0;
  size_t NumEdges = 0;
  size_t Propagations = 0;
  /// True when the solve stopped early (step budget / deadline / injected
  /// exhaustion). The partial sets are an under-approximation, so every
  /// may-query degrades to ⊤ — sound, just imprecise (DESIGN.md §10).
  bool Bounded = false;

  bool retMayAlias(uint32_t SiteA, uint32_t SiteB) const {
    if (Bounded)
      return true;
    auto IA = RetPointsTo.find(SiteA), IB = RetPointsTo.find(SiteB);
    if (IA == RetPointsTo.end() || IB == RetPointsTo.end())
      return false;
    return objSetIntersects(IA->second, IB->second);
  }

  bool recvMayAlias(uint32_t SiteA, uint32_t SiteB) const {
    if (Bounded)
      return true;
    auto IA = RecvPointsTo.find(SiteA), IB = RecvPointsTo.find(SiteB);
    if (IA == RecvPointsTo.end() || IB == RecvPointsTo.end())
      return false;
    return objSetIntersects(IA->second, IB->second);
  }
};

/// Solves the whole program's inclusion constraints to a fixpoint. If \p B
/// is non-null, each propagation consumes one step; on exhaustion the solve
/// stops and the result is marked Bounded.
ConstraintResult solveConstraints(const IRProgram &Program,
                                  const StringInterner &Strings,
                                  Budget *B = nullptr);

} // namespace uspec

#endif // USPEC_POINTSTO_CONSTRAINTSOLVER_H
