//===- ConstraintSolver.cpp - Reference Andersen-style solver ------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "pointsto/ConstraintSolver.h"

#include "support/Arena.h"
#include "support/FaultInject.h"
#include "support/FlatMap.h"
#include "support/Trace.h"

using namespace uspec;

namespace {

using NodeId = uint32_t;

/// Worklist solver over inclusion constraints. Nodes are variables (one per
/// method slot, context-insensitive), field cells (object × field), and a
/// per-method return collector. Complex constraints (field access, method
/// dispatch) add edges dynamically as points-to sets grow.
///
/// Data layout (struct-of-arrays): points-to sets and successor sets are
/// parallel vectors of arena-backed PtsSets indexed by NodeId; node lookup
/// goes through open-addressed flat maps; the worklist is a flat vector
/// with a head cursor (same FIFO order as the old deque, no per-block
/// allocation). Propagation unions whole sets word-at-a-time instead of
/// re-inserting object-by-object — the fixpoint (and any budget-bounded
/// prefix of it, which stops only at pop boundaries) is unchanged.
class Solver {
public:
  Solver(const IRProgram &Program, const StringInterner &Strings,
         Budget *B = nullptr)
      : Program(Program), Strings(Strings), StepBudget(B) {}

  ConstraintResult run() {
    // Create frames and collect constraints from every method body.
    for (const IRClass &Class : Program.Classes)
      for (const IRMethod &Method : Class.Methods)
        buildMethod(Class, Method);

    solve();

    ConstraintResult Out;
    Out.Objects = std::move(Objects);
    Out.NumNodes = Pts.size();
    Out.NumEdges = EdgeCount;
    Out.Propagations = Propagations;
    Out.Bounded = Bounded;
    RetNodes.forEach([&](uint64_t Site, NodeId Node) {
      Out.RetPointsTo[static_cast<uint32_t>(Site)] = Pts[Node].toObjSet();
    });
    RecvNodes.forEach([&](uint64_t Site, NodeId Node) {
      Out.RecvPointsTo[static_cast<uint32_t>(Site)] = Pts[Node].toObjSet();
    });
    return Out;
  }

private:
  //===--------------------------------------------------------------------===//
  // Node management
  //===--------------------------------------------------------------------===//

  NodeId newNode() {
    Pts.emplace_back();
    Succ.emplace_back();
    return static_cast<NodeId>(Pts.size() - 1);
  }

  NodeId namedNode(uint64_t Key) {
    bool Inserted = false;
    NodeId &Slot = NodeIndex.getOrCreate(Key, &Inserted);
    if (!Inserted)
      return Slot;
    NodeId N = newNode();
    Slot = N;
    return N;
  }

  NodeId varNode(uint32_t ClassIdx, uint32_t MethodIdx, VarId Slot) {
    return namedNode(hashValues(1, ClassIdx, MethodIdx, Slot));
  }

  NodeId fieldNode(ObjectId Obj, Symbol Field) {
    return namedNode(hashValues(2, Obj, Field.id()));
  }

  /// Return-collector node of a program method.
  NodeId returnNode(uint32_t ClassIdx, uint32_t MethodIdx) {
    return namedNode(hashValues(3, ClassIdx, MethodIdx));
  }

  void addEdge(NodeId From, NodeId To) {
    if (From == To)
      return;
    if (!Succ[From].insert(To, Scratch))
      return; // Succ reused as sorted NodeId set
    ++EdgeCount;
    if (!Pts[From].empty())
      enqueue(From);
  }

  void addObject(NodeId Node, ObjectId Obj) {
    if (Pts[Node].insert(Obj, Scratch))
      enqueue(Node);
  }

  void enqueue(NodeId Node) {
    if (InList.size() <= Node)
      InList.resize(Node + 1, false);
    if (InList[Node])
      return;
    InList[Node] = true;
    Worklist.push_back(Node);
  }

  //===--------------------------------------------------------------------===//
  // Constraint generation
  //===--------------------------------------------------------------------===//

  struct PendingLoad {
    NodeId Base;
    Symbol Field;
    NodeId Dst;
  };
  struct PendingStore {
    NodeId Base;
    Symbol Field;
    NodeId Src;
  };
  /// Unresolved call: dispatch on the receiver's classes as they appear.
  struct PendingCall {
    NodeId Recv;
    Symbol Method;
    std::vector<NodeId> Args;
    NodeId Dst; // may be ~0u
    uint32_t Site;
  };

  void buildMethod(const IRClass &Class, const IRMethod &Method) {
    uint32_t ClassIdx = indexOfClass(Class);
    uint32_t MethodIdx = indexOfMethod(Class, Method);

    // Entry seeding: this = This(class); params unknown; externals global.
    NodeId ThisNode = varNode(ClassIdx, MethodIdx, 0);
    ObjectId ThisObj = Objects.getThisObject(Class.Name);
    addObject(ThisNode, ThisObj);
    for (uint32_t P = 0; P < Method.NumParams; ++P)
      addObject(varNode(ClassIdx, MethodIdx, 1 + P),
                Objects.getParamObject(Class.Name, Method.Name, P));
    for (const auto &[Slot, Name] : Method.Externals)
      addObject(varNode(ClassIdx, MethodIdx, Slot),
                Objects.getExternalObject(Name));

    buildBody(Method.Body, ClassIdx, MethodIdx);
  }

  void buildBody(const InstrList &Body, uint32_t ClassIdx,
                 uint32_t MethodIdx) {
    for (const Instr &I : Body) {
      auto Var = [&](VarId Slot) { return varNode(ClassIdx, MethodIdx, Slot); };
      switch (I.TheKind) {
      case Instr::Kind::Alloc:
        addObject(Var(I.Dst), Objects.getSiteObject(ObjectKind::New, I.SiteId,
                                                    0, I.Name));
        break;
      case Instr::Kind::Literal: {
        ObjectKind Kind = I.LitKind == LiteralKind::String
                              ? ObjectKind::LiteralStr
                              : (I.LitKind == LiteralKind::Int
                                     ? ObjectKind::LiteralInt
                                     : ObjectKind::LiteralNull);
        addObject(Var(I.Dst),
                  Objects.getSiteObject(Kind, I.SiteId, 0, I.StrValue));
        break;
      }
      case Instr::Kind::Copy:
        addEdge(Var(I.Src), Var(I.Dst));
        break;
      case Instr::Kind::LoadField:
        Loads.push_back({Var(I.Base), I.Name, Var(I.Dst)});
        enqueue(Var(I.Base));
        break;
      case Instr::Kind::StoreField:
        Stores.push_back({Var(I.Base), I.Name, Var(I.Src)});
        enqueue(Var(I.Base));
        break;
      case Instr::Kind::Call: {
        PendingCall Call;
        Call.Recv = Var(I.Base);
        Call.Method = I.Name;
        for (VarId Arg : I.Args)
          Call.Args.push_back(Var(Arg));
        Call.Dst = I.Dst == InvalidVar ? ~0u : Var(I.Dst);
        Call.Site = I.SiteId;
        // API fallback object: every call may be an API call (if any
        // receiver is not a program class); created lazily in dispatch.
        Calls.push_back(Call);
        {
          bool Inserted = false;
          NodeId &Slot = RecvNodes.getOrCreate(I.SiteId, &Inserted);
          if (Inserted)
            Slot = Call.Recv;
        }
        {
          bool Inserted = false;
          NodeId &Slot = RetNodes.getOrCreate(I.SiteId, &Inserted);
          if (Inserted)
            Slot = newNode();
          if (Call.Dst != ~0u)
            addEdge(Slot, Call.Dst);
        }
        enqueue(Call.Recv);
        break;
      }
      case Instr::Kind::If:
        buildBody(I.Inner1, ClassIdx, MethodIdx);
        buildBody(I.Inner2, ClassIdx, MethodIdx);
        break;
      case Instr::Kind::While:
        buildBody(I.Inner1, ClassIdx, MethodIdx);
        // Inner2 duplicates the pre-loop condition instructions; skip.
        break;
      case Instr::Kind::Return:
        if (I.Src != InvalidVar)
          addEdge(Var(I.Src), returnNode(ClassIdx, MethodIdx));
        break;
      }
    }
  }

  uint32_t indexOfClass(const IRClass &Class) {
    for (uint32_t I = 0; I < Program.Classes.size(); ++I)
      if (&Program.Classes[I] == &Class)
        return I;
    return 0;
  }

  uint32_t indexOfMethod(const IRClass &Class, const IRMethod &Method) {
    for (uint32_t I = 0; I < Class.Methods.size(); ++I)
      if (&Class.Methods[I] == &Method)
        return I;
    return 0;
  }

  //===--------------------------------------------------------------------===//
  // Dispatch
  //===--------------------------------------------------------------------===//

  /// Reacts to a receiver object appearing at a call: program-class methods
  /// get parameter/return edges; anything else makes the site an API call.
  void dispatch(const PendingCall &Call, ObjectId Recv) {
    uint64_t Done = hashValues(Call.Site, Recv, Call.Method.id());
    if (!Dispatched.insert(Done))
      return;

    const AbstractObject &AO = Objects.get(Recv);
    const IRClass *Callee = nullptr;
    if (AO.Kind == ObjectKind::New || AO.Kind == ObjectKind::This)
      Callee = Program.findClass(AO.Class);
    const IRMethod *Target =
        Callee ? Callee->findMethod(Call.Method) : nullptr;

    NodeId RetNode = *RetNodes.find(Call.Site);
    if (!Target) {
      // API call: fresh object per site (context-insensitive).
      addObject(RetNode, Objects.getSiteObject(ObjectKind::ApiRet, Call.Site,
                                               0, Symbol()));
      return;
    }

    uint32_t ClassIdx = 0, MethodIdx = 0;
    for (uint32_t I = 0; I < Program.Classes.size(); ++I)
      if (&Program.Classes[I] == Callee)
        ClassIdx = I;
    for (uint32_t I = 0; I < Callee->Methods.size(); ++I)
      if (&Callee->Methods[I] == Target)
        MethodIdx = I;

    addEdge(Call.Recv, varNode(ClassIdx, MethodIdx, 0));
    for (uint32_t P = 0; P < Target->NumParams && P < Call.Args.size(); ++P)
      addEdge(Call.Args[P], varNode(ClassIdx, MethodIdx, 1 + P));
    addEdge(returnNode(ClassIdx, MethodIdx), RetNode);
  }

  //===--------------------------------------------------------------------===//
  // Fixpoint
  //===--------------------------------------------------------------------===//

  void solve() {
    // One span per fixpoint plus one per outer round; the per-pop worklist
    // loop is deliberately unspanned — a probe there would cost an atomic
    // load per propagation even when tracing is off.
    TraceSpan FixpointSpan("solver.fixpoint");
    size_t Rounds = 0;
    bool Changed = true;
    while (Changed) {
      TraceSpan RoundSpan("solver.round");
      ++Rounds;
      Changed = false;
      while (WorklistHead < Worklist.size()) {
        // Cooperative bound: stop mid-fixpoint when the budget runs out or
        // the `solver.step` site injects simulated exhaustion. The partial
        // sets stay in the result but Bounded forces ⊤ answers.
        if ((StepBudget && !StepBudget->consume()) ||
            USPEC_FAULT_SOFT("solver.step")) {
          Bounded = true;
          return;
        }
        NodeId Node = Worklist[WorklistHead++];
        InList[Node] = false;
        ++Propagations;

        // Copy edges: union the whole source set into each successor. No
        // newNode() runs here, so Pts/Succ never reallocate mid-iteration.
        const PtsSet &SuccSet = Succ[Node];
        SuccSet.forEach([&](NodeId To) {
          if (Pts[To].unionWith(Pts[Node], Scratch))
            enqueue(To);
        });
        Changed = true;
      }
      Worklist.clear();
      WorklistHead = 0;
      // Complex constraints: re-examine with current points-to sets. The
      // bases are snapshotted because fieldNode/dispatch may create nodes,
      // reallocating the Pts vector (and with it inline small-set storage).
      for (const PendingLoad &L : Loads) {
        snapshot(Pts[L.Base]);
        for (ObjectId Obj : Snapshot)
          addEdge(fieldNode(Obj, L.Field), L.Dst);
      }
      for (const PendingStore &St : Stores) {
        snapshot(Pts[St.Base]);
        for (ObjectId Obj : Snapshot)
          addEdge(St.Src, fieldNode(Obj, St.Field));
      }
      for (const PendingCall &Call : Calls) {
        if (Pts[Call.Recv].empty()) {
          // Unknown receiver (e.g. null): still an API call.
          dispatchApiOnly(Call);
          continue;
        }
        snapshot(Pts[Call.Recv]);
        for (ObjectId Obj : Snapshot)
          dispatch(Call, Obj);
      }
      if (WorklistHead < Worklist.size())
        Changed = true;
    }
    if (FixpointSpan.active()) {
      FixpointSpan.arg("rounds", std::to_string(Rounds));
      FixpointSpan.arg("propagations", std::to_string(Propagations));
    }
  }

  void dispatchApiOnly(const PendingCall &Call) {
    uint64_t Done = hashValues(Call.Site, 0xFFFFFFFFu, Call.Method.id());
    if (!Dispatched.insert(Done))
      return;
    addObject(*RetNodes.find(Call.Site),
              Objects.getSiteObject(ObjectKind::ApiRet, Call.Site, 0,
                                    Symbol()));
  }

  void snapshot(const PtsSet &Set) {
    Snapshot.clear();
    Set.appendTo(Snapshot);
  }

  const IRProgram &Program;
  const StringInterner &Strings;

  ObjectTable Objects;
  Arena Scratch;                 ///< Owns all PtsSet storage below.
  std::vector<PtsSet> Pts;       ///< Per-node points-to sets.
  std::vector<PtsSet> Succ;      ///< Copy edges (sorted NodeId sets).
  FlatMap64<NodeId> NodeIndex;
  FlatMap64<NodeId> RetNodes;    ///< Keyed by call SiteId.
  FlatMap64<NodeId> RecvNodes;   ///< Keyed by call SiteId.
  std::vector<PendingLoad> Loads;
  std::vector<PendingStore> Stores;
  std::vector<PendingCall> Calls;
  FlatSet64 Dispatched;
  std::vector<NodeId> Worklist;  ///< FIFO via head cursor.
  size_t WorklistHead = 0;
  std::vector<ObjectId> Snapshot; ///< Reused base-set snapshot buffer.
  std::vector<bool> InList;
  size_t EdgeCount = 0;
  size_t Propagations = 0;
  Budget *StepBudget = nullptr;
  bool Bounded = false;
};

} // namespace

ConstraintResult uspec::solveConstraints(const IRProgram &Program,
                                         const StringInterner &Strings,
                                         Budget *B) {
  Solver S(Program, Strings, B);
  return S.run();
}
