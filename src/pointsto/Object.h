//===- Object.h - Abstract objects and points-to sets ----------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract objects for the points-to analysis (§3.2). The potentially
/// infinite set of runtime objects is partitioned by allocation site and
/// calling context:
///
///   New       — `new T()` allocation site,
///   This      — the receiver of an entry-point method (one per class),
///   ApiRet    — the fresh object assumed for an API call's return value,
///   Literal*  — string/int/null literal construction sites,
///   External  — a free global name (e.g. `db`) holding an unknown object,
///   Param     — an unknown argument of an entry-point method,
///   Ghost     — object allocated by the GhostR rule (§6.3) when a ghost
///               field is read before any write.
///
/// Points-to sets are sorted, deduplicated vectors of dense ObjectIds.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_POINTSTO_OBJECT_H
#define USPEC_POINTSTO_OBJECT_H

#include "support/Hashing.h"
#include "support/StringInterner.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace uspec {

using ObjectId = uint32_t;
inline constexpr ObjectId InvalidObject = ~static_cast<ObjectId>(0);

enum class ObjectKind : uint8_t {
  New,
  This,
  ApiRet,
  LiteralStr,
  LiteralInt,
  LiteralNull,
  External,
  Param,
  Ghost,
};

/// One abstract object.
struct AbstractObject {
  ObjectKind Kind = ObjectKind::New;
  /// Class name for New/This; empty otherwise.
  Symbol Class;
  /// Literal text for literals; the source name for External.
  Symbol Value;
  /// Allocation site for New/ApiRet/Literal objects (0 otherwise).
  uint32_t Site = 0;
  /// Calling context of the allocation (0 = entry context).
  uint32_t Ctx = 0;
  /// EventId of the allocation event (~0u when the object has none, e.g.
  /// External/Param/Ghost objects).
  uint32_t AllocEvent = ~0u;

  bool isLiteral() const {
    return Kind == ObjectKind::LiteralStr || Kind == ObjectKind::LiteralInt ||
           Kind == ObjectKind::LiteralNull;
  }
};

/// A points-to set: sorted vector of unique ObjectIds.
using ObjSet = std::vector<ObjectId>;

/// Inserts \p Obj into sorted set \p Set; returns true if it was new.
inline bool objSetInsert(ObjSet &Set, ObjectId Obj) {
  auto It = std::lower_bound(Set.begin(), Set.end(), Obj);
  if (It != Set.end() && *It == Obj)
    return false;
  Set.insert(It, Obj);
  return true;
}

/// Unions \p From into \p Into; returns true if \p Into grew.
inline bool objSetUnion(ObjSet &Into, const ObjSet &From) {
  if (From.empty())
    return false;
  if (Into.empty()) {
    Into = From;
    return true;
  }
  ObjSet Merged;
  Merged.reserve(Into.size() + From.size());
  std::set_union(Into.begin(), Into.end(), From.begin(), From.end(),
                 std::back_inserter(Merged));
  bool Grew = Merged.size() != Into.size();
  Into = std::move(Merged);
  return Grew;
}

/// True iff the two sets share an element (may-alias check).
inline bool objSetIntersects(const ObjSet &A, const ObjSet &B) {
  auto IA = A.begin(), IB = B.begin();
  while (IA != A.end() && IB != B.end()) {
    if (*IA == *IB)
      return true;
    if (*IA < *IB)
      ++IA;
    else
      ++IB;
  }
  return false;
}

/// Deduplicating table of abstract objects. Objects are keyed so that
/// re-analysis (outer field fixpoint iterations) reuses identical ids.
class ObjectTable {
public:
  /// New/Literal/ApiRet objects: keyed by (kind, site, ctx).
  ObjectId getSiteObject(ObjectKind Kind, uint32_t Site, uint32_t Ctx,
                         Symbol ClassOrValue) {
    uint64_t Key = hashValues(static_cast<uint64_t>(Kind), Site, Ctx);
    return getOrCreate(Key, [&] {
      AbstractObject Obj;
      Obj.Kind = Kind;
      if (Kind == ObjectKind::New)
        Obj.Class = ClassOrValue;
      else
        Obj.Value = ClassOrValue;
      Obj.Site = Site;
      Obj.Ctx = Ctx;
      return Obj;
    });
  }

  /// The `this` object of an entry method of class \p Class.
  ObjectId getThisObject(Symbol Class) {
    uint64_t Key = hashValues(1001, Class.id());
    return getOrCreate(Key, [&] {
      AbstractObject Obj;
      Obj.Kind = ObjectKind::This;
      Obj.Class = Class;
      return Obj;
    });
  }

  /// External global named \p Name (program-wide identity).
  ObjectId getExternalObject(Symbol Name) {
    uint64_t Key = hashValues(1002, Name.id());
    return getOrCreate(Key, [&] {
      AbstractObject Obj;
      Obj.Kind = ObjectKind::External;
      Obj.Value = Name;
      return Obj;
    });
  }

  /// Unknown parameter \p Index of entry method \p Class::\p Method.
  ObjectId getParamObject(Symbol Class, Symbol Method, uint32_t Index) {
    uint64_t Key = hashValues(1003, Class.id(), Method.id(), Index);
    return getOrCreate(Key, [&] {
      AbstractObject Obj;
      Obj.Kind = ObjectKind::Param;
      return Obj;
    });
  }

  /// Ghost object for field \p FieldKey of \p Owner (GhostR allocation).
  ObjectId getGhostObject(ObjectId Owner, uint64_t FieldKey) {
    uint64_t Key = hashValues(1004, Owner, FieldKey);
    return getOrCreate(Key, [&] {
      AbstractObject Obj;
      Obj.Kind = ObjectKind::Ghost;
      return Obj;
    });
  }

  const AbstractObject &get(ObjectId Id) const {
    assert(Id < Objects.size() && "invalid object id");
    return Objects[Id];
  }

  AbstractObject &get(ObjectId Id) {
    assert(Id < Objects.size() && "invalid object id");
    return Objects[Id];
  }

  size_t size() const { return Objects.size(); }

private:
  template <typename MakeFn> ObjectId getOrCreate(uint64_t Key, MakeFn Make) {
    auto It = Index.find(Key);
    if (It != Index.end())
      return It->second;
    ObjectId Id = static_cast<ObjectId>(Objects.size());
    Objects.push_back(Make());
    Index.emplace(Key, Id);
    return Id;
  }

  std::vector<AbstractObject> Objects;
  std::unordered_map<uint64_t, ObjectId> Index;
};

} // namespace uspec

#endif // USPEC_POINTSTO_OBJECT_H
