//===- Object.h - Abstract objects and points-to sets ----------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract objects for the points-to analysis (§3.2). The potentially
/// infinite set of runtime objects is partitioned by allocation site and
/// calling context:
///
///   New       — `new T()` allocation site,
///   This      — the receiver of an entry-point method (one per class),
///   ApiRet    — the fresh object assumed for an API call's return value,
///   Literal*  — string/int/null literal construction sites,
///   External  — a free global name (e.g. `db`) holding an unknown object,
///   Param     — an unknown argument of an entry-point method,
///   Ghost     — object allocated by the GhostR rule (§6.3) when a ghost
///               field is read before any write.
///
/// Two points-to set representations coexist:
///
///   ObjSet — sorted, deduplicated std::vector<ObjectId>. The result-facing
///            type: AnalysisResult/ConstraintResult keep these so clients
///            and tests see plain STL containers.
///   PtsSet — the analysis-internal small-set: up to SmallCap ids inline
///            (sorted array), promoted to a dense arena-backed bitset above
///            that. No heap traffic on the fixpoint path; whole-set union
///            is word-parallel in dense mode. Move-only; deep copies are
///            explicit via clone(Arena&).
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_POINTSTO_OBJECT_H
#define USPEC_POINTSTO_OBJECT_H

#include "support/Arena.h"
#include "support/FlatMap.h"
#include "support/Hashing.h"
#include "support/StringInterner.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

namespace uspec {

using ObjectId = uint32_t;
inline constexpr ObjectId InvalidObject = ~static_cast<ObjectId>(0);

enum class ObjectKind : uint8_t {
  New,
  This,
  ApiRet,
  LiteralStr,
  LiteralInt,
  LiteralNull,
  External,
  Param,
  Ghost,
};

/// One abstract object.
struct AbstractObject {
  ObjectKind Kind = ObjectKind::New;
  /// Class name for New/This; the owning class for Param; empty otherwise.
  Symbol Class;
  /// Literal text for literals; the source name for External; the method
  /// name for Param.
  Symbol Value;
  /// Allocation site for New/ApiRet/Literal objects; the parameter index
  /// for Param (0 otherwise).
  uint32_t Site = 0;
  /// Calling context of the allocation (0 = entry context).
  uint32_t Ctx = 0;
  /// EventId of the allocation event (~0u when the object has none, e.g.
  /// External/Param/Ghost objects).
  uint32_t AllocEvent = ~0u;

  bool isLiteral() const {
    return Kind == ObjectKind::LiteralStr || Kind == ObjectKind::LiteralInt ||
           Kind == ObjectKind::LiteralNull;
  }
};

/// A points-to set: sorted vector of unique ObjectIds.
using ObjSet = std::vector<ObjectId>;

/// Inserts \p Obj into sorted set \p Set; returns true if it was new.
inline bool objSetInsert(ObjSet &Set, ObjectId Obj) {
  auto It = std::lower_bound(Set.begin(), Set.end(), Obj);
  if (It != Set.end() && *It == Obj)
    return false;
  Set.insert(It, Obj);
  return true;
}

/// Unions \p From into \p Into; returns true if \p Into grew. The common
/// fixpoint case is From ⊆ Into (re-propagation of already-known facts): it
/// is detected with one sorted scan and causes no allocation. Safe when
/// \p Into and \p From alias the same set (a self-union never grows).
inline bool objSetUnion(ObjSet &Into, const ObjSet &From) {
  if (From.empty() || &Into == &From)
    return false;
  if (Into.empty()) {
    Into = From;
    return true;
  }
  if (std::includes(Into.begin(), Into.end(), From.begin(), From.end()))
    return false;
  ObjSet Merged;
  Merged.reserve(Into.size() + From.size());
  std::set_union(Into.begin(), Into.end(), From.begin(), From.end(),
                 std::back_inserter(Merged));
  Into = std::move(Merged);
  return true;
}

/// True iff the two sets share an element (may-alias check).
inline bool objSetIntersects(const ObjSet &A, const ObjSet &B) {
  auto IA = A.begin(), IB = B.begin();
  while (IA != A.end() && IB != B.end()) {
    if (*IA == *IB)
      return true;
    if (*IA < *IB)
      ++IA;
    else
      ++IB;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// PtsSet — arena-backed small-set representation
//===----------------------------------------------------------------------===//

/// Analysis-internal points-to set. Representation:
///
///   small (Words == 0): Count ids sorted ascending in the inline array —
///     covers the overwhelming majority of sets (most variables point to
///     one or two abstract objects), with zero indirection;
///   dense (Words > 0): an arena-owned bitset of Words × 64 bits with
///     Count tracking the population, entered on the first insert past
///     SmallCap and never left.
///
/// All iteration is ascending-id order in both modes, so any sequence the
/// driver derives from a PtsSet matches what the sorted-vector ObjSet
/// produced — the bit-identity contract of the refactor rests on this.
/// Memory is arena-owned: PtsSet never frees; dropping a set is O(1) and
/// reclaim happens at arena reset. Move-only; copies must be explicit
/// (clone) because a shallow copy would share dense words.
class PtsSet {
public:
  static constexpr uint32_t SmallCap = 6;

  PtsSet() { U.Bits = nullptr; }
  PtsSet(const PtsSet &) = delete;
  PtsSet &operator=(const PtsSet &) = delete;

  PtsSet(PtsSet &&O) noexcept : U(O.U), Count(O.Count), Words(O.Words) {
    O.Count = 0;
    O.Words = 0;
  }
  PtsSet &operator=(PtsSet &&O) noexcept {
    U = O.U;
    Count = O.Count;
    Words = O.Words;
    O.Count = 0;
    O.Words = 0;
    return *this;
  }

  uint32_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  bool isDense() const { return Words != 0; }

  /// Drops all elements. Dense storage is abandoned to the arena.
  void clear() {
    Count = 0;
    Words = 0;
  }

  /// Makes this the singleton {Obj} (the dominant assignment in the
  /// driver: x = new T(), x = literal, fresh API returns).
  void assignSingle(ObjectId Obj) {
    Count = 1;
    Words = 0;
    U.Small[0] = Obj;
  }

  bool contains(ObjectId Obj) const {
    if (Words == 0) {
      for (uint32_t I = 0; I < Count; ++I)
        if (U.Small[I] == Obj)
          return true;
      return false;
    }
    uint32_t W = Obj >> 6;
    return W < Words && (U.Bits[W] >> (Obj & 63)) & 1;
  }

  /// Inserts \p Obj; returns true if it was new.
  bool insert(ObjectId Obj, Arena &A) {
    if (Words == 0) {
      uint32_t I = 0;
      while (I < Count && U.Small[I] < Obj)
        ++I;
      if (I < Count && U.Small[I] == Obj)
        return false;
      if (Count < SmallCap) {
        for (uint32_t J = Count; J > I; --J)
          U.Small[J] = U.Small[J - 1];
        U.Small[I] = Obj;
        ++Count;
        return true;
      }
      promote(Obj + 1, A);
    }
    ensureBits(Obj, A);
    uint64_t &W = U.Bits[Obj >> 6];
    uint64_t Bit = uint64_t(1) << (Obj & 63);
    if (W & Bit)
      return false;
    W |= Bit;
    ++Count;
    return true;
  }

  /// Unions \p From into this set; returns true if this set grew. Dense ∪
  /// dense is word-parallel. A self-union is a no-op.
  bool unionWith(const PtsSet &From, Arena &A) {
    if (From.Count == 0 || this == &From)
      return false;
    if (From.Words == 0) {
      bool Grew = false;
      for (uint32_t I = 0; I < From.Count; ++I)
        Grew |= insert(From.U.Small[I], A);
      return Grew;
    }
    if (Words == 0)
      promote(From.Words * 64, A);
    else if (Words < From.Words)
      ensureBits(From.Words * 64 - 1, A);
    bool Grew = false;
    for (uint32_t W = 0; W < From.Words; ++W) {
      uint64_t Added = From.U.Bits[W] & ~U.Bits[W];
      if (Added) {
        U.Bits[W] |= Added;
        Count += static_cast<uint32_t>(__builtin_popcountll(Added));
        Grew = true;
      }
    }
    return Grew;
  }

  /// True iff the two sets share an element (may-alias check).
  bool intersects(const PtsSet &Other) const {
    if (Count == 0 || Other.Count == 0)
      return false;
    if (Words != 0 && Other.Words != 0) {
      uint32_t W = Words < Other.Words ? Words : Other.Words;
      for (uint32_t I = 0; I < W; ++I)
        if (U.Bits[I] & Other.U.Bits[I])
          return true;
      return false;
    }
    // At least one side is small: probe it against the other.
    const PtsSet &Small = Words == 0 ? *this : Other;
    const PtsSet &Big = Words == 0 ? Other : *this;
    for (uint32_t I = 0; I < Small.Count; ++I)
      if (Big.contains(Small.U.Small[I]))
        return true;
    return false;
  }

  /// Visits elements in ascending id order (both modes).
  template <typename Fn> void forEach(Fn F) const {
    if (Words == 0) {
      for (uint32_t I = 0; I < Count; ++I)
        F(U.Small[I]);
      return;
    }
    for (uint32_t W = 0; W < Words; ++W) {
      uint64_t Bits = U.Bits[W];
      while (Bits) {
        F(static_cast<ObjectId>((W << 6) +
                                static_cast<uint32_t>(__builtin_ctzll(Bits))));
        Bits &= Bits - 1;
      }
    }
  }

  /// Appends the elements, ascending, to \p Out.
  void appendTo(ObjSet &Out) const {
    forEach([&Out](ObjectId Obj) { Out.push_back(Obj); });
  }

  /// Materializes to the result-facing sorted-vector representation.
  ObjSet toObjSet() const {
    ObjSet Out;
    Out.reserve(Count);
    appendTo(Out);
    return Out;
  }

  /// Explicit deep copy; dense words are duplicated into \p A.
  PtsSet clone(Arena &A) const {
    PtsSet C;
    C.Count = Count;
    C.Words = Words;
    if (Words == 0)
      C.U = U;
    else {
      C.U.Bits = A.allocArray<uint64_t>(Words);
      std::memcpy(C.U.Bits, U.Bits, size_t(Words) * sizeof(uint64_t));
    }
    return C;
  }

private:
  /// Switches to dense mode with room for at least \p NeedBits bits.
  void promote(uint32_t NeedBits, Arena &A) {
    ObjectId Tmp[SmallCap];
    std::memcpy(Tmp, U.Small, sizeof(Tmp));
    uint32_t MaxBit = NeedBits;
    if (Count && Tmp[Count - 1] + 1 > MaxBit)
      MaxBit = Tmp[Count - 1] + 1;
    uint32_t W = (MaxBit + 63) / 64;
    if (W < 4)
      W = 4; // ≥256 bits so a typical program never regrows
    U.Bits = A.allocArrayZeroed<uint64_t>(W);
    Words = W;
    for (uint32_t I = 0; I < Count; ++I)
      U.Bits[Tmp[I] >> 6] |= uint64_t(1) << (Tmp[I] & 63);
  }

  /// Grows the dense bitset to cover \p Obj. Old words are abandoned to the
  /// arena (reclaimed at reset).
  void ensureBits(ObjectId Obj, Arena &A) {
    uint32_t Need = (Obj >> 6) + 1;
    if (Need <= Words)
      return;
    uint32_t W = Words * 2;
    if (W < Need)
      W = Need;
    uint64_t *Bits = A.allocArrayZeroed<uint64_t>(W);
    std::memcpy(Bits, U.Bits, size_t(Words) * sizeof(uint64_t));
    U.Bits = Bits;
    Words = W;
  }

  union Rep {
    ObjectId Small[SmallCap];
    uint64_t *Bits;
  } U;
  uint32_t Count = 0;
  uint32_t Words = 0; ///< 0 = small mode; else dense word count.
};

/// objSet* overloads so ConstraintSolver/Analysis switch representations
/// without changing call shapes.
inline bool objSetInsert(PtsSet &Set, ObjectId Obj, Arena &A) {
  return Set.insert(Obj, A);
}
inline bool objSetUnion(PtsSet &Into, const PtsSet &From, Arena &A) {
  return Into.unionWith(From, A);
}
inline bool objSetIntersects(const PtsSet &A, const PtsSet &B) {
  return A.intersects(B);
}

//===----------------------------------------------------------------------===//
// ObjectTable
//===----------------------------------------------------------------------===//

/// Deduplicating table of abstract objects. Objects are keyed so that
/// re-analysis (outer field fixpoint iterations) reuses identical ids.
class ObjectTable {
public:
  /// New/Literal/ApiRet objects: keyed by (kind, site, ctx, symbol). The
  /// symbol is part of the key so two creations at the same site cannot
  /// silently merge under different class/value labels; site ids are unique
  /// per instruction, so for well-formed IR this allocates exactly the same
  /// ids as the old (kind, site, ctx) key.
  ObjectId getSiteObject(ObjectKind Kind, uint32_t Site, uint32_t Ctx,
                         Symbol ClassOrValue) {
    uint64_t Key =
        hashValues(static_cast<uint64_t>(Kind), Site, Ctx, ClassOrValue.id());
    return getOrCreate(Key, [&] {
      AbstractObject Obj;
      Obj.Kind = Kind;
      if (Kind == ObjectKind::New)
        Obj.Class = ClassOrValue;
      else
        Obj.Value = ClassOrValue;
      Obj.Site = Site;
      Obj.Ctx = Ctx;
      return Obj;
    });
  }

  /// The `this` object of an entry method of class \p Class.
  ObjectId getThisObject(Symbol Class) {
    uint64_t Key = hashValues(1001, Class.id());
    return getOrCreate(Key, [&] {
      AbstractObject Obj;
      Obj.Kind = ObjectKind::This;
      Obj.Class = Class;
      return Obj;
    });
  }

  /// External global named \p Name (program-wide identity).
  ObjectId getExternalObject(Symbol Name) {
    uint64_t Key = hashValues(1002, Name.id());
    return getOrCreate(Key, [&] {
      AbstractObject Obj;
      Obj.Kind = ObjectKind::External;
      Obj.Value = Name;
      return Obj;
    });
  }

  /// Unknown parameter \p Index of entry method \p Class::\p Method. The
  /// object records its origin (Class/Value=method/Site=index) so
  /// diagnostics and toDot can distinguish parameter objects; dispatch
  /// never consults these fields for Param objects (receiverClass and the
  /// reference solver both gate on Kind ∈ {New, This} first).
  ObjectId getParamObject(Symbol Class, Symbol Method, uint32_t Index) {
    uint64_t Key = hashValues(1003, Class.id(), Method.id(), Index);
    return getOrCreate(Key, [&] {
      AbstractObject Obj;
      Obj.Kind = ObjectKind::Param;
      Obj.Class = Class;
      Obj.Value = Method;
      Obj.Site = Index;
      return Obj;
    });
  }

  /// Ghost object for field \p FieldKey of \p Owner (GhostR allocation).
  ObjectId getGhostObject(ObjectId Owner, uint64_t FieldKey) {
    uint64_t Key = hashValues(1004, Owner, FieldKey);
    return getOrCreate(Key, [&] {
      AbstractObject Obj;
      Obj.Kind = ObjectKind::Ghost;
      return Obj;
    });
  }

  const AbstractObject &get(ObjectId Id) const {
    assert(Id < Objects.size() && "invalid object id");
    return Objects[Id];
  }

  AbstractObject &get(ObjectId Id) {
    assert(Id < Objects.size() && "invalid object id");
    return Objects[Id];
  }

  size_t size() const { return Objects.size(); }

private:
  template <typename MakeFn> ObjectId getOrCreate(uint64_t Key, MakeFn Make) {
    bool Inserted = false;
    ObjectId &Slot = Index.getOrCreate(Key, &Inserted);
    if (!Inserted)
      return Slot;
    ObjectId Id = static_cast<ObjectId>(Objects.size());
    Objects.push_back(Make());
    Slot = Id;
    return Id;
  }

  std::vector<AbstractObject> Objects;
  FlatMap64<ObjectId> Index;
};

} // namespace uspec

#endif // USPEC_POINTSTO_OBJECT_H
