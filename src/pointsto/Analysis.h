//===- Analysis.h - Flow/context-sensitive points-to analysis --*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The points-to analysis of §3.2/§6: flow-sensitive within methods,
/// context-sensitive through bounded inlining of program-defined methods,
/// field-sensitive with a global (flow-insensitive) field store, and with
/// single loop unrolling. It simultaneously records abstract histories
/// (sequences of API interaction events per abstract object), which the
/// event-graph module turns into the event graph GP.
///
/// Two modes:
///  - API-unaware (§3.2): every API call returns a fresh abstract object.
///    This is the baseline and the mode used when learning specifications.
///  - API-aware (§6): a SpecSet drives ghost-field reads/writes implementing
///    the GhostR/GhostW deduction rules of Tab. 2, optionally with the ⊤/⊥
///    coverage extension of §6.4/App. A.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_POINTSTO_ANALYSIS_H
#define USPEC_POINTSTO_ANALYSIS_H

#include "ir/IR.h"
#include "pointsto/Event.h"
#include "pointsto/Object.h"
#include "specs/Spec.h"
#include "support/Budget.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace uspec {

/// Tuning knobs for the analysis.
struct AnalysisOptions {
  /// Use ghost fields driven by \c Specs (§6). When false, API calls always
  /// return fresh objects (§3.2).
  bool ApiAware = false;
  /// The learned specification set (required when ApiAware).
  const SpecSet *Specs = nullptr;
  /// Enable the ⊤/⊥ unknown-ghost-field extension (§6.4, App. A).
  bool CoverageExtension = false;
  /// Maximum call-string depth for inlining program-defined methods.
  unsigned InlineDepth = 3;
  /// Maximum number of concrete histories kept per abstract object.
  unsigned HistoryCap = 16;
  /// Outer passes over all entry methods (fixpoint for the field store).
  unsigned OuterIterations = 2;
  /// Cap on the cartesian product of ghost-field name tuples per call.
  unsigned MaxGhostTuples = 8;
  /// Optional step/deadline budget. Each interpreted instruction and each
  /// solver propagation consumes one step; on exhaustion the analysis stops
  /// early and the result is marked Bounded. Not owned; may be null.
  Budget *StepBudget = nullptr;
};

//===----------------------------------------------------------------------===//
// Value tags (the paper's V: literal values and object identities)
//===----------------------------------------------------------------------===//

/// Tagged value of a string/int literal (literals with equal text and kind
/// compare equal program-wide).
uint64_t literalValueTag(LitClass Kind, Symbol Text);

/// Tagged identity of a New/This object.
uint64_t objectValueTag(ObjectId Obj);

//===----------------------------------------------------------------------===//
// Field keys
//===----------------------------------------------------------------------===//

/// Key of regular field \p Field of \p Owner in the field store.
uint64_t regularFieldKey(ObjectId Owner, Symbol Field);

/// Key of the ghost field (Reader, v1..vk) of \p Owner (§6.2: the first
/// component of a ghost field name is the method supposed to read it).
uint64_t ghostFieldKey(ObjectId Owner, const MethodId &Reader,
                       const std::vector<uint64_t> &Values);

/// Key of the ⊤ field of \p Owner for \p Reader (App. A).
uint64_t ghostTopKey(ObjectId Owner, const MethodId &Reader);

/// Key of the ⊥ field of \p Owner for \p Reader (App. A).
uint64_t ghostBotKey(ObjectId Owner, const MethodId &Reader);

//===----------------------------------------------------------------------===//
// Results
//===----------------------------------------------------------------------===//

/// Everything the analysis computed for one program.
struct AnalysisResult {
  ObjectTable Objects;
  EventTable Events;
  /// Final abstract histories, indexed by ObjectId (entries may be empty).
  std::vector<HistorySet> Histories;
  /// Field store: regular and ghost fields, keyed by the functions above.
  std::unordered_map<uint64_t, ObjSet> Fields;
  /// Per ApiCall return event: the points-to set assigned to the call's
  /// destination (what ρ(x) received at `x = y.m(...)`). Keyed by EventId of
  /// the ret event. This is the primary client-facing may-alias payload.
  std::unordered_map<EventId, ObjSet> RetPointsTo;
  /// Value tag of each object that has one (literals, New, This).
  std::unordered_map<ObjectId, uint64_t> ObjectValues;
  /// True when the analysis stopped early on budget exhaustion or injected
  /// fault. Partial facts are an under-approximation, so may-queries degrade
  /// to ⊤ (DESIGN.md §10).
  bool Bounded = false;

  const HistorySet &historiesOf(ObjectId Obj) const {
    static const HistorySet Empty;
    return Obj < Histories.size() ? Histories[Obj] : Empty;
  }

  /// May-alias between two ret events based on their assigned points-to
  /// sets. Events without recorded sets never alias — unless the analysis
  /// was Bounded, in which case every pair may alias (sound ⊤).
  bool retMayAlias(EventId A, EventId B) const {
    if (Bounded)
      return true;
    auto IA = RetPointsTo.find(A), IB = RetPointsTo.find(B);
    if (IA == RetPointsTo.end() || IB == RetPointsTo.end())
      return false;
    return objSetIntersects(IA->second, IB->second);
  }
};

/// Runs the analysis on \p Program. \p Strings must be the interner used at
/// lowering time; it is not mutated, so independent programs may be
/// analyzed concurrently.
AnalysisResult analyzeProgram(const IRProgram &Program,
                              const StringInterner &Strings,
                              const AnalysisOptions &Options);

} // namespace uspec

#endif // USPEC_POINTSTO_ANALYSIS_H
