//===- Event.h - API interaction events ------------------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Events (§3.1): an event is a pair ⟨m, x⟩ of a call site m (with calling
/// context) and a position x ∈ {0..nargs} ∪ {ret}. We additionally record
/// allocation events ⟨newT, ret⟩ and literal construction events ⟨lc, ret⟩.
/// Events are deduplicated per program in an EventTable; dense EventIds feed
/// histories, the event graph and the feature extractor.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_POINTSTO_EVENT_H
#define USPEC_POINTSTO_EVENT_H

#include "specs/Spec.h"
#include "support/FlatMap.h"
#include "support/Hashing.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace uspec {

using EventId = uint32_t;
inline constexpr EventId InvalidEvent = ~static_cast<EventId>(0);

/// Position of an object in a call: 0 = receiver, 1..n = argument,
/// PosRet = return value.
using EventPos = uint8_t;
inline constexpr EventPos PosReceiver = 0;
inline constexpr EventPos PosRet = 0xFF;

/// How the event arose.
enum class EventKind : uint8_t {
  ApiCall,   ///< Receiver/argument/return of an API method call.
  NewAlloc,  ///< ⟨newT, ret⟩ at an allocation statement.
  LitAlloc,  ///< ⟨lc, ret⟩ at a literal occurrence.
  RootAlloc, ///< Synthetic origin of an external/param/this object, so that
             ///< distinct unknown receivers have distinct allocation events.
};

/// Kind of a literal for LitAlloc events (used by feature γ).
enum class LitClass : uint8_t { NotLiteral, Str, Int, Null };

/// One event ⟨m, x⟩.
struct Event {
  EventKind Kind = EventKind::ApiCall;
  /// IR site id of the call/allocation/literal.
  uint32_t Site = 0;
  /// Calling context of the site (0 = entry).
  uint32_t Ctx = 0;
  /// Position: PosReceiver, 1..n, or PosRet.
  EventPos Pos = PosRet;
  /// For ApiCall: the method identifier id(m) (class, name, arity).
  /// For NewAlloc: Name = class symbol. For LitAlloc: Name = empty.
  MethodId Method;
  /// Innermost guard region of the site (0 = unguarded); feeds feature γ.
  uint32_t Guard = 0;
  /// Literal kind for LitAlloc events.
  LitClass Lit = LitClass::NotLiteral;

  bool isRet() const { return Pos == PosRet; }
};

/// Deduplicating event table; (Site, Ctx, Pos) is the identity.
class EventTable {
public:
  EventId getOrCreate(const Event &E) {
    uint64_t Key = hashValues(E.Site, E.Ctx, E.Pos);
    bool Inserted = false;
    EventId &Slot = Index.getOrCreate(Key, &Inserted);
    if (!Inserted)
      return Slot;
    EventId Id = static_cast<EventId>(Events.size());
    Events.push_back(E);
    Slot = Id;
    return Id;
  }

  /// Looks up an existing event; returns InvalidEvent if absent.
  EventId find(uint32_t Site, uint32_t Ctx, EventPos Pos) const {
    const EventId *Slot = Index.find(hashValues(Site, Ctx, Pos));
    return Slot ? *Slot : InvalidEvent;
  }

  const Event &get(EventId Id) const {
    assert(Id < Events.size() && "invalid event id");
    return Events[Id];
  }

  size_t size() const { return Events.size(); }

private:
  std::vector<Event> Events;
  FlatMap64<EventId> Index;
};

/// A set of concrete histories for one abstract object: each history is an
/// ordered event sequence; joins take set union; single loop unrolling
/// bounds the length (§3.2).
using History = std::vector<EventId>;
using HistorySet = std::vector<History>;

} // namespace uspec

#endif // USPEC_POINTSTO_EVENT_H
