//===- Analysis.cpp - Flow/context-sensitive points-to analysis -------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "pointsto/Analysis.h"

#include "support/Arena.h"
#include "support/FaultInject.h"
#include "support/FlatMap.h"
#include "support/Trace.h"

#include <algorithm>

using namespace uspec;

//===----------------------------------------------------------------------===//
// Value tags and field keys
//===----------------------------------------------------------------------===//

uint64_t uspec::literalValueTag(LitClass Kind, Symbol Text) {
  return hashValues(0xA11CEULL, static_cast<uint64_t>(Kind), Text.id());
}

uint64_t uspec::objectValueTag(ObjectId Obj) {
  return hashValues(0x0B7ECULL, Obj);
}

uint64_t uspec::regularFieldKey(ObjectId Owner, Symbol Field) {
  return hashValues(0xF1E1DULL, Owner, Field.id());
}

uint64_t uspec::ghostFieldKey(ObjectId Owner, const MethodId &Reader,
                              const std::vector<uint64_t> &Values) {
  uint64_t Key = hashValues(0x6405ULL, Owner, Reader.hash());
  for (uint64_t V : Values)
    Key = hashCombine(Key, V);
  return Key;
}

uint64_t uspec::ghostTopKey(ObjectId Owner, const MethodId &Reader) {
  return hashValues(0x709ULL, Owner, Reader.hash());
}

uint64_t uspec::ghostBotKey(ObjectId Owner, const MethodId &Reader) {
  return hashValues(0xB07ULL, Owner, Reader.hash());
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

namespace {

/// Synthetic site ids for root allocation events live above real site ids.
constexpr uint32_t SyntheticSiteBase = 0x40000000;

/// The interpreter's flow state is data-oriented: variable frames and the
/// working field store hold arena-backed PtsSets (inline small sets /
/// dense bitsets), so branch joins and field unions run without heap
/// traffic and the per-program teardown is one arena reset. History
/// tracking (order-sensitive, feeds the event graph) stays on STL vectors
/// untouched. Working stores are materialized into the STL result maps
/// exactly once, when the run finishes.
class AnalysisDriver {
public:
  AnalysisDriver(const IRProgram &Program, const StringInterner &Strings,
                 const AnalysisOptions &Options, Arena &Scratch)
      : Program(Program), Strings(Strings), Opts(Options), A(Scratch) {
    assert((!Opts.ApiAware || Opts.Specs) &&
           "API-aware mode requires a specification set");
  }

  AnalysisResult run() {
    // One span per driver run; per-method frames are deliberately unspanned
    // (a probe there would fire thousands of times per program).
    TraceSpan Span("analysis.run");
    if (Span.active()) {
      size_t Methods = 0;
      for (const IRClass &Class : Program.Classes)
        Methods += Class.Methods.size();
      Span.arg("classes", std::to_string(Program.Classes.size()));
      Span.arg("methods", std::to_string(Methods));
    }
    for (unsigned Iter = 0;
         Iter < std::max(1u, Opts.OuterIterations) && !Exhausted; ++Iter) {
      bool LastIter = Iter + 1 == std::max(1u, Opts.OuterIterations);
      for (const IRClass &Class : Program.Classes) {
        for (const IRMethod &Method : Class.Methods) {
          Flow F;
          Frame Entry = setupEntryFrame(Class, Method, F);
          analyzeBody(Method.Body, Entry, F, /*Depth=*/0);
          // Bounded runs still merge what they saw: the histories/events are
          // genuine, just incomplete, and R.Bounded forces ⊤ alias answers.
          if (LastIter || Exhausted)
            mergeIntoResult(F);
          if (Exhausted) {
            R.Bounded = true;
            return finish();
          }
        }
      }
    }
    return finish();
  }

private:
  //===--------------------------------------------------------------------===//
  // Flow state
  //===--------------------------------------------------------------------===//

  /// Flow-sensitive part of the state shared down the inline stack:
  /// per-object abstract histories.
  struct Flow {
    std::vector<HistorySet> His;

    HistorySet &of(ObjectId Obj) {
      if (Obj >= His.size())
        His.resize(Obj + 1);
      return His[Obj];
    }
  };

  /// One method activation (entry or inlined call). Move-only (PtsSets);
  /// branch-join copies go through cloneFrame.
  struct Frame {
    const IRMethod *Method = nullptr;
    std::vector<PtsSet> Vars;
    PtsSet Ret;
    uint32_t Ctx = 0;
  };

  Frame cloneFrame(const Frame &Fr) {
    Frame C;
    C.Method = Fr.Method;
    C.Ctx = Fr.Ctx;
    C.Vars.reserve(Fr.Vars.size());
    for (const PtsSet &S : Fr.Vars)
      C.Vars.push_back(S.clone(A));
    C.Ret = Fr.Ret.clone(A);
    return C;
  }

  Frame setupEntryFrame(const IRClass &Class, const IRMethod &Method,
                        Flow &F) {
    Frame Entry;
    Entry.Method = &Method;
    Entry.Ctx = 0;
    Entry.Vars.resize(Method.NumVars);

    ObjectId This = R.Objects.getThisObject(Class.Name);
    noteObjectValue(This, objectValueTag(This));
    // Root-event labels reuse already-interned symbols so the analysis never
    // mutates the interner (enables parallel corpus analysis).
    seedRoot(F, This, Class.Name);
    Entry.Vars[0].assignSingle(This);

    for (uint32_t P = 0; P < Method.NumParams; ++P) {
      ObjectId Param = R.Objects.getParamObject(Class.Name, Method.Name, P);
      seedRoot(F, Param, Method.Name);
      Entry.Vars[1 + P].assignSingle(Param);
    }
    seedExternals(Method, Entry, F);
    return Entry;
  }

  void seedExternals(const IRMethod &Method, Frame &Fr, Flow &F) {
    for (const auto &[Slot, Name] : Method.Externals) {
      ObjectId Ext = R.Objects.getExternalObject(Name);
      seedRoot(F, Ext, Name);
      if (Slot >= Fr.Vars.size())
        Fr.Vars.resize(Slot + 1);
      Fr.Vars[Slot].assignSingle(Ext);
    }
  }

  /// Gives \p Obj a synthetic root allocation event (if it has none) and
  /// seeds its history.
  void seedRoot(Flow &F, ObjectId Obj, Symbol Label) {
    AbstractObject &AO = R.Objects.get(Obj);
    if (AO.AllocEvent == InvalidEvent) {
      Event E;
      E.Kind = EventKind::RootAlloc;
      E.Site = SyntheticSiteBase + Obj;
      E.Ctx = 0;
      E.Pos = PosRet;
      E.Method.Name = Label;
      AO.AllocEvent = R.Events.getOrCreate(E);
    }
    HistorySet &His = F.of(Obj);
    if (His.empty())
      His.push_back({AO.AllocEvent});
  }

  //===--------------------------------------------------------------------===//
  // History bookkeeping
  //===--------------------------------------------------------------------===//

  void appendEvent(Flow &F, ObjectId Obj, EventId E) {
    HistorySet &His = F.of(Obj);
    if (His.empty()) {
      His.push_back({E});
      return;
    }
    for (History &H : His)
      if (H.empty() || H.back() != E)
        H.push_back(E);
    dedupHistories(His);
  }

  void dedupHistories(HistorySet &His) {
    std::sort(His.begin(), His.end());
    His.erase(std::unique(His.begin(), His.end()), His.end());
    if (His.size() > Opts.HistoryCap)
      His.resize(Opts.HistoryCap);
  }

  void joinFlow(Flow &Into, const Flow &Other) {
    if (Other.His.size() > Into.His.size())
      Into.His.resize(Other.His.size());
    for (size_t Obj = 0; Obj < Other.His.size(); ++Obj) {
      if (Other.His[Obj].empty())
        continue;
      HistorySet &Dst = Into.His[Obj];
      Dst.insert(Dst.end(), Other.His[Obj].begin(), Other.His[Obj].end());
      dedupHistories(Dst);
    }
  }

  void joinVars(std::vector<PtsSet> &Into, const std::vector<PtsSet> &Other) {
    assert(Into.size() == Other.size() && "frame size mismatch at join");
    for (size_t I = 0; I < Into.size(); ++I)
      Into[I].unionWith(Other[I], A);
  }

  void mergeIntoResult(const Flow &F) {
    if (F.His.size() > R.Histories.size())
      R.Histories.resize(F.His.size());
    for (size_t Obj = 0; Obj < F.His.size(); ++Obj) {
      if (F.His[Obj].empty())
        continue;
      HistorySet &Dst = R.Histories[Obj];
      Dst.insert(Dst.end(), F.His[Obj].begin(), F.His[Obj].end());
      dedupHistories(Dst);
    }
  }

  /// Materializes the arena-backed working stores into the STL result maps
  /// (both run() exits go through here). Keys created but never grown —
  /// e.g. a store of an empty set — materialize as empty sets, matching
  /// what operator[] on the result maps used to produce.
  AnalysisResult finish() {
    FieldsW.forEach([this](uint64_t Key, const PtsSet &S) {
      R.Fields.emplace(Key, S.toObjSet());
    });
    RetW.forEach([this](uint64_t Key, const PtsSet &S) {
      R.RetPointsTo.emplace(static_cast<EventId>(Key), S.toObjSet());
    });
    return std::move(R);
  }

  //===--------------------------------------------------------------------===//
  // Values and fields
  //===--------------------------------------------------------------------===//

  void noteObjectValue(ObjectId Obj, uint64_t Tag) {
    R.ObjectValues.emplace(Obj, Tag);
  }

  /// The paper's valG over a points-to set: value tags of all valued objects
  /// (literals, New, This). Sorted and deduplicated.
  std::vector<uint64_t> valuesOf(const PtsSet &Set) const {
    std::vector<uint64_t> Values;
    Set.forEach([&](ObjectId Obj) {
      auto It = R.ObjectValues.find(Obj);
      if (It != R.ObjectValues.end())
        Values.push_back(It->second);
    });
    std::sort(Values.begin(), Values.end());
    Values.erase(std::unique(Values.begin(), Values.end()), Values.end());
    return Values;
  }

  /// Working field store entry. The returned reference is invalidated by
  /// the next fieldSet() call (flat-map rehash) — use it immediately.
  PtsSet &fieldSet(uint64_t Key) { return FieldsW.getOrCreate(Key); }

  const PtsSet *fieldSetIfPresent(uint64_t Key) const {
    return FieldsW.find(Key);
  }

  //===--------------------------------------------------------------------===//
  // Statement interpretation
  //===--------------------------------------------------------------------===//

  void analyzeBody(const InstrList &Body, Frame &Fr, Flow &F,
                   unsigned Depth) {
    for (const Instr &I : Body) {
      // Cooperative bound: one step per interpreted instruction. The flag is
      // sticky so the whole inline/branch recursion unwinds promptly.
      if (Exhausted)
        return;
      if ((Opts.StepBudget && !Opts.StepBudget->consume()) ||
          USPEC_FAULT_SOFT("analysis.step")) {
        Exhausted = true;
        return;
      }
      analyzeInstr(I, Fr, F, Depth);
    }
  }

  void analyzeInstr(const Instr &I, Frame &Fr, Flow &F, unsigned Depth) {
    switch (I.TheKind) {
    case Instr::Kind::Alloc: {
      ObjectId Obj = R.Objects.getSiteObject(ObjectKind::New, I.SiteId,
                                             Fr.Ctx, I.Name);
      noteObjectValue(Obj, objectValueTag(Obj));
      AbstractObject &AO = R.Objects.get(Obj);
      if (AO.AllocEvent == InvalidEvent) {
        Event E;
        E.Kind = EventKind::NewAlloc;
        E.Site = I.SiteId;
        E.Ctx = Fr.Ctx;
        E.Pos = PosRet;
        E.Method.Name = I.Name; // label: newT
        E.Guard = I.GuardId;
        AO.AllocEvent = R.Events.getOrCreate(E);
      }
      HistorySet &His = F.of(Obj);
      if (His.empty())
        His.push_back({AO.AllocEvent});
      Fr.Vars[I.Dst].assignSingle(Obj);
      return;
    }
    case Instr::Kind::Literal: {
      ObjectKind Kind = I.LitKind == LiteralKind::String
                            ? ObjectKind::LiteralStr
                            : (I.LitKind == LiteralKind::Int
                                   ? ObjectKind::LiteralInt
                                   : ObjectKind::LiteralNull);
      ObjectId Obj =
          R.Objects.getSiteObject(Kind, I.SiteId, Fr.Ctx, I.StrValue);
      LitClass LC = I.LitKind == LiteralKind::String
                        ? LitClass::Str
                        : (I.LitKind == LiteralKind::Int ? LitClass::Int
                                                         : LitClass::Null);
      noteObjectValue(Obj, literalValueTag(LC, I.StrValue));
      AbstractObject &AO = R.Objects.get(Obj);
      if (AO.AllocEvent == InvalidEvent) {
        Event E;
        E.Kind = EventKind::LitAlloc;
        E.Site = I.SiteId;
        E.Ctx = Fr.Ctx;
        E.Pos = PosRet;
        E.Lit = LC;
        E.Guard = I.GuardId;
        AO.AllocEvent = R.Events.getOrCreate(E);
      }
      HistorySet &His = F.of(Obj);
      if (His.empty())
        His.push_back({AO.AllocEvent});
      Fr.Vars[I.Dst].assignSingle(Obj);
      return;
    }
    case Instr::Kind::Copy:
      if (I.Dst != I.Src)
        Fr.Vars[I.Dst] = Fr.Vars[I.Src].clone(A);
      return;
    case Instr::Kind::LoadField: {
      PtsSet Result;
      Fr.Vars[I.Base].forEach([&](ObjectId Obj) {
        if (const PtsSet *S = fieldSetIfPresent(regularFieldKey(Obj, I.Name)))
          Result.unionWith(*S, A);
      });
      Fr.Vars[I.Dst] = std::move(Result);
      return;
    }
    case Instr::Kind::StoreField: {
      const PtsSet &Value = Fr.Vars[I.Src];
      Fr.Vars[I.Base].forEach([&](ObjectId Obj) {
        fieldSet(regularFieldKey(Obj, I.Name)).unionWith(Value, A);
      });
      return;
    }
    case Instr::Kind::Call:
      analyzeCall(I, Fr, F, Depth);
      return;
    case Instr::Kind::If: {
      Frame ElseFrame = cloneFrame(Fr);
      Flow ElseFlow = F;
      analyzeBody(I.Inner1, Fr, F, Depth);
      analyzeBody(I.Inner2, ElseFrame, ElseFlow, Depth);
      joinVars(Fr.Vars, ElseFrame.Vars);
      Fr.Ret.unionWith(ElseFrame.Ret, A);
      joinFlow(F, ElseFlow);
      return;
    }
    case Instr::Kind::While: {
      // Single loop unrolling (§3.2): join the skip path with one body pass.
      Frame OnceFrame = cloneFrame(Fr);
      Flow OnceFlow = F;
      analyzeBody(I.Inner1, OnceFrame, OnceFlow, Depth);
      joinVars(Fr.Vars, OnceFrame.Vars);
      Fr.Ret.unionWith(OnceFrame.Ret, A);
      joinFlow(F, OnceFlow);
      return;
    }
    case Instr::Kind::Return:
      if (I.Src != InvalidVar)
        Fr.Ret.unionWith(Fr.Vars[I.Src], A);
      return;
    }
  }

  //===--------------------------------------------------------------------===//
  // Calls
  //===--------------------------------------------------------------------===//

  /// Determines the receiver class: the unique allocation class if all
  /// receiver objects are New/This of one class, empty Symbol otherwise.
  Symbol receiverClass(const PtsSet &RecvSet) const {
    Symbol Class;
    bool Mixed = false;
    RecvSet.forEach([&](ObjectId Obj) {
      if (Mixed)
        return;
      const AbstractObject &AO = R.Objects.get(Obj);
      if (AO.Kind != ObjectKind::New && AO.Kind != ObjectKind::This) {
        Mixed = true;
        return;
      }
      if (Class.isEmpty())
        Class = AO.Class;
      else if (Class != AO.Class)
        Mixed = true;
    });
    return Mixed ? Symbol() : Class;
  }

  void analyzeCall(const Instr &I, Frame &Fr, Flow &F, unsigned Depth) {
    const PtsSet &RecvSet = Fr.Vars[I.Base];
    // Argument sets stay where they live (no per-call copies); Fr.Vars is
    // not resized or reassigned until the call completes, so the pointers
    // stay valid through inlineCall/apiCall.
    std::vector<const PtsSet *> ArgSets;
    ArgSets.reserve(I.Args.size());
    for (VarId Arg : I.Args)
      ArgSets.push_back(&Fr.Vars[Arg]);

    // Try to resolve to a program-defined method (inlined, no events).
    Symbol Class = receiverClass(RecvSet);
    if (!Class.isEmpty() && Depth < Opts.InlineDepth) {
      if (const IRClass *Callee = Program.findClass(Class)) {
        if (const IRMethod *Target = Callee->findMethod(I.Name)) {
          inlineCall(I, Fr, F, Depth, RecvSet, ArgSets, *Target);
          return;
        }
        // A program-defined class without this method: fall through and
        // treat as an (unknown) API call on that class.
      }
    }
    apiCall(I, Fr, F, Class, RecvSet, ArgSets);
  }

  void inlineCall(const Instr &I, Frame &Fr, Flow &F, unsigned Depth,
                  const PtsSet &RecvSet,
                  const std::vector<const PtsSet *> &ArgSets,
                  const IRMethod &Target) {
    Frame Callee;
    Callee.Method = &Target;
    uint32_t Ctx32 =
        static_cast<uint32_t>(hashValues(Fr.Ctx, I.SiteId) & 0x3FFFFFFF);
    Callee.Ctx = Ctx32 ? Ctx32 : 1;
    Callee.Vars.resize(Target.NumVars);
    Callee.Vars[0] = RecvSet.clone(A);
    for (uint32_t P = 0; P < Target.NumParams && P < ArgSets.size(); ++P)
      Callee.Vars[1 + P] = ArgSets[P]->clone(A);
    seedExternals(Target, Callee, F);
    analyzeBody(Target.Body, Callee, F, Depth + 1);
    if (I.Dst != InvalidVar)
      Fr.Vars[I.Dst] = std::move(Callee.Ret);
  }

  void apiCall(const Instr &I, Frame &Fr, Flow &F, Symbol Class,
               const PtsSet &RecvSet,
               const std::vector<const PtsSet *> &ArgSets) {
    MethodId Mid;
    Mid.Class = Class;
    Mid.Name = I.Name;
    Mid.Arity = static_cast<uint8_t>(
        std::min<size_t>(I.Args.size(), 250));

    // Receiver and argument events.
    auto MakeEvent = [&](EventPos Pos) {
      Event E;
      E.Kind = EventKind::ApiCall;
      E.Site = I.SiteId;
      E.Ctx = Fr.Ctx;
      E.Pos = Pos;
      E.Method = Mid;
      E.Guard = I.GuardId;
      return R.Events.getOrCreate(E);
    };

    EventId RecvEvent = MakeEvent(PosReceiver);
    RecvSet.forEach([&](ObjectId Obj) { appendEvent(F, Obj, RecvEvent); });
    for (size_t Pos = 0; Pos < ArgSets.size(); ++Pos) {
      EventId ArgEvent = MakeEvent(static_cast<EventPos>(Pos + 1));
      ArgSets[Pos]->forEach(
          [&](ObjectId Obj) { appendEvent(F, Obj, ArgEvent); });
    }

    // Ghost writes (GhostW, Tab. 2) in API-aware mode.
    if (Opts.ApiAware)
      ghostWrites(Mid, RecvSet, ArgSets);

    // Return value (GhostR / fresh object).
    EventId RetEvent = MakeEvent(PosRet);
    PtsSet Ret;
    if (Opts.ApiAware) {
      Ret = ghostReads(Mid, RecvSet, ArgSets);
      // Experimental RetRecv pattern (§5.3): the call may return its
      // receiver.
      if (Opts.Specs->hasRetRecv(Mid))
        Ret.unionWith(RecvSet, A);
    }
    if (Ret.empty()) {
      ObjectId Fresh =
          R.Objects.getSiteObject(ObjectKind::ApiRet, I.SiteId, Fr.Ctx,
                                  Symbol());
      AbstractObject &AO = R.Objects.get(Fresh);
      if (AO.AllocEvent == InvalidEvent)
        AO.AllocEvent = RetEvent;
      Ret.assignSingle(Fresh);
    }
    Ret.forEach([&](ObjectId Obj) { appendEvent(F, Obj, RetEvent); });
    RetW.getOrCreate(RetEvent).unionWith(Ret, A);
    if (I.Dst != InvalidVar)
      Fr.Vars[I.Dst] = std::move(Ret);
  }

  //===--------------------------------------------------------------------===//
  // Ghost fields (§6.2, App. A)
  //===--------------------------------------------------------------------===//

  /// Enumerates the cartesian product of per-position value sets, capped at
  /// MaxGhostTuples tuples. Returns false if some position has no values
  /// (the field name is then unresolvable, §6.4).
  bool nameTuples(const std::vector<std::vector<uint64_t>> &Per,
                  std::vector<std::vector<uint64_t>> &Out) const {
    for (const auto &Values : Per)
      if (Values.empty())
        return false;
    Out.push_back({});
    for (const auto &Values : Per) {
      std::vector<std::vector<uint64_t>> Next;
      for (const auto &Prefix : Out) {
        for (uint64_t V : Values) {
          Next.push_back(Prefix);
          Next.back().push_back(V);
          if (Next.size() >= Opts.MaxGhostTuples)
            break;
        }
        if (Next.size() >= Opts.MaxGhostTuples)
          break;
      }
      Out = std::move(Next);
    }
    return true;
  }

  void ghostWrites(const MethodId &Mid, const PtsSet &RecvSet,
                   const std::vector<const PtsSet *> &ArgSets) {
    for (const Spec &S : Opts.Specs->retArgsBySource(Mid)) {
      unsigned X = S.ArgPos;
      if (X < 1 || X > ArgSets.size())
        continue;
      const PtsSet &Stored = *ArgSets[X - 1];
      if (Stored.empty())
        continue;

      // F(m, x, t): tuples over the values of the other arguments.
      std::vector<std::vector<uint64_t>> Per;
      for (size_t Pos = 0; Pos < ArgSets.size(); ++Pos)
        if (Pos != X - 1)
          Per.push_back(valuesOf(*ArgSets[Pos]));
      std::vector<std::vector<uint64_t>> Tuples;
      bool Resolvable = nameTuples(Per, Tuples);

      RecvSet.forEach([&](ObjectId Recv) {
        if (Resolvable)
          for (const auto &T : Tuples)
            fieldSet(ghostFieldKey(Recv, S.Target, T)).unionWith(Stored, A);
        if (Opts.CoverageExtension) {
          if (!Resolvable)
            fieldSet(ghostTopKey(Recv, S.Target)).unionWith(Stored, A);
          fieldSet(ghostBotKey(Recv, S.Target)).unionWith(Stored, A);
        }
      });
    }
  }

  PtsSet ghostReads(const MethodId &Mid, const PtsSet &RecvSet,
                    const std::vector<const PtsSet *> &ArgSets) {
    if (!Opts.Specs->hasRetSame(Mid))
      return {};

    std::vector<std::vector<uint64_t>> Per;
    Per.reserve(ArgSets.size());
    for (const PtsSet *Arg : ArgSets)
      Per.push_back(valuesOf(*Arg));
    std::vector<std::vector<uint64_t>> Tuples;
    bool Resolvable = nameTuples(Per, Tuples);

    PtsSet Ret;
    if (Resolvable) {
      RecvSet.forEach([&](ObjectId Recv) {
        for (const auto &T : Tuples) {
          uint64_t Key = ghostFieldKey(Recv, Mid, T);
          PtsSet &S = fieldSet(Key);
          if (S.empty())
            S.assignSingle(
                R.Objects.getGhostObject(Recv, Key)); // GhostR allocation
          Ret.unionWith(S, A);
        }
        if (Opts.CoverageExtension)
          if (const PtsSet *Top = fieldSetIfPresent(ghostTopKey(Recv, Mid)))
            Ret.unionWith(*Top, A);
      });
      return Ret;
    }

    // Unresolvable arguments: read ⊥ (App. A) when the coverage extension is
    // enabled; otherwise no ghost read applies.
    if (!Opts.CoverageExtension)
      return {};
    RecvSet.forEach([&](ObjectId Recv) {
      uint64_t Key = ghostBotKey(Recv, Mid);
      PtsSet &S = fieldSet(Key);
      if (S.empty())
        S.assignSingle(R.Objects.getGhostObject(Recv, Key));
      Ret.unionWith(S, A);
    });
    return Ret;
  }

  const IRProgram &Program;
  const StringInterner &Strings;
  AnalysisOptions Opts;
  AnalysisResult R;
  Arena &A;                  ///< Per-thread scratch; reset per program.
  FlatMap64<PtsSet> FieldsW; ///< Working field store (materialized at end).
  FlatMap64<PtsSet> RetW;    ///< Working ret-event points-to store.
  bool Exhausted = false;
};

} // namespace

AnalysisResult uspec::analyzeProgram(const IRProgram &Program,
                                     const StringInterner &Strings,
                                     const AnalysisOptions &Options) {
  // One arena per worker thread, rewound between programs: after the first
  // few programs a thread's analyses run entirely allocation-free on the
  // points-to side. Slabs persist for the thread's lifetime (bounded by the
  // largest program analyzed on it).
  thread_local Arena ScratchArena;
  ScratchArena.reset();
  AnalysisDriver Driver(Program, Strings, Options, ScratchArena);
  return Driver.run();
}
