//===- Coordinator.cpp - Distributed training coordinator ----------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "distrib/Coordinator.h"

#include "core/Naming.h"
#include "distrib/Worker.h"
#include "support/EventLog.h"
#include "support/FaultInject.h"
#include "support/ParallelFor.h"
#include "support/Trace.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <mutex>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

using namespace uspec;
using namespace uspec::distrib;

namespace {

struct WorkerConn {
  int Fd = -1;
  pid_t Pid = -1; ///< -1 for externally-launched workers.
  uint32_t Id = 0;
  bool Dead = false;
};

struct ShardPlan {
  uint64_t Id = 0;
  size_t Lo = 0, Hi = 0; ///< Delta-relative contiguous range [Lo, Hi).
};

/// Resolves the path of the running binary for self-exec worker spawning.
std::string selfExePath() {
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0)
    return std::string();
  Buf[N] = '\0';
  return std::string(Buf);
}

class Coordinator {
public:
  Coordinator(const std::vector<ProgramSource> &Sources,
              const LearnerConfig &Config, StringInterner &Strings,
              const DistribOptions &Opts, DistStats &Stats)
      : Sources(Sources), Config(Config), Strings(Strings), Opts(Opts),
        Stats(Stats) {
    Wire.Seed = Config.Seed;
    Wire.DistanceBound = Config.DistanceBound;
    Wire.ProgramStepBudget = Config.ProgramStepBudget;
    Wire.Threads = Opts.WorkerThreads;
    Wire.ExperimentalPatterns = Config.ExperimentalPatterns;
  }

  ~Coordinator() {
    for (WorkerConn &W : Workers)
      if (W.Fd >= 0)
        ::close(W.Fd);
    if (ListenFd >= 0)
      ::close(ListenFd);
    if (!OwnedSocketPath.empty())
      ::unlink(OwnedSocketPath.c_str());
    // Reap spawned children. Their sockets are closed by now, so a live
    // worker's recvFrame fails and it exits; a faulted one is already gone.
    for (WorkerConn &W : Workers)
      if (W.Pid > 0) {
        int St = 0;
        ::waitpid(W.Pid, &St, 0);
      }
  }

  std::optional<LearnResult> run(std::optional<WarmStart> Warm,
                                 std::string *Err);

private:
  bool provision(std::string *Err);
  void spawnWorkers(const std::string &ConnectTo);
  void markDead(WorkerConn &W, const std::string &Why);
  void note(const std::string &Msg) {
    std::lock_guard<std::mutex> Lock(Mu);
    Stats.Notes.push_back(Msg);
  }

  void runAnalyzeRound();
  void runExtractRound();
  bool analyzeInProcess(const ShardPlan &P, const std::string &Why);
  void extractInProcess(const ShardPlan &P, unsigned Attempts);

  AnalyzeTask makeAnalyzeTask(const ShardPlan &P) const {
    AnalyzeTask T;
    T.Shard = P.Id;
    T.Base = GlobalBase + P.Lo;
    T.Programs.assign(Sources.begin() + static_cast<ptrdiff_t>(P.Lo),
                      Sources.begin() + static_cast<ptrdiff_t>(P.Hi));
    T.TraceContext = TraceCtx;
    return T;
  }

  const std::vector<ProgramSource> &Sources;
  const LearnerConfig &Config;
  StringInterner &Strings;
  const DistribOptions &Opts;
  DistStats &Stats;

  WireConfig Wire;
  /// Trace context shipped to workers on Init/Analyze/Extract so their
  /// spans stitch under this run ("" when the coordinator is untraced).
  std::string TraceCtx;
  size_t GlobalBase = 0;
  int ListenFd = -1;
  std::string OwnedSocketPath;
  std::vector<WorkerConn> Workers;
  std::vector<ShardPlan> Shards;

  std::mutex Mu;
  // Round 1 results, indexed by shard id.
  std::vector<AnalyzedResult> Analyzed;
  std::vector<bool> AnalyzedOk;
  /// Which worker holds the shard's cached state after round 1; -1 =
  /// coordinator (demoted in-process).
  std::vector<int> Owner;
  // Round 2 results: raw Extracted frames (decoded serially on the main
  // thread — SymbolTable::decode touches the interner) or in-process
  // results.
  std::vector<std::string> ExtractedFrames;
  std::vector<ExtractedResult> Extracted;
  std::vector<bool> ExtractedOk;
  /// In-process shard state for demoted shards.
  std::vector<ShardState> CoordState;
  std::vector<bool> CoordStateOk;

  EdgeModel Model{EdgeModelConfig()};
};

void Coordinator::spawnWorkers(const std::string &ConnectTo) {
  std::string Exe = selfExePath();
  if (Exe.empty()) {
    note("worker spawn unavailable: cannot resolve /proc/self/exe; running "
         "all shards in-process");
    return;
  }
  for (unsigned I = 0; I < Opts.NumWorkers; ++I) {
    try {
      USPEC_FAULT_POINT("distrib.spawn");
    } catch (const FaultInjected &) {
      note("worker " + std::to_string(I) +
           " spawn failed (injected fault at distrib.spawn); provisioning "
           "continues degraded");
      continue;
    }
    pid_t Pid = ::fork();
    if (Pid < 0) {
      note("worker " + std::to_string(I) +
           " spawn failed: fork: " + std::strerror(errno));
      continue;
    }
    if (Pid == 0) {
      ::execl(Exe.c_str(), Exe.c_str(), "worker", "--connect",
              ConnectTo.c_str(), static_cast<char *>(nullptr));
      ::_exit(127); // exec failed; the coordinator sees a missing Hello
    }
    WorkerConn W;
    W.Pid = Pid;
    Workers.push_back(W);
  }
}

bool Coordinator::provision(std::string *Err) {
  Stats.WorkersRequested = Opts.NumWorkers;
  bool External = !Opts.ListenAddress.empty();
  std::string AddrText = Opts.ListenAddress;
  if (!External) {
    OwnedSocketPath = "/tmp/uspec-coord-" + std::to_string(::getpid()) +
                      ".sock";
    AddrText = "unix:" + OwnedSocketPath;
  }
  auto Addr = parseAddress(AddrText, Err);
  if (!Addr)
    return false;
  ListenFd = wireListen(*Addr, Err);
  if (ListenFd < 0)
    return false;

  if (!External) {
    spawnWorkers(Addr->str());
    if (Workers.empty()) {
      // Nothing to accept; run fully in-process.
      return true;
    }
  }

  // Accept + handshake. The deadline covers the whole fleet: a worker that
  // never shows up (spawn fault, exec failure, slow external launch) costs
  // at most the remaining budget and the run proceeds degraded.
  size_t Expected = External ? Opts.NumWorkers : Workers.size();
  std::vector<int> Fds;
  PhaseTimer Deadline;
  double BudgetSec = Opts.AcceptTimeoutMs / 1000.0;
  double Spent = 0;
  while (Fds.size() < Expected && Spent < BudgetSec) {
    int Fd = wireAccept(ListenFd, 200);
    Spent += Deadline.lap();
    if (Fd == -2)
      break;
    if (Fd < 0)
      continue;
    std::string Frame, HandshakeErr;
    MsgType Type;
    std::string Text;
    if (!recvFrame(Fd, Frame, &HandshakeErr) ||
        !decodeControl(Frame, Type, Text, &HandshakeErr) ||
        Type != MsgType::Hello) {
      note("rejecting connection with bad handshake: " + HandshakeErr);
      ::close(Fd);
      continue;
    }
    Fds.push_back(Fd);
  }

  // Bind fds to worker slots and send Init. Spawn order and accept order
  // need not agree (the Pid association is only used for reaping).
  if (External)
    Workers.resize(Fds.size());
  InitMsg Init;
  Init.Config = Wire;
  Init.TraceContext = TraceCtx;
  Init.Symbols.reserve(Strings.size() - 1);
  for (uint32_t I = 1; I < Strings.size(); ++I)
    Init.Symbols.push_back(Strings.str(Symbol(I)));
  size_t Bound = 0;
  for (WorkerConn &W : Workers) {
    if (Bound >= Fds.size()) {
      W.Dead = true; // never connected
      continue;
    }
    W.Fd = Fds[Bound];
    W.Id = static_cast<uint32_t>(Bound);
    ++Bound;
    Init.WorkerId = W.Id;
    std::string SendErr;
    if (!sendFrame(W.Fd, encodeInit(Init), &SendErr))
      markDead(W, "init send failed: " + SendErr);
  }
  Stats.WorkersConnected = static_cast<unsigned>(Bound);
  if (Bound < Expected)
    note(std::to_string(Expected - Bound) + " of " + std::to_string(Expected) +
         " workers never connected within " +
         std::to_string(Opts.AcceptTimeoutMs) +
         " ms; their shards run degraded");
  return true;
}

void Coordinator::markDead(WorkerConn &W, const std::string &Why) {
  bool First;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    First = !W.Dead;
    W.Dead = true;
    if (First) {
      ++Stats.WorkersDied;
      Stats.Notes.push_back("worker " + std::to_string(W.Id) + " lost: " +
                            Why);
    }
  }
  if (First && events::enabled())
    events::emit("worker_lost", {{"worker", std::to_string(W.Id)},
                                 {"reason", Why}});
  if (First && W.Fd >= 0) {
    ::close(W.Fd);
    W.Fd = -1;
  }
}

/// Runs Phase 1 in-process for a shard whose retries are exhausted (or that
/// never had a live worker). Same code path the workers run.
bool Coordinator::analyzeInProcess(const ShardPlan &P,
                                   const std::string &Why) {
  WireConfig Local = Wire;
  Local.Threads = Config.Threads;
  AnalyzeTask Task = makeAnalyzeTask(P);
  Analyzed[P.Id] = analyzeShard(Task, Local, Strings, CoordState[P.Id]);
  AnalyzedOk[P.Id] = true;
  CoordStateOk[P.Id] = true;
  Owner[P.Id] = -1;
  ++Stats.ShardsDemoted;
  note("shard " + std::to_string(P.Id) + " (" +
       std::to_string(P.Hi - P.Lo) + " programs) demoted to in-process "
       "execution at the coordinator: " + Why);
  if (events::enabled())
    events::emit("demotion", {{"shard", std::to_string(P.Id)},
                              {"phase", "analyze"},
                              {"reason", Why}});
  return true;
}

void Coordinator::runAnalyzeRound() {
  struct Task {
    size_t Shard;
    unsigned Attempts;
  };
  std::deque<Task> Queue;
  for (const ShardPlan &P : Shards)
    Queue.push_back(Task{static_cast<size_t>(P.Id), 1});

  auto WorkerLoop = [&](WorkerConn &W) {
    for (;;) {
      Task T{0, 0};
      {
        std::lock_guard<std::mutex> Lock(Mu);
        if (Queue.empty())
          return;
        T = Queue.front();
        Queue.pop_front();
      }
      const ShardPlan &P = Shards[T.Shard];
      std::string IoErr;
      std::string Frame;
      bool Ok = sendFrame(W.Fd, encodeAnalyzeTask(makeAnalyzeTask(P)),
                          &IoErr) &&
                recvFrame(W.Fd, Frame, &IoErr);
      if (Ok) {
        auto Type = peekType(Frame, &IoErr);
        if (Type && *Type == MsgType::Error) {
          MsgType MT;
          decodeControl(Frame, MT, IoErr);
          Ok = false;
          IoErr = "worker error: " + IoErr;
        } else if (!Type || *Type != MsgType::Analyzed) {
          Ok = false;
          IoErr = "unexpected reply during analyze: " + IoErr;
        }
      }
      if (Ok) {
        AnalyzedResult R;
        Ok = decodeAnalyzedResult(Frame, R, &IoErr) && R.Shard == P.Id;
        if (Ok) {
          std::lock_guard<std::mutex> Lock(Mu);
          Analyzed[P.Id] = std::move(R);
          AnalyzedOk[P.Id] = true;
          Owner[P.Id] = static_cast<int>(W.Id);
          continue;
        }
      }
      markDead(W, IoErr + " (analyzing shard " + std::to_string(P.Id) + ")");
      if (events::enabled())
        events::emit("shard_reassignment",
                     {{"shard", std::to_string(P.Id)},
                      {"phase", "analyze"},
                      {"attempt", std::to_string(T.Attempts + 1)}});
      {
        std::lock_guard<std::mutex> Lock(Mu);
        ++Stats.ShardsReassigned;
        Stats.Notes.push_back(
            "shard " + std::to_string(P.Id) + " reassigned (attempt " +
            std::to_string(T.Attempts + 1) + "/" +
            std::to_string(Opts.MaxAttempts) + ")");
        if (T.Attempts + 1 <= Opts.MaxAttempts)
          Queue.push_back(Task{T.Shard, T.Attempts + 1});
        else
          Stats.Notes.push_back("shard " + std::to_string(T.Shard) +
                                " exhausted its " +
                                std::to_string(Opts.MaxAttempts) +
                                " attempts");
      }
      return; // this worker is gone; its thread ends
    }
  };

  std::vector<std::thread> Threads;
  for (WorkerConn &W : Workers)
    if (!W.Dead && W.Fd >= 0)
      Threads.emplace_back(WorkerLoop, std::ref(W));
  for (std::thread &T : Threads)
    T.join();

  // Anything still pending (all workers dead, attempts exhausted, or no
  // workers at all) runs in-process.
  for (const ShardPlan &P : Shards)
    if (!AnalyzedOk[P.Id])
      analyzeInProcess(P, Workers.empty()
                              ? "no workers available"
                              : "no live worker left or retries exhausted");
}

void Coordinator::extractInProcess(const ShardPlan &P, unsigned Attempts) {
  WireConfig Local = Wire;
  Local.Threads = Config.Threads;
  if (!CoordStateOk[P.Id]) {
    // The analyzing worker died after round 1: rebuild state from sources
    // (deterministic, so graphs and quarantine agree with the original).
    AnalyzeTask Task = makeAnalyzeTask(P);
    analyzeShard(Task, Local, Strings, CoordState[P.Id]);
    CoordStateOk[P.Id] = true;
  }
  Extracted[P.Id] = extractShard(CoordState[P.Id], Model, Local);
  Extracted[P.Id].Shard = P.Id;
  ExtractedOk[P.Id] = true;
  if (Owner[P.Id] != -1) {
    ++Stats.ShardsDemoted;
    note("shard " + std::to_string(P.Id) + " (" +
         std::to_string(P.Hi - P.Lo) + " programs) extraction demoted to "
         "the coordinator after " + std::to_string(Attempts) + " attempt(s)");
    if (events::enabled())
      events::emit("demotion", {{"shard", std::to_string(P.Id)},
                                {"phase", "extract"},
                                {"attempts", std::to_string(Attempts)}});
  }
}

void Coordinator::runExtractRound() {
  // Broadcast the trained model; a failed send costs the worker its shards.
  std::string ModelFrame = encodeModelMsg(Model);
  for (WorkerConn &W : Workers) {
    if (W.Dead || W.Fd < 0)
      continue;
    std::string SendErr;
    if (!sendFrame(W.Fd, ModelFrame, &SendErr))
      markDead(W, "model broadcast failed: " + SendErr);
  }

  struct Task {
    size_t Shard;
    unsigned Attempts;
    bool NeedSources; ///< Reassigned away from the shard's analyzer.
  };
  // Owned lists: each live worker extracts the shards it analyzed (cached
  // state, no source resend). Orphans (dead owner / coordinator-owned go
  // straight in-process) are taken by any live worker with sources.
  std::vector<std::deque<Task>> Owned(Workers.size());
  std::deque<Task> Orphans;
  std::vector<Task> Demoted;
  for (const ShardPlan &P : Shards) {
    int O = Owner[P.Id];
    if (O >= 0 && !Workers[static_cast<size_t>(O)].Dead)
      Owned[static_cast<size_t>(O)].push_back(
          Task{static_cast<size_t>(P.Id), 1, false});
    else if (O >= 0)
      Orphans.push_back(Task{static_cast<size_t>(P.Id), 1, true});
    else
      Demoted.push_back(Task{static_cast<size_t>(P.Id), 1, false});
  }

  auto WorkerLoop = [&](WorkerConn &W) {
    for (;;) {
      Task T{0, 0, false};
      {
        std::lock_guard<std::mutex> Lock(Mu);
        if (!Owned[W.Id].empty()) {
          T = Owned[W.Id].front();
          Owned[W.Id].pop_front();
        } else if (!Orphans.empty()) {
          T = Orphans.front();
          Orphans.pop_front();
        } else {
          return;
        }
      }
      const ShardPlan &P = Shards[T.Shard];
      ExtractTask XT;
      XT.Shard = P.Id;
      XT.Base = GlobalBase + P.Lo;
      XT.TraceContext = TraceCtx;
      if (T.NeedSources)
        XT.Programs.assign(Sources.begin() + static_cast<ptrdiff_t>(P.Lo),
                           Sources.begin() + static_cast<ptrdiff_t>(P.Hi));
      std::string IoErr;
      std::string Frame;
      bool Ok = sendFrame(W.Fd, encodeExtractTask(XT), &IoErr) &&
                recvFrame(W.Fd, Frame, &IoErr);
      if (Ok) {
        auto Type = peekType(Frame, &IoErr);
        if (!Type || *Type != MsgType::Extracted) {
          Ok = false;
          if (Type && *Type == MsgType::Error) {
            MsgType MT;
            decodeControl(Frame, MT, IoErr);
            IoErr = "worker error: " + IoErr;
          } else {
            IoErr = "unexpected reply during extract: " + IoErr;
          }
        }
      }
      if (Ok) {
        std::lock_guard<std::mutex> Lock(Mu);
        ExtractedFrames[P.Id] = std::move(Frame);
        continue;
      }
      markDead(W, IoErr + " (extracting shard " + std::to_string(P.Id) +
                      ")");
      if (events::enabled())
        events::emit("shard_reassignment",
                     {{"shard", std::to_string(P.Id)},
                      {"phase", "extract"},
                      {"attempt", std::to_string(T.Attempts + 1)}});
      {
        std::lock_guard<std::mutex> Lock(Mu);
        ++Stats.ShardsReassigned;
        if (T.Attempts + 1 <= Opts.MaxAttempts)
          Orphans.push_back(Task{T.Shard, T.Attempts + 1, true});
        else
          Demoted.push_back(Task{T.Shard, T.Attempts, false});
        // The dead worker's remaining owned shards need sources elsewhere.
        while (!Owned[W.Id].empty()) {
          Task Rest = Owned[W.Id].front();
          Owned[W.Id].pop_front();
          Rest.NeedSources = true;
          ++Rest.Attempts;
          ++Stats.ShardsReassigned;
          Orphans.push_back(Rest);
        }
      }
      return;
    }
  };

  std::vector<std::thread> Threads;
  for (WorkerConn &W : Workers)
    if (!W.Dead && W.Fd >= 0)
      Threads.emplace_back(WorkerLoop, std::ref(W));
  for (std::thread &T : Threads)
    T.join();

  // Decode worker frames serially: SymbolTable::decode probes the interner,
  // and single-threaded decode keeps the single-writer contract trivially.
  for (const ShardPlan &P : Shards) {
    if (ExtractedFrames[P.Id].empty())
      continue;
    std::string DecodeErr;
    ExtractedResult R;
    if (decodeExtractedResult(ExtractedFrames[P.Id], R, Strings,
                              &DecodeErr) &&
        R.Shard == P.Id) {
      Extracted[P.Id] = std::move(R);
      ExtractedOk[P.Id] = true;
    } else {
      note("shard " + std::to_string(P.Id) +
           " reply failed to decode (" + DecodeErr +
           "); re-running in-process");
    }
  }
  for (const Task &T : Demoted)
    if (!ExtractedOk[T.Shard])
      extractInProcess(Shards[T.Shard], T.Attempts);
  while (!Orphans.empty()) { // all workers died with orphans pending
    Task T = Orphans.front();
    Orphans.pop_front();
    if (!ExtractedOk[T.Shard])
      extractInProcess(Shards[T.Shard], T.Attempts);
  }
  for (const ShardPlan &P : Shards)
    if (!ExtractedOk[P.Id])
      extractInProcess(P, Opts.MaxAttempts);
}

std::optional<LearnResult> Coordinator::run(std::optional<WarmStart> Warm,
                                            std::string *Err) {
  TraceSpan Span("distrib.coordinate");
  // A traced run mints a trace context (stamped on every frame we send) so
  // worker-side spans stitch under this coordinator in `uspec obs stitch`.
  if (trace::enabled())
    TraceCtx = "coord-" + std::to_string(static_cast<long>(::getpid()));
  if (Span.active() && !TraceCtx.empty())
    Span.arg("trace_ctx", TraceCtx);
  size_t N = Sources.size();
  GlobalBase = Warm ? Warm->BasePrograms : 0;

  // Deterministic shard plan: contiguous ranges, the same shardRange
  // geometry the in-process pipeline uses, sized independently of how many
  // workers actually show up (the plan, not the placement, is part of the
  // provenance checksum).
  size_t M = std::min<size_t>(std::max<size_t>(N, 1),
                              std::max<unsigned>(Opts.NumWorkers, 1) * 4);
  if (N == 0)
    M = 0;
  Shards.clear();
  Stats.ShardMapChecksum = hashCombine(hashCombine(0x5D157B, N), M);
  for (size_t S = 0; S < M; ++S) {
    auto [Lo, Hi] = shardRange(N, static_cast<unsigned>(S),
                               static_cast<unsigned>(M));
    Shards.push_back(ShardPlan{S, Lo, Hi});
    Stats.ShardMapChecksum =
        hashCombine(hashCombine(Stats.ShardMapChecksum, Lo), Hi);
  }
  Stats.Shards = M;
  if (Span.active()) {
    Span.arg("programs", std::to_string(N));
    Span.arg("shards", std::to_string(M));
    Span.arg("workers", std::to_string(Opts.NumWorkers));
  }

  Analyzed.resize(M);
  AnalyzedOk.assign(M, false);
  Owner.assign(M, -2);
  ExtractedFrames.assign(M, std::string());
  Extracted.resize(M);
  ExtractedOk.assign(M, false);
  CoordState.resize(M);
  CoordStateOk.assign(M, false);

  if (!provision(Err))
    return std::nullopt;

  LearnResult Result;
  PhaseTimer Total, Phase;
  Result.Stats.Programs = N;
  Result.Stats.ThreadsUsed = std::max<unsigned>(Stats.WorkersConnected, 1);

  // Round 1: Phase 1 + 2a across workers.
  runAnalyzeRound();
  std::vector<std::string> QReason(N);
  for (const ShardPlan &P : Shards) {
    const AnalyzedResult &R = Analyzed[P.Id];
    Result.Stats.Graphs += R.Graphs;
    for (size_t I = 0; I < R.QReason.size(); ++I)
      QReason[P.Lo + I] = R.QReason[I];
  }
  Result.Stats.AnalyzeSeconds = Phase.lap();

  // Phase 2b at the coordinator: concatenate samples in shard order (=
  // corpus order; shards are contiguous ascending) and train — the exact
  // sample sequence a single-process run feeds Model.train.
  {
    std::vector<TrainingSample> Samples;
    for (const ShardPlan &P : Shards)
      for (std::vector<TrainingSample> &Per : Analyzed[P.Id].Samples) {
        Samples.insert(Samples.end(),
                       std::make_move_iterator(Per.begin()),
                       std::make_move_iterator(Per.end()));
        Per.clear();
      }
    if (Warm) {
      Model = std::move(Warm->Model);
      Result.NumTrainingSamples = Warm->BaseTrainingSamples + Samples.size();
    } else {
      Model = EdgeModel(Config.Model);
      Result.NumTrainingSamples = Samples.size();
    }
    Result.Stats.TrainingSamples = Samples.size();
    Model.train(Samples);
    Result.TrainAccuracy = Model.accuracy(Samples);
    Result.Stats.TrainSeconds = Phase.lap();
  }

  // Round 2: Phase 3 across workers, ledgers merged left-to-right.
  runExtractRound();
  CandidateLedger Ledger = Warm ? std::move(Warm->Ledger) : CandidateLedger();
  for (const ShardPlan &P : Shards) {
    ExtractedResult &R = Extracted[P.Id];
    for (const auto &[Idx, Reason] : R.QUpdates)
      QReason[P.Lo + Idx] = Reason;
    Result.Stats.ReceiverPairs += R.ReceiverPairs;
    Result.Stats.Matches += R.Matches;
    Result.Stats.PeakCandidates += R.PeakCandidates;
    Ledger.extendWith(std::move(R.Ledger));
  }
  Result.Stats.Candidates = Ledger.Entries.size();
  Result.Stats.ExtractSeconds = Phase.lap();

  // Phase 4 (scoring) and Phase 5 (selection) at the coordinator, over the
  // merged ledger — the same per-entry arithmetic learnIncrement runs,
  // which equals learn()'s collector-based scoring (scoreCandidate(Stats)
  // delegates to the bare-evidence overload).
  Result.Candidates.resize(Ledger.Entries.size());
  parallelFor(Ledger.Entries.size(), Config.Threads, [&](size_t I) {
    const CandidateLedger::Entry &E = Ledger.Entries[I];
    ScoredCandidate C;
    C.S = E.S;
    C.Score = scoreCandidate(E.Confidences, E.Matches, E.Programs,
                             Config.Scoring, Config.TopK);
    if (Config.Scoring == ScoreKind::NameAware)
      C.Score = blendWithNamingPrior(C.Score, namingPrior(E.S, Strings));
    C.Matches = E.Matches;
    C.Programs = E.Programs;
    C.NumConfidences = E.Confidences.size();
    Result.Candidates[I] = std::move(C);
  });
  std::stable_sort(Result.Candidates.begin(), Result.Candidates.end(),
                   [](const ScoredCandidate &A, const ScoredCandidate &B) {
                     if (A.Score != B.Score)
                       return A.Score > B.Score;
                     return A.Matches > B.Matches;
                   });
  Result.Stats.ScoreSeconds = Phase.lap();

  Result.Selected =
      USpecLearner::select(Result.Candidates, Config.Tau,
                           Config.ExtendConsistency,
                           &Result.AddedByExtension);
  Result.Stats.SelectSeconds = Phase.lap();

  Result.Model = std::move(Model);
  Result.Ledger = std::move(Ledger);
  for (size_t I = 0; I < N; ++I)
    if (!QReason[I].empty()) {
      Result.Stats.Quarantined.push_back(
          QuarantineRecord{GlobalBase + I, Sources[I].Name, QReason[I]});
      if (events::enabled())
        events::emit("quarantine", {{"program", Sources[I].Name},
                                    {"reason", QReason[I]}});
    }
  Result.Stats.TotalSeconds = Total.lap();

  // Orderly shutdown; failures here are irrelevant to the result.
  for (WorkerConn &W : Workers)
    if (!W.Dead && W.Fd >= 0)
      sendFrame(W.Fd, encodeControl(MsgType::Done, ""));
  return Result;
}

} // namespace

std::optional<LearnResult> uspec::distrib::distributedLearn(
    const std::vector<ProgramSource> &Sources, const LearnerConfig &Config,
    StringInterner &Strings, const DistribOptions &Opts,
    std::optional<WarmStart> Warm, DistStats &Stats, std::string *Err) {
  Coordinator C(Sources, Config, Strings, Opts, Stats);
  return C.run(std::move(Warm), Err);
}
