//===- Coordinator.h - Distributed training coordinator --------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator side of distributed training (DESIGN.md §14). The
/// coordinator owns everything that must be globally consistent — the
/// interner, the shard plan, Phase 2b model training, the left-to-right
/// ledger merge, and Phases 4–5 (scoring, selection) — while N worker
/// processes run the per-program phases 1–3 over contiguous corpus shards.
///
/// Byte-identity at any worker count follows from four facts: (1) shards
/// are contiguous corpus ranges processed with *global* indices (seeds,
/// program ids, fault indices), (2) workers replay the coordinator's
/// interner snapshot so feature hashes agree bit-for-bit, (3) training
/// samples concatenate in shard order = corpus order, and (4) the per-shard
/// candidate ledgers fold left-to-right with CandidateLedger::extendWith,
/// whose semantics equal the in-process collector merge (PR 2). A shard
/// whose worker dies is reassigned with bounded retries and finally demoted
/// to in-process execution at the coordinator — the demotion path runs the
/// exact same analyzeShard/extractShard code, so convergence is always to
/// the same bytes.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_DISTRIB_COORDINATOR_H
#define USPEC_DISTRIB_COORDINATOR_H

#include "distrib/Wire.h"

#include <optional>
#include <string>
#include <vector>

namespace uspec {
namespace distrib {

/// How a distributed train run is provisioned.
struct DistribOptions {
  /// Worker processes (the N of `train --distributed N`).
  unsigned NumWorkers = 1;
  /// When empty, the coordinator spawns its own workers (self-exec `uspec
  /// worker --connect` over a private Unix socket). Otherwise it listens on
  /// this address and waits for NumWorkers externally-launched workers.
  std::string ListenAddress;
  /// Phase-1 parallelism inside each worker (0 = hardware concurrency).
  unsigned WorkerThreads = 1;
  /// Total attempts per shard (first assignment + reassignments) before the
  /// shard is demoted to in-process execution at the coordinator.
  unsigned MaxAttempts = 3;
  /// How long to wait for workers to connect before running degraded.
  unsigned AcceptTimeoutMs = 30000;
};

/// What happened operationally (byte-identity means none of this shows up
/// in the artifact unless --provenance asks for it).
struct DistStats {
  unsigned WorkersRequested = 0;
  unsigned WorkersConnected = 0;
  unsigned WorkersDied = 0;
  size_t Shards = 0;
  size_t ShardsReassigned = 0;
  size_t ShardsDemoted = 0;
  /// Fingerprint of the shard plan (corpus size, shard count, boundaries) —
  /// recorded as artifact provenance under `--provenance`.
  uint64_t ShardMapChecksum = 0;
  /// Human-readable, quantified notes (worker deaths, reassignments,
  /// demotions, degraded provisioning).
  std::vector<std::string> Notes;
};

/// Runs the full pipeline over \p Sources distributed across worker
/// processes, returning a LearnResult equal — byte-for-byte after artifact
/// encoding — to USpecLearner::learn (or learnIncrement when \p Warm is
/// set) over the same corpus slice.
///
/// \p Sources are the raw program texts in corpus order; the caller (CLI)
/// has already parsed them into \p Strings, so the interner snapshot
/// shipped to workers is complete. With \p Warm, \p Sources are the delta
/// programs and global indices continue from Warm->BasePrograms.
///
/// Returns nullopt only on infrastructure failure that prevents any result
/// (listen failure, bad address); worker deaths never fail the run — shards
/// are reassigned (bounded by Opts.MaxAttempts) and finally demoted to
/// in-process execution, with quantified notes in \p Stats.
std::optional<LearnResult>
distributedLearn(const std::vector<ProgramSource> &Sources,
                 const LearnerConfig &Config, StringInterner &Strings,
                 const DistribOptions &Opts, std::optional<WarmStart> Warm,
                 DistStats &Stats, std::string *Err = nullptr);

} // namespace distrib
} // namespace uspec

#endif // USPEC_DISTRIB_COORDINATOR_H
