//===- Wire.cpp - Distributed training/serving wire layer ----------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "distrib/Wire.h"

#include "artifact/ArtifactIO.h"
#include "artifact/Container.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace uspec;
using namespace uspec::distrib;

//===----------------------------------------------------------------------===//
// Addresses
//===----------------------------------------------------------------------===//

std::string Address::str() const {
  if (Tcp)
    return "tcp:" + Path + ":" + std::to_string(Port);
  return "unix:" + Path;
}

std::optional<Address> uspec::distrib::parseAddress(std::string_view Text,
                                                    std::string *Err) {
  auto Fail = [&](const std::string &Msg) -> std::optional<Address> {
    if (Err)
      *Err = "bad address '" + std::string(Text) + "': " + Msg;
    return std::nullopt;
  };
  Address A;
  if (Text.rfind("unix:", 0) == 0) {
    A.Path = std::string(Text.substr(5));
    if (A.Path.empty())
      return Fail("empty socket path");
    return A;
  }
  if (Text.rfind("tcp:", 0) == 0) {
    std::string_view Rest = Text.substr(4);
    size_t Colon = Rest.rfind(':');
    if (Colon == std::string_view::npos || Colon == 0)
      return Fail("expected tcp:HOST:PORT");
    A.Tcp = true;
    A.Path = std::string(Rest.substr(0, Colon));
    std::string_view PortText = Rest.substr(Colon + 1);
    uint64_t Port = 0;
    if (PortText.empty())
      return Fail("empty port");
    for (char C : PortText) {
      if (C < '0' || C > '9')
        return Fail("non-numeric port");
      Port = Port * 10 + static_cast<uint64_t>(C - '0');
      if (Port > 65535)
        return Fail("port out of range");
    }
    A.Port = static_cast<uint16_t>(Port);
    return A;
  }
  // A bare path is a Unix socket (matches `serve --socket PATH`).
  if (Text.empty())
    return Fail("empty address");
  A.Path = std::string(Text);
  return A;
}

//===----------------------------------------------------------------------===//
// Sockets
//===----------------------------------------------------------------------===//

namespace {

void fillErrno(std::string *Err, const char *What) {
  if (Err)
    *Err = std::string(What) + ": " + std::strerror(errno);
}

bool resolveIPv4(const std::string &Host, in_addr &Out) {
  if (Host == "localhost" || Host.empty())
    return inet_pton(AF_INET, "127.0.0.1", &Out) == 1;
  return inet_pton(AF_INET, Host.c_str(), &Out) == 1;
}

} // namespace

int uspec::distrib::wireListen(const Address &Addr, std::string *Err) {
  if (Addr.Tcp) {
    int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0) {
      fillErrno(Err, "socket");
      return -1;
    }
    int One = 1;
    ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Sa{};
    Sa.sin_family = AF_INET;
    Sa.sin_port = htons(Addr.Port);
    if (!resolveIPv4(Addr.Path, Sa.sin_addr)) {
      if (Err)
        *Err = "cannot resolve host '" + Addr.Path +
               "' (IPv4 literals and 'localhost' only)";
      ::close(Fd);
      return -1;
    }
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa)) < 0 ||
        ::listen(Fd, 64) < 0) {
      fillErrno(Err, ("bind/listen " + Addr.str()).c_str());
      ::close(Fd);
      return -1;
    }
    return Fd;
  }

  sockaddr_un Sa{};
  Sa.sun_family = AF_UNIX;
  if (Addr.Path.size() >= sizeof(Sa.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + Addr.Path;
    return -1;
  }
  std::memcpy(Sa.sun_path, Addr.Path.c_str(), Addr.Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    fillErrno(Err, "socket");
    return -1;
  }
  ::unlink(Addr.Path.c_str()); // discard a stale socket from a dead process
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa)) < 0 ||
      ::listen(Fd, 64) < 0) {
    fillErrno(Err, ("bind/listen " + Addr.str()).c_str());
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int uspec::distrib::wireAccept(int ListenFd, unsigned PollMs) {
  pollfd Pfd{ListenFd, POLLIN, 0};
  int Ready;
  do {
    Ready = ::poll(&Pfd, 1, static_cast<int>(PollMs));
  } while (Ready < 0 && errno == EINTR);
  if (Ready < 0)
    return -2;
  if (Ready == 0)
    return -1;
  int Fd;
  do {
    Fd = ::accept(ListenFd, nullptr, nullptr);
  } while (Fd < 0 && errno == EINTR);
  return Fd < 0 ? -2 : Fd;
}

int uspec::distrib::wireConnect(const Address &Addr, std::string *Err) {
  if (Addr.Tcp) {
    int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0) {
      fillErrno(Err, "socket");
      return -1;
    }
    sockaddr_in Sa{};
    Sa.sin_family = AF_INET;
    Sa.sin_port = htons(Addr.Port);
    if (!resolveIPv4(Addr.Path, Sa.sin_addr)) {
      if (Err)
        *Err = "cannot resolve host '" + Addr.Path +
               "' (IPv4 literals and 'localhost' only)";
      ::close(Fd);
      return -1;
    }
    int Rc;
    do {
      Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa));
    } while (Rc < 0 && errno == EINTR);
    if (Rc < 0) {
      fillErrno(Err, ("connect " + Addr.str()).c_str());
      ::close(Fd);
      return -1;
    }
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    return Fd;
  }

  sockaddr_un Sa{};
  Sa.sun_family = AF_UNIX;
  if (Addr.Path.size() >= sizeof(Sa.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + Addr.Path;
    return -1;
  }
  std::memcpy(Sa.sun_path, Addr.Path.c_str(), Addr.Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    fillErrno(Err, "socket");
    return -1;
  }
  int Rc;
  do {
    Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa));
  } while (Rc < 0 && errno == EINTR);
  if (Rc < 0) {
    fillErrno(Err, ("connect " + Addr.str()).c_str());
    ::close(Fd);
    return -1;
  }
  return Fd;
}

namespace {

bool sendAll(int Fd, const char *Data, size_t Len, std::string *Err) {
  while (Len > 0) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      fillErrno(Err, "send");
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

bool recvAll(int Fd, char *Data, size_t Len, std::string *Err) {
  while (Len > 0) {
    ssize_t N = ::recv(Fd, Data, Len, 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      fillErrno(Err, "recv");
      return false;
    }
    if (N == 0) {
      if (Err)
        *Err = "connection closed mid-frame";
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

constexpr char FrameMagic[4] = {'U', 'S', 'P', 'W'};

} // namespace

bool uspec::distrib::sendFrame(int Fd, std::string_view Payload,
                               std::string *Err) {
  char Header[12];
  std::memcpy(Header, FrameMagic, 4);
  uint64_t Len = Payload.size();
  for (int I = 0; I < 8; ++I)
    Header[4 + I] = static_cast<char>((Len >> (8 * I)) & 0xFF);
  return sendAll(Fd, Header, sizeof(Header), Err) &&
         sendAll(Fd, Payload.data(), Payload.size(), Err);
}

bool uspec::distrib::recvFrame(int Fd, std::string &Payload,
                               std::string *Err) {
  char Header[12];
  if (!recvAll(Fd, Header, sizeof(Header), Err))
    return false;
  if (std::memcmp(Header, FrameMagic, 4) != 0) {
    if (Err)
      *Err = "bad frame magic";
    return false;
  }
  uint64_t Len = 0;
  for (int I = 0; I < 8; ++I)
    Len |= static_cast<uint64_t>(static_cast<unsigned char>(Header[4 + I]))
           << (8 * I);
  if (Len > MaxFrameBytes) {
    if (Err)
      *Err = "frame of " + std::to_string(Len) + " bytes exceeds cap";
    return false;
  }
  Payload.resize(static_cast<size_t>(Len));
  return Len == 0 || recvAll(Fd, Payload.data(), Payload.size(), Err);
}

bool uspec::distrib::clientRoundTrip(const std::string &SocketPath,
                                     const std::string &RequestLine,
                                     std::string &Response, std::string *Err) {
  Address A;
  A.Path = SocketPath;
  int Fd = wireConnect(A, Err);
  if (Fd < 0)
    return false;
  std::string Line = RequestLine;
  if (Line.empty() || Line.back() != '\n')
    Line.push_back('\n');
  if (!sendAll(Fd, Line.data(), Line.size(), Err)) {
    ::close(Fd);
    return false;
  }
  Response.clear();
  char Buf[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      fillErrno(Err, "recv");
      ::close(Fd);
      return false;
    }
    if (N == 0)
      break;
    Response.append(Buf, static_cast<size_t>(N));
    size_t Newline = Response.find('\n');
    if (Newline != std::string::npos) {
      Response.resize(Newline);
      break;
    }
  }
  ::close(Fd);
  if (Response.empty()) {
    if (Err)
      *Err = "empty response from " + SocketPath;
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Message codecs
//===----------------------------------------------------------------------===//

namespace {

constexpr std::string_view SecMsg = "dmsg";   // type byte + scalars
constexpr std::string_view SecModel = "modl"; // encodeModel bytes
constexpr std::string_view SecSyms = "syms";  // artifact symbol table
constexpr std::string_view SecLedger = "gams"; // encodeLedger bytes

std::string finishMsg(ArtifactWriter &W) { return W.finish(); }

/// Opens a frame, validates it, and hands back the reader plus the "dmsg"
/// section reader positioned after the type byte.
bool openMsg(std::string_view Frame, MsgType Expect,
             std::optional<ArtifactReader> &Art, std::string &MsgBytes,
             std::string *Err) {
  ArtifactError AErr;
  Art = ArtifactReader::open(Frame, &AErr);
  if (!Art) {
    if (Err)
      *Err = AErr.str();
    return false;
  }
  auto Sec = Art->section(SecMsg);
  if (!Sec) {
    if (Err)
      *Err = "frame has no message section";
    return false;
  }
  MsgBytes = std::string(*Sec);
  if (MsgBytes.empty() ||
      static_cast<uint8_t>(MsgBytes[0]) != static_cast<uint8_t>(Expect)) {
    if (Err)
      *Err = "unexpected message type";
    return false;
  }
  return true;
}

void writeWireConfig(BinaryWriter &W, const WireConfig &C) {
  W.writeU64(C.Seed);
  W.writeVarint(C.DistanceBound);
  W.writeVarint(C.ProgramStepBudget);
  W.writeVarint(C.Threads);
  W.writeU8(C.ExperimentalPatterns ? 1 : 0);
}

void readWireConfig(BinaryReader &R, WireConfig &C) {
  C.Seed = R.readU64();
  C.DistanceBound = R.readVarint();
  C.ProgramStepBudget = R.readVarint();
  C.Threads = R.readVarint();
  C.ExperimentalPatterns = R.readU8() != 0;
}

void writePrograms(BinaryWriter &W, const std::vector<ProgramSource> &Ps) {
  W.writeVarint(Ps.size());
  for (const ProgramSource &P : Ps) {
    W.writeString(P.Name);
    W.writeString(P.Source);
  }
}

bool readPrograms(BinaryReader &R, std::vector<ProgramSource> &Ps,
                  std::string *Err) {
  uint64_t N = R.readCount(1u << 24, "programs");
  Ps.clear();
  Ps.reserve(static_cast<size_t>(N));
  for (uint64_t I = 0; I < N && R.ok(); ++I) {
    ProgramSource P;
    P.Name = R.readString();
    P.Source = R.readString();
    Ps.push_back(std::move(P));
  }
  if (!R.ok()) {
    if (Err)
      *Err = R.error().str();
    return false;
  }
  return true;
}

bool failReader(const BinaryReader &R, std::string *Err) {
  if (Err)
    *Err = R.error().str();
  return false;
}

} // namespace

std::optional<MsgType> uspec::distrib::peekType(std::string_view Frame,
                                                std::string *Err) {
  ArtifactError AErr;
  auto Art = ArtifactReader::open(Frame, &AErr);
  if (!Art) {
    if (Err)
      *Err = AErr.str();
    return std::nullopt;
  }
  auto Sec = Art->section(SecMsg);
  if (!Sec || Sec->empty()) {
    if (Err)
      *Err = "frame has no message section";
    return std::nullopt;
  }
  uint8_t Type = static_cast<uint8_t>((*Sec)[0]);
  if (Type < static_cast<uint8_t>(MsgType::Hello) ||
      Type > static_cast<uint8_t>(MsgType::Error)) {
    if (Err)
      *Err = "unknown message type " + std::to_string(Type);
    return std::nullopt;
  }
  return static_cast<MsgType>(Type);
}

std::string uspec::distrib::encodeControl(MsgType Type,
                                          std::string_view Text) {
  BinaryWriter W;
  W.writeU8(static_cast<uint8_t>(Type));
  W.writeString(Text);
  ArtifactWriter Art;
  Art.addSection(std::string(SecMsg), W.take());
  return finishMsg(Art);
}

bool uspec::distrib::decodeControl(std::string_view Frame, MsgType &Type,
                                   std::string &Text, std::string *Err) {
  auto Peeked = peekType(Frame, Err);
  if (!Peeked)
    return false;
  Type = *Peeked;
  ArtifactError AErr;
  auto Art = ArtifactReader::open(Frame, &AErr);
  auto Sec = Art->section(SecMsg);
  BinaryReader R(*Sec, std::string(SecMsg));
  R.readU8();
  Text = R.readString();
  return R.ok() || failReader(R, Err);
}

std::string uspec::distrib::encodeInit(const InitMsg &Msg) {
  BinaryWriter W;
  W.writeU8(static_cast<uint8_t>(MsgType::Init));
  W.writeVarint(WireProtocolVersion);
  W.writeU32(Msg.WorkerId);
  writeWireConfig(W, Msg.Config);
  W.writeVarint(Msg.Symbols.size());
  for (const std::string &S : Msg.Symbols)
    W.writeString(S);
  // Optional trailing field: old decoders stop before it, new decoders read
  // it only when bytes remain, so the protocol version stays 1.
  if (!Msg.TraceContext.empty())
    W.writeString(Msg.TraceContext);
  ArtifactWriter Art;
  Art.addSection(std::string(SecMsg), W.take());
  return finishMsg(Art);
}

bool uspec::distrib::decodeInit(std::string_view Frame, InitMsg &Out,
                                std::string *Err) {
  std::optional<ArtifactReader> Art;
  std::string Bytes;
  if (!openMsg(Frame, MsgType::Init, Art, Bytes, Err))
    return false;
  BinaryReader R(Bytes, std::string(SecMsg));
  R.readU8();
  uint64_t Version = R.readVarint();
  if (R.ok() && Version != WireProtocolVersion) {
    if (Err)
      *Err = "wire protocol version mismatch: coordinator speaks v" +
             std::to_string(Version) + ", this worker v" +
             std::to_string(WireProtocolVersion);
    return false;
  }
  Out.WorkerId = R.readU32();
  readWireConfig(R, Out.Config);
  uint64_t N = R.readCount(1u << 28, "symbols");
  Out.Symbols.clear();
  Out.Symbols.reserve(static_cast<size_t>(N));
  for (uint64_t I = 0; I < N && R.ok(); ++I)
    Out.Symbols.push_back(std::string(R.readString()));
  Out.TraceContext.clear();
  if (R.ok() && !R.atEnd())
    Out.TraceContext = std::string(R.readString());
  return R.ok() || failReader(R, Err);
}

std::string uspec::distrib::encodeAnalyzeTask(const AnalyzeTask &Task) {
  BinaryWriter W;
  W.writeU8(static_cast<uint8_t>(MsgType::Analyze));
  W.writeVarint(Task.Shard);
  W.writeVarint(Task.Base);
  writePrograms(W, Task.Programs);
  if (!Task.TraceContext.empty())
    W.writeString(Task.TraceContext); // optional trailing field
  ArtifactWriter Art;
  Art.addSection(std::string(SecMsg), W.take());
  return finishMsg(Art);
}

bool uspec::distrib::decodeAnalyzeTask(std::string_view Frame,
                                       AnalyzeTask &Out, std::string *Err) {
  std::optional<ArtifactReader> Art;
  std::string Bytes;
  if (!openMsg(Frame, MsgType::Analyze, Art, Bytes, Err))
    return false;
  BinaryReader R(Bytes, std::string(SecMsg));
  R.readU8();
  Out.Shard = R.readVarint();
  Out.Base = R.readVarint();
  if (!R.ok())
    return failReader(R, Err);
  if (!readPrograms(R, Out.Programs, Err))
    return false;
  Out.TraceContext.clear();
  if (R.ok() && !R.atEnd())
    Out.TraceContext = std::string(R.readString());
  return R.ok() || failReader(R, Err);
}

std::string
uspec::distrib::encodeAnalyzedResult(const AnalyzedResult &Result) {
  BinaryWriter W;
  W.writeU8(static_cast<uint8_t>(MsgType::Analyzed));
  W.writeVarint(Result.Shard);
  W.writeVarint(Result.Graphs);
  W.writeVarint(Result.Samples.size());
  for (size_t I = 0; I < Result.Samples.size(); ++I) {
    W.writeString(Result.QReason[I]);
    const std::vector<TrainingSample> &Ps = Result.Samples[I];
    W.writeVarint(Ps.size());
    for (const TrainingSample &S : Ps) {
      W.writeU16(S.Features.PosKey);
      W.writeF32(S.Label);
      W.writeVarint(S.Features.Hashes.size());
      for (uint32_t H : S.Features.Hashes)
        W.writeU32(H);
    }
  }
  ArtifactWriter Art;
  Art.addSection(std::string(SecMsg), W.take());
  return finishMsg(Art);
}

bool uspec::distrib::decodeAnalyzedResult(std::string_view Frame,
                                          AnalyzedResult &Out,
                                          std::string *Err) {
  std::optional<ArtifactReader> Art;
  std::string Bytes;
  if (!openMsg(Frame, MsgType::Analyzed, Art, Bytes, Err))
    return false;
  BinaryReader R(Bytes, std::string(SecMsg));
  R.readU8();
  Out.Shard = R.readVarint();
  Out.Graphs = R.readVarint();
  uint64_t N = R.readCount(1u << 24, "programs");
  Out.Samples.clear();
  Out.QReason.clear();
  Out.Samples.resize(static_cast<size_t>(N));
  Out.QReason.resize(static_cast<size_t>(N));
  for (uint64_t I = 0; I < N && R.ok(); ++I) {
    Out.QReason[I] = R.readString();
    uint64_t M = R.readCount(1u << 28, "samples");
    std::vector<TrainingSample> &Ps = Out.Samples[I];
    Ps.resize(static_cast<size_t>(M));
    for (uint64_t J = 0; J < M && R.ok(); ++J) {
      TrainingSample &S = Ps[J];
      S.Features.PosKey = R.readU16();
      S.Label = R.readF32();
      uint64_t H = R.readCount(1u << 20, "feature hashes");
      S.Features.Hashes.resize(static_cast<size_t>(H));
      for (uint64_t K = 0; K < H && R.ok(); ++K)
        S.Features.Hashes[K] = R.readU32();
    }
  }
  return R.ok() || failReader(R, Err);
}

std::string uspec::distrib::encodeModelMsg(const EdgeModel &Model) {
  BinaryWriter W;
  W.writeU8(static_cast<uint8_t>(MsgType::Model));
  ArtifactWriter Art;
  Art.addSection(std::string(SecMsg), W.take());
  Art.addSection(std::string(SecModel), encodeModel(Model));
  return finishMsg(Art);
}

bool uspec::distrib::decodeModelMsg(std::string_view Frame, EdgeModel &Out,
                                    std::string *Err) {
  std::optional<ArtifactReader> Art;
  std::string Bytes;
  if (!openMsg(Frame, MsgType::Model, Art, Bytes, Err))
    return false;
  auto Sec = Art->section(SecModel);
  if (!Sec) {
    if (Err)
      *Err = "model message has no model section";
    return false;
  }
  ArtifactError AErr;
  auto Model = decodeModel(*Sec, &AErr);
  if (!Model) {
    if (Err)
      *Err = AErr.str();
    return false;
  }
  Out = std::move(*Model);
  return true;
}

std::string uspec::distrib::encodeExtractTask(const ExtractTask &Task) {
  BinaryWriter W;
  W.writeU8(static_cast<uint8_t>(MsgType::Extract));
  W.writeVarint(Task.Shard);
  W.writeVarint(Task.Base);
  writePrograms(W, Task.Programs);
  if (!Task.TraceContext.empty())
    W.writeString(Task.TraceContext); // optional trailing field
  ArtifactWriter Art;
  Art.addSection(std::string(SecMsg), W.take());
  return finishMsg(Art);
}

bool uspec::distrib::decodeExtractTask(std::string_view Frame,
                                       ExtractTask &Out, std::string *Err) {
  std::optional<ArtifactReader> Art;
  std::string Bytes;
  if (!openMsg(Frame, MsgType::Extract, Art, Bytes, Err))
    return false;
  BinaryReader R(Bytes, std::string(SecMsg));
  R.readU8();
  Out.Shard = R.readVarint();
  Out.Base = R.readVarint();
  if (!R.ok())
    return failReader(R, Err);
  if (!readPrograms(R, Out.Programs, Err))
    return false;
  Out.TraceContext.clear();
  if (R.ok() && !R.atEnd())
    Out.TraceContext = std::string(R.readString());
  return R.ok() || failReader(R, Err);
}

std::string
uspec::distrib::encodeExtractedResult(const ExtractedResult &Result,
                                      const StringInterner &Strings) {
  BinaryWriter W;
  W.writeU8(static_cast<uint8_t>(MsgType::Extracted));
  W.writeVarint(Result.Shard);
  W.writeVarint(Result.ReceiverPairs);
  W.writeVarint(Result.Matches);
  W.writeVarint(Result.PeakCandidates);
  W.writeVarint(Result.QUpdates.size());
  for (const auto &[Idx, Reason] : Result.QUpdates) {
    W.writeVarint(Idx);
    W.writeString(Reason);
  }
  SymbolTableBuilder Syms(Strings);
  std::string LedgerBytes = encodeLedger(Result.Ledger, Syms);
  ArtifactWriter Art;
  Art.addSection(std::string(SecMsg), W.take());
  Art.addSection(std::string(SecSyms), Syms.encode());
  Art.addSection(std::string(SecLedger), std::move(LedgerBytes));
  return finishMsg(Art);
}

bool uspec::distrib::decodeExtractedResult(std::string_view Frame,
                                           ExtractedResult &Out,
                                           StringInterner &Strings,
                                           std::string *Err) {
  std::optional<ArtifactReader> Art;
  std::string Bytes;
  if (!openMsg(Frame, MsgType::Extracted, Art, Bytes, Err))
    return false;
  BinaryReader R(Bytes, std::string(SecMsg));
  R.readU8();
  Out.Shard = R.readVarint();
  Out.ReceiverPairs = R.readVarint();
  Out.Matches = R.readVarint();
  Out.PeakCandidates = R.readVarint();
  uint64_t N = R.readCount(1u << 24, "quarantine updates");
  Out.QUpdates.clear();
  Out.QUpdates.reserve(static_cast<size_t>(N));
  for (uint64_t I = 0; I < N && R.ok(); ++I) {
    uint64_t Idx = R.readVarint();
    std::string Reason(R.readString());
    Out.QUpdates.emplace_back(Idx, std::move(Reason));
  }
  if (!R.ok())
    return failReader(R, Err);

  auto SymsSec = Art->section(SecSyms);
  auto LedgerSec = Art->section(SecLedger);
  if (!SymsSec || !LedgerSec) {
    if (Err)
      *Err = "extracted message misses symbol/ledger section";
    return false;
  }
  ArtifactError AErr;
  auto Syms = SymbolTable::decode(*SymsSec, Strings, &AErr);
  if (!Syms) {
    if (Err)
      *Err = AErr.str();
    return false;
  }
  auto Ledger = decodeLedger(*LedgerSec, *Syms, &AErr);
  if (!Ledger) {
    if (Err)
      *Err = AErr.str();
    return false;
  }
  Out.Ledger = std::move(*Ledger);
  return true;
}
