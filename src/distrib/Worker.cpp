//===- Worker.cpp - Distributed training worker --------------------------===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//

#include "distrib/Worker.h"

#include "eventgraph/EventGraph.h"
#include "ir/Lowering.h"
#include "support/Budget.h"
#include "support/FaultInject.h"
#include "support/ParallelFor.h"
#include "support/Trace.h"

#include <unistd.h>
#include <unordered_map>

using namespace uspec;
using namespace uspec::distrib;

AnalyzedResult uspec::distrib::analyzeShard(const AnalyzeTask &Task,
                                            const WireConfig &Config,
                                            StringInterner &Strings,
                                            ShardState &State) {
  size_t N = Task.Programs.size();
  State.Base = Task.Base;
  State.Programs.clear();
  State.Programs.reserve(N);

  // Parse serially: the interner mutates here (lookups of already-interned
  // snapshot strings allocate nothing, but the contract is single-writer).
  // A source that no longer parses keeps an empty slot, mirroring the
  // journal pipeline; the coordinator made the same call on its own parse.
  for (const ProgramSource &P : Task.Programs) {
    DiagnosticSink Diags;
    std::optional<IRProgram> Prog =
        parseAndLower(P.Source, P.Name, Strings, Diags);
    if (Prog) {
      State.Programs.push_back(std::move(*Prog));
    } else {
      IRProgram Empty;
      Empty.Name = P.Name;
      State.Programs.push_back(std::move(Empty));
    }
  }

  // Phase 1 + 2a, verbatim learn() semantics with global indices Base + I:
  // same seeds, same budget, same quarantine reasons, same fault site.
  State.Analyses.clear();
  State.Analyses.resize(N);
  State.Graphs.assign(N, EventGraph());
  State.QReason.assign(N, std::string());
  AnalyzedResult Result;
  Result.Shard = Task.Shard;
  Result.Samples.resize(N);
  Result.QReason.resize(N);
  parallelFor(N, static_cast<unsigned>(Config.Threads), [&](size_t I) {
    uint64_t G = State.Base + I;
    try {
      if (faultFiresAt("learn.analyze", G))
        throw FaultInjected("learn.analyze");
      Budget B = Budget::steps(Config.ProgramStepBudget);
      AnalysisOptions Opts;
      if (Config.ProgramStepBudget != 0)
        Opts.StepBudget = &B;
      State.Analyses[I] = std::make_unique<AnalysisResult>(
          analyzeProgram(State.Programs[I], Strings, Opts));
      if (State.Analyses[I]->Bounded) {
        State.QReason[I] = std::string("analysis:") + B.reason();
        if (State.QReason[I] == "analysis:")
          State.QReason[I] = "analysis:bounded";
        State.Analyses[I] = std::make_unique<AnalysisResult>();
        return;
      }
      State.Graphs[I] = EventGraph::build(*State.Analyses[I]);
      Rng Rand(hashValues(Config.Seed, G));
      collectTrainingSamples(State.Graphs[I], Rand, Result.Samples[I]);
    } catch (const FaultInjected &F) {
      State.QReason[I] = "fault:" + F.site();
      State.Analyses[I] = std::make_unique<AnalysisResult>();
      State.Graphs[I] = EventGraph();
      Result.Samples[I].clear();
    } catch (const std::exception &E) {
      State.QReason[I] = std::string("error:") + E.what();
      State.Analyses[I] = std::make_unique<AnalysisResult>();
      State.Graphs[I] = EventGraph();
      Result.Samples[I].clear();
    }
  });

  for (size_t I = 0; I < N; ++I)
    Result.QReason[I] = State.QReason[I];
  for (const EventGraph &G : State.Graphs)
    if (!G.callSites().empty())
      ++Result.Graphs;
  return Result;
}

ExtractedResult uspec::distrib::extractShard(ShardState &State,
                                             const EdgeModel &Model,
                                             const WireConfig &Config) {
  ExtractedResult Result;
  CandidateCollector Collector(Model,
                               static_cast<unsigned>(Config.DistanceBound),
                               Config.ExperimentalPatterns);
  for (size_t I = 0; I < State.Graphs.size(); ++I) {
    if (!State.QReason[I].empty())
      continue; // quarantined in Phase 1; default graph has no analysis
    uint32_t Pid = static_cast<uint32_t>(State.Base + I);
    if (Config.ProgramStepBudget == 0) {
      Collector.addGraph(State.Graphs[I], Pid);
      continue;
    }
    // All-or-nothing per graph under a budget, exactly as learn() Phase 3:
    // stage into a scratch collector, merge only on completion.
    Budget B = Budget::steps(Config.ProgramStepBudget);
    CandidateCollector Tmp(Model, static_cast<unsigned>(Config.DistanceBound),
                           Config.ExperimentalPatterns);
    if (Tmp.addGraph(State.Graphs[I], Pid, &B)) {
      Collector.merge(std::move(Tmp));
    } else {
      State.QReason[I] = "extract:steps";
      Result.QUpdates.emplace_back(I, State.QReason[I]);
    }
  }
  Result.Ledger = CandidateLedger::fromCollector(Collector);
  Result.ReceiverPairs = Collector.numReceiverPairs();
  Result.Matches = Collector.numMatches();
  Result.PeakCandidates = Collector.candidates().size();
  return Result;
}

int uspec::distrib::runWorker(const Address &Coordinator,
                              unsigned ThreadsOverride, std::string *Err) {
  int Fd = wireConnect(Coordinator, Err);
  if (Fd < 0)
    return 1;
  std::string LocalErr;
  if (!Err)
    Err = &LocalErr;

  auto Bail = [&](const std::string &Msg) {
    *Err = Msg;
    sendFrame(Fd, encodeControl(MsgType::Error, Msg));
    ::close(Fd);
    return 1;
  };

  if (!sendFrame(Fd, encodeControl(MsgType::Hello,
                                   std::to_string(::getpid())),
                 Err)) {
    ::close(Fd);
    return 1;
  }

  StringInterner Strings;
  WireConfig Config;
  uint32_t WorkerId = 0;
  EdgeModel Model;
  std::unordered_map<uint64_t, ShardState> Shards;
  // Coordinator trace context from Init (per-task contexts override); spans
  // recorded here carry it so obs stitch hangs this worker's work under the
  // coordinating run.
  std::string TraceCtx;
  auto TagSpan = [&](TraceSpan &Span, uint64_t Shard,
                     const std::string &TaskCtx) {
    if (!Span.active())
      return;
    Span.arg("shard", std::to_string(Shard));
    Span.arg("worker", std::to_string(WorkerId));
    const std::string &Ctx = TaskCtx.empty() ? TraceCtx : TaskCtx;
    if (!Ctx.empty())
      Span.arg("trace_ctx", Ctx);
  };

  std::string Frame;
  while (recvFrame(Fd, Frame, Err)) {
    auto Type = peekType(Frame, Err);
    if (!Type)
      return Bail("bad frame: " + *Err);
    try {
      switch (*Type) {
      case MsgType::Init: {
        InitMsg Msg;
        if (!decodeInit(Frame, Msg, Err))
          return Bail(*Err);
        Config = Msg.Config;
        if (ThreadsOverride != 0)
          Config.Threads = ThreadsOverride;
        WorkerId = Msg.WorkerId;
        TraceCtx = Msg.TraceContext;
        // Replay the coordinator's interner: the snapshot ships ids
        // 1..size-1 in order, and this interner is fresh, so intern()
        // reassigns the identical dense ids — feature hashes (which fold in
        // Symbol ids) then agree bit-for-bit with the coordinator's.
        for (const std::string &S : Msg.Symbols)
          Strings.intern(S);
        break;
      }
      case MsgType::Analyze: {
        AnalyzeTask Task;
        if (!decodeAnalyzeTask(Frame, Task, Err))
          return Bail(*Err);
        if (faultFiresAt("distrib.worker.analyze", WorkerId))
          throw FaultInjected("distrib.worker.analyze");
        AnalyzedResult R;
        {
          TraceSpan Span("worker.analyze");
          TagSpan(Span, Task.Shard, Task.TraceContext);
          R = analyzeShard(Task, Config, Strings, Shards[Task.Shard]);
        }
        TraceSpan IoSpan("worker.reply");
        TagSpan(IoSpan, Task.Shard, Task.TraceContext);
        if (!sendFrame(Fd, encodeAnalyzedResult(R), Err)) {
          ::close(Fd);
          return 1;
        }
        break;
      }
      case MsgType::Model: {
        if (!decodeModelMsg(Frame, Model, Err))
          return Bail(*Err);
        break;
      }
      case MsgType::Extract: {
        ExtractTask Task;
        if (!decodeExtractTask(Frame, Task, Err))
          return Bail(*Err);
        if (faultFiresAt("distrib.worker.extract", WorkerId))
          throw FaultInjected("distrib.worker.extract");
        ShardState &State = Shards[Task.Shard];
        ExtractedResult R;
        {
          TraceSpan Span("worker.extract");
          TagSpan(Span, Task.Shard, Task.TraceContext);
          if (!Task.Programs.empty()) {
            // Reassigned shard: this worker never analyzed it. Rebuild the
            // cached state from the re-sent sources (analysis is
            // deterministic, so graphs and quarantine agree with the dead
            // worker's run); the samples were already delivered and are
            // discarded here.
            AnalyzeTask Rebuild;
            Rebuild.Shard = Task.Shard;
            Rebuild.Base = Task.Base;
            Rebuild.Programs = Task.Programs;
            analyzeShard(Rebuild, Config, Strings, State);
          }
          R = extractShard(State, Model, Config);
        }
        R.Shard = Task.Shard;
        TraceSpan IoSpan("worker.reply");
        TagSpan(IoSpan, Task.Shard, Task.TraceContext);
        if (!sendFrame(Fd, encodeExtractedResult(R, Strings), Err)) {
          ::close(Fd);
          return 1;
        }
        break;
      }
      case MsgType::Done:
        ::close(Fd);
        return 0;
      default:
        return Bail("unexpected message type");
      }
    } catch (const FaultInjected &F) {
      return Bail("fault:" + F.site());
    } catch (const std::exception &E) {
      return Bail(std::string("error:") + E.what());
    }
  }
  // recvFrame failed: the coordinator went away without Done. Not this
  // worker's error to report.
  ::close(Fd);
  return 0;
}
