//===- Worker.h - Distributed training worker ------------------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker side of distributed training (DESIGN.md §14): a process that
/// connects to the coordinator, replays its interner snapshot, and runs the
/// learn() pipeline phases 1–3 over the corpus shards it is handed. The
/// shard-processing functions are free functions shared with the
/// coordinator, which runs them in-process when it demotes a shard after a
/// worker death exhausts its retries — both paths execute the exact same
/// code, which is half of the byte-identity argument.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_DISTRIB_WORKER_H
#define USPEC_DISTRIB_WORKER_H

#include "distrib/Wire.h"
#include "ir/IR.h"
#include "pointsto/Analysis.h"

#include <memory>

namespace uspec {
namespace distrib {

/// Per-shard state cached between the analyze and extract rounds. On shard
/// reassignment (the analyzing worker died) the replacement rebuilds it from
/// re-sent sources; analysis is deterministic, so the rebuilt graphs and
/// quarantine decisions are identical.
struct ShardState {
  uint64_t Base = 0;
  std::vector<IRProgram> Programs;
  /// Kept alive alongside the graphs, mirroring learn()'s lifetime
  /// discipline.
  std::vector<std::unique_ptr<AnalysisResult>> Analyses;
  std::vector<EventGraph> Graphs;
  std::vector<std::string> QReason; ///< "" = healthy; learn() reason codes.
};

/// learn() Phase 1 + 2a over one shard: parse each source (a failure keeps
/// an empty corpus slot, matching the journal pipeline's in-place
/// quarantine), analyze with the per-program step budget, build the event
/// graph, and collect training samples seeded by the *global* corpus index
/// (hashValues(Seed, Base + I)) — exactly the per-slot behavior of a
/// single-process learn() over the whole corpus. The fault site
/// "learn.analyze" fires on global indices here too, so an armed schedule
/// quarantines the same program distributed or not.
AnalyzedResult analyzeShard(const AnalyzeTask &Task, const WireConfig &Config,
                            StringInterner &Strings, ShardState &State);

/// learn() Phase 3 over a cached shard with the globally trained model:
/// serial Alg. 1 per graph (all-or-nothing under a step budget, staging
/// through a scratch collector exactly as learn() does), into one collector
/// snapshotted as the shard's ledger. Collector merge is shard-boundary
/// invariant, so the coordinator folding these ledgers left-to-right
/// reproduces the single-process candidate table bit for bit.
ExtractedResult extractShard(ShardState &State, const EdgeModel &Model,
                             const WireConfig &Config);

/// Worker main loop: connect to \p Coordinator, send Hello, then serve
/// Init/Analyze/Model/Extract until Done. \p ThreadsOverride, when nonzero,
/// wins over the Init-supplied worker parallelism. Fault sites
/// "distrib.worker.analyze" / "distrib.worker.extract" fire on the
/// coordinator-assigned worker id at task receipt, so a USPEC_FAULT
/// schedule inherited by every spawned worker still kills exactly one.
/// Returns a process exit code.
int runWorker(const Address &Coordinator, unsigned ThreadsOverride,
              std::string *Err = nullptr);

} // namespace distrib
} // namespace uspec

#endif // USPEC_DISTRIB_WORKER_H
