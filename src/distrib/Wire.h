//===- Wire.h - Distributed training/serving wire layer --------*- C++ -*-===//
//
// Part of the USpec reproduction (PLDI 2019). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport and message layer of the distributed subsystem
/// (DESIGN.md §14): length-prefixed frames over Unix-domain or TCP stream
/// sockets, each frame carrying one USPB container (artifact/Container.h) —
/// the PR 1 artifact format doubles as the interchange, so every message
/// payload is section-addressed and checksummed in transit for free.
///
/// Frame layout: 4-byte magic "USPW", u64 little-endian payload length,
/// payload bytes. Every payload is a USPB container whose "dmsg" section
/// holds the message type plus type-specific scalars; bulk data (program
/// sources, training samples, the encoded model, candidate ledgers) rides
/// in further sections reusing the artifact codecs.
///
/// Message flow of a distributed train (two rounds, because Phase 3
/// extraction scores edge confidences against the *globally trained* model):
///
///   worker -> coord   Hello
///   coord  -> worker  Init        config scalars + interner snapshot
///   coord  -> worker  Analyze     one corpus shard (sources)
///   worker -> coord   Analyzed    per-program samples + quarantine reasons
///   coord  -> worker  Model       the trained (or warm-continued) ϕ
///   coord  -> worker  Extract     shard id (sources only on reassignment)
///   worker -> coord   Extracted   per-shard candidate ledger + counters
///   coord  -> worker  Done
///   worker -> coord   Error       any failure, before the worker exits
///
/// The interner snapshot exists because feature hashing folds in interner-
/// local Symbol ids (model/Features.cpp eventLabel): a worker must assign
/// byte-for-byte the same ids the coordinator's interner did, so Init ships
/// every interned string in id order and the worker replays them. Worker
/// re-parses only sources the coordinator already parsed, so no parse can
/// mint a symbol outside the snapshot.
///
//===----------------------------------------------------------------------===//

#ifndef USPEC_DISTRIB_WIRE_H
#define USPEC_DISTRIB_WIRE_H

#include "core/Learner.h"
#include "model/EdgeModel.h"
#include "support/StringInterner.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace uspec {
namespace distrib {

//===----------------------------------------------------------------------===//
// Addresses and sockets
//===----------------------------------------------------------------------===//

/// A worker/coordinator endpoint: `unix:PATH` (or a bare path containing
/// '/') or `tcp:HOST:PORT`.
struct Address {
  bool Tcp = false;
  std::string Path; ///< Socket path (unix) or host (tcp).
  uint16_t Port = 0;

  /// Canonical form ("unix:/tmp/x.sock", "tcp:127.0.0.1:7070").
  std::string str() const;
};

/// Parses an address; on failure returns nullopt and fills \p Err.
std::optional<Address> parseAddress(std::string_view Text,
                                    std::string *Err = nullptr);

/// Creates a listening stream socket for \p Addr (unlinking a stale Unix
/// socket path first). Returns the fd, or -1 with \p Err filled.
int wireListen(const Address &Addr, std::string *Err = nullptr);

/// Polls \p ListenFd for up to \p PollMs and accepts one connection.
/// Returns the connected fd, -1 on timeout, -2 on a hard error.
int wireAccept(int ListenFd, unsigned PollMs);

/// Connects to \p Addr. Returns the fd, or -1 with \p Err filled.
int wireConnect(const Address &Addr, std::string *Err = nullptr);

/// Maximum accepted frame payload (a corrupted peer cannot make us allocate
/// unboundedly).
inline constexpr uint64_t MaxFrameBytes = uint64_t(1) << 30;

/// Sends one length-prefixed frame (EINTR-safe, SIGPIPE-suppressed).
bool sendFrame(int Fd, std::string_view Payload, std::string *Err = nullptr);

/// Receives one frame into \p Payload. Returns false on EOF, a malformed
/// header, an oversized frame, or a socket error (\p Err says which).
bool recvFrame(int Fd, std::string &Payload, std::string *Err = nullptr);

/// One-shot newline-delimited JSON round trip against a Unix-socket service
/// (a serve replica or the router). The service_throughput bench and the
/// distrib tests drive replicas through this.
bool clientRoundTrip(const std::string &SocketPath,
                     const std::string &RequestLine, std::string &Response,
                     std::string *Err = nullptr);

//===----------------------------------------------------------------------===//
// Messages
//===----------------------------------------------------------------------===//

inline constexpr uint64_t WireProtocolVersion = 1;

enum class MsgType : uint8_t {
  Hello = 1,     ///< worker -> coord: protocol version + pid
  Init = 2,      ///< coord -> worker: config + interner snapshot
  Analyze = 3,   ///< coord -> worker: one shard of program sources
  Analyzed = 4,  ///< worker -> coord: samples + quarantine per program
  Model = 5,     ///< coord -> worker: encoded trained ϕ
  Extract = 6,   ///< coord -> worker: extract candidates for one shard
  Extracted = 7, ///< worker -> coord: per-shard candidate ledger
  Done = 8,      ///< coord -> worker: shut down cleanly
  Error = 9,     ///< worker -> coord: failure report (worker exits after)
};

/// One corpus program shipped to a worker: display name + source text.
struct ProgramSource {
  std::string Name;
  std::string Source;
};

/// The Phase 1–3 slice of LearnerConfig a worker needs. Scoring/selection
/// parameters (τ, top-k, score kind) stay coordinator-side.
struct WireConfig {
  uint64_t Seed = 0xC0FFEE;
  uint64_t DistanceBound = 10;
  uint64_t ProgramStepBudget = 0;
  uint64_t Threads = 0; ///< Worker-internal parallelism for Phase 1.
  bool ExperimentalPatterns = false;
};

/// Init payload: pipeline config + the coordinator's interner snapshot
/// (every string in Symbol-id order, id 0 = "" omitted).
///
/// TraceContext is an optional trailing field (v1-compatible: absent frames
/// decode with an empty context): the coordinator's trace/session id, which
/// workers stamp onto their analyze/extract spans so `uspec obs stitch` can
/// hang worker-side work under the coordinating run in one merged trace.
struct InitMsg {
  WireConfig Config;
  std::vector<std::string> Symbols;
  uint32_t WorkerId = 0; ///< Index for distrib.worker.* fault sites.
  std::string TraceContext; ///< Coordinator trace id ("" = untraced).
};

/// Analyze payload: a contiguous corpus shard.
struct AnalyzeTask {
  uint64_t Shard = 0; ///< Shard id, echoed in the reply.
  uint64_t Base = 0;  ///< Global corpus index of Programs[0].
  std::vector<ProgramSource> Programs;
  std::string TraceContext; ///< Optional trailing per-task trace id.
};

/// Analyzed payload: everything Phase 1–2a produced for the shard.
struct AnalyzedResult {
  uint64_t Shard = 0;
  /// Per program, in shard order.
  std::vector<std::vector<TrainingSample>> Samples;
  /// Per-program quarantine reason ("" = healthy), same indexing.
  std::vector<std::string> QReason;
  /// Number of non-empty event graphs (PipelineStats::Graphs contribution).
  uint64_t Graphs = 0;
};

/// Extract payload. Sources are only present when the shard was reassigned
/// to a worker that never analyzed it (the analyzer died); the original
/// worker extracts from its cached graphs.
struct ExtractTask {
  uint64_t Shard = 0;
  uint64_t Base = 0;
  std::vector<ProgramSource> Programs; ///< Empty: use cached shard state.
  std::string TraceContext; ///< Optional trailing per-task trace id.
};

/// Extracted payload: the shard's candidate evidence plus workload counters
/// and extraction-phase quarantine updates.
struct ExtractedResult {
  uint64_t Shard = 0;
  CandidateLedger Ledger;
  /// (local program index, reason) pairs for programs quarantined during
  /// extraction ("extract:steps").
  std::vector<std::pair<uint64_t, std::string>> QUpdates;
  uint64_t ReceiverPairs = 0;
  uint64_t Matches = 0;
  uint64_t PeakCandidates = 0;
};

/// Reads the message type of a decoded frame without decoding the payload.
/// Returns nullopt (and fills \p Err) on a malformed container.
std::optional<MsgType> peekType(std::string_view Frame,
                                std::string *Err = nullptr);

// Control messages (Hello/Done/Error) carry one free-form text field.
std::string encodeControl(MsgType Type, std::string_view Text);
bool decodeControl(std::string_view Frame, MsgType &Type, std::string &Text,
                   std::string *Err = nullptr);

std::string encodeInit(const InitMsg &Msg);
bool decodeInit(std::string_view Frame, InitMsg &Out,
                std::string *Err = nullptr);

std::string encodeAnalyzeTask(const AnalyzeTask &Task);
bool decodeAnalyzeTask(std::string_view Frame, AnalyzeTask &Out,
                       std::string *Err = nullptr);

std::string encodeAnalyzedResult(const AnalyzedResult &Result);
bool decodeAnalyzedResult(std::string_view Frame, AnalyzedResult &Out,
                          std::string *Err = nullptr);

std::string encodeModelMsg(const EdgeModel &Model);
bool decodeModelMsg(std::string_view Frame, EdgeModel &Out,
                    std::string *Err = nullptr);

std::string encodeExtractTask(const ExtractTask &Task);
bool decodeExtractTask(std::string_view Frame, ExtractTask &Out,
                       std::string *Err = nullptr);

/// The ledger's specs are encoded through the artifact symbol table, so the
/// encoding interner (worker) and decoding interner (coordinator) need not
/// share Symbol ids.
std::string encodeExtractedResult(const ExtractedResult &Result,
                                  const StringInterner &Strings);
bool decodeExtractedResult(std::string_view Frame, ExtractedResult &Out,
                           StringInterner &Strings,
                           std::string *Err = nullptr);

} // namespace distrib
} // namespace uspec

#endif // USPEC_DISTRIB_WIRE_H
